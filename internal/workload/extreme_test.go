package workload

import (
	"math"
	"testing"
)

func TestGrid(t *testing.T) {
	pts := Grid(100)
	if len(pts) != 100 {
		t.Fatalf("len %d", len(pts))
	}
	inDomain(t, pts)
	uniqueIDs(t, pts)
	// Lattice regularity: x coordinates take exactly √n distinct values.
	xs := map[float64]bool{}
	for _, p := range pts {
		xs[p.P.X] = true
	}
	if len(xs) != 10 {
		t.Errorf("grid has %d distinct x values, want 10", len(xs))
	}
	// Non-square count still works.
	if got := Grid(7); len(got) != 7 {
		t.Errorf("Grid(7) returned %d", len(got))
	}
	if got := Grid(1); len(got) != 1 {
		t.Errorf("Grid(1) returned %d", len(got))
	}
}

func TestCollinear(t *testing.T) {
	pts := Collinear(500, 0, 1)
	inDomain(t, pts)
	uniqueIDs(t, pts)
	for _, p := range pts {
		if p.P.Y != Domain/2 {
			t.Fatalf("exact collinear point off the line: %+v", p)
		}
	}
	jittered := Collinear(500, 3, 1)
	offLine := 0
	for _, p := range jittered {
		if p.P.Y != Domain/2 {
			offLine++
		}
	}
	if offLine == 0 {
		t.Error("jittered collinear points all exactly on the line")
	}
}

func TestOnCircle(t *testing.T) {
	pts := OnCircle(360, 0.3, 1)
	inDomain(t, pts)
	uniqueIDs(t, pts)
	c := struct{ x, y float64 }{Domain / 2, Domain / 2}
	r := Domain / 3
	for _, p := range pts {
		d := math.Hypot(p.P.X-c.x, p.P.Y-c.y)
		if math.Abs(d-r) > 1e-6 {
			t.Fatalf("point off the circle: radius %g, want %g", d, r)
		}
	}
}

func TestTwoDistantClusters(t *testing.T) {
	pts := TwoDistantClusters(400, 100, 1)
	inDomain(t, pts)
	uniqueIDs(t, pts)
	// Every point is near one of the two corners.
	nearA, nearB := 0, 0
	for _, p := range pts {
		da := math.Hypot(p.P.X-Domain*0.1, p.P.Y-Domain*0.1)
		db := math.Hypot(p.P.X-Domain*0.9, p.P.Y-Domain*0.9)
		switch {
		case da < 1000:
			nearA++
		case db < 1000:
			nearB++
		default:
			t.Fatalf("point in the corridor: %+v", p)
		}
	}
	if nearA < 150 || nearB < 150 {
		t.Errorf("unbalanced clusters: %d / %d", nearA, nearB)
	}
}
