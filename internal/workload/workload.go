// Package workload generates the evaluation datasets of Section 5: uniform
// synthetic pointsets (UI data), Gaussian-cluster synthetic pointsets, and
// "real-like" stand-ins for the USGS Board on Geographic Names pointsets the
// paper joins (PP: populated places, SC: schools, LO: locales).
//
// The real USGS extracts are not redistributable here, so RealLike
// synthesizes datasets with the properties the experiments depend on — heavy
// spatial skew, shared geography between the joined sets, and the original
// cardinalities — as documented in DESIGN.md. All coordinates are normalized
// to [0, Domain]², the paper's [0, 10000] interval.
package workload

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Domain is the side length of the normalized coordinate space.
const Domain = 10000.0

// Paper cardinalities of the real datasets (Table 2).
const (
	CardPP = 177983 // Populated Places
	CardSC = 172188 // Schools
	CardLO = 128476 // Locales
)

// Uniform returns n points distributed uniformly at random in the domain
// (the paper's UI data), with ids 0..n-1.
func Uniform(n int, seed int64) []rtree.PointEntry {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]rtree.PointEntry, n)
	for i := range pts {
		pts[i] = rtree.PointEntry{
			P:  geom.Point{X: rng.Float64() * Domain, Y: rng.Float64() * Domain},
			ID: int64(i),
		}
	}
	return pts
}

// GaussianClusters returns n points in w equally sized clusters whose
// centers are uniform in the domain; points follow a Gaussian around their
// center with the given standard deviation per dimension (the paper's
// Figure 18 generator, σ = 1000). Out-of-domain samples are clamped, keeping
// the normalization invariant.
func GaussianClusters(n, w int, sigma float64, seed int64) []rtree.PointEntry {
	rng := rand.New(rand.NewSource(seed))
	if w < 1 {
		w = 1
	}
	centers := make([]geom.Point, w)
	for i := range centers {
		centers[i] = geom.Point{X: rng.Float64() * Domain, Y: rng.Float64() * Domain}
	}
	pts := make([]rtree.PointEntry, n)
	for i := range pts {
		c := centers[i%w]
		pts[i] = rtree.PointEntry{
			P: geom.Point{
				X: clamp(c.X+rng.NormFloat64()*sigma, 0, Domain),
				Y: clamp(c.Y+rng.NormFloat64()*sigma, 0, Domain),
			},
			ID: int64(i),
		}
	}
	return pts
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RealDataset names one of the USGS pointsets the paper evaluates on.
type RealDataset string

// The three real datasets of Table 2.
const (
	PP RealDataset = "PP" // Populated Places, 177,983 points
	SC RealDataset = "SC" // Schools, 172,188 points
	LO RealDataset = "LO" // Locales, 128,476 points
)

// Cardinality returns the paper's cardinality for the dataset (Table 2).
func (d RealDataset) Cardinality() int {
	switch d {
	case PP:
		return CardPP
	case SC:
		return CardSC
	case LO:
		return CardLO
	default:
		return 0
	}
}

// regionSeed fixes the shared settlement geography: all real-like datasets
// draw their cluster centers from the same underlying "population map", so
// schools appear near populated places the way the USGS datasets co-locate.
// This is the property the join experiments depend on.
const regionSeed = 0x5EED0FFA

// perDatasetSeed decorrelates the individual points of each dataset.
func (d RealDataset) perDatasetSeed() int64 {
	switch d {
	case PP:
		return 101
	case SC:
		return 202
	case LO:
		return 303
	default:
		return 404
	}
}

// RealLike synthesizes a stand-in for the named USGS dataset at a given
// cardinality (pass 0 for the paper's cardinality). The generator is a
// mixture model over a shared geography:
//
//   - A fixed set of "settlement" centers with power-law weights (a few big
//     metropolitan clusters, a long tail of small towns) is drawn once from
//     regionSeed and reused by every dataset, so the three datasets overlap
//     spatially the way real amenities do.
//   - 85% of points belong to a settlement, with Gaussian spread
//     proportional to the settlement's weight (big cities are wider).
//   - 15% of points are uniform background (rural noise).
//
// Scale controls only the number of points, not the geography: a 10% sample
// keeps the same skew, which is what lets scaled experiment runs preserve
// the paper's curve shapes.
func RealLike(d RealDataset, n int) []rtree.PointEntry {
	if n <= 0 {
		n = d.Cardinality()
	}
	const (
		numSettlements = 400
		clusteredFrac  = 0.85
	)
	region := rand.New(rand.NewSource(regionSeed))
	type settlement struct {
		center geom.Point
		sigma  float64
		weight float64
	}
	settlements := make([]settlement, numSettlements)
	cum := make([]float64, numSettlements)
	total := 0.0
	for i := range settlements {
		// Zipf-like weights: w_i ∝ 1/(i+1)^0.8.
		w := 1.0 / math.Pow(float64(i+1), 0.8)
		settlements[i] = settlement{
			center: geom.Point{X: region.Float64() * Domain, Y: region.Float64() * Domain},
			sigma:  20 + 350*w, // big settlements are geographically wider
			weight: w,
		}
		total += w
		cum[i] = total
	}

	rng := rand.New(rand.NewSource(d.perDatasetSeed()))
	pts := make([]rtree.PointEntry, n)
	for i := range pts {
		var p geom.Point
		if rng.Float64() < clusteredFrac {
			s := settlements[searchCum(cum, rng.Float64()*total)]
			p = geom.Point{
				X: clamp(s.center.X+rng.NormFloat64()*s.sigma, 0, Domain),
				Y: clamp(s.center.Y+rng.NormFloat64()*s.sigma, 0, Domain),
			}
		} else {
			p = geom.Point{X: rng.Float64() * Domain, Y: rng.Float64() * Domain}
		}
		pts[i] = rtree.PointEntry{P: p, ID: int64(i)}
	}
	return pts
}

// searchCum returns the first index whose cumulative weight exceeds target.
func searchCum(cum []float64, target float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
