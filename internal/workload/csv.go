package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// WritePoints writes points as CSV rows "id,x,y".
func WritePoints(w io.Writer, pts []rtree.PointEntry) error {
	cw := csv.NewWriter(w)
	for _, p := range pts {
		rec := []string{
			strconv.FormatInt(p.ID, 10),
			strconv.FormatFloat(p.P.X, 'g', -1, 64),
			strconv.FormatFloat(p.P.Y, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: write point: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPoints parses CSV rows "id,x,y" (or "x,y", assigning sequential ids).
func ReadPoints(r io.Reader) ([]rtree.PointEntry, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var out []rtree.PointEntry
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("workload: read points: %w", err)
		}
		line++
		var (
			id   int64
			x, y float64
		)
		switch len(rec) {
		case 2:
			id = int64(line - 1)
			if x, err = strconv.ParseFloat(rec[0], 64); err == nil {
				y, err = strconv.ParseFloat(rec[1], 64)
			}
		case 3:
			if id, err = strconv.ParseInt(rec[0], 10, 64); err == nil {
				if x, err = strconv.ParseFloat(rec[1], 64); err == nil {
					y, err = strconv.ParseFloat(rec[2], 64)
				}
			}
		default:
			return nil, fmt.Errorf("workload: line %d: want 2 or 3 fields, got %d", line, len(rec))
		}
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		out = append(out, rtree.PointEntry{P: geom.Point{X: x, Y: y}, ID: id})
	}
}
