package workload

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// This file holds the adversarial distributions of the result-size study —
// the paper's second future-work direction ("determine the theoretical upper
// bound of RCJ result size ... for the 'worst' possible data distributions").
// Each generator stresses a different structural extreme.

// Grid returns n points on a √n × √n integer lattice spanning the domain —
// maximal regularity; every interior point has four equidistant neighbors,
// producing heavy co-circularity.
func Grid(n int) []rtree.PointEntry {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1
	}
	step := Domain / float64(side)
	pts := make([]rtree.PointEntry, 0, n)
	for i := 0; len(pts) < n; i++ {
		x := float64(i%side)*step + step/2
		y := float64(i/side)*step + step/2
		pts = append(pts, rtree.PointEntry{P: geom.Point{X: x, Y: y}, ID: int64(len(pts))})
	}
	return pts
}

// Collinear returns n points on a horizontal line with the given jitter in
// y (0 for exactly collinear) — the 1D extreme where only neighboring
// points can pair.
func Collinear(n int, jitter float64, seed int64) []rtree.PointEntry {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]rtree.PointEntry, n)
	for i := range pts {
		pts[i] = rtree.PointEntry{
			P: geom.Point{
				X: rng.Float64() * Domain,
				Y: Domain/2 + rng.NormFloat64()*jitter,
			},
			ID: int64(i),
		}
	}
	return pts
}

// OnCircle returns n points on a circle of radius Domain/3 centered in the
// domain, with angular jitter — co-circularity at global scale: the shared
// circumcircle means every pair's enclosing circle reaches deep into the
// ring's interior.
func OnCircle(n int, jitter float64, seed int64) []rtree.PointEntry {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]rtree.PointEntry, n)
	r := Domain / 3
	c := geom.Point{X: Domain / 2, Y: Domain / 2}
	for i := range pts {
		theta := 2 * math.Pi * (float64(i) + rng.Float64()*jitter) / float64(n)
		pts[i] = rtree.PointEntry{
			P:  geom.Point{X: c.X + r*math.Cos(theta), Y: c.Y + r*math.Sin(theta)},
			ID: int64(i),
		}
	}
	return pts
}

// TwoDistantClusters returns n points split between two tight clusters at
// opposite corners — the configuration behind the paper's Figure 1 remark
// that RCJ pairs need not be close: cross-cluster pairs can qualify when the
// corridor between clusters is empty.
func TwoDistantClusters(n int, sigma float64, seed int64) []rtree.PointEntry {
	rng := rand.New(rand.NewSource(seed))
	a := geom.Point{X: Domain * 0.1, Y: Domain * 0.1}
	b := geom.Point{X: Domain * 0.9, Y: Domain * 0.9}
	pts := make([]rtree.PointEntry, n)
	for i := range pts {
		c := a
		if i%2 == 1 {
			c = b
		}
		pts[i] = rtree.PointEntry{
			P: geom.Point{
				X: clamp(c.X+rng.NormFloat64()*sigma, 0, Domain),
				Y: clamp(c.Y+rng.NormFloat64()*sigma, 0, Domain),
			},
			ID: int64(i),
		}
	}
	return pts
}
