package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

func inDomain(t *testing.T, pts []rtree.PointEntry) {
	t.Helper()
	for _, p := range pts {
		if p.P.X < 0 || p.P.X > Domain || p.P.Y < 0 || p.P.Y > Domain {
			t.Fatalf("point outside domain: %+v", p)
		}
	}
}

func uniqueIDs(t *testing.T, pts []rtree.PointEntry) {
	t.Helper()
	seen := make(map[int64]bool, len(pts))
	for _, p := range pts {
		if seen[p.ID] {
			t.Fatalf("duplicate id %d", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestUniform(t *testing.T) {
	pts := Uniform(5000, 1)
	if len(pts) != 5000 {
		t.Fatalf("len %d", len(pts))
	}
	inDomain(t, pts)
	uniqueIDs(t, pts)
	// Determinism.
	again := Uniform(5000, 1)
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatal("same seed produced different data")
		}
	}
	other := Uniform(5000, 2)
	if pts[0] == other[0] {
		t.Fatal("different seeds produced identical first point")
	}
	// Rough uniformity: each quadrant holds 25% ± 5%.
	var q [4]int
	for _, p := range pts {
		i := 0
		if p.P.X > Domain/2 {
			i |= 1
		}
		if p.P.Y > Domain/2 {
			i |= 2
		}
		q[i]++
	}
	for i, c := range q {
		frac := float64(c) / float64(len(pts))
		if frac < 0.20 || frac > 0.30 {
			t.Errorf("quadrant %d holds %.1f%%", i, 100*frac)
		}
	}
}

func TestGaussianClusters(t *testing.T) {
	pts := GaussianClusters(4000, 5, 300, 7)
	if len(pts) != 4000 {
		t.Fatalf("len %d", len(pts))
	}
	inDomain(t, pts)
	uniqueIDs(t, pts)
	// Clustered data is much more concentrated than uniform: mean nearest
	// cluster-center distance is bounded by a few σ. Just check the spread
	// is visibly non-uniform via quadrant imbalance OR pass trivially if
	// centers happen to be spread (probabilistic, so keep it loose): the
	// average pairwise distance of a clustered set with w=5, σ=300 is well
	// below the uniform expectation (~5214).
	var sum float64
	cnt := 0
	for i := 0; i < 300; i++ {
		for j := i + 1; j < 300; j++ {
			sum += pts[i].P.Dist(pts[j].P)
			cnt++
		}
	}
	if mean := sum / float64(cnt); mean > 5214 {
		t.Errorf("clustered data looks uniform: mean pairwise distance %.0f", mean)
	}
	if got := GaussianClusters(10, 0, 100, 1); len(got) != 10 {
		t.Fatalf("w=0 clamp failed: %d", len(got))
	}
}

func TestRealLikeProperties(t *testing.T) {
	for _, d := range []RealDataset{PP, SC, LO} {
		pts := RealLike(d, 3000)
		if len(pts) != 3000 {
			t.Fatalf("%s: len %d", d, len(pts))
		}
		inDomain(t, pts)
		uniqueIDs(t, pts)
	}
	// Default cardinalities follow Table 2.
	if PP.Cardinality() != 177983 || SC.Cardinality() != 172188 || LO.Cardinality() != 128476 {
		t.Fatal("Table 2 cardinalities wrong")
	}
	if got := RealLike(PP, 0); len(got) != CardPP {
		t.Fatalf("default cardinality: %d", len(got))
	}
}

// TestRealLikeSharedGeography verifies the property the join experiments
// rely on: the datasets co-locate. The mean distance from an SC point to its
// nearest PP point must be far below the uniform expectation.
func TestRealLikeSharedGeography(t *testing.T) {
	pp := RealLike(PP, 4000)
	sc := RealLike(SC, 500)
	var sum float64
	for _, s := range sc {
		best := math.Inf(1)
		for _, p := range pp {
			if d := s.P.Dist2(p.P); d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	mean := sum / float64(len(sc))
	// Uniform 4000 points in 10000² would give mean NN distance ≈ 79;
	// co-located clustered data must be tighter.
	if mean > 79 {
		t.Errorf("SC and PP do not share geography: mean NN distance %.1f", mean)
	}
}

func TestRealLikeSkew(t *testing.T) {
	pts := RealLike(PP, 8000)
	// Partition into a 10×10 grid; skewed data concentrates: the busiest
	// cell should hold many times the uniform share.
	var cells [100]int
	for _, p := range pts {
		cx := int(p.P.X / (Domain / 10))
		cy := int(p.P.Y / (Domain / 10))
		if cx > 9 {
			cx = 9
		}
		if cy > 9 {
			cy = 9
		}
		cells[cy*10+cx]++
	}
	max := 0
	for _, c := range cells {
		if c > max {
			max = c
		}
	}
	if float64(max) < 3*float64(len(pts))/100 {
		t.Errorf("real-like data not skewed: busiest cell holds %d of %d", max, len(pts))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Uniform(100, 3)
	var buf bytes.Buffer
	if err := WritePoints(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip %d != %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i] != pts[i] {
			t.Fatalf("row %d: %+v != %+v", i, got[i], pts[i])
		}
	}
}

func TestReadPointsTwoColumn(t *testing.T) {
	in := strings.NewReader("1.5,2.5\n3,4\n")
	got, err := ReadPoints(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("two-column parse: %+v", got)
	}
	if got[0].P != (geom.Point{X: 1.5, Y: 2.5}) {
		t.Fatalf("coords: %+v", got[0].P)
	}
}

func TestReadPointsErrors(t *testing.T) {
	if _, err := ReadPoints(strings.NewReader("1,2,3,4\n")); err == nil {
		t.Fatal("4 fields accepted")
	}
	if _, err := ReadPoints(strings.NewReader("x,2,3\n")); err == nil {
		t.Fatal("bad id accepted")
	}
	if _, err := ReadPoints(strings.NewReader("1,x,3\n")); err == nil {
		t.Fatal("bad coord accepted")
	}
	got, err := ReadPoints(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v %d", err, len(got))
	}
}
