// Package stream bridges a callback-producing join into a pull-based
// iterator. It exists because every streaming surface of this repo
// (rcj.Engine.Join, rcjnet.JoinSeq) needs the same subtle goroutine
// lifecycle: a producer emitting through a bounded channel, cancellation on
// early break, and a guarantee that the producer goroutine is joined before
// the iterator returns.
package stream

import (
	"context"
	"iter"
)

// Seq2 runs produce in a goroutine and returns an iterator over the values
// it emits, terminated by produce's error (if any). The contract:
//
//   - emit blocks while the consumer is behind (bounded by buffer) and
//     returns without delivering once ctx is cancelled.
//   - Cancelling parent, or breaking out of the range loop, cancels the
//     ctx passed to produce; produce is expected to notice and return.
//   - The producer goroutine is always joined before the iterator returns,
//     so no goroutine outlives the range loop.
//   - A non-nil error from produce is yielded as the final element (with a
//     zero value), unless the consumer already broke out.
func Seq2[T any](parent context.Context, buffer int, produce func(ctx context.Context, emit func(T)) error) iter.Seq2[T, error] {
	if parent == nil {
		parent = context.Background()
	}
	return func(yield func(T, error) bool) {
		ctx, cancel := context.WithCancel(parent)
		defer cancel()

		ch := make(chan T, buffer)
		done := make(chan error, 1)
		emit := func(v T) {
			select {
			case ch <- v:
			case <-ctx.Done():
				// The consumer is gone; the producer observes ctx and
				// unwinds on its own.
			}
		}
		go func() {
			done <- produce(ctx, emit)
			close(ch)
		}()

		for v := range ch {
			if !yield(v, nil) {
				cancel()
				for range ch {
				}
				<-done
				return
			}
		}
		if err := <-done; err != nil {
			var zero T
			yield(zero, err)
		}
	}
}
