// Package pagecodec encodes R-tree page images as the variable-length blobs
// of the .rcjx format v3: each page becomes a 1-byte kind tag followed by a
// payload. Leaf pages — the bulk of any index, and highly regular: sorted
// nearby coordinates, often-sequential ids — pack into delta/varint streams
// at typically under half the raw size; everything else (internal nodes,
// pages the heuristics cannot prove safe) is stored verbatim. Decoding always
// reproduces the original page byte for byte, which is what lets format v3
// keep its per-page CRC table over the *uncompressed* images: one checksum
// format across v2 and v3, verified after decode on every backend.
//
// The codec is deliberately self-contained (standard library only, no
// repo-internal imports) so the storage layer can use it without creating an
// import cycle with the rtree package that defines the page layout. The few
// layout facts it needs are pinned here and guarded by tests against the
// rtree encoder:
//
//	offset 0: uint8  flags (bit 0: leaf)
//	offset 1: uint8  reserved
//	offset 2: uint16 entry count (little endian)
//	offset 4: count × 24-byte leaf entries: x float64, y float64, id int64
//	tail:     zero padding to the end of the page
//
// Blob layout:
//
//	kind 0 (raw):      the page image, verbatim (len = 1 + pageSize)
//	kind 1 (leafpack): the 4-byte header verbatim, then three streams:
//	                   xs — first value as raw 8 bytes (LE float64 bits),
//	                        then uvarint(bits XOR previous bits) per value;
//	                   ys — same encoding;
//	                   ids — varint(id - previous id) per value (the first
//	                        delta is against 0), zig-zag as per encoding/binary.
//
// XOR-with-previous exploits that neighbouring points in a bulk-loaded leaf
// share sign, exponent, and high mantissa bits: the XOR is a numerically
// small uint64, which uvarint stores in a few bytes. The encoder only emits
// leafpack when the result is strictly smaller than raw, so a blob never
// exceeds 1 + pageSize bytes.
package pagecodec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Blob kinds: the first byte of every encoded page.
const (
	// KindRaw marks a verbatim page image.
	KindRaw = 0x00
	// KindLeafPack marks a delta/varint-compressed leaf page.
	KindLeafPack = 0x01
)

const (
	headerSize = 4
	entrySize  = 24
)

// ErrMalformed is the typed failure of DecodePage: the blob does not decode
// to a page of the expected size (unknown kind, truncated or trailing stream
// bytes, entry count exceeding the page).
var ErrMalformed = errors.New("pagecodec: malformed page blob")

// MaxBlobSize returns the largest blob EncodePage can emit for a page of the
// given size: the raw fallback's kind byte plus the verbatim image.
func MaxBlobSize(pageSize int) int { return 1 + pageSize }

// AppendPage appends the blob encoding of one page image to dst and returns
// the extended slice. Leaf pages with an all-zero tail pack; anything else —
// internal nodes, leaves whose packed form would not be smaller — is stored
// raw. DecodePage inverts the result exactly.
func AppendPage(dst, page []byte) []byte {
	mark := len(dst)
	if packed, ok := appendLeafPack(append(dst, KindLeafPack), page); ok && len(packed)-mark < 1+len(page) {
		return packed
	}
	dst = append(dst, KindRaw)
	return append(dst, page...)
}

// appendLeafPack appends the leafpack payload of page to dst, reporting false
// (dst unusable) when the page is not a packable leaf: not flagged as a leaf,
// entries exceeding the page, or nonzero bytes after the last entry (which
// verbatim-reproducing decode could not restore).
func appendLeafPack(dst, page []byte) ([]byte, bool) {
	if len(page) < headerSize || page[0]&1 == 0 {
		return nil, false
	}
	count := int(binary.LittleEndian.Uint16(page[2:4]))
	end := headerSize + count*entrySize
	if end > len(page) {
		return nil, false
	}
	for _, b := range page[end:] {
		if b != 0 {
			return nil, false
		}
	}
	dst = append(dst, page[:headerSize]...)
	for _, col := range [2]int{0, 8} { // the x then y coordinate streams
		var prev uint64
		for i := 0; i < count; i++ {
			v := binary.LittleEndian.Uint64(page[headerSize+i*entrySize+col:])
			if i == 0 {
				dst = binary.LittleEndian.AppendUint64(dst, v)
			} else {
				dst = binary.AppendUvarint(dst, v^prev)
			}
			prev = v
		}
	}
	var prev int64
	for i := 0; i < count; i++ {
		id := int64(binary.LittleEndian.Uint64(page[headerSize+i*entrySize+16:]))
		dst = binary.AppendVarint(dst, id-prev)
		prev = id
	}
	return dst, true
}

// DecodePage decodes one blob into page, which must be exactly the page size
// the blob was encoded from. The result is byte-identical to the original
// image, so a per-page checksum computed before encoding verifies after.
func DecodePage(page, blob []byte) error {
	if len(blob) == 0 {
		return fmt.Errorf("%w: empty blob", ErrMalformed)
	}
	switch blob[0] {
	case KindRaw:
		if len(blob)-1 != len(page) {
			return fmt.Errorf("%w: raw blob of %d bytes for a %d-byte page", ErrMalformed, len(blob)-1, len(page))
		}
		copy(page, blob[1:])
		return nil
	case KindLeafPack:
		return decodeLeafPack(page, blob[1:])
	default:
		return fmt.Errorf("%w: unknown blob kind %#x", ErrMalformed, blob[0])
	}
}

func decodeLeafPack(page, b []byte) error {
	if len(b) < headerSize {
		return fmt.Errorf("%w: leafpack blob of %d bytes too small for node header", ErrMalformed, len(b))
	}
	if b[0]&1 == 0 {
		return fmt.Errorf("%w: leafpack blob of a non-leaf page", ErrMalformed)
	}
	count := int(binary.LittleEndian.Uint16(b[2:4]))
	end := headerSize + count*entrySize
	if end > len(page) {
		return fmt.Errorf("%w: %d entries exceed a %d-byte page", ErrMalformed, count, len(page))
	}
	copy(page[:headerSize], b[:headerSize])
	b = b[headerSize:]
	for _, col := range [2]int{0, 8} {
		var prev uint64
		for i := 0; i < count; i++ {
			if i == 0 {
				if len(b) < 8 {
					return fmt.Errorf("%w: truncated coordinate stream", ErrMalformed)
				}
				prev = binary.LittleEndian.Uint64(b)
				b = b[8:]
			} else {
				d, n := binary.Uvarint(b)
				if n <= 0 {
					return fmt.Errorf("%w: truncated coordinate stream", ErrMalformed)
				}
				b = b[n:]
				prev ^= d
			}
			binary.LittleEndian.PutUint64(page[headerSize+i*entrySize+col:], prev)
		}
	}
	var prev int64
	for i := 0; i < count; i++ {
		d, n := binary.Varint(b)
		if n <= 0 {
			return fmt.Errorf("%w: truncated id stream", ErrMalformed)
		}
		b = b[n:]
		prev += d
		binary.LittleEndian.PutUint64(page[headerSize+i*entrySize+16:], uint64(prev))
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after id stream", ErrMalformed, len(b))
	}
	for i := end; i < len(page); i++ {
		page[i] = 0
	}
	return nil
}
