package pagecodec

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

const testPageSize = 1024

// makeLeafPage builds a page image in the rtree leaf layout: header, count
// 24-byte entries, zero tail.
func makeLeafPage(t *testing.T, xs, ys []float64, ids []int64) []byte {
	t.Helper()
	page := make([]byte, testPageSize)
	page[0] = 1
	binary.LittleEndian.PutUint16(page[2:], uint16(len(ids)))
	for i := range ids {
		off := headerSize + i*entrySize
		binary.LittleEndian.PutUint64(page[off:], math.Float64bits(xs[i]))
		binary.LittleEndian.PutUint64(page[off+8:], math.Float64bits(ys[i]))
		binary.LittleEndian.PutUint64(page[off+16:], uint64(ids[i]))
	}
	return page
}

func roundTrip(t *testing.T, page []byte) []byte {
	t.Helper()
	blob := AppendPage(nil, page)
	if len(blob) > MaxBlobSize(len(page)) {
		t.Fatalf("blob of %d bytes exceeds MaxBlobSize %d", len(blob), MaxBlobSize(len(page)))
	}
	got := make([]byte, len(page))
	for i := range got {
		got[i] = 0xAA // decode must overwrite every byte, including the tail
	}
	if err := DecodePage(got, blob); err != nil {
		t.Fatalf("DecodePage: %v", err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("decoded page differs from original")
	}
	return blob
}

// TestLeafPackRoundTripAndRatio: a typical bulk-loaded leaf (sorted nearby
// coordinates, sequential ids) must round-trip byte-identically and actually
// compress.
func TestLeafPackRoundTripAndRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 42 // full 1K leaf
	xs, ys, ids := make([]float64, n), make([]float64, n), make([]int64, n)
	x := rng.Float64() * 1000
	for i := range xs {
		x += rng.Float64() // sorted, close together: the STR leaf shape
		xs[i] = x
		ys[i] = 500 + rng.Float64()*10
		ids[i] = int64(1000 + i)
	}
	page := makeLeafPage(t, xs, ys, ids)
	blob := roundTrip(t, page)
	if blob[0] != KindLeafPack {
		t.Fatalf("packable leaf stored with kind %d", blob[0])
	}
	if len(blob) >= headerSize+n*entrySize {
		t.Fatalf("leafpack of %d bytes did not beat the %d-byte payload", len(blob), headerSize+n*entrySize)
	}
}

// TestRawFallbacks pins the cases that must not pack: internal pages, leaves
// with dirty tails (which verbatim decode could not restore), and adversarial
// coordinates where varint streams would expand.
func TestRawFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))

	internal := make([]byte, testPageSize)
	internal[0] = 0 // not a leaf
	binary.LittleEndian.PutUint16(internal[2:], 7)
	rng.Read(internal[4:200])
	if blob := roundTrip(t, internal); blob[0] != KindRaw {
		t.Fatalf("internal page stored with kind %d", blob[0])
	}

	dirty := makeLeafPage(t, []float64{1}, []float64{2}, []int64{3})
	dirty[testPageSize-1] = 0xFF
	if blob := roundTrip(t, dirty); blob[0] != KindRaw {
		t.Fatalf("dirty-tail leaf stored with kind %d", blob[0])
	}

	// Uncorrelated full-range bit patterns: XOR deltas are ~8-byte uvarints
	// plus the streams' overhead, so raw must win.
	const n = 42
	xs, ys, ids := make([]float64, n), make([]float64, n), make([]int64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(rng.Uint64())
		ys[i] = math.Float64frombits(rng.Uint64())
		ids[i] = int64(rng.Uint64())
	}
	adversarial := makeLeafPage(t, xs, ys, ids)
	if blob := roundTrip(t, adversarial); blob[0] != KindRaw {
		t.Fatalf("incompressible leaf stored with kind %d", blob[0])
	}
}

// TestLeafPackEdgeShapes: empty leaves, single entries, duplicate points, and
// extreme float bit patterns all round-trip.
func TestLeafPackEdgeShapes(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		ys   []float64
		ids  []int64
	}{
		{"empty", nil, nil, nil},
		{"single", []float64{3.25}, []float64{-0.5}, []int64{9}},
		{"duplicates", []float64{7, 7, 7}, []float64{7, 7, 7}, []int64{1, 1, 1}},
		{"specials",
			[]float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN()},
			[]float64{math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64, 1, -1},
			[]int64{math.MaxInt64, math.MinInt64, 0, -1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			roundTrip(t, makeLeafPage(t, tc.xs, tc.ys, tc.ids))
		})
	}
}

// TestDecodeMalformed pins ErrMalformed on every malformed-blob shape.
func TestDecodeMalformed(t *testing.T) {
	page := make([]byte, testPageSize)
	good := AppendPage(nil, makeLeafPage(t, []float64{1, 2}, []float64{3, 4}, []int64{5, 6}))
	bad := [][]byte{
		nil,                            // empty
		{0x7F},                         // unknown kind
		{KindRaw, 1, 2, 3},             // raw size mismatch
		good[:len(good)-1],             // truncated id stream
		good[:12],                      // truncated coordinate stream
		{KindLeafPack, 0, 0},           // short header
		{KindLeafPack, 0, 0, 255, 255}, // non-leaf flag byte, then count overflow
		append(bytes.Clone(good), 0),   // trailing byte
	}
	// Count overflowing the page: header claims 65535 entries.
	over := []byte{KindLeafPack, 1, 0, 0xFF, 0xFF}
	bad = append(bad, over)
	for i, blob := range bad {
		if err := DecodePage(page, blob); err == nil {
			t.Fatalf("case %d: malformed blob decoded", i)
		}
	}
}

// FuzzPageCodec throws arbitrary bytes at DecodePage (must never panic, only
// error) and, when the input parses as a leaf page image, checks the
// encode→decode round trip is byte-identical.
func FuzzPageCodec(f *testing.F) {
	f.Add([]byte{KindRaw}, []byte{1, 0, 0, 0})
	f.Add(AppendPage(nil, make([]byte, 64)), make([]byte, 64))
	leaf := make([]byte, 128)
	leaf[0] = 1
	binary.LittleEndian.PutUint16(leaf[2:], 2)
	f.Add(AppendPage(nil, leaf), leaf)
	f.Fuzz(func(t *testing.T, blob, pageImage []byte) {
		page := make([]byte, 256)
		_ = DecodePage(page, blob) // arbitrary blobs: must not panic
		if len(pageImage) < headerSize || len(pageImage) > 1<<12 {
			return
		}
		enc := AppendPage(nil, pageImage)
		got := make([]byte, len(pageImage))
		if err := DecodePage(got, enc); err != nil {
			t.Fatalf("own encoding failed to decode: %v", err)
		}
		if !bytes.Equal(got, pageImage) {
			t.Fatal("encode/decode round trip not byte-identical")
		}
	})
}
