package exp

import (
	"fmt"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/workload"
)

// SweepRow is one measurement of a parameter sweep: algorithm costs and the
// result cardinality at one sweep value.
type SweepRow struct {
	// Param is the swept value: data size n in thousands (Fig 16), the
	// cardinality ratio |P|:|Q| encoded as P-share (Fig 17), or the number
	// of clusters w (Fig 18).
	Param     string
	Algorithm core.Algorithm
	Cost      cost.Breakdown
	Results   int64
}

// Fig16 regenerates Figure 16 ("The Effect of Data Size n, |P| = |Q| = n, UI
// data"): time per algorithm and RCJ result cardinality as n sweeps 50K to
// 800K (× Scale).
func Fig16(cfg Config) ([]SweepRow, error) {
	cfg = cfg.withDefaults()
	var rows []SweepRow
	for _, nK := range []int{50, 100, 200, 400, 800} {
		n := cfg.scaled(nK * 1000)
		env, err := cfg.newEnv(workload.Uniform(n, 1), workload.Uniform(n, 2))
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%dK", nK)
		for _, alg := range rcjAlgorithms {
			res, err := env.Run(core.Options{Algorithm: alg})
			if err != nil {
				return nil, err
			}
			rows = append(rows, SweepRow{Param: label, Algorithm: alg, Cost: res.Cost, Results: res.Stats.Results})
		}
	}
	printSweep(cfg, "Figure 16: The Effect of Data Size n, |P|=|Q|=n, UI data", "n", rows)
	return rows, nil
}

// Fig17 regenerates Figure 17 ("The Effect of Cardinality Ratio |P|:|Q|,
// |P|+|Q| = 400K, UI data"): the total cardinality is fixed while the split
// sweeps 1:4 through 4:1.
func Fig17(cfg Config) ([]SweepRow, error) {
	cfg = cfg.withDefaults()
	total := cfg.scaled(400_000)
	ratios := []struct {
		label  string
		pShare float64
	}{
		{"1:4", 1.0 / 5}, {"1:2", 1.0 / 3}, {"1:1", 1.0 / 2}, {"2:1", 2.0 / 3}, {"4:1", 4.0 / 5},
	}
	var rows []SweepRow
	for _, r := range ratios {
		nP := int(float64(total) * r.pShare)
		nQ := total - nP
		env, err := cfg.newEnv(workload.Uniform(nQ, 1), workload.Uniform(nP, 2))
		if err != nil {
			return nil, err
		}
		for _, alg := range rcjAlgorithms {
			res, err := env.Run(core.Options{Algorithm: alg})
			if err != nil {
				return nil, err
			}
			rows = append(rows, SweepRow{Param: r.label, Algorithm: alg, Cost: res.Cost, Results: res.Stats.Results})
		}
	}
	printSweep(cfg, "Figure 17: The Effect of Cardinality Ratio |P|:|Q|, |P|+|Q|=400K, UI data", "|P|:|Q|", rows)
	return rows, nil
}

// Fig18 regenerates Figure 18 ("The Effect of Number of Clusters w, |P| =
// |Q| = 200K, Gaussian data"): both inputs are Gaussian with w clusters of
// standard deviation 1000 per dimension.
func Fig18(cfg Config) ([]SweepRow, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(200_000)
	var rows []SweepRow
	for _, w := range []int{2, 5, 10, 15, 20} {
		env, err := cfg.newEnv(workload.GaussianClusters(n, w, 1000, 1),
			workload.GaussianClusters(n, w, 1000, 2))
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", w)
		for _, alg := range rcjAlgorithms {
			res, err := env.Run(core.Options{Algorithm: alg})
			if err != nil {
				return nil, err
			}
			rows = append(rows, SweepRow{Param: label, Algorithm: alg, Cost: res.Cost, Results: res.Stats.Results})
		}
	}
	printSweep(cfg, "Figure 18: The Effect of Number of Clusters w, |P|=|Q|=200K, Gaussian data", "w", rows)
	return rows, nil
}

func printSweep(cfg Config, title, paramLabel string, rows []SweepRow) {
	fmt.Fprintf(cfg.W, "%s (scale=%.3g)\n", title, cfg.Scale)
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\talgorithm\ttotal\tio\tcpu\tfaults\tresults\n", paramLabel)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\t%d\n", r.Param, r.Algorithm,
			fmtDuration(r.Cost.Total()), fmtDuration(r.Cost.IOTime), fmtDuration(r.Cost.CPUTime),
			r.Cost.Faults, r.Results)
	}
	tw.Flush()
	fmt.Fprintln(cfg.W)
}
