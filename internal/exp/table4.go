package exp

import (
	"fmt"
	"text/tabwriter"

	"repro/internal/core"
)

// Table4Row reproduces one column of Table 4: the candidate-pair counts of
// each algorithm on one real-data join combination, alongside the true
// result cardinality.
type Table4Row struct {
	Combo      string
	Brute      int64 // |P|·|Q|, the brute-force candidate set
	INJ        int64
	BIJ        int64
	OBJ        int64
	RCJResults int64
}

// Table4 regenerates Table 4 ("Number of Candidate Pairs, Real Data") on the
// SP and LP combinations. BRUTE's candidate count is the Cartesian product
// cardinality and is computed, not executed.
func Table4(cfg Config) ([]Table4Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table4Row
	for _, name := range []string{"SP", "LP"} {
		cb, _ := ComboByName(name)
		env, err := cfg.NewComboEnv(cb)
		if err != nil {
			return nil, err
		}
		row := Table4Row{
			Combo: name,
			Brute: int64(env.TP.Size()) * int64(env.TQ.Size()),
		}
		for _, alg := range []core.Algorithm{core.AlgINJ, core.AlgBIJ, core.AlgOBJ} {
			res, err := env.Run(core.Options{Algorithm: alg})
			if err != nil {
				return nil, err
			}
			switch alg {
			case core.AlgINJ:
				row.INJ = res.Stats.Candidates
			case core.AlgBIJ:
				row.BIJ = res.Stats.Candidates
			case core.AlgOBJ:
				row.OBJ = res.Stats.Candidates
			}
			row.RCJResults = res.Stats.Results
		}
		rows = append(rows, row)
	}
	printTable4(cfg, rows)
	return rows, nil
}

func printTable4(cfg Config, rows []Table4Row) {
	fmt.Fprintf(cfg.W, "Table 4: Number of Candidate Pairs, Real(-like) Data (scale=%.3g)\n", cfg.Scale)
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Algorithm\t%s\t%s\n", rows[0].Combo, rows[len(rows)-1].Combo)
	get := func(f func(Table4Row) int64) []any {
		out := make([]any, len(rows))
		for i, r := range rows {
			out[i] = f(r)
		}
		return out
	}
	fmt.Fprintf(tw, "BRUTE\t%d\t%d\n", get(func(r Table4Row) int64 { return r.Brute })...)
	fmt.Fprintf(tw, "INJ\t%d\t%d\n", get(func(r Table4Row) int64 { return r.INJ })...)
	fmt.Fprintf(tw, "BIJ\t%d\t%d\n", get(func(r Table4Row) int64 { return r.BIJ })...)
	fmt.Fprintf(tw, "OBJ\t%d\t%d\n", get(func(r Table4Row) int64 { return r.OBJ })...)
	fmt.Fprintf(tw, "RCJ Results\t%d\t%d\n", get(func(r Table4Row) int64 { return r.RCJResults })...)
	tw.Flush()
	fmt.Fprintln(cfg.W)
}
