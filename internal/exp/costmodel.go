package exp

import (
	"fmt"
	"math"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/workload"
)

// This file implements the paper's first future-work direction: "devise
// accurate I/O cost models for our proposed algorithms". The estimator is
// sampling-based, in the style of query-optimizer cardinality estimation:
// the join runs over every k-th leaf of TQ, its per-leaf work is measured,
// and the full run's cost is the linear extrapolation. The experiment
// validates the prediction against the actual full run.
//
// Two model assumptions make the extrapolation sound and are themselves
// validated here: (i) filter/verification work is proportional to the
// number of outer leaves processed (every leaf triggers one bulk filter and
// one verification pass), and (ii) under depth-first order the buffer
// reaches a steady-state miss ratio quickly, so faults also scale near
// linearly — the sampled run's transient warm-up is the main error source
// the experiment quantifies.

// CostModelRow compares the extrapolated prediction against the measured
// full run for one algorithm.
type CostModelRow struct {
	Algorithm         core.Algorithm
	SampleEvery       int
	PredictedAccesses int64
	MeasuredAccesses  int64
	PredictedFaults   int64
	MeasuredFaults    int64
	PredictedCands    int64
	MeasuredCands     int64
	AccessErrPct      float64
	FaultErrPct       float64
	CandErrPct        float64
}

// CostModel runs the sampling estimator at 1-in-10 leaves on UI data and
// validates it against the full join.
func CostModel(cfg Config) ([]CostModelRow, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(100_000)
	env, err := cfg.newEnv(workload.Uniform(n, 1), workload.Uniform(n, 2))
	if err != nil {
		return nil, err
	}
	const every = 10
	var rows []CostModelRow
	for _, alg := range rcjAlgorithms {
		sample, err := env.Run(core.Options{Algorithm: alg, LeafSampleEvery: every})
		if err != nil {
			return nil, err
		}
		full, err := env.Run(core.Options{Algorithm: alg})
		if err != nil {
			return nil, err
		}
		// Extrapolate by the exact leaf fraction the sample processed
		// (which differs from 1/every when the leaf count is not a
		// multiple of the stride).
		factor := float64(full.Stats.OuterLeaves) / float64(sample.Stats.OuterLeaves)
		scale := func(v int64) int64 { return int64(float64(v) * factor) }
		row := CostModelRow{
			Algorithm:         alg,
			SampleEvery:       every,
			PredictedAccesses: scale(sample.Cost.NodeAccesses),
			MeasuredAccesses:  full.Cost.NodeAccesses,
			PredictedFaults:   scale(sample.Cost.Faults),
			MeasuredFaults:    full.Cost.Faults,
			PredictedCands:    scale(sample.Stats.Candidates),
			MeasuredCands:     full.Stats.Candidates,
		}
		row.AccessErrPct = relErr(row.PredictedAccesses, row.MeasuredAccesses)
		row.FaultErrPct = relErr(row.PredictedFaults, row.MeasuredFaults)
		row.CandErrPct = relErr(row.PredictedCands, row.MeasuredCands)
		rows = append(rows, row)
	}
	printCostModel(cfg, n, rows)
	return rows, nil
}

func relErr(pred, meas int64) float64 {
	if meas == 0 {
		return 0
	}
	return 100 * math.Abs(float64(pred-meas)) / float64(meas)
}

func printCostModel(cfg Config, n int, rows []CostModelRow) {
	fmt.Fprintf(cfg.W, "Cost-model validation (future work §6): 1-in-%d leaf sampling, |P|=|Q|=%d UI (scale=%.3g)\n",
		rows[0].SampleEvery, n, cfg.Scale)
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm\taccesses pred/meas\terr\tfaults pred/meas\terr\tcandidates pred/meas\terr\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d/%d\t%.1f%%\t%d/%d\t%.1f%%\t%d/%d\t%.1f%%\n",
			r.Algorithm, r.PredictedAccesses, r.MeasuredAccesses, r.AccessErrPct,
			r.PredictedFaults, r.MeasuredFaults, r.FaultErrPct,
			r.PredictedCands, r.MeasuredCands, r.CandErrPct)
	}
	tw.Flush()
	fmt.Fprintln(cfg.W)
}
