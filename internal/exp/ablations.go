package exp

import (
	"fmt"
	"text/tabwriter"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/rtree"
	"repro/internal/storage"
	"repro/internal/workload"
)

// AblationRow is one variant measurement of an ablation study.
type AblationRow struct {
	Study   string
	Variant string
	Cost    cost.Breakdown
	Detail  string
}

// Ablations runs the design-choice studies DESIGN.md calls out, each
// isolating one mechanism of the paper's algorithms:
//
//   - search order: depth-first vs random TQ leaf order (Section 3.4)
//   - symmetric pruning: BIJ vs OBJ candidate counts (Lemma 5)
//   - face rule: verification with and without the face-inside-circle
//     shortcut (Algorithm 3 case 4)
//   - no buffer: the 1% buffer against none at all
//   - build method: STR bulk load vs R* insertion (index construction)
func Ablations(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(200_000)
	env, err := cfg.newEnv(workload.Uniform(n, 1), workload.Uniform(n, 2))
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	add := func(study, variant string, res RunResult, detail string) {
		rows = append(rows, AblationRow{Study: study, Variant: variant, Cost: res.Cost, Detail: detail})
	}

	// Search order (Section 3.4): locality of depth-first traversal.
	df, err := env.Run(core.Options{Algorithm: core.AlgOBJ})
	if err != nil {
		return nil, err
	}
	add("search-order", "depth-first", df, fmt.Sprintf("faults=%d", df.Cost.Faults))
	rnd, err := env.Run(core.Options{Algorithm: core.AlgOBJ, RandomLeafOrder: true, Seed: 42})
	if err != nil {
		return nil, err
	}
	add("search-order", "random", rnd, fmt.Sprintf("faults=%d", rnd.Cost.Faults))

	// Symmetric pruning (Lemma 5): candidate counts.
	bij, err := env.Run(core.Options{Algorithm: core.AlgBIJ})
	if err != nil {
		return nil, err
	}
	add("symmetric-pruning", "off (BIJ)", bij, fmt.Sprintf("candidates=%d", bij.Stats.Candidates))
	obj, err := env.Run(core.Options{Algorithm: core.AlgOBJ})
	if err != nil {
		return nil, err
	}
	add("symmetric-pruning", "on (OBJ)", obj, fmt.Sprintf("candidates=%d", obj.Stats.Candidates))

	// Face rule (Algorithm 3 case 4): verification node visits.
	faceOn, err := env.Run(core.Options{Algorithm: core.AlgOBJ})
	if err != nil {
		return nil, err
	}
	add("face-rule", "on", faceOn, fmt.Sprintf("verify-visits=%d", faceOn.Stats.VerifiedNodes))
	faceOff, err := env.Run(core.Options{Algorithm: core.AlgOBJ, DisableFaceRule: true})
	if err != nil {
		return nil, err
	}
	add("face-rule", "off", faceOff, fmt.Sprintf("verify-visits=%d", faceOff.Stats.VerifiedNodes))

	// Buffering: the paper's 1% buffer vs none.
	env.SetBufferFrac(cfg.BufferFrac)
	buffered, err := env.Run(core.Options{Algorithm: core.AlgOBJ})
	if err != nil {
		return nil, err
	}
	add("buffer", fmt.Sprintf("%.1f%%", cfg.BufferFrac*100), buffered, fmt.Sprintf("faults=%d", buffered.Cost.Faults))
	env.Pool.Resize(0)
	unbuffered, err := env.Run(core.Options{Algorithm: core.AlgOBJ})
	if err != nil {
		return nil, err
	}
	env.SetBufferFrac(cfg.BufferFrac)
	add("buffer", "none", unbuffered, fmt.Sprintf("faults=%d", unbuffered.Cost.Faults))

	// Build method: STR bulk load vs R* one-by-one insertion.
	buildPts := workload.Uniform(cfg.scaled(100_000), 3)
	for _, variant := range []string{"str-bulk", "rstar-insert"} {
		pager := storage.NewMemPager(cfg.PageSize)
		pool := buffer.NewPool(-1)
		tree, err := rtree.New(pager, pool, rtree.Config{PageSize: cfg.PageSize})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if variant == "str-bulk" {
			err = tree.BulkLoad(buildPts, 0)
		} else {
			for _, p := range buildPts {
				if err = tree.Insert(p.P, p.ID); err != nil {
					break
				}
			}
		}
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		rows = append(rows, AblationRow{
			Study:   "build-method",
			Variant: variant,
			Cost:    cost.Breakdown{CPUTime: elapsed},
			Detail:  fmt.Sprintf("pages=%d height=%d", tree.NumPages(), tree.Height()),
		})
	}

	// Split policy: the paper's R* split vs Guttman's linear split. Both
	// insert-built trees then serve the same join; the poorer index shows
	// up as extra faults.
	splitN := cfg.scaled(50_000)
	splitP := workload.Uniform(splitN, 4)
	splitQ := workload.Uniform(splitN, 5)
	for _, pol := range []struct {
		name   string
		policy rtree.SplitPolicy
	}{{"rstar-split", rtree.SplitRStar}, {"linear-split", rtree.SplitLinear}} {
		pool := buffer.NewPool(-1)
		build := func(pts []rtree.PointEntry, owner uint32) (*rtree.Tree, error) {
			tr, err := rtree.New(storage.NewMemPager(cfg.PageSize), pool,
				rtree.Config{PageSize: cfg.PageSize, Owner: owner, SplitPolicy: pol.policy})
			if err != nil {
				return nil, err
			}
			for _, p := range pts {
				if err := tr.Insert(p.P, p.ID); err != nil {
					return nil, err
				}
			}
			return tr, nil
		}
		tq, err := build(splitQ, 1)
		if err != nil {
			return nil, err
		}
		tp, err := build(splitP, 2)
		if err != nil {
			return nil, err
		}
		splitEnv := &Env{Pool: pool, TQ: tq, TP: tp, Ctx: cfg.Ctx}
		splitEnv.SetBufferFrac(cfg.BufferFrac)
		res, err := splitEnv.Run(core.Options{Algorithm: core.AlgOBJ})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Study:   "split-policy",
			Variant: pol.name,
			Cost:    res.Cost,
			Detail:  fmt.Sprintf("faults=%d pages=%d", res.Cost.Faults, tq.NumPages()+tp.NumPages()),
		})
	}

	printAblations(cfg, rows)
	return rows, nil
}

func printAblations(cfg Config, rows []AblationRow) {
	fmt.Fprintf(cfg.W, "Ablation studies (DESIGN.md §5), scale=%.3g\n", cfg.Scale)
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "study\tvariant\ttotal\tio\tcpu\tdetail\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n", r.Study, r.Variant,
			fmtDuration(r.Cost.Total()), fmtDuration(r.Cost.IOTime), fmtDuration(r.Cost.CPUTime), r.Detail)
	}
	tw.Flush()
	fmt.Fprintln(cfg.W)
}
