package exp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/workload"
)

func TestCostModelPredictionsReasonable(t *testing.T) {
	rows, err := CostModel(Config{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.MeasuredAccesses == 0 || r.PredictedAccesses == 0 {
			t.Errorf("%v: empty counters: %+v", r.Algorithm, r)
		}
		// The estimator is approximate; at small scale allow generous slack
		// but catch order-of-magnitude breakage (e.g. a broken sampler).
		if r.AccessErrPct > 60 {
			t.Errorf("%v: node-access prediction off by %.1f%%", r.Algorithm, r.AccessErrPct)
		}
		if r.CandErrPct > 60 {
			t.Errorf("%v: candidate prediction off by %.1f%%", r.Algorithm, r.CandErrPct)
		}
	}
}

func TestResultSizeStudy(t *testing.T) {
	rows, err := ResultSize(Config{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	byDist := map[string][]ResultSizeRow{}
	for _, r := range rows {
		if r.Results < 0 || r.Ratio < 0 {
			t.Errorf("negative measurement: %+v", r)
		}
		byDist[r.Distribution] = append(byDist[r.Distribution], r)
	}
	for _, name := range []string{"uniform", "grid", "collinear", "circle", "two-clusters"} {
		if len(byDist[name]) == 0 {
			t.Errorf("distribution %s missing from study", name)
		}
	}
	// Collinear inputs are the 1D extreme: the per-point pair count must
	// stay bounded (only neighbors along the line can pair), so the ratio
	// cannot exceed a small constant.
	for _, r := range byDist["collinear"] {
		if r.Ratio > 3 {
			t.Errorf("collinear ratio %.2f looks superlinear", r.Ratio)
		}
	}
	// Every distribution produced some pairs.
	for name, rs := range byDist {
		for _, r := range rs {
			if r.Results == 0 {
				t.Errorf("%s at n=%d produced no pairs", name, r.N)
			}
		}
	}
}

func TestAblationStudies(t *testing.T) {
	rows, err := Ablations(Config{Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	byStudy := map[string]map[string]AblationRow{}
	for _, r := range rows {
		if byStudy[r.Study] == nil {
			byStudy[r.Study] = map[string]AblationRow{}
		}
		byStudy[r.Study][r.Variant] = r
	}
	// Random leaf order cannot fault less than depth-first (locality).
	so := byStudy["search-order"]
	if so["random"].Cost.Faults < so["depth-first"].Cost.Faults {
		t.Errorf("random order faulted less than depth-first: %d < %d",
			so["random"].Cost.Faults, so["depth-first"].Cost.Faults)
	}
	// No buffer faults at least as much as the 1% buffer.
	bf := byStudy["buffer"]
	var withBuf, noBuf AblationRow
	for v, r := range bf {
		if v == "none" {
			noBuf = r
		} else {
			withBuf = r
		}
	}
	if noBuf.Cost.Faults < withBuf.Cost.Faults {
		t.Errorf("bufferless run faulted less: %d < %d", noBuf.Cost.Faults, withBuf.Cost.Faults)
	}
	// All studies present.
	for _, s := range []string{"search-order", "symmetric-pruning", "face-rule", "buffer", "build-method", "split-policy"} {
		if len(byStudy[s]) < 2 {
			t.Errorf("study %s has %d variants", s, len(byStudy[s]))
		}
	}
}

func TestNetworkStudy(t *testing.T) {
	rows, err := Network(Config{Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.NetworkPairs == 0 || r.EuclidPairs == 0 {
			t.Errorf("grid %d: empty result (%d network, %d euclid)", r.GridSide, r.NetworkPairs, r.EuclidPairs)
		}
		if r.PrecisionPct < 0 || r.PrecisionPct > 100 || r.RecallPct < 0 || r.RecallPct > 100 {
			t.Errorf("grid %d: precision/recall out of range: %+v", r.GridSide, r)
		}
		// The metrics agree substantially (same embedding) but not fully —
		// full agreement would mean the network study is degenerate.
		if r.PrecisionPct == 100 && r.RecallPct == 100 && r.GridSide >= 16 {
			t.Errorf("grid %d: metrics agree perfectly — detours had no effect?", r.GridSide)
		}
	}
	_ = rows
}

func TestLeafSamplingProcessesSubset(t *testing.T) {
	cfg := Config{Scale: 0.01}.withDefaults()
	cb, _ := ComboByName("SP")
	env, err := cfg.NewComboEnv(cb)
	if err != nil {
		t.Fatal(err)
	}
	full, err := env.Run(core.Options{Algorithm: core.AlgOBJ})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := env.Run(core.Options{Algorithm: core.AlgOBJ, LeafSampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Stats.Results >= full.Stats.Results {
		t.Errorf("sampled run produced %d results, full %d", sampled.Stats.Results, full.Stats.Results)
	}
	if sampled.Stats.Results == 0 {
		t.Error("sampled run produced nothing")
	}
	// The sample should be within a factor ~2 of 1/10th of the full run.
	frac := float64(sampled.Stats.Results) / float64(full.Stats.Results)
	if frac < 0.03 || frac > 0.3 {
		t.Errorf("sample fraction %.3f far from 0.1", frac)
	}
}

// TestPoissonModelMatchesUniformMeasurement validates the closed-form
// result-size expectation against live joins: uniform data must land within
// a few percent of 4·nP·nQ/(nP+nQ).
func TestPoissonModelMatchesUniformMeasurement(t *testing.T) {
	for _, sz := range [][2]int{{2000, 2000}, {1000, 3000}, {4000, 1000}} {
		env, err := NewEnv(workload.Uniform(sz[1], 1), workload.Uniform(sz[0], 2), 0.01, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := env.Run(core.Options{Algorithm: core.AlgOBJ})
		if err != nil {
			t.Fatal(err)
		}
		want := cost.ExpectedUniformResultSize(sz[0], sz[1])
		ratio := float64(res.Stats.Results) / want
		if ratio < 0.9 || ratio > 1.05 {
			t.Errorf("|P|=%d |Q|=%d: measured %d vs model %.0f (ratio %.3f)",
				sz[0], sz[1], res.Stats.Results, want, ratio)
		}
	}
}
