package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// tinyCfg runs experiments at 0.5% of paper scale — hundreds of points —
// fast enough for the test suite while still exercising every code path.
func tinyCfg() Config {
	return Config{Scale: 0.005}
}

func TestTable4Invariants(t *testing.T) {
	rows, err := Table4(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 combos, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Brute < r.INJ || r.Brute < r.BIJ || r.Brute < r.OBJ {
			t.Errorf("%s: BRUTE candidates %d not the maximum (INJ=%d BIJ=%d OBJ=%d)", r.Combo, r.Brute, r.INJ, r.BIJ, r.OBJ)
		}
		for name, c := range map[string]int64{"INJ": r.INJ, "BIJ": r.BIJ, "OBJ": r.OBJ} {
			if c < r.RCJResults {
				t.Errorf("%s: %s candidates %d < results %d (filter lost results)", r.Combo, name, c, r.RCJResults)
			}
		}
		if r.OBJ > r.BIJ {
			t.Errorf("%s: symmetric pruning enlarged the candidate set: OBJ=%d > BIJ=%d", r.Combo, r.OBJ, r.BIJ)
		}
		if r.RCJResults == 0 {
			t.Errorf("%s: no RCJ results at all", r.Combo)
		}
	}
}

func checkResemblance(t *testing.T, series []ResemblanceSeries, wantCombos int) {
	t.Helper()
	if len(series) != wantCombos {
		t.Fatalf("want %d series, got %d", wantCombos, len(series))
	}
	for _, s := range series {
		if len(s.Rows) == 0 {
			t.Errorf("%s: empty series", s.Combo)
		}
		prevRecall := -1.0
		for _, r := range s.Rows {
			if r.Precision < 0 || r.Precision > 100.000001 || r.Recall < 0 || r.Recall > 100.000001 {
				t.Errorf("%s: precision/recall out of range at param %g: %+v", s.Combo, r.Param, r)
			}
			// The baselines' result sets grow as the parameter grows, so
			// recall against the fixed RCJ set is non-decreasing.
			if r.Recall < prevRecall-1e-9 {
				t.Errorf("%s: recall decreased at param %g: %g -> %g", s.Combo, r.Param, prevRecall, r.Recall)
			}
			prevRecall = r.Recall
		}
	}
}

func TestFig10EpsilonResemblance(t *testing.T) {
	series, err := Fig10(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkResemblance(t, series, 2)
}

func TestFig11KClosestResemblance(t *testing.T) {
	series, err := Fig11(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkResemblance(t, series, 2)
}

func TestFig12KNNResemblance(t *testing.T) {
	series, err := Fig12(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	checkResemblance(t, series, 2)
}

func TestFig13AlgorithmsAgree(t *testing.T) {
	rows, err := Fig13(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Combos)*3 {
		t.Fatalf("want %d rows, got %d", len(Combos)*3, len(rows))
	}
	byCombo := map[string]map[core.Algorithm]int64{}
	for _, r := range rows {
		if byCombo[r.Combo] == nil {
			byCombo[r.Combo] = map[core.Algorithm]int64{}
		}
		byCombo[r.Combo][r.Algorithm] = r.Results
	}
	for combo, m := range byCombo {
		if m[core.AlgINJ] != m[core.AlgBIJ] || m[core.AlgBIJ] != m[core.AlgOBJ] {
			t.Errorf("%s: algorithms disagree on result count: %v", combo, m)
		}
	}
	// SP and SP' join the same datasets in either orientation: same result
	// set size (the RCJ predicate is symmetric).
	if byCombo["SP"][core.AlgOBJ] != byCombo["SP'"][core.AlgOBJ] {
		t.Errorf("SP and SP' result counts differ: %d vs %d",
			byCombo["SP"][core.AlgOBJ], byCombo["SP'"][core.AlgOBJ])
	}
}

func TestFig14VerificationSkipped(t *testing.T) {
	rows, err := Fig14(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.WithoutVerification.NodeAccesses > r.WithVerification.NodeAccesses {
			t.Errorf("%v: skipping verification increased node accesses: %d > %d",
				r.Algorithm, r.WithoutVerification.NodeAccesses, r.WithVerification.NodeAccesses)
		}
	}
}

func TestFig15BufferMonotone(t *testing.T) {
	rows, err := Fig15(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	// LRU is a stack algorithm: page faults are non-increasing in capacity.
	faults := map[core.Algorithm][]int64{}
	for _, r := range rows {
		faults[r.Algorithm] = append(faults[r.Algorithm], r.Cost.Faults)
	}
	for alg, fs := range faults {
		for i := 1; i < len(fs); i++ {
			if fs[i] > fs[i-1] {
				t.Errorf("%v: faults grew with buffer size: %v", alg, fs)
			}
		}
	}
}

func TestFig16ResultsAgreeAndGrow(t *testing.T) {
	rows, err := Fig16(Config{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]map[core.Algorithm]int64{}
	for _, r := range rows {
		if results[r.Param] == nil {
			results[r.Param] = map[core.Algorithm]int64{}
		}
		results[r.Param][r.Algorithm] = r.Results
	}
	var prev int64 = -1
	for _, n := range []string{"50K", "100K", "200K", "400K", "800K"} {
		m := results[n]
		if m[core.AlgINJ] != m[core.AlgBIJ] || m[core.AlgBIJ] != m[core.AlgOBJ] {
			t.Errorf("n=%s: algorithms disagree: %v", n, m)
		}
		if m[core.AlgOBJ] < prev {
			t.Errorf("result cardinality shrank at n=%s: %d < %d (paper: linear growth)", n, m[core.AlgOBJ], prev)
		}
		prev = m[core.AlgOBJ]
	}
}

func TestFig17ResultsAgree(t *testing.T) {
	rows, err := Fig17(Config{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]map[core.Algorithm]int64{}
	for _, r := range rows {
		if results[r.Param] == nil {
			results[r.Param] = map[core.Algorithm]int64{}
		}
		results[r.Param][r.Algorithm] = r.Results
	}
	for param, m := range results {
		if m[core.AlgINJ] != m[core.AlgBIJ] || m[core.AlgBIJ] != m[core.AlgOBJ] {
			t.Errorf("ratio %s: algorithms disagree: %v", param, m)
		}
	}
	// The paper observes the result size is maximized at the balanced
	// split.
	if results["1:1"][core.AlgOBJ] < results["1:4"][core.AlgOBJ] ||
		results["1:1"][core.AlgOBJ] < results["4:1"][core.AlgOBJ] {
		t.Logf("note: balanced split did not maximize result size at this scale: %v", results)
	}
}

func TestFig18ResultsAgree(t *testing.T) {
	rows, err := Fig18(Config{Scale: 0.002})
	if err != nil {
		t.Fatal(err)
	}
	results := map[string]map[core.Algorithm]int64{}
	for _, r := range rows {
		if results[r.Param] == nil {
			results[r.Param] = map[core.Algorithm]int64{}
		}
		results[r.Param][r.Algorithm] = r.Results
	}
	for param, m := range results {
		if m[core.AlgINJ] != m[core.AlgBIJ] || m[core.AlgBIJ] != m[core.AlgOBJ] {
			t.Errorf("w=%s: algorithms disagree: %v", param, m)
		}
	}
}

func TestPrintedOutputMentionsFigure(t *testing.T) {
	var sb strings.Builder
	cfg := tinyCfg()
	cfg.W = &sb
	if _, err := Fig10(cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Figure 10") {
		t.Errorf("printed output missing figure header:\n%s", sb.String())
	}
}
