package exp

import (
	"fmt"
	"math"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/joins"
	"repro/internal/quality"
)

// ResemblanceRow is one point of a precision/recall curve: the baseline
// join's parameter value and the resemblance of its result set to RCJ's.
type ResemblanceRow struct {
	Param     float64
	Precision float64
	Recall    float64
	PairCount int64
}

// ResemblanceSeries is one combination's precision/recall curve.
type ResemblanceSeries struct {
	Combo string
	Rows  []ResemblanceRow
}

// rcjKeySet computes the RCJ reference result (with OBJ, the fastest exact
// algorithm) as an identity set.
func rcjKeySet(env *Env) (map[joins.Key]struct{}, error) {
	pairs, _, err := env.RunCollect(core.Options{Algorithm: core.AlgOBJ})
	if err != nil {
		return nil, err
	}
	set := make(map[joins.Key]struct{}, len(pairs))
	for _, p := range pairs {
		set[joins.Key{PID: p.P.ID, QID: p.Q.ID}] = struct{}{}
	}
	return set, nil
}

// Fig10 regenerates Figure 10 ("Resemblance of ε-Range Pairs vs ε") on the
// SP and LP combinations: precision and recall of the ε-distance join with
// respect to RCJ, as ε sweeps the paper's [0, 10] interval. At reduced scale
// the sweep values are multiplied by √(1/Scale) so they track the thinner
// point density.
func Fig10(cfg Config) ([]ResemblanceSeries, error) {
	cfg = cfg.withDefaults()
	adj := math.Sqrt(1 / cfg.Scale)
	epsValues := []float64{0.5, 1, 2, 4, 6, 8, 10}
	var out []ResemblanceSeries
	for _, name := range []string{"SP", "LP"} {
		cb, _ := ComboByName(name)
		env, err := cfg.NewComboEnv(cb)
		if err != nil {
			return nil, err
		}
		rcj, err := rcjKeySet(env)
		if err != nil {
			return nil, err
		}
		series := ResemblanceSeries{Combo: name}
		for _, eps := range epsValues {
			got := make(map[joins.Key]struct{})
			n, err := joins.EpsilonJoinStream(env.TP, env.TQ, eps*adj, func(p joins.Pair) {
				got[joins.KeyOf(p)] = struct{}{}
			})
			if err != nil {
				return nil, err
			}
			pr := quality.PrecisionRecall(rcj, got)
			series.Rows = append(series.Rows, ResemblanceRow{
				Param: eps, Precision: pr.Precision, Recall: pr.Recall, PairCount: n,
			})
		}
		out = append(out, series)
	}
	printResemblance(cfg, "Figure 10: Resemblance of ε-Range Pairs vs ε", "eps", out)
	return out, nil
}

// Fig11 regenerates Figure 11 ("Resemblance of k-Closest Pairs vs k"): the
// k-closest-pairs join swept over k, expressed as fractions of the RCJ
// result cardinality so the sweep covers the same relative range
// (0 → ~1.2·|RCJ|) at any scale.
func Fig11(cfg Config) ([]ResemblanceSeries, error) {
	cfg = cfg.withDefaults()
	fracs := []float64{0.1, 0.25, 0.5, 0.75, 1.0, 1.2}
	var out []ResemblanceSeries
	for _, name := range []string{"SP", "LP"} {
		cb, _ := ComboByName(name)
		env, err := cfg.NewComboEnv(cb)
		if err != nil {
			return nil, err
		}
		rcj, err := rcjKeySet(env)
		if err != nil {
			return nil, err
		}
		series := ResemblanceSeries{Combo: name}
		// Checkpoints: the k values (deduplicated, ≥1) the curve samples.
		ks := make([]int, 0, len(fracs))
		for _, f := range fracs {
			k := int(f * float64(len(rcj)))
			if k < 1 {
				k = 1
			}
			if len(ks) == 0 || k > ks[len(ks)-1] {
				ks = append(ks, k)
			}
		}
		// One incremental scan at the largest k serves every smaller k:
		// pairs arrive in distance order, so the first k are the answer.
		var (
			emitted int
			got     = make(map[joins.Key]struct{})
			ki      int
		)
		err = joins.KClosestPairsStream(env.TP, env.TQ, ks[len(ks)-1], func(p joins.Pair) {
			emitted++
			got[joins.KeyOf(p)] = struct{}{}
			if ki < len(ks) && emitted == ks[ki] {
				pr := quality.PrecisionRecall(rcj, got)
				series.Rows = append(series.Rows, ResemblanceRow{
					Param: float64(emitted), Precision: pr.Precision, Recall: pr.Recall, PairCount: int64(emitted),
				})
				ki++
			}
		})
		if err != nil {
			return nil, err
		}
		// Checkpoints past the total pair count (tiny inputs) report the
		// full set.
		for ; ki < len(ks); ki++ {
			pr := quality.PrecisionRecall(rcj, got)
			series.Rows = append(series.Rows, ResemblanceRow{
				Param: float64(emitted), Precision: pr.Precision, Recall: pr.Recall, PairCount: int64(emitted),
			})
		}
		out = append(out, series)
	}
	printResemblance(cfg, "Figure 11: Resemblance of k-Closest Pairs vs k", "k", out)
	return out, nil
}

// Fig12 regenerates Figure 12 ("Resemblance of k Nearest Neighbor Pairs vs
// k"): the kNN join swept over k ∈ [1, 10].
func Fig12(cfg Config) ([]ResemblanceSeries, error) {
	cfg = cfg.withDefaults()
	ks := []int{1, 2, 4, 6, 8, 10}
	var out []ResemblanceSeries
	for _, name := range []string{"SP", "LP"} {
		cb, _ := ComboByName(name)
		env, err := cfg.NewComboEnv(cb)
		if err != nil {
			return nil, err
		}
		rcj, err := rcjKeySet(env)
		if err != nil {
			return nil, err
		}
		series := ResemblanceSeries{Combo: name}
		// One scan at max k: the kNN join for smaller k is a prefix of each
		// outer point's neighbor list, so per-point ranks are tracked.
		maxK := ks[len(ks)-1]
		sets := make([]map[joins.Key]struct{}, len(ks))
		for i := range sets {
			sets[i] = make(map[joins.Key]struct{})
		}
		rank := make(map[int64]int)
		err = joins.KNNJoinStream(env.TP, env.TQ, maxK, func(p joins.Pair) {
			r := rank[p.P.ID]
			rank[p.P.ID] = r + 1
			for i, k := range ks {
				if r < k {
					sets[i][joins.KeyOf(p)] = struct{}{}
				}
			}
		})
		if err != nil {
			return nil, err
		}
		for i, k := range ks {
			pr := quality.PrecisionRecall(rcj, sets[i])
			series.Rows = append(series.Rows, ResemblanceRow{
				Param: float64(k), Precision: pr.Precision, Recall: pr.Recall, PairCount: int64(len(sets[i])),
			})
		}
		out = append(out, series)
	}
	printResemblance(cfg, "Figure 12: Resemblance of k Nearest Neighbor Pairs vs k", "k", out)
	return out, nil
}

func printResemblance(cfg Config, title, param string, series []ResemblanceSeries) {
	fmt.Fprintf(cfg.W, "%s (scale=%.3g)\n", title, cfg.Scale)
	for _, s := range series {
		fmt.Fprintf(cfg.W, "  combination %s:\n", s.Combo)
		tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "  %s\tprecision(%%)\trecall(%%)\tpairs\n", param)
		for _, r := range s.Rows {
			fmt.Fprintf(tw, "  %g\t%.1f\t%.1f\t%d\n", r.Param, r.Precision, r.Recall, r.PairCount)
		}
		tw.Flush()
	}
	fmt.Fprintln(cfg.W)
}
