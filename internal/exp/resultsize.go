package exp

import (
	"fmt"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/rtree"
	"repro/internal/workload"
)

// This file implements the paper's second future-work direction: studying
// the RCJ result cardinality under extreme ("worst possible") data
// distributions. The paper observes empirically that the result size is
// linear in the input size; this experiment measures the ratio
// |RCJ| / (|P| + |Q|) across structurally adversarial inputs — lattices,
// collinear points, co-circular points, and far-apart cluster pairs — and
// across input sizes, exposing where the constant factor peaks.

// ResultSizeRow is one measurement of the result-size study.
type ResultSizeRow struct {
	Distribution string
	N            int   // points per input
	Results      int64 // |RCJ|
	Ratio        float64
	// Predicted is the closed-form Poisson expectation
	// cost.ExpectedUniformResultSize (meaningful for the uniform rows; the
	// other distributions show how far structure bends it).
	Predicted float64
}

// ResultSize measures |RCJ| / (|P| + |Q|) across distributions and sizes.
func ResultSize(cfg Config) ([]ResultSizeRow, error) {
	cfg = cfg.withDefaults()
	sizes := []int{cfg.scaled(20_000), cfg.scaled(50_000)}
	gens := []struct {
		name string
		gen  func(n int, seed int64) []rtree.PointEntry
	}{
		{"uniform", func(n int, seed int64) []rtree.PointEntry { return workload.Uniform(n, seed) }},
		{"gaussian-w10", func(n int, seed int64) []rtree.PointEntry { return workload.GaussianClusters(n, 10, 1000, seed) }},
		{"grid", func(n int, _ int64) []rtree.PointEntry { return workload.Grid(n) }},
		{"collinear", func(n int, seed int64) []rtree.PointEntry { return workload.Collinear(n, 0, seed) }},
		{"collinear-jitter", func(n int, seed int64) []rtree.PointEntry { return workload.Collinear(n, 5, seed) }},
		{"circle", func(n int, seed int64) []rtree.PointEntry { return workload.OnCircle(n, 0.3, seed) }},
		{"two-clusters", func(n int, seed int64) []rtree.PointEntry { return workload.TwoDistantClusters(n, 200, seed) }},
	}
	var rows []ResultSizeRow
	for _, g := range gens {
		for _, n := range sizes {
			ps := g.gen(n, 1)
			qs := g.gen(n, 2)
			// Distinct seeds give distinct-but-same-shaped inputs; for the
			// deterministic grid both sides coincide geometrically, which is
			// itself an interesting extreme (every point of P sits on a
			// point of Q).
			env, err := cfg.newEnv(qs, ps)
			if err != nil {
				return nil, err
			}
			res, err := env.Run(core.Options{Algorithm: core.AlgOBJ})
			if err != nil {
				return nil, err
			}
			rows = append(rows, ResultSizeRow{
				Distribution: g.name,
				N:            n,
				Results:      res.Stats.Results,
				Ratio:        float64(res.Stats.Results) / float64(2*n),
				Predicted:    cost.ExpectedUniformResultSize(n, n),
			})
		}
	}
	printResultSize(cfg, rows)
	return rows, nil
}

func printResultSize(cfg Config, rows []ResultSizeRow) {
	fmt.Fprintf(cfg.W, "Result-size study (future work §6): |RCJ| / (|P|+|Q|) across distributions (scale=%.3g)\n", cfg.Scale)
	fmt.Fprintln(cfg.W, "Poisson model: E|RCJ| = 4·|P|·|Q|/(|P|+|Q|)  (= 2n here), exact for uniform inputs up to boundary effects")
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "distribution\tn per side\t|RCJ|\tratio\tmodel E|RCJ|\tmeasured/model\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.0f\t%.3f\n", r.Distribution, r.N, r.Results, r.Ratio,
			r.Predicted, float64(r.Results)/r.Predicted)
	}
	tw.Flush()
	fmt.Fprintln(cfg.W)
}
