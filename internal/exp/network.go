package exp

import (
	"fmt"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/joins"
	"repro/internal/quality"
	"repro/internal/roadnet"
	"repro/internal/rtree"
)

// NetworkRow compares the network-metric RCJ against the Euclidean RCJ on
// the same venue embedding, for one grid size.
type NetworkRow struct {
	GridSide     int
	Points       int
	NetworkPairs int64
	EuclidPairs  int64
	PrecisionPct float64 // of the Euclidean result wrt the network result
	RecallPct    float64
	Candidates   int64
	SettledNodes int64
}

// Network studies the paper's road-network generalization (future work
// §6): it joins point sets placed on street-grid intersections under
// shortest-path distance, and measures how much the Euclidean result set
// resembles it — quantifying what planning on straight-line distance gets
// wrong in a city.
func Network(cfg Config) ([]NetworkRow, error) {
	cfg = cfg.withDefaults()
	var rows []NetworkRow
	for _, side := range []int{10, 16, 24} {
		g := roadnet.GridNetwork(side, side, 100, int64(side))
		nPts := side * side / 5
		P := roadnet.RandomPointsOnNodes(g, nPts, int64(side)*3+1)
		Q := roadnet.RandomPointsOnNodes(g, nPts, int64(side)*3+2)

		netPairs, stats, err := roadnet.Join(g, P, Q)
		if err != nil {
			return nil, err
		}
		netSet := make(map[joins.Key]struct{}, len(netPairs))
		for _, p := range netPairs {
			netSet[joins.Key{PID: p.P.ID, QID: p.Q.ID}] = struct{}{}
		}

		toEntries := func(pts []roadnet.PointRef) []rtree.PointEntry {
			out := make([]rtree.PointEntry, len(pts))
			for i, p := range pts {
				out[i] = rtree.PointEntry{P: g.Pos(p.Node), ID: p.ID}
			}
			return out
		}
		env, err := cfg.newEnv(toEntries(Q), toEntries(P))
		if err != nil {
			return nil, err
		}
		eucPairs, _, err := env.RunCollect(core.Options{Algorithm: core.AlgOBJ})
		if err != nil {
			return nil, err
		}
		eucSet := make(map[joins.Key]struct{}, len(eucPairs))
		for _, p := range eucPairs {
			eucSet[joins.Key{PID: p.P.ID, QID: p.Q.ID}] = struct{}{}
		}
		pr := quality.PrecisionRecall(netSet, eucSet)
		rows = append(rows, NetworkRow{
			GridSide:     side,
			Points:       nPts,
			NetworkPairs: int64(len(netSet)),
			EuclidPairs:  int64(len(eucSet)),
			PrecisionPct: pr.Precision,
			RecallPct:    pr.Recall,
			Candidates:   stats.Candidates,
			SettledNodes: stats.SettledNodes,
		})
	}
	printNetwork(cfg, rows)
	return rows, nil
}

func printNetwork(cfg Config, rows []NetworkRow) {
	fmt.Fprintln(cfg.W, "Road-network RCJ (future work §6): Euclidean result resemblance to the network result")
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "grid\tpoints/side\tnetwork pairs\teuclid pairs\tprecision(%%)\trecall(%%)\tfilter candidates\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%dx%d\t%d\t%d\t%d\t%.1f\t%.1f\t%d\n",
			r.GridSide, r.GridSide, r.Points, r.NetworkPairs, r.EuclidPairs,
			r.PrecisionPct, r.RecallPct, r.Candidates)
	}
	tw.Flush()
	fmt.Fprintln(cfg.W)
}
