// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 5). Each experiment has a typed
// driver returning structured rows plus a printer that emits the same
// rows/series the paper reports. The cmd/rcjbench CLI and the repository's
// bench_test.go both drive this package.
//
// Experiments accept a Scale factor: cardinalities are Scale × the paper's,
// so full sweeps finish quickly at Scale 0.1 while Scale 1 reruns the paper
// verbatim. Distance parameters that interact with point density (the ε
// sweep of Figure 10) are corrected by the density factor √(1/Scale) so the
// curves keep their shape.
package exp

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/rtree"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale multiplies every dataset cardinality (default 1.0 = paper
	// scale).
	Scale float64
	// BufferFrac sizes the shared LRU buffer as a fraction of the summed
	// tree sizes in pages (default 0.01, the paper's 1%).
	BufferFrac float64
	// PageSize is the index page size in bytes (default 1024, as in the
	// paper).
	PageSize int
	// W receives the printed tables; nil discards them.
	W io.Writer
	// Ctx, when non-nil, cancels in-flight joins of long experiment sweeps
	// (cmd/rcjbench wires Ctrl-C through it). Nil means run to completion.
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.BufferFrac <= 0 {
		c.BufferFrac = 0.01
	}
	if c.PageSize <= 0 {
		c.PageSize = storage.DefaultPageSize
	}
	if c.W == nil {
		c.W = io.Discard
	}
	return c
}

// scaled returns the scaled cardinality, at least 1.
func (c Config) scaled(n int) int {
	s := int(float64(n) * c.Scale)
	if s < 1 {
		s = 1
	}
	return s
}

// Env is a prepared join environment: two bulk-loaded R*-trees sharing one
// buffer pool sized per the experiment's buffer fraction, with counters
// reset so only the join itself is measured.
type Env struct {
	Pool *buffer.Pool
	TQ   *rtree.Tree // outer input Q
	TP   *rtree.Tree // inner input P
	// Ctx cancels this environment's runs; nil means context.Background().
	Ctx context.Context
}

// ctx returns the environment's run context.
func (e *Env) ctx() context.Context {
	if e.Ctx == nil {
		return context.Background()
	}
	return e.Ctx
}

// NewEnv indexes qs and ps and sizes the shared buffer to bufferFrac of the
// summed tree sizes.
func NewEnv(qs, ps []rtree.PointEntry, bufferFrac float64, pageSize int) (*Env, error) {
	if pageSize <= 0 {
		pageSize = storage.DefaultPageSize
	}
	// Build with an unbounded pool so construction cost never depends on
	// the experiment's buffer size; shrink afterwards.
	pool := buffer.NewPool(-1)
	tq, err := buildTree(qs, pool, 1, pageSize)
	if err != nil {
		return nil, fmt.Errorf("exp: build TQ: %w", err)
	}
	tp, err := buildTree(ps, pool, 2, pageSize)
	if err != nil {
		return nil, fmt.Errorf("exp: build TP: %w", err)
	}
	env := &Env{Pool: pool, TQ: tq, TP: tp}
	env.SetBufferFrac(bufferFrac)
	return env, nil
}

// NewSelfEnv indexes one dataset for a self-join environment.
func NewSelfEnv(pts []rtree.PointEntry, bufferFrac float64, pageSize int) (*Env, error) {
	if pageSize <= 0 {
		pageSize = storage.DefaultPageSize
	}
	pool := buffer.NewPool(-1)
	t, err := buildTree(pts, pool, 1, pageSize)
	if err != nil {
		return nil, fmt.Errorf("exp: build tree: %w", err)
	}
	env := &Env{Pool: pool, TQ: t, TP: t}
	env.SetBufferFrac(bufferFrac)
	return env, nil
}

func buildTree(pts []rtree.PointEntry, pool *buffer.Pool, owner uint32, pageSize int) (*rtree.Tree, error) {
	pager := storage.NewMemPager(pageSize)
	t, err := rtree.New(pager, pool, rtree.Config{Owner: owner, PageSize: pageSize})
	if err != nil {
		return nil, err
	}
	if err := t.BulkLoad(pts, 0); err != nil {
		return nil, err
	}
	return t, nil
}

// TotalPages returns the summed size of both trees in pages.
func (e *Env) TotalPages() int {
	if e.TP == e.TQ {
		return e.TQ.NumPages()
	}
	return e.TQ.NumPages() + e.TP.NumPages()
}

// SetBufferFrac resizes the shared buffer to the given fraction of the
// summed tree sizes (minimum one page) and clears it.
func (e *Env) SetBufferFrac(frac float64) {
	pages := int(frac * float64(e.TotalPages()))
	if pages < 1 {
		pages = 1
	}
	e.Pool.Resize(pages)
	e.Reset()
}

// Reset empties the buffer and zeroes its counters, giving the next
// measured run a cold cache.
func (e *Env) Reset() {
	e.Pool.Clear()
	e.Pool.ResetStats()
}

// RunResult is one measured algorithm execution.
type RunResult struct {
	Algorithm core.Algorithm
	Stats     core.Stats
	Cost      cost.Breakdown
}

// Run executes the join with a cold cache and measures it. The run aborts
// with the context's error when Env.Ctx is cancelled.
func (e *Env) Run(opts core.Options) (RunResult, error) {
	e.Reset()
	meter := cost.NewMeter(e.Pool)
	_, stats, err := core.JoinContext(e.ctx(), e.TQ, e.TP, opts)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{Algorithm: opts.Algorithm, Stats: stats, Cost: meter.Stop()}, nil
}

// RunCollect executes the join with a cold cache, returning the pairs too.
func (e *Env) RunCollect(opts core.Options) ([]core.Pair, RunResult, error) {
	opts.Collect = true
	e.Reset()
	meter := cost.NewMeter(e.Pool)
	pairs, stats, err := core.JoinContext(e.ctx(), e.TQ, e.TP, opts)
	if err != nil {
		return nil, RunResult{}, err
	}
	return pairs, RunResult{Algorithm: opts.Algorithm, Stats: stats, Cost: meter.Stop()}, nil
}

// Combo names one of the paper's join combinations (Table 3): the outer
// dataset Q and the inner dataset P.
type Combo struct {
	Name string
	Q, P workload.RealDataset
}

// Combos are the four join combinations of Table 3.
var Combos = []Combo{
	{Name: "SP", Q: workload.SC, P: workload.PP},
	{Name: "LP", Q: workload.LO, P: workload.PP},
	{Name: "SP'", Q: workload.PP, P: workload.SC},
	{Name: "LP'", Q: workload.PP, P: workload.LO},
}

// ComboByName returns the named combination.
func ComboByName(name string) (Combo, bool) {
	for _, c := range Combos {
		if c.Name == name {
			return c, true
		}
	}
	return Combo{}, false
}

// NewComboEnv builds the environment for one real-data join combination at
// the configured scale, carrying the config's cancellation context.
func (c Config) NewComboEnv(cb Combo) (*Env, error) {
	qs := workload.RealLike(cb.Q, c.scaled(cb.Q.Cardinality()))
	ps := workload.RealLike(cb.P, c.scaled(cb.P.Cardinality()))
	env, err := NewEnv(qs, ps, c.BufferFrac, c.PageSize)
	if err != nil {
		return nil, err
	}
	env.Ctx = c.Ctx
	return env, nil
}

// newEnv builds an environment from prepared entry slices with the config's
// buffer sizing and cancellation context.
func (c Config) newEnv(qs, ps []rtree.PointEntry) (*Env, error) {
	env, err := NewEnv(qs, ps, c.BufferFrac, c.PageSize)
	if err != nil {
		return nil, err
	}
	env.Ctx = c.Ctx
	return env, nil
}

// fmtDuration renders a duration in seconds with millisecond resolution,
// matching the paper's time axes.
func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
