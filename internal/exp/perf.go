package exp

import (
	"fmt"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/workload"
)

// rcjAlgorithms are the three index algorithms every performance chart
// compares.
var rcjAlgorithms = []core.Algorithm{core.AlgINJ, core.AlgBIJ, core.AlgOBJ}

// Fig13Row is one bar of Figure 13: the cost decomposition of one algorithm
// on one join combination.
type Fig13Row struct {
	Combo     string
	Algorithm core.Algorithm
	Cost      cost.Breakdown
	Results   int64
}

// Fig13 regenerates Figure 13 ("The Effect of Join Combination, Real Data"):
// INJ, BIJ and OBJ on the four combinations of Table 3 with the default 1%
// buffer, decomposed into I/O and CPU time.
func Fig13(cfg Config) ([]Fig13Row, error) {
	cfg = cfg.withDefaults()
	var rows []Fig13Row
	for _, cb := range Combos {
		env, err := cfg.NewComboEnv(cb)
		if err != nil {
			return nil, err
		}
		for _, alg := range rcjAlgorithms {
			res, err := env.Run(core.Options{Algorithm: alg})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig13Row{Combo: cb.Name, Algorithm: alg, Cost: res.Cost, Results: res.Stats.Results})
		}
	}
	printCostRows(cfg, "Figure 13: The Effect of Join Combination, Real(-like) Data",
		"combination", func(r Fig13Row) string { return r.Combo }, rows)
	return rows, nil
}

// Fig14Row is one bar pair of Figure 14: an algorithm's cost with and
// without the verification step.
type Fig14Row struct {
	Algorithm           core.Algorithm
	WithVerification    cost.Breakdown
	WithoutVerification cost.Breakdown
}

// Fig14 regenerates Figure 14 ("The Cost of RCJ Algorithms, with vs without
// verification", |P| = |Q| = 200K UI data): the small gap between the
// columns shows the verification step contributes a minor share of the total
// cost.
func Fig14(cfg Config) ([]Fig14Row, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(200_000)
	env, err := cfg.newEnv(workload.Uniform(n, 1), workload.Uniform(n, 2))
	if err != nil {
		return nil, err
	}
	var rows []Fig14Row
	for _, alg := range rcjAlgorithms {
		with, err := env.Run(core.Options{Algorithm: alg})
		if err != nil {
			return nil, err
		}
		without, err := env.Run(core.Options{Algorithm: alg, SkipVerification: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig14Row{Algorithm: alg, WithVerification: with.Cost, WithoutVerification: without.Cost})
	}
	fmt.Fprintf(cfg.W, "Figure 14: Cost with vs without Verification, |P|=|Q|=%d, UI data (scale=%.3g)\n", n, cfg.Scale)
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "algorithm\twith: total\tio\tcpu\twithout: total\tio\tcpu\tverify share\n")
	for _, r := range rows {
		share := 0.0
		if t := r.WithVerification.Total(); t > 0 {
			share = 100 * float64(t-r.WithoutVerification.Total()) / float64(t)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%.1f%%\n", r.Algorithm,
			fmtDuration(r.WithVerification.Total()), fmtDuration(r.WithVerification.IOTime), fmtDuration(r.WithVerification.CPUTime),
			fmtDuration(r.WithoutVerification.Total()), fmtDuration(r.WithoutVerification.IOTime), fmtDuration(r.WithoutVerification.CPUTime),
			share)
	}
	tw.Flush()
	fmt.Fprintln(cfg.W)
	return rows, nil
}

// Fig15Row is one bar group of Figure 15: algorithm costs at one buffer
// size.
type Fig15Row struct {
	BufferFrac float64
	Algorithm  core.Algorithm
	Cost       cost.Breakdown
}

// Fig15 regenerates Figure 15 ("The Effect of Buffer Size", |P| = |Q| = 200K
// UI data): the buffer sweeps {0.2, 0.5, 1, 2, 5}% of the summed tree sizes.
func Fig15(cfg Config) ([]Fig15Row, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(200_000)
	env, err := cfg.newEnv(workload.Uniform(n, 1), workload.Uniform(n, 2))
	if err != nil {
		return nil, err
	}
	fracs := []float64{0.002, 0.005, 0.01, 0.02, 0.05}
	var rows []Fig15Row
	for _, f := range fracs {
		env.SetBufferFrac(f)
		for _, alg := range rcjAlgorithms {
			res, err := env.Run(core.Options{Algorithm: alg})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig15Row{BufferFrac: f, Algorithm: alg, Cost: res.Cost})
		}
	}
	fmt.Fprintf(cfg.W, "Figure 15: The Effect of Buffer Size, |P|=|Q|=%d, UI data (scale=%.3g)\n", n, cfg.Scale)
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "buffer(%%)\talgorithm\ttotal\tio\tcpu\tfaults\n")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.1f\t%s\t%s\t%s\t%s\t%d\n", r.BufferFrac*100, r.Algorithm,
			fmtDuration(r.Cost.Total()), fmtDuration(r.Cost.IOTime), fmtDuration(r.Cost.CPUTime), r.Cost.Faults)
	}
	tw.Flush()
	fmt.Fprintln(cfg.W)
	return rows, nil
}

// printCostRows renders a Figure 13-style cost table.
func printCostRows(cfg Config, title, groupLabel string, group func(Fig13Row) string, rows []Fig13Row) {
	fmt.Fprintf(cfg.W, "%s (scale=%.3g)\n", title, cfg.Scale)
	tw := tabwriter.NewWriter(cfg.W, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\talgorithm\ttotal\tio\tcpu\tfaults\tresults\n", groupLabel)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%d\t%d\n", group(r), r.Algorithm,
			fmtDuration(r.Cost.Total()), fmtDuration(r.Cost.IOTime), fmtDuration(r.Cost.CPUTime),
			r.Cost.Faults, r.Results)
	}
	tw.Flush()
	fmt.Fprintln(cfg.W)
}
