package topk

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHeapAgainstSort cross-checks Offer/Full/Worst/Sorted against sorting
// the whole input, over random sizes, ks, and duplicate-heavy values.
func TestHeapAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	before := func(a, b int) bool { return a < b }
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(60)
		k := 1 + rng.Intn(12)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(20) // collisions exercise the strictness of before
		}

		h := New(k, before)
		sofar := []int(nil)
		for _, v := range vals {
			h.Offer(v)
			sofar = append(sofar, v)
			sort.Ints(sofar)
			if wantFull := len(sofar) >= k; h.Full() != wantFull {
				t.Fatalf("trial %d: Full() = %v with %d of %d items", trial, h.Full(), len(sofar), k)
			}
			if h.Full() && h.Worst() != sofar[k-1] {
				t.Fatalf("trial %d: Worst() = %d, want k-th best %d", trial, h.Worst(), sofar[k-1])
			}
		}

		got := h.Sorted()
		want := sofar
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d retained, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: Sorted()[%d] = %d, want %d (%v vs %v)", trial, i, got[i], want[i], got, want)
			}
		}
	}
}
