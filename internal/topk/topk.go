// Package topk provides the bounded best-k heap behind the constrained
// query executors: the Euclidean branch-and-bound (internal/core) and the
// road-network one (rcjnet) both keep the k best pairs seen so far and
// publish the current k-th as a dynamic search bound. Synchronization and
// bound encoding differ per caller, so this holds only the shared
// structure: a max-heap under a caller-supplied ranking, worst on top,
// ready for eviction.
package topk

// Heap keeps the k best items under before (a strict total order, best
// first). The zero value is not usable; construct with New.
type Heap[T any] struct {
	k      int
	before func(a, b T) bool
	h      []T
}

// New returns a heap retaining the k best items. k must be positive.
func New[T any](k int, before func(a, b T) bool) *Heap[T] {
	return &Heap[T]{k: k, before: before}
}

// Len returns the number of retained items.
func (t *Heap[T]) Len() int { return len(t.h) }

// Full reports whether the heap holds k items, i.e. Worst is the current
// k-th best and can serve as a pruning bound.
func (t *Heap[T]) Full() bool { return len(t.h) == t.k }

// Worst returns the worst retained item (the k-th best once Full). It
// panics on an empty heap.
func (t *Heap[T]) Worst() T { return t.h[0] }

// Offer submits one item, evicting the current worst if x beats it.
// It reports whether the retained set changed — when Full, that means the
// k-th best improved and any published bound should tighten.
func (t *Heap[T]) Offer(x T) bool {
	if len(t.h) < t.k {
		t.h = append(t.h, x)
		t.up(len(t.h) - 1)
		return true
	}
	if !t.before(x, t.h[0]) {
		return false
	}
	t.h[0] = x
	t.down(0)
	return true
}

// Sorted drains the heap, returning the retained items best-first.
func (t *Heap[T]) Sorted() []T {
	out := make([]T, len(t.h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = t.h[0]
		last := len(t.h) - 1
		t.h[0] = t.h[last]
		t.h = t.h[:last]
		t.down(0)
	}
	return out
}

// up/down sift under the max-heap invariant: a parent is never before its
// children.
func (t *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.before(t.h[parent], t.h[i]) {
			return
		}
		t.h[parent], t.h[i] = t.h[i], t.h[parent]
		i = parent
	}
}

func (t *Heap[T]) down(i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(t.h) && t.before(t.h[worst], t.h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(t.h) && t.before(t.h[worst], t.h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.h[i], t.h[worst] = t.h[worst], t.h[i]
		i = worst
	}
}
