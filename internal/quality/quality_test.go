package quality

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/joins"
)

func set(keys ...joins.Key) map[joins.Key]struct{} {
	m := make(map[joins.Key]struct{}, len(keys))
	for _, k := range keys {
		m[k] = struct{}{}
	}
	return m
}

func k(p, q int64) joins.Key { return joins.Key{PID: p, QID: q} }

func TestPrecisionRecallBasics(t *testing.T) {
	want := set(k(1, 1), k(2, 2), k(3, 3), k(4, 4))
	got := set(k(1, 1), k(2, 2), k(9, 9))
	pr := PrecisionRecall(want, got)
	if math.Abs(pr.Precision-100*2.0/3) > 1e-9 {
		t.Errorf("precision %g", pr.Precision)
	}
	if pr.Recall != 50 {
		t.Errorf("recall %g", pr.Recall)
	}
}

func TestPerfectAndDisjoint(t *testing.T) {
	a := set(k(1, 1), k(2, 2))
	pr := PrecisionRecall(a, a)
	if pr.Precision != 100 || pr.Recall != 100 {
		t.Errorf("identical sets: %+v", pr)
	}
	pr = PrecisionRecall(a, set(k(8, 8)))
	if pr.Precision != 0 || pr.Recall != 0 {
		t.Errorf("disjoint sets: %+v", pr)
	}
}

func TestEmptySets(t *testing.T) {
	a := set(k(1, 1))
	if pr := PrecisionRecall(a, nil); pr.Precision != 0 || pr.Recall != 0 {
		t.Errorf("empty got: %+v", pr)
	}
	if pr := PrecisionRecall(nil, a); pr.Precision != 0 || pr.Recall != 0 {
		t.Errorf("empty want: %+v", pr)
	}
	if pr := PrecisionRecall(nil, nil); pr.Precision != 0 || pr.Recall != 0 {
		t.Errorf("both empty: %+v", pr)
	}
}

func TestF1(t *testing.T) {
	if f := (PR{Precision: 100, Recall: 100}).F1(); f != 100 {
		t.Errorf("F1 of perfect = %g", f)
	}
	if f := (PR{}).F1(); f != 0 {
		t.Errorf("F1 of zero = %g", f)
	}
	if f := (PR{Precision: 50, Recall: 100}).F1(); math.Abs(f-200.0/3) > 1e-9 {
		t.Errorf("F1 = %g", f)
	}
}

// TestQuickBounds: precision and recall always land in [0, 100] and the
// measure is symmetric under swapping when sets have equal size.
func TestQuickBounds(t *testing.T) {
	f := func(wantIDs, gotIDs []uint8) bool {
		want := make(map[joins.Key]struct{})
		for _, id := range wantIDs {
			want[k(int64(id), int64(id))] = struct{}{}
		}
		got := make(map[joins.Key]struct{})
		for _, id := range gotIDs {
			got[k(int64(id), int64(id))] = struct{}{}
		}
		pr := PrecisionRecall(want, got)
		if pr.Precision < 0 || pr.Precision > 100 || pr.Recall < 0 || pr.Recall > 100 {
			return false
		}
		// Swapping roles swaps the measures.
		rp := PrecisionRecall(got, want)
		return math.Abs(pr.Precision-rp.Recall) < 1e-9 && math.Abs(pr.Recall-rp.Precision) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
