// Package quality computes the information-theoretic resemblance measures of
// Section 5.1: precision and recall of one join's result set with respect to
// another's, over pair identities.
package quality

import "repro/internal/joins"

// PR holds a precision/recall pair, in percent as the paper plots them.
type PR struct {
	Precision float64
	Recall    float64
}

// PrecisionRecall returns the precision and recall of the candidate set got
// with respect to the reference set want:
//
//	precision = |want ∩ got| / |got| · 100%
//	recall    = |want ∩ got| / |want| · 100%
//
// Empty sets yield 0 for the measure whose denominator vanishes.
func PrecisionRecall(want, got map[joins.Key]struct{}) PR {
	var inter int
	// Iterate over the smaller set.
	a, b := want, got
	if len(b) < len(a) {
		a, b = b, a
	}
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	var pr PR
	if len(got) > 0 {
		pr.Precision = 100 * float64(inter) / float64(len(got))
	}
	if len(want) > 0 {
		pr.Recall = 100 * float64(inter) / float64(len(want))
	}
	return pr
}

// F1 returns the harmonic mean of precision and recall (in percent), a
// single-number summary used by the harness to locate each baseline's best
// achievable resemblance to RCJ.
func (pr PR) F1() float64 {
	if pr.Precision+pr.Recall == 0 {
		return 0
	}
	return 2 * pr.Precision * pr.Recall / (pr.Precision + pr.Recall)
}
