package buffer

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolSingleFlight pins the miss dedupe: N concurrent Gets of one
// absent key run load exactly once, every caller gets the value, and the
// stats classify every caller as a miss (so per-tag attribution is
// untouched) with N-1 SharedLoads.
func TestPoolSingleFlight(t *testing.T) {
	p := NewPool(8)
	var loads atomic.Int64
	gate := make(chan struct{})
	load := func() (any, error) {
		loads.Add(1)
		<-gate
		return "v", nil
	}

	const readers = 8
	var tag TagStats
	var wg sync.WaitGroup
	vals := make([]any, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = p.GetTagged(Key{Owner: 1, Page: 7}, &tag, load)
		}(i)
	}
	// Wait until every non-leader is accounted a SharedLoad (they announce
	// before blocking on the flight), then release the leader's load.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().SharedLoads < readers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: SharedLoads=%d", p.Stats().SharedLoads)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if vals[i] != "v" {
			t.Fatalf("reader %d got %v", i, vals[i])
		}
	}
	if n := loads.Load(); n != 1 {
		t.Fatalf("load ran %d times, want 1", n)
	}
	st := p.Stats()
	if st.Accesses != readers || st.Hits != 0 || st.Misses != readers {
		t.Fatalf("pool stats %+v, want %d accesses, 0 hits, %d misses", st, readers, readers)
	}
	if st.SharedLoads != readers-1 {
		t.Fatalf("SharedLoads = %d, want %d", st.SharedLoads, readers-1)
	}
	// The tag mirrors the same classification exactly.
	ts := tag.Stats()
	if ts.Accesses != readers || ts.Misses != readers || ts.Hits != 0 {
		t.Fatalf("tag stats %+v", ts)
	}
	// The flight is gone and the value cached: the next Get is a hit.
	if _, err := p.Get(Key{Owner: 1, Page: 7}, func() (any, error) {
		t.Fatal("load ran on a cached key")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Hits != 1 {
		t.Fatalf("follow-up hit not counted: %+v", st)
	}
}

// TestPoolSingleFlightError pins error propagation: waiters see the
// leader's error, nothing is cached, and the next Get retries the load.
func TestPoolSingleFlightError(t *testing.T) {
	p := NewPool(8)
	boom := errors.New("boom")
	gate := make(chan struct{})
	load := func() (any, error) {
		<-gate
		return nil, boom
	}
	const readers = 4
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Get(Key{Page: 3}, load)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().SharedLoads < readers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: SharedLoads=%d", p.Stats().SharedLoads)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("reader %d error = %v, want boom", i, err)
		}
	}
	if p.Contains(Key{Page: 3}) {
		t.Fatal("failed load left a cached entry")
	}
	// A failed flight must not wedge the key.
	v, err := p.Get(Key{Page: 3}, func() (any, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("retry after failed flight = %v, %v", v, err)
	}
}

// TestPoolSingleFlightZeroCapacity pins that dedupe works even when the
// pool caches nothing: waiters share the leader's load, nothing is stored.
func TestPoolSingleFlightZeroCapacity(t *testing.T) {
	p := NewPool(0)
	var loads atomic.Int64
	gate := make(chan struct{})
	const readers = 4
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.Get(Key{Page: 1}, func() (any, error) {
				loads.Add(1)
				<-gate
				return "v", nil
			})
			if err != nil || v != "v" {
				t.Errorf("get = %v, %v", v, err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().SharedLoads < readers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: SharedLoads=%d", p.Stats().SharedLoads)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("load ran %d times, want 1", n)
	}
	if p.Len() != 0 {
		t.Fatal("zero-capacity pool cached an entry")
	}
}

// TestOfferBatch pins the coalesced readahead job: one offer, one batch
// load, per-page inserts with prefetched (cold-end) semantics.
func TestOfferBatch(t *testing.T) {
	p := NewPool(16)
	pf := NewPrefetcher(p, 1, 8)
	defer pf.Close()

	keys := []Key{{Page: 1}, {Page: 2}, {Page: 3}}
	var batchLoads atomic.Int64
	ok := pf.OfferBatch(keys, func() ([]any, error) {
		batchLoads.Add(1)
		return []any{"a", "b", "c"}, nil
	})
	if !ok {
		t.Fatal("batch offer rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for pf.Stats().Loaded < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %+v", pf.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if n := batchLoads.Load(); n != 1 {
		t.Fatalf("batch load ran %d times, want 1", n)
	}
	for i, k := range keys {
		if !p.Contains(k) {
			t.Fatalf("page %d not cached", i)
		}
	}
	st := pf.Stats()
	if st.Offered != 1 || st.Loaded != 3 {
		t.Fatalf("prefetch stats %+v, want 1 offer / 3 loaded", st)
	}
	// The first demand Get on a batch-prefetched page is a PrefetchHit.
	if _, err := p.Get(keys[0], func() (any, error) { return nil, errors.New("not prefetched") }); err != nil {
		t.Fatal(err)
	}
	if ps := p.Stats(); ps.PrefetchHits != 1 {
		t.Fatalf("PrefetchHits = %d, want 1", ps.PrefetchHits)
	}

	// A fully-cached run is skipped without a load.
	if pf.OfferBatch(keys, func() ([]any, error) {
		t.Error("load ran for a fully-cached run")
		return nil, nil
	}) {
		t.Fatal("fully-cached batch offer accepted")
	}

	// A batch whose load fails counts one failure and caches nothing.
	bad := []Key{{Page: 8}, {Page: 9}}
	if !pf.OfferBatch(bad, func() ([]any, error) { return nil, errors.New("origin died") }) {
		t.Fatal("batch offer rejected")
	}
	deadline = time.Now().Add(5 * time.Second)
	for pf.Stats().Failed < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %+v", pf.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if p.Contains(bad[0]) || p.Contains(bad[1]) {
		t.Fatal("failed batch cached pages")
	}
}
