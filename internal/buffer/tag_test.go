package buffer

import (
	"sync"
	"testing"

	"repro/internal/storage"
)

// TestGetTaggedMirrorsShardCounts checks that a tag sees exactly the
// accesses made with it, with the same hit/miss classification the pool
// records.
func TestGetTaggedMirrorsShardCounts(t *testing.T) {
	p := NewPool(2)
	var tag TagStats
	load := func() (any, error) { return "v", nil }

	k1 := Key{Owner: 1, Page: storage.PageID(1)}
	k2 := Key{Owner: 1, Page: storage.PageID(2)}
	if _, err := p.GetTagged(k1, &tag, load); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := p.GetTagged(k1, &tag, load); err != nil { // hit
		t.Fatal(err)
	}
	if _, err := p.GetTagged(k2, nil, load); err != nil { // untagged miss
		t.Fatal(err)
	}

	got := tag.Stats()
	got.LoadNanos = 0 // wall-clock dependent; classification is what's under test
	want := Stats{Accesses: 2, Hits: 1, Misses: 1}
	if got != want {
		t.Fatalf("tag stats = %+v, want %+v", got, want)
	}
	pool := p.Stats()
	if pool.Accesses != 3 || pool.Misses != 2 {
		t.Fatalf("pool stats = %+v, want 3 accesses / 2 misses", pool)
	}
}

// TestGetTaggedExactUnderConcurrency runs several goroutines with private
// tags over one pool and checks that (a) each tag counts exactly its own
// goroutine's accesses and (b) the tags sum to the pool's aggregate — the
// property that makes per-request attribution on a shared serving pool
// exact rather than a delta-based approximation.
func TestGetTaggedExactUnderConcurrency(t *testing.T) {
	const (
		workers  = 8
		accesses = 2000
		pages    = 64
	)
	p := NewShardedPool(16, 4)
	load := func() (any, error) { return "v", nil }

	tags := make([]*TagStats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		tags[w] = new(TagStats)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < accesses; i++ {
				k := Key{Owner: uint32(w % 2), Page: storage.PageID((i * (w + 3)) % pages)}
				if _, err := p.GetTagged(k, tags[w], load); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	var sum Stats
	for w, tag := range tags {
		ts := tag.Stats()
		if ts.Accesses != accesses {
			t.Errorf("tag %d: %d accesses, want %d", w, ts.Accesses, accesses)
		}
		if ts.Hits+ts.Misses != ts.Accesses {
			t.Errorf("tag %d: hits %d + misses %d != accesses %d", w, ts.Hits, ts.Misses, ts.Accesses)
		}
		sum.add(ts)
	}
	pool := p.Stats()
	if sum.Accesses != pool.Accesses || sum.Hits != pool.Hits || sum.Misses != pool.Misses {
		t.Fatalf("tag sum %+v != pool aggregate %+v", sum, pool)
	}
}
