package buffer

import (
	"sync"
	"sync/atomic"
)

// PrefetchStats are cumulative counters of one Prefetcher. Together with the
// pool's PrefetchHits they tell the whole readahead story: how many pages
// were offered, how many loads actually ran, how many were wasted (already
// cached by the time the worker got there), and how many offers were shed
// because the queue was full.
type PrefetchStats struct {
	// Offered counts Offer calls that found the page absent and enqueued it.
	Offered int64
	// Dropped counts offers shed because the queue was full (readahead is
	// best-effort: it never blocks the demand path).
	Dropped int64
	// AlreadyCached counts offers and dequeued jobs skipped because demand
	// (or an earlier prefetch) had already cached the page.
	AlreadyCached int64
	// Loaded counts pages fetched and inserted ahead of demand.
	Loaded int64
	// Failed counts loads that returned an error (dropped silently: the
	// demand path will retry the page and surface the error with context).
	Failed int64
}

// Add accumulates o into s, field by field — the one place the counter
// arithmetic lives, so a future counter cannot be silently dropped from an
// aggregation site.
func (s *PrefetchStats) Add(o PrefetchStats) {
	s.Offered += o.Offered
	s.Dropped += o.Dropped
	s.AlreadyCached += o.AlreadyCached
	s.Loaded += o.Loaded
	s.Failed += o.Failed
}

// Sub returns s - o, field by field (the delta of two snapshots).
func (s PrefetchStats) Sub(o PrefetchStats) PrefetchStats {
	return PrefetchStats{
		Offered:       s.Offered - o.Offered,
		Dropped:       s.Dropped - o.Dropped,
		AlreadyCached: s.AlreadyCached - o.AlreadyCached,
		Loaded:        s.Loaded - o.Loaded,
		Failed:        s.Failed - o.Failed,
	}
}

// prefetchJob is one queued readahead: load the page and insert it for key,
// or — when keys/loadBatch are set — load a run of pages in one substrate
// operation and insert each.
type prefetchJob struct {
	key  Key
	load func() (any, error)

	keys      []Key
	loadBatch func() ([]any, error)
}

// Prefetcher is a bounded asynchronous readahead executor in front of a
// Pool: callers Offer pages the traversal is about to want (e.g. the sibling
// children of an internal R-tree node), a small worker pool loads them
// outside every shard lock — the same load-outside-lock seam Get uses — and
// inserts them with PutPrefetched. High-latency pagers (HTTP range requests)
// hide round trips behind it; offers are non-blocking and shed under
// pressure, so a slow or failing substrate degrades readahead to a no-op
// instead of stalling the join.
//
// A Prefetcher must be Closed when its index detaches: Close waits for
// in-flight loads, so the pager underneath can be closed safely afterwards.
type Prefetcher struct {
	pool *Pool
	jobs chan prefetchJob

	mu      sync.RWMutex // guards closed vs. concurrent Offer sends
	closed  bool
	closing atomic.Bool // workers discard queued jobs once set
	wg      sync.WaitGroup

	offered atomic.Int64
	dropped atomic.Int64
	already atomic.Int64
	loaded  atomic.Int64
	failed  atomic.Int64

	// depthLimit, when > 0, caps admission below the channel's capacity:
	// offers finding at least that many jobs queued are shed. The query
	// planner lowers it on hot buffers (speculation mostly wasted) and
	// raises it on cold remote ones.
	depthLimit atomic.Int32
}

// NewPrefetcher starts a readahead executor over pool with the given worker
// count and queue depth (defaults: 2 workers, 64 jobs).
func NewPrefetcher(pool *Pool, workers, depth int) *Prefetcher {
	if workers <= 0 {
		workers = 2
	}
	if depth <= 0 {
		depth = 64
	}
	pf := &Prefetcher{pool: pool, jobs: make(chan prefetchJob, depth)}
	pf.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go pf.worker()
	}
	return pf
}

// SetDepthLimit caps how many jobs may sit queued at once to n (0 or
// anything at or above the queue capacity restores the full queue). Offers
// over the cap are shed exactly like full-queue offers. Safe to call
// concurrently with offers; the cap is advisory — a racing offer may land
// one job past it.
func (pf *Prefetcher) SetDepthLimit(n int) {
	if n < 0 {
		n = 0
	}
	pf.depthLimit.Store(int32(n))
}

// admits reports whether the depth cap allows another job in the queue.
func (pf *Prefetcher) admits() bool {
	lim := int(pf.depthLimit.Load())
	return lim <= 0 || len(pf.jobs) < lim
}

// Offer enqueues a readahead for k unless the page is already cached, the
// queue is full (or over the planner's depth cap), or the prefetcher is
// closed. It never blocks; the return value reports whether the job was
// enqueued.
func (pf *Prefetcher) Offer(k Key, load func() (any, error)) bool {
	if pf.pool.Contains(k) {
		pf.already.Add(1)
		return false
	}
	pf.mu.RLock()
	defer pf.mu.RUnlock()
	if pf.closed {
		return false
	}
	if !pf.admits() {
		pf.dropped.Add(1)
		return false
	}
	select {
	case pf.jobs <- prefetchJob{key: k, load: load}:
		pf.offered.Add(1)
		return true
	default:
		pf.dropped.Add(1)
		return false
	}
}

// OfferBatch enqueues one readahead job for a run of pages that loadBatch
// fetches together (one coalesced substrate operation, e.g. a multi-page
// HTTP range request), to be inserted under the given keys in order. The
// job is enqueued unless every page is already cached, the queue is full,
// or the prefetcher is closed; like Offer it never blocks. Counters treat
// the batch as one offer but count Loaded/AlreadyCached per page.
func (pf *Prefetcher) OfferBatch(keys []Key, loadBatch func() ([]any, error)) bool {
	if len(keys) == 0 {
		return false
	}
	allCached := true
	for _, k := range keys {
		if !pf.pool.Contains(k) {
			allCached = false
			break
		}
	}
	if allCached {
		pf.already.Add(int64(len(keys)))
		return false
	}
	pf.mu.RLock()
	defer pf.mu.RUnlock()
	if pf.closed {
		return false
	}
	if !pf.admits() {
		pf.dropped.Add(1)
		return false
	}
	select {
	case pf.jobs <- prefetchJob{keys: keys, loadBatch: loadBatch}:
		pf.offered.Add(1)
		return true
	default:
		pf.dropped.Add(1)
		return false
	}
}

// worker drains the queue: re-check the pool (demand may have won the race
// since the offer), load outside all locks, insert. Once Close has begun,
// queued jobs are discarded instead of loaded — against a dead origin each
// load can burn the full retry budget, and Close must not wait for a
// backlog of those.
func (pf *Prefetcher) worker() {
	defer pf.wg.Done()
	for job := range pf.jobs {
		if pf.closing.Load() {
			pf.dropped.Add(1)
			continue
		}
		if job.loadBatch != nil {
			pf.runBatch(job)
			continue
		}
		if pf.pool.Contains(job.key) {
			pf.already.Add(1)
			continue
		}
		v, err := job.load()
		if err != nil {
			pf.failed.Add(1)
			continue
		}
		if pf.pool.PutPrefetched(job.key, v) {
			pf.loaded.Add(1)
		} else {
			pf.already.Add(1)
		}
	}
}

// runBatch executes one coalesced readahead job: re-check the pool (demand
// may have cached some of the run since the offer; if all of it, skip the
// fetch), load the run in one operation, insert what is still absent.
func (pf *Prefetcher) runBatch(job prefetchJob) {
	allCached := true
	for _, k := range job.keys {
		if !pf.pool.Contains(k) {
			allCached = false
			break
		}
	}
	if allCached {
		pf.already.Add(int64(len(job.keys)))
		return
	}
	vals, err := job.loadBatch()
	if err != nil || len(vals) != len(job.keys) {
		pf.failed.Add(1)
		return
	}
	for i, k := range job.keys {
		if pf.pool.PutPrefetched(k, vals[i]) {
			pf.loaded.Add(1)
		} else {
			pf.already.Add(1)
		}
	}
}

// Close stops accepting offers, discards queued jobs, and waits only for
// the loads already in flight — so closing an index whose origin has died
// costs at most one load's retry budget per worker, not the whole backlog's.
// Idempotent.
func (pf *Prefetcher) Close() {
	pf.mu.Lock()
	if pf.closed {
		pf.mu.Unlock()
		return
	}
	pf.closed = true
	pf.closing.Store(true)
	close(pf.jobs)
	pf.mu.Unlock()
	pf.wg.Wait()
}

// Stats returns a snapshot of the prefetcher's counters.
func (pf *Prefetcher) Stats() PrefetchStats {
	return PrefetchStats{
		Offered:       pf.offered.Load(),
		Dropped:       pf.dropped.Load(),
		AlreadyCached: pf.already.Load(),
		Loaded:        pf.loaded.Load(),
		Failed:        pf.failed.Load(),
	}
}
