package buffer

import (
	"fmt"
	"testing"
)

// BenchmarkPoolParallel measures concurrent Get throughput against pools
// with increasing shard counts — the single-lock (shards=1) row is the
// pre-sharding design. The access pattern models a parallel join: each
// goroutine walks its own mostly-cached working set over a shared pool.
func BenchmarkPoolParallel(b *testing.B) {
	const (
		pages    = 4096
		capacity = pages // fully cached: isolates lock contention from faults
	)
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p := NewShardedPool(capacity, shards)
			for i := 0; i < pages; i++ {
				p.Get(key(1, i), load(i))
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					k := key(1, (i*31)%pages)
					if _, err := p.Get(k, load(i)); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkPoolParallelFaulting is the bounded-buffer variant: 25% capacity
// forces constant eviction traffic, the worst case for a single lock.
func BenchmarkPoolParallelFaulting(b *testing.B) {
	const pages = 4096
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p := NewShardedPool(pages/4, shards)
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					k := key(1, (i*31)%pages)
					if _, err := p.Get(k, load(i)); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}
