package buffer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPrefetcherLoadsAndHits(t *testing.T) {
	pool := NewPool(16)
	pf := NewPrefetcher(pool, 2, 16)
	defer pf.Close()

	k := Key{Owner: 1, Page: storage.PageID(7)}
	if !pf.Offer(k, func() (any, error) { return "node7", nil }) {
		t.Fatal("offer rejected")
	}
	waitFor(t, "prefetch load", func() bool { return pool.Contains(k) })
	if st := pf.Stats(); st.Offered != 1 || st.Loaded != 1 {
		t.Fatalf("prefetch stats %+v", st)
	}

	// The first demand access is a hit, classified as a prefetch hit.
	v, err := pool.Get(k, func() (any, error) {
		t.Fatal("demand load ran despite prefetch")
		return nil, nil
	})
	if err != nil || v != "node7" {
		t.Fatalf("Get = %v, %v", v, err)
	}
	st := pool.Stats()
	if st.Hits != 1 || st.PrefetchHits != 1 {
		t.Fatalf("pool stats %+v, want 1 hit classified as prefetch hit", st)
	}
	// Subsequent accesses are plain hits: the prefetch flag is consumed.
	if _, err := pool.Get(k, nil); err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.PrefetchHits != 1 {
		t.Fatalf("prefetch hit double-counted: %+v", st)
	}
}

func TestPrefetcherSkipsCached(t *testing.T) {
	pool := NewPool(16)
	pf := NewPrefetcher(pool, 1, 4)
	defer pf.Close()
	k := Key{Owner: 1, Page: 3}
	pool.Put(k, "demand")
	if pf.Offer(k, func() (any, error) { return "prefetch", nil }) {
		t.Fatal("offer of a cached page accepted")
	}
	if st := pf.Stats(); st.AlreadyCached != 1 {
		t.Fatalf("stats %+v, want AlreadyCached=1", st)
	}
	// Demand value wins; no prefetch-hit classification.
	v, _ := pool.Get(k, nil)
	if v != "demand" {
		t.Fatalf("Get = %v, want the demand-loaded value", v)
	}
	if st := pool.Stats(); st.PrefetchHits != 0 {
		t.Fatalf("stats %+v, want no prefetch hits", st)
	}
}

func TestPrefetcherShedsWhenFull(t *testing.T) {
	pool := NewPool(16)
	release := make(chan struct{})
	pf := NewPrefetcher(pool, 1, 1)
	defer pf.Close()

	slow := func() (any, error) { <-release; return "x", nil }
	pf.Offer(Key{Owner: 1, Page: 1}, slow) // occupies the single worker
	pf.Offer(Key{Owner: 1, Page: 2}, slow) // sits in the depth-1 queue
	// Everything further must shed, never block.
	done := make(chan struct{})
	go func() {
		for i := 3; i < 10; i++ {
			pf.Offer(Key{Owner: 1, Page: storage.PageID(i)}, slow)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Offer blocked on a full queue")
	}
	close(release)
	// At least the in-flight job lands; whether the queued one was accepted
	// races with the worker's dequeue, so only the floor is asserted.
	waitFor(t, "queue drain", func() bool { return pf.Stats().Loaded >= 1 })
	if st := pf.Stats(); st.Dropped == 0 {
		t.Fatalf("stats %+v, want dropped offers", st)
	}
}

func TestPrefetcherFailedLoad(t *testing.T) {
	pool := NewPool(16)
	pf := NewPrefetcher(pool, 1, 4)
	defer pf.Close()
	k := Key{Owner: 1, Page: 9}
	pf.Offer(k, func() (any, error) { return nil, errors.New("boom") })
	waitFor(t, "failed load", func() bool { return pf.Stats().Failed == 1 })
	if pool.Contains(k) {
		t.Fatal("failed load cached")
	}
	// Demand still works and surfaces its own result.
	if _, err := pool.Get(k, func() (any, error) { return "ok", nil }); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetcherCloseWaitsAndRejects(t *testing.T) {
	pool := NewPool(16)
	started := make(chan struct{})
	release := make(chan struct{})
	pf := NewPrefetcher(pool, 1, 4)
	k := Key{Owner: 1, Page: 5}
	pf.Offer(k, func() (any, error) { close(started); <-release; return "v", nil })
	<-started
	closed := make(chan struct{})
	go func() { pf.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a load was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-closed
	if !pool.Contains(k) {
		t.Fatal("in-flight load discarded by Close")
	}
	if pf.Offer(Key{Owner: 1, Page: 6}, func() (any, error) { return "v", nil }) {
		t.Fatal("Offer accepted after Close")
	}
	pf.Close() // idempotent
}

func TestPutPrefetchedSemantics(t *testing.T) {
	pool := NewPool(2) // tiny: prefetched entries must evict like any other
	if !pool.PutPrefetched(Key{Page: 1}, "a") {
		t.Fatal("insert into empty pool rejected")
	}
	if pool.PutPrefetched(Key{Page: 1}, "b") {
		t.Fatal("duplicate insert accepted")
	}
	pool.PutPrefetched(Key{Page: 2}, "c")
	pool.PutPrefetched(Key{Page: 3}, "d")
	if pool.Len() != 2 {
		t.Fatalf("Len = %d, want capacity-bounded 2", pool.Len())
	}
	zero := NewPool(0)
	if zero.PutPrefetched(Key{Page: 1}, "x") {
		t.Fatal("zero-capacity pool cached a prefetched entry")
	}
}

// TestPrefetcherConcurrent races offers, demand gets, and a close. Run with
// -race.
func TestPrefetcherConcurrent(t *testing.T) {
	pool := NewShardedPool(64, 4)
	pf := NewPrefetcher(pool, 3, 32)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := Key{Owner: uint32(g % 2), Page: storage.PageID(i % 40)}
				if i%2 == 0 {
					pf.Offer(k, func() (any, error) { return i, nil })
				} else if _, err := pool.Get(k, func() (any, error) { return i, nil }); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	pf.Close()
	st := pool.Stats()
	if st.Accesses == 0 {
		t.Fatalf("pool stats %+v", st)
	}
	// The shard counters must stay internally consistent with prefetch
	// classification folded in.
	if st.Hits+st.Misses != st.Accesses || st.PrefetchHits > st.Hits {
		t.Fatalf("inconsistent stats %+v", st)
	}
}
