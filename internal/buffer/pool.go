// Package buffer implements the LRU buffer manager that sits between the
// R-trees and the pager. The paper's experiments employ "a small memory
// buffer ... to exploit the locality of data accesses and reduce the number
// of page faults", sized as a percentage of the sum of both tree sizes
// (default 1%), and charge 10 ms per fault. This pool reproduces that model:
// every node access goes through Get, hits are free, misses are page faults.
//
// One pool may be shared by several trees (as in the paper, where both join
// inputs compete for the same buffer); cache keys carry an owner id to keep
// their page spaces apart.
package buffer

import (
	"container/list"
	"sync"

	"repro/internal/storage"
)

// Key identifies a cached node: the owning tree and its page id.
type Key struct {
	Owner uint32
	Page  storage.PageID
}

// Stats are cumulative access counters for a pool. Accesses counts every
// logical node access (the paper's CPU-cost proxy); Misses counts page
// faults (the paper's I/O-cost driver); Evictions counts LRU replacements.
type Stats struct {
	Accesses  int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// Faults returns the number of page faults (cache misses).
func (s Stats) Faults() int64 { return s.Misses }

// HitRatio returns the fraction of accesses served from the buffer.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type entry struct {
	key   Key
	value any
}

// Pool is an LRU cache of deserialized R-tree nodes keyed by (owner, page).
// A capacity of zero disables caching entirely (every access faults); a
// negative capacity means unbounded. Pool is safe for concurrent use.
type Pool struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	stats    Stats
}

// NewPool returns a pool that holds at most capacity nodes.
func NewPool(capacity int) *Pool {
	return &Pool{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
	}
}

// Capacity returns the pool's node capacity.
func (p *Pool) Capacity() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.capacity
}

// Resize changes the capacity, evicting LRU entries as needed.
func (p *Pool) Resize(capacity int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.capacity = capacity
	p.evictOverflow()
}

// Len returns the number of cached nodes.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ll.Len()
}

// Get returns the cached value for k, calling load to fetch and deserialize
// it on a miss. The loaded value is cached (unless capacity is zero) and the
// access is counted either way.
func (p *Pool) Get(k Key, load func() (any, error)) (any, error) {
	p.mu.Lock()
	p.stats.Accesses++
	if el, ok := p.items[k]; ok {
		p.stats.Hits++
		p.ll.MoveToFront(el)
		v := el.Value.(*entry).value
		p.mu.Unlock()
		return v, nil
	}
	p.stats.Misses++
	p.mu.Unlock()

	// Load outside the lock: loads hit the pager, which has its own locking,
	// and may be slow for file-backed pagers.
	v, err := load()
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity == 0 {
		return v, nil
	}
	if el, ok := p.items[k]; ok {
		// Another goroutine cached it meanwhile; prefer the existing value.
		p.ll.MoveToFront(el)
		return el.Value.(*entry).value, nil
	}
	el := p.ll.PushFront(&entry{key: k, value: v})
	p.items[k] = el
	p.evictOverflow()
	return v, nil
}

// Put inserts or refreshes a cached value, used when a node is (re)written so
// readers observe the new version.
func (p *Pool) Put(k Key, v any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capacity == 0 {
		return
	}
	if el, ok := p.items[k]; ok {
		el.Value.(*entry).value = v
		p.ll.MoveToFront(el)
		return
	}
	el := p.ll.PushFront(&entry{key: k, value: v})
	p.items[k] = el
	p.evictOverflow()
}

// Invalidate removes k from the cache if present.
func (p *Pool) Invalidate(k Key) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[k]; ok {
		p.ll.Remove(el)
		delete(p.items, k)
	}
}

// InvalidateOwner removes every cached node belonging to owner, used when a
// tree is rebuilt.
func (p *Pool) InvalidateOwner(owner uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for el := p.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.key.Owner == owner {
			p.ll.Remove(el)
			delete(p.items, e.key)
		}
		el = next
	}
}

// Clear empties the cache without touching the counters.
func (p *Pool) Clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ll.Init()
	p.items = make(map[Key]*list.Element)
}

// Stats returns cumulative access counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters, typically between the build phase and the
// measured join phase of an experiment.
func (p *Pool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// evictOverflow drops LRU entries until the pool fits its capacity.
// Caller must hold p.mu.
func (p *Pool) evictOverflow() {
	if p.capacity < 0 {
		return
	}
	for p.ll.Len() > p.capacity {
		el := p.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		p.ll.Remove(el)
		delete(p.items, e.key)
		p.stats.Evictions++
	}
}
