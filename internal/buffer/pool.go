// Package buffer implements the LRU buffer manager that sits between the
// R-trees and the pager. The paper's experiments employ "a small memory
// buffer ... to exploit the locality of data accesses and reduce the number
// of page faults", sized as a percentage of the sum of both tree sizes
// (default 1%), and charge 10 ms per fault. This pool reproduces that model:
// every node access goes through Get, hits are free, misses are page faults.
//
// One pool may be shared by several trees (as in the paper, where both join
// inputs compete for the same buffer); cache keys carry an owner id to keep
// their page spaces apart.
//
// A Pool is divided into independently-locked LRU shards so that concurrent
// joins sharing one pool do not contend on a single mutex. NewPool builds a
// single-shard pool whose replacement behavior is exactly the paper's global
// LRU (and deterministic, which the experiment harness relies on);
// NewShardedPool spreads the capacity over several shards for concurrent
// serving, approximating global LRU per hash partition while keeping the
// aggregate Stats exact via per-shard counters.
package buffer

import (
	"container/list"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// Key identifies a cached node: the owning tree and its page id.
type Key struct {
	Owner uint32
	Page  storage.PageID
}

// Stats are cumulative access counters for a pool. Accesses counts every
// logical node access (the paper's CPU-cost proxy); Misses counts page
// faults (the paper's I/O-cost driver); Evictions counts LRU replacements.
// PrefetchHits counts hits on entries a Prefetcher loaded ahead of demand
// and that had not been demanded before — each one is a page fault the
// readahead hid from the requester.
// SharedLoads counts misses that piggybacked on a load another goroutine
// already had in flight for the same key instead of calling load themselves
// (the single-flight dedupe); each one is still counted as a miss, so the
// hit/miss classification — and per-tag attribution — is unchanged.
// LoadNanos accumulates the real time requests spent blocked on miss loads
// (leaders in the pager, waiters on the leader's flight), in nanoseconds.
// It is a sum over requests, like CPU-seconds: concurrent faults each add
// their own wait, so the total may exceed wall time.
type Stats struct {
	Accesses     int64
	Hits         int64
	Misses       int64
	Evictions    int64
	PrefetchHits int64
	SharedLoads  int64
	LoadNanos    int64
}

// LoadWait returns the accumulated miss-load wait as a duration.
func (s Stats) LoadWait() time.Duration { return time.Duration(s.LoadNanos) }

// Faults returns the number of page faults (cache misses).
func (s Stats) Faults() int64 { return s.Misses }

// HitRatio returns the fraction of accesses served from the buffer.
func (s Stats) HitRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// add accumulates o into s.
func (s *Stats) add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.PrefetchHits += o.PrefetchHits
	s.SharedLoads += o.SharedLoads
	s.LoadNanos += o.LoadNanos
}

// TagStats attributes buffer accesses to one logical request (typically one
// join) running over a shared pool. Every access made through GetTagged with
// a given tag is mirrored into that tag's counters with atomic adds, so a
// request's hit/miss accounting is exact even while any number of other
// requests — tagged or not — hammer the same shards concurrently. This is
// what makes per-request buffer hit rates reportable from a serving daemon:
// shard counters aggregate the whole pool; tags carve out one request's
// share without approximation.
//
// The zero value is ready to use. A TagStats must not be reused across
// requests whose counts should stay separate.
type TagStats struct {
	accesses  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	loadNanos atomic.Int64
}

// Stats returns a snapshot of the tag's counters. Evictions are a pool-wide
// phenomenon and are not attributable to one request; the field is always 0.
func (t *TagStats) Stats() Stats {
	return Stats{
		Accesses:  t.accesses.Load(),
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		LoadNanos: t.loadNanos.Load(),
	}
}

type entry struct {
	key        Key
	value      any
	prefetched bool // loaded by a Prefetcher and not yet demanded
}

// loadFlight is one in-flight miss load: the leader fills v/err and closes
// done; concurrent misses of the same key wait on done and share the
// outcome instead of re-running load.
type loadFlight struct {
	done chan struct{}
	v    any
	err  error
}

// shard is one independently-locked LRU partition of a Pool.
type shard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	inflight map[Key]*loadFlight
	stats    Stats
	_        [64]byte // keep neighboring shards' hot fields off one cache line
}

// Pool is an LRU cache of deserialized R-tree nodes keyed by (owner, page),
// partitioned into hash shards. A capacity of zero disables caching entirely
// (every access faults); a negative capacity means unbounded. Pool is safe
// for concurrent use.
type Pool struct {
	shards []shard
	mask   uint32
}

// NewPool returns a single-shard pool that holds at most capacity nodes,
// with exact global-LRU replacement.
func NewPool(capacity int) *Pool {
	return NewShardedPool(capacity, 1)
}

// NewShardedPool returns a pool whose capacity is spread over the given
// number of independently-locked LRU shards (rounded up to a power of two;
// values < 1 select DefaultShards). More shards reduce lock contention for
// concurrent workloads at the cost of per-partition rather than global LRU
// replacement. A bounded capacity caps the shard count: every shard must
// hold at least one node, because a zero-capacity shard would disable
// caching for its whole hash partition.
func NewShardedPool(capacity, shards int) *Pool {
	if shards < 1 {
		shards = DefaultShards()
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if capacity >= 0 {
		for n > 1 && n > capacity {
			n >>= 1
		}
	}
	p := &Pool{shards: make([]shard, n), mask: uint32(n - 1)}
	for i := range p.shards {
		s := &p.shards[i]
		s.capacity = shardCapacity(capacity, i, n)
		s.ll = list.New()
		s.items = make(map[Key]*list.Element)
		s.inflight = make(map[Key]*loadFlight)
	}
	return p
}

// DefaultShards is the shard count NewShardedPool uses when asked for an
// automatic choice: the smallest power of two covering the usable CPUs,
// capped at 64.
func DefaultShards() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 64 {
		n <<= 1
	}
	return n
}

// shardCapacity splits a total capacity over n shards: shard i receives an
// equal share with the remainder going to the lowest-indexed shards.
// Unbounded (< 0) and disabled (0) totals apply to every shard.
func shardCapacity(total, i, n int) int {
	if total < 0 {
		return -1
	}
	c := total / n
	if i < total%n {
		c++
	}
	return c
}

// Shards returns the number of LRU shards.
func (p *Pool) Shards() int { return len(p.shards) }

// shardFor maps a key to its shard.
func (p *Pool) shardFor(k Key) *shard {
	if p.mask == 0 {
		return &p.shards[0]
	}
	h := uint64(k.Owner)*0x9E3779B97F4A7C15 ^ uint64(k.Page)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return &p.shards[uint32(h)&p.mask]
}

// Capacity returns the pool's total node capacity (negative = unbounded).
func (p *Pool) Capacity() int {
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		c := s.capacity
		s.mu.Unlock()
		if c < 0 {
			return -1
		}
		total += c
	}
	return total
}

// Resize changes the total capacity, evicting LRU entries as needed. The
// shard count is fixed at construction, so resizing a sharded pool below
// its shard count floors every shard at one node (slightly exceeding the
// requested total) rather than disabling caching for whole partitions;
// Capacity reports the effective sum.
func (p *Pool) Resize(capacity int) {
	n := len(p.shards)
	for i := range p.shards {
		s := &p.shards[i]
		c := shardCapacity(capacity, i, n)
		if capacity > 0 && c < 1 {
			c = 1
		}
		s.mu.Lock()
		s.capacity = c
		s.evictOverflow()
		s.mu.Unlock()
	}
}

// Len returns the number of cached nodes.
func (p *Pool) Len() int {
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		total += s.ll.Len()
		s.mu.Unlock()
	}
	return total
}

// Get returns the cached value for k, calling load to fetch and deserialize
// it on a miss. The loaded value is cached (unless the shard's capacity is
// zero) and the access is counted either way.
func (p *Pool) Get(k Key, load func() (any, error)) (any, error) {
	v, _, err := p.GetTaggedFirst(k, nil, load)
	return v, err
}

// GetTagged is Get with per-request attribution: when tag is non-nil the
// access is counted both in the shard's aggregate stats and in tag, with the
// same hit/miss classification, so summing all tags plus untagged accesses
// reproduces Pool.Stats exactly.
func (p *Pool) GetTagged(k Key, tag *TagStats, load func() (any, error)) (any, error) {
	v, _, err := p.GetTaggedFirst(k, tag, load)
	return v, err
}

// GetTaggedFirst is GetTagged additionally reporting whether this access
// was the page's first demand read since it entered the pool — a miss, or
// the first hit on a prefetched entry. That is the signal readahead uses to
// advance: a traversal landing on a prefetched page has reached a fresh
// frontier even though the pool served it as a hit.
func (p *Pool) GetTaggedFirst(k Key, tag *TagStats, load func() (any, error)) (any, bool, error) {
	s := p.shardFor(k)
	s.mu.Lock()
	s.stats.Accesses++
	if el, ok := s.items[k]; ok {
		s.stats.Hits++
		e := el.Value.(*entry)
		first := e.prefetched
		if first {
			e.prefetched = false
			s.stats.PrefetchHits++
		}
		s.ll.MoveToFront(el)
		v := e.value
		s.mu.Unlock()
		if tag != nil {
			tag.accesses.Add(1)
			tag.hits.Add(1)
		}
		return v, first, nil
	}
	s.stats.Misses++
	// Single-flight: if another miss already has this key's load in flight,
	// wait for its result instead of loading again. The waiter is still a
	// miss — to its request the page faulted — so shard and tag counters are
	// classified exactly as before; SharedLoads records the dedupe.
	lf, waiting := s.inflight[k]
	var f *loadFlight
	if waiting {
		s.stats.SharedLoads++
	} else {
		f = &loadFlight{done: make(chan struct{})}
		s.inflight[k] = f
	}
	s.mu.Unlock()
	if tag != nil {
		tag.accesses.Add(1)
		tag.misses.Add(1)
	}
	if waiting {
		waitStart := time.Now()
		<-lf.done
		wait := time.Since(waitStart).Nanoseconds()
		s.mu.Lock()
		s.stats.LoadNanos += wait
		s.mu.Unlock()
		if tag != nil {
			tag.loadNanos.Add(wait)
		}
		if lf.err != nil {
			return nil, false, lf.err
		}
		return lf.v, true, nil
	}

	// Load outside the lock: loads hit the pager, which has its own locking,
	// and may be slow for file-backed pagers. The wall time spent here is the
	// request's real I/O wait, recorded so cost accounting can separate fetch
	// latency from compute.
	loadStart := time.Now()
	v, err := load()
	loaded := time.Since(loadStart).Nanoseconds()
	if tag != nil {
		tag.loadNanos.Add(loaded)
	}
	if err != nil {
		s.mu.Lock()
		delete(s.inflight, k)
		s.stats.LoadNanos += loaded
		s.mu.Unlock()
		f.err = err
		close(f.done)
		return nil, false, err
	}
	f.v = v

	s.mu.Lock()
	s.stats.LoadNanos += loaded
	delete(s.inflight, k)
	if s.capacity == 0 {
		s.mu.Unlock()
		close(f.done)
		return v, true, nil
	}
	if el, ok := s.items[k]; ok {
		// A racing prefetch cached it meanwhile; prefer the existing value.
		// The page has now been demanded (and counted as a full miss above),
		// so consume the flag without a PrefetchHit — the readahead did not
		// beat this demand.
		e := el.Value.(*entry)
		e.prefetched = false
		s.ll.MoveToFront(el)
		cached := e.value
		s.mu.Unlock()
		close(f.done)
		return cached, true, nil
	}
	el := s.ll.PushFront(&entry{key: k, value: v})
	s.items[k] = el
	s.evictOverflow()
	s.mu.Unlock()
	close(f.done)
	return v, true, nil
}

// Put inserts or refreshes a cached value, used when a node is (re)written so
// readers observe the new version.
func (p *Pool) Put(k Key, v any) {
	s := p.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity == 0 {
		return
	}
	if el, ok := s.items[k]; ok {
		el.Value.(*entry).value = v
		s.ll.MoveToFront(el)
		return
	}
	el := s.ll.PushFront(&entry{key: k, value: v})
	s.items[k] = el
	s.evictOverflow()
}

// Contains reports whether k is cached, without touching the LRU order or
// the access counters. It is the cheap pre-check the Prefetcher uses to skip
// pages demand already brought in.
func (p *Pool) Contains(k Key) bool {
	s := p.shardFor(k)
	s.mu.Lock()
	_, ok := s.items[k]
	s.mu.Unlock()
	return ok
}

// PutPrefetched inserts v for k as a prefetched entry, reporting whether
// the insert happened: an already-cached key is left untouched, a
// zero-capacity shard caches nothing, and a full shard rejects the insert
// outright. Speculative pages enter at the LRU *cold end* — readahead must
// never evict a demand-loaded page, whose value is proven, for one that is
// only predicted; the first demand Get promotes the entry to MRU like any
// hit and counts a PrefetchHit.
func (p *Pool) PutPrefetched(k Key, v any) bool {
	s := p.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity == 0 || (s.capacity > 0 && s.ll.Len() >= s.capacity) {
		return false
	}
	if _, ok := s.items[k]; ok {
		return false
	}
	s.items[k] = s.ll.PushBack(&entry{key: k, value: v, prefetched: true})
	return true
}

// Invalidate removes k from the cache if present.
func (p *Pool) Invalidate(k Key) {
	s := p.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.ll.Remove(el)
		delete(s.items, k)
	}
}

// InvalidateOwner removes every cached node belonging to owner, used when a
// tree is rebuilt or an index detaches from a shared pool.
func (p *Pool) InvalidateOwner(owner uint32) {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*entry)
			if e.key.Owner == owner {
				s.ll.Remove(el)
				delete(s.items, e.key)
			}
			el = next
		}
		s.mu.Unlock()
	}
}

// Clear empties the cache without touching the counters.
func (p *Pool) Clear() {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		s.ll.Init()
		s.items = make(map[Key]*list.Element)
		s.mu.Unlock()
	}
}

// Stats returns cumulative access counters, summed exactly over the shards.
func (p *Pool) Stats() Stats {
	var total Stats
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		total.add(s.stats)
		s.mu.Unlock()
	}
	return total
}

// ResetStats zeroes the counters, typically between the build phase and the
// measured join phase of an experiment.
func (p *Pool) ResetStats() {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		s.stats = Stats{}
		s.mu.Unlock()
	}
}

// evictOverflow drops LRU entries until the shard fits its capacity.
// Caller must hold s.mu.
func (s *shard) evictOverflow() {
	if s.capacity < 0 {
		return
	}
	for s.ll.Len() > s.capacity {
		el := s.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry)
		s.ll.Remove(el)
		delete(s.items, e.key)
		s.stats.Evictions++
	}
}
