package buffer

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
)

func load(v int) func() (any, error) {
	return func() (any, error) { return v, nil }
}

func key(owner uint32, page int) Key {
	return Key{Owner: owner, Page: storage.PageID(page)}
}

func TestGetCachesAndCounts(t *testing.T) {
	p := NewPool(2)
	v, err := p.Get(key(1, 1), load(10))
	if err != nil || v.(int) != 10 {
		t.Fatalf("get: %v %v", v, err)
	}
	// Second get must hit and must not call the loader.
	v, err = p.Get(key(1, 1), func() (any, error) {
		t.Fatal("loader called on hit")
		return nil, nil
	})
	if err != nil || v.(int) != 10 {
		t.Fatalf("hit: %v %v", v, err)
	}
	st := p.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got := st.Faults(); got != 1 {
		t.Fatalf("faults %d", got)
	}
	if r := st.HitRatio(); r != 0.5 {
		t.Fatalf("hit ratio %g", r)
	}
}

func TestLRUEviction(t *testing.T) {
	p := NewPool(2)
	p.Get(key(1, 1), load(1))
	p.Get(key(1, 2), load(2))
	p.Get(key(1, 1), load(1)) // 1 is now MRU
	p.Get(key(1, 3), load(3)) // evicts 2
	if p.Len() != 2 {
		t.Fatalf("len %d", p.Len())
	}
	missed := false
	p.Get(key(1, 2), func() (any, error) { missed = true; return 2, nil })
	if !missed {
		t.Fatal("page 2 should have been evicted")
	}
	hit2 := true
	p.Get(key(1, 1), func() (any, error) { hit2 = false; return 1, nil })
	if hit2 {
		// After reloading 2 (cap 2), LRU was {3, 2}; 1 was evicted. This is
		// expected; verify eviction count instead.
		if p.Stats().Evictions < 2 {
			t.Fatalf("evictions %d", p.Stats().Evictions)
		}
	}
}

func TestZeroCapacityNeverCaches(t *testing.T) {
	p := NewPool(0)
	for i := 0; i < 5; i++ {
		p.Get(key(1, 1), load(9))
	}
	st := p.Stats()
	if st.Hits != 0 || st.Misses != 5 {
		t.Fatalf("zero-cap stats %+v", st)
	}
	if p.Len() != 0 {
		t.Fatalf("zero-cap pool holds %d", p.Len())
	}
}

func TestUnboundedCapacity(t *testing.T) {
	p := NewPool(-1)
	for i := 0; i < 1000; i++ {
		p.Get(key(1, i), load(i))
	}
	if p.Len() != 1000 {
		t.Fatalf("len %d", p.Len())
	}
	if p.Stats().Evictions != 0 {
		t.Fatal("unbounded pool evicted")
	}
}

func TestResizeShrinks(t *testing.T) {
	p := NewPool(-1)
	for i := 0; i < 10; i++ {
		p.Get(key(1, i), load(i))
	}
	p.Resize(3)
	if p.Len() != 3 {
		t.Fatalf("after resize len %d", p.Len())
	}
	if p.Capacity() != 3 {
		t.Fatalf("capacity %d", p.Capacity())
	}
}

func TestOwnersAreDistinct(t *testing.T) {
	p := NewPool(10)
	p.Get(key(1, 5), load(100))
	missed := false
	p.Get(key(2, 5), func() (any, error) { missed = true; return 200, nil })
	if !missed {
		t.Fatal("same page id under different owner collided")
	}
	p.InvalidateOwner(1)
	missed = false
	p.Get(key(1, 5), func() (any, error) { missed = true; return 100, nil })
	if !missed {
		t.Fatal("InvalidateOwner(1) left owner 1 pages cached")
	}
	hit := true
	p.Get(key(2, 5), func() (any, error) { hit = false; return 200, nil })
	if !hit {
		t.Fatal("InvalidateOwner(1) dropped owner 2 pages")
	}
}

func TestPutAndInvalidate(t *testing.T) {
	p := NewPool(4)
	p.Put(key(1, 1), "v1")
	v, _ := p.Get(key(1, 1), func() (any, error) {
		t.Fatal("loader called after Put")
		return nil, nil
	})
	if v.(string) != "v1" {
		t.Fatalf("got %v", v)
	}
	p.Put(key(1, 1), "v2")
	v, _ = p.Get(key(1, 1), load(0))
	if v.(string) != "v2" {
		t.Fatalf("Put did not refresh: %v", v)
	}
	p.Invalidate(key(1, 1))
	missed := false
	p.Get(key(1, 1), func() (any, error) { missed = true; return "v3", nil })
	if !missed {
		t.Fatal("Invalidate left the entry")
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	p := NewPool(4)
	wantErr := errors.New("io boom")
	if _, err := p.Get(key(1, 1), func() (any, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("got %v", err)
	}
	if p.Len() != 0 {
		t.Fatal("error result cached")
	}
	// Next access retries the loader.
	v, err := p.Get(key(1, 1), load(7))
	if err != nil || v.(int) != 7 {
		t.Fatalf("retry: %v %v", v, err)
	}
}

func TestResetStatsAndClear(t *testing.T) {
	p := NewPool(4)
	p.Get(key(1, 1), load(1))
	p.Clear()
	if p.Len() != 0 {
		t.Fatal("clear failed")
	}
	if p.Stats().Accesses == 0 {
		t.Fatal("clear must not reset stats")
	}
	p.ResetStats()
	if s := p.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Fatalf("reset stats %+v", s)
	}
}

// TestLRUIsStackAlgorithm checks the inclusion property that makes the
// Figure 15 monotonicity hold: for the same access trace, the fault count
// never increases with capacity.
func TestLRUIsStackAlgorithm(t *testing.T) {
	trace := make([]int, 0, 4000)
	// A looping scan with locality, the tree-traversal pattern.
	for i := 0; i < 400; i++ {
		base := (i * 7) % 50
		for j := 0; j < 10; j++ {
			trace = append(trace, base+j%5)
		}
	}
	var prevFaults int64 = 1 << 62
	for _, capacity := range []int{1, 2, 4, 8, 16, 32, 64} {
		p := NewPool(capacity)
		for _, pg := range trace {
			p.Get(key(1, pg), load(pg))
		}
		faults := p.Stats().Misses
		if faults > prevFaults {
			t.Fatalf("capacity %d has %d faults, more than smaller capacity's %d", capacity, faults, prevFaults)
		}
		prevFaults = faults
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := NewPool(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(uint32(g%2), (g*11+i)%40)
				v, err := p.Get(k, func() (any, error) {
					return fmt.Sprintf("%d-%d", k.Owner, k.Page), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v.(string) != fmt.Sprintf("%d-%d", k.Owner, k.Page) {
					t.Errorf("wrong value for %+v: %v", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
