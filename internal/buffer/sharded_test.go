package buffer

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedPoolRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ want, shards int }{
		{1, 1}, {2, 2}, {4, 3}, {4, 4}, {8, 5}, {8, 8}, {16, 9},
	} {
		p := NewShardedPool(64, tc.shards)
		if p.Shards() != tc.want {
			t.Errorf("shards=%d: got %d shards, want %d", tc.shards, p.Shards(), tc.want)
		}
	}
	if got := NewShardedPool(64, 0).Shards(); got != DefaultShards() {
		t.Errorf("auto shards: got %d, want %d", got, DefaultShards())
	}
}

func TestShardedCapacitySplit(t *testing.T) {
	p := NewShardedPool(10, 4)
	if got := p.Capacity(); got != 10 {
		t.Fatalf("capacity %d, want 10", got)
	}
	p.Resize(7)
	if got := p.Capacity(); got != 7 {
		t.Fatalf("after resize capacity %d, want 7", got)
	}
	// Unbounded and disabled totals apply per shard.
	if got := NewShardedPool(-1, 4).Capacity(); got != -1 {
		t.Fatalf("unbounded capacity %d, want -1", got)
	}
	// A bounded capacity caps the shard count: no shard may end up with
	// capacity zero (which would disable caching for its partition).
	small := NewShardedPool(4, 16)
	if small.Shards() > 4 {
		t.Fatalf("capacity 4 spread over %d shards", small.Shards())
	}
	if got := small.Capacity(); got != 4 {
		t.Fatalf("clamped capacity %d, want 4", got)
	}
	for i := 0; i < 64; i++ {
		small.Get(key(1, i), load(i))
	}
	if small.Len() != 4 {
		t.Fatalf("clamped pool caches %d nodes, want 4", small.Len())
	}
	// Resizing an already-sharded pool below its shard count floors each
	// shard at one node instead of disabling partitions.
	wide := NewShardedPool(64, 8)
	wide.Resize(3)
	if got := wide.Capacity(); got != 8 {
		t.Fatalf("resize-below-shards capacity %d, want 8 (one per shard)", got)
	}
	for i := 0; i < 64; i++ {
		wide.Get(key(1, i), load(i))
	}
	if wide.Len() == 0 || wide.Len() > 8 {
		t.Fatalf("resized pool caches %d nodes", wide.Len())
	}
	zero := NewShardedPool(0, 4)
	for i := 0; i < 32; i++ {
		zero.Get(key(1, i), load(i))
	}
	if zero.Len() != 0 {
		t.Fatalf("zero-capacity sharded pool cached %d nodes", zero.Len())
	}
}

func TestShardedStatsExact(t *testing.T) {
	p := NewShardedPool(-1, 8)
	const n = 1000
	for i := 0; i < n; i++ {
		p.Get(key(uint32(i%3), i), load(i)) // all misses
	}
	for i := 0; i < n; i++ {
		p.Get(key(uint32(i%3), i), load(i)) // all hits
	}
	st := p.Stats()
	if st.Accesses != 2*n || st.Misses != n || st.Hits != n {
		t.Fatalf("aggregate stats %+v, want %d accesses / %d misses / %d hits", st, 2*n, n, n)
	}
	if p.Len() != n {
		t.Fatalf("len %d, want %d", p.Len(), n)
	}
	p.ResetStats()
	if st := p.Stats(); st != (Stats{}) {
		t.Fatalf("after reset: %+v", st)
	}
}

func TestShardedInvalidateOwnerAndClear(t *testing.T) {
	p := NewShardedPool(-1, 8)
	for i := 0; i < 200; i++ {
		p.Get(key(1, i), load(i))
		p.Get(key(2, i), load(i))
	}
	p.InvalidateOwner(1)
	if p.Len() != 200 {
		t.Fatalf("after InvalidateOwner len %d, want 200", p.Len())
	}
	hit := true
	p.Get(key(2, 7), func() (any, error) { hit = false; return 7, nil })
	if !hit {
		t.Fatal("InvalidateOwner(1) dropped owner 2 pages")
	}
	p.Clear()
	if p.Len() != 0 {
		t.Fatalf("after Clear len %d", p.Len())
	}
}

func TestShardedEvictionIsPerShard(t *testing.T) {
	p := NewShardedPool(16, 4)
	for i := 0; i < 400; i++ {
		p.Get(key(1, i), load(i))
	}
	if p.Len() > 16 {
		t.Fatalf("len %d exceeds capacity 16", p.Len())
	}
	st := p.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions")
	}
}

func TestShardedConcurrentAccess(t *testing.T) {
	p := NewShardedPool(64, 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(uint32(g%3), (g*13+i)%128)
				v, err := p.Get(k, func() (any, error) {
					return fmt.Sprintf("%d-%d", k.Owner, k.Page), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v.(string) != fmt.Sprintf("%d-%d", k.Owner, k.Page) {
					t.Errorf("wrong value for %+v: %v", k, v)
					return
				}
				if i%97 == 0 {
					p.Invalidate(k)
				}
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Accesses != 16*500 {
		t.Fatalf("accesses %d, want %d", st.Accesses, 16*500)
	}
}

func TestShardDistribution(t *testing.T) {
	// The shard hash must not funnel sequential page ids (the common access
	// pattern) into few shards.
	p := NewShardedPool(-1, 8)
	counts := make(map[*shard]int)
	for i := 0; i < 8000; i++ {
		counts[p.shardFor(key(1, i))]++
	}
	if len(counts) != 8 {
		t.Fatalf("sequential keys landed in %d/8 shards", len(counts))
	}
	for s, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("shard %p holds %d/8000 keys — badly skewed", s, c)
		}
	}
}
