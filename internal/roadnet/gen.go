package roadnet

import (
	"math/rand"

	"repro/internal/geom"
)

// GridNetwork generates a rows×cols Manhattan-style road grid with the
// given block spacing: nodes at street intersections, edges between
// neighbors with weights equal to geometric length perturbed by up to
// ±20% (congestion/turns), and a fraction of blocks removed so the network
// is not a perfect lattice (dropping never disconnects the grid — only
// edges with a redundant detour are eligible).
func GridNetwork(rows, cols int, spacing float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := rows * cols
	pos := make([]geom.Point, n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pos[r*cols+c] = geom.Point{
				X: float64(c)*spacing + rng.NormFloat64()*spacing*0.05,
				Y: float64(r)*spacing + rng.NormFloat64()*spacing*0.05,
			}
		}
	}
	g, err := NewGraph(n, pos)
	if err != nil {
		panic(err) // n and pos are constructed consistently
	}
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	perturb := func(w float64) float64 { return w * (0.8 + rng.Float64()*0.4) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Horizontal street segment.
			if c+1 < cols {
				// Interior horizontal edges may be dropped (10%) without
				// disconnecting: a detour via the adjacent row exists.
				droppable := r > 0 && r < rows-1
				if !droppable || rng.Float64() >= 0.1 {
					w := perturb(pos[id(r, c)].Dist(pos[id(r, c+1)]))
					if err := g.AddEdge(id(r, c), id(r, c+1), w); err != nil {
						panic(err)
					}
				}
			}
			// Vertical street segment (always present: keeps columns
			// connected, and with full boundary rows the grid stays one
			// component).
			if r+1 < rows {
				w := perturb(pos[id(r, c)].Dist(pos[id(r+1, c)]))
				if err := g.AddEdge(id(r, c), id(r+1, c), w); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// RandomPointsOnNodes places n dataset points on distinct random nodes
// (ids 0..n-1). It panics if n exceeds the node count.
func RandomPointsOnNodes(g *Graph, n int, seed int64) []PointRef {
	if n > g.NumNodes() {
		panic("roadnet: more points than nodes")
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(g.NumNodes())
	out := make([]PointRef, n)
	for i := 0; i < n; i++ {
		out[i] = PointRef{ID: int64(i), Node: NodeID(perm[i])}
	}
	return out
}
