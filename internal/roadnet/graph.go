// Package roadnet implements the road-network generalization of the
// ring-constrained join, the third future-work direction of the paper
// (Section 6): "the shortest path distance along a road network that
// restricts the locations of points".
//
// Points live on the nodes of an undirected weighted graph. For a pair
// <p, q>, the Euclidean enclosing circle generalizes to the *network ball*:
// the midpoint m of a shortest p–q path (a location, possibly mid-edge,
// equidistant from both endpoints — the network 1-center of {p, q}), and
// radius r = d(p, q)/2. The pair is a network-RCJ result when no other point
// of either dataset lies within network distance r of m (closed ball, same
// tolerance convention as the Euclidean join).
//
// The join algorithm mirrors the paper's filter/verification structure:
//
//   - Filter: a Dijkstra expansion from each q collects candidate points of
//     P in network-distance order, pruning with the network analogue of
//     Lemma 1 — any point p' whose shortest path from q passes through an
//     already-discovered candidate p satisfies d(q,p') = d(q,p) + d(p,p'),
//     which places p inside the closed ball of <p', q>, so p' cannot
//     qualify. Coverage propagates down the Dijkstra tree and covered
//     branches are not expanded.
//   - Verification: each surviving candidate's exact shortest path, ball
//     center and radius are computed, and a bounded Dijkstra from the
//     center looks for any other point inside the ball.
package roadnet

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/geom"
)

// NodeID identifies a graph node.
type NodeID int32

// Edge is one directed half of an undirected road segment.
type Edge struct {
	To NodeID
	W  float64
}

// Graph is an undirected weighted graph with node coordinates (coordinates
// are used for generation and visualization; all join semantics use only
// the network distance).
type Graph struct {
	adj [][]Edge
	pos []geom.Point
}

// NewGraph returns a graph with n isolated nodes at the given positions
// (pos may be nil; len(pos) must otherwise equal n).
func NewGraph(n int, pos []geom.Point) (*Graph, error) {
	if pos != nil && len(pos) != n {
		return nil, fmt.Errorf("roadnet: %d positions for %d nodes", len(pos), n)
	}
	if pos == nil {
		pos = make([]geom.Point, n)
	}
	return &Graph{adj: make([][]Edge, n), pos: pos}, nil
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// Pos returns the embedding coordinate of a node.
func (g *Graph) Pos(v NodeID) geom.Point { return g.pos[v] }

// AddEdge adds an undirected edge of weight w between a and b.
func (g *Graph) AddEdge(a, b NodeID, w float64) error {
	if int(a) >= len(g.adj) || int(b) >= len(g.adj) || a < 0 || b < 0 {
		return fmt.Errorf("roadnet: edge %d–%d out of range", a, b)
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("roadnet: invalid edge weight %g", w)
	}
	g.adj[a] = append(g.adj[a], Edge{To: b, W: w})
	g.adj[b] = append(g.adj[b], Edge{To: a, W: w})
	return nil
}

// Degree returns the number of incident edges of v.
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// pqItem is a Dijkstra heap element.
type pqItem struct {
	dist   float64
	node   NodeID
	parent NodeID
}

type pq []pqItem

func (h pq) Len() int           { return len(h) }
func (h pq) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h pq) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x any)        { *h = append(*h, x.(pqItem)) }
func (h *pq) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ShortestPath returns the network distance from src to dst and the node
// sequence of one shortest path (src first). maxDist bounds the expansion
// (use +Inf for unbounded); if dst is unreachable within the bound, ok is
// false.
func (g *Graph) ShortestPath(src, dst NodeID, maxDist float64) (dist float64, path []NodeID, ok bool) {
	n := len(g.adj)
	d := make([]float64, n)
	par := make([]NodeID, n)
	settled := make([]bool, n)
	for i := range d {
		d[i] = math.Inf(1)
		par[i] = -1
	}
	h := pq{{dist: 0, node: src, parent: -1}}
	heap.Init(&h)
	for h.Len() > 0 {
		it := heap.Pop(&h).(pqItem)
		if settled[it.node] {
			continue
		}
		settled[it.node] = true
		d[it.node] = it.dist
		par[it.node] = it.parent
		if it.node == dst {
			// Reconstruct.
			var rev []NodeID
			for v := dst; v != -1; v = par[v] {
				rev = append(rev, v)
			}
			path = make([]NodeID, len(rev))
			for i, v := range rev {
				path[len(rev)-1-i] = v
			}
			return it.dist, path, true
		}
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.W
			if nd <= maxDist && !settled[e.To] {
				heap.Push(&h, pqItem{dist: nd, node: e.To, parent: it.node})
			}
		}
	}
	return 0, nil, false
}

// DistancesFrom returns the distance from src to every node (Inf where
// unreachable), bounded by maxDist.
func (g *Graph) DistancesFrom(src NodeID, maxDist float64) []float64 {
	n := len(g.adj)
	d := make([]float64, n)
	settled := make([]bool, n)
	for i := range d {
		d[i] = math.Inf(1)
	}
	h := pq{{dist: 0, node: src}}
	heap.Init(&h)
	for h.Len() > 0 {
		it := heap.Pop(&h).(pqItem)
		if settled[it.node] {
			continue
		}
		settled[it.node] = true
		d[it.node] = it.dist
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.W
			if nd <= maxDist && !settled[e.To] {
				heap.Push(&h, pqItem{dist: nd, node: e.To})
			}
		}
	}
	return d
}

// BallCenter is a location on the network: on the edge from U toward V, at
// distance OffU from U. A node location has V == U and OffU == 0.
type BallCenter struct {
	U, V NodeID
	OffU float64
}

// midpointOnPath returns the point at distance half along a shortest path
// with the given node sequence and edge-accurate total distance.
func (g *Graph) midpointOnPath(path []NodeID, total float64) BallCenter {
	if len(path) == 1 {
		return BallCenter{U: path[0], V: path[0]}
	}
	half := total / 2
	acc := 0.0
	for i := 0; i+1 < len(path); i++ {
		w := g.edgeWeight(path[i], path[i+1])
		if acc+w >= half || i+2 == len(path) {
			off := half - acc
			if off < 0 {
				off = 0
			}
			if off > w {
				off = w
			}
			return BallCenter{U: path[i], V: path[i+1], OffU: off}
		}
		acc += w
	}
	return BallCenter{U: path[len(path)-1], V: path[len(path)-1]}
}

// edgeWeight returns the minimum weight among parallel a–b edges.
func (g *Graph) edgeWeight(a, b NodeID) float64 {
	best := math.Inf(1)
	for _, e := range g.adj[a] {
		if e.To == b && e.W < best {
			best = e.W
		}
	}
	return best
}

// DistancesFromCenter returns node distances from a BallCenter, bounded by
// maxDist.
func (g *Graph) DistancesFromCenter(c BallCenter, maxDist float64) []float64 {
	n := len(g.adj)
	d := make([]float64, n)
	settled := make([]bool, n)
	for i := range d {
		d[i] = math.Inf(1)
	}
	h := pq{}
	if c.U == c.V {
		h = append(h, pqItem{dist: 0, node: c.U})
	} else {
		w := g.edgeWeight(c.U, c.V)
		h = append(h, pqItem{dist: c.OffU, node: c.U})
		h = append(h, pqItem{dist: w - c.OffU, node: c.V})
	}
	heap.Init(&h)
	for h.Len() > 0 {
		it := heap.Pop(&h).(pqItem)
		if settled[it.node] || it.dist > maxDist {
			continue
		}
		settled[it.node] = true
		d[it.node] = it.dist
		for _, e := range g.adj[it.node] {
			nd := it.dist + e.W
			if nd <= maxDist && !settled[e.To] {
				heap.Push(&h, pqItem{dist: nd, node: e.To})
			}
		}
	}
	return d
}

// Embedding returns the coordinate of a BallCenter via linear interpolation
// along its edge (for visualization only).
func (g *Graph) Embedding(c BallCenter) geom.Point {
	if c.U == c.V {
		return g.pos[c.U]
	}
	w := g.edgeWeight(c.U, c.V)
	t := 0.0
	if w > 0 {
		t = c.OffU / w
	}
	a, b := g.pos[c.U], g.pos[c.V]
	return geom.Point{X: a.X + (b.X-a.X)*t, Y: a.Y + (b.Y-a.Y)*t}
}
