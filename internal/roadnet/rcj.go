package roadnet

import (
	"container/heap"
	"context"
	"math"

	"repro/internal/geom"
)

// coverTol mirrors geom.CoverTol for the closed network ball.
const coverTol = geom.CoverTol

// PointRef is one dataset point: a caller id and the node it sits on.
// Several points (from either dataset) may share a node.
type PointRef struct {
	ID   int64
	Node NodeID
}

// Pair is one network-RCJ result: the matched points, their network
// distance, and the ball describing the fair middleman stretch of road —
// Center is equidistant (Radius = Dist/2) from both endpoints along the
// network.
type Pair struct {
	P, Q   PointRef
	Dist   float64
	Center BallCenter
	Radius float64
}

// Stats reports the work a network join did.
type Stats struct {
	Candidates     int64 // pairs entering verification
	Results        int64
	SettledNodes   int64 // Dijkstra settlements in the filter step
	VerifyDijkstra int64 // bounded Dijkstra runs in verification
}

// Join computes the network ring-constrained join of P and Q over g: all
// pairs whose network ball covers no other point of P ∪ Q.
func Join(g *Graph, P, Q []PointRef) ([]Pair, Stats, error) {
	return JoinContext(context.Background(), g, P, Q, nil)
}

// JoinContext is Join under a context. When onPair is non-nil the join
// streams each confirmed pair to it and returns a nil slice (nothing is
// accumulated — the streaming mode exists to avoid holding the result set);
// otherwise the full slice is returned. The outer loop checks ctx once per
// query point and aborts with ctx.Err() when cancelled.
func JoinContext(ctx context.Context, g *Graph, P, Q []PointRef, onPair func(Pair)) ([]Pair, Stats, error) {
	return JoinBounded(ctx, g, P, Q, nil, onPair)
}

// JoinBounded is JoinContext with a dynamic network-distance bound: when
// bound is non-nil, each filter expansion stops once the frontier passes
// bound() — pairs farther apart than the bound cannot qualify, and a point
// whose only within-bound path runs through a covered node is prunable by
// the same certificate that cuts covered branches. The bound is re-read as
// the expansion proceeds, so a caller maintaining a top-k heap can tighten
// it mid-join (branch-and-bound). The result is exactly JoinContext's
// result post-filtered to pairs with Dist <= bound.
func JoinBounded(ctx context.Context, g *Graph, P, Q []PointRef, bound func() float64, onPair func(Pair)) ([]Pair, Stats, error) {
	j := &netJoiner{
		g:     g,
		pAt:   groupByNode(P),
		qAt:   groupByNode(Q),
		bound: bound,
	}
	var out []Pair
	for _, q := range Q {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return nil, j.stats, ctx.Err()
			default:
			}
		}
		pairs, err := j.joinOne(q)
		if err != nil {
			return nil, j.stats, err
		}
		j.stats.Results += int64(len(pairs))
		if onPair != nil {
			for _, p := range pairs {
				onPair(p)
			}
			continue
		}
		out = append(out, pairs...)
	}
	return out, j.stats, nil
}

// BruteForce is the oracle: every pair of the cross product is ball-tested
// with exact shortest paths. Exponentially simpler than Join and
// independent of the pruning logic.
func BruteForce(g *Graph, P, Q []PointRef) []Pair {
	pAt, qAt := groupByNode(P), groupByNode(Q)
	j := &netJoiner{g: g, pAt: pAt, qAt: qAt}
	var out []Pair
	for _, q := range Q {
		for _, p := range P {
			pair, ok := j.verifyPair(p, q)
			if ok {
				out = append(out, pair)
			}
		}
	}
	return out
}

func groupByNode(pts []PointRef) map[NodeID][]PointRef {
	m := make(map[NodeID][]PointRef)
	for _, p := range pts {
		m[p.Node] = append(m[p.Node], p)
	}
	return m
}

type netJoiner struct {
	g     *Graph
	pAt   map[NodeID][]PointRef
	qAt   map[NodeID][]PointRef
	bound func() float64 // current max pair distance; nil = unbounded
	stats Stats
}

// joinOne runs the filter and verification for one outer point q.
func (j *netJoiner) joinOne(q PointRef) ([]Pair, error) {
	cands := j.filter(q)
	j.stats.Candidates += int64(len(cands))
	var out []Pair
	for _, p := range cands {
		pair, ok := j.verifyPair(p, q)
		if ok {
			out = append(out, pair)
		}
	}
	return out, nil
}

// filter expands Dijkstra from q's node and returns the P points not pruned
// by the network Lemma 1 analogue: a point whose shortest path from q
// passes through a node hosting an earlier candidate is skipped, and covered
// branches are not expanded (the expansion's distances then over-estimate
// for covered detours, which can only admit extra candidates — verification
// is exact).
func (j *netJoiner) filter(q PointRef) []PointRef {
	n := j.g.NumNodes()
	settled := make([]bool, n)
	covered := make([]bool, n)
	candAt := make([]bool, n)
	var cands []PointRef

	h := pq{{dist: 0, node: q.Node, parent: -1}}
	heap.Init(&h)
	for h.Len() > 0 {
		it := heap.Pop(&h).(pqItem)
		if settled[it.node] {
			continue
		}
		if j.bound != nil && it.dist > j.bound() {
			// The frontier pops in ascending distance: every remaining node
			// is at least this far, beyond any admissible pair.
			break
		}
		settled[it.node] = true
		j.stats.SettledNodes++
		// Covered nodes are never expanded, so a settled node's parent is
		// always uncovered; coverage reduces to "parent hosts a candidate".
		cov := it.parent >= 0 && candAt[it.parent]
		covered[it.node] = cov
		if cov {
			// Everything beyond this node is pruned: either its true
			// shortest path runs through the candidate (triangle equality —
			// the network Lemma 1), or a covered node on its true path can
			// be rerouted through the candidate with equal length, giving
			// the same certificate.
			continue
		}
		if ps := j.pAt[it.node]; len(ps) > 0 {
			cands = append(cands, ps...)
			candAt[it.node] = true
		}
		for _, e := range j.g.adj[it.node] {
			if !settled[e.To] {
				heap.Push(&h, pqItem{dist: it.dist + e.W, node: e.To, parent: it.node})
			}
		}
	}
	return cands
}

// verifyPair computes the exact shortest path, ball center and radius for
// <p, q> and checks the closed ball for foreign points.
func (j *netJoiner) verifyPair(p, q PointRef) (Pair, bool) {
	dist, path, ok := j.g.ShortestPath(q.Node, p.Node, math.Inf(1))
	if !ok {
		return Pair{}, false // disconnected: no ball exists
	}
	center := j.g.midpointOnPath(path, dist)
	radius := dist / 2
	j.stats.VerifyDijkstra++
	nodeDist := j.g.DistancesFromCenter(center, radius*(1+coverTol)+1e-12)
	limit := radius * (1 + coverTol)
	for node, d := range nodeDist {
		if math.IsInf(d, 1) || d > limit {
			continue
		}
		for _, other := range j.pAt[NodeID(node)] {
			if other.ID != p.ID {
				return Pair{}, false
			}
		}
		for _, other := range j.qAt[NodeID(node)] {
			if other.ID != q.ID {
				return Pair{}, false
			}
		}
	}
	return Pair{P: p, Q: q, Dist: dist, Center: center, Radius: radius}, true
}
