package roadnet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// lineGraph builds a path graph 0–1–…–(n−1) with unit edges.
func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i)}
	}
	g, err := NewGraph(n, pos)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := lineGraph(t, 10)
	d, path, ok := g.ShortestPath(2, 7, math.Inf(1))
	if !ok || d != 5 {
		t.Fatalf("d=%g ok=%v", d, ok)
	}
	if len(path) != 6 || path[0] != 2 || path[5] != 7 {
		t.Fatalf("path %v", path)
	}
	if _, _, ok := g.ShortestPath(0, 9, 3); ok {
		t.Fatal("bounded search should miss a distance-9 target")
	}
}

func TestDistancesFrom(t *testing.T) {
	g := lineGraph(t, 6)
	d := g.DistancesFrom(0, math.Inf(1))
	for i, want := range []float64{0, 1, 2, 3, 4, 5} {
		if d[i] != want {
			t.Fatalf("d[%d]=%g", i, d[i])
		}
	}
	bounded := g.DistancesFrom(0, 2)
	if !math.IsInf(bounded[4], 1) {
		t.Fatal("bound ignored")
	}
}

func TestMidpointOnPath(t *testing.T) {
	g := lineGraph(t, 10)
	_, path, _ := g.ShortestPath(1, 5, math.Inf(1)) // length 4
	c := g.midpointOnPath(path, 4)
	// Midpoint at distance 2 from node 1 = exactly node 3 (offset 0 on the
	// 3–4 edge or full on 2–3; either encoding is fine as long as distances
	// work out).
	d := g.DistancesFromCenter(c, 10)
	if math.Abs(d[1]-2) > 1e-9 || math.Abs(d[5]-2) > 1e-9 {
		t.Fatalf("midpoint not equidistant: d1=%g d5=%g", d[1], d[5])
	}
	// Odd total: midpoint mid-edge.
	_, path, _ = g.ShortestPath(0, 3, math.Inf(1)) // length 3
	c = g.midpointOnPath(path, 3)
	d = g.DistancesFromCenter(c, 10)
	if math.Abs(d[0]-1.5) > 1e-9 || math.Abs(d[3]-1.5) > 1e-9 {
		t.Fatalf("mid-edge midpoint wrong: d0=%g d3=%g", d[0], d[3])
	}
}

func TestLineJoinByHand(t *testing.T) {
	// P at nodes {0, 4}, Q at nodes {2, 6} on a unit line.
	// <p0(0), q0(2)>: ball center 1, r 1 → covers nodes 0,1,2 → no other
	// point → valid.
	// <p1(4), q0(2)>: center 3, r 1 → nodes 2..4 → valid.
	// <p1(4), q1(6)>: center 5, r 1 → nodes 4..6 → valid.
	// <p0(0), q1(6)>: center 3, r 3 → covers node 4 (p1) and node 2 (q0) →
	// invalid.
	g := lineGraph(t, 8)
	P := []PointRef{{ID: 0, Node: 0}, {ID: 1, Node: 4}}
	Q := []PointRef{{ID: 0, Node: 2}, {ID: 1, Node: 6}}
	got, stats, err := Join(g, P, Q)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"0|0": true, "1|0": true, "1|1": true}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs: %+v", len(got), got)
	}
	for _, pr := range got {
		k := fmt.Sprintf("%d|%d", pr.P.ID, pr.Q.ID)
		if !want[k] {
			t.Fatalf("unexpected pair %s", k)
		}
		if math.Abs(pr.Radius-pr.Dist/2) > 1e-12 {
			t.Fatalf("radius %g for dist %g", pr.Radius, pr.Dist)
		}
	}
	if stats.Results != int64(len(got)) {
		t.Fatalf("stats results %d", stats.Results)
	}
}

func checkNetJoin(t *testing.T, g *Graph, P, Q []PointRef) {
	t.Helper()
	got, _, err := Join(g, P, Q)
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(g, P, Q)
	ws := map[string]bool{}
	for _, p := range want {
		ws[fmt.Sprintf("%d|%d", p.P.ID, p.Q.ID)] = true
	}
	gs := map[string]bool{}
	for _, p := range got {
		k := fmt.Sprintf("%d|%d", p.P.ID, p.Q.ID)
		if gs[k] {
			t.Fatalf("duplicate pair %s", k)
		}
		gs[k] = true
	}
	if len(ws) != len(gs) {
		t.Fatalf("join %d pairs, oracle %d", len(gs), len(ws))
	}
	for k := range ws {
		if !gs[k] {
			t.Fatalf("missing pair %s", k)
		}
	}
}

func TestJoinMatchesOracleOnGrids(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := GridNetwork(12, 12, 100, seed)
		P := RandomPointsOnNodes(g, 25, seed*10+1)
		Q := RandomPointsOnNodes(g, 25, seed*10+2)
		checkNetJoin(t, g, P, Q)
	}
}

func TestJoinSharedNodes(t *testing.T) {
	// P and Q points stacked on the same nodes: co-location extremes.
	g := GridNetwork(8, 8, 100, 9)
	P := []PointRef{{ID: 0, Node: 10}, {ID: 1, Node: 10}, {ID: 2, Node: 30}}
	Q := []PointRef{{ID: 0, Node: 10}, {ID: 1, Node: 45}}
	checkNetJoin(t, g, P, Q)
}

func TestJoinDisconnected(t *testing.T) {
	// Two disjoint line components; cross-component pairs cannot form.
	g, err := NewGraph(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	P := []PointRef{{ID: 0, Node: 0}, {ID: 1, Node: 3}}
	Q := []PointRef{{ID: 0, Node: 2}, {ID: 1, Node: 5}}
	got, _, err := Join(g, P, Q)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range got {
		sameComp := (pr.P.Node <= 2) == (pr.Q.Node <= 2)
		if !sameComp {
			t.Fatalf("cross-component pair %+v", pr)
		}
	}
	checkNetJoin(t, g, P, Q)
}

func TestFilterPrunes(t *testing.T) {
	// With many P points the filter must return far fewer candidates than
	// |P| for each q.
	g := GridNetwork(15, 15, 100, 3)
	P := RandomPointsOnNodes(g, 100, 5)
	Q := RandomPointsOnNodes(g, 20, 6)
	_, stats, err := Join(g, P, Q)
	if err != nil {
		t.Fatal(err)
	}
	perQ := float64(stats.Candidates) / 20
	if perQ > 30 {
		t.Errorf("filter admits %.1f candidates per query from |P|=100 — pruning ineffective", perQ)
	}
}

func TestGridNetworkConnected(t *testing.T) {
	g := GridNetwork(10, 14, 100, 7)
	d := g.DistancesFrom(0, math.Inf(1))
	for i, dv := range d {
		if math.IsInf(dv, 1) {
			t.Fatalf("node %d unreachable — generator disconnected the grid", i)
		}
	}
	if g.NumNodes() != 140 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
}

func TestEmbeddingInterpolates(t *testing.T) {
	g := lineGraph(t, 3)
	c := BallCenter{U: 0, V: 1, OffU: 0.5}
	pt := g.Embedding(c)
	if math.Abs(pt.X-0.5) > 1e-12 {
		t.Fatalf("embedding %+v", pt)
	}
	node := g.Embedding(BallCenter{U: 2, V: 2})
	if node.X != 2 {
		t.Fatalf("node embedding %+v", node)
	}
}

func TestRandomPointsOnNodesDistinct(t *testing.T) {
	g := GridNetwork(5, 5, 100, 1)
	pts := RandomPointsOnNodes(g, 25, 2)
	seen := map[NodeID]bool{}
	for _, p := range pts {
		if seen[p.Node] {
			t.Fatalf("node %d reused", p.Node)
		}
		seen[p.Node] = true
	}
}

func TestJoinRandomLines(t *testing.T) {
	// 1D networks sharpen boundary cases (exact ties everywhere).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		g := lineGraph(t, 30)
		var P, Q []PointRef
		for i := 0; i < 8; i++ {
			P = append(P, PointRef{ID: int64(i), Node: NodeID(rng.Intn(30))})
			Q = append(Q, PointRef{ID: int64(i), Node: NodeID(rng.Intn(30))})
		}
		checkNetJoin(t, g, P, Q)
	}
}
