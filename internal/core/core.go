// Package core implements the ring-constrained join (RCJ), the primary
// contribution of Yiu, Karras and Mamoulis (EDBT 2008): given pointsets P
// and Q indexed by R*-trees, find every pair <p, q> whose smallest enclosing
// circle contains no other point of P ∪ Q.
//
// The package provides the paper's full algorithm family:
//
//   - Brute force (Section 1): nested loop with a circle range search per
//     pair — the O(|P|·|Q|) baseline of Table 4.
//   - INJ (Algorithms 2–5): index nested loop join. For each q ∈ Q in
//     depth-first leaf order, a filter step walks TP in incremental-
//     nearest-neighbor order, accumulating Ψ− half-plane pruners (Lemmas
//     1–3) until the whole tree is pruned; surviving candidates become
//     enclosing circles verified against both trees (Algorithm 3).
//   - BIJ (Algorithms 6–7): the bulk variant that filters all points of a
//     TQ leaf concurrently, ordering TP accesses by distance from the leaf
//     centroid, and verifies all circles of the leaf in one pass per tree.
//   - OBJ (Section 4.2): BIJ plus the symmetric pruning rule (Lemma 5),
//     seeding each point's pruner set with its leaf siblings from Q.
//
// Containment is the closed-disk predicate geom.Circle.Covers shared with
// the brute force, so all algorithms return identical result sets.
package core

import (
	"context"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// SpatialIndex is the access-method contract the join algorithms run over:
// a disk-paged hierarchy whose nodes carry either points (leaves) or
// MBR-tagged child pointers. The R*-tree is the paper's instantiation;
// Section 3 notes the methodology applies to any hierarchical spatial index
// (e.g. a point quadtree), which internal/quadtree demonstrates.
type SpatialIndex interface {
	// Root returns the root page, or storage.InvalidPageID when empty.
	Root() storage.PageID
	// ReadNode fetches one node, counting buffer accesses/faults.
	ReadNode(storage.PageID) (*rtree.Node, error)
	// VisitLeaves applies fn to every leaf in depth-first order.
	VisitLeaves(fn func(*rtree.Node) error) error
	// LeafPages lists all leaf pages in depth-first order.
	LeafPages() ([]storage.PageID, error)
	// ScanAll returns every indexed point.
	ScanAll() ([]rtree.PointEntry, error)
}

var _ SpatialIndex = (*rtree.Tree)(nil)

// Pair is one RCJ result: the two points and their smallest enclosing
// circle. The circle center is the derived "fair middleman" location; the
// radius is the common distance from the center to both points.
type Pair struct {
	P      rtree.PointEntry
	Q      rtree.PointEntry
	Circle geom.Circle
}

// Algorithm selects the RCJ evaluation strategy.
type Algorithm int

const (
	// AlgINJ is the index nested loop join (Algorithm 5): per-point filter
	// and verification, depth-first over TQ.
	AlgINJ Algorithm = iota
	// AlgBIJ is the bulk index nested loop join (Algorithm 6): per-leaf
	// bulk filter and verification.
	AlgBIJ
	// AlgOBJ is BIJ optimized with the symmetric pruning rule of Lemma 5.
	AlgOBJ
	// AlgBrute is the quadratic nested loop with a range search per pair.
	AlgBrute
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgINJ:
		return "INJ"
	case AlgBIJ:
		return "BIJ"
	case AlgOBJ:
		return "OBJ"
	case AlgBrute:
		return "BRUTE"
	default:
		return "unknown"
	}
}

// Options tunes a join run. The zero value runs INJ with every optimization
// the paper describes for it.
type Options struct {
	// Algorithm picks the evaluation strategy (default AlgINJ).
	Algorithm Algorithm
	// SelfJoin declares that TP and TQ are the same tree over one dataset
	// (the paper's postboxes scenario). Identity pairs are excluded and
	// each unordered pair is reported once, with the smaller ID first.
	SelfJoin bool
	// SkipVerification omits the verification step, reporting raw filter
	// candidates — only meaningful for the Figure 14 cost decomposition.
	SkipVerification bool
	// DisableFaceRule turns off the face-inside-circle verification
	// shortcut (Algorithm 3 case 4) for the ablation bench.
	DisableFaceRule bool
	// RandomLeafOrder processes TQ leaves in a shuffled order instead of
	// depth-first, quantifying the locality argument of Section 3.4.
	// Ignored by AlgBrute. Seed fixes the shuffle.
	RandomLeafOrder bool
	// Seed seeds the leaf shuffle when RandomLeafOrder is set.
	Seed int64
	// Parallelism, when > 1, distributes TQ leaves over that many worker
	// goroutines. The result set is identical to the sequential run but
	// the emission order is not deterministic. Ignored by AlgBrute.
	Parallelism int
	// LeafSampleEvery, when > 1, processes only every k-th leaf of TQ —
	// the sampling mode the cost estimator uses to extrapolate a full
	// run's work from a fraction of it. Results are then a sample, not
	// the exact join.
	LeafSampleEvery int
	// Collect controls whether result pairs are materialized. When false,
	// only statistics are gathered (the large experiment sweeps count
	// results without holding millions of pairs).
	Collect bool
	// OnPair, when non-nil, streams each result pair as it is confirmed.
	// Under TopK the final pairs are only known when the traversal ends, so
	// OnPair fires at the end, in ascending diameter order.
	OnPair func(Pair)
	// OnBatch, when non-nil, streams confirmed pairs grouped by verification
	// batch — the executor's leaf-level unit of work (one batch per TQ leaf
	// under BIJ/OBJ, per query point under INJ; TopK delivers its full
	// ranking as one final batch). Batches with no surviving pair are
	// skipped. The callee owns the slice. This is the hook multi-request
	// traversal sharing demuxes on: one traversal, per-leaf fan-out to many
	// consumers.
	OnBatch func([]Pair)

	// The query predicates below select a subset of the join result and are
	// pushed into the index traversal (see query.go): for every combination,
	// the output is set-identical to post-filtering the unconstrained join.
	// They apply to the L2 join only (not JoinL1).

	// MaxDiameter, when > 0, keeps only pairs whose enclosing-circle
	// diameter (= the distance between the two points) is at most this. The
	// filter traversal stops at the bound instead of exhausting the tree.
	MaxDiameter float64
	// MinDistance, when > 0, drops pairs whose points are closer than this.
	// Excluded points still act as Ψ− pruners and verification witnesses.
	MinDistance float64
	// Region, when non-nil, keeps only pairs whose circle center — the
	// midpoint of the two points — lies inside the (closed) window. TP
	// subtrees that cannot produce a center inside the window are pruned.
	Region *geom.Rect
	// TopK, when > 0, keeps only the k pairs with the smallest diameters
	// (ties broken by ascending P.ID then Q.ID), returned in ascending
	// order. The current k-th diameter dynamically tightens the traversal's
	// distance bound (branch-and-bound), shared atomically across parallel
	// workers.
	TopK int
	// Limit, when > 0, stops the join after this many pairs. Without TopK
	// the returned pairs are traversal-order-dependent (any Limit-sized
	// subset of the result); with TopK it truncates the ranking.
	Limit int
	// Weight, when non-nil with TopK > 0, flips the top-k ranking from
	// ascending diameter to descending combined endpoint weight — the
	// paper's school-bus scenario, where pairs are browsed by how many
	// children they serve. The k-th combined score becomes the dynamic
	// bound: once the heap fills, candidates strictly below it are killed
	// before verification. The output equals the head of
	// RankPairsByWeight over the unconstrained join; the weighted ranking
	// arrives in one final batch, in descending score order. Weight must be
	// pure and is called concurrently under Parallelism.
	Weight func(rtree.PointEntry) float64
	// PredicateOrder, when non-empty, is the order admitPair evaluates the
	// pair-level predicates in (a planner puts the most selective first).
	// Omitted predicates are appended in default order; the predicates are
	// a conjunction, so every order admits the identical set.
	PredicateOrder []Predicate
}

// Stats reports what a join run did. I/O and node-access counters live in
// the buffer pool shared by the trees; the experiment harness snapshots
// those around the call.
type Stats struct {
	// Candidates is the number of candidate pairs that survived the filter
	// step and entered verification (Table 4's "number of candidate
	// pairs"). For AlgBrute it is |P|·|Q|.
	Candidates int64
	// Results is the number of RCJ result pairs.
	Results int64
	// FilterHeapPops counts priority-queue pops in the filter step, a
	// CPU-work proxy independent of the buffer.
	FilterHeapPops int64
	// VerifiedNodes counts R-tree nodes visited during verification.
	VerifiedNodes int64
	// OuterLeaves counts TQ leaves processed, the unit the sampling cost
	// estimator extrapolates over.
	OuterLeaves int64
	// NodesPruned counts subtrees the query predicates discarded without
	// reading — TP subtrees cut by MaxDiameter, TopK's dynamic bound, or
	// Region, plus outer TQ subtrees whose midpoint rect with TP misses the
	// Region window — the observable work pushdown saved versus the
	// unconstrained join.
	NodesPruned int64
	// BoundKilledCandidates counts filtered candidates dropped at the start
	// of verification because the diameter bound had tightened past them
	// since they were filtered (TopK's dynamic bound) — verification work
	// the bound saved beyond filtering.
	BoundKilledCandidates int64
}

// Join computes the ring-constrained join of the pointsets indexed by tq
// (the outer input Q) and tp (the inner input P), returning the result pairs
// (nil unless opts.Collect) and run statistics.
func Join(tq, tp SpatialIndex, opts Options) ([]Pair, Stats, error) {
	return JoinContext(context.Background(), tq, tp, opts)
}

// JoinContext is Join under a context: the Options are compiled into an
// execution plan (see exec.go) and run until completion or cancellation.
// When ctx is cancelled the join aborts promptly — without finishing the
// current leaf — and returns ctx.Err(); partial statistics reflect the work
// actually done.
func JoinContext(ctx context.Context, tq, tp SpatialIndex, opts Options) ([]Pair, Stats, error) {
	j := &joiner{tq: tq, tp: tp, opts: opts}
	return j.execute(ctx)
}

// joiner carries one run's state. In a parallel run each worker owns a
// private joiner (stats, plan stages) and shares only the trees, the
// context, the synchronized emitter, and the predicate state (shared).
type joiner struct {
	tq, tp SpatialIndex
	opts   Options
	ctx    context.Context
	plan   plan
	shared *runShared // TopK/Limit state, shared across workers; nil without predicates
	stats  Stats
	out    []Pair
	batch  []Pair // survivors of the current verification batch (OnBatch only)

	// predOrder is the compiled pair-predicate evaluation order (see
	// compilePredOrder), resolved once per run and copied to every worker.
	predOrder [3]Predicate

	// Per-worker scratch reused across filter calls (a joiner is never used
	// concurrently): the traversal heap, the Ψ− pruner set, the candidate
	// slice returned by filter, and the bulk filter's per-query state (whose
	// pruner sets and candidate slices would otherwise be the dominant
	// steady-state allocation — one per leaf point per leaf). Reuse removes
	// the dominant steady-state allocations of the warm join path.
	fheap       filterHeap
	pruners     geom.PrunerSet
	candScratch []rtree.PointEntry
	bulkScratch []bulkQuery
}

// emit records a confirmed result pair. Under TopK the pair enters the
// shared bounded heap instead (emitted at flushTopK); under Limit the
// emission beyond the cap is suppressed and the run flagged to stop.
func (j *joiner) emit(p Pair) {
	if sh := j.shared; sh != nil {
		if sh.topk != nil {
			sh.topk.offer(p)
			return
		}
		if sh.limit > 0 {
			n := sh.emitted.Add(1)
			if n > sh.limit {
				return
			}
			if n == sh.limit {
				sh.stopped.Store(true)
			}
		}
	}
	j.stats.Results++
	if j.opts.Collect {
		j.out = append(j.out, p)
	}
	if j.opts.OnPair != nil {
		j.opts.OnPair(p)
	}
	if j.opts.OnBatch != nil {
		j.batch = append(j.batch, p)
	}
}

// flushBatch hands the survivors accumulated since the last flush to
// OnBatch, transferring slice ownership. No-op when empty or unconfigured.
func (j *joiner) flushBatch() {
	if j.opts.OnBatch == nil || len(j.batch) == 0 {
		return
	}
	b := j.batch
	j.batch = nil
	j.opts.OnBatch(b)
}

// keepSelfPair reports whether a pair should be emitted under self-join
// canonicalization: identity pairs are dropped and each unordered pair is
// kept only in (smaller ID, larger ID) orientation.
func (j *joiner) keepSelfPair(p, q rtree.PointEntry) bool {
	return p.ID < q.ID
}
