package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func newInsertableTree(t *testing.T, pts []rtree.PointEntry, pool *buffer.Pool, owner uint32) *rtree.Tree {
	t.Helper()
	pager := storage.NewMemPager(storage.DefaultPageSize)
	tr, err := rtree.New(pager, pool, rtree.Config{Owner: owner})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(pts, 0); err != nil {
		t.Fatal(err)
	}
	return tr
}

// monitorMatchesRecompute drives the monitor through a stream of insertions
// and cross-checks the maintained pair set against a from-scratch join after
// every step.
func monitorMatchesRecompute(t *testing.T, self bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	initial := 60
	psAll := randomPoints(rng, 200)
	qsAll := randomPoints(rng, 200)

	pool := buffer.NewPool(-1)
	var m *Monitor
	var err error
	ps := append([]rtree.PointEntry(nil), psAll[:initial]...)
	qs := append([]rtree.PointEntry(nil), qsAll[:initial]...)
	if self {
		tr := newInsertableTree(t, ps, pool, 1)
		m, err = NewMonitor(tr, tr)
	} else {
		tp := newInsertableTree(t, ps, pool, 1)
		tq := newInsertableTree(t, qs, pool, 2)
		m, err = NewMonitor(tq, tp)
	}
	if err != nil {
		t.Fatal(err)
	}

	check := func(step string) {
		t.Helper()
		var want []Pair
		if self {
			want = BruteForcePairs(ps, ps, true)
		} else {
			want = BruteForcePairs(ps, qs, false)
		}
		got := m.Pairs()
		if m.Len() != len(got) {
			t.Fatalf("%s: Len %d != snapshot %d", step, m.Len(), len(got))
		}
		ws := map[string]bool{}
		for _, p := range want {
			ws[fmt.Sprintf("%d|%d", p.P.ID, p.Q.ID)] = true
		}
		gs := map[string]bool{}
		for _, p := range got {
			k := fmt.Sprintf("%d|%d", p.P.ID, p.Q.ID)
			if gs[k] {
				t.Fatalf("%s: duplicate pair %s", step, k)
			}
			gs[k] = true
		}
		if len(ws) != len(gs) {
			t.Fatalf("%s: monitor has %d pairs, recompute %d", step, len(gs), len(ws))
		}
		for k := range ws {
			if !gs[k] {
				t.Fatalf("%s: monitor missing %s", step, k)
			}
		}
	}

	check("initial")
	for i := initial; i < initial+40; i++ {
		if self || i%2 == 0 {
			added, removed, err := m.AddP(psAll[i].P, psAll[i].ID)
			if err != nil {
				t.Fatal(err)
			}
			ps = append(ps, psAll[i])
			if self {
				// In a self-join P and Q are the same logical set.
			}
			_ = added
			_ = removed
		} else {
			if _, _, err := m.AddQ(qsAll[i].P, qsAll[i].ID); err != nil {
				t.Fatal(err)
			}
			qs = append(qs, qsAll[i])
		}
		if i%5 == 0 {
			check(fmt.Sprintf("after insert %d", i))
		}
	}
	check("final")
}

func TestMonitorBichromatic(t *testing.T) {
	monitorMatchesRecompute(t, false)
}

func TestMonitorSelfJoin(t *testing.T) {
	monitorMatchesRecompute(t, true)
}

func TestMonitorAddedRemovedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	ps := randomPoints(rng, 80)
	qs := randomPoints(rng, 80)
	pool := buffer.NewPool(-1)
	tp := newInsertableTree(t, ps, pool, 1)
	tq := newInsertableTree(t, qs, pool, 2)
	m, err := NewMonitor(tq, tp)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Len()
	newPt := geom.Point{X: 5000, Y: 5000}
	added, removed, err := m.AddP(newPt, 9999)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != before+len(added)-len(removed) {
		t.Fatalf("Len %d != %d + %d - %d", m.Len(), before, len(added), len(removed))
	}
	// Every added pair involves the new point.
	for _, p := range added {
		if p.P.ID != 9999 {
			t.Errorf("added pair %d|%d does not involve the new P point", p.P.ID, p.Q.ID)
		}
	}
	// Every removed pair's circle covers the new point.
	for _, p := range removed {
		if !p.Circle.Covers(newPt) {
			t.Errorf("removed pair %d|%d circle does not cover the new point", p.P.ID, p.Q.ID)
		}
	}
}

func TestMonitorDensePointStream(t *testing.T) {
	// All insertions into one tight cluster stress the stabbing index's
	// small-radius bands.
	rng := rand.New(rand.NewSource(63))
	mk := func(n int, base int64) []rtree.PointEntry {
		pts := make([]rtree.PointEntry, n)
		for i := range pts {
			pts[i] = rtree.PointEntry{
				P:  geom.Point{X: 100 + rng.NormFloat64(), Y: 100 + rng.NormFloat64()},
				ID: base + int64(i),
			}
		}
		return pts
	}
	ps := mk(40, 0)
	qs := mk(40, 0)
	pool := buffer.NewPool(-1)
	tp := newInsertableTree(t, ps, pool, 1)
	tq := newInsertableTree(t, qs, pool, 2)
	m, err := NewMonitor(tq, tp)
	if err != nil {
		t.Fatal(err)
	}
	extra := mk(30, 1000)
	for _, e := range extra {
		if _, _, err := m.AddP(e.P, e.ID); err != nil {
			t.Fatal(err)
		}
		ps = append(ps, e)
	}
	want := BruteForcePairs(ps, qs, false)
	if m.Len() != len(want) {
		t.Fatalf("monitor %d pairs, recompute %d", m.Len(), len(want))
	}
}
