package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// postFilter applies the query predicates of opts to an unconstrained result
// set, mirroring admitPair/pairBefore exactly — the oracle the pushdown is
// validated against.
func postFilter(pairs []Pair, opts Options) []Pair {
	var out []Pair
	for _, p := range pairs {
		d := p.P.P.Dist(p.Q.P)
		if opts.MaxDiameter > 0 && d > opts.MaxDiameter {
			continue
		}
		if opts.MinDistance > 0 && d < opts.MinDistance {
			continue
		}
		if opts.Region != nil && !opts.Region.ContainsPoint(p.P.P.Mid(p.Q.P)) {
			continue
		}
		out = append(out, p)
	}
	if opts.TopK > 0 {
		sort.Slice(out, func(i, j int) bool { return pairBefore(out[i], out[j]) })
		k := opts.TopK
		if opts.Limit > 0 && opts.Limit < k {
			k = opts.Limit
		}
		if len(out) > k {
			out = out[:k]
		}
	}
	return out
}

// predicateCases enumerates the predicate combinations the equivalence tests
// sweep. The bounds are sized for the 10000² test universe.
func predicateCases() []Options {
	region := &geom.Rect{MinX: 2000, MinY: 2000, MaxX: 7000, MaxY: 7000}
	return []Options{
		{MaxDiameter: 400},
		{MinDistance: 250},
		{Region: region},
		{TopK: 7},
		{TopK: 25},
		{MaxDiameter: 900, Region: region},
		{TopK: 5, Region: region},
		{TopK: 10, MaxDiameter: 600, MinDistance: 100},
		{MaxDiameter: 500, MinDistance: 200, Region: region},
	}
}

// TestQueryPredicateEquivalence checks that every predicate combination,
// under every algorithm, sequential and parallel, two-set and self-join,
// returns exactly the post-filtered unconstrained result.
func TestQueryPredicateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ps := randomPoints(rng, 400)
	qs := clusteredPoints(rng, 400, 6, 700)
	tp := buildTree(t, ps, nil, 0, true)
	tq := buildTree(t, qs, nil, 1, true)

	for _, self := range []bool{false, true} {
		outer, inner := tq, tp
		if self {
			outer, inner = tp, tp
		}
		full, _, err := Join(outer, inner, Options{Algorithm: AlgOBJ, SelfJoin: self, Collect: true})
		if err != nil {
			t.Fatalf("unconstrained join: %v", err)
		}
		for _, alg := range []Algorithm{AlgINJ, AlgBIJ, AlgOBJ, AlgBrute} {
			for _, par := range []int{1, 4} {
				if alg == AlgBrute && par > 1 {
					continue // brute ignores Parallelism
				}
				for ci, pred := range predicateCases() {
					opts := pred
					opts.Algorithm = alg
					opts.SelfJoin = self
					opts.Parallelism = par
					opts.Collect = true
					got, st, err := Join(outer, inner, opts)
					if err != nil {
						t.Fatalf("%v self=%v par=%d case=%d: %v", alg, self, par, ci, err)
					}
					want := postFilter(full, opts)
					label := fmt.Sprintf("%v self=%v par=%d case=%d", alg, self, par, ci)
					diffPairs(t, label, want, got)
					if st.Results != int64(len(got)) {
						t.Errorf("%s: Stats.Results = %d, want %d", label, st.Results, len(got))
					}
					if opts.TopK > 0 {
						// TopK output is the ranking order, deterministically.
						for i := 1; i < len(got); i++ {
							if pairBefore(got[i], got[i-1]) {
								t.Errorf("%s: top-k output not in ranking order at %d", label, i)
							}
						}
					}
				}
			}
		}
	}
}

// TestQueryLimit checks that Limit returns a subset of the unconstrained
// result of exactly min(Limit, total) pairs, and that a satisfied limit is a
// clean (error-free) early stop, sequential and parallel.
func TestQueryLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := randomPoints(rng, 300)
	qs := randomPoints(rng, 300)
	tp := buildTree(t, ps, nil, 0, true)
	tq := buildTree(t, qs, nil, 1, true)

	full, _, err := Join(tq, tp, Options{Algorithm: AlgOBJ, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	fullSet := pairSet(full)
	for _, alg := range []Algorithm{AlgINJ, AlgOBJ, AlgBrute} {
		for _, par := range []int{1, 3} {
			if alg == AlgBrute && par > 1 {
				continue
			}
			for _, limit := range []int{1, 5, len(full), len(full) + 10} {
				got, st, err := Join(tq, tp, Options{Algorithm: alg, Parallelism: par, Collect: true, Limit: limit})
				if err != nil {
					t.Fatalf("%v par=%d limit=%d: %v", alg, par, limit, err)
				}
				want := limit
				if len(full) < want {
					want = len(full)
				}
				if len(got) != want {
					t.Errorf("%v par=%d limit=%d: got %d pairs, want %d", alg, par, limit, len(got), want)
				}
				if st.Results != int64(len(got)) {
					t.Errorf("%v par=%d limit=%d: Stats.Results = %d, want %d", alg, par, limit, st.Results, len(got))
				}
				for _, p := range got {
					if _, ok := fullSet[pairKey(p)]; !ok {
						t.Errorf("%v par=%d limit=%d: pair %s not in unconstrained result", alg, par, limit, pairKey(p))
					}
				}
			}
		}
	}
}

// TestQueryPruningObservable checks that the pushdown actually prunes:
// constrained runs must report NodesPruned > 0 and do strictly less filter
// work than the unconstrained join on the same data.
func TestQueryPruningObservable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := randomPoints(rng, 2000)
	qs := randomPoints(rng, 2000)
	tp := buildTree(t, ps, nil, 0, true)
	tq := buildTree(t, qs, nil, 1, true)

	_, base, err := Join(tq, tp, Options{Algorithm: AlgINJ})
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string]Options{
		"max-diameter": {Algorithm: AlgINJ, MaxDiameter: 300},
		"top-k":        {Algorithm: AlgINJ, TopK: 10},
		"region":       {Algorithm: AlgINJ, Region: &geom.Rect{MinX: 4000, MinY: 4000, MaxX: 6000, MaxY: 6000}},
	} {
		_, st, err := Join(tq, tp, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.NodesPruned == 0 {
			t.Errorf("%s: NodesPruned = 0, predicate pruned nothing", name)
		}
		if st.FilterHeapPops >= base.FilterHeapPops {
			t.Errorf("%s: FilterHeapPops = %d, not below unconstrained %d", name, st.FilterHeapPops, base.FilterHeapPops)
		}
	}

	// Bulk algorithms prune too.
	_, st, err := Join(tq, tp, Options{Algorithm: AlgOBJ, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.NodesPruned == 0 {
		t.Error("OBJ top-k: NodesPruned = 0, predicate pruned nothing")
	}
}

// TestTopKDynamicBoundTightens checks the branch-and-bound actually engages:
// a top-k run must pop strictly fewer heap items than the same run with the
// heap disabled (approximated by top-k = everything).
func TestTopKDynamicBoundTightens(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ps := randomPoints(rng, 1500)
	qs := randomPoints(rng, 1500)
	tp := buildTree(t, ps, nil, 0, true)
	tq := buildTree(t, qs, nil, 1, true)

	_, full, err := Join(tq, tp, Options{Algorithm: AlgINJ})
	if err != nil {
		t.Fatal(err)
	}
	_, topk, err := Join(tq, tp, Options{Algorithm: AlgINJ, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if topk.FilterHeapPops >= full.FilterHeapPops {
		t.Errorf("top-5 popped %d heap items, unconstrained %d — dynamic bound never engaged",
			topk.FilterHeapPops, full.FilterHeapPops)
	}
	if topk.Candidates >= full.Candidates {
		t.Errorf("top-5 verified %d candidates, unconstrained %d — candidate pruning never engaged",
			topk.Candidates, full.Candidates)
	}
}

// TestBoundBatchKillsStaleCandidates unit-tests the verification-time bound
// re-check: candidates filtered under an older, looser bound are killed
// before any tree descent once the dynamic bound has tightened past them,
// ties with the bound survive (slack), and TopK batches are reordered into
// ranking order so survivors are offered tightest-first.
func TestBoundBatchKillsStaleCandidates(t *testing.T) {
	mk := func(r float64, id int64) *candidate {
		return &candidate{alive: true, pair: Pair{
			P:      rtree.PointEntry{ID: id},
			Q:      rtree.PointEntry{ID: id},
			Circle: geom.Circle{Radius: r},
		}}
	}

	t.Run("static bound is a no-op", func(t *testing.T) {
		j := &joiner{opts: Options{MaxDiameter: 100}}
		cands := []*candidate{mk(50, 1), mk(10, 2)} // diameters 100, 20: both admissible
		j.boundBatch(cands)
		if !cands[0].alive || !cands[1].alive {
			t.Fatal("candidate within the static bound killed")
		}
		if cands[0].pair.P.ID != 1 {
			t.Fatal("non-TopK batch reordered")
		}
		if j.stats.BoundKilledCandidates != 0 {
			t.Fatalf("BoundKilledCandidates = %d", j.stats.BoundKilledCandidates)
		}
	})

	t.Run("tightened dynamic bound kills and reorders", func(t *testing.T) {
		j := &joiner{opts: Options{TopK: 2}}
		j.shared = newRunShared(j.opts)
		// Fill the heap so the published bound tightens to diameter 40.
		j.shared.topk.offer(mk(10, 100).pair)
		j.shared.topk.offer(mk(20, 101).pair)
		// A batch filtered before the tightening: diameters 90, 40, 30.
		cands := []*candidate{mk(45, 1), mk(20, 2), mk(15, 3)}
		j.boundBatch(cands)
		if cands[len(cands)-1].alive {
			t.Fatal("stale candidate beyond the tightened bound survived")
		}
		if j.stats.BoundKilledCandidates != 1 {
			t.Fatalf("BoundKilledCandidates = %d, want 1", j.stats.BoundKilledCandidates)
		}
		// Tie with the bound (diameter 40 == 2×worst radius 20) survives.
		// Batch reordered ascending: 30, 40, then the dead 90.
		if !cands[0].alive || cands[0].pair.P.ID != 3 || !cands[1].alive || cands[1].pair.P.ID != 2 {
			t.Fatalf("batch not in ranking order: ids %d,%d,%d alive %v,%v,%v",
				cands[0].pair.P.ID, cands[1].pair.P.ID, cands[2].pair.P.ID,
				cands[0].alive, cands[1].alive, cands[2].alive)
		}
	})
}

// TestRegionOuterPruning extends the pushdown-equivalence property to the
// outer traversal: a selective Region window must skip outer TQ leaves whose
// midpoint rect with TP misses the window — strictly fewer OuterLeaves than
// the unpruned run and NodesPruned > 0 — while returning exactly the
// post-filtered unconstrained result, on both the sequential and parallel
// paths.
func TestRegionOuterPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ps := randomPoints(rng, 1200)
	qs := randomPoints(rng, 1200)
	tp := buildTree(t, ps, nil, 0, true)
	tq := buildTree(t, qs, nil, 1, true)

	full, base, err := Join(tq, tp, Options{Algorithm: AlgOBJ, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	// A window in one corner of the 10000² universe: centers are midpoints,
	// so query points beyond ~2× the window's extent cannot contribute.
	window := &geom.Rect{MinX: 0, MinY: 0, MaxX: 1500, MaxY: 1500}
	want := postFilter(full, Options{Region: window})

	for _, alg := range []Algorithm{AlgINJ, AlgBIJ, AlgOBJ} {
		for _, par := range []int{1, 3} {
			got, st, err := Join(tq, tp, Options{
				Algorithm: alg, Parallelism: par, Collect: true, Region: window,
			})
			if err != nil {
				t.Fatalf("%v par=%d: %v", alg, par, err)
			}
			diffPairs(t, fmt.Sprintf("%v par=%d region", alg, par), want, got)
			if st.OuterLeaves >= base.OuterLeaves {
				t.Errorf("%v par=%d: OuterLeaves = %d, not below unpruned %d — outer Region pushdown never engaged",
					alg, par, st.OuterLeaves, base.OuterLeaves)
			}
			if st.NodesPruned == 0 {
				t.Errorf("%v par=%d: NodesPruned = 0", alg, par)
			}
		}
	}
}
