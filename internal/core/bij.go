package core

import (
	"repro/internal/geom"
	"repro/internal/rtree"
)

// bulkFilterStage is Algorithm 6's per-leaf pipeline (and, with symmetric
// pruning, its OBJ optimization): each TQ leaf is processed as a unit — one
// bulk filter traversal of TP for all its points, then one candidate batch
// covering the whole leaf so verification runs once per tree over all the
// leaf's circles.
func bulkFilterStage(symmetric bool) filterStage {
	return func(j *joiner, leafPoints []rtree.PointEntry, sink func([]*candidate) error) error {
		queries, err := j.bulkFilter(leafPoints, symmetric)
		if err != nil {
			return err
		}
		total := 0
		for _, bq := range queries {
			total += len(bq.cands)
		}
		// One backing array for the whole leaf's candidates instead of a heap
		// allocation per pair.
		backing := make([]candidate, 0, total)
		cands := make([]*candidate, 0, total)
		for _, bq := range queries {
			for _, p := range bq.cands {
				backing = append(backing, candidate{
					pair:  Pair{P: p, Q: bq.q, Circle: geom.EnclosingCircle(p.P, bq.q.P)},
					alive: true,
				})
				cands = append(cands, &backing[len(backing)-1])
			}
		}
		return sink(cands)
	}
}
