package core

import (
	"repro/internal/geom"
	"repro/internal/rtree"
)

// runBulk is Algorithm 6 (bulk index nested loop join) and, with symmetric
// pruning, its OBJ optimization: each TQ leaf is processed as a unit — one
// bulk filter traversal of TP for all its points, then one verification pass
// per tree over all the leaf's candidate circles.
func (j *joiner) runBulk(symmetric bool) ([]Pair, Stats, error) {
	err := j.forEachQLeaf(func(n *rtree.Node) error {
		return j.joinLeaf(n.Points, symmetric)
	})
	return j.out, j.stats, err
}

// joinLeaf runs Lines 3–17 of Algorithm 6 for the points of one TQ leaf.
func (j *joiner) joinLeaf(leafPoints []rtree.PointEntry, symmetric bool) error {
	queries, err := j.bulkFilter(leafPoints, symmetric)
	if err != nil {
		return err
	}
	var cands []*candidate
	for _, bq := range queries {
		for _, p := range bq.cands {
			cands = append(cands, &candidate{
				pair:  Pair{P: p, Q: bq.q, Circle: geom.EnclosingCircle(p.P, bq.q.P)},
				alive: true,
			})
		}
	}
	j.stats.Candidates += int64(len(cands))
	if !j.opts.SkipVerification {
		if err := j.verify(j.tq, cands, sideQ); err != nil {
			return err
		}
		if !j.sameTree() {
			if err := j.verify(j.tp, cands, sideP); err != nil {
				return err
			}
		}
	}
	for _, c := range cands {
		if !c.alive {
			continue
		}
		if j.opts.SelfJoin && !j.keepSelfPair(c.pair.P, c.pair.Q) {
			continue
		}
		j.emit(c.pair)
	}
	return nil
}
