package core

import (
	"repro/internal/geom"
	"repro/internal/rtree"
)

// injFilterStage is Algorithm 5's per-point pipeline: Lines 3–12 of
// Algorithm 4 run for each point of the TQ leaf, yielding one candidate
// batch per query point so each point is verified (and emitted)
// independently, exactly as the sequential formulation interleaves its tree
// accesses.
func injFilterStage(j *joiner, leafPoints []rtree.PointEntry, sink func([]*candidate) error) error {
	for _, q := range leafPoints {
		if err := j.ctxErr(); err != nil {
			return err
		}
		cands, err := j.filterOne(q)
		if err != nil {
			return err
		}
		if err := sink(cands); err != nil {
			return err
		}
	}
	return nil
}

// filterOne runs the filter step for a single query point and wraps the
// surviving points into verification candidates with their enclosing
// circles.
func (j *joiner) filterOne(q rtree.PointEntry) ([]*candidate, error) {
	candsP, err := j.filter(q)
	if err != nil {
		return nil, err
	}
	// One backing array for the whole batch instead of a heap allocation per
	// candidate pair.
	backing := make([]candidate, len(candsP))
	cands := make([]*candidate, len(candsP))
	for i, p := range candsP {
		backing[i] = candidate{
			pair:  Pair{P: p, Q: q, Circle: geom.EnclosingCircle(p.P, q.P)},
			alive: true,
		}
		cands[i] = &backing[i]
	}
	return cands, nil
}

// joinOne computes the RCJ pairs of a single query point: filter, build
// circles, verify against both trees, report survivors. It is the per-point
// pipeline the incremental Monitor reuses for newly inserted points.
func (j *joiner) joinOne(q rtree.PointEntry) error {
	cands, err := j.filterOne(q)
	if err != nil {
		return err
	}
	return j.verifyAndEmit(cands)
}

// sameTree reports whether both join inputs are the identical tree, in which
// case one verification pass covers both datasets.
func (j *joiner) sameTree() bool {
	return j.tp == j.tq
}
