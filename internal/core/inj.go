package core

import (
	"math/rand"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// runINJ is Algorithm 5 (depth-first index nested loop join): every leaf of
// TQ is visited in depth-first order (or shuffled, for the search-order
// ablation) and Lines 3–12 of Algorithm 4 run for each of its points.
func (j *joiner) runINJ() ([]Pair, Stats, error) {
	err := j.forEachQLeaf(func(n *rtree.Node) error {
		for _, q := range n.Points {
			if err := j.joinOne(q); err != nil {
				return err
			}
		}
		return nil
	})
	return j.out, j.stats, err
}

// joinOne computes the RCJ pairs of a single query point: filter, build
// circles, verify against both trees, report survivors.
func (j *joiner) joinOne(q rtree.PointEntry) error {
	candsP, err := j.filter(q)
	if err != nil {
		return err
	}
	cands := make([]*candidate, 0, len(candsP))
	for _, p := range candsP {
		cands = append(cands, &candidate{
			pair:  Pair{P: p, Q: q, Circle: geom.EnclosingCircle(p.P, q.P)},
			alive: true,
		})
	}
	j.stats.Candidates += int64(len(cands))
	if !j.opts.SkipVerification {
		if err := j.verify(j.tq, cands, sideQ); err != nil {
			return err
		}
		if !j.sameTree() {
			if err := j.verify(j.tp, cands, sideP); err != nil {
				return err
			}
		}
	}
	for _, c := range cands {
		if !c.alive {
			continue
		}
		if j.opts.SelfJoin && !j.keepSelfPair(c.pair.P, c.pair.Q) {
			continue
		}
		j.emit(c.pair)
	}
	return nil
}

// sameTree reports whether both join inputs are the identical tree, in which
// case one verification pass covers both datasets.
func (j *joiner) sameTree() bool {
	return j.tp == j.tq
}

// forEachQLeaf drives the outer loop over TQ leaves: depth-first by default
// (Section 3.4's locality argument), shuffled when the ablation asks for it,
// and optionally sampling every k-th leaf for the cost estimator.
func (j *joiner) forEachQLeaf(fn func(*rtree.Node) error) error {
	inner := fn
	fn = func(n *rtree.Node) error {
		j.stats.OuterLeaves++
		return inner(n)
	}
	every := j.opts.LeafSampleEvery
	if every < 1 {
		every = 1
	}
	if !j.opts.RandomLeafOrder && every == 1 {
		return j.tq.VisitLeaves(fn)
	}
	pages, err := j.tq.LeafPages()
	if err != nil {
		return err
	}
	if j.opts.RandomLeafOrder {
		rng := rand.New(rand.NewSource(j.opts.Seed))
		rng.Shuffle(len(pages), func(a, b int) { pages[a], pages[b] = pages[b], pages[a] })
	}
	for i, id := range pages {
		if i%every != 0 {
			continue
		}
		n, err := j.tq.ReadNode(id)
		if err != nil {
			return err
		}
		if err := fn(n); err != nil {
			return err
		}
	}
	return nil
}
