package core

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// This file implements the filter step: Algorithm 2 (per-point filter) and
// Algorithm 7 (bulk filter), which retrieve from TP the candidate points that
// may form RCJ pairs with the query point(s), pruning with the Ψ− half-plane
// regions of Lemmas 1 and 3 (and, for OBJ, Lemma 5).

// filterItem is a priority-queue element of the filter traversal: an
// unexpanded TP subtree or an indexed point, keyed by (squared) distance
// from the reference location.
type filterItem struct {
	dist2   float64
	isPoint bool
	page    storage.PageID
	rect    geom.Rect // subtree MBR when !isPoint
	point   rtree.PointEntry
}

// filterHeap is a min-heap of filterItem by distance, points before subtrees
// at equal keys. It is hand-rolled rather than built on container/heap: the
// interface indirection there boxes every pushed item into a heap allocation,
// and the filter pushes one item per leaf point touched — the dominant
// allocation of a warm join. The sift procedures mirror container/heap's
// exactly, so the pop order (tie handling included) is identical to the
// previous implementation and every equivalence gate stays byte-identical.
type filterHeap []filterItem

func (h filterHeap) less(i, j int) bool {
	if h[i].dist2 != h[j].dist2 {
		return h[i].dist2 < h[j].dist2
	}
	return h[i].isPoint && !h[j].isPoint
}

func (h *filterHeap) push(it filterItem) {
	*h = append(*h, it)
	s := *h
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *filterHeap) pop() filterItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s.less(j2, j1) {
			j = j2
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

// pushLeafPoints expands a leaf node onto the heap: one pass over the
// coordinate columns with the squared distance from (rx, ry) computed
// inline — no per-entry struct reads, no interface boxing.
func (h *filterHeap) pushLeafPoints(n *rtree.Node, rx, ry float64) {
	xs, ys := n.Xs, n.Ys
	for i, id := range n.IDs {
		dx, dy := rx-xs[i], ry-ys[i]
		h.push(filterItem{
			dist2:   dx*dx + dy*dy,
			isPoint: true,
			point:   rtree.PointEntry{P: geom.Point{X: xs[i], Y: ys[i]}, ID: id},
		})
	}
}

// pushChildren expands an internal node onto the heap keyed by MINDIST from
// (the point) ref.
func (h *filterHeap) pushChildren(n *rtree.Node, ref geom.Point) {
	for _, e := range n.Children {
		h.push(filterItem{dist2: e.MBR.MinDist2(ref), page: e.Child, rect: e.MBR})
	}
}

// filter is Algorithm 2: it discovers points of TP in ascending distance from
// q (incremental NN order, maximizing pruning power of the earliest
// discoveries) and returns those not pruned by any Ψ−(q, p) of an earlier
// candidate p. Every returned point is itself installed as a pruner.
//
// The returned slice is scratch owned by the joiner, valid until the next
// filter/bulkFilter call.
//
// For self-joins the query point q is present in TP; it is skipped (a point
// forms no pair with itself and its degenerate pruning region would
// annihilate the search).
func (j *joiner) filter(q rtree.PointEntry) ([]rtree.PointEntry, error) {
	if j.tp.Root() == storage.InvalidPageID {
		return nil, nil
	}
	j.pruners.Reset()
	prs := &j.pruners
	cands := j.candScratch[:0]
	h := j.fheap[:0]
	h.push(filterItem{dist2: 0, page: j.tp.Root(), rect: geom.EmptyRect()})
	defer func() { j.fheap = h[:0] }()
	for len(h) > 0 {
		item := h.pop()
		j.stats.FilterHeapPops++
		if bound := j.maxPairDiameter(); !math.IsInf(bound, 1) && math.Sqrt(item.dist2) > bound*boundSlack {
			// The heap pops in ascending distance from q, so everything
			// still queued is at least this far — beyond any admissible
			// pair's diameter. Terminate the traversal, crediting the
			// subtrees never read to the pushdown.
			if !item.isPoint {
				j.stats.NodesPruned++
			}
			for _, it := range h {
				if !it.isPoint {
					j.stats.NodesPruned++
				}
			}
			break
		}
		if item.isPoint {
			if j.opts.SelfJoin && item.point.ID == q.ID {
				continue
			}
			if prs.PrunesPoint(item.point.P) {
				continue
			}
			if j.admitPair(q, item.point) {
				cands = append(cands, item.point)
			}
			// A point excluded by MinDistance/Region still prunes: the join
			// predicate behind Ψ− is independent of the query predicates.
			prs.Add(q.P, item.point.P)
			continue
		}
		if !item.rect.IsEmpty() && j.regionPrunesRect(q.P, item.rect) {
			j.stats.NodesPruned++
			continue
		}
		if !item.rect.IsEmpty() && prs.PrunesRect(item.rect) {
			continue
		}
		if err := j.ctxErr(); err != nil {
			return nil, err
		}
		n, err := j.tp.ReadNode(item.page)
		if err != nil {
			return nil, err
		}
		if n.Leaf {
			h.pushLeafPoints(n, q.P.X, q.P.Y)
		} else {
			h.pushChildren(n, q.P)
		}
	}
	j.candScratch = cands
	return cands, nil
}

// bulkQuery is the per-point state of the bulk filter: the query point, its
// accumulated pruning regions, and its candidate set q.S.
type bulkQuery struct {
	q       rtree.PointEntry
	pruners geom.PrunerSet
	cands   []rtree.PointEntry
}

// bulkFilter is Algorithm 7: it filters all points of one TQ leaf
// concurrently. TP is traversed once in ascending distance from the leaf
// centroid; an entry is discarded only when every query point prunes it
// (line 7), and a surviving point is added to the candidate set of exactly
// those query points that cannot prune it (lines 14–16).
//
// With symmetric pruning (OBJ, Lemma 5), each query point's pruner set is
// pre-seeded with Ψ−(q, q') for every sibling q' in the leaf, so even an
// empty candidate set shrinks the search space.
func (j *joiner) bulkFilter(leafPoints []rtree.PointEntry, symmetric bool) ([]bulkQuery, error) {
	if len(leafPoints) == 0 || j.tp.Root() == storage.InvalidPageID {
		return nil, nil
	}
	// Reuse the per-query state across leaves: the pruner sets and candidate
	// slices keep their capacity, so a steady-state leaf allocates nothing
	// here. The previous call's queries were fully drained by the filter
	// stage before it returned (the stage copies candidates into its own
	// batch), so clobbering them is safe.
	queries := j.bulkScratch
	if cap(queries) < len(leafPoints) {
		queries = make([]bulkQuery, len(leafPoints))
	} else {
		queries = queries[:len(leafPoints)]
	}
	j.bulkScratch = queries
	var centroid geom.Point
	for i, q := range leafPoints {
		queries[i].q = q
		queries[i].pruners.Reset()
		queries[i].cands = queries[i].cands[:0]
		centroid.X += q.P.X
		centroid.Y += q.P.Y
	}
	centroid.X /= float64(len(leafPoints))
	centroid.Y /= float64(len(leafPoints))

	if symmetric {
		// Lemma 5: seed each query's pruner set with its leaf siblings.
		// Strict half-planes keep the rule sound when a sibling is itself a
		// candidate (self-joins) — it lies exactly on its own boundary line.
		for qi := range queries {
			bq := &queries[qi]
			for _, other := range leafPoints {
				if other.ID != bq.q.ID {
					bq.pruners.AddStrict(bq.q.P, other.P)
				}
			}
		}
	}

	constrained := j.opts.hasPredicates()
	h := j.fheap[:0]
	h.push(filterItem{dist2: 0, page: j.tp.Root(), rect: geom.EmptyRect()})
	defer func() { j.fheap = h[:0] }()
	for len(h) > 0 {
		item := h.pop()
		j.stats.FilterHeapPops++
		// The bulk traversal is ordered by centroid distance, not per-query
		// distance, so the bound cannot end the whole traversal; instead
		// each item is tested per query point against the current bound.
		bound := j.maxPairDiameter()
		bounded := !math.IsInf(bound, 1)
		if item.isPoint {
			px, py := item.point.P.X, item.point.P.Y
			for qi := range queries {
				bq := &queries[qi]
				if j.opts.SelfJoin && item.point.ID == bq.q.ID {
					continue
				}
				if bq.pruners.PrunesPoint(item.point.P) {
					continue
				}
				if constrained {
					d := bq.q.P.Dist(item.point.P)
					if bounded && d > bound {
						// Beyond the diameter bound the point is neither a
						// candidate nor a useful pruner: any point it could
						// prune is farther still, hence also beyond the bound.
						continue
					}
					if j.admitPairDist(d, bq.q, item.point) {
						bq.cands = append(bq.cands, item.point)
					}
				} else {
					bq.cands = append(bq.cands, item.point)
				}
				// MinDistance/Region exclusions still prune (see filter).
				bq.pruners.Add(bq.q.P, geom.Point{X: px, Y: py})
			}
			continue
		}
		if !item.rect.IsEmpty() {
			prunedForAll := true
			predicatesOnly := true
			for qi := range queries {
				bq := &queries[qi]
				if (bounded && math.Sqrt(item.rect.MinDist2(bq.q.P)) > bound*boundSlack) ||
					j.regionPrunesRect(bq.q.P, item.rect) {
					// Dead for this query point by predicate alone.
					continue
				}
				predicatesOnly = false
				if !bq.pruners.PrunesRect(item.rect) {
					prunedForAll = false
					break
				}
			}
			if prunedForAll {
				if predicatesOnly {
					j.stats.NodesPruned++
				}
				continue
			}
		}
		if err := j.ctxErr(); err != nil {
			return nil, err
		}
		n, err := j.tp.ReadNode(item.page)
		if err != nil {
			return nil, err
		}
		if n.Leaf {
			h.pushLeafPoints(n, centroid.X, centroid.Y)
		} else {
			h.pushChildren(n, centroid)
		}
	}
	return queries, nil
}
