package core

import (
	"math"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// FuzzJoinMatchesOracle drives the full index pipeline on fuzzer-shaped tiny
// pointsets and cross-checks the result against the brute-force oracle —
// the fuzzing analogue of the randomized equivalence tests, aimed at the
// degenerate coordinate patterns fuzzers are good at finding (duplicates,
// collinearity, extreme proximity).
func FuzzJoinMatchesOracle(f *testing.F) {
	f.Add(float64(1), float64(2), float64(3), float64(4), float64(5), float64(6), uint8(3), uint8(2))
	f.Add(float64(0), float64(0), float64(0), float64(0), float64(0), float64(0), uint8(4), uint8(4))
	f.Add(float64(7), float64(7), float64(7.0000001), float64(7), float64(100), float64(100), uint8(5), uint8(1))

	f.Fuzz(func(t *testing.T, a, bb, c, d, e, g float64, nP, nQ uint8) {
		gen := func(n int, s1, s2, s3 float64) []rtree.PointEntry {
			pts := make([]rtree.PointEntry, n)
			for i := range pts {
				// Deterministic but seed-dependent coordinates in-domain.
				x := squash(s1 + float64(i)*s2)
				y := squash(s3 + float64(i)*s1)
				pts[i] = rtree.PointEntry{P: geom.Point{X: x, Y: y}, ID: int64(i)}
			}
			return pts
		}
		ps := gen(int(nP)%12+1, a, bb, c)
		qs := gen(int(nQ)%12+1, d, e, g)

		pool := buffer.NewPool(-1)
		build := func(pts []rtree.PointEntry, owner uint32) *rtree.Tree {
			pager := storage.NewMemPager(storage.DefaultPageSize)
			tr, err := rtree.New(pager, pool, rtree.Config{Owner: owner})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.BulkLoad(pts, 0); err != nil {
				t.Fatal(err)
			}
			return tr
		}
		tp := build(ps, 1)
		tq := build(qs, 2)

		want := BruteForcePairs(ps, qs, false)
		for _, alg := range []Algorithm{AlgINJ, AlgOBJ} {
			got, _, err := Join(tq, tp, Options{Algorithm: alg, Collect: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v: %d pairs, oracle %d (P=%v Q=%v)", alg, len(got), len(want), ps, qs)
			}
			wantSet := map[[2]int64]bool{}
			for _, w := range want {
				wantSet[[2]int64{w.P.ID, w.Q.ID}] = true
			}
			for _, gp := range got {
				if !wantSet[[2]int64{gp.P.ID, gp.Q.ID}] {
					t.Fatalf("%v: extra pair <%d,%d>", alg, gp.P.ID, gp.Q.ID)
				}
			}
		}
	})
}

func squash(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 10000)
}
