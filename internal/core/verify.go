package core

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// This file implements the verification step (Algorithm 3): a set of
// candidate circles is checked concurrently against an R-tree, removing every
// circle that covers an indexed point other than its own defining pair.
// Node entries are matched to circles in the four cases of Section 3.2:
//
//	point inside circle      → circle removed
//	disjoint entry           → subtree skipped for that circle
//	intersecting entry       → subtree descended
//	entry face inside circle → circle removed without descending (the MBR
//	                           property guarantees a covered point below)
//
// The face rule here uses the *strict* interior: the guaranteed point on a
// strictly-inside face is strictly inside the circle and therefore cannot be
// either defining point (those lie on the boundary), so the removal never
// needs the exclusion check a descent would perform.

// candidate is one filtered pair undergoing verification. The excluded id is
// side-dependent: P and Q have independent ID namespaces, so verification
// against TQ must ignore the pair's Q point and verification against TP its
// P point (both, for self-joins, where the namespaces coincide).
type candidate struct {
	pair  Pair
	alive bool
}

// side tells the verifier which tree it is scanning, selecting the ids to
// exclude.
type side int

const (
	sideQ side = iota
	sideP
)

// excludedIDs returns the point ids the verifier must ignore for this
// candidate on the given side.
func (j *joiner) excludedIDs(c *candidate, s side) (int64, int64) {
	if j.opts.SelfJoin {
		return c.pair.P.ID, c.pair.Q.ID
	}
	if s == sideQ {
		return c.pair.Q.ID, c.pair.Q.ID
	}
	return c.pair.P.ID, c.pair.P.ID
}

// sweepThreshold is the work size (entries × circles) above which the
// verifier batches the entry/circle intersection tests with a plane sweep,
// as Section 3.2 suggests, instead of the nested loop.
const sweepThreshold = 256

// boundBatch applies the diameter bound at verification time, not just at
// filter time. Two effects:
//
//   - Candidates admitted when they were filtered but strictly beyond the
//     CURRENT bound are killed before either tree is traversed. With a static
//     MaxDiameter this is a no-op (the filter already enforced the same
//     bound), but a TopK run's dynamic bound tightens continuously — under
//     parallelism even between the filter and verify stages of one batch —
//     and every stale candidate dropped here saves a full two-tree descent.
//   - For TopK runs the batch is reordered into the ranking order
//     (ascending diameter), so verification survivors are offered to the
//     heap tightest-first and the published bound contracts as early as
//     possible for everyone still filtering. TopK emission is deferred to
//     flushTopK, so the reorder is invisible in the output; runs with
//     observable streaming order (Limit, plain MaxDiameter) are not
//     reordered.
//
// The kill uses the boundSlack-widened bound, like every traversal-level
// check: under-pruning a boundary tie is free, over-pruning would break the
// post-filter set identity.
func (j *joiner) boundBatch(cands []*candidate) {
	if t := j.weightedTopK(); t != nil {
		// Weight-ranked run: the dynamic bound is a score floor, checked
		// exactly (same w(P)+w(Q) arithmetic as the heap — no slack needed),
		// and the batch is reordered best-score-first so survivors raise the
		// published floor as early as possible. Diameter still applies when
		// a static MaxDiameter is set.
		if bound := j.opts.MaxDiameter; bound > 0 {
			limit := bound * boundSlack
			for _, c := range cands {
				if c.alive && 2*c.pair.Circle.Radius > limit {
					c.alive = false
					j.stats.BoundKilledCandidates++
				}
			}
		}
		if floor := t.scoreBound(); !math.IsInf(floor, -1) {
			for _, c := range cands {
				if c.alive && t.pairScore(c.pair) < floor {
					c.alive = false
					j.stats.BoundKilledCandidates++
				}
			}
		}
		before := weightBefore(t.weight)
		sort.Slice(cands, func(a, b int) bool { return before(cands[a].pair, cands[b].pair) })
		return
	}
	bound := j.maxPairDiameter()
	if math.IsInf(bound, 1) {
		return
	}
	limit := bound * boundSlack
	for _, c := range cands {
		if c.alive && 2*c.pair.Circle.Radius > limit {
			c.alive = false
			j.stats.BoundKilledCandidates++
		}
	}
	if j.shared != nil && j.shared.topk != nil {
		sort.Slice(cands, func(a, b int) bool { return pairBefore(cands[a].pair, cands[b].pair) })
	}
}

// verify runs Algorithm 3 for all alive candidates against tree t, marking
// killed candidates dead. Candidates whose circles were already removed are
// skipped for free.
func (j *joiner) verify(t SpatialIndex, cands []*candidate, s side) error {
	if t.Root() == storage.InvalidPageID {
		return nil
	}
	live := cands[:0:0]
	for _, c := range cands {
		if c.alive {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return j.verifyNode(t, t.Root(), live, s)
}

// verifyNode processes one node: leaf entries kill covering circles;
// non-leaf entries kill circles containing one of their faces, and the
// subtree is descended with the subset of circles intersecting its MBR.
func (j *joiner) verifyNode(t SpatialIndex, page storage.PageID, cands []*candidate, s side) error {
	if err := j.ctxErr(); err != nil {
		return err
	}
	n, err := t.ReadNode(page)
	if err != nil {
		return err
	}
	j.stats.VerifiedNodes++
	if n.Leaf {
		// Tight kernel over the leaf's coordinate columns. The containment
		// test is geom.Circle.Covers with the center/radius loads hoisted out
		// of the loop (bit-identical: Dist2 computes dx*dx+dy*dy the same
		// way). The distance test runs first — most points fail it, so the id
		// exclusions are rarely evaluated.
		xs, ys, ids := n.Xs, n.Ys, n.IDs
		for _, c := range cands {
			if !c.alive {
				continue
			}
			ex1, ex2 := j.excludedIDs(c, s)
			cx, cy := c.pair.Circle.Center.X, c.pair.Circle.Center.Y
			r2 := c.pair.Circle.Radius * c.pair.Circle.Radius * (1 + geom.CoverTol)
			for i, id := range ids {
				dx, dy := cx-xs[i], cy-ys[i]
				if dx*dx+dy*dy <= r2 && id != ex1 && id != ex2 {
					c.alive = false
					break
				}
			}
		}
		return nil
	}

	// Match child entries to the circles intersecting them, via plane sweep
	// when the cross product is large.
	matches := j.matchEntries(n, cands)
	for i, e := range n.Children {
		sub := matches[i]
		if len(sub) == 0 {
			continue
		}
		if !j.opts.DisableFaceRule {
			for _, c := range sub {
				if c.alive && containsFaceStrict(c.pair.Circle, e.MBR) {
					c.alive = false
				}
			}
		}
		// Keep only the still-alive circles for the descent.
		descend := sub[:0]
		for _, c := range sub {
			if c.alive {
				descend = append(descend, c)
			}
		}
		if len(descend) == 0 {
			continue
		}
		if err := j.verifyNode(t, e.Child, descend, s); err != nil {
			return err
		}
	}
	return nil
}

// matchEntries returns, per child entry of n, the alive candidates whose
// circles intersect the entry MBR.
func (j *joiner) matchEntries(n *rtree.Node, cands []*candidate) [][]*candidate {
	matches := make([][]*candidate, len(n.Children))
	if len(n.Children)*len(cands) >= sweepThreshold {
		rects := make([]geom.Rect, len(n.Children))
		for i, e := range n.Children {
			rects[i] = e.MBR
		}
		circles := make([]geom.Circle, 0, len(cands))
		liveIdx := make([]int, 0, len(cands))
		for i, c := range cands {
			if c.alive {
				circles = append(circles, c.pair.Circle)
				liveIdx = append(liveIdx, i)
			}
		}
		for _, hit := range geom.RectCircleSweep(rects, circles) {
			matches[hit.RectIdx] = append(matches[hit.RectIdx], cands[liveIdx[hit.CircleIdx]])
		}
		return matches
	}
	for i, e := range n.Children {
		for _, c := range cands {
			if c.alive && c.pair.Circle.IntersectsRect(e.MBR) {
				matches[i] = append(matches[i], c)
			}
		}
	}
	return matches
}

// containsFaceStrict reports whether some face of r lies strictly inside c.
// See the package comment above for why the strict form is required.
func containsFaceStrict(c geom.Circle, r geom.Rect) bool {
	corners := r.Corners()
	in := [4]bool{}
	for i, pt := range corners {
		in[i] = c.StrictlyInside(pt)
	}
	for i := 0; i < 4; i++ {
		if in[i] && in[(i+1)%4] {
			return true
		}
	}
	return false
}
