package core

import (
	"context"
	"errors"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// This file is the join executor. Options are compiled into a plan — the
// algorithm's filter stage plus the outer-loop strategy (leaf order,
// sampling, parallelism) — and the plan is driven over the TQ leaves either
// sequentially or by a worker pool (parallel.go). Every strategy streams
// through the same per-leaf pipeline:
//
//	filter (per point or bulk) → verify (both trees) → emit
//
// so INJ, BIJ and OBJ differ only in their filter stage, and the
// sequential/parallel paths differ only in who calls processLeaf. The whole
// pipeline is cancellable: the context is checked once per leaf, per query
// point, and per node read, so a cancelled join stops promptly without
// finishing the current traversal.

// filterStage generates the candidate batches of one TQ leaf, invoking sink
// once per batch. Batch granularity is the algorithm's verification unit:
// INJ yields one batch per query point (Algorithm 5), BIJ/OBJ one batch per
// leaf (Algorithm 6). sink runs the verify and emit stages synchronously, so
// a stage sees the buffer-access interleaving of the paper's sequential
// formulation.
type filterStage func(j *joiner, leafPoints []rtree.PointEntry, sink func([]*candidate) error) error

// plan is one compiled execution strategy.
type plan struct {
	filter      filterStage
	parallelism int
}

// compile translates Options into an executable plan.
func compile(opts Options) plan {
	p := plan{parallelism: opts.Parallelism}
	switch opts.Algorithm {
	case AlgBIJ:
		p.filter = bulkFilterStage(false)
	case AlgOBJ:
		p.filter = bulkFilterStage(true)
	default:
		p.filter = injFilterStage
	}
	return p
}

// execute compiles and runs the join under ctx.
func (j *joiner) execute(ctx context.Context) ([]Pair, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	j.ctx = ctx
	j.plan = compile(j.opts)
	j.predOrder = compilePredOrder(j.opts)
	if j.opts.hasPredicates() {
		j.shared = newRunShared(j.opts)
	}
	var err error
	switch {
	case j.opts.Algorithm == AlgBrute:
		err = j.runBrute()
	case j.plan.parallelism > 1:
		err = j.runParallel()
	default:
		err = j.forEachQLeaf(func(n *rtree.Node) error {
			return j.processLeaf(n.Points())
		})
	}
	if errors.Is(err, errLimitReached) {
		// Limit satisfied: the early stop is a clean completion.
		err = nil
	}
	if err == nil && j.shared != nil && j.shared.topk != nil {
		j.flushTopK()
	}
	if err == nil {
		// AlgBrute emits without verification batches; flush its accumulated
		// survivors (and any TopK ranking) as one final batch.
		j.flushBatch()
	}
	return j.out, j.stats, err
}

// processLeaf runs the pipeline for one TQ leaf. It is the unit of work both
// the sequential loop and the parallel workers schedule.
func (j *joiner) processLeaf(points []rtree.PointEntry) error {
	if err := j.ctxErr(); err != nil {
		return err
	}
	j.stats.OuterLeaves++
	return j.plan.filter(j, points, j.verifyAndEmit)
}

// verifyAndEmit is the tail of the pipeline: one candidate batch is verified
// against both trees and the survivors are emitted.
func (j *joiner) verifyAndEmit(cands []*candidate) error {
	j.stats.Candidates += int64(len(cands))
	j.boundBatch(cands)
	if !j.opts.SkipVerification {
		if err := j.verify(j.tq, cands, sideQ); err != nil {
			return err
		}
		if !j.sameTree() {
			if err := j.verify(j.tp, cands, sideP); err != nil {
				return err
			}
		}
	}
	for _, c := range cands {
		if !c.alive {
			continue
		}
		if j.opts.SelfJoin && !j.keepSelfPair(c.pair.P, c.pair.Q) {
			continue
		}
		j.emit(c.pair)
	}
	j.flushBatch()
	return nil
}

// leafPruner is the optional access-method capability the Region pushdown
// needs on the outer input: traversals that can skip whole subtrees by entry
// MBR without reading them. The R*-tree implements it; an index that does
// not simply runs the unpruned outer loop (still correct, just more work).
type leafPruner interface {
	VisitLeavesPruned(skip func(geom.Rect) bool, fn func(*rtree.Node) error) (int64, error)
	LeafPagesPruned(skip func(geom.Rect) bool) ([]storage.PageID, int64, error)
}

// outerSkip compiles the Region window into an outer-traversal subtree
// filter, or nil when the pushdown does not apply. A candidate circle's
// center is the midpoint of a TQ point and a TP point, so the centers a TQ
// subtree can produce all lie in the midpoint rect of its MBR with TP's root
// MBR; when that rect misses the window, no pair from the subtree can pass
// admitPair and the subtree is skipped unread. Verification is unaffected —
// it runs against the full trees, and Ψ− pruner state is scoped to the query
// points actually filtered — so the result set is identical (the property
// suite sweeps this). Sampling runs keep the unpruned schedule: the cost
// estimator extrapolates from every k-th leaf of the *full* leaf list.
func (j *joiner) outerSkip() func(geom.Rect) bool {
	if j.opts.Region == nil || j.opts.LeafSampleEvery > 1 {
		return nil
	}
	if _, ok := j.tq.(leafPruner); !ok {
		return nil
	}
	root := j.tp.Root()
	if root == storage.InvalidPageID {
		return nil
	}
	n, err := j.tp.ReadNode(root)
	if err != nil {
		// The traversal proper will surface the read error; just don't prune.
		return nil
	}
	tp := n.MBR()
	window := *j.opts.Region
	return func(rect geom.Rect) bool {
		mid := geom.Rect{
			MinX: (rect.MinX + tp.MinX) / 2,
			MinY: (rect.MinY + tp.MinY) / 2,
			MaxX: (rect.MaxX + tp.MaxX) / 2,
			MaxY: (rect.MaxY + tp.MaxY) / 2,
		}
		return !mid.Intersects(window)
	}
}

// forEachQLeaf drives the sequential outer loop over TQ leaves: depth-first
// by default (Section 3.4's locality argument), by explicit page list when
// the order is shuffled or sampled.
func (j *joiner) forEachQLeaf(fn func(*rtree.Node) error) error {
	if !j.opts.RandomLeafOrder && j.opts.LeafSampleEvery <= 1 {
		if skip := j.outerSkip(); skip != nil {
			skipped, err := j.tq.(leafPruner).VisitLeavesPruned(skip, fn)
			j.stats.NodesPruned += skipped
			return err
		}
		return j.tq.VisitLeaves(fn)
	}
	pages, err := j.outerLeafPages()
	if err != nil {
		return err
	}
	for _, id := range pages {
		n, err := j.tq.ReadNode(id)
		if err != nil {
			return err
		}
		if err := fn(n); err != nil {
			return err
		}
	}
	return nil
}

// outerLeafPages materializes the outer leaf schedule: all TQ leaf pages in
// depth-first order (Region-pruned when the pushdown applies), shuffled when
// the ablation asks for it, then sampled every k-th for the cost estimator.
func (j *joiner) outerLeafPages() ([]storage.PageID, error) {
	var (
		pages []storage.PageID
		err   error
	)
	if skip := j.outerSkip(); skip != nil {
		var skipped int64
		pages, skipped, err = j.tq.(leafPruner).LeafPagesPruned(skip)
		j.stats.NodesPruned += skipped
	} else {
		pages, err = j.tq.LeafPages()
	}
	if err != nil {
		return nil, err
	}
	if j.opts.RandomLeafOrder {
		rng := rand.New(rand.NewSource(j.opts.Seed))
		rng.Shuffle(len(pages), func(a, b int) { pages[a], pages[b] = pages[b], pages[a] })
	}
	if every := j.opts.LeafSampleEvery; every > 1 {
		sampled := pages[:0]
		for i, id := range pages {
			if i%every == 0 {
				sampled = append(sampled, id)
			}
		}
		pages = sampled
	}
	return pages, nil
}

// ctxDone returns the context's error if it has been cancelled, nil
// otherwise (including for a nil context).
func ctxDone(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// ctxErr reports whether this run has been cancelled or stopped early by a
// satisfied Limit.
func (j *joiner) ctxErr() error {
	if err := ctxDone(j.ctx); err != nil {
		return err
	}
	if j.shared != nil && j.shared.stopped.Load() {
		return errLimitReached
	}
	return nil
}
