package core

import (
	"context"
	"errors"
	"sync"

	"repro/internal/storage"
)

// This file is the parallel execution strategy of the executor: TQ leaves
// are distributed over a worker pool, each worker running the same per-leaf
// pipeline (processLeaf) as the sequential strategy with private state.
// Indexes are read-only during a join and the buffer pool is safe for
// concurrent use, so workers share both; only result emission is
// synchronized. The result SET is identical to the sequential run; result
// ORDER is not deterministic.
//
// Error handling: the first failure (or an external cancellation) cancels a
// run-scoped context. Workers stop at the next leaf, the feeder stops
// handing out pages, and the first error is the one returned — later errors
// are discarded, never overwriting the first.

// runParallel executes the INJ/BIJ/OBJ outer loop with opts.Parallelism
// workers.
func (j *joiner) runParallel() error {
	pages, err := j.outerLeafPages()
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(j.ctx)
	defer cancel()

	var (
		emitMu   sync.Mutex
		wg       sync.WaitGroup
		work     = make(chan storage.PageID)
		workers  = make([]*joiner, j.opts.Parallelism)
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	base := j.opts
	for w := range workers {
		// Each worker is an independent joiner whose OnPair/Collect are
		// redirected through the shared, locked emitter. The predicate state
		// (TopK heap and its dynamic bound, Limit countdown) is shared, so
		// one worker's tightened bound prunes every worker's traversal.
		worker := &joiner{tq: j.tq, tp: j.tp, opts: j.opts, ctx: ctx, plan: j.plan, shared: j.shared, predOrder: j.predOrder}
		worker.opts.Collect = false
		worker.opts.OnPair = func(p Pair) {
			emitMu.Lock()
			defer emitMu.Unlock()
			if base.Collect {
				j.out = append(j.out, p)
			}
			if base.OnPair != nil {
				base.OnPair(p)
			}
		}
		if base.OnBatch != nil {
			worker.opts.OnBatch = func(b []Pair) {
				emitMu.Lock()
				defer emitMu.Unlock()
				base.OnBatch(b)
			}
		}
		workers[w] = worker
		wg.Add(1)
		go func(worker *joiner) {
			defer wg.Done()
			for page := range work {
				n, err := j.tq.ReadNode(page)
				if err != nil {
					fail(err)
					return
				}
				if err := worker.processLeaf(n.Points()); err != nil {
					fail(err)
					return
				}
			}
		}(worker)
	}

feed:
	for _, page := range pages {
		select {
		case work <- page:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	// Merge worker statistics even on failure, so partial work is accounted.
	for _, w := range workers {
		j.stats.Candidates += w.stats.Candidates
		j.stats.Results += w.stats.Results
		j.stats.FilterHeapPops += w.stats.FilterHeapPops
		j.stats.VerifiedNodes += w.stats.VerifiedNodes
		j.stats.OuterLeaves += w.stats.OuterLeaves
		j.stats.NodesPruned += w.stats.NodesPruned
		j.stats.BoundKilledCandidates += w.stats.BoundKilledCandidates
	}
	if firstErr != nil {
		// A satisfied Limit stops the feeder and workers through the same
		// cancellation path as a failure; it is a clean completion.
		if errors.Is(firstErr, errLimitReached) {
			return nil
		}
		return firstErr
	}
	return ctxDone(j.ctx)
}
