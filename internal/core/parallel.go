package core

import (
	"math/rand"
	"sync"

	"repro/internal/rtree"
	"repro/internal/storage"
)

// This file adds multi-goroutine execution to the join: TQ leaves are
// distributed over a worker pool, each worker running the per-leaf pipeline
// (filter + verification) with private state. Indexes are read-only during
// a join and the buffer pool is safe for concurrent use, so workers share
// both; only result emission is synchronized. The result SET is identical
// to the sequential run; result ORDER is not deterministic.

// runParallel executes the INJ/BIJ/OBJ outer loop with opts.Parallelism
// workers.
func (j *joiner) runParallel() ([]Pair, Stats, error) {
	pages, err := j.tq.LeafPages()
	if err != nil {
		return nil, j.stats, err
	}
	if j.opts.RandomLeafOrder {
		rng := rand.New(rand.NewSource(j.opts.Seed))
		rng.Shuffle(len(pages), func(a, b int) { pages[a], pages[b] = pages[b], pages[a] })
	}
	if every := j.opts.LeafSampleEvery; every > 1 {
		var sampled []storage.PageID
		for i, id := range pages {
			if i%every == 0 {
				sampled = append(sampled, id)
			}
		}
		pages = sampled
	}

	var (
		emitMu  sync.Mutex
		wg      sync.WaitGroup
		work    = make(chan storage.PageID)
		workers = make([]*joiner, j.opts.Parallelism)
		errs    = make([]error, j.opts.Parallelism)
	)
	for w := range workers {
		// Each worker is an independent joiner whose OnPair/Collect are
		// redirected through the shared, locked emitter.
		worker := &joiner{tq: j.tq, tp: j.tp, opts: j.opts}
		worker.opts.Collect = false
		base := j.opts
		worker.opts.OnPair = func(p Pair) {
			emitMu.Lock()
			defer emitMu.Unlock()
			if base.Collect {
				j.out = append(j.out, p)
			}
			if base.OnPair != nil {
				base.OnPair(p)
			}
		}
		workers[w] = worker
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for page := range work {
				n, err := j.tq.ReadNode(page)
				if err != nil {
					errs[w] = err
					continue
				}
				if err := workers[w].processLeaf(n.Points); err != nil {
					errs[w] = err
				}
			}
		}(w)
	}
	for _, page := range pages {
		work <- page
	}
	close(work)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, j.stats, err
		}
	}
	for _, w := range workers {
		j.stats.Candidates += w.stats.Candidates
		j.stats.Results += w.stats.Results
		j.stats.FilterHeapPops += w.stats.FilterHeapPops
		j.stats.VerifiedNodes += w.stats.VerifiedNodes
		j.stats.OuterLeaves += w.stats.OuterLeaves
	}
	return j.out, j.stats, nil
}

// processLeaf runs one worker's per-leaf pipeline according to the selected
// algorithm.
func (j *joiner) processLeaf(points []rtree.PointEntry) error {
	j.stats.OuterLeaves++
	switch j.opts.Algorithm {
	case AlgBIJ:
		return j.joinLeaf(points, false)
	case AlgOBJ:
		return j.joinLeaf(points, true)
	default: // AlgINJ
		for _, q := range points {
			if err := j.joinOne(q); err != nil {
				return err
			}
		}
		return nil
	}
}
