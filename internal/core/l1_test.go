package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/rtree"
)

func l1PairKey(p L1Pair) string {
	return fmt.Sprintf("%d|%d", p.P.ID, p.Q.ID)
}

func checkL1(t *testing.T, ps, qs []rtree.PointEntry, self bool) {
	t.Helper()
	pool := buffer.NewPool(-1)
	var tq, tp *rtree.Tree
	if self {
		tp = buildTree(t, ps, pool, 1, true)
		tq = tp
	} else {
		tp = buildTree(t, ps, pool, 1, true)
		tq = buildTree(t, qs, pool, 2, true)
	}
	got, stats, err := JoinL1(tq, tp, Options{SelfJoin: self, Collect: true})
	if err != nil {
		t.Fatalf("L1 join: %v", err)
	}
	var want []L1Pair
	if self {
		want = BruteForceL1Pairs(ps, ps, true)
	} else {
		want = BruteForceL1Pairs(ps, qs, false)
	}
	ws := map[string]bool{}
	for _, p := range want {
		ws[l1PairKey(p)] = true
	}
	gs := map[string]bool{}
	for _, p := range got {
		if gs[l1PairKey(p)] {
			t.Errorf("duplicate L1 pair %s", l1PairKey(p))
		}
		gs[l1PairKey(p)] = true
	}
	for k := range ws {
		if !gs[k] {
			t.Errorf("L1 false negative: %s", k)
		}
	}
	for k := range gs {
		if !ws[k] {
			t.Errorf("L1 false positive: %s", k)
		}
	}
	if stats.Results != int64(len(got)) {
		t.Errorf("stats.Results=%d len=%d", stats.Results, len(got))
	}
}

func TestL1JoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{2, 10, 60, 150} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			checkL1(t, randomPoints(rng, n), randomPoints(rng, n+5), false)
		})
	}
}

func TestL1JoinClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	checkL1(t, clusteredPoints(rng, 100, 3, 300), clusteredPoints(rng, 80, 4, 500), false)
}

func TestL1SelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	checkL1(t, randomPoints(rng, 90), nil, true)
}

func TestL1QuadrantLemma(t *testing.T) {
	// Property: any pruned p' has its L1 ball covering p, so the prune is
	// always justified (the L1 analogue of the Lemma 1 test).
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 20000; i++ {
		q := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		pp := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		if p.Equal(q) {
			continue
		}
		pr := newL1Pruner(q, p)
		if pr.prunesPoint(pp) {
			b := geom.L1EnclosingCircle(pp, q)
			if !b.Covers(p) {
				t.Fatalf("L1 quadrant lemma violated: q=%+v p=%+v p'=%+v", q, p, pp)
			}
		}
	}
}

func TestL1DegenerateConfigs(t *testing.T) {
	mk := func(pts ...geom.Point) []rtree.PointEntry {
		out := make([]rtree.PointEntry, len(pts))
		for i, p := range pts {
			out[i] = rtree.PointEntry{P: p, ID: int64(i)}
		}
		return out
	}
	checkL1(t, mk(geom.Point{X: 0, Y: 0}, geom.Point{X: 2, Y: 0}, geom.Point{X: 4, Y: 0}),
		mk(geom.Point{X: 1, Y: 0}, geom.Point{X: 3, Y: 0}), false)
	checkL1(t, mk(geom.Point{X: 5, Y: 5}, geom.Point{X: 5, Y: 5}),
		mk(geom.Point{X: 6, Y: 6}), false)
	checkL1(t, mk(geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}, geom.Point{X: 2, Y: 2}, geom.Point{X: 0, Y: 2}), nil, true)
}
