package core

import (
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// runBrute is the quadratic baseline of Section 1: a nested loop over P × Q
// issuing a circle range search against both trees for every pair. Its
// candidate count is |P|·|Q| (Table 4's BRUTE row). It exists as the ground
// truth the index algorithms are validated against and is only practical on
// small inputs.
func (j *joiner) runBrute() error {
	ps, err := j.tp.ScanAll()
	if err != nil {
		return err
	}
	qs, err := j.tq.ScanAll()
	if err != nil {
		return err
	}
	j.stats.Candidates = int64(len(ps)) * int64(len(qs))
	for _, q := range qs {
		if err := j.ctxErr(); err != nil {
			return err
		}
		for _, p := range ps {
			if j.opts.SelfJoin {
				if p.ID == q.ID {
					continue
				}
				if !j.keepSelfPair(p, q) {
					continue
				}
			}
			if !j.admitPair(q, p) {
				// Query predicates select output pairs; skipping before the
				// range searches keeps the baseline honest about their cost.
				continue
			}
			c := geom.EnclosingCircle(p.P, q.P)
			if !j.opts.SkipVerification {
				ok, err := j.bruteValid(p, q, c)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			j.emit(Pair{P: p, Q: q, Circle: c})
		}
	}
	return nil
}

// bruteValid verifies one pair with circle range searches on both trees.
func (j *joiner) bruteValid(p, q rtree.PointEntry, c geom.Circle) (bool, error) {
	if j.opts.SelfJoin || j.sameTree() {
		hit, err := anyInCircle(j.tp, c, p.ID, q.ID)
		return !hit, err
	}
	// Distinct datasets: in TP only p is excluded; in TQ only q.
	hit, err := anyInCircle(j.tp, c, p.ID, p.ID)
	if err != nil || hit {
		return false, err
	}
	hit, err = anyInCircle(j.tq, c, q.ID, q.ID)
	return !hit, err
}

// VerifyPair checks the ring constraint for one specific pair: whether the
// smallest circle enclosing p ∈ P and q ∈ Q covers no other point of either
// index. It is the point lookup the paper's decision-support scenarios need
// when validating a proposed location rather than computing the full join.
func VerifyPair(tq, tp SpatialIndex, p, q rtree.PointEntry, selfJoin bool) (bool, error) {
	c := geom.EnclosingCircle(p.P, q.P)
	if selfJoin || tq == tp {
		hit, err := anyInCircle(tp, c, p.ID, q.ID)
		return !hit, err
	}
	hit, err := anyInCircle(tp, c, p.ID, p.ID)
	if err != nil || hit {
		return false, err
	}
	hit, err = anyInCircle(tq, c, q.ID, q.ID)
	return !hit, err
}

// anyInCircle reports whether the index holds a point other than the two
// excluded ids covered by the closed disk c, short-circuiting on the first
// hit.
func anyInCircle(t SpatialIndex, c geom.Circle, ex1, ex2 int64) (bool, error) {
	return anyInCircleRec(t, t.Root(), c, ex1, ex2)
}

func anyInCircleRec(t SpatialIndex, id storage.PageID, c geom.Circle, ex1, ex2 int64) (bool, error) {
	if id == storage.InvalidPageID {
		return false, nil
	}
	n, err := t.ReadNode(id)
	if err != nil {
		return false, err
	}
	if n.Leaf {
		// Hoisted form of c.Covers over the coordinate columns (see verify).
		cx, cy := c.Center.X, c.Center.Y
		r2 := c.Radius * c.Radius * (1 + geom.CoverTol)
		xs, ys := n.Xs, n.Ys
		for i, eid := range n.IDs {
			dx, dy := cx-xs[i], cy-ys[i]
			if dx*dx+dy*dy <= r2 && eid != ex1 && eid != ex2 {
				return true, nil
			}
		}
		return false, nil
	}
	for _, e := range n.Children {
		if c.IntersectsRect(e.MBR) {
			hit, err := anyInCircleRec(t, e.Child, c, ex1, ex2)
			if err != nil || hit {
				return hit, err
			}
		}
	}
	return false, nil
}

// BruteForcePairs computes the RCJ of two plain point slices with no index at
// all — O(n·m·(n+m)) — used by tests as an independent oracle that shares
// nothing with the tree code except the containment predicate.
func BruteForcePairs(ps, qs []rtree.PointEntry, selfJoin bool) []Pair {
	var out []Pair
	for _, q := range qs {
		for _, p := range ps {
			if selfJoin && p.ID >= q.ID {
				continue
			}
			c := geom.EnclosingCircle(p.P, q.P)
			valid := true
			for _, r := range ps {
				if r.ID != p.ID && (!selfJoin || r.ID != q.ID) && c.Covers(r.P) {
					valid = false
					break
				}
			}
			if valid {
				for _, r := range qs {
					if r.ID != q.ID && (!selfJoin || r.ID != p.ID) && c.Covers(r.P) {
						valid = false
						break
					}
				}
			}
			if valid {
				out = append(out, Pair{P: p, Q: q, Circle: c})
			}
		}
	}
	return out
}
