package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// flakyIndex wraps a SpatialIndex and fails every ReadNode after a given
// number of successful reads.
type flakyIndex struct {
	SpatialIndex
	reads     atomic.Int64
	failAfter int64
	err       error
}

func (f *flakyIndex) ReadNode(id storage.PageID) (*rtree.Node, error) {
	if f.reads.Add(1) > f.failAfter {
		return nil, f.err
	}
	return f.SpatialIndex.ReadNode(id)
}

func TestJoinContextPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ps := randomPoints(rng, 200)
	qs := randomPoints(rng, 200)
	pool := buffer.NewPool(-1)
	tp := buildTree(t, ps, pool, 1, true)
	tq := buildTree(t, qs, pool, 2, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range []Algorithm{AlgINJ, AlgBIJ, AlgOBJ, AlgBrute} {
		for _, par := range []int{1, 4} {
			if alg == AlgBrute && par > 1 {
				continue
			}
			t.Run(fmt.Sprintf("%v/par=%d", alg, par), func(t *testing.T) {
				_, stats, err := JoinContext(ctx, tq, tp, Options{Algorithm: alg, Parallelism: par, Collect: true})
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", err)
				}
				if stats.Results != 0 {
					t.Fatalf("cancelled join produced %d results", stats.Results)
				}
			})
		}
	}
}

func TestJoinContextCancelMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	ps := clusteredPoints(rng, 500, 4, 600)
	qs := clusteredPoints(rng, 500, 6, 800)
	pool := buffer.NewPool(-1)
	tp := buildTree(t, ps, pool, 1, true)
	tq := buildTree(t, qs, pool, 2, true)

	full, _, err := Join(tq, tp, Options{Algorithm: AlgOBJ, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 10 {
		t.Skipf("dataset yields only %d pairs", len(full))
	}

	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("par=%d", par), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var seen atomic.Int64
			_, stats, err := JoinContext(ctx, tq, tp, Options{
				Algorithm:   AlgOBJ,
				Parallelism: par,
				OnPair: func(Pair) {
					if seen.Add(1) == 3 {
						cancel()
					}
				},
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if stats.Results >= int64(len(full)) {
				t.Fatalf("cancelled join still produced all %d results", stats.Results)
			}
		})
	}
}

func TestParallelFirstErrorCancelsOutstandingWork(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	ps := randomPoints(rng, 600)
	qs := randomPoints(rng, 600)
	pool := buffer.NewPool(-1)
	tp := buildTree(t, ps, pool, 1, true)
	tq := buildTree(t, qs, pool, 2, true)

	boom := errors.New("injected read failure")
	flaky := &flakyIndex{SpatialIndex: tp, failAfter: 25, err: boom}
	start := time.Now()
	_, _, err := JoinContext(context.Background(), tq, flaky, Options{Algorithm: AlgOBJ, Parallelism: 4, Collect: true})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	// Workers must stop, not drain the whole leaf schedule: after the first
	// failure every subsequent read also fails, so a draining implementation
	// would still touch most leaves. The joins abort within a few reads.
	if reads := flaky.reads.Load(); reads > 25+200 {
		t.Errorf("after first failure the pool kept issuing reads (%d total)", reads)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("erroring join took %v", elapsed)
	}
}

func TestJoinContextNilIsBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	pts := randomPoints(rng, 120)
	pool := buffer.NewPool(-1)
	tr := buildTree(t, pts, pool, 1, true)
	got, _, err := JoinContext(nil, tr, tr, Options{Algorithm: AlgOBJ, SelfJoin: true, Collect: true}) //nolint:staticcheck
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Join(tr, tr, Options{Algorithm: AlgOBJ, SelfJoin: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	diffPairs(t, "nil-ctx", want, got)
}
