package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"math/rand"

	"repro/internal/buffer"
)

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ps := clusteredPoints(rng, 400, 4, 600)
	qs := clusteredPoints(rng, 350, 6, 800)
	pool := buffer.NewPool(-1)
	tp := buildTree(t, ps, pool, 1, true)
	tq := buildTree(t, qs, pool, 2, true)
	for _, alg := range []Algorithm{AlgINJ, AlgBIJ, AlgOBJ} {
		seq, seqStats, err := Join(tq, tp, Options{Algorithm: alg, Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%v/workers=%d", alg, par), func(t *testing.T) {
				got, stats, err := Join(tq, tp, Options{Algorithm: alg, Parallelism: par, Collect: true})
				if err != nil {
					t.Fatal(err)
				}
				diffPairs(t, "parallel", seq, got)
				if stats.Results != seqStats.Results || stats.Candidates != seqStats.Candidates {
					t.Errorf("stats diverge: parallel %+v vs sequential %+v", stats, seqStats)
				}
			})
		}
	}
}

func TestParallelSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	pts := randomPoints(rng, 300)
	pool := buffer.NewPool(-1)
	tr := buildTree(t, pts, pool, 1, true)
	seq, _, err := Join(tr, tr, Options{Algorithm: AlgOBJ, SelfJoin: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := Join(tr, tr, Options{Algorithm: AlgOBJ, SelfJoin: true, Parallelism: 4, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	diffPairs(t, "parallel-self", seq, par)
	for _, p := range par {
		if p.P.ID >= p.Q.ID {
			t.Errorf("non-canonical pair %d,%d", p.P.ID, p.Q.ID)
		}
	}
}

func TestParallelStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	ps := randomPoints(rng, 250)
	qs := randomPoints(rng, 250)
	pool := buffer.NewPool(64) // bounded pool exercises concurrent eviction
	tp := buildTree(t, ps, pool, 1, true)
	tq := buildTree(t, qs, pool, 2, true)
	var streamed atomic.Int64
	_, stats, err := Join(tq, tp, Options{
		Algorithm:   AlgOBJ,
		Parallelism: 4,
		OnPair:      func(Pair) { streamed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Load() != stats.Results {
		t.Errorf("streamed %d, stats %d", streamed.Load(), stats.Results)
	}
	seq, _, err := Join(tq, tp, Options{Algorithm: AlgOBJ, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(seq)) != stats.Results {
		t.Errorf("parallel found %d, sequential %d", stats.Results, len(seq))
	}
}

func TestParallelWithSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	ps := randomPoints(rng, 500)
	qs := randomPoints(rng, 500)
	pool := buffer.NewPool(-1)
	tp := buildTree(t, ps, pool, 1, true)
	tq := buildTree(t, qs, pool, 2, true)
	seqSample, _, err := Join(tq, tp, Options{Algorithm: AlgOBJ, LeafSampleEvery: 3, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	parSample, _, err := Join(tq, tp, Options{Algorithm: AlgOBJ, LeafSampleEvery: 3, Parallelism: 3, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	diffPairs(t, "sampled-parallel", seqSample, parSample)
}
