package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// ErrMonitorDelete is returned by Monitor.Delete: deletion maintenance is
// unsupported by design, not by omission. Removing a point can revive pairs
// between arbitrarily distant points (RCJ pairs obey no distance bound, the
// paper's Figure 1), so no local search bounds the affected set; callers
// must rebuild with NewMonitor over the surviving points instead.
var ErrMonitorDelete = errors.New("core: monitor does not support deletion; rebuild with NewMonitor")

// Monitor maintains a ring-constrained join result incrementally under
// point insertions — the facility-planning setting where new restaurants
// and residences appear over time and the set of fair middleman locations
// must stay current without recomputing the join.
//
// Insertion maintenance is exact and local:
//
//   - A new point can only *invalidate* existing pairs (their circle now
//     covers it) and *create* pairs involving itself (an empty circle
//     between two old points stays empty). Killed pairs are found with a
//     stabbing query over the current circles; new pairs with one filter +
//     verification pass for the new point.
//
// Deletion maintenance is not supported: removing a point can revive pairs
// between arbitrarily distant points (the paper's Figure 1 shows RCJ pairs
// obey no distance bound), so no local search bounds the affected set;
// rebuild with NewMonitor after bulk deletions.
//
// The stabbing index buckets circles into power-of-two radius bands, each
// band an in-memory R-tree over circle centers: a point x can only be
// covered by a band-b circle whose center lies within band b's maximum
// radius of x, so each band answers with one circle range search.
type Monitor struct {
	tp, tq   *rtree.Tree
	self     bool
	pairs    map[int64]Pair // by internal pair id
	byKey    map[monitorKey]int64
	bands    map[int]*band
	nextID   int64
	pageSize int
}

type monitorKey struct {
	pid, qid int64
}

// band is one radius bucket of the stabbing index.
type band struct {
	maxRadius float64
	tree      *rtree.Tree
}

const minBandRadius = 1e-6

// bandFor returns the band index whose (2^(b-1), 2^b]·minBandRadius range
// contains r.
func bandFor(r float64) int {
	if r <= minBandRadius {
		return 0
	}
	return 1 + int(math.Floor(math.Log2(r/minBandRadius)))
}

// bandMaxRadius returns the largest circle radius band b may hold.
func bandMaxRadius(b int) float64 {
	if b == 0 {
		return minBandRadius
	}
	return minBandRadius * math.Pow(2, float64(b))
}

// NewMonitor computes the initial join of the two trees and prepares the
// incremental state. The trees must be the Monitor's to mutate from now on
// (register new points only through AddP/AddQ). For a self-join pass the
// same tree twice.
func NewMonitor(tq, tp *rtree.Tree) (*Monitor, error) {
	m := &Monitor{
		tp:       tp,
		tq:       tq,
		self:     tp == tq,
		pairs:    make(map[int64]Pair),
		byKey:    make(map[monitorKey]int64),
		bands:    make(map[int]*band),
		pageSize: storage.DefaultPageSize,
	}
	pairs, _, err := Join(tq, tp, Options{Algorithm: AlgOBJ, SelfJoin: m.self, Collect: true})
	if err != nil {
		return nil, err
	}
	for _, p := range pairs {
		if err := m.addPair(p); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Len returns the current number of pairs.
func (m *Monitor) Len() int { return len(m.pairs) }

// Pairs returns a snapshot of the current result set (unspecified order).
func (m *Monitor) Pairs() []Pair {
	out := make([]Pair, 0, len(m.pairs))
	for _, p := range m.pairs {
		out = append(out, p)
	}
	return out
}

// AddP registers a new point in dataset P, returning the pairs the
// insertion created and the pairs it invalidated.
func (m *Monitor) AddP(p geom.Point, id int64) (added, removed []Pair, err error) {
	return m.add(p, id, true)
}

// AddQ registers a new point in dataset Q.
func (m *Monitor) AddQ(q geom.Point, id int64) (added, removed []Pair, err error) {
	if m.self {
		return m.add(q, id, true)
	}
	return m.add(q, id, false)
}

// Delete always fails with ErrMonitorDelete. It exists so the no-deletion
// constraint is a typed, testable contract rather than a missing method:
// callers that need deletions (the live-index subscription path) catch this
// error and re-seed a fresh monitor from the surviving point set.
func (m *Monitor) Delete(geom.Point, int64) error { return ErrMonitorDelete }

func (m *Monitor) add(pt geom.Point, id int64, intoP bool) (added, removed []Pair, err error) {
	// 1. Kill existing pairs whose circle covers the new point.
	killed, err := m.stab(pt)
	if err != nil {
		return nil, nil, err
	}
	for _, pid := range killed {
		pair := m.pairs[pid]
		if err := m.removePair(pid); err != nil {
			return nil, nil, err
		}
		removed = append(removed, pair)
	}

	// 2. Insert the point into its tree.
	target := m.tp
	if !intoP {
		target = m.tq
	}
	if err := target.Insert(pt, id); err != nil {
		return nil, nil, err
	}

	// 3. Compute the new point's own pairs: run the per-point pipeline with
	// the new point as the query and the *other* tree as the candidate
	// source. The joiner's P/Q roles are swapped accordingly; orientation
	// is restored before storing.
	queryTree, candTree := m.tq, m.tp
	if intoP && !m.self {
		queryTree, candTree = m.tp, m.tq
	}
	sub := &joiner{tq: queryTree, tp: candTree, opts: Options{SelfJoin: m.self, Collect: true}}
	if err := sub.joinOne(rtree.PointEntry{P: pt, ID: id}); err != nil {
		return nil, nil, err
	}
	for _, raw := range sub.out {
		pair := raw
		if intoP && !m.self {
			// The sub-joiner treated the new P point as its "Q" query and
			// drew candidates from Q as its "P" side; swap back.
			pair = Pair{P: raw.Q, Q: raw.P, Circle: raw.Circle}
		}
		if m.self && pair.P.ID > pair.Q.ID {
			pair.P, pair.Q = pair.Q, pair.P
		}
		if err := m.addPair(pair); err != nil {
			return nil, nil, err
		}
		added = append(added, pair)
	}
	return added, removed, nil
}

// stab returns the internal ids of all current pairs whose circle covers x.
func (m *Monitor) stab(x geom.Point) ([]int64, error) {
	var out []int64
	for b, bd := range m.bands {
		probe := geom.Circle{Center: x, Radius: bandMaxRadius(b)}
		cands, err := bd.tree.CircleSearch(probe)
		if err != nil {
			return nil, err
		}
		for _, c := range cands {
			pair, ok := m.pairs[c.ID]
			if !ok {
				return nil, fmt.Errorf("core: stabbing index holds unknown pair %d", c.ID)
			}
			if pair.Circle.Covers(x) {
				out = append(out, c.ID)
			}
		}
	}
	return out, nil
}

func (m *Monitor) addPair(p Pair) error {
	key := monitorKey{pid: p.P.ID, qid: p.Q.ID}
	if _, dup := m.byKey[key]; dup {
		return nil
	}
	id := m.nextID
	m.nextID++
	m.pairs[id] = p
	m.byKey[key] = id
	b := bandFor(p.Circle.Radius)
	bd, ok := m.bands[b]
	if !ok {
		pager := storage.NewMemPager(m.pageSize)
		tree, err := rtree.New(pager, buffer.NewPool(-1), rtree.Config{PageSize: m.pageSize})
		if err != nil {
			return err
		}
		bd = &band{maxRadius: bandMaxRadius(b), tree: tree}
		m.bands[b] = bd
	}
	return bd.tree.Insert(p.Circle.Center, id)
}

func (m *Monitor) removePair(id int64) error {
	p, ok := m.pairs[id]
	if !ok {
		return fmt.Errorf("core: removing unknown pair %d", id)
	}
	delete(m.pairs, id)
	delete(m.byKey, monitorKey{pid: p.P.ID, qid: p.Q.ID})
	bd := m.bands[bandFor(p.Circle.Radius)]
	if bd == nil {
		return fmt.Errorf("core: pair %d missing from stabbing index", id)
	}
	found, err := bd.tree.Delete(p.Circle.Center, id)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("core: pair %d center not in its band tree", id)
	}
	return nil
}
