package core

import (
	"math/rand"
	"sort"
	"testing"
)

// sortPairsByID orders pairs deterministically for set comparison.
func sortPairsByID(ps []Pair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].P.ID != ps[b].P.ID {
			return ps[a].P.ID < ps[b].P.ID
		}
		return ps[a].Q.ID < ps[b].Q.ID
	})
}

// TestOnBatchMatchesCollect pins the OnBatch contract: concatenating the
// batches reproduces the collected result exactly (same pairs, same order
// for a sequential run), every batch is non-empty, and the per-pair and
// per-batch streams agree.
func TestOnBatchMatchesCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := randomPoints(rng, 800)
	tr := buildTree(t, pts, nil, 0, true)

	for _, alg := range []Algorithm{AlgINJ, AlgBIJ, AlgOBJ} {
		want, _, err := Join(tr, tr, Options{Algorithm: alg, SelfJoin: true, Collect: true})
		if err != nil {
			t.Fatal(err)
		}
		var got []Pair
		batches := 0
		_, st, err := Join(tr, tr, Options{Algorithm: alg, SelfJoin: true, OnBatch: func(b []Pair) {
			if len(b) == 0 {
				t.Fatal("empty batch delivered")
			}
			batches++
			got = append(got, b...)
		}})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d batched pairs, want %d", alg, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: pair %d: %+v != %+v (sequential batch order must equal collect order)", alg, i, got[i], want[i])
			}
		}
		if batches == 0 || st.Results != int64(len(got)) {
			t.Fatalf("%v: batches=%d results=%d emitted=%d", alg, batches, st.Results, len(got))
		}
	}
}

// TestOnBatchPredicatesAndTopK pins OnBatch under pushdown: predicate runs
// deliver only matching pairs, and TopK delivers its full ranking as one
// final batch in ranking order.
func TestOnBatchPredicatesAndTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := randomPoints(rng, 600)
	tr := buildTree(t, pts, nil, 0, true)

	want, _, err := Join(tr, tr, Options{Algorithm: AlgOBJ, SelfJoin: true, Collect: true, MaxDiameter: 300})
	if err != nil {
		t.Fatal(err)
	}
	var got []Pair
	if _, _, err := Join(tr, tr, Options{Algorithm: AlgOBJ, SelfJoin: true, MaxDiameter: 300,
		OnBatch: func(b []Pair) { got = append(got, b...) }}); err != nil {
		t.Fatal(err)
	}
	sortPairsByID(want)
	sortPairsByID(got)
	if len(got) != len(want) {
		t.Fatalf("predicate run: %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("predicate run pair %d: %+v != %+v", i, got[i], want[i])
		}
	}

	const k = 25
	wantK, _, err := Join(tr, tr, Options{Algorithm: AlgOBJ, SelfJoin: true, Collect: true, TopK: k})
	if err != nil {
		t.Fatal(err)
	}
	var gotK []Pair
	batches := 0
	if _, _, err := Join(tr, tr, Options{Algorithm: AlgOBJ, SelfJoin: true, TopK: k,
		OnBatch: func(b []Pair) { batches++; gotK = append(gotK, b...) }}); err != nil {
		t.Fatal(err)
	}
	if batches != 1 {
		t.Fatalf("TopK delivered %d batches, want 1", batches)
	}
	if len(gotK) != len(wantK) {
		t.Fatalf("TopK: %d pairs, want %d", len(gotK), len(wantK))
	}
	for i := range gotK {
		if gotK[i] != wantK[i] {
			t.Fatalf("TopK pair %d: %+v != %+v (must be ranking order)", i, gotK[i], wantK[i])
		}
	}
}
