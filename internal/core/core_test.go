package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// buildTree indexes the given points in a fresh in-memory R*-tree sharing
// the provided pool (or its own if pool is nil).
func buildTree(t *testing.T, pts []rtree.PointEntry, pool *buffer.Pool, owner uint32, bulk bool) *rtree.Tree {
	t.Helper()
	if pool == nil {
		pool = buffer.NewPool(-1)
	}
	pager := storage.NewMemPager(storage.DefaultPageSize)
	tr, err := rtree.New(pager, pool, rtree.Config{Owner: owner})
	if err != nil {
		t.Fatalf("new tree: %v", err)
	}
	if bulk {
		if err := tr.BulkLoad(pts, 0); err != nil {
			t.Fatalf("bulk load: %v", err)
		}
	} else {
		for _, p := range pts {
			if err := tr.Insert(p.P, p.ID); err != nil {
				t.Fatalf("insert: %v", err)
			}
		}
	}
	return tr
}

// randomPoints generates n points uniformly in [0,10000]² with ids 0..n-1.
func randomPoints(rng *rand.Rand, n int) []rtree.PointEntry {
	pts := make([]rtree.PointEntry, n)
	for i := range pts {
		pts[i] = rtree.PointEntry{
			P:  geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000},
			ID: int64(i),
		}
	}
	return pts
}

// clusteredPoints generates n points in w Gaussian clusters.
func clusteredPoints(rng *rand.Rand, n, w int, sigma float64) []rtree.PointEntry {
	centers := make([]geom.Point, w)
	for i := range centers {
		centers[i] = geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
	}
	pts := make([]rtree.PointEntry, n)
	for i := range pts {
		c := centers[i%w]
		pts[i] = rtree.PointEntry{
			P:  geom.Point{X: c.X + rng.NormFloat64()*sigma, Y: c.Y + rng.NormFloat64()*sigma},
			ID: int64(i),
		}
	}
	return pts
}

// pairKey canonicalizes a pair for set comparison.
func pairKey(p Pair) string {
	return fmt.Sprintf("%d|%d", p.P.ID, p.Q.ID)
}

func pairSet(pairs []Pair) map[string]Pair {
	m := make(map[string]Pair, len(pairs))
	for _, p := range pairs {
		m[pairKey(p)] = p
	}
	return m
}

// diffPairs reports the symmetric difference between two result sets.
func diffPairs(t *testing.T, label string, want, got []Pair) {
	t.Helper()
	ws, gs := pairSet(want), pairSet(got)
	if len(ws) != len(want) {
		t.Fatalf("%s: oracle produced duplicate pairs", label)
	}
	if len(gs) != len(got) {
		t.Errorf("%s: algorithm produced duplicate pairs (%d pairs, %d unique)", label, len(got), len(gs))
	}
	var missing, extra []string
	for k := range ws {
		if _, ok := gs[k]; !ok {
			missing = append(missing, k)
		}
	}
	for k := range gs {
		if _, ok := ws[k]; !ok {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 || len(extra) > 0 {
		t.Errorf("%s: result mismatch: %d missing (false negatives) %v, %d extra (false positives) %v",
			label, len(missing), truncate(missing), len(extra), truncate(extra))
	}
}

func truncate(s []string) []string {
	if len(s) > 8 {
		return s[:8]
	}
	return s
}

// runAll executes one algorithm against the oracle on the given datasets.
func checkAlgorithm(t *testing.T, alg Algorithm, ps, qs []rtree.PointEntry, bulkLoad bool) {
	t.Helper()
	pool := buffer.NewPool(-1)
	tp := buildTree(t, ps, pool, 1, bulkLoad)
	tq := buildTree(t, qs, pool, 2, bulkLoad)
	got, stats, err := Join(tq, tp, Options{Algorithm: alg, Collect: true})
	if err != nil {
		t.Fatalf("%v join: %v", alg, err)
	}
	want := BruteForcePairs(ps, qs, false)
	diffPairs(t, alg.String(), want, got)
	if stats.Results != int64(len(got)) {
		t.Errorf("%v: stats.Results=%d, len=%d", alg, stats.Results, len(got))
	}
	if alg != AlgBrute && stats.Candidates < stats.Results {
		t.Errorf("%v: candidates %d < results %d", alg, stats.Candidates, stats.Results)
	}
}

func TestAlgorithmsMatchOracleUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 5, 40, 150} {
		ps := randomPoints(rng, n)
		qs := randomPoints(rng, n+3)
		for _, alg := range []Algorithm{AlgBrute, AlgINJ, AlgBIJ, AlgOBJ} {
			t.Run(fmt.Sprintf("%v/n=%d", alg, n), func(t *testing.T) {
				checkAlgorithm(t, alg, ps, qs, true)
			})
		}
	}
}

func TestAlgorithmsMatchOracleClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := clusteredPoints(rng, 120, 3, 400)
	qs := clusteredPoints(rng, 90, 5, 700)
	for _, alg := range []Algorithm{AlgINJ, AlgBIJ, AlgOBJ} {
		t.Run(alg.String(), func(t *testing.T) {
			checkAlgorithm(t, alg, ps, qs, true)
		})
	}
}

func TestAlgorithmsMatchOracleInsertBuiltTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ps := randomPoints(rng, 100)
	qs := randomPoints(rng, 80)
	for _, alg := range []Algorithm{AlgINJ, AlgBIJ, AlgOBJ} {
		t.Run(alg.String(), func(t *testing.T) {
			checkAlgorithm(t, alg, ps, qs, false)
		})
	}
}

func TestSkewedCardinalities(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := randomPoints(rng, 200)
	qs := randomPoints(rng, 10)
	for _, alg := range []Algorithm{AlgINJ, AlgBIJ, AlgOBJ} {
		t.Run(alg.String()+"/bigP", func(t *testing.T) {
			checkAlgorithm(t, alg, ps, qs, true)
		})
		t.Run(alg.String()+"/bigQ", func(t *testing.T) {
			checkAlgorithm(t, alg, qs, ps, true)
		})
	}
}

func TestSelfJoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 100)
	want := BruteForcePairs(pts, pts, true)
	pool := buffer.NewPool(-1)
	tr := buildTree(t, pts, pool, 1, true)
	for _, alg := range []Algorithm{AlgBrute, AlgINJ, AlgBIJ, AlgOBJ} {
		t.Run(alg.String(), func(t *testing.T) {
			got, _, err := Join(tr, tr, Options{Algorithm: alg, SelfJoin: true, Collect: true})
			if err != nil {
				t.Fatalf("self join: %v", err)
			}
			for _, p := range got {
				if p.P.ID >= p.Q.ID {
					t.Errorf("non-canonical self pair <%d,%d>", p.P.ID, p.Q.ID)
				}
			}
			diffPairs(t, "self/"+alg.String(), want, got)
		})
	}
}

func TestRandomLeafOrderSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := randomPoints(rng, 150)
	qs := randomPoints(rng, 150)
	pool := buffer.NewPool(-1)
	tp := buildTree(t, ps, pool, 1, true)
	tq := buildTree(t, qs, pool, 2, true)
	base, _, err := Join(tq, tp, Options{Algorithm: AlgINJ, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	shuf, _, err := Join(tq, tp, Options{Algorithm: AlgINJ, RandomLeafOrder: true, Seed: 1234, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	diffPairs(t, "shuffled-leaves", base, shuf)
}

func TestSkipVerificationSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ps := randomPoints(rng, 80)
	qs := randomPoints(rng, 80)
	pool := buffer.NewPool(-1)
	tp := buildTree(t, ps, pool, 1, true)
	tq := buildTree(t, qs, pool, 2, true)
	verified, _, err := Join(tq, tp, Options{Algorithm: AlgINJ, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, stats, err := Join(tq, tp, Options{Algorithm: AlgINJ, SkipVerification: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != stats.Candidates {
		t.Errorf("unverified output %d != candidates %d", len(raw), stats.Candidates)
	}
	rs := pairSet(raw)
	for k := range pairSet(verified) {
		if _, ok := rs[k]; !ok {
			t.Errorf("filter lost true result %s (false negative in filter step)", k)
		}
	}
}

func TestDisableFaceRuleSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ps := clusteredPoints(rng, 150, 4, 300)
	qs := clusteredPoints(rng, 150, 4, 300)
	pool := buffer.NewPool(-1)
	tp := buildTree(t, ps, pool, 1, true)
	tq := buildTree(t, qs, pool, 2, true)
	with, _, err := Join(tq, tp, Options{Algorithm: AlgOBJ, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	without, _, err := Join(tq, tp, Options{Algorithm: AlgOBJ, DisableFaceRule: true, Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	diffPairs(t, "face-rule", without, with)
}

func TestOnPairStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ps := randomPoints(rng, 60)
	qs := randomPoints(rng, 60)
	pool := buffer.NewPool(-1)
	tp := buildTree(t, ps, pool, 1, true)
	tq := buildTree(t, qs, pool, 2, true)
	var streamed int
	_, stats, err := Join(tq, tp, Options{Algorithm: AlgOBJ, OnPair: func(Pair) { streamed++ }})
	if err != nil {
		t.Fatal(err)
	}
	if int64(streamed) != stats.Results {
		t.Errorf("streamed %d pairs, stats.Results=%d", streamed, stats.Results)
	}
}

func TestEmptyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pool := buffer.NewPool(-1)
	pts := randomPoints(rng, 20)
	full := buildTree(t, pts, pool, 1, true)
	empty := buildTree(t, nil, pool, 2, true)
	for _, alg := range []Algorithm{AlgBrute, AlgINJ, AlgBIJ, AlgOBJ} {
		got, stats, err := Join(empty, full, Options{Algorithm: alg, Collect: true})
		if err != nil {
			t.Fatalf("%v empty Q: %v", alg, err)
		}
		if len(got) != 0 || stats.Results != 0 {
			t.Errorf("%v empty Q: got %d pairs", alg, len(got))
		}
		got, _, err = Join(full, empty, Options{Algorithm: alg, Collect: true})
		if err != nil {
			t.Fatalf("%v empty P: %v", alg, err)
		}
		if len(got) != 0 {
			t.Errorf("%v empty P: got %d pairs", alg, len(got))
		}
	}
}

// TestTinyDegenerate exercises collinear, duplicate-location and
// single-point configurations where tolerance handling matters most.
func TestTinyDegenerate(t *testing.T) {
	cases := []struct {
		name string
		ps   []geom.Point
		qs   []geom.Point
	}{
		{"one-one", []geom.Point{{X: 1, Y: 1}}, []geom.Point{{X: 2, Y: 2}}},
		{"collinear", []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}}, []geom.Point{{X: 1, Y: 0}, {X: 3, Y: 0}}},
		{"coincident-cross", []geom.Point{{X: 5, Y: 5}, {X: 7, Y: 5}}, []geom.Point{{X: 5, Y: 5}, {X: 6, Y: 8}}},
		{"grid", []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 2}, {X: 2, Y: 0}, {X: 2, Y: 2}}, []geom.Point{{X: 1, Y: 1}}},
		{"dup-p", []geom.Point{{X: 3, Y: 3}, {X: 3, Y: 3}}, []geom.Point{{X: 4, Y: 4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ps := make([]rtree.PointEntry, len(tc.ps))
			for i, p := range tc.ps {
				ps[i] = rtree.PointEntry{P: p, ID: int64(i)}
			}
			qs := make([]rtree.PointEntry, len(tc.qs))
			for i, q := range tc.qs {
				qs[i] = rtree.PointEntry{P: q, ID: int64(i)}
			}
			want := BruteForcePairs(ps, qs, false)
			for _, alg := range []Algorithm{AlgBrute, AlgINJ, AlgBIJ, AlgOBJ} {
				checkAlgorithm(t, alg, ps, qs, true)
				_ = want
			}
		})
	}
}
