package core

import (
	"context"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// This file implements the Manhattan-metric generalization of the
// ring-constrained join sketched in the paper's future work (Section 6):
// the "ring" becomes the smallest L1 ball (a diamond) centered at the
// midpoint of p and q, and a pair qualifies when that ball covers no other
// point of P ∪ Q.
//
// The Euclidean half-plane pruning of Lemma 1 does not transfer verbatim,
// but a quadrant analogue does:
//
//	L1 quadrant lemma. Let p ∈ P have been discovered for query q. Any
//	point p' lying in the closed quadrant anchored at p and pointing away
//	from q — i.e. with p between p' and q in both coordinates — cannot
//	form an L1-RCJ pair with q.
//
//	Proof: if min(p'.x, q.x) ≤ p.x ≤ max(p'.x, q.x) and likewise in y, then
//	per coordinate |m.x − p.x| ≤ |p'.x − q.x|/2 for the midpoint m, so
//	‖m − p‖₁ ≤ ‖p' − q‖₁/2 = r: p lies inside the closed L1 ball of
//	<p', q>, invalidating the pair.
//
// The quadrant is a subset of the Euclidean Ψ− region's analogue, so the
// filter admits more candidates than the Euclidean join — the verification
// step (against exact L1 balls) restores exactness.

// l1Pruner is the quadrant pruning region derived from query q and
// discovered point p.
type l1Pruner struct {
	p geom.Point
	// sx, sy ∈ {−1, +1}: the quadrant direction away from q per axis. A
	// zero q−p component makes any p' on that axis side qualify, handled by
	// the closed comparisons below with s = +1 chosen arbitrarily — both
	// closed half-lines contain the boundary value p.
	sx, sy float64
}

func newL1Pruner(q, p geom.Point) l1Pruner {
	pr := l1Pruner{p: p, sx: 1, sy: 1}
	if q.X > p.X {
		pr.sx = -1
	}
	if q.Y > p.Y {
		pr.sy = -1
	}
	return pr
}

// prunesPoint reports whether x lies in the quadrant (p between x and q on
// both axes).
func (pr l1Pruner) prunesPoint(x geom.Point) bool {
	return (x.X-pr.p.X)*pr.sx >= 0 && (x.Y-pr.p.Y)*pr.sy >= 0
}

// prunesRect reports whether the whole rectangle lies in the quadrant.
func (pr l1Pruner) prunesRect(r geom.Rect) bool {
	// The rect is inside the closed quadrant iff its extreme corner toward
	// q still qualifies.
	x := r.MaxX
	if pr.sx > 0 {
		x = r.MinX
	}
	y := r.MaxY
	if pr.sy > 0 {
		y = r.MinY
	}
	return pr.prunesPoint(geom.Point{X: x, Y: y})
}

// L1Pair is one Manhattan-metric RCJ result.
type L1Pair struct {
	P, Q rtree.PointEntry
	Ball geom.L1Circle
}

// JoinL1 computes the L1 (Manhattan) ring-constrained join of the pointsets
// indexed by tq and tp using an index-nested-loop with quadrant pruning and
// exact L1-ball verification. opts supports SelfJoin and Collect/OnPair
// semantics; the Algorithm field is ignored (one strategy is provided).
func JoinL1(tq, tp SpatialIndex, opts Options) ([]L1Pair, Stats, error) {
	return JoinL1Context(context.Background(), tq, tp, opts)
}

// JoinL1Context is JoinL1 under a context, aborting promptly with ctx.Err()
// on cancellation.
func JoinL1Context(ctx context.Context, tq, tp SpatialIndex, opts Options) ([]L1Pair, Stats, error) {
	j := &l1Joiner{tq: tq, tp: tp, opts: opts, ctx: ctx}
	err := tq.VisitLeaves(func(n *rtree.Node) error {
		for i := 0; i < n.NumPoints(); i++ {
			q := n.EntryAt(i)
			if err := ctxDone(j.ctx); err != nil {
				return err
			}
			if err := j.joinOne(q); err != nil {
				return err
			}
		}
		return nil
	})
	return j.out, j.stats, err
}

// BruteForceL1Pairs is the oracle: the L1-RCJ of two plain slices.
func BruteForceL1Pairs(ps, qs []rtree.PointEntry, selfJoin bool) []L1Pair {
	var out []L1Pair
	for _, q := range qs {
		for _, p := range ps {
			if selfJoin && p.ID >= q.ID {
				continue
			}
			b := geom.L1EnclosingCircle(p.P, q.P)
			valid := true
			for _, r := range ps {
				if r.ID != p.ID && (!selfJoin || r.ID != q.ID) && b.Covers(r.P) {
					valid = false
					break
				}
			}
			if valid {
				for _, r := range qs {
					if r.ID != q.ID && (!selfJoin || r.ID != p.ID) && b.Covers(r.P) {
						valid = false
						break
					}
				}
			}
			if valid {
				out = append(out, L1Pair{P: p, Q: q, Ball: b})
			}
		}
	}
	return out
}

type l1Joiner struct {
	tq, tp SpatialIndex
	opts   Options
	ctx    context.Context
	stats  Stats
	out    []L1Pair
}

func (j *l1Joiner) joinOne(q rtree.PointEntry) error {
	cands, err := j.filter(q)
	if err != nil {
		return err
	}
	j.stats.Candidates += int64(len(cands))
	for _, p := range cands {
		b := geom.L1EnclosingCircle(p.P, q.P)
		valid, err := j.verify(q, p, b)
		if err != nil {
			return err
		}
		if !valid {
			continue
		}
		if j.opts.SelfJoin && p.ID >= q.ID {
			continue
		}
		j.stats.Results++
		if j.opts.Collect {
			j.out = append(j.out, L1Pair{P: p, Q: q, Ball: b})
		}
	}
	return nil
}

// filter walks TP in ascending L1 distance from q, keeping points not
// pruned by any quadrant of an earlier candidate.
func (j *l1Joiner) filter(q rtree.PointEntry) ([]rtree.PointEntry, error) {
	if j.tp.Root() == storage.InvalidPageID {
		return nil, nil
	}
	var (
		pruners []l1Pruner
		cands   []rtree.PointEntry
		h       filterHeap
	)
	h.push(filterItem{dist2: 0, page: j.tp.Root(), rect: geom.EmptyRect()})
	for len(h) > 0 {
		item := h.pop()
		j.stats.FilterHeapPops++
		if item.isPoint {
			if j.opts.SelfJoin && item.point.ID == q.ID {
				continue
			}
			pruned := false
			for _, pr := range pruners {
				if pr.prunesPoint(item.point.P) {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
			cands = append(cands, item.point)
			if !item.point.P.Equal(q.P) {
				pruners = append(pruners, newL1Pruner(q.P, item.point.P))
			}
			continue
		}
		if !item.rect.IsEmpty() {
			pruned := false
			for _, pr := range pruners {
				if pr.prunesRect(item.rect) {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
		}
		n, err := j.tp.ReadNode(item.page)
		if err != nil {
			return nil, err
		}
		if n.Leaf {
			xs, ys := n.Xs, n.Ys
			for i, id := range n.IDs {
				p := geom.Point{X: xs[i], Y: ys[i]}
				h.push(filterItem{dist2: q.P.L1Dist(p), isPoint: true, point: rtree.PointEntry{P: p, ID: id}})
			}
		} else {
			for _, e := range n.Children {
				h.push(filterItem{dist2: rectMinL1(e.MBR, q.P), page: e.Child, rect: e.MBR})
			}
		}
	}
	return cands, nil
}

// verify checks the L1 ball against both trees with range descent.
func (j *l1Joiner) verify(q, p rtree.PointEntry, b geom.L1Circle) (bool, error) {
	exQ, exP := q.ID, p.ID
	if j.opts.SelfJoin || j.tq == j.tp {
		hit, err := j.anyInBall(j.tq, b, exQ, exP)
		return !hit, err
	}
	hit, err := j.anyInBall(j.tq, b, exQ, exQ)
	if err != nil || hit {
		return false, err
	}
	hit, err = j.anyInBall(j.tp, b, exP, exP)
	return !hit, err
}

func (j *l1Joiner) anyInBall(t SpatialIndex, b geom.L1Circle, ex1, ex2 int64) (bool, error) {
	return j.anyRec(t, t.Root(), b, ex1, ex2)
}

func (j *l1Joiner) anyRec(t SpatialIndex, id storage.PageID, b geom.L1Circle, ex1, ex2 int64) (bool, error) {
	if id == storage.InvalidPageID {
		return false, nil
	}
	n, err := t.ReadNode(id)
	if err != nil {
		return false, err
	}
	j.stats.VerifiedNodes++
	if n.Leaf {
		xs, ys := n.Xs, n.Ys
		for i, eid := range n.IDs {
			if eid != ex1 && eid != ex2 && b.Covers(geom.Point{X: xs[i], Y: ys[i]}) {
				return true, nil
			}
		}
		return false, nil
	}
	for _, e := range n.Children {
		if b.IntersectsRect(e.MBR) {
			hit, err := j.anyRec(t, e.Child, b, ex1, ex2)
			if err != nil || hit {
				return hit, err
			}
		}
	}
	return false, nil
}

// rectMinL1 returns the minimum L1 distance from p to rectangle r.
func rectMinL1(r geom.Rect, p geom.Point) float64 {
	var dx, dy float64
	switch {
	case p.X < r.MinX:
		dx = r.MinX - p.X
	case p.X > r.MaxX:
		dx = p.X - r.MaxX
	}
	switch {
	case p.Y < r.MinY:
		dy = r.MinY - p.Y
	case p.Y > r.MaxY:
		dy = p.Y - r.MaxY
	}
	return dx + dy
}
