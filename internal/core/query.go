package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/topk"
)

// This file is the predicate-pushdown layer of the executor. The constrained
// browsing scenarios of Section 1 (tourist: ascending ring diameter;
// school-bus: ranked subsets) never need the full join, so the query
// predicates of Options — MaxDiameter, MinDistance, Region, TopK, Limit —
// are pushed into the filter traversal instead of applied to materialized
// results:
//
//   - MaxDiameter bounds the pair distance directly (a two-point enclosing
//     circle's diameter IS the distance between the points), so the filter's
//     ascending-distance traversal terminates the moment it pops an item
//     beyond the bound, and the bulk filter drops TP subtrees whose min
//     distance to every query point exceeds it.
//   - TopK runs branch-and-bound: a bounded pair-heap of the k best pairs
//     seen so far publishes its current k-th diameter as a dynamic
//     MaxDiameter that tightens mid-traversal, shared atomically across
//     parallel workers.
//   - Region prunes TP subtrees whose midpoint rect with the query point —
//     the set of circle centers the subtree can produce — misses the window.
//   - Limit stops the whole traversal once enough pairs have been emitted.
//
// Pruning never drops a qualifying pair: the distance bound is monotone
// along the traversal order, a point excluded by MinDistance/Region still
// installs its Ψ− pruner (the join predicate is independent of the query
// predicates), and verification always runs against the full trees.

// errLimitReached aborts the traversal once Limit pairs have been emitted.
// It is an internal control-flow sentinel, mapped to a clean completion
// before execute returns.
var errLimitReached = errors.New("core: result limit reached")

// hasPredicates reports whether any pushdown predicate is set.
func (o Options) hasPredicates() bool {
	return o.MaxDiameter > 0 || o.MinDistance > 0 || o.Region != nil || o.TopK > 0 || o.Limit > 0
}

// runShared is the predicate state shared by every worker of one run: the
// TopK heap with its dynamic bound, or the Limit countdown. One instance per
// execute; nil when the run has no predicates.
type runShared struct {
	topk    *topkState
	limit   int64 // emission cap when topk is nil; 0 = none
	emitted atomic.Int64
	stopped atomic.Bool
}

// newRunShared compiles the predicate set of one run. TopK subsumes Limit:
// the k tightest pairs truncated to Limit are the min(k, Limit) tightest.
func newRunShared(opts Options) *runShared {
	sh := &runShared{}
	if opts.TopK > 0 {
		k := opts.TopK
		if opts.Limit > 0 && opts.Limit < k {
			k = opts.Limit
		}
		t := &topkState{h: topk.New(k, pairBefore)}
		t.diam.Store(math.Float64bits(math.Inf(1)))
		sh.topk = t
	} else if opts.Limit > 0 {
		sh.limit = int64(opts.Limit)
	}
	return sh
}

// topkState is the bounded pair-heap of a TopK run. Its current k-th
// diameter is published through diam so every worker's filter traversal
// reads the tightest bound with one atomic load, no lock — the
// branch-and-bound of the paper's browsing scenario.
type topkState struct {
	diam atomic.Uint64 // Float64bits of the current diameter bound; +Inf until the heap fills
	mu   sync.Mutex
	h    *topk.Heap[Pair]
}

// bound returns the current dynamic diameter bound: pairs strictly wider
// cannot enter the final top k.
func (t *topkState) bound() float64 { return math.Float64frombits(t.diam.Load()) }

// offer submits one verified pair. The heap keeps the k best under the
// deterministic ranking order; whenever the k-th pair improves, the
// published bound tightens.
func (t *topkState) offer(p Pair) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.h.Offer(p) && t.h.Full() {
		t.diam.Store(math.Float64bits(2 * t.h.Worst().Circle.Radius))
	}
}

// sorted drains the heap into ascending ranking order.
func (t *topkState) sorted() []Pair {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.h.Sorted()
}

// pairBefore is the deterministic ranking order of constrained queries:
// ascending circle radius, ties broken by (P.ID, Q.ID). It matches the
// public SortPairsByDiameter order, so "TopK" means exactly "the first k of
// the sorted unconstrained join".
func pairBefore(a, b Pair) bool {
	if a.Circle.Radius != b.Circle.Radius {
		return a.Circle.Radius < b.Circle.Radius
	}
	if a.P.ID != b.P.ID {
		return a.P.ID < b.P.ID
	}
	return a.Q.ID < b.Q.ID
}

// boundSlack relaxes the traversal-level distance-bound checks: those
// derive item distances with math.Sqrt of a squared distance, while the
// bound itself comes from math.Hypot (2·Circle.Radius = Point.Dist), and
// the two can disagree by an ulp or two at an exact tie. Under-pruning by
// this sliver is free — admitPair, which compares Hypot against Hypot
// exactly, is the final authority on every candidate — whereas over-pruning
// a boundary tie would break the post-filter set identity. The scale
// matches geom.CoverTol, dwarfing any rounding disagreement.
const boundSlack = 1 + 1e-9

// maxPairDiameter returns the upper bound on an admissible pair's diameter
// (= the distance between its two points): the static MaxDiameter
// intersected with the TopK heap's dynamic bound. +Inf when unconstrained.
// Only pairs STRICTLY beyond the bound are inadmissible, keeping ties with
// the current k-th pair alive for the ID tiebreak; traversal checks widen
// it by boundSlack (see there).
func (j *joiner) maxPairDiameter() float64 {
	d := math.Inf(1)
	if j.opts.MaxDiameter > 0 {
		d = j.opts.MaxDiameter
	}
	if j.shared != nil && j.shared.topk != nil {
		if b := j.shared.topk.bound(); b < d {
			d = b
		}
	}
	return d
}

// admitPair applies every pair-level predicate to a prospective pair: the
// diameter bound (static and dynamic), the minimum distance, and the region
// window on the circle center (the midpoint of the two points). Runs with
// no predicates skip the distance computation entirely.
func (j *joiner) admitPair(a, b geom.Point) bool {
	if !j.opts.hasPredicates() {
		return true
	}
	return j.admitPairDist(a.Dist(b), a, b)
}

// admitPairDist is admitPair for callers that already hold the pair's exact
// (math.Hypot) distance — the bulk filter computes it for the bound check
// and must not pay the square root twice per (leaf point × query point).
func (j *joiner) admitPairDist(d float64, a, b geom.Point) bool {
	if d > j.maxPairDiameter() {
		return false
	}
	if j.opts.MinDistance > 0 && d < j.opts.MinDistance {
		return false
	}
	if r := j.opts.Region; r != nil && !r.ContainsPoint(a.Mid(b)) {
		return false
	}
	return true
}

// regionPrunesRect reports whether the Region window rules out every pair of
// the query point q with a point inside rect: the candidate circle centers
// are the midpoints, which form rect shrunk toward q by half — a window
// disjoint from that midpoint rect can produce no qualifying center.
func (j *joiner) regionPrunesRect(q geom.Point, rect geom.Rect) bool {
	r := j.opts.Region
	if r == nil || rect.IsEmpty() {
		return false
	}
	mid := geom.Rect{
		MinX: (rect.MinX + q.X) / 2,
		MinY: (rect.MinY + q.Y) / 2,
		MaxX: (rect.MaxX + q.X) / 2,
		MaxY: (rect.MaxY + q.Y) / 2,
	}
	return !mid.Intersects(*r)
}

// flushTopK emits the final top-k pairs in ascending ranking order through
// the run's original Collect/OnPair configuration. TopK runs cannot stream
// mid-join — a later, tighter pair may evict an earlier one — so this is the
// single emission point.
func (j *joiner) flushTopK() {
	for _, p := range j.shared.topk.sorted() {
		j.stats.Results++
		if j.opts.Collect {
			j.out = append(j.out, p)
		}
		if j.opts.OnPair != nil {
			j.opts.OnPair(p)
		}
		if j.opts.OnBatch != nil {
			j.batch = append(j.batch, p)
		}
	}
}
