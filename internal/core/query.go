package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/topk"
)

// This file is the predicate-pushdown layer of the executor. The constrained
// browsing scenarios of Section 1 (tourist: ascending ring diameter;
// school-bus: ranked subsets) never need the full join, so the query
// predicates of Options — MaxDiameter, MinDistance, Region, TopK, Limit —
// are pushed into the filter traversal instead of applied to materialized
// results:
//
//   - MaxDiameter bounds the pair distance directly (a two-point enclosing
//     circle's diameter IS the distance between the points), so the filter's
//     ascending-distance traversal terminates the moment it pops an item
//     beyond the bound, and the bulk filter drops TP subtrees whose min
//     distance to every query point exceeds it.
//   - TopK runs branch-and-bound: a bounded pair-heap of the k best pairs
//     seen so far publishes its current k-th diameter as a dynamic
//     MaxDiameter that tightens mid-traversal, shared atomically across
//     parallel workers.
//   - Region prunes TP subtrees whose midpoint rect with the query point —
//     the set of circle centers the subtree can produce — misses the window.
//   - Limit stops the whole traversal once enough pairs have been emitted.
//
// Pruning never drops a qualifying pair: the distance bound is monotone
// along the traversal order, a point excluded by MinDistance/Region still
// installs its Ψ− pruner (the join predicate is independent of the query
// predicates), and verification always runs against the full trees.

// errLimitReached aborts the traversal once Limit pairs have been emitted.
// It is an internal control-flow sentinel, mapped to a clean completion
// before execute returns.
var errLimitReached = errors.New("core: result limit reached")

// Predicate names one pair-level predicate for Options.PredicateOrder.
type Predicate uint8

const (
	// PredDiameter is the diameter bound: static MaxDiameter intersected
	// with a TopK run's dynamic bound.
	PredDiameter Predicate = iota + 1
	// PredMinDistance is the MinDistance floor.
	PredMinDistance
	// PredRegion is the Region window test on the circle center.
	PredRegion
)

// defaultPredicateOrder is the historical evaluation order, used when
// Options.PredicateOrder is empty.
var defaultPredicateOrder = [3]Predicate{PredDiameter, PredMinDistance, PredRegion}

// compilePredOrder resolves the run's pair-predicate evaluation order:
// the planner-chosen order when given (completed with any predicates it
// omitted, so a partial order can never drop a check), the default
// otherwise. Order affects only which test rejects a pair first — the
// predicates are a conjunction, so the admitted set is identical for every
// order.
func compilePredOrder(opts Options) [3]Predicate {
	if len(opts.PredicateOrder) == 0 {
		return defaultPredicateOrder
	}
	var out [3]Predicate
	n := 0
	seen := [4]bool{}
	add := func(p Predicate) {
		if p >= PredDiameter && p <= PredRegion && !seen[p] && n < 3 {
			seen[p] = true
			out[n] = p
			n++
		}
	}
	for _, p := range opts.PredicateOrder {
		add(p)
	}
	for _, p := range defaultPredicateOrder {
		add(p)
	}
	return out
}

// hasPredicates reports whether any pushdown predicate is set.
func (o Options) hasPredicates() bool {
	return o.MaxDiameter > 0 || o.MinDistance > 0 || o.Region != nil || o.TopK > 0 || o.Limit > 0
}

// runShared is the predicate state shared by every worker of one run: the
// TopK heap with its dynamic bound, or the Limit countdown. One instance per
// execute; nil when the run has no predicates.
type runShared struct {
	topk    *topkState
	limit   int64 // emission cap when topk is nil; 0 = none
	emitted atomic.Int64
	stopped atomic.Bool
}

// newRunShared compiles the predicate set of one run. TopK subsumes Limit:
// the k tightest pairs truncated to Limit are the min(k, Limit) tightest.
// With a Weight function the ranking flips to descending combined endpoint
// weight (the school-bus scenario) and the dynamic bound becomes a score
// floor instead of a diameter ceiling.
func newRunShared(opts Options) *runShared {
	sh := &runShared{}
	if opts.TopK > 0 {
		k := opts.TopK
		if opts.Limit > 0 && opts.Limit < k {
			k = opts.Limit
		}
		t := &topkState{weight: opts.Weight}
		if t.weight != nil {
			t.h = topk.New(k, weightBefore(t.weight))
			t.score.Store(math.Float64bits(math.Inf(-1)))
		} else {
			t.h = topk.New(k, pairBefore)
		}
		t.diam.Store(math.Float64bits(math.Inf(1)))
		sh.topk = t
	} else if opts.Limit > 0 {
		sh.limit = int64(opts.Limit)
	}
	return sh
}

// topkState is the bounded pair-heap of a TopK run. Its current k-th
// diameter is published through diam so every worker's filter traversal
// reads the tightest bound with one atomic load, no lock — the
// branch-and-bound of the paper's browsing scenario.
//
// A weight-ranked run (weight != nil) keeps the k best pairs by descending
// combined endpoint weight instead. Diameter no longer orders the heap, so
// diam stays +Inf (the traversal's distance bound is only the static
// MaxDiameter); the dynamic bound is the k-th combined score, published
// through score: once the heap is full, a pair whose combined weight is
// strictly below it can never enter the ranking and is killed before
// verification.
type topkState struct {
	diam   atomic.Uint64 // Float64bits of the current diameter bound; +Inf until the heap fills
	score  atomic.Uint64 // weight-ranked runs: Float64bits of the k-th combined score; -Inf until full
	weight func(rtree.PointEntry) float64
	mu     sync.Mutex
	h      *topk.Heap[Pair]
}

// bound returns the current dynamic diameter bound: pairs strictly wider
// cannot enter the final top k. Always +Inf for weight-ranked runs.
func (t *topkState) bound() float64 { return math.Float64frombits(t.diam.Load()) }

// scoreBound returns the weight-ranked run's current dynamic score floor:
// pairs whose combined weight is strictly below it cannot enter the final
// top k. -Inf until the heap fills (and always for diameter-ranked runs,
// which never load it).
func (t *topkState) scoreBound() float64 { return math.Float64frombits(t.score.Load()) }

// pairScore is the weight-ranked run's combined endpoint weight.
func (t *topkState) pairScore(p Pair) float64 { return t.weight(p.P) + t.weight(p.Q) }

// offer submits one verified pair. The heap keeps the k best under the
// deterministic ranking order; whenever the k-th pair improves, the
// published bound tightens.
func (t *topkState) offer(p Pair) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.h.Offer(p) && t.h.Full() {
		if t.weight != nil {
			t.score.Store(math.Float64bits(t.pairScore(t.h.Worst())))
		} else {
			t.diam.Store(math.Float64bits(2 * t.h.Worst().Circle.Radius))
		}
	}
}

// sorted drains the heap into ascending ranking order.
func (t *topkState) sorted() []Pair {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.h.Sorted()
}

// pairBefore is the deterministic ranking order of constrained queries:
// ascending circle radius, ties broken by (P.ID, Q.ID). It matches the
// public SortPairsByDiameter order, so "TopK" means exactly "the first k of
// the sorted unconstrained join".
func pairBefore(a, b Pair) bool {
	if a.Circle.Radius != b.Circle.Radius {
		return a.Circle.Radius < b.Circle.Radius
	}
	if a.P.ID != b.P.ID {
		return a.P.ID < b.P.ID
	}
	return a.Q.ID < b.Q.ID
}

// weightBefore is the deterministic ranking order of a weight-ranked top-k
// run: descending combined endpoint weight, ties broken by the diameter
// ranking. It matches the public RankPairsByWeight order, so a weighted
// "TopK" is exactly the head of that sort over the unconstrained join.
func weightBefore(w func(rtree.PointEntry) float64) func(a, b Pair) bool {
	return func(a, b Pair) bool {
		sa, sb := w(a.P)+w(a.Q), w(b.P)+w(b.Q)
		if sa != sb {
			return sa > sb
		}
		return pairBefore(a, b)
	}
}

// boundSlack relaxes the traversal-level distance-bound checks: those
// derive item distances with math.Sqrt of a squared distance, while the
// bound itself comes from math.Hypot (2·Circle.Radius = Point.Dist), and
// the two can disagree by an ulp or two at an exact tie. Under-pruning by
// this sliver is free — admitPair, which compares Hypot against Hypot
// exactly, is the final authority on every candidate — whereas over-pruning
// a boundary tie would break the post-filter set identity. The scale
// matches geom.CoverTol, dwarfing any rounding disagreement.
const boundSlack = 1 + 1e-9

// maxPairDiameter returns the upper bound on an admissible pair's diameter
// (= the distance between its two points): the static MaxDiameter
// intersected with the TopK heap's dynamic bound. +Inf when unconstrained.
// Only pairs STRICTLY beyond the bound are inadmissible, keeping ties with
// the current k-th pair alive for the ID tiebreak; traversal checks widen
// it by boundSlack (see there).
func (j *joiner) maxPairDiameter() float64 {
	d := math.Inf(1)
	if j.opts.MaxDiameter > 0 {
		d = j.opts.MaxDiameter
	}
	if j.shared != nil && j.shared.topk != nil {
		if b := j.shared.topk.bound(); b < d {
			d = b
		}
	}
	return d
}

// admitPair applies every pair-level predicate to a prospective pair: the
// diameter bound (static and dynamic), the minimum distance, and the region
// window on the circle center (the midpoint of the two points). Runs with
// no predicates skip the distance computation entirely.
func (j *joiner) admitPair(a, b rtree.PointEntry) bool {
	if !j.opts.hasPredicates() {
		return true
	}
	return j.admitPairDist(a.P.Dist(b.P), a, b)
}

// admitPairDist is admitPair for callers that already hold the pair's exact
// (math.Hypot) distance — the bulk filter computes it for the bound check
// and must not pay the square root twice per (leaf point × query point).
// Predicates run in the plan's evaluation order (most selective first when
// the planner ordered them); the predicates are a conjunction, so the
// admitted set is identical for every order. A weight-ranked top-k run
// additionally kills pairs whose combined score is strictly below the
// heap's current k-th score — they can never displace a ranked pair.
func (j *joiner) admitPairDist(d float64, a, b rtree.PointEntry) bool {
	for _, pred := range j.predOrder {
		switch pred {
		case PredDiameter:
			if d > j.maxPairDiameter() {
				return false
			}
		case PredMinDistance:
			if j.opts.MinDistance > 0 && d < j.opts.MinDistance {
				return false
			}
		case PredRegion:
			if r := j.opts.Region; r != nil && !r.ContainsPoint(a.P.Mid(b.P)) {
				return false
			}
		}
	}
	if t := j.weightedTopK(); t != nil {
		if t.weight(a)+t.weight(b) < t.scoreBound() {
			return false
		}
	}
	return true
}

// weightedTopK returns the run's weight-ranked top-k state, or nil when the
// run is unranked or diameter-ranked.
func (j *joiner) weightedTopK() *topkState {
	if j.shared != nil && j.shared.topk != nil && j.shared.topk.weight != nil {
		return j.shared.topk
	}
	return nil
}

// regionPrunesRect reports whether the Region window rules out every pair of
// the query point q with a point inside rect: the candidate circle centers
// are the midpoints, which form rect shrunk toward q by half — a window
// disjoint from that midpoint rect can produce no qualifying center.
func (j *joiner) regionPrunesRect(q geom.Point, rect geom.Rect) bool {
	r := j.opts.Region
	if r == nil || rect.IsEmpty() {
		return false
	}
	mid := geom.Rect{
		MinX: (rect.MinX + q.X) / 2,
		MinY: (rect.MinY + q.Y) / 2,
		MaxX: (rect.MaxX + q.X) / 2,
		MaxY: (rect.MaxY + q.Y) / 2,
	}
	return !mid.Intersects(*r)
}

// flushTopK emits the final top-k pairs in ascending ranking order through
// the run's original Collect/OnPair configuration. TopK runs cannot stream
// mid-join — a later, tighter pair may evict an earlier one — so this is the
// single emission point.
func (j *joiner) flushTopK() {
	for _, p := range j.shared.topk.sorted() {
		j.stats.Results++
		if j.opts.Collect {
			j.out = append(j.out, p)
		}
		if j.opts.OnPair != nil {
			j.opts.OnPair(p)
		}
		if j.opts.OnBatch != nil {
			j.batch = append(j.batch, p)
		}
	}
}
