package plan

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// optionsGuardAllowed lists the packages that may set core.Options.Algorithm
// directly: core itself, the rcj boundary (where the planner resolves it),
// and the experiment harness, whose whole job is forcing algorithms to
// measure them against each other.
var optionsGuardAllowed = []string{
	"internal/core",
	"internal/exp",
	"rcj",
}

// TestNoDirectAlgorithmConstruction is the vet-level guard on the planner
// boundary: every serving-path caller must route through rcj.Query (whose
// Resolve applies the planner, or pins a forced choice); constructing a
// core.Options literal with an explicit Algorithm anywhere else bypasses
// planning, cache keys, and the equivalence gate. Test files are exempt:
// exercising core.Join directly (e.g. against the quadtree backend) is what
// package tests are for.
func TestNoDirectAlgorithmConstruction(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var violations []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		for _, allowed := range optionsGuardAllowed {
			if rel == allowed || strings.HasPrefix(rel, allowed+"/") {
				return nil
			}
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parse %s: %w", rel, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			sel, ok := lit.Type.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Options" {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "core" {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Algorithm" {
					violations = append(violations,
						fmt.Sprintf("%s:%d", rel, fset.Position(kv.Pos()).Line))
				}
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("%s: core.Options{Algorithm: ...} constructed outside the planner boundary — use rcj.Query (Algorithm + ForceAlgorithm) so the plan resolves through Resolve", v)
	}
}
