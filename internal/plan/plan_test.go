package plan

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

func meta(count int) IndexMeta {
	return IndexMeta{
		Count:   count,
		Height:  3,
		LeafCap: 64,
		MBR:     geom.Rect{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000},
		HasMBR:  true,
	}
}

func TestPlanRuleSelection(t *testing.T) {
	big, small := meta(100_000), meta(50)

	if d := Plan(Request{Self: true}, small, small, Observed{}); d.Algorithm != core.AlgBrute {
		t.Fatalf("50x50 self join: got %s (%s), want BRUTE", d.Algorithm, d.Rule)
	}
	if d := Plan(Request{}, big, big, Observed{}); d.Algorithm != core.AlgOBJ || d.Rule != "default-obj" {
		t.Fatalf("100k x 100k: got %s (%s), want default-obj OBJ", d.Algorithm, d.Rule)
	}
	// A needle-sized Region window leaves almost no reachable outer points:
	// the per-point filter wins.
	needle := &geom.Rect{MinX: 500, MinY: 500, MaxX: 500.5, MaxY: 500.5}
	d := Plan(Request{Region: needle}, meta(1000), big, Observed{})
	if d.Algorithm != core.AlgINJ {
		t.Fatalf("needle region: got %s (%s), want INJ", d.Algorithm, d.Rule)
	}
	// A wide window over a big outer input stays with OBJ but prices the
	// pruned traversal.
	half := &geom.Rect{MinX: 0, MinY: 0, MaxX: 500, MaxY: 1000}
	d = Plan(Request{Region: half}, big, big, Observed{})
	if d.Algorithm != core.AlgOBJ || d.Rule != "region-pruned-obj" {
		t.Fatalf("half region: got %s (%s), want region-pruned-obj", d.Algorithm, d.Rule)
	}
	full := Plan(Request{}, big, big, Observed{})
	if d.EstAccesses >= full.EstAccesses {
		t.Fatalf("pruned estimate %d not below unconstrained %d", d.EstAccesses, full.EstAccesses)
	}
}

func TestPlanPredicateOrder(t *testing.T) {
	m := meta(10_000)
	// One predicate: nothing to reorder.
	if d := Plan(Request{MaxDiameter: 5}, m, m, Observed{}); len(d.PredicateOrder) != 0 {
		t.Fatalf("single predicate ordered: %v", d.PredicateOrder)
	}
	// A needle region is far more selective than a generous diameter bound
	// and a token MinDistance: region must come first.
	d := Plan(Request{
		MaxDiameter: 900,
		MinDistance: 0.001,
		Region:      &geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
	}, m, m, Observed{})
	if len(d.PredicateOrder) != 3 || d.PredicateOrder[0] != core.PredRegion {
		t.Fatalf("order %v, want region first", d.PredicateOrder)
	}
	// A top-k run's dynamic diameter bound outranks a loose region window.
	d = Plan(Request{
		TopK:   10,
		Region: &geom.Rect{MinX: 0, MinY: 0, MaxX: 950, MaxY: 950},
	}, m, m, Observed{})
	if len(d.PredicateOrder) < 2 || d.PredicateOrder[0] != core.PredDiameter {
		t.Fatalf("order %v, want diameter (dynamic top-k bound) first", d.PredicateOrder)
	}
}

func TestPlanParallelismAndPrefetch(t *testing.T) {
	m := meta(100_000)
	// Caller-fixed parallelism is echoed verbatim.
	if d := Plan(Request{Parallelism: 3}, m, m, Observed{MaxProcs: 16}); d.Parallelism != 3 {
		t.Fatalf("fixed parallelism: got %d", d.Parallelism)
	}
	// One CPU: never fan out.
	if d := Plan(Request{}, m, m, Observed{MaxProcs: 1}); d.Parallelism != 1 {
		t.Fatalf("1 cpu: got %d", d.Parallelism)
	}
	// Spare CPUs and big work: fan out, bounded by free scheduler slots.
	d := Plan(Request{}, m, m, Observed{MaxProcs: 16, FreeSlots: 2})
	if d.Parallelism != 2 {
		t.Fatalf("16 cpus, 2 free slots: got %d", d.Parallelism)
	}
	// Tiny work stays sequential even with CPUs to spare.
	if d := Plan(Request{}, meta(200), meta(200), Observed{MaxProcs: 16}); d.Parallelism != 1 {
		t.Fatalf("tiny join fanned out: %d", d.Parallelism)
	}

	// Prefetch: local → none; remote cold → deep; remote hot → shallow.
	if d := Plan(Request{}, m, m, Observed{}); d.PrefetchDepth != 0 {
		t.Fatalf("local prefetch %d", d.PrefetchDepth)
	}
	remote := m
	remote.Remote = true
	cold := Plan(Request{}, remote, remote, Observed{})
	hot := Plan(Request{}, remote, remote, Observed{BufferHitRatio: 0.95})
	if cold.PrefetchDepth <= hot.PrefetchDepth || hot.PrefetchDepth == 0 {
		t.Fatalf("prefetch cold=%d hot=%d", cold.PrefetchDepth, hot.PrefetchDepth)
	}
}

func TestPlanPricing(t *testing.T) {
	m := meta(100_000)
	remote := m
	remote.Remote = true
	// Remote faults are charged: modeled by default, measured when observed.
	modeled := Plan(Request{}, remote, remote, Observed{})
	measured := Plan(Request{}, remote, remote, Observed{FaultLatency: time.Millisecond})
	if modeled.EstFaults == 0 || modeled.EstCost <= measured.EstCost {
		t.Fatalf("modeled %v (faults %d) should exceed measured %v", modeled.EstCost, modeled.EstFaults, measured.EstCost)
	}
	// A hot buffer predicts fewer faults.
	hot := Plan(Request{}, remote, remote, Observed{BufferHitRatio: 0.9})
	if hot.EstFaults >= modeled.EstFaults {
		t.Fatalf("hot faults %d >= cold %d", hot.EstFaults, modeled.EstFaults)
	}
}

func TestPlanEpochsAndWeightBound(t *testing.T) {
	outer, inner := meta(5000), meta(5000)
	outer.Mutable, outer.Epoch = true, 42
	d := Plan(Request{TopK: 5, Weighted: true}, outer, inner, Observed{})
	if !d.UseWeightBound {
		t.Fatal("weighted top-k did not enable the weight bound")
	}
	if d.Epochs != [2]uint64{42, 0} {
		t.Fatalf("epochs %v", d.Epochs)
	}
	if d.String() == "" {
		t.Fatal("empty decision string")
	}
}
