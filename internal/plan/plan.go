// Package plan is the cost-based query planner: given the shape of one
// ring-constrained join request, metadata the index already carries (count,
// MBR, height — superblock fields for immutable indexes, live epoch state
// for mutable ones), and observed serving statistics, it picks the
// algorithm (INJ/BIJ/OBJ/brute), parallelism, prefetch depth, and pair-
// predicate evaluation order, using the paper's Section 5 cost model
// (internal/cost) to price the candidates.
//
// The planner is equivalency-gated, mirroring janus-datalog's phase
// reordering: a plan choice may change the cost of a query, never its
// result set. Every algorithm in the family returns the identical pair set,
// predicate order is a conjunction reorder, and parallelism only changes
// emission order — so the planner is free to be wrong about cost without
// ever being wrong about answers. The randomized equivalence suite in rcj
// holds it to that.
package plan

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/geom"
)

// IndexMeta describes one join input from metadata already on hand — no
// page is read to plan. For a mutable index the fields must come from the
// live epoch layer (LiveStats), not the sealed superblock: the delta makes
// the superblock count stale the moment a batch lands.
type IndexMeta struct {
	// Count is the number of indexed points (the live count for mutable
	// indexes).
	Count int
	// Height is the R-tree level count; 0 = unknown (estimated from Count).
	Height int
	// LeafCap is the leaf-node entry capacity; 0 = unknown (default used).
	LeafCap int
	// MBR is the dataset bounding rectangle when HasMBR is set.
	MBR    geom.Rect
	HasMBR bool
	// Remote marks an index whose pages are fetched over HTTP.
	Remote bool
	// Mutable marks a live (epoch-layered) index; Epoch is its current
	// sequence, carried so a decision can be pinned to the state it planned
	// against.
	Mutable bool
	Epoch   uint64
}

// Observed is runtime feedback from the serving stack. The zero value means
// "nothing observed yet" and yields conservative defaults.
type Observed struct {
	// BufferHitRatio is the pool's recent hit ratio in [0, 1]; 0 = cold or
	// unknown.
	BufferHitRatio float64
	// FaultLatency is the measured mean page-fetch wait (cost.Breakdown.
	// FaultLatency); 0 = use the paper's modeled cost.PageFaultCost for
	// remote indexes and nothing for local ones.
	FaultLatency time.Duration
	// FreeSlots / QueueDepth describe scheduler pressure: parallel fan-out
	// is pointless when concurrent requests already saturate the CPUs.
	FreeSlots  int
	QueueDepth int
	// MaxProcs caps parallelism; 0 = runtime.GOMAXPROCS.
	MaxProcs int
}

// Request is the predicate shape of the query being planned.
type Request struct {
	Self        bool
	MaxDiameter float64
	MinDistance float64
	Region      *geom.Rect
	TopK        int
	Limit       int
	// Weighted marks a school-bus query: TopK re-ranked by combined
	// endpoint weight. The planner answers with UseWeightBound, turning the
	// k-th score into a candidate-kill bound instead of materializing the
	// full join and sorting.
	Weighted bool
	// Parallelism, when > 0, is caller-fixed; the planner echoes it.
	Parallelism int
}

// Decision is one resolved plan.
type Decision struct {
	Algorithm   core.Algorithm
	Parallelism int
	// PrefetchDepth is the advisory readahead queue depth for remote
	// indexes: 0 = no readahead wanted (local pages, or a buffer so hot
	// that speculation only wastes fetches).
	PrefetchDepth int
	// PredicateOrder is the pair-predicate evaluation order, most selective
	// first. Empty when at most one predicate is set (nothing to reorder).
	PredicateOrder []core.Predicate
	// UseWeightBound enables the weight-ranked top-k bound function.
	UseWeightBound bool
	// EstAccesses / EstFaults / EstCost price the chosen plan under the
	// Section 5 model: accesses ≈ CPU, faults × fault latency ≈ I/O.
	EstAccesses int64
	EstFaults   int64
	EstCost     time.Duration
	// Rule names the decision for humans and metrics ("tiny-brute",
	// "small-outer-inj", "default-obj", ...).
	Rule string
	// Epochs pins the live epochs the decision planned against (outer,
	// inner); zero for immutable inputs.
	Epochs [2]uint64
}

// String renders the decision for per-request summaries.
func (d Decision) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "alg=%s par=%d rule=%s", d.Algorithm, d.Parallelism, d.Rule)
	if d.PrefetchDepth > 0 {
		fmt.Fprintf(&b, " prefetch=%d", d.PrefetchDepth)
	}
	if len(d.PredicateOrder) > 0 {
		b.WriteString(" order=")
		for _, p := range d.PredicateOrder {
			switch p {
			case core.PredDiameter:
				b.WriteByte('d')
			case core.PredMinDistance:
				b.WriteByte('m')
			case core.PredRegion:
				b.WriteByte('r')
			}
		}
	}
	if d.UseWeightBound {
		b.WriteString(" weight-bound")
	}
	fmt.Fprintf(&b, " est_accesses=%d est_cost=%s", d.EstAccesses, d.EstCost.Round(time.Microsecond))
	return b.String()
}

// Planning thresholds. These pick between strategies whose result sets are
// identical, so they only need to be roughly right; the estimates below
// carry the fine-grained comparison.
const (
	// bruteMaxWork: below this many point comparisons the quadratic
	// baseline beats any tree machinery (no heap, no node decode).
	bruteMaxWork = 64 * 64
	// injMaxOuter: with at most this many effective outer points the
	// per-point filter (INJ) costs about one leaf's bulk filter and avoids
	// bulk setup entirely.
	injMaxOuter = 48
	// parallelMinAccesses: fan a join out only when the estimated work
	// amortizes worker startup and emission locking.
	parallelMinAccesses = 5_000
	// defaultLeafCap approximates the R*-tree fanout when the superblock
	// does not say (4 KiB pages hold ~100 points; stay conservative).
	defaultLeafCap = 64
	// cpuPerAccess prices one node access for EstCost — the Section 5 CPU
	// proxy calibrated very roughly against the warm-join benchmarks; only
	// relative magnitudes matter to the planner.
	cpuPerAccess = 2 * time.Microsecond
)

// Plan resolves one query. outer is the Q input (the side whose leaves
// drive the join), inner is P; for a self-join pass the same meta twice.
func Plan(req Request, outer, inner IndexMeta, obs Observed) Decision {
	d := Decision{
		Epochs:         [2]uint64{outer.Epoch, inner.Epoch},
		PredicateOrder: predicateOrder(req, outer, inner),
		UseWeightBound: req.Weighted && req.TopK > 0,
	}

	nQ, nP := outer.Count, inner.Count
	sel := regionSelectivity(req.Region, outer)
	effOuter := int(math.Ceil(float64(nQ) * sel))

	switch {
	case nQ*nP <= bruteMaxWork:
		d.Algorithm = core.AlgBrute
		d.Rule = "tiny-brute"
		d.EstAccesses = int64(nQ+nP) / defaultLeafCap // leaf scans only
	case effOuter <= injMaxOuter:
		d.Algorithm = core.AlgINJ
		d.Rule = "small-outer-inj"
		d.EstAccesses = int64(effOuter) * int64(height(inner)+2)
	default:
		// OBJ dominates BIJ in every measured configuration (the paper's
		// Lemma 5 symmetric pruning is nearly free and always helps), so
		// BIJ is reachable only by forcing.
		d.Algorithm = core.AlgOBJ
		d.Rule = "default-obj"
		lq := int64(leaves(outer))
		if sel < 1 {
			lq = int64(math.Ceil(float64(lq) * sel))
			d.Rule = "region-pruned-obj"
		}
		// Per outer leaf the bulk filter descends the inner tree and touches
		// a handful of its leaves (height + a fringe of siblings).
		d.EstAccesses = nodes(outer) + lq*int64(height(inner)+6)
	}
	if d.UseWeightBound {
		d.Rule += "+weight-bound"
	}

	d.Parallelism = parallelism(req, obs, d.EstAccesses)
	d.PrefetchDepth = prefetchDepth(outer, inner, obs)
	d.EstFaults, d.EstCost = price(d.EstAccesses, outer, inner, obs)
	return d
}

// leaves estimates the leaf count of one input.
func leaves(m IndexMeta) int {
	cap := m.LeafCap
	if cap <= 0 {
		cap = defaultLeafCap
	}
	if m.Count <= 0 {
		return 0
	}
	return (m.Count + cap - 1) / cap
}

// nodes estimates the total node count: the leaf level plus a geometric
// series of internal levels (fanout ≈ leaf capacity).
func nodes(m IndexMeta) int64 {
	l := leaves(m)
	if l <= 1 {
		return int64(l)
	}
	cap := m.LeafCap
	if cap <= 1 {
		cap = defaultLeafCap
	}
	return int64(math.Ceil(float64(l) * float64(cap) / float64(cap-1)))
}

// height returns the input's tree height, estimating log_fanout(count) when
// the metadata does not carry it (mutable indexes: the delta has no fixed
// height).
func height(m IndexMeta) int {
	if m.Height > 0 {
		return m.Height
	}
	if m.Count <= 1 {
		return 1
	}
	cap := m.LeafCap
	if cap <= 1 {
		cap = defaultLeafCap
	}
	return int(math.Ceil(math.Log(float64(m.Count))/math.Log(float64(cap)))) + 1
}

// regionSelectivity estimates the fraction of the outer input a Region
// window leaves reachable: the area fraction of the window's intersection
// with the dataset MBR, widened to account for pair centers falling between
// datasets. 1 when there is no window or no MBR to judge against.
func regionSelectivity(r *geom.Rect, m IndexMeta) float64 {
	if r == nil || !m.HasMBR {
		return 1
	}
	mw, mh := m.MBR.MaxX-m.MBR.MinX, m.MBR.MaxY-m.MBR.MinY
	if mw <= 0 || mh <= 0 {
		return 1
	}
	ix := math.Max(0, math.Min(r.MaxX, m.MBR.MaxX)-math.Max(r.MinX, m.MBR.MinX))
	iy := math.Max(0, math.Min(r.MaxY, m.MBR.MaxY)-math.Max(r.MinY, m.MBR.MinY))
	// Centers are midpoints: a point up to half the window size outside the
	// window can still pair into it, so widen the qualifying strip.
	frac := ((ix + mw/8) / mw) * ((iy + mh/8) / mh)
	return math.Min(1, frac)
}

// predicateOrder ranks the pair predicates most-selective-first. The
// estimates are crude — what matters is putting a sharp Region window or a
// tight diameter bound ahead of a weak MinDistance floor; any order is
// result-identical.
func predicateOrder(req Request, outer, inner IndexMeta) []core.Predicate {
	type ranked struct {
		p   core.Predicate
		sel float64
	}
	var preds []ranked
	extent := extentOf(outer, inner)
	n := 0
	if req.MaxDiameter > 0 || req.TopK > 0 {
		sel := 0.5
		if req.MaxDiameter > 0 && extent > 0 {
			f := req.MaxDiameter / extent
			sel = math.Min(1, f*f)
		}
		if req.TopK > 0 && !req.Weighted {
			// The dynamic bound tightens toward the k nearest pairs —
			// treat as highly selective once warmed.
			sel = math.Min(sel, 0.1)
		}
		preds = append(preds, ranked{core.PredDiameter, sel})
		n++
	}
	if req.MinDistance > 0 {
		sel := 0.9 // drops only trivially-tight pairs in most datasets
		if extent > 0 {
			f := req.MinDistance / extent
			sel = math.Max(0.1, 1-math.Min(1, f*f))
		}
		preds = append(preds, ranked{core.PredMinDistance, sel})
		n++
	}
	if req.Region != nil {
		preds = append(preds, ranked{core.PredRegion, regionSelectivity(req.Region, outer)})
		n++
	}
	if n < 2 {
		return nil // one predicate (or none): nothing to reorder
	}
	sort.SliceStable(preds, func(a, b int) bool { return preds[a].sel < preds[b].sel })
	out := make([]core.Predicate, len(preds))
	for i, p := range preds {
		out[i] = p.p
	}
	return out
}

// extentOf returns the larger side of the combined MBR, the length scale
// distance predicates are judged against. 0 = unknown.
func extentOf(a, b IndexMeta) float64 {
	e := 0.0
	for _, m := range []IndexMeta{a, b} {
		if !m.HasMBR {
			continue
		}
		e = math.Max(e, math.Max(m.MBR.MaxX-m.MBR.MinX, m.MBR.MaxY-m.MBR.MinY))
	}
	return e
}

// parallelism picks the worker count: the caller's when fixed, otherwise
// fanned out only when the estimated work amortizes it, the host has spare
// CPUs, and concurrent requests are not already using them.
func parallelism(req Request, obs Observed, estAccesses int64) int {
	if req.Parallelism > 0 {
		return req.Parallelism
	}
	procs := obs.MaxProcs
	if procs <= 0 {
		procs = runtime.GOMAXPROCS(0)
	}
	if procs <= 1 || estAccesses < parallelMinAccesses {
		return 1
	}
	par := procs
	if par > 8 {
		par = 8
	}
	// Under concurrent load the scheduler's free slots are a better signal
	// of spare CPU than GOMAXPROCS.
	if obs.FreeSlots > 0 && obs.FreeSlots < par {
		par = obs.FreeSlots
	}
	if par < 1 {
		par = 1
	}
	return par
}

// prefetchDepth picks the advisory readahead queue depth: deep for a cold
// remote index (round trips to hide), shallow once the buffer is hot
// (speculation mostly wastes fetches), zero for local pages.
func prefetchDepth(outer, inner IndexMeta, obs Observed) int {
	if !outer.Remote && !inner.Remote {
		return 0
	}
	switch {
	case obs.BufferHitRatio < 0.5:
		return 64
	case obs.BufferHitRatio < 0.9:
		return 16
	default:
		return 4
	}
}

// price converts the access estimate into the Section 5 cost: faults are
// the accesses the buffer will miss, charged at the measured fault latency
// when one is observed, the paper's modeled 10 ms for remote pages, and
// nothing for local in-memory pages (their load time is already inside the
// CPU term).
func price(accesses int64, outer, inner IndexMeta, obs Observed) (int64, time.Duration) {
	missRatio := 1 - obs.BufferHitRatio
	if missRatio < 0 {
		missRatio = 0
	}
	faults := int64(math.Ceil(float64(accesses) * missRatio))
	perFault := obs.FaultLatency
	if perFault == 0 && (outer.Remote || inner.Remote) {
		perFault = cost.PageFaultCost
	}
	return faults, time.Duration(accesses)*cpuPerAccess + time.Duration(faults)*perFault
}
