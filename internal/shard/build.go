package shard

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"strings"

	"repro/rcj"
)

// marginSlack relaxes the overlap margin above the exact D/2 bound: circle
// centers are computed midpoints and witness containment allows
// geom.CoverTol of slack, so the margin absorbs both rounding slivers. The
// relative scale dwarfs either effect.
const marginSlack = 1 + 1e-9

// BuildConfig tunes a shard build.
type BuildConfig struct {
	// Shards is the number of grid cells (= shard indexes per dataset).
	Shards int
	// MaxDiameter is the deployment's serving contract: the largest ring
	// diameter queries may use. It derives the overlap margin (D/2, the max
	// ring radius), so it must be > 0 — an unbounded ring query cannot be
	// sharded, because a pair's witnesses could then live anywhere.
	MaxDiameter float64
	// Name labels the manifest.
	Name string
	// Self builds a single-dataset manifest (self-join serving); q must be
	// nil.
	Self bool
	// PageSize is the page size of the shard indexes (0 = rcj default).
	PageSize int
	// Packed saves shard indexes in the packed v3 format (SavePacked).
	Packed bool
}

// Build partitions the dataset(s) into cfg.Shards grid cells, writes one
// `.rcjx` index per cell and side next to manifestPath (named
// `<stem>.s<id>.p.rcjx` / `.q.rcjx`), and writes + returns the manifest.
// Every point is duplicated into each cell it lies within the overlap
// margin of, so each shard can answer its owned pairs (center ∈ cell,
// diameter ≤ MaxDiameter) without seeing any other shard.
func Build(manifestPath string, p, q []rcj.Point, cfg BuildConfig) (*Manifest, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("shard: invalid shard count %d", cfg.Shards)
	}
	if cfg.MaxDiameter <= 0 {
		return nil, errors.New("shard: MaxDiameter must be > 0 (the sharded deployment's largest serveable ring diameter)")
	}
	if cfg.Self && q != nil {
		return nil, errors.New("shard: self build takes a single dataset")
	}
	if len(p) == 0 {
		return nil, errors.New("shard: no points to partition")
	}
	bounds := pointBounds(append(append([]rcj.Point{}, p...), q...))
	nx, ny := gridShape(cfg.Shards, bounds)
	margin := cfg.MaxDiameter / 2 * marginSlack

	m := &Manifest{
		Version:     Version,
		Name:        cfg.Name,
		Self:        cfg.Self,
		Bounds:      bounds,
		GridNX:      nx,
		GridNY:      ny,
		MaxDiameter: cfg.MaxDiameter,
		Margin:      margin,
	}

	dir := filepath.Dir(manifestPath)
	stem := strings.TrimSuffix(filepath.Base(manifestPath), Ext)
	for id := 0; id < nx*ny; id++ {
		sh := Shard{ID: id, Cell: cellRect(bounds, nx, ny, id)}
		reach := sh.Cell.Expand(margin)
		psub := selectPoints(p, reach)
		qsub := selectPoints(q, reach)
		sh.PCount, sh.QCount = len(psub), len(qsub)
		// A shard with an empty input can own no pairs (every owned pair's
		// endpoints lie within the margin of its cell, so they would be in
		// the subsets): leave it file-less, the router never contacts it.
		populated := len(psub) > 0 && (cfg.Self || len(qsub) > 0)
		if populated {
			sh.P = fmt.Sprintf("%s.s%d.p.rcjx", stem, id)
			if err := saveShardIndex(filepath.Join(dir, sh.P), psub, cfg); err != nil {
				return nil, fmt.Errorf("shard %d: %w", id, err)
			}
			if !cfg.Self {
				sh.Q = fmt.Sprintf("%s.s%d.q.rcjx", stem, id)
				if err := saveShardIndex(filepath.Join(dir, sh.Q), qsub, cfg); err != nil {
					return nil, fmt.Errorf("shard %d: %w", id, err)
				}
			}
		} else {
			sh.PCount, sh.QCount = 0, 0
		}
		m.Shards = append(m.Shards, sh)
	}
	if err := m.Save(manifestPath); err != nil {
		return nil, err
	}
	return m, nil
}

// saveShardIndex builds and persists one shard-side index.
func saveShardIndex(path string, pts []rcj.Point, cfg BuildConfig) error {
	ix, err := rcj.BuildIndex(pts, rcj.IndexConfig{PageSize: cfg.PageSize})
	if err != nil {
		return err
	}
	defer ix.Close()
	if cfg.Packed {
		return ix.SavePacked(path)
	}
	return ix.Save(path)
}

// pointBounds returns the MBR of the points.
func pointBounds(pts []rcj.Point) Rect {
	b := Rect{math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)}
	for _, pt := range pts {
		b[0] = min(b[0], pt.X)
		b[1] = min(b[1], pt.Y)
		b[2] = max(b[2], pt.X)
		b[3] = max(b[3], pt.Y)
	}
	return b
}

// gridShape factors n into nx × ny cells whose aspect ratio over the data
// bounds is as square as possible (square cells keep the overlap-margin
// duplication low and Region fan-outs tight).
func gridShape(n int, b Rect) (nx, ny int) {
	w, h := b[2]-b[0], b[3]-b[1]
	best := math.Inf(1)
	nx, ny = n, 1
	for a := 1; a <= n; a++ {
		if n%a != 0 {
			continue
		}
		cw, ch := w/float64(a), h/float64(n/a)
		// Cost: how far the cell is from square; degenerate extents fall
		// back to preferring the most balanced factor pair.
		cost := math.Abs(math.Log(cw / ch)) // NaN/Inf-safe below
		if !(cost < math.Inf(1)) {
			cost = math.Abs(math.Log(float64(a) / float64(n/a)))
		}
		if cost < best {
			best = cost
			nx, ny = a, n/a
		}
	}
	return nx, ny
}

// cellRect returns cell id's closed rectangle in the row-major grid. Edge
// coordinates are shared bit-exactly between adjacent cells (both computed
// by this interpolation), and the outer edges are exactly the bounds.
func cellRect(b Rect, nx, ny, id int) Rect {
	col, row := id%nx, id/nx
	return Rect{
		gridCut(b[0], b[2], col, nx),
		gridCut(b[1], b[3], row, ny),
		gridCut(b[0], b[2], col+1, nx),
		gridCut(b[1], b[3], row+1, ny),
	}
}

// gridCut interpolates cut i of n between lo and hi, hitting both ends
// exactly.
func gridCut(lo, hi float64, i, n int) float64 {
	switch i {
	case 0:
		return lo
	case n:
		return hi
	}
	return lo + (hi-lo)*float64(i)/float64(n)
}

// selectPoints returns the points inside the closed rectangle.
func selectPoints(pts []rcj.Point, r Rect) []rcj.Point {
	var out []rcj.Point
	for _, pt := range pts {
		if r.Contains(pt.X, pt.Y) {
			out = append(out, pt)
		}
	}
	return out
}

// IndexName is the registry name a worker loads shard id's side index
// under ("s3.p", "s3.q") — the names the router addresses sub-queries to.
func IndexName(id int, side string) string {
	return fmt.Sprintf("s%d.%s", id, side)
}

// ResolveSource turns a manifest shard source into something OpenIndex can
// open: URLs and absolute paths pass through; relative paths resolve
// against base when set (joined with "/" — base is typically an http(s)
// prefix for shards served from object storage), else against the manifest
// file's directory.
func ResolveSource(manifestPath, src, base string) string {
	if src == "" || rcj.IsIndexURL(src) || filepath.IsAbs(src) {
		return src
	}
	if base != "" {
		return strings.TrimSuffix(base, "/") + "/" + src
	}
	return filepath.Join(filepath.Dir(manifestPath), src)
}
