// Package shard spatially partitions a join deployment: one dataset (or a
// P/Q dataset pair) is cut into a grid of `.rcjx` shard indexes plus a
// versioned, checksummed manifest (`.rcjm`) describing the partition, so a
// fleet of rcjd workers can each own a subset of the data and a router can
// scatter-gather queries across them (internal/router).
//
// The partition is by *pair ownership*, not point ownership: a shard owns
// every result pair whose enclosing-circle center (the midpoint of the two
// points) falls inside the shard's grid cell. Because a sharded deployment
// declares its maximum serveable ring diameter D at build time, both
// endpoints of an owned pair and every possible witness point of its circle
// lie within D/2 of the center — so duplicating each point into every cell
// it is within the overlap margin (≥ D/2) of makes each shard fully
// self-sufficient: the worker filters AND verifies its owned pairs exactly,
// with no cross-shard traffic. The router restricts each shard to its cell
// with a Region sub-query and enforces max_diameter ≤ D, which together
// make the union of per-shard answers exactly the unsharded join (pairs
// whose center lies exactly on a shared cell edge are emitted by the
// adjacent shards and deduplicated by the router).
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Ext is the manifest file extension.
const Ext = ".rcjm"

// Version is the current manifest format version.
const Version = 1

var (
	// ErrBadManifest reports a structurally invalid manifest.
	ErrBadManifest = errors.New("shard: bad manifest")
	// ErrBadVersion reports a manifest version this build cannot read.
	ErrBadVersion = errors.New("shard: unsupported manifest version")
	// ErrBadChecksum reports manifest content that does not match its
	// embedded checksum — a corrupted or hand-edited file.
	ErrBadChecksum = errors.New("shard: manifest checksum mismatch")
)

// Rect is an axis-aligned rectangle as [minX, minY, maxX, maxY] — the
// wire form shard cells and bounds use, matching the `region` array of the
// /join request.
type Rect [4]float64

// Intersects reports whether the closed rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	return r[0] <= o[2] && o[0] <= r[2] && r[1] <= o[3] && o[1] <= r[3]
}

// Intersect returns the closed intersection and whether it is non-empty.
func (r Rect) Intersect(o Rect) (Rect, bool) {
	out := Rect{max(r[0], o[0]), max(r[1], o[1]), min(r[2], o[2]), min(r[3], o[3])}
	return out, out[0] <= out[2] && out[1] <= out[3]
}

// Contains reports whether the closed rectangle contains the point.
func (r Rect) Contains(x, y float64) bool {
	return x >= r[0] && x <= r[2] && y >= r[1] && y <= r[3]
}

// Expand grows the rectangle by m on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{r[0] - m, r[1] - m, r[2] + m, r[3] + m}
}

// Shard describes one grid cell of the partition and the index files
// holding its points (cell expanded by the manifest's overlap margin).
type Shard struct {
	ID int `json:"id"`
	// Cell is the shard's owned region: the shard answers exactly the pairs
	// whose circle center lies in this closed rectangle. Interior cell
	// edges are shared with the adjacent shard; the router dedupes pairs
	// centered exactly on them.
	Cell Rect `json:"cell"`
	// P and Q are the shard's `.rcjx` sources — paths relative to the
	// manifest file, absolute paths, or http(s) URLs. Q is empty in a
	// single-dataset (self-join) manifest. Both are empty when the shard
	// owns no points at all (PCount and QCount zero): such a shard can
	// produce no pairs and is never contacted.
	P string `json:"p,omitempty"`
	Q string `json:"q,omitempty"`
	// PCount/QCount are the number of points in each shard index —
	// cell+margin residents, so points near cell edges count in several
	// shards.
	PCount int `json:"p_count"`
	QCount int `json:"q_count"`
}

// Empty reports whether the shard can produce no pairs (one of its inputs
// holds no points).
func (sh Shard) Empty() bool { return sh.P == "" }

// Manifest is the deployment descriptor of one sharded dataset (pair):
// what was partitioned, how the grid cuts it, the serving contract
// (MaxDiameter), and where each shard's indexes live. Serialized as
// indented JSON in a `.rcjm` file with an embedded CRC-32 checksum.
type Manifest struct {
	Version int `json:"version"`
	// Name labels the deployment (datagen kind, join name, ...).
	Name string `json:"name"`
	// Self marks a single-dataset manifest served as a self-join.
	Self bool `json:"self,omitempty"`
	// Bounds is the MBR of all partitioned points; the grid tiles it.
	Bounds Rect `json:"bounds"`
	// GridNX × GridNY cells tile Bounds row-major (x fastest); shard i's
	// cell is column i%GridNX, row i/GridNX.
	GridNX int `json:"grid_nx"`
	GridNY int `json:"grid_ny"`
	// MaxDiameter is the serving contract: the largest ring diameter a
	// query against this deployment may use. Queries without a bound are
	// clamped to it; wider bounds are rejected by the router, because
	// shards only hold the witness points needed up to this diameter.
	MaxDiameter float64 `json:"max_diameter"`
	// Margin is the overlap margin each cell was expanded by when its
	// points were selected: ≥ MaxDiameter/2, so an owned pair's endpoints
	// and witnesses are always shard-local.
	Margin float64 `json:"margin"`
	// Shards has GridNX*GridNY entries in cell order.
	Shards []Shard `json:"shards"`
	// Checksum is IEEE CRC-32 over the manifest's canonical JSON encoding
	// with this field zeroed.
	Checksum uint32 `json:"checksum"`
}

// checksum computes the manifest's content checksum: CRC-32 of the compact
// JSON encoding with the Checksum field zeroed. Computed from the decoded
// structure, not file bytes, so reformatting the file is harmless while any
// semantic corruption is caught.
func (m *Manifest) checksum() (uint32, error) {
	c := *m
	c.Checksum = 0
	data, err := json.Marshal(&c)
	if err != nil {
		return 0, err
	}
	return crc32.ChecksumIEEE(data), nil
}

// Validate checks structural invariants: version, grid/shard-count
// agreement, cells inside bounds, margin covering the diameter contract.
func (m *Manifest) Validate() error {
	if m.Version != Version {
		return fmt.Errorf("%w: %d (supported: %d)", ErrBadVersion, m.Version, Version)
	}
	if m.GridNX <= 0 || m.GridNY <= 0 {
		return fmt.Errorf("%w: grid %dx%d", ErrBadManifest, m.GridNX, m.GridNY)
	}
	if len(m.Shards) != m.GridNX*m.GridNY {
		return fmt.Errorf("%w: %d shards for a %dx%d grid", ErrBadManifest, len(m.Shards), m.GridNX, m.GridNY)
	}
	if m.MaxDiameter <= 0 {
		return fmt.Errorf("%w: max_diameter %g (must be > 0)", ErrBadManifest, m.MaxDiameter)
	}
	if m.Margin < m.MaxDiameter/2 {
		return fmt.Errorf("%w: margin %g below max_diameter/2 = %g", ErrBadManifest, m.Margin, m.MaxDiameter/2)
	}
	for i, sh := range m.Shards {
		if sh.ID != i {
			return fmt.Errorf("%w: shard %d has id %d", ErrBadManifest, i, sh.ID)
		}
		if sh.Cell[0] > sh.Cell[2] || sh.Cell[1] > sh.Cell[3] {
			return fmt.Errorf("%w: shard %d cell inverted", ErrBadManifest, i)
		}
		if !sh.Empty() && m.Self && sh.Q != "" {
			return fmt.Errorf("%w: self manifest shard %d has a q index", ErrBadManifest, i)
		}
		if !sh.Empty() && !m.Self && sh.Q == "" {
			return fmt.Errorf("%w: pair manifest shard %d lacks a q index", ErrBadManifest, i)
		}
	}
	return nil
}

// Encode serializes the manifest, stamping the version and checksum.
func (m *Manifest) Encode() ([]byte, error) {
	m.Version = Version
	if err := m.Validate(); err != nil {
		return nil, err
	}
	sum, err := m.checksum()
	if err != nil {
		return nil, err
	}
	m.Checksum = sum
	return json.MarshalIndent(m, "", "  ")
}

// Decode parses and verifies a manifest: well-formed JSON, supported
// version, matching checksum, valid structure.
func Decode(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("%w: %d (supported: %d)", ErrBadVersion, m.Version, Version)
	}
	sum, err := m.checksum()
	if err != nil {
		return nil, err
	}
	if sum != m.Checksum {
		return nil, fmt.Errorf("%w: computed %08x, recorded %08x", ErrBadChecksum, sum, m.Checksum)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Load reads and verifies the manifest at path.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Save encodes the manifest to path.
func (m *Manifest) Save(path string) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// InteriorCuts returns the interior grid lines — the x coordinates shared
// between horizontally adjacent cells and the y coordinates shared between
// vertically adjacent ones, taken bit-exactly from the stored cells. A pair
// whose center lies exactly on one of these lines is owned by every cell
// touching it; the router uses the cuts to bound its dedup set.
func (m *Manifest) InteriorCuts() (xs, ys []float64) {
	for col := 1; col < m.GridNX; col++ {
		xs = append(xs, m.Shards[col].Cell[0])
	}
	for row := 1; row < m.GridNY; row++ {
		ys = append(ys, m.Shards[row*m.GridNX].Cell[1])
	}
	return xs, ys
}
