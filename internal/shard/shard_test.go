package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/rcj"
)

func randomPoints(rng *rand.Rand, n int, span float64) []rcj.Point {
	pts := make([]rcj.Point, n)
	for i := range pts {
		pts[i] = rcj.Point{X: rng.Float64() * span, Y: rng.Float64() * span, ID: int64(i)}
	}
	return pts
}

func buildTestManifest(t *testing.T, nShards int, self bool) (*Manifest, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	p := randomPoints(rng, 300, 1000)
	var q []rcj.Point
	if !self {
		q = randomPoints(rng, 300, 1000)
		for i := range q {
			q[i].ID = int64(1000 + i)
		}
	}
	path := filepath.Join(t.TempDir(), "test.rcjm")
	m, err := Build(path, p, q, BuildConfig{
		Shards: nShards, MaxDiameter: 120, Name: "test", Self: self,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m, path
}

func TestManifestRoundTrip(t *testing.T) {
	m, path := buildTestManifest(t, 4, true)
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.GridNX*got.GridNY != 4 || len(got.Shards) != 4 {
		t.Fatalf("grid %dx%d, %d shards", got.GridNX, got.GridNY, len(got.Shards))
	}
	if got.MaxDiameter != m.MaxDiameter || got.Margin != m.Margin || got.Bounds != m.Bounds {
		t.Fatalf("round trip changed globals: %+v vs %+v", got, m)
	}
	for i, sh := range got.Shards {
		if sh != m.Shards[i] {
			t.Fatalf("shard %d round trip: %+v vs %+v", i, sh, m.Shards[i])
		}
	}
	// Shard files exist and open.
	for _, sh := range got.Shards {
		if sh.Empty() {
			continue
		}
		ix, err := rcj.OpenIndex(ResolveSource(path, sh.P, ""), rcj.IndexConfig{})
		if err != nil {
			t.Fatalf("open shard %d: %v", sh.ID, err)
		}
		if ix.Len() != sh.PCount {
			t.Errorf("shard %d: index holds %d points, manifest says %d", sh.ID, ix.Len(), sh.PCount)
		}
		ix.Close()
	}
}

func TestManifestCorruption(t *testing.T) {
	_, path := buildTestManifest(t, 2, true)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Semantic corruption (content no longer matches the checksum).
	tampered := strings.Replace(string(data), `"max_diameter": 120`, `"max_diameter": 999`, 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found")
	}
	if _, err := Decode([]byte(tampered)); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("tampered manifest: got %v, want ErrBadChecksum", err)
	}

	// Pure reformatting is fine: the checksum is over canonical content.
	reformatted := strings.ReplaceAll(string(data), "\n  ", "\n      ")
	if _, err := Decode([]byte(reformatted)); err != nil {
		t.Errorf("reformatted manifest rejected: %v", err)
	}

	// Unsupported version.
	future := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if _, err := Decode([]byte(future)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("future version: got %v, want ErrBadVersion", err)
	}

	// Garbage.
	if _, err := Decode([]byte("not json")); !errors.Is(err, ErrBadManifest) {
		t.Errorf("garbage: got %v, want ErrBadManifest", err)
	}
}

// TestBuildPartitionInvariants checks the geometric contract of the build:
// cells tile the bounds, every point lands in every shard whose
// margin-expanded cell contains it, and the margin honors the diameter.
func TestBuildPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomPoints(rng, 500, 2000)
	q := randomPoints(rng, 400, 2000)
	for i := range q {
		q[i].ID = int64(5000 + i)
	}
	path := filepath.Join(t.TempDir(), "inv.rcjm")
	const maxD = 150
	m, err := Build(path, p, q, BuildConfig{Shards: 6, MaxDiameter: maxD, Name: "inv"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Margin < maxD/2 {
		t.Fatalf("margin %g < D/2 = %g", m.Margin, float64(maxD)/2)
	}
	// Cells tile the bounds: shared edges, outer edges exact.
	for id, sh := range m.Shards {
		col, row := id%m.GridNX, id/m.GridNX
		c := sh.Cell
		if col == 0 && c[0] != m.Bounds[0] || row == 0 && c[1] != m.Bounds[1] ||
			col == m.GridNX-1 && c[2] != m.Bounds[2] || row == m.GridNY-1 && c[3] != m.Bounds[3] {
			t.Errorf("shard %d cell %v not flush with bounds %v", id, c, m.Bounds)
		}
		if col > 0 && c[0] != m.Shards[id-1].Cell[2] {
			t.Errorf("shard %d west edge %v != east edge of shard %d", id, c[0], id-1)
		}
		if row > 0 && c[1] != m.Shards[id-m.GridNX].Cell[3] {
			t.Errorf("shard %d south edge %v != north edge of shard %d", id, c[1], id-m.GridNX)
		}
	}
	// Every point is in exactly the shards whose expanded cell contains it.
	for _, sh := range m.Shards {
		reach := sh.Cell.Expand(m.Margin)
		wantP := 0
		for _, pt := range p {
			if reach.Contains(pt.X, pt.Y) {
				wantP++
			}
		}
		if sh.PCount != wantP && !sh.Empty() {
			t.Errorf("shard %d: PCount %d, want %d margin residents", sh.ID, sh.PCount, wantP)
		}
	}
	xs, ys := m.InteriorCuts()
	if len(xs) != m.GridNX-1 || len(ys) != m.GridNY-1 {
		t.Errorf("interior cuts %d/%d for grid %dx%d", len(xs), len(ys), m.GridNX, m.GridNY)
	}
}

// TestShardedJoinEquivalence is the library-level half of the shard
// correctness story: for each shard, running the join over the shard
// indexes restricted to the shard's cell (Region) under the manifest's
// diameter bound, then unioning across shards with boundary dedup, must
// reproduce the unsharded join exactly — including pairs whose two points
// straddle a cell boundary and pairs invalidated only by a witness from a
// neighboring cell.
func TestShardedJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const maxD = 180
	for _, tc := range []struct {
		name   string
		self   bool
		shards int
	}{
		{"pair-4", false, 4},
		{"self-6", true, 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := randomPoints(rng, 400, 1500)
			var q []rcj.Point
			if !tc.self {
				q = randomPoints(rng, 400, 1500)
				for i := range q {
					q[i].ID = int64(9000 + i)
				}
			}
			path := filepath.Join(t.TempDir(), "eq.rcjm")
			m, err := Build(path, p, q, BuildConfig{
				Shards: tc.shards, MaxDiameter: maxD, Self: tc.self, Name: tc.name,
			})
			if err != nil {
				t.Fatal(err)
			}

			eng := rcj.NewEngine(rcj.EngineConfig{})
			qry := rcj.Query{MaxDiameter: maxD}
			want := unshardedPairs(t, eng, p, q, tc.self, qry)

			got := map[string]bool{}
			for _, sh := range m.Shards {
				if sh.Empty() {
					continue
				}
				cell := sh.Cell
				sq := qry
				sq.Region = &rcj.Rect{MinX: cell[0], MinY: cell[1], MaxX: cell[2], MaxY: cell[3]}
				pix, err := eng.OpenIndex(ResolveSource(path, sh.P, ""), rcj.IndexConfig{})
				if err != nil {
					t.Fatal(err)
				}
				var pairs []rcj.Pair
				if tc.self {
					pairs, _, err = eng.RunSelfCollect(context.Background(), pix, sq)
				} else {
					var qix *rcj.Index
					qix, err = eng.OpenIndex(ResolveSource(path, sh.Q, ""), rcj.IndexConfig{})
					if err != nil {
						t.Fatal(err)
					}
					// The outer input is Q, the inner P (server convention).
					pairs, _, err = eng.RunCollect(context.Background(), qix, pix, sq)
					defer qix.Close()
				}
				if err != nil {
					t.Fatalf("shard %d join: %v", sh.ID, err)
				}
				for _, pr := range pairs {
					got[pairKey(pr)] = true // union with dedup: boundary-centered pairs arrive from 2+ shards
				}
				pix.Close()
			}
			if len(got) != len(want) {
				t.Errorf("sharded union has %d pairs, unsharded %d", len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Errorf("pair %s missing from sharded union", k)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("pair %s in sharded union but not in unsharded join", k)
				}
			}
		})
	}
}

func unshardedPairs(t *testing.T, eng *rcj.Engine, p, q []rcj.Point, self bool, qry rcj.Query) map[string]bool {
	t.Helper()
	pix, err := eng.BuildIndex(p, rcj.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pix.Close()
	var pairs []rcj.Pair
	if self {
		pairs, _, err = eng.RunSelfCollect(context.Background(), pix, qry)
	} else {
		var qix *rcj.Index
		qix, err = eng.BuildIndex(q, rcj.IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer qix.Close()
		pairs, _, err = eng.RunCollect(context.Background(), qix, pix, qry)
	}
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, pr := range pairs {
		out[pairKey(pr)] = true
	}
	return out
}

func pairKey(pr rcj.Pair) string {
	return fmt.Sprintf("%d|%d", pr.P.ID, pr.Q.ID)
}
