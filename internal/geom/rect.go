package geom

import "math"

// Rect is an axis-aligned rectangle, the minimum bounding rectangle (MBR)
// used by R-tree entries. A degenerate rectangle with Min == Max represents
// a single point.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{p.X, p.Y, p.X, p.Y}
}

// EmptyRect returns the identity element for Union: a rectangle that contains
// nothing and unions to its argument.
func EmptyRect() Rect {
	return Rect{math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)}
}

// IsEmpty reports whether r is the empty rectangle (contains no points).
func (r Rect) IsEmpty() bool {
	return r.MinX > r.MaxX || r.MinY > r.MaxY
}

// Valid reports whether r is a well-formed (possibly degenerate) rectangle
// with finite coordinates.
func (r Rect) Valid() bool {
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY &&
		!math.IsInf(r.MinX, 0) && !math.IsInf(r.MinY, 0) &&
		!math.IsInf(r.MaxX, 0) && !math.IsInf(r.MaxY, 0) &&
		!math.IsNaN(r.MinX) && !math.IsNaN(r.MinY) &&
		!math.IsNaN(r.MaxX) && !math.IsNaN(r.MaxY)
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		math.Min(r.MinX, o.MinX),
		math.Min(r.MinY, o.MinY),
		math.Max(r.MaxX, o.MaxX),
		math.Max(r.MaxY, o.MaxY),
	}
}

// ExtendPoint returns the smallest rectangle covering r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(RectFromPoint(p))
}

// Area returns the area of r (zero for degenerate rectangles).
func (r Rect) Area() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) * (r.MaxY - r.MinY)
}

// Margin returns half the perimeter of r, the quantity minimized by the
// R*-tree split-axis selection.
func (r Rect) Margin() float64 {
	if r.IsEmpty() {
		return 0
	}
	return (r.MaxX - r.MinX) + (r.MaxY - r.MinY)
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// Intersects reports whether r and o share at least one point (touching
// edges count as intersecting).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX &&
		r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Intersection returns the overlap region of r and o, which may be empty.
func (r Rect) Intersection(o Rect) Rect {
	return Rect{
		math.Max(r.MinX, o.MinX),
		math.Max(r.MinY, o.MinY),
		math.Min(r.MaxX, o.MaxX),
		math.Min(r.MaxY, o.MaxY),
	}
}

// OverlapArea returns the area of the intersection of r and o.
func (r Rect) OverlapArea(o Rect) float64 {
	return r.Intersection(o).Area()
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	return r.MinX <= p.X && p.X <= r.MaxX && r.MinY <= p.Y && p.Y <= r.MaxY
}

// ContainsRect reports whether o lies entirely within r.
func (r Rect) ContainsRect(o Rect) bool {
	if o.IsEmpty() {
		return true
	}
	return r.MinX <= o.MinX && o.MaxX <= r.MaxX &&
		r.MinY <= o.MinY && o.MaxY <= r.MaxY
}

// MinDist2 returns the squared minimum distance from p to any point of r
// (zero when p is inside r). This is the MINDIST metric of Roussopoulos et
// al. used to order the incremental-NN heap.
func (r Rect) MinDist2(p Point) float64 {
	var dx, dy float64
	switch {
	case p.X < r.MinX:
		dx = r.MinX - p.X
	case p.X > r.MaxX:
		dx = p.X - r.MaxX
	}
	switch {
	case p.Y < r.MinY:
		dy = r.MinY - p.Y
	case p.Y > r.MaxY:
		dy = p.Y - r.MaxY
	}
	return dx*dx + dy*dy
}

// MinDist returns the minimum distance from p to any point of r.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDist2(p))
}

// MaxDist2 returns the squared maximum distance from p to any point of r,
// attained at the corner farthest from p.
func (r Rect) MaxDist2(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return dx*dx + dy*dy
}

// RectMinDist2 returns the squared minimum distance between any point of r
// and any point of o (zero when they intersect). Used by the distance-based
// baseline joins to prune node pairs.
func RectMinDist2(r, o Rect) float64 {
	var dx, dy float64
	if r.MaxX < o.MinX {
		dx = o.MinX - r.MaxX
	} else if o.MaxX < r.MinX {
		dx = r.MinX - o.MaxX
	}
	if r.MaxY < o.MinY {
		dy = o.MinY - r.MaxY
	} else if o.MaxY < r.MinY {
		dy = r.MinY - o.MaxY
	}
	return dx*dx + dy*dy
}

// Corners returns the four corner points of r in counterclockwise order
// starting from (MinX, MinY).
func (r Rect) Corners() [4]Point {
	return [4]Point{
		{r.MinX, r.MinY},
		{r.MaxX, r.MinY},
		{r.MaxX, r.MaxY},
		{r.MinX, r.MaxY},
	}
}

// Enlargement returns how much the area of r grows when extended to cover o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}
