package geom

import "math"

// CoverTol is the relative tolerance used by the closed-circle containment
// predicate. A point at distance d from the circle center is considered
// covered when d² ≤ r²·(1+CoverTol). The tolerance absorbs the rounding in
// midpoint/radius construction so that the two defining points of an
// enclosing circle always test as lying on it, while points even marginally
// outside do not.
const CoverTol = 1e-9

// Circle is a circle given by center and radius. For ring-constrained join
// pairs the circle is the smallest circle enclosing the two points, i.e. the
// circle whose diameter is the segment between them.
type Circle struct {
	Center Point
	Radius float64
}

// EnclosingCircle returns the smallest circle enclosing p and q: centered at
// their midpoint with radius half their distance.
func EnclosingCircle(p, q Point) Circle {
	return Circle{Center: p.Mid(q), Radius: p.Dist(q) / 2}
}

// Covers reports whether x lies inside or on c (the closed disk), using the
// library-wide tolerance. This single predicate decides RCJ validity in
// every algorithm — brute force and index-based — so they agree exactly.
func (c Circle) Covers(x Point) bool {
	return c.Center.Dist2(x) <= c.Radius*c.Radius*(1+CoverTol)
}

// StrictlyInside reports whether x lies strictly inside c with a symmetric
// tolerance margin. Points on the boundary (within tolerance) are not
// strictly inside.
func (c Circle) StrictlyInside(x Point) bool {
	return c.Center.Dist2(x) < c.Radius*c.Radius*(1-CoverTol)
}

// IntersectsRect reports whether the closed disk c and rectangle r share at
// least one point. Used by the verification algorithm (Algorithm 3) to decide
// whether a subtree may contain a point covered by c.
func (c Circle) IntersectsRect(r Rect) bool {
	return r.MinDist2(c.Center) <= c.Radius*c.Radius*(1+CoverTol)
}

// ContainsRect reports whether the whole rectangle r lies inside the closed
// disk c, i.e. the corner farthest from the center is covered.
func (c Circle) ContainsRect(r Rect) bool {
	return r.MaxDist2(c.Center) <= c.Radius*c.Radius*(1+CoverTol)
}

// ContainsFace reports whether at least one face (side) of r lies entirely
// inside the closed disk c. By the MBR property every face of an R-tree MBR
// touches at least one indexed point, so a face inside the circle guarantees
// the subtree contains a point covered by c (Algorithm 3, case "entry with a
// face inside the circle") — the candidate pair can be rejected without
// descending into the subtree.
//
// A segment lies inside a disk iff both endpoints do (the disk is convex), so
// it suffices to test consecutive corner pairs.
func (c Circle) ContainsFace(r Rect) bool {
	corners := r.Corners()
	in := [4]bool{}
	for i, pt := range corners {
		in[i] = c.Covers(pt)
	}
	for i := 0; i < 4; i++ {
		if in[i] && in[(i+1)%4] {
			return true
		}
	}
	return false
}

// BoundingRect returns the axis-aligned bounding rectangle of c, used to fit
// circles into the plane-sweep batch intersection machinery.
func (c Circle) BoundingRect() Rect {
	return Rect{
		c.Center.X - c.Radius, c.Center.Y - c.Radius,
		c.Center.X + c.Radius, c.Center.Y + c.Radius,
	}
}

// Diameter returns the diameter of c, the quantity the paper's tourist
// recommendation scenario sorts RCJ results by.
func (c Circle) Diameter() float64 {
	return 2 * c.Radius
}

// L1Circle is the Manhattan-metric analogue of Circle: the set of points
// within L1 distance Radius of Center, geometrically a diamond (a square
// rotated 45°). It supports the paper's future-work generalization of the
// ring constraint to the L1 metric.
type L1Circle struct {
	Center Point
	Radius float64
}

// L1EnclosingCircle returns the smallest L1 ball enclosing p and q that is
// centered at a point equidistant (in L1) from both: centered at the midpoint
// with radius half the L1 distance. The midpoint minimizes the maximum L1
// distance to p and q, mirroring the fairness property of the Euclidean
// construction.
func L1EnclosingCircle(p, q Point) L1Circle {
	return L1Circle{Center: p.Mid(q), Radius: p.L1Dist(q) / 2}
}

// Covers reports whether x lies inside or on the closed L1 ball.
func (c L1Circle) Covers(x Point) bool {
	return c.Center.L1Dist(x) <= c.Radius*(1+CoverTol)
}

// IntersectsRect reports whether the closed L1 ball intersects r, using the
// minimum L1 distance from the center to the rectangle.
func (c L1Circle) IntersectsRect(r Rect) bool {
	var dx, dy float64
	switch {
	case c.Center.X < r.MinX:
		dx = r.MinX - c.Center.X
	case c.Center.X > r.MaxX:
		dx = c.Center.X - r.MaxX
	}
	switch {
	case c.Center.Y < r.MinY:
		dy = r.MinY - c.Center.Y
	case c.Center.Y > r.MaxY:
		dy = c.Center.Y - r.MaxY
	}
	return dx+dy <= c.Radius*(1+CoverTol)
}

// ContainsFace reports whether at least one side of r lies entirely inside
// the closed L1 ball. As with the Euclidean disk, the L1 ball is convex, so a
// segment is inside iff both endpoints are.
func (c L1Circle) ContainsFace(r Rect) bool {
	corners := r.Corners()
	in := [4]bool{}
	for i, pt := range corners {
		in[i] = c.Covers(pt)
	}
	for i := 0; i < 4; i++ {
		if in[i] && in[(i+1)%4] {
			return true
		}
	}
	return false
}

// MaxL1Dist returns the maximum L1 distance from p to any point of r.
func MaxL1Dist(p Point, r Rect) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return dx + dy
}
