package geom

import (
	"math"
	"testing"
)

func TestPointEqual(t *testing.T) {
	a := Point{1, 2}
	if !a.Equal(Point{1, 2}) || a.Equal(Point{1, 2.0001}) {
		t.Fatal("Equal is wrong")
	}
}

func TestRectConstructorsAndValidity(t *testing.T) {
	p := Point{3, 4}
	r := RectFromPoint(p)
	if r != (Rect{3, 4, 3, 4}) || !r.Valid() || r.IsEmpty() {
		t.Fatalf("RectFromPoint: %+v", r)
	}
	if got := r.ExtendPoint(Point{5, 2}); got != (Rect{3, 2, 5, 4}) {
		t.Fatalf("ExtendPoint: %+v", got)
	}
	if EmptyRect().Valid() {
		t.Fatal("empty rect must be invalid")
	}
	if (Rect{MinX: math.NaN(), MaxX: 1, MaxY: 1}).Valid() {
		t.Fatal("NaN rect must be invalid")
	}
	if (Rect{0, 0, math.Inf(1), 1}).Valid() {
		t.Fatal("infinite rect must be invalid")
	}
}

func TestRectMinDistAndEnlargement(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if got := r.MinDist(Point{5, 6}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("MinDist %g, want 5", got)
	}
	if got := r.Enlargement(Rect{0, 0, 4, 2}); got != 4 {
		t.Fatalf("Enlargement %g, want 4", got)
	}
	if got := r.Enlargement(Rect{1, 1, 2, 2}); got != 0 {
		t.Fatalf("contained enlargement %g, want 0", got)
	}
}

func TestPsiMinusContainsRectHelper(t *testing.T) {
	q := Point{0, 0}
	p := Point{10, 0}
	// Rect entirely beyond L(q,p) (x=10).
	if !PsiMinusContainsRect(q, p, Rect{11, -5, 20, 5}) {
		t.Fatal("rect beyond the line must be contained")
	}
	if PsiMinusContainsRect(q, p, Rect{5, -5, 20, 5}) {
		t.Fatal("straddling rect must not be contained")
	}
}

func TestCircleDiameter(t *testing.T) {
	c := Circle{Radius: 2.5}
	if c.Diameter() != 5 {
		t.Fatalf("Diameter %g", c.Diameter())
	}
}

func TestL1CircleContainsFace(t *testing.T) {
	c := L1Circle{Center: Point{5, 5}, Radius: 4}
	// Left face of this rect (from (4,4) to (4,6)) is inside the diamond.
	if !c.ContainsFace(Rect{4, 4, 30, 6}) {
		t.Fatal("left face lies inside the L1 ball")
	}
	if c.ContainsFace(Rect{20, 20, 30, 30}) {
		t.Fatal("distant rect has no face inside")
	}
	// A rect whose corners all poke out (diamond inscribed): corners of the
	// bounding square of the diamond are outside it.
	if c.ContainsFace(Rect{1, 1, 9, 9}) {
		t.Fatal("bounding-square corners are outside the diamond")
	}
}

func TestStrictPrunerSetAdd(t *testing.T) {
	var s PrunerSet
	q := Point{0, 0}
	s.AddStrict(q, Point{10, 0})
	if s.PrunesPoint(Point{10, 3}) {
		t.Fatal("strict set must exclude the boundary")
	}
	if !s.PrunesPoint(Point{11, 0}) {
		t.Fatal("strict set must include the open side")
	}
}
