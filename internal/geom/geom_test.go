package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genPoint maps arbitrary float pairs into the domain.
func genPoint(a, b float64) Point {
	return Point{X: squash(a), Y: squash(b)}
}

func squash(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(math.Abs(v), 10000)
}

func TestDistBasics(t *testing.T) {
	a := Point{X: 0, Y: 0}
	b := Point{X: 3, Y: 4}
	if d := a.Dist(b); d != 5 {
		t.Fatalf("dist = %g, want 5", d)
	}
	if d2 := a.Dist2(b); d2 != 25 {
		t.Fatalf("dist2 = %g, want 25", d2)
	}
	if m := a.Mid(b); m != (Point{X: 1.5, Y: 2}) {
		t.Fatalf("mid = %+v", m)
	}
	if d := a.L1Dist(b); d != 7 {
		t.Fatalf("L1 dist = %g, want 7", d)
	}
}

func TestQuickDistSymmetricAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := genPoint(ax, ay), genPoint(bx, by), genPoint(cx, cy)
		if a.Dist(b) != b.Dist(a) {
			return false
		}
		// Triangle inequality with a float slack.
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRectOps(t *testing.T) {
	r := Rect{0, 0, 10, 5}
	if r.Area() != 50 {
		t.Fatalf("area %g", r.Area())
	}
	if r.Margin() != 15 {
		t.Fatalf("margin %g", r.Margin())
	}
	if r.Center() != (Point{5, 2.5}) {
		t.Fatalf("center %+v", r.Center())
	}
	o := Rect{5, 2, 20, 20}
	if !r.Intersects(o) {
		t.Fatal("should intersect")
	}
	if got := r.OverlapArea(o); got != 15 {
		t.Fatalf("overlap %g, want 15", got)
	}
	if u := r.Union(o); u != (Rect{0, 0, 20, 20}) {
		t.Fatalf("union %+v", u)
	}
	if r.ContainsRect(o) {
		t.Fatal("containment is wrong")
	}
	if !(Rect{-1, -1, 30, 30}).ContainsRect(o) {
		t.Fatal("containment missed")
	}
	if e := EmptyRect(); !e.IsEmpty() || e.Area() != 0 {
		t.Fatal("empty rect misbehaves")
	}
	if e := EmptyRect().Union(r); e != r {
		t.Fatal("empty union identity broken")
	}
}

func TestQuickUnionContains(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		r := rectFrom(a1, a2, a3, a4)
		o := rectFrom(b1, b2, b3, b4)
		u := r.Union(o)
		return u.ContainsRect(r) && u.ContainsRect(o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func rectFrom(a, b, c, d float64) Rect {
	x1, x2 := squash(a), squash(b)
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	y1, y2 := squash(c), squash(d)
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{x1, y1, x2, y2}
}

func TestQuickMinDistZeroInside(t *testing.T) {
	f := func(a1, a2, a3, a4, px, py float64) bool {
		r := rectFrom(a1, a2, a3, a4)
		p := genPoint(px, py)
		d2 := r.MinDist2(p)
		if r.ContainsPoint(p) {
			return d2 == 0
		}
		// Outside: strictly positive and attained by some corner or edge —
		// at least never more than the nearest corner distance.
		corners := r.Corners()
		minCorner := math.Inf(1)
		for _, c := range corners {
			if d := p.Dist2(c); d < minCorner {
				minCorner = d
			}
		}
		return d2 > 0 && d2 <= minCorner+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxDistDominatesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(a1, a2, a3, a4, px, py float64) bool {
		r := rectFrom(a1, a2, a3, a4)
		p := genPoint(px, py)
		maxD2 := r.MaxDist2(p)
		// Sample interior points; none may exceed MaxDist2.
		for i := 0; i < 16; i++ {
			s := Point{
				X: r.MinX + rng.Float64()*(r.MaxX-r.MinX),
				Y: r.MinY + rng.Float64()*(r.MaxY-r.MinY),
			}
			if p.Dist2(s) > maxD2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEnclosingCircle(t *testing.T) {
	p := Point{0, 0}
	q := Point{6, 8}
	c := EnclosingCircle(p, q)
	if c.Radius != 5 {
		t.Fatalf("radius %g, want 5", c.Radius)
	}
	if c.Center != (Point{3, 4}) {
		t.Fatalf("center %+v", c.Center)
	}
	// Both defining points lie on the closed circle.
	if !c.Covers(p) || !c.Covers(q) {
		t.Fatal("defining points not covered")
	}
	// But not strictly inside.
	if c.StrictlyInside(p) || c.StrictlyInside(q) {
		t.Fatal("defining points must not be strictly inside")
	}
	if !c.Covers(c.Center) {
		t.Fatal("center not covered")
	}
}

func TestQuickEnclosingCircleCoversEndpoints(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		p, q := genPoint(ax, ay), genPoint(bx, by)
		c := EnclosingCircle(p, q)
		return c.Covers(p) && c.Covers(q) && !c.StrictlyInside(p) && !c.StrictlyInside(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCircleRectRelations(t *testing.T) {
	c := Circle{Center: Point{5, 5}, Radius: 3}
	if !c.IntersectsRect(Rect{4, 4, 6, 6}) {
		t.Fatal("interior rect should intersect")
	}
	if c.IntersectsRect(Rect{20, 20, 30, 30}) {
		t.Fatal("distant rect should not intersect")
	}
	if !c.ContainsRect(Rect{4, 4, 6, 6}) {
		t.Fatal("small central rect should be contained")
	}
	if c.ContainsRect(Rect{0, 0, 10, 10}) {
		t.Fatal("big rect cannot be contained")
	}
	// A rect with one side crossing the disk: left face at x=4.5 from y=4
	// to y=6 is inside, right face at x=30 is far outside.
	if !c.ContainsFace(Rect{4.5, 4, 30, 6}) {
		t.Fatal("left face lies inside the circle")
	}
	if c.ContainsFace(Rect{9, 9, 30, 30}) {
		t.Fatal("no face is inside")
	}
}

func TestQuickContainsRectImpliesIntersects(t *testing.T) {
	f := func(cx, cy, cr, a1, a2, a3, a4 float64) bool {
		c := Circle{Center: genPoint(cx, cy), Radius: squash(cr) / 10}
		r := rectFrom(a1, a2, a3, a4)
		if c.ContainsRect(r) && !c.IntersectsRect(r) {
			return false
		}
		if c.ContainsRect(r) && !c.ContainsFace(r) {
			return false // full containment implies every face inside
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLemma1Pruning verifies the geometric heart of the paper: a point p'
// in Ψ−(q, p) always yields an enclosing circle covering p, so the pruned
// pair is genuinely invalid.
func TestLemma1Pruning(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		q := Point{rng.Float64() * 100, rng.Float64() * 100}
		p := Point{rng.Float64() * 100, rng.Float64() * 100}
		pp := Point{rng.Float64() * 100, rng.Float64() * 100}
		if p == q {
			continue
		}
		if PsiMinusContainsPoint(q, p, pp) {
			c := EnclosingCircle(pp, q)
			if !c.Covers(p) {
				t.Fatalf("Lemma 1 violated: q=%+v p=%+v p'=%+v: p not covered by circle of <p',q>", q, p, pp)
			}
		}
	}
}

// TestLemma2Maximality verifies the converse direction: a point p' strictly
// in Ψ+(q, p) yields an enclosing circle NOT strictly containing p, so the
// pruning region cannot be enlarged (Lemma 2).
func TestLemma2Maximality(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for i := 0; i < 20000; i++ {
		q := Point{rng.Float64() * 100, rng.Float64() * 100}
		p := Point{rng.Float64() * 100, rng.Float64() * 100}
		pp := Point{rng.Float64() * 100, rng.Float64() * 100}
		if p == q {
			continue
		}
		if !PsiMinusContainsPoint(q, p, pp) {
			c := EnclosingCircle(pp, q)
			if c.StrictlyInside(p) {
				t.Fatalf("Lemma 2 violated: p strictly inside circle of unpruned <p',q>: q=%+v p=%+v p'=%+v", q, p, pp)
			}
		}
	}
}

// TestLemma3RectPruning verifies the MBR lift: if PrunesRect holds, every
// point of the rectangle is individually pruned.
func TestLemma3RectPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for i := 0; i < 5000; i++ {
		q := Point{rng.Float64() * 100, rng.Float64() * 100}
		p := Point{rng.Float64() * 100, rng.Float64() * 100}
		r := rectFrom(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		pr := NewPruner(q, p)
		if pr.PrunesRect(r) {
			for _, corner := range r.Corners() {
				if !pr.PrunesPoint(corner) {
					t.Fatalf("Lemma 3 violated at corner %+v", corner)
				}
			}
			// And a few interior samples.
			for k := 0; k < 8; k++ {
				s := Point{
					X: r.MinX + rng.Float64()*(r.MaxX-r.MinX),
					Y: r.MinY + rng.Float64()*(r.MaxY-r.MinY),
				}
				if !pr.PrunesPoint(s) {
					t.Fatalf("Lemma 3 violated at interior %+v", s)
				}
			}
		}
	}
}

func TestStrictPrunerBoundary(t *testing.T) {
	q := Point{0, 0}
	p := Point{4, 0}
	closed := NewPruner(q, p)
	strict := NewStrictPruner(q, p)
	onLine := Point{4, 7} // on L(q,p): x = 4
	if !closed.PrunesPoint(onLine) {
		t.Fatal("closed pruner must include the boundary")
	}
	if strict.PrunesPoint(onLine) {
		t.Fatal("strict pruner must exclude the boundary")
	}
	if !strict.PrunesPoint(Point{4.1, 7}) {
		t.Fatal("strict pruner must include the open side")
	}
	// p itself is on the line.
	if strict.PrunesPoint(p) {
		t.Fatal("strict pruner must not prune its own boundary point")
	}
}

func TestPrunerSet(t *testing.T) {
	var s PrunerSet
	q := Point{0, 0}
	s.Add(q, Point{10, 0})
	s.Add(q, Point{0, 10})
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	if !s.PrunesPoint(Point{20, 0}) {
		t.Fatal("beyond the first pruner")
	}
	if !s.PrunesPoint(Point{0, 20}) {
		t.Fatal("beyond the second pruner")
	}
	if s.PrunesPoint(Point{1, 1}) {
		t.Fatal("near the query, must survive")
	}
	if !s.PrunesRect(Rect{11, -5, 20, 5}) {
		t.Fatal("rect wholly beyond first pruner")
	}
	if s.PrunesRect(Rect{5, 5, 15, 15}) {
		t.Fatal("straddling rect is not contained in a single region")
	}
	s.Reset()
	if s.Len() != 0 || s.PrunesPoint(Point{100, 100}) {
		t.Fatal("reset failed")
	}
}

func TestRectMinDist2(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{5, 6, 7, 8}
	want := 3.0*3.0 + 4.0*4.0
	if got := RectMinDist2(a, b); got != want {
		t.Fatalf("RectMinDist2 = %g, want %g", got, want)
	}
	if got := RectMinDist2(a, Rect{1, 1, 9, 9}); got != 0 {
		t.Fatalf("intersecting rects: %g", got)
	}
}

func TestRectCircleSweepMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		nr, nc := rng.Intn(30), rng.Intn(30)
		rects := make([]Rect, nr)
		for i := range rects {
			rects[i] = rectFrom(rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000)
		}
		circles := make([]Circle, nc)
		for i := range circles {
			circles[i] = Circle{
				Center: Point{rng.Float64() * 1000, rng.Float64() * 1000},
				Radius: rng.Float64() * 200,
			}
		}
		got := map[[2]int]bool{}
		for _, hit := range RectCircleSweep(rects, circles) {
			got[[2]int{hit.RectIdx, hit.CircleIdx}] = true
		}
		for i, r := range rects {
			for jj, c := range circles {
				want := c.IntersectsRect(r)
				if got[[2]int{i, jj}] != want {
					t.Fatalf("trial %d: sweep mismatch at rect %d circle %d: got %v want %v", trial, i, jj, got[[2]int{i, jj}], want)
				}
			}
		}
	}
}

func TestL1Circle(t *testing.T) {
	p := Point{0, 0}
	q := Point{4, 2}
	c := L1EnclosingCircle(p, q)
	if c.Radius != 3 {
		t.Fatalf("L1 radius %g, want 3", c.Radius)
	}
	if !c.Covers(p) || !c.Covers(q) {
		t.Fatal("L1 ball must cover both endpoints")
	}
	if !c.Covers(c.Center) {
		t.Fatal("L1 ball must cover its center")
	}
	if c.Covers(Point{10, 10}) {
		t.Fatal("far point covered")
	}
	if !c.IntersectsRect(Rect{2, 1, 3, 2}) {
		t.Fatal("interior rect should intersect L1 ball")
	}
	if c.IntersectsRect(Rect{50, 50, 60, 60}) {
		t.Fatal("distant rect should not intersect L1 ball")
	}
}

func TestMaxL1Dist(t *testing.T) {
	p := Point{0, 0}
	r := Rect{1, 1, 3, 4}
	if got := MaxL1Dist(p, r); got != 7 {
		t.Fatalf("MaxL1Dist = %g, want 7", got)
	}
}
