package geom

import (
	"math/rand"
	"testing"
)

func benchPoints(n int) []Point {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
	}
	return pts
}

func BenchmarkDist2(b *testing.B) {
	pts := benchPoints(1024)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += pts[i%1024].Dist2(pts[(i+7)%1024])
	}
	_ = sink
}

func BenchmarkEnclosingCircle(b *testing.B) {
	pts := benchPoints(1024)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		c := EnclosingCircle(pts[i%1024], pts[(i+7)%1024])
		sink += c.Radius
	}
	_ = sink
}

func BenchmarkCircleCovers(b *testing.B) {
	pts := benchPoints(1024)
	c := Circle{Center: Point{5000, 5000}, Radius: 3000}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if c.Covers(pts[i%1024]) {
			n++
		}
	}
	_ = n
}

func BenchmarkPrunerPrunesPoint(b *testing.B) {
	pts := benchPoints(1024)
	pr := NewPruner(Point{5000, 5000}, Point{6000, 6000})
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if pr.PrunesPoint(pts[i%1024]) {
			n++
		}
	}
	_ = n
}

func BenchmarkPrunerSetTwenty(b *testing.B) {
	// A pruner set of the size the filter typically accumulates.
	pts := benchPoints(1024)
	var s PrunerSet
	q := Point{5000, 5000}
	for i := 0; i < 20; i++ {
		s.Add(q, pts[i])
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if s.PrunesPoint(pts[i%1024]) {
			n++
		}
	}
	_ = n
}

func BenchmarkRectCircleSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	rects := make([]Rect, 28) // one internal node's entries
	for i := range rects {
		x, y := rng.Float64()*9000, rng.Float64()*9000
		rects[i] = Rect{x, y, x + 500, y + 500}
	}
	circles := make([]Circle, 100) // one leaf's candidate circles
	for i := range circles {
		circles[i] = Circle{
			Center: Point{rng.Float64() * 10000, rng.Float64() * 10000},
			Radius: rng.Float64() * 400,
		}
	}
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = RectCircleSweep(rects, circles)
		}
	})
	b.Run("nested-loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n := 0
			for _, r := range rects {
				for _, c := range circles {
					if c.IntersectsRect(r) {
						n++
					}
				}
			}
			_ = n
		}
	})
}
