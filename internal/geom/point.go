// Package geom provides the computational-geometry substrate for the
// ring-constrained join: points, rectangles (MBRs), circles, the Ψ+/Ψ−
// half-plane pruning regions of Lemmas 1, 3 and 5, and batch plane-sweep
// intersection tests.
//
// All coordinates are Euclidean 2D float64. Experiments in the paper
// normalize coordinates to [0, 10000]²; the geometry here is agnostic to the
// domain but the tolerance constants are chosen for domains of that order.
package geom

import "math"

// Point is a location in the 2D Euclidean plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and o.
func (p Point) Dist(o Point) float64 {
	return math.Hypot(p.X-o.X, p.Y-o.Y)
}

// Dist2 returns the squared Euclidean distance between p and o. It is the
// preferred comparison form throughout the library because it avoids the
// square root on hot paths.
func (p Point) Dist2(o Point) float64 {
	dx := p.X - o.X
	dy := p.Y - o.Y
	return dx*dx + dy*dy
}

// Mid returns the midpoint of the segment p–o, which is the center of the
// smallest circle enclosing p and o.
func (p Point) Mid(o Point) Point {
	return Point{(p.X + o.X) / 2, (p.Y + o.Y) / 2}
}

// Sub returns the vector p − o.
func (p Point) Sub(o Point) Point {
	return Point{p.X - o.X, p.Y - o.Y}
}

// Dot returns the dot product of p and o interpreted as vectors.
func (p Point) Dot(o Point) float64 {
	return p.X*o.X + p.Y*o.Y
}

// Equal reports whether p and o are the same point (exact comparison; callers
// that need tolerance should compare Dist2 against an epsilon).
func (p Point) Equal(o Point) bool {
	return p.X == o.X && p.Y == o.Y
}

// L1Dist returns the Manhattan (L1) distance between p and o. It supports the
// L1 generalization of the ring constraint discussed in the paper's future
// work (Section 6).
func (p Point) L1Dist(o Point) float64 {
	return math.Abs(p.X-o.X) + math.Abs(p.Y-o.Y)
}
