package geom

import "sort"

// This file implements the plane-sweep intersection test mentioned in
// Section 3.2 of the paper: given a group of rectangles and a group of
// circles, find which rectangles intersect which circles without comparing
// every pair. The sweep runs over the x-axis using the circles' bounding
// boxes as a conservative first stage; survivors are confirmed with the exact
// circle–rectangle test.

// SweepPair records that rectangle Rects[RectIdx] intersects circle
// Circles[CircleIdx] in a RectCircleSweep call.
type SweepPair struct {
	RectIdx   int
	CircleIdx int
}

// RectCircleSweep returns all (rectangle, circle) index pairs whose shapes
// intersect, computed by a plane sweep along x over interval endpoints
// followed by an exact distance test. The output order is unspecified.
//
// Complexity is O((n+m)·log(n+m) + k·c) where k is the number of x-interval
// overlaps and c the constant exact test, versus O(n·m) for the naive nested
// loop; the verification step batches many circles against one node's
// entries, which is exactly the workload this accelerates.
func RectCircleSweep(rects []Rect, circles []Circle) []SweepPair {
	if len(rects) == 0 || len(circles) == 0 {
		return nil
	}

	type interval struct {
		lo, hi float64
		idx    int
	}
	rs := make([]interval, 0, len(rects))
	for i, r := range rects {
		if !r.IsEmpty() {
			rs = append(rs, interval{r.MinX, r.MaxX, i})
		}
	}
	cs := make([]interval, 0, len(circles))
	for i, c := range circles {
		b := c.BoundingRect()
		cs = append(cs, interval{b.MinX, b.MaxX, i})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].lo < rs[j].lo })
	sort.Slice(cs, func(i, j int) bool { return cs[i].lo < cs[j].lo })

	var out []SweepPair
	// Classic two-list sweep: advance whichever list has the smaller next
	// left endpoint, scanning forward in the other list while x-intervals
	// overlap.
	i, j := 0, 0
	for i < len(rs) && j < len(cs) {
		if rs[i].lo <= cs[j].lo {
			r := rs[i]
			for k := j; k < len(cs) && cs[k].lo <= r.hi; k++ {
				if circleRectHit(circles[cs[k].idx], rects[r.idx]) {
					out = append(out, SweepPair{RectIdx: r.idx, CircleIdx: cs[k].idx})
				}
			}
			i++
		} else {
			c := cs[j]
			for k := i; k < len(rs) && rs[k].lo <= c.hi; k++ {
				if circleRectHit(circles[c.idx], rects[rs[k].idx]) {
					out = append(out, SweepPair{RectIdx: rs[k].idx, CircleIdx: c.idx})
				}
			}
			j++
		}
	}
	return out
}

// circleRectHit performs the exact stage: y-interval overlap first (cheap),
// then the true circle–rectangle distance test.
func circleRectHit(c Circle, r Rect) bool {
	b := c.BoundingRect()
	if b.MinY > r.MaxY || r.MinY > b.MaxY {
		return false
	}
	return c.IntersectsRect(r)
}
