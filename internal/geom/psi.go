package geom

// This file implements the Ψ+/Ψ− pruning regions at the heart of the
// ring-constrained join (Definition 1 and Lemmas 1, 3, 5 of the paper).
//
// Given a query point q and a discovered point p, let L(q,p) be the line
// through p perpendicular to the segment qp. L divides the plane into
// Ψ+(q,p), the closed half-plane containing q, and Ψ−(q,p), the open
// complement beyond L. Lemma 1: any point p' ∈ Ψ−(q,p) cannot form an RCJ
// pair with q, because the enclosing circle of <p', q> necessarily covers p.
// Lemma 2 shows this region is maximal. Lemma 3 lifts the test to MBRs.
// Lemma 5 is the same construction with the pruning point drawn from Q
// instead of P (symmetric pruning, used by the OBJ algorithm).
//
// Membership test: x ∈ Ψ−(q,p) ⟺ (x−p)·(q−p) ≤ 0, i.e. the projection of x
// onto the direction p→q does not extend past p toward q. We use the closed
// form (≤ 0, boundary included), which matches the closed-circle containment
// convention: a point p' exactly on L yields an enclosing circle passing
// through p itself, invalidating the pair under the closed rule, so pruning
// it is exact rather than merely safe.

// Pruner captures one pruning half-plane Ψ−(q, p): the pair (query point q,
// discovered point p). It precomputes the direction vector so that point and
// rectangle tests are a handful of flops.
type Pruner struct {
	// P is the discovered point through which the boundary line passes.
	P Point
	// dir is the vector q − p; Ψ− is {x : (x−P)·dir ≤ 0}.
	dir Point
	// strict restricts the region to the open half-plane {x : (x−P)·dir < 0}.
	// The symmetric rule (Lemma 5) uses strict pruners: in a self-join the
	// pruning point q' is itself a join candidate and lies exactly on the
	// boundary line, so the closed region would prune the valid pair
	// <q', q>. Boundary points skipped by a strict pruner are eliminated in
	// verification instead, so strictness trades a little filtering power
	// for soundness, never results.
	strict bool
}

// NewPruner builds the Ψ−(q, p) region for query point q and discovered
// point p. If p == q the region degenerates to the boundary line through p in
// an arbitrary orientation and prunes only p itself; callers normally never
// construct that case (a point never prunes with respect to itself).
func NewPruner(q, p Point) Pruner {
	return Pruner{P: p, dir: q.Sub(p)}
}

// NewStrictPruner builds the open variant of Ψ−(q, p); see Pruner.strict.
func NewStrictPruner(q, p Point) Pruner {
	return Pruner{P: p, dir: q.Sub(p), strict: true}
}

// PrunesPoint reports whether x lies in Ψ−(q, p), i.e. x cannot form an RCJ
// pair with q (Lemma 1).
func (pr Pruner) PrunesPoint(x Point) bool {
	d := x.Sub(pr.P).Dot(pr.dir)
	if pr.strict {
		return d < 0
	}
	return d <= 0
}

// PrunesRect reports whether the entire rectangle r lies in Ψ−(q, p), so the
// whole subtree under r can be discarded (Lemma 3). The test evaluates the
// linear functional (x−P)·dir at its maximizing corner: if even that corner
// is ≤ 0, all of r is.
func (pr Pruner) PrunesRect(r Rect) bool {
	x := r.MinX
	if pr.dir.X > 0 {
		x = r.MaxX
	}
	y := r.MinY
	if pr.dir.Y > 0 {
		y = r.MaxY
	}
	d := (Point{x, y}).Sub(pr.P).Dot(pr.dir)
	if pr.strict {
		return d < 0
	}
	return d <= 0
}

// PsiMinusContainsPoint is a convenience form of Lemma 1 without constructing
// a Pruner: reports whether x ∈ Ψ−(q, p).
func PsiMinusContainsPoint(q, p, x Point) bool {
	return NewPruner(q, p).PrunesPoint(x)
}

// PsiMinusContainsRect is a convenience form of Lemma 3: reports whether the
// rectangle r lies entirely in Ψ−(q, p).
func PsiMinusContainsRect(q, p Point, r Rect) bool {
	return NewPruner(q, p).PrunesRect(r)
}

// PrunerSet holds the pruning half-planes accumulated for one query point
// during the filter step. Appending is O(1); testing is linear in the number
// of pruners, which the incremental-NN discovery order keeps very small in
// practice (the first few nearest points prune almost everything).
type PrunerSet struct {
	pruners []Pruner
}

// Add appends the region Ψ−(q, p) to the set.
func (s *PrunerSet) Add(q, p Point) {
	s.pruners = append(s.pruners, NewPruner(q, p))
}

// AddStrict appends the open variant of Ψ−(q, p) to the set (Lemma 5
// symmetric pruning; see Pruner).
func (s *PrunerSet) AddStrict(q, p Point) {
	s.pruners = append(s.pruners, NewStrictPruner(q, p))
}

// Len returns the number of pruning regions in the set.
func (s *PrunerSet) Len() int { return len(s.pruners) }

// Reset empties the set, retaining capacity for reuse across query points.
func (s *PrunerSet) Reset() { s.pruners = s.pruners[:0] }

// PrunesPoint reports whether any region in the set prunes x.
//
// This is the hottest loop of a warm join — the bulk filter tests every
// discovered point against every query point's set, and the sets grow with
// every surviving discovery — so it is written as a tight kernel: the dot
// product is inlined over an indexed loop (no 40-byte Pruner copy per
// probe), the strict flag folds into the comparison without a branch on the
// common d≠0 path, and a successful probe moves its pruner to the front of
// the set. Consecutive probes are spatially adjacent (heap order ascends by
// distance), so the half-plane that pruned the last point very likely prunes
// the next — move-to-front keeps it first and the scan short. Reordering is
// invisible: the set is a pure disjunction.
func (s *PrunerSet) PrunesPoint(x Point) bool {
	for i := range s.pruners {
		pr := &s.pruners[i]
		d := (x.X-pr.P.X)*pr.dir.X + (x.Y-pr.P.Y)*pr.dir.Y
		if d < 0 || (d == 0 && !pr.strict) {
			if i > 0 {
				s.pruners[0], s.pruners[i] = s.pruners[i], s.pruners[0]
			}
			return true
		}
	}
	return false
}

// PrunesRect reports whether any single region in the set contains all of r.
// (Regions may not be combined: r could straddle two half-planes whose union
// covers it without either containing it; only containment by one region is
// a sound rectangle prune.) Same kernel shape as PrunesPoint: the functional
// is evaluated at its maximizing corner inline, and a successful probe moves
// to the front.
func (s *PrunerSet) PrunesRect(r Rect) bool {
	for i := range s.pruners {
		pr := &s.pruners[i]
		x := r.MinX
		if pr.dir.X > 0 {
			x = r.MaxX
		}
		y := r.MinY
		if pr.dir.Y > 0 {
			y = r.MaxY
		}
		d := (x-pr.P.X)*pr.dir.X + (y-pr.P.Y)*pr.dir.Y
		if d < 0 || (d == 0 && !pr.strict) {
			if i > 0 {
				s.pruners[0], s.pruners[i] = s.pruners[i], s.pruners[0]
			}
			return true
		}
	}
	return false
}
