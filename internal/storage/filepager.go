package storage

import (
	"fmt"
	"os"
	"sync"
)

// FilePager is a Pager backed by a single flat file: page i lives at byte
// offset i·PageSize. It lets indexes built by this library persist on disk
// and be reopened; the experiment harness uses MemPager, but the CLI tools
// accept file-backed indexes for realistic end-to-end runs.
type FilePager struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	numPages int
	stats    Stats
}

// CreateFilePager creates (truncating) a page file at path.
func CreateFilePager(path string, pageSize int) (*FilePager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create page file: %w", err)
	}
	return &FilePager{f: f, pageSize: pageSize}, nil
}

// OpenFilePager opens an existing page file created with the same pageSize.
func OpenFilePager(path string, pageSize int) (*FilePager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat page file: %w", err)
	}
	if info.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: page file size %d not a multiple of page size %d", info.Size(), pageSize)
	}
	return &FilePager{f: f, pageSize: pageSize, numPages: int(info.Size() / int64(pageSize))}, nil
}

// PageSize returns the page size in bytes.
func (p *FilePager) PageSize() int { return p.pageSize }

// NumPages returns the number of allocated pages.
func (p *FilePager) NumPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.numPages
}

// Allocate extends the file by one zeroed page.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := PageID(p.numPages)
	zero := make([]byte, p.pageSize)
	if _, err := p.f.WriteAt(zero, int64(p.numPages)*int64(p.pageSize)); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page: %w", err)
	}
	p.numPages++
	p.stats.Writes++
	return id, nil
}

// ReadPage copies page id into buf.
func (p *FilePager) ReadPage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= p.numPages {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, p.numPages)
	}
	if len(buf) < p.pageSize {
		return fmt.Errorf("storage: read buffer %d smaller than page size %d", len(buf), p.pageSize)
	}
	if _, err := p.f.ReadAt(buf[:p.pageSize], int64(id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	p.stats.Reads++
	return nil
}

// WritePage stores buf as page id.
func (p *FilePager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(id) >= p.numPages {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, p.numPages)
	}
	if len(buf) > p.pageSize {
		return fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(buf), p.pageSize)
	}
	page := make([]byte, p.pageSize)
	copy(page, buf)
	if _, err := p.f.WriteAt(page, int64(id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	p.stats.Writes++
	return nil
}

// Stats returns cumulative physical I/O counters.
func (p *FilePager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close syncs and closes the backing file.
func (p *FilePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.f == nil {
		return nil
	}
	err := p.f.Sync()
	if cerr := p.f.Close(); err == nil {
		err = cerr
	}
	p.f = nil
	return err
}
