package storage

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// FilePager is a Pager backed by a single flat file: page i lives at byte
// offset base+i·PageSize (base is 0 for raw page files and one page for
// index files, whose first block holds the superblock). It lets indexes
// built by this library persist on disk and be reopened; the experiment
// harness uses MemPager, but the Engine and CLI tools accept file-backed
// indexes for realistic end-to-end runs.
//
// The read path is lock-free: ReadAt is positional (pread), the page count
// only grows, and the I/O counters are atomics, so any number of concurrent
// joins can fault pages in without serializing on a mutex. Only Allocate,
// WritePage, and Close take the mutex.
type FilePager struct {
	f        *os.File
	pageSize int
	base     int64 // byte offset of page 0
	readOnly bool

	mu       sync.Mutex // serializes Allocate/WritePage/Close
	closed   bool
	numPages atomic.Int64
	reads    atomic.Int64
	writes   atomic.Int64
}

// CreateFilePager creates (truncating) a raw page file at path.
func CreateFilePager(path string, pageSize int) (*FilePager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create page file: %w", err)
	}
	return &FilePager{f: f, pageSize: pageSize}, nil
}

// OpenFilePager opens an existing raw page file created with the same
// pageSize.
func OpenFilePager(path string, pageSize int) (*FilePager, error) {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat page file: %w", err)
	}
	if info.Size()%int64(pageSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: page file size %d not a multiple of page size %d", info.Size(), pageSize)
	}
	p := &FilePager{f: f, pageSize: pageSize}
	p.numPages.Store(info.Size() / int64(pageSize))
	return p, nil
}

// openedFilePager wraps an already-open, already-validated file as a
// read-only pager whose pages start at base. Used by OpenIndexFile, which
// has read the superblock and knows the page count.
func openedFilePager(f *os.File, pageSize int, base int64, numPages int) *FilePager {
	p := &FilePager{f: f, pageSize: pageSize, base: base, readOnly: true}
	p.numPages.Store(int64(numPages))
	return p
}

// PageSize returns the page size in bytes.
func (p *FilePager) PageSize() int { return p.pageSize }

// NumPages returns the number of allocated pages.
func (p *FilePager) NumPages() int { return int(p.numPages.Load()) }

// Allocate extends the file by one zeroed page.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readOnly {
		return InvalidPageID, fmt.Errorf("%w: allocate", ErrReadOnly)
	}
	n := p.numPages.Load()
	if n >= int64(InvalidPageID) {
		return InvalidPageID, fmt.Errorf("storage: pager full")
	}
	zero := make([]byte, p.pageSize)
	if _, err := p.f.WriteAt(zero, p.base+n*int64(p.pageSize)); err != nil {
		return InvalidPageID, fmt.Errorf("storage: allocate page: %w", err)
	}
	p.numPages.Store(n + 1)
	p.writes.Add(1)
	return PageID(n), nil
}

// ReadPage copies page id into buf. It takes no lock: the read is one
// positional pread and the bounds check races only with growth, never
// shrinkage.
func (p *FilePager) ReadPage(id PageID, buf []byte) error {
	if n := p.numPages.Load(); int64(id) >= n {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, n)
	}
	if len(buf) < p.pageSize {
		return fmt.Errorf("storage: read buffer %d smaller than page size %d", len(buf), p.pageSize)
	}
	if _, err := p.f.ReadAt(buf[:p.pageSize], p.base+int64(id)*int64(p.pageSize)); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	p.reads.Add(1)
	return nil
}

// WritePage stores buf as page id, zero-padding short writes to a full page.
// A full-page buf is written directly, with no intermediate copy.
func (p *FilePager) WritePage(id PageID, buf []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.readOnly {
		return fmt.Errorf("%w: write page %d", ErrReadOnly, id)
	}
	if n := p.numPages.Load(); int64(id) >= n {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, n)
	}
	if len(buf) > p.pageSize {
		return fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(buf), p.pageSize)
	}
	off := p.base + int64(id)*int64(p.pageSize)
	if _, err := p.f.WriteAt(buf, off); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	if len(buf) < p.pageSize {
		zero := make([]byte, p.pageSize-len(buf))
		if _, err := p.f.WriteAt(zero, off+int64(len(buf))); err != nil {
			return fmt.Errorf("storage: write page %d: %w", id, err)
		}
	}
	p.writes.Add(1)
	return nil
}

// Stats returns cumulative physical I/O counters.
func (p *FilePager) Stats() Stats {
	return Stats{Reads: p.reads.Load(), Writes: p.writes.Load()}
}

// Close syncs and closes the backing file. In-flight lock-free reads racing
// Close fail with os.ErrClosed rather than corrupting state.
func (p *FilePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	var err error
	if !p.readOnly {
		err = p.f.Sync()
	}
	if cerr := p.f.Close(); err == nil {
		err = cerr
	}
	return err
}
