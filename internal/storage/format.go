package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// The durable index file format (".rcjx"), versions 1 and 2:
//
//	block 0               one page-sized header block; the superblock
//	                      occupies its first SuperblockSize bytes, the rest
//	                      is zero
//	blocks 1..NumPages    the pager's pages, verbatim, page i at byte
//	                      offset PageSize·(1+i)
//	trailer (v2 only)     the page checksum table: one CRC-32 (IEEE) per
//	                      page, little endian, followed by a CRC-32 of the
//	                      table bytes themselves, at byte offset
//	                      PageSize·(1+NumPages)
//
// Version 3 ("packed") replaces the verbatim page image with compressed
// variable-length blobs located by a page directory:
//
//	block 0               the superblock, as above, with the packed flag set
//	offset PageSize       the page directory: NumPages+1 uint64 absolute
//	                      file offsets (dir[i] = start of page i's blob,
//	                      dir[NumPages] = end of the last blob), little
//	                      endian, followed by a CRC-32 of those bytes
//	blobs                 one pagecodec blob per page, back to back: a
//	                      1-byte kind (raw or delta/varint leafpack) plus
//	                      payload; decoding reproduces the page verbatim
//	offset dir[NumPages]  the page checksum table, exactly as in v2, over
//	                      the UNCOMPRESSED page images
//
// The superblock is versioned and checksummed so a reopening process can
// reject foreign, corrupt, or truncated files with a typed error before it
// ever walks a tree page. Versions 2 and 3 additionally checksum every page,
// which is what lets a pager serve the file over an unreliable substrate
// (remote HTTP ranges, flaky disks): each page is verified against the table
// — after blob decode, for v3 — before a single tree entry is decoded.
// Version 1 files (no table) still open read-only; the writer emits version
// 2 by default and version 3 on request (WriteIndexFile with
// sb.Version = FormatVersion3).
//
// Superblock layout (little endian):
//
//	offset  0: [8]byte  magic "RCJXIDX\x00"
//	offset  8: uint16   format version (1, 2, or 3)
//	offset 10: uint16   flags (v3: bit 0 = packed pages; zero before v3)
//	offset 12: uint32   page size in bytes
//	offset 16: uint32   number of pages following the header block
//	offset 20: uint32   root page id
//	offset 24: uint32   tree height (1 = root is a leaf)
//	offset 28: uint64   entry (point) count
//	offset 36: 4×float64 dataset MBR: minX, minY, maxX, maxY
//	offset 68: uint32   CRC-32 (IEEE) of bytes [0, 68)
const (
	// SuperblockSize is the encoded size of a Superblock in bytes.
	SuperblockSize = 72
	// FormatVersion1 is the original format: superblock + raw page image,
	// no per-page checksums. Still readable.
	FormatVersion1 = 1
	// FormatVersion2 adds the per-page CRC-32 table trailer.
	FormatVersion2 = 2
	// FormatVersion3 packs pages into compressed variable-length blobs
	// behind a page directory (see the format comment above). Leaf pages
	// delta/varint-compress to roughly half their raw size; the checksum
	// table still covers the uncompressed images.
	FormatVersion3 = 3
	// FormatVersion is the version the writer emits by default. Version 3
	// is opt-in: readers from before this release reject it.
	FormatVersion = FormatVersion2
	// maxFormatVersion is the newest version this reader understands.
	maxFormatVersion = FormatVersion3
)

// Superblock flag bits (the uint16 at offset 10, which was reserved-zero
// before format v3).
const (
	// FlagPackedPages marks a v3 file whose pages are stored as compressed
	// blobs behind a page directory. It is required for v3 and rejected for
	// earlier versions.
	FlagPackedPages uint16 = 1 << 0
)

// Magic identifies an index file; it is the first 8 bytes of the superblock.
var Magic = [8]byte{'R', 'C', 'J', 'X', 'I', 'D', 'X', 0}

// Typed errors for index-file validation. OpenIndexFile (and everything
// layered above it) wraps these, so callers can errors.Is-match the failure
// mode.
var (
	// ErrBadMagic means the file does not start with the index magic.
	ErrBadMagic = errors.New("storage: bad index file magic")
	// ErrBadVersion means the superblock's format version is unsupported.
	ErrBadVersion = errors.New("storage: unsupported index format version")
	// ErrBadChecksum means a CRC does not match its contents: the
	// superblock's, the page table's, or — wrapped with the offending page
	// id — an individual page's.
	ErrBadChecksum = errors.New("storage: checksum mismatch")
	// ErrTruncated means the file is shorter than its superblock promises.
	ErrTruncated = errors.New("storage: truncated index file")
	// ErrCorrupt means a superblock field is internally inconsistent.
	ErrCorrupt = errors.New("storage: corrupt index file")
	// ErrPageSizeMismatch means the file's page size differs from the one
	// the caller required.
	ErrPageSizeMismatch = errors.New("storage: page size mismatch")
)

// Superblock is the tree-metadata block at the head of an index file: enough
// to reattach an R-tree to the page image without touching a single point.
type Superblock struct {
	Version  int        // format version; 0 encodes as FormatVersion
	Flags    uint16     // format flags; must be FlagPackedPages for v3, zero before
	PageSize int        // fixed page size in bytes
	NumPages int        // pages following the header block
	Root     PageID     // page id of the tree root (InvalidPageID when empty)
	Height   int        // tree height (1 = root is a leaf, 0 = empty)
	Count    int64      // number of indexed entries
	MBR      [4]float64 // dataset bounding rect: minX, minY, maxX, maxY
}

// effectiveVersion resolves the zero Version to the writer's current format.
func (sb Superblock) effectiveVersion() int {
	if sb.Version == 0 {
		return FormatVersion
	}
	return sb.Version
}

// hasPageTable reports whether this superblock's format version carries the
// per-page checksum table (a trailer at PageSize·(1+NumPages) for v2; at
// dir[NumPages] for packed v3).
func (sb Superblock) hasPageTable() bool { return sb.effectiveVersion() >= FormatVersion2 }

// Packed reports whether this superblock's format stores pages as compressed
// variable-length blobs behind a page directory (format v3).
func (sb Superblock) Packed() bool { return sb.effectiveVersion() >= FormatVersion3 }

// EncodeSuperblock serializes sb into buf, which must be at least
// SuperblockSize bytes. It fails on a superblock that Validate rejects, so
// every encoded superblock decodes cleanly. A zero Version encodes as the
// current FormatVersion.
func EncodeSuperblock(sb Superblock, buf []byte) error {
	if len(buf) < SuperblockSize {
		return fmt.Errorf("storage: superblock buffer %d smaller than %d", len(buf), SuperblockSize)
	}
	if err := sb.Validate(); err != nil {
		return err
	}
	copy(buf[0:8], Magic[:])
	binary.LittleEndian.PutUint16(buf[8:], uint16(sb.effectiveVersion()))
	binary.LittleEndian.PutUint16(buf[10:], sb.Flags)
	binary.LittleEndian.PutUint32(buf[12:], uint32(sb.PageSize))
	binary.LittleEndian.PutUint32(buf[16:], uint32(sb.NumPages))
	binary.LittleEndian.PutUint32(buf[20:], uint32(sb.Root))
	binary.LittleEndian.PutUint32(buf[24:], uint32(sb.Height))
	binary.LittleEndian.PutUint64(buf[28:], uint64(sb.Count))
	for i, v := range sb.MBR {
		binary.LittleEndian.PutUint64(buf[36+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(buf[68:], crc32.ChecksumIEEE(buf[:68]))
	return nil
}

// DecodeSuperblock parses and validates a superblock. Failures carry one of
// the typed errors above. Both format versions decode; Version records which
// one the file carries.
func DecodeSuperblock(buf []byte) (Superblock, error) {
	if len(buf) < SuperblockSize {
		return Superblock{}, fmt.Errorf("%w: %d bytes, superblock needs %d", ErrTruncated, len(buf), SuperblockSize)
	}
	if [8]byte(buf[0:8]) != Magic {
		return Superblock{}, fmt.Errorf("%w: %q", ErrBadMagic, buf[0:8])
	}
	v := binary.LittleEndian.Uint16(buf[8:])
	if v < FormatVersion1 || v > maxFormatVersion {
		return Superblock{}, fmt.Errorf("%w: %d (supported: %d..%d)", ErrBadVersion, v, FormatVersion1, maxFormatVersion)
	}
	want := binary.LittleEndian.Uint32(buf[68:])
	if got := crc32.ChecksumIEEE(buf[:68]); got != want {
		return Superblock{}, fmt.Errorf("%w: superblock: computed %08x, stored %08x", ErrBadChecksum, got, want)
	}
	sb := Superblock{
		Version:  int(v),
		Flags:    binary.LittleEndian.Uint16(buf[10:]),
		PageSize: int(binary.LittleEndian.Uint32(buf[12:])),
		NumPages: int(binary.LittleEndian.Uint32(buf[16:])),
		Root:     PageID(binary.LittleEndian.Uint32(buf[20:])),
		Height:   int(binary.LittleEndian.Uint32(buf[24:])),
		Count:    int64(binary.LittleEndian.Uint64(buf[28:])),
	}
	for i := range sb.MBR {
		sb.MBR[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[36+8*i:]))
	}
	if err := sb.Validate(); err != nil {
		return Superblock{}, err
	}
	return sb, nil
}

// Validate checks the superblock's internal consistency: supported version,
// sane page size, a root that lies inside the page range, and height/count
// agreement.
func (sb Superblock) Validate() error {
	v := sb.effectiveVersion()
	if v < FormatVersion1 || v > maxFormatVersion {
		return fmt.Errorf("%w: %d (supported: %d..%d)", ErrBadVersion, v, FormatVersion1, maxFormatVersion)
	}
	if v < FormatVersion3 {
		if sb.Flags != 0 {
			return fmt.Errorf("%w: reserved field %#x", ErrCorrupt, sb.Flags)
		}
	} else if sb.Flags != FlagPackedPages {
		return fmt.Errorf("%w: v%d flags %#x (want %#x)", ErrCorrupt, v, sb.Flags, FlagPackedPages)
	}
	if sb.PageSize < SuperblockSize || sb.PageSize > 1<<24 {
		return fmt.Errorf("%w: page size %d", ErrCorrupt, sb.PageSize)
	}
	if sb.NumPages < 0 || sb.NumPages > int(InvalidPageID) {
		return fmt.Errorf("%w: page count %d", ErrCorrupt, sb.NumPages)
	}
	if sb.Count < 0 {
		return fmt.Errorf("%w: entry count %d", ErrCorrupt, sb.Count)
	}
	if sb.Count == 0 {
		if sb.Root != InvalidPageID || sb.Height != 0 {
			return fmt.Errorf("%w: empty tree with root %d height %d", ErrCorrupt, sb.Root, sb.Height)
		}
		return nil
	}
	if sb.Root == InvalidPageID || int(sb.Root) >= sb.NumPages {
		return fmt.Errorf("%w: root page %d of %d pages", ErrCorrupt, sb.Root, sb.NumPages)
	}
	if sb.Height < 1 || sb.Height > 64 {
		return fmt.Errorf("%w: tree height %d", ErrCorrupt, sb.Height)
	}
	return nil
}

// fileSize returns the total byte length a well-formed file with this
// superblock must have: header block, page image, and (v2) the table trailer.
// For a packed (v3) file the blobs are variable-length, so this is the
// *minimum* legal size — header, directory, one byte per blob, table; the
// exact end of file is dir[NumPages] + PageTableSize and is checked once the
// directory is decoded.
func (sb Superblock) fileSize() int64 {
	if sb.Packed() {
		return int64(sb.PageSize) + int64(PageDirSize(sb.NumPages)) +
			int64(sb.NumPages) + int64(PageTableSize(sb.NumPages))
	}
	n := int64(sb.PageSize) * int64(1+sb.NumPages)
	if sb.hasPageTable() {
		n += int64(PageTableSize(sb.NumPages))
	}
	return n
}

// PageChecksum returns the CRC-32 (IEEE) of one page image, the per-page
// checksum format v2 stores in the page table.
func PageChecksum(page []byte) uint32 { return crc32.ChecksumIEEE(page) }

// PageTableSize returns the encoded size in bytes of a page checksum table
// covering numPages pages: one CRC-32 per page plus the table's own CRC-32.
func PageTableSize(numPages int) int { return 4*numPages + 4 }

// EncodePageTable serializes the per-page checksum table into buf, which
// must be at least PageTableSize(len(table)) bytes: each page's CRC-32
// little endian, then a CRC-32 of those bytes so a torn or corrupted table
// is itself detectable.
func EncodePageTable(table []uint32, buf []byte) error {
	need := PageTableSize(len(table))
	if len(buf) < need {
		return fmt.Errorf("storage: page table buffer %d smaller than %d", len(buf), need)
	}
	for i, crc := range table {
		binary.LittleEndian.PutUint32(buf[4*i:], crc)
	}
	binary.LittleEndian.PutUint32(buf[4*len(table):], crc32.ChecksumIEEE(buf[:4*len(table)]))
	return nil
}

// DecodePageTable parses and validates a page checksum table covering
// numPages pages. Failures carry ErrTruncated (short buffer) or
// ErrBadChecksum (the table's own CRC does not match).
func DecodePageTable(buf []byte, numPages int) ([]uint32, error) {
	if numPages < 0 || numPages > int(InvalidPageID) {
		return nil, fmt.Errorf("%w: page count %d", ErrCorrupt, numPages)
	}
	need := PageTableSize(numPages)
	if len(buf) < need {
		return nil, fmt.Errorf("%w: %d bytes, page table needs %d", ErrTruncated, len(buf), need)
	}
	want := binary.LittleEndian.Uint32(buf[4*numPages:])
	if got := crc32.ChecksumIEEE(buf[:4*numPages]); got != want {
		return nil, fmt.Errorf("%w: page table: computed %08x, stored %08x", ErrBadChecksum, got, want)
	}
	table := make([]uint32, numPages)
	for i := range table {
		table[i] = binary.LittleEndian.Uint32(buf[4*i:])
	}
	return table, nil
}

// PageDirSize returns the encoded size in bytes of a v3 page directory
// covering numPages pages: numPages+1 uint64 offsets plus the directory's own
// CRC-32.
func PageDirSize(numPages int) int { return 8*(numPages+1) + 4 }

// EncodePageDir serializes the v3 page directory — dir[i] is the absolute
// file offset of page i's blob, dir[len(dir)-1] the end of the last blob —
// into buf, little endian, followed by a CRC-32 of the offset bytes.
func EncodePageDir(dir []uint64, buf []byte) error {
	need := 8*len(dir) + 4
	if len(buf) < need {
		return fmt.Errorf("storage: page directory buffer %d smaller than %d", len(buf), need)
	}
	for i, off := range dir {
		binary.LittleEndian.PutUint64(buf[8*i:], off)
	}
	binary.LittleEndian.PutUint32(buf[8*len(dir):], crc32.ChecksumIEEE(buf[:8*len(dir)]))
	return nil
}

// DecodePageDir parses and validates the page directory of a packed index
// described by sb: CRC over the offsets, blobs starting right after the
// directory, strictly increasing offsets, and every blob within
// [1, 1+PageSize] bytes (the raw-fallback ceiling of the codec). Failures
// carry ErrTruncated, ErrBadChecksum, or ErrCorrupt.
func DecodePageDir(buf []byte, sb Superblock) ([]uint64, error) {
	need := PageDirSize(sb.NumPages)
	if len(buf) < need {
		return nil, fmt.Errorf("%w: %d bytes, page directory needs %d", ErrTruncated, len(buf), need)
	}
	n := 8 * (sb.NumPages + 1)
	want := binary.LittleEndian.Uint32(buf[n:])
	if got := crc32.ChecksumIEEE(buf[:n]); got != want {
		return nil, fmt.Errorf("%w: page directory: computed %08x, stored %08x", ErrBadChecksum, got, want)
	}
	dir := make([]uint64, sb.NumPages+1)
	for i := range dir {
		dir[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	if dir[0] != uint64(sb.PageSize)+uint64(need) {
		return nil, fmt.Errorf("%w: first blob at %d, directory ends at %d", ErrCorrupt, dir[0], sb.PageSize+need)
	}
	for i := 0; i < sb.NumPages; i++ {
		if dir[i+1] <= dir[i] || dir[i+1]-dir[i] > uint64(sb.PageSize)+1 {
			return nil, fmt.Errorf("%w: page %d blob spans [%d, %d)", ErrCorrupt, i, dir[i], dir[i+1])
		}
	}
	return dir, nil
}

// VerifyPage checks one fetched page image against the checksum table,
// naming the offending page in the returned ErrBadChecksum.
func VerifyPage(table []uint32, id PageID, page []byte) error {
	if int(id) >= len(table) {
		return fmt.Errorf("%w: verify %d of %d", ErrPageOutOfRange, id, len(table))
	}
	if got := PageChecksum(page); got != table[id] {
		return fmt.Errorf("%w: page %d: computed %08x, stored %08x", ErrBadChecksum, id, got, table[id])
	}
	return nil
}

// checksumPager wraps a read-only Pager so every ReadPage is verified
// against the v2 page checksum table before the caller sees a byte.
type checksumPager struct {
	Pager
	table []uint32
}

func (c *checksumPager) ReadPage(id PageID, buf []byte) error {
	if err := c.Pager.ReadPage(id, buf); err != nil {
		return err
	}
	return VerifyPage(c.table, id, buf[:c.Pager.PageSize()])
}

// WriteIndexFile durably writes src's pages to path in the index file
// format, prefixed by sb and (format v2, the default) followed by the page
// checksum table. sb must describe src exactly (page size and page count);
// sb.Version selects the emitted format — zero means the current
// FormatVersion, FormatVersion1 writes the legacy table-less layout (kept
// for compatibility fixtures), FormatVersion3 packs pages into compressed
// blobs behind a page directory (the packed flag is set automatically). The
// file is written to a temp sibling and renamed into place, so a crashed
// Save never leaves a half-written index at path.
func WriteIndexFile(path string, sb Superblock, src Pager) error {
	if sb.PageSize != src.PageSize() {
		return fmt.Errorf("storage: superblock page size %d != pager page size %d", sb.PageSize, src.PageSize())
	}
	if sb.NumPages != src.NumPages() {
		return fmt.Errorf("storage: superblock page count %d != pager page count %d", sb.NumPages, src.NumPages())
	}
	if sb.Packed() {
		sb.Flags = FlagPackedPages
	}
	// A unique temp name per writer: concurrent Saves to the same path must
	// not interleave into one tmp file, or the rename would install a blend
	// of two page images.
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("storage: create index file: %w", err)
	}
	tmp := f.Name()
	err = func() error {
		if err := f.Chmod(0o644); err != nil { // CreateTemp defaults to 0600
			return err
		}
		w := bufio.NewWriterSize(f, 1<<16)
		header := make([]byte, sb.PageSize)
		if err := EncodeSuperblock(sb, header); err != nil {
			return err
		}
		if _, err := w.Write(header); err != nil {
			return err
		}
		if sb.Packed() {
			if err := writePackedBody(w, sb, src); err != nil {
				return err
			}
			if err := w.Flush(); err != nil {
				return err
			}
			return f.Sync()
		}
		var table []uint32
		if sb.hasPageTable() {
			table = make([]uint32, sb.NumPages)
		}
		buf := make([]byte, sb.PageSize)
		for i := 0; i < sb.NumPages; i++ {
			if err := src.ReadPage(PageID(i), buf); err != nil {
				return err
			}
			if table != nil {
				table[i] = PageChecksum(buf)
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		if table != nil {
			tbuf := make([]byte, PageTableSize(sb.NumPages))
			if err := EncodePageTable(table, tbuf); err != nil {
				return err
			}
			if _, err := w.Write(tbuf); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: write index file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: write index file: %w", err)
	}
	return nil
}

// ReadSuperblockFile reads and validates the superblock of the index file at
// path without touching its pages.
func ReadSuperblockFile(path string) (Superblock, error) {
	f, err := os.Open(path)
	if err != nil {
		return Superblock{}, err
	}
	defer f.Close()
	buf := make([]byte, SuperblockSize)
	if _, err := io.ReadFull(f, buf); err != nil {
		return Superblock{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return DecodeSuperblock(buf)
}

// SniffIndexFile reports whether the file at path begins with the index
// magic (i.e. looks like an index file rather than, say, a CSV). It reads at
// most 8 bytes and never fails on short or unreadable files. Both format
// versions share the magic.
func SniffIndexFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var m [8]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false
	}
	return m == Magic
}

// OpenIndexFile validates the index file at path and returns a read-only
// Pager over its pages, materialized by the chosen backend, plus the decoded
// superblock. For format v2 files every page read through the returned pager
// is verified against the page checksum table (the mem backend verifies the
// whole image once at load). Packed v3 files open on the same backends:
// blobs decode to verbatim page images — eagerly for mem, per buffer-pool
// miss for file and mmap — and verify against the same table. Validation
// failures carry the typed errors above.
func OpenIndexFile(path string, backend Backend) (Pager, Superblock, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Superblock{}, fmt.Errorf("storage: open index file: %w", err)
	}
	sbBuf := make([]byte, SuperblockSize)
	if _, err := io.ReadFull(f, sbBuf); err != nil {
		f.Close()
		return nil, Superblock{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	sb, err := DecodeSuperblock(sbBuf)
	if err != nil {
		f.Close()
		return nil, Superblock{}, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, Superblock{}, fmt.Errorf("storage: stat index file: %w", err)
	}
	if need := sb.fileSize(); info.Size() < need {
		f.Close()
		return nil, Superblock{}, fmt.Errorf("%w: %d bytes, superblock promises %d", ErrTruncated, info.Size(), need)
	}
	if sb.Packed() {
		pager, err := openPackedIndexFile(f, info.Size(), sb, backend)
		if err != nil {
			return nil, Superblock{}, err
		}
		return pager, sb, nil
	}
	var table []uint32
	if sb.hasPageTable() {
		tbuf := make([]byte, PageTableSize(sb.NumPages))
		if _, err := f.ReadAt(tbuf, int64(sb.PageSize)*int64(1+sb.NumPages)); err != nil {
			f.Close()
			return nil, Superblock{}, fmt.Errorf("%w: page table: %v", ErrTruncated, err)
		}
		if table, err = DecodePageTable(tbuf, sb.NumPages); err != nil {
			f.Close()
			return nil, Superblock{}, err
		}
	}
	offset := int64(sb.PageSize)
	switch backend {
	case BackendMem:
		pager, err := readMemPager(f, sb, offset, table)
		f.Close()
		if err != nil {
			return nil, Superblock{}, err
		}
		return pager, sb, nil
	case BackendFile:
		var pager Pager = openedFilePager(f, sb.PageSize, offset, sb.NumPages)
		if table != nil {
			pager = &checksumPager{Pager: pager, table: table}
		}
		return pager, sb, nil
	case BackendMmap:
		pager, err := newMmapPager(f, sb.PageSize, offset, sb.NumPages)
		f.Close()
		if err != nil {
			return nil, Superblock{}, err
		}
		if table != nil {
			pager = &checksumPager{Pager: pager, table: table}
		}
		return pager, sb, nil
	case BackendHTTP:
		f.Close()
		return nil, Superblock{}, fmt.Errorf("storage: http backend serves URLs, not local files (use OpenIndexURL)")
	default:
		f.Close()
		return nil, Superblock{}, fmt.Errorf("storage: unknown backend %d", backend)
	}
}

// readMemPager loads every page of the open index file into a MemPager — so
// subsequent reads never touch the file again — verifying each page against
// the v2 checksum table when one is present.
func readMemPager(f *os.File, sb Superblock, offset int64, table []uint32) (*MemPager, error) {
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return nil, fmt.Errorf("storage: seek index pages: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<16)
	pages := make([][]byte, sb.NumPages)
	for i := range pages {
		pages[i] = make([]byte, sb.PageSize)
		if _, err := io.ReadFull(r, pages[i]); err != nil {
			return nil, fmt.Errorf("%w: page %d: %v", ErrTruncated, i, err)
		}
		if table != nil {
			if err := VerifyPage(table, PageID(i), pages[i]); err != nil {
				return nil, err
			}
		}
	}
	return &MemPager{pageSize: sb.PageSize, pages: pages}, nil
}

// Backend selects how an index file's pages are accessed after open.
type Backend int

const (
	// BackendMem loads the whole page image into memory up front: fastest
	// reads, full-file RAM cost. The default, matching in-memory builds.
	BackendMem Backend = iota
	// BackendFile serves pages with positional reads (pread) from the file:
	// bounded memory, one syscall per buffer-pool miss.
	BackendFile
	// BackendMmap maps the file read-only and copies pages out of the
	// mapping: bounded memory, page-cache-speed faults, no read syscalls.
	BackendMmap
	// BackendHTTP fetches pages over HTTP range requests from a URL:
	// serving a shared index without a shared filesystem. See OpenIndexURL.
	BackendHTTP
)

// String returns the flag-style name of the backend.
func (b Backend) String() string {
	switch b {
	case BackendMem:
		return "mem"
	case BackendFile:
		return "file"
	case BackendMmap:
		return "mmap"
	case BackendHTTP:
		return "http"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend parses a flag-style backend name ("mem", "file", "mmap",
// "http").
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "mem", "memory":
		return BackendMem, nil
	case "file":
		return BackendFile, nil
	case "mmap":
		return BackendMmap, nil
	case "http", "https":
		return BackendHTTP, nil
	default:
		return 0, fmt.Errorf("storage: unknown backend %q (want mem, file, mmap, or http)", s)
	}
}
