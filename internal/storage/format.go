package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
)

// The durable index file format (".rcjx"):
//
//	block 0               one page-sized header block; the superblock
//	                      occupies its first SuperblockSize bytes, the rest
//	                      is zero
//	blocks 1..NumPages    the pager's pages, verbatim, page i at byte
//	                      offset PageSize·(1+i)
//
// The superblock is versioned and checksummed so a reopening process can
// reject foreign, corrupt, or truncated files with a typed error before it
// ever walks a tree page.
//
// Superblock layout (little endian):
//
//	offset  0: [8]byte  magic "RCJXIDX\x00"
//	offset  8: uint16   format version (currently 1)
//	offset 10: uint16   reserved (zero)
//	offset 12: uint32   page size in bytes
//	offset 16: uint32   number of pages following the header block
//	offset 20: uint32   root page id
//	offset 24: uint32   tree height (1 = root is a leaf)
//	offset 28: uint64   entry (point) count
//	offset 36: 4×float64 dataset MBR: minX, minY, maxX, maxY
//	offset 68: uint32   CRC-32 (IEEE) of bytes [0, 68)
const (
	// SuperblockSize is the encoded size of a Superblock in bytes.
	SuperblockSize = 72
	// FormatVersion is the current index file format version.
	FormatVersion = 1
)

// Magic identifies an index file; it is the first 8 bytes of the superblock.
var Magic = [8]byte{'R', 'C', 'J', 'X', 'I', 'D', 'X', 0}

// Typed errors for index-file validation. OpenIndexFile (and everything
// layered above it) wraps these, so callers can errors.Is-match the failure
// mode.
var (
	// ErrBadMagic means the file does not start with the index magic.
	ErrBadMagic = errors.New("storage: bad index file magic")
	// ErrBadVersion means the superblock's format version is unsupported.
	ErrBadVersion = errors.New("storage: unsupported index format version")
	// ErrBadChecksum means the superblock's CRC does not match its contents.
	ErrBadChecksum = errors.New("storage: superblock checksum mismatch")
	// ErrTruncated means the file is shorter than its superblock promises.
	ErrTruncated = errors.New("storage: truncated index file")
	// ErrCorrupt means a superblock field is internally inconsistent.
	ErrCorrupt = errors.New("storage: corrupt index file")
	// ErrPageSizeMismatch means the file's page size differs from the one
	// the caller required.
	ErrPageSizeMismatch = errors.New("storage: page size mismatch")
)

// Superblock is the tree-metadata block at the head of an index file: enough
// to reattach an R-tree to the page image without touching a single point.
type Superblock struct {
	PageSize int        // fixed page size in bytes
	NumPages int        // pages following the header block
	Root     PageID     // page id of the tree root (InvalidPageID when empty)
	Height   int        // tree height (1 = root is a leaf, 0 = empty)
	Count    int64      // number of indexed entries
	MBR      [4]float64 // dataset bounding rect: minX, minY, maxX, maxY
}

// EncodeSuperblock serializes sb into buf, which must be at least
// SuperblockSize bytes. It fails on a superblock that Validate rejects, so
// every encoded superblock decodes cleanly.
func EncodeSuperblock(sb Superblock, buf []byte) error {
	if len(buf) < SuperblockSize {
		return fmt.Errorf("storage: superblock buffer %d smaller than %d", len(buf), SuperblockSize)
	}
	if err := sb.Validate(); err != nil {
		return err
	}
	copy(buf[0:8], Magic[:])
	binary.LittleEndian.PutUint16(buf[8:], FormatVersion)
	binary.LittleEndian.PutUint16(buf[10:], 0)
	binary.LittleEndian.PutUint32(buf[12:], uint32(sb.PageSize))
	binary.LittleEndian.PutUint32(buf[16:], uint32(sb.NumPages))
	binary.LittleEndian.PutUint32(buf[20:], uint32(sb.Root))
	binary.LittleEndian.PutUint32(buf[24:], uint32(sb.Height))
	binary.LittleEndian.PutUint64(buf[28:], uint64(sb.Count))
	for i, v := range sb.MBR {
		binary.LittleEndian.PutUint64(buf[36+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(buf[68:], crc32.ChecksumIEEE(buf[:68]))
	return nil
}

// DecodeSuperblock parses and validates a superblock. Failures carry one of
// the typed errors above.
func DecodeSuperblock(buf []byte) (Superblock, error) {
	if len(buf) < SuperblockSize {
		return Superblock{}, fmt.Errorf("%w: %d bytes, superblock needs %d", ErrTruncated, len(buf), SuperblockSize)
	}
	if [8]byte(buf[0:8]) != Magic {
		return Superblock{}, fmt.Errorf("%w: %q", ErrBadMagic, buf[0:8])
	}
	if v := binary.LittleEndian.Uint16(buf[8:]); v != FormatVersion {
		return Superblock{}, fmt.Errorf("%w: %d (supported: %d)", ErrBadVersion, v, FormatVersion)
	}
	if r := binary.LittleEndian.Uint16(buf[10:]); r != 0 {
		return Superblock{}, fmt.Errorf("%w: reserved field %#x", ErrCorrupt, r)
	}
	want := binary.LittleEndian.Uint32(buf[68:])
	if got := crc32.ChecksumIEEE(buf[:68]); got != want {
		return Superblock{}, fmt.Errorf("%w: computed %08x, stored %08x", ErrBadChecksum, got, want)
	}
	sb := Superblock{
		PageSize: int(binary.LittleEndian.Uint32(buf[12:])),
		NumPages: int(binary.LittleEndian.Uint32(buf[16:])),
		Root:     PageID(binary.LittleEndian.Uint32(buf[20:])),
		Height:   int(binary.LittleEndian.Uint32(buf[24:])),
		Count:    int64(binary.LittleEndian.Uint64(buf[28:])),
	}
	for i := range sb.MBR {
		sb.MBR[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[36+8*i:]))
	}
	if err := sb.Validate(); err != nil {
		return Superblock{}, err
	}
	return sb, nil
}

// Validate checks the superblock's internal consistency: sane page size, a
// root that lies inside the page range, and height/count agreement.
func (sb Superblock) Validate() error {
	if sb.PageSize < SuperblockSize || sb.PageSize > 1<<24 {
		return fmt.Errorf("%w: page size %d", ErrCorrupt, sb.PageSize)
	}
	if sb.NumPages < 0 || sb.NumPages > int(InvalidPageID) {
		return fmt.Errorf("%w: page count %d", ErrCorrupt, sb.NumPages)
	}
	if sb.Count < 0 {
		return fmt.Errorf("%w: entry count %d", ErrCorrupt, sb.Count)
	}
	if sb.Count == 0 {
		if sb.Root != InvalidPageID || sb.Height != 0 {
			return fmt.Errorf("%w: empty tree with root %d height %d", ErrCorrupt, sb.Root, sb.Height)
		}
		return nil
	}
	if sb.Root == InvalidPageID || int(sb.Root) >= sb.NumPages {
		return fmt.Errorf("%w: root page %d of %d pages", ErrCorrupt, sb.Root, sb.NumPages)
	}
	if sb.Height < 1 || sb.Height > 64 {
		return fmt.Errorf("%w: tree height %d", ErrCorrupt, sb.Height)
	}
	return nil
}

// WriteIndexFile durably writes src's pages to path in the index file
// format, prefixed by sb. sb must describe src exactly (page size and page
// count). The file is written to a temp sibling and renamed into place, so a
// crashed Save never leaves a half-written index at path.
func WriteIndexFile(path string, sb Superblock, src Pager) error {
	if sb.PageSize != src.PageSize() {
		return fmt.Errorf("storage: superblock page size %d != pager page size %d", sb.PageSize, src.PageSize())
	}
	if sb.NumPages != src.NumPages() {
		return fmt.Errorf("storage: superblock page count %d != pager page count %d", sb.NumPages, src.NumPages())
	}
	// A unique temp name per writer: concurrent Saves to the same path must
	// not interleave into one tmp file, or the rename would install a blend
	// of two page images.
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("storage: create index file: %w", err)
	}
	tmp := f.Name()
	err = func() error {
		if err := f.Chmod(0o644); err != nil { // CreateTemp defaults to 0600
			return err
		}
		w := bufio.NewWriterSize(f, 1<<16)
		header := make([]byte, sb.PageSize)
		if err := EncodeSuperblock(sb, header); err != nil {
			return err
		}
		if _, err := w.Write(header); err != nil {
			return err
		}
		buf := make([]byte, sb.PageSize)
		for i := 0; i < sb.NumPages; i++ {
			if err := src.ReadPage(PageID(i), buf); err != nil {
				return err
			}
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: write index file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: write index file: %w", err)
	}
	return nil
}

// ReadSuperblockFile reads and validates the superblock of the index file at
// path without touching its pages.
func ReadSuperblockFile(path string) (Superblock, error) {
	f, err := os.Open(path)
	if err != nil {
		return Superblock{}, err
	}
	defer f.Close()
	buf := make([]byte, SuperblockSize)
	if _, err := io.ReadFull(f, buf); err != nil {
		return Superblock{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return DecodeSuperblock(buf)
}

// SniffIndexFile reports whether the file at path begins with the index
// magic (i.e. looks like an index file rather than, say, a CSV). It reads at
// most 8 bytes and never fails on short or unreadable files.
func SniffIndexFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var m [8]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false
	}
	return m == Magic
}

// OpenIndexFile validates the index file at path and returns a read-only
// Pager over its pages, materialized by the chosen backend, plus the decoded
// superblock. Validation failures carry the typed errors above.
func OpenIndexFile(path string, backend Backend) (Pager, Superblock, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Superblock{}, fmt.Errorf("storage: open index file: %w", err)
	}
	sbBuf := make([]byte, SuperblockSize)
	if _, err := io.ReadFull(f, sbBuf); err != nil {
		f.Close()
		return nil, Superblock{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	sb, err := DecodeSuperblock(sbBuf)
	if err != nil {
		f.Close()
		return nil, Superblock{}, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, Superblock{}, fmt.Errorf("storage: stat index file: %w", err)
	}
	need := int64(sb.PageSize) * int64(1+sb.NumPages)
	if info.Size() < need {
		f.Close()
		return nil, Superblock{}, fmt.Errorf("%w: %d bytes, superblock promises %d", ErrTruncated, info.Size(), need)
	}
	offset := int64(sb.PageSize)
	switch backend {
	case BackendMem:
		pager, err := readMemPager(f, sb, offset)
		f.Close()
		if err != nil {
			return nil, Superblock{}, err
		}
		return pager, sb, nil
	case BackendFile:
		return openedFilePager(f, sb.PageSize, offset, sb.NumPages), sb, nil
	case BackendMmap:
		pager, err := newMmapPager(f, sb.PageSize, offset, sb.NumPages)
		f.Close()
		if err != nil {
			return nil, Superblock{}, err
		}
		return pager, sb, nil
	default:
		f.Close()
		return nil, Superblock{}, fmt.Errorf("storage: unknown backend %d", backend)
	}
}

// readMemPager loads every page of the open index file into a MemPager, so
// subsequent reads never touch the file again.
func readMemPager(f *os.File, sb Superblock, offset int64) (*MemPager, error) {
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return nil, fmt.Errorf("storage: seek index pages: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<16)
	pages := make([][]byte, sb.NumPages)
	for i := range pages {
		pages[i] = make([]byte, sb.PageSize)
		if _, err := io.ReadFull(r, pages[i]); err != nil {
			return nil, fmt.Errorf("%w: page %d: %v", ErrTruncated, i, err)
		}
	}
	return &MemPager{pageSize: sb.PageSize, pages: pages}, nil
}

// Backend selects how an index file's pages are accessed after open.
type Backend int

const (
	// BackendMem loads the whole page image into memory up front: fastest
	// reads, full-file RAM cost. The default, matching in-memory builds.
	BackendMem Backend = iota
	// BackendFile serves pages with positional reads (pread) from the file:
	// bounded memory, one syscall per buffer-pool miss.
	BackendFile
	// BackendMmap maps the file read-only and copies pages out of the
	// mapping: bounded memory, page-cache-speed faults, no read syscalls.
	BackendMmap
)

// String returns the flag-style name of the backend.
func (b Backend) String() string {
	switch b {
	case BackendMem:
		return "mem"
	case BackendFile:
		return "file"
	case BackendMmap:
		return "mmap"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend parses a flag-style backend name ("mem", "file", "mmap").
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "mem", "memory":
		return BackendMem, nil
	case "file":
		return BackendFile, nil
	case "mmap":
		return BackendMmap, nil
	default:
		return 0, fmt.Errorf("storage: unknown backend %q (want mem, file, or mmap)", s)
	}
}
