package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

func testPagerBasics(t *testing.T, p Pager) {
	t.Helper()
	if p.NumPages() != 0 {
		t.Fatalf("fresh pager has %d pages", p.NumPages())
	}
	id1, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id2, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("duplicate page ids")
	}
	if p.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", p.NumPages())
	}

	data := bytes.Repeat([]byte{0xAB}, p.PageSize())
	if err := p.WritePage(id2, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, p.PageSize())
	if err := p.ReadPage(id2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read != written")
	}
	// Fresh page is zeroed.
	if err := p.ReadPage(id1, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}
	// Short writes zero-pad the tail.
	if err := p.WritePage(id2, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := p.ReadPage(id2, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 || buf[3] != 0 {
		t.Fatal("short write not padded")
	}

	// Out-of-range access errors.
	if err := p.ReadPage(99, buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("read out of range: %v", err)
	}
	if err := p.WritePage(99, buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("write out of range: %v", err)
	}
	// Oversized write rejected.
	if err := p.WritePage(id1, make([]byte, p.PageSize()+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
	// Undersized read buffer rejected.
	if err := p.ReadPage(id1, make([]byte, 1)); err == nil {
		t.Fatal("undersized read buffer accepted")
	}

	st := p.Stats()
	if st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
}

func TestMemPager(t *testing.T) {
	p := NewMemPager(0)
	if p.PageSize() != DefaultPageSize {
		t.Fatalf("default page size = %d", p.PageSize())
	}
	testPagerBasics(t, p)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFilePager(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	p, err := CreateFilePager(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	testPagerBasics(t, p)

	// Persist a recognizable page, close, reopen, verify.
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x5C}, 512)
	if err := p.WritePage(id, payload); err != nil {
		t.Fatal(err)
	}
	numPages := p.NumPages()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenFilePager(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumPages() != numPages {
		t.Fatalf("reopened pager has %d pages, want %d", re.NumPages(), numPages)
	}
	buf := make([]byte, 512)
	if err := re.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("persisted page corrupted")
	}
}

func TestOpenFilePagerBadSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.db")
	p, err := CreateFilePager(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := OpenFilePager(path, 768); err == nil {
		t.Fatal("mismatched page size accepted")
	}
	if _, err := OpenFilePager(filepath.Join(t.TempDir(), "missing.db"), 512); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestMemPagerConcurrent(t *testing.T) {
	p := NewMemPager(128)
	const pages = 32
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 128)
			for i := 0; i < 200; i++ {
				id := ids[(g*7+i)%pages]
				if i%3 == 0 {
					if err := p.WritePage(id, buf); err != nil {
						t.Error(err)
						return
					}
				} else if err := p.ReadPage(id, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFilePagerConcurrent hammers the lock-free read path (satellite of the
// durable-storage refactor): many goroutines read while one writes and one
// allocates. Run with -race.
func TestFilePagerConcurrent(t *testing.T) {
	p, err := CreateFilePager(filepath.Join(t.TempDir(), "pages.db"), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const pages = 16
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := p.WritePage(id, bytes.Repeat([]byte{byte(i)}, 256)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 256)
			for i := 0; i < 300; i++ {
				switch {
				case g == 0 && i%10 == 0: // one writer refreshes pages
					if err := p.WritePage(ids[i%pages], buf); err != nil {
						t.Error(err)
						return
					}
				case g == 1 && i%50 == 0: // occasional growth
					if _, err := p.Allocate(); err != nil {
						t.Error(err)
						return
					}
				default: // everyone else reads lock-free
					if err := p.ReadPage(ids[(g*5+i)%pages], buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if st := p.Stats(); st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("stats not counting: %+v", st)
	}
}

// TestReadOnlyPagersConcurrent checks the serving-side pagers (file and
// mmap over an index file) under concurrent readers. Run with -race.
func TestReadOnlyPagersConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ix.rcjx")
	want := writeTestIndexFile(t, path, 8)
	backends := []Backend{BackendFile}
	if MmapSupported {
		backends = append(backends, BackendMmap)
	}
	for _, be := range backends {
		t.Run(be.String(), func(t *testing.T) {
			pager, _, err := OpenIndexFile(path, be)
			if err != nil {
				t.Fatal(err)
			}
			defer pager.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					buf := make([]byte, want.PageSize)
					for i := 0; i < 300; i++ {
						id := PageID((g*3 + i) % want.NumPages)
						if err := pager.ReadPage(id, buf); err != nil {
							t.Error(err)
							return
						}
						if buf[0] != byte(id+1) {
							t.Errorf("page %d: got byte %d", id, buf[0])
							return
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
