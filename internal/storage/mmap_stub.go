//go:build !unix

package storage

import (
	"errors"
	"os"
)

// MmapSupported reports whether the mmap backend is available on this
// platform.
const MmapSupported = false

// ErrMmapUnsupported is returned by the mmap backend on platforms without
// memory-mapped files; callers should fall back to BackendFile.
var ErrMmapUnsupported = errors.New("storage: mmap backend not supported on this platform")

// newMmapPager fails on non-unix platforms.
func newMmapPager(f *os.File, pageSize int, base int64, numPages int) (Pager, error) {
	return nil, ErrMmapUnsupported
}

// mmapReaderAt is unavailable on non-unix platforms; only the constructor's
// error path is ever reached.
type mmapReaderAt struct{}

func (*mmapReaderAt) ReadAt(p []byte, off int64) (int, error) { return 0, ErrMmapUnsupported }
func (*mmapReaderAt) Close() error                            { return nil }

// newMmapReaderAt fails on non-unix platforms.
func newMmapReaderAt(f *os.File, length int64) (*mmapReaderAt, error) {
	return nil, ErrMmapUnsupported
}
