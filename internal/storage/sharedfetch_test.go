package storage

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedServer wraps the flaky index server and blocks any request whose
// Range starts at gateOff until the gate channel closes, counting how many
// requests asked for that offset. It is how the single-flight tests hold a
// leader's fetch open while waiters pile up.
type gatedServer struct {
	inner    *flakyIndexServer
	gateOff  int64
	gate     chan struct{}
	gatedReq atomic.Int64
}

func (s *gatedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if off, _, ok := parseRange(r.Header.Get("Range"), int64(len(s.inner.data))); ok && off == s.gateOff {
		s.gatedReq.Add(1)
		<-s.gate
	}
	s.inner.ServeHTTP(w, r)
}

// TestHTTPPagerSingleFlight pins the dedupe contract: N concurrent reads of
// one page issue exactly one origin request, and every waiter gets the
// verified bytes.
func TestHTTPPagerSingleFlight(t *testing.T) {
	data, sb := testIndexImage(t, 4)
	gated := &gatedServer{inner: newFlakyIndexServer(data), gate: make(chan struct{})}
	gated.gateOff = int64(sb.PageSize) // page 0
	srv := httptest.NewServer(gated)
	defer srv.Close()

	cfg := fastCfg()
	cfg.Client = &http.Client{Timeout: 5 * time.Second} // the gate holds the leader open
	p, _, err := OpenIndexURL(srv.URL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const readers = 8
	var wg sync.WaitGroup
	errs := make([]error, readers)
	bufs := make([][]byte, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bufs[i] = make([]byte, sb.PageSize)
			errs[i] = p.ReadPage(0, bufs[i])
		}(i)
	}
	// Waiters announce themselves via the SharedFetches counter before they
	// block, so this poll is race-free: once it reads readers-1 every
	// non-leader is (or will be) parked on the leader's flight.
	deadline := time.Now().Add(5 * time.Second)
	for p.Remote().SharedFetches < readers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for waiters: shared=%d", p.Remote().SharedFetches)
		}
		time.Sleep(time.Millisecond)
	}
	close(gated.gate)
	wg.Wait()

	want := bytes.Repeat([]byte{1}, sb.PageSize)
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if !bytes.Equal(bufs[i], want) {
			t.Fatalf("reader %d got wrong bytes", i)
		}
	}
	if n := gated.gatedReq.Load(); n != 1 {
		t.Fatalf("page 0 fetched %d times, want 1", n)
	}
	rs := p.Remote()
	if rs.SharedFetches != readers-1 {
		t.Fatalf("SharedFetches = %d, want %d", rs.SharedFetches, readers-1)
	}
	if st := p.Stats(); st.Reads != readers {
		t.Fatalf("Stats.Reads = %d, want %d (every waiter is a logical read)", st.Reads, readers)
	}
	// The flight must be gone: a later read fetches fresh.
	buf := make([]byte, sb.PageSize)
	if err := p.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if n := gated.gatedReq.Load(); n != 2 {
		t.Fatalf("post-flight read fetched %d times total, want 2", n)
	}
}

// TestHTTPPagerSingleFlightError pins error propagation: when the leader's
// fetch fails permanently, every waiter sees the same typed error, and the
// next read starts a fresh flight.
func TestHTTPPagerSingleFlightError(t *testing.T) {
	data, sb := testIndexImage(t, 4)
	gated := &gatedServer{inner: newFlakyIndexServer(data), gate: make(chan struct{})}
	gated.gateOff = int64(sb.PageSize)
	srv := httptest.NewServer(gated)
	defer srv.Close()

	cfg := fastCfg()
	cfg.Client = &http.Client{Timeout: 5 * time.Second}
	p, _, err := OpenIndexURL(srv.URL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	gated.inner.push(fault404) // the leader's one attempt fails permanently
	const readers = 4
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = p.ReadPage(0, make([]byte, sb.PageSize))
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.Remote().SharedFetches < readers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for waiters: shared=%d", p.Remote().SharedFetches)
		}
		time.Sleep(time.Millisecond)
	}
	close(gated.gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrRemote) {
			t.Fatalf("reader %d error = %v, want ErrRemote", i, err)
		}
	}
	// The failed flight must not poison the page: the next read succeeds.
	buf := make([]byte, sb.PageSize)
	if err := p.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{1}, sb.PageSize)) {
		t.Fatal("recovered read got wrong bytes")
	}
}

// TestReadPageRangeCoalesced pins the multi-page fetch: one request for a
// run of adjacent pages, per-page CRC verification, and whole-run retry on
// a corrupted body.
func TestReadPageRangeCoalesced(t *testing.T) {
	data, sb := testIndexImage(t, 6)
	flaky := newFlakyIndexServer(data)
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	p, _, err := OpenIndexURL(srv.URL, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	opened := flaky.requests.Load()

	pages, err := p.ReadPageRange(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3 {
		t.Fatalf("got %d pages, want 3", len(pages))
	}
	for i, pg := range pages {
		if !bytes.Equal(pg, bytes.Repeat([]byte{byte(i + 2)}, sb.PageSize)) {
			t.Fatalf("page %d contents differ", i+1)
		}
	}
	if got := flaky.requests.Load() - opened; got != 1 {
		t.Fatalf("3-page run cost %d requests, want 1", got)
	}
	rs := p.Remote()
	if rs.CoalescedFetches != 1 {
		t.Fatalf("CoalescedFetches = %d, want 1", rs.CoalescedFetches)
	}
	if st := p.Stats(); st.Reads != 3 {
		t.Fatalf("Stats.Reads = %d, want 3", st.Reads)
	}

	// A corrupted body fails some page's CRC and retries the whole run.
	flaky.push(faultCorrupt)
	if _, err := p.ReadPageRange(0, 4); err != nil {
		t.Fatal(err)
	}
	rs = p.Remote()
	if rs.ChecksumFailures == 0 || rs.Retries != 1 {
		t.Fatalf("after corrupted run: %+v, want >=1 checksum failure and 1 retry", rs)
	}
	if rs.CoalescedFetches != 2 {
		t.Fatalf("CoalescedFetches = %d, want 2 (retry is not a new coalesce)", rs.CoalescedFetches)
	}

	// A single-page run is not a coalesce, and bounds are enforced.
	if _, err := p.ReadPageRange(5, 1); err != nil {
		t.Fatal(err)
	}
	if rs := p.Remote(); rs.CoalescedFetches != 2 {
		t.Fatalf("CoalescedFetches = %d after 1-page run, want 2", rs.CoalescedFetches)
	}
	if _, err := p.ReadPageRange(4, 3); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("out-of-range run = %v", err)
	}
	if _, err := p.ReadPageRange(0, 0); err == nil {
		t.Fatal("zero-length run did not fail")
	}
}

// versionedServer serves an index image over ranges with validators, and can
// switch to a new version mid-session: honoring If-Range (full-body 200 on
// mismatch) or ignoring it while still rotating its validators.
type versionedServer struct {
	mu           sync.Mutex
	data         []byte
	etag         string
	lastMod      string
	honorIfRange bool
}

func (s *versionedServer) set(etag, lastMod string) {
	s.mu.Lock()
	s.etag, s.lastMod = etag, lastMod
	s.mu.Unlock()
}

func (s *versionedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	data, etag, lastMod, honor := s.data, s.etag, s.lastMod, s.honorIfRange
	s.mu.Unlock()
	if etag != "" {
		w.Header().Set("ETag", etag)
	}
	if lastMod != "" {
		w.Header().Set("Last-Modified", lastMod)
	}
	rangeHdr := r.Header.Get("Range")
	ir := r.Header.Get("If-Range")
	stale := honor && ir != "" && ir != etag && ir != lastMod
	if rangeHdr == "" || stale {
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.WriteHeader(http.StatusOK)
		w.Write(data)
		return
	}
	off, n, ok := parseRange(rangeHdr, int64(len(data)))
	if !ok {
		http.Error(w, "bad range", http.StatusRequestedRangeNotSatisfiable)
		return
	}
	w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+n-1, len(data)))
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	w.WriteHeader(http.StatusPartialContent)
	w.Write(data[off : off+n])
}

// TestHTTPPagerOriginChanged pins the validator contract across three origin
// behaviors: If-Range honored, If-Range ignored but ETag rotated, and a
// Last-Modified-only origin.
func TestHTTPPagerOriginChanged(t *testing.T) {
	data, sb := testIndexImage(t, 4)
	for _, tc := range []struct {
		name  string
		setup func(*versionedServer)
		flip  func(*versionedServer)
	}{
		{
			name:  "if-range honored",
			setup: func(s *versionedServer) { s.etag = `"v1"`; s.honorIfRange = true },
			flip:  func(s *versionedServer) { s.set(`"v2"`, "") },
		},
		{
			name:  "if-range ignored, etag rotated",
			setup: func(s *versionedServer) { s.etag = `"v1"` },
			flip:  func(s *versionedServer) { s.set(`"v2"`, "") },
		},
		{
			name:  "last-modified only",
			setup: func(s *versionedServer) { s.lastMod = "Mon, 02 Jan 2006 15:04:05 GMT" },
			flip:  func(s *versionedServer) { s.set("", "Tue, 03 Jan 2006 15:04:05 GMT") },
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			vs := &versionedServer{data: data}
			tc.setup(vs)
			srv := httptest.NewServer(vs)
			defer srv.Close()

			p, _, err := OpenIndexURL(srv.URL, fastCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			buf := make([]byte, sb.PageSize)
			if err := p.ReadPage(0, buf); err != nil {
				t.Fatalf("read before flip: %v", err)
			}
			before := p.Remote()

			tc.flip(vs)
			err = p.ReadPage(1, buf)
			if !errors.Is(err, ErrOriginChanged) {
				t.Fatalf("read after flip = %v, want ErrOriginChanged", err)
			}
			if !errors.Is(err, ErrRemote) {
				t.Fatalf("ErrOriginChanged not wrapped in ErrRemote: %v", err)
			}
			// Permanent: the retry budget must not be burned on it.
			if rs := p.Remote().Sub(before); rs.Retries != 0 {
				t.Fatalf("origin change burned %d retries", rs.Retries)
			}
			if _, err := p.ReadPageRange(0, 2); !errors.Is(err, ErrOriginChanged) {
				t.Fatalf("coalesced read after flip = %v, want ErrOriginChanged", err)
			}
		})
	}
}

// TestHTTPPagerStableValidators pins the happy path: an origin that keeps
// its validators stable serves every page under If-Range without incident.
func TestHTTPPagerStableValidators(t *testing.T) {
	data, sb := testIndexImage(t, 4)
	vs := &versionedServer{data: data, etag: `"v1"`, honorIfRange: true}
	srv := httptest.NewServer(vs)
	defer srv.Close()

	p, _, err := OpenIndexURL(srv.URL, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	buf := make([]byte, sb.PageSize)
	for i := 0; i < sb.NumPages; i++ {
		if err := p.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, bytes.Repeat([]byte{byte(i + 1)}, sb.PageSize)) {
			t.Fatalf("page %d contents differ", i)
		}
	}
}
