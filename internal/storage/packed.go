package storage

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/pagecodec"
)

// This file is the packed (format v3) half of the index-file machinery: the
// writer body that turns a pager's pages into directory-located compressed
// blobs, and the read side that serves those blobs back as verbatim pages on
// every local backend. The HTTP backend's packed path lives with the rest of
// the remote pager in httppager.go.

// writePackedBody streams the v3 body — page directory, blobs, checksum
// table — to w, which has already received the header block. Blobs are
// buffered in memory (the compressed image, typically well under half the
// raw size) because the directory precedes them in the file but their
// offsets are only known once every page is encoded.
func writePackedBody(w *bufio.Writer, sb Superblock, src Pager) error {
	base := uint64(sb.PageSize) + uint64(PageDirSize(sb.NumPages))
	dir := make([]uint64, sb.NumPages+1)
	table := make([]uint32, sb.NumPages)
	blobs := make([]byte, 0, sb.NumPages*64)
	buf := make([]byte, sb.PageSize)
	for i := 0; i < sb.NumPages; i++ {
		if err := src.ReadPage(PageID(i), buf); err != nil {
			return err
		}
		table[i] = PageChecksum(buf)
		dir[i] = base + uint64(len(blobs))
		blobs = pagecodec.AppendPage(blobs, buf)
	}
	dir[sb.NumPages] = base + uint64(len(blobs))
	dbuf := make([]byte, PageDirSize(sb.NumPages))
	if err := EncodePageDir(dir, dbuf); err != nil {
		return err
	}
	if _, err := w.Write(dbuf); err != nil {
		return err
	}
	if _, err := w.Write(blobs); err != nil {
		return err
	}
	tbuf := make([]byte, PageTableSize(sb.NumPages))
	if err := EncodePageTable(table, tbuf); err != nil {
		return err
	}
	_, err := w.Write(tbuf)
	return err
}

// readPackedMeta reads and validates the page directory and checksum table
// of a packed index from r. size is the total file length (-1 when unknown);
// with the directory decoded the exact end of file is known and checked.
func readPackedMeta(r io.ReaderAt, size int64, sb Superblock) (dir []uint64, table []uint32, err error) {
	dbuf := make([]byte, PageDirSize(sb.NumPages))
	if _, err := r.ReadAt(dbuf, int64(sb.PageSize)); err != nil {
		return nil, nil, fmt.Errorf("%w: page directory: %v", ErrTruncated, err)
	}
	if dir, err = DecodePageDir(dbuf, sb); err != nil {
		return nil, nil, err
	}
	end := int64(dir[sb.NumPages]) + int64(PageTableSize(sb.NumPages))
	if size >= 0 && size < end {
		return nil, nil, fmt.Errorf("%w: %d bytes, page directory promises %d", ErrTruncated, size, end)
	}
	tbuf := make([]byte, PageTableSize(sb.NumPages))
	if _, err := r.ReadAt(tbuf, int64(dir[sb.NumPages])); err != nil {
		return nil, nil, fmt.Errorf("%w: page table: %v", ErrTruncated, err)
	}
	if table, err = DecodePageTable(tbuf, sb.NumPages); err != nil {
		return nil, nil, err
	}
	return dir, table, nil
}

// openPackedIndexFile stands up the backend for a validated packed index
// whose superblock has been read from the open file f. It owns f: either the
// returned pager keeps serving from it or it is closed before returning.
func openPackedIndexFile(f *os.File, size int64, sb Superblock, backend Backend) (Pager, error) {
	dir, table, err := readPackedMeta(f, size, sb)
	if err != nil {
		f.Close()
		return nil, err
	}
	switch backend {
	case BackendMem:
		pager, err := readPackedMemPager(f, sb, dir, table)
		f.Close()
		return pager, err
	case BackendFile:
		return newPackedPager(f, f, sb.PageSize, dir, table), nil
	case BackendMmap:
		m, err := newMmapReaderAt(f, int64(dir[sb.NumPages]))
		f.Close()
		if err != nil {
			return nil, err
		}
		return newPackedPager(m, m, sb.PageSize, dir, table), nil
	case BackendHTTP:
		f.Close()
		return nil, fmt.Errorf("storage: http backend serves URLs, not local files (use OpenIndexURL)")
	default:
		f.Close()
		return nil, fmt.Errorf("storage: unknown backend %d", backend)
	}
}

// readPackedMemPager decodes every blob of the packed index into a fully
// materialized MemPager, verifying each page against the checksum table —
// the packed analogue of readMemPager: one pass at open, no file access
// after.
func readPackedMemPager(f *os.File, sb Superblock, dir []uint64, table []uint32) (*MemPager, error) {
	region := make([]byte, dir[sb.NumPages]-dir[0])
	if len(region) > 0 {
		if _, err := f.ReadAt(region, int64(dir[0])); err != nil {
			return nil, fmt.Errorf("%w: page blobs: %v", ErrTruncated, err)
		}
	}
	pages := make([][]byte, sb.NumPages)
	for i := range pages {
		pages[i] = make([]byte, sb.PageSize)
		blob := region[dir[i]-dir[0] : dir[i+1]-dir[0]]
		if err := pagecodec.DecodePage(pages[i], blob); err != nil {
			return nil, fmt.Errorf("%w: page %d: %v", ErrCorrupt, i, err)
		}
		if err := VerifyPage(table, PageID(i), pages[i]); err != nil {
			return nil, err
		}
	}
	return &MemPager{pageSize: sb.PageSize, pages: pages}, nil
}

// packedPager serves a packed index from any random-access substrate: page i
// is the blob at [dir[i], dir[i+1]), decoded to a verbatim page image and
// verified against the checksum table on every read. The file backend hands
// it the open file (one pread per miss); the mmap backend hands it the
// mapping (no syscalls). Reads are lock-free and safe for concurrent use —
// each decodes into the caller's buffer through a private blob copy.
type packedPager struct {
	r        io.ReaderAt
	closer   io.Closer
	pageSize int
	dir      []uint64
	table    []uint32
	reads    atomic.Int64
}

func newPackedPager(r io.ReaderAt, c io.Closer, pageSize int, dir []uint64, table []uint32) *packedPager {
	return &packedPager{r: r, closer: c, pageSize: pageSize, dir: dir, table: table}
}

// PageSize returns the (uncompressed) page size in bytes.
func (p *packedPager) PageSize() int { return p.pageSize }

// NumPages returns the number of pages the index carries.
func (p *packedPager) NumPages() int { return len(p.dir) - 1 }

// Allocate fails: the packed index is read-only.
func (p *packedPager) Allocate() (PageID, error) {
	return InvalidPageID, fmt.Errorf("%w: allocate", ErrReadOnly)
}

// WritePage fails: the packed index is read-only.
func (p *packedPager) WritePage(id PageID, buf []byte) error {
	return fmt.Errorf("%w: write page %d", ErrReadOnly, id)
}

// ReadPage reads page id's blob, decodes it into buf, and verifies the
// decoded image against the checksum table.
func (p *packedPager) ReadPage(id PageID, buf []byte) error {
	n := len(p.dir) - 1
	if int(id) >= n {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, n)
	}
	if len(buf) < p.pageSize {
		return fmt.Errorf("storage: read buffer %d smaller than page size %d", len(buf), p.pageSize)
	}
	blob := make([]byte, p.dir[id+1]-p.dir[id])
	if _, err := p.r.ReadAt(blob, int64(p.dir[id])); err != nil {
		return fmt.Errorf("storage: read page %d blob: %w", id, err)
	}
	if err := pagecodec.DecodePage(buf[:p.pageSize], blob); err != nil {
		return fmt.Errorf("%w: page %d: %v", ErrCorrupt, id, err)
	}
	if err := VerifyPage(p.table, id, buf[:p.pageSize]); err != nil {
		return err
	}
	p.reads.Add(1)
	return nil
}

// Stats returns cumulative physical I/O counters (reads only; the packed
// index never writes).
func (p *packedPager) Stats() Stats { return Stats{Reads: p.reads.Load()} }

// Close releases the underlying file or mapping.
func (p *packedPager) Close() error { return p.closer.Close() }
