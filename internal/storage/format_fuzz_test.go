package storage

import (
	"bytes"
	"testing"
)

// FuzzDecodeSuperblock throws arbitrary bytes at the superblock decoder: it
// must never panic, and anything it accepts must re-encode to the identical
// bytes (the format has no redundant encodings). Seeds cover both format
// versions so the corpus keeps exercising v1 and v2 decoding.
func FuzzDecodeSuperblock(f *testing.F) {
	for _, version := range []int{FormatVersion1, FormatVersion2} {
		valid := make([]byte, SuperblockSize)
		if err := EncodeSuperblock(Superblock{
			Version:  version,
			PageSize: DefaultPageSize,
			NumPages: 9,
			Root:     3,
			Height:   2,
			Count:    1000,
			MBR:      [4]float64{0, 0, 10000, 10000},
		}, valid); err != nil {
			f.Fatal(err)
		}
		f.Add(valid)
		f.Add(valid[:SuperblockSize/2])
		corrupt := append([]byte(nil), valid...)
		corrupt[20] ^= 0xFF
		f.Add(corrupt)
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sb, err := DecodeSuperblock(data)
		if err != nil {
			return
		}
		if sb.Version != FormatVersion1 && sb.Version != FormatVersion2 {
			t.Fatalf("decoder accepted unknown version %d", sb.Version)
		}
		if err := sb.Validate(); err != nil {
			t.Fatalf("decoder accepted a superblock Validate rejects: %v", err)
		}
		out := make([]byte, SuperblockSize)
		if err := EncodeSuperblock(sb, out); err != nil {
			t.Fatalf("re-encode of accepted superblock failed: %v", err)
		}
		if !bytes.Equal(out, data[:SuperblockSize]) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", out, data[:SuperblockSize])
		}
	})
}

// FuzzDecodePageTable throws arbitrary bytes and page counts at the v2 page
// table decoder: no panics, and any accepted table must re-encode to the
// identical bytes.
func FuzzDecodePageTable(f *testing.F) {
	valid := make([]byte, PageTableSize(3))
	if err := EncodePageTable([]uint32{1, 0xDEADBEEF, 42}, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid, 3)
	f.Add(valid, 4)     // too short for the claimed count
	f.Add(valid[:5], 3) // truncated
	f.Add([]byte{}, 0)  // empty table still carries its own CRC
	f.Add(valid, -1)    // insane count
	f.Add(valid, 1<<30) // absurd count must not allocate wildly
	corrupt := append([]byte(nil), valid...)
	corrupt[2] ^= 0x01
	f.Add(corrupt, 3)

	f.Fuzz(func(t *testing.T, data []byte, numPages int) {
		// Cap the claimed count so a fuzzed giant value cannot make the
		// harness itself allocate gigabytes on the re-encode path; the
		// decoder must reject anything longer than its buffer regardless.
		if numPages > 1<<20 {
			if _, err := DecodePageTable(data, numPages); err == nil && len(data) < PageTableSize(numPages) {
				t.Fatal("decoder accepted a table shorter than its count")
			}
			return
		}
		table, err := DecodePageTable(data, numPages)
		if err != nil {
			return
		}
		if len(table) != numPages {
			t.Fatalf("accepted table has %d entries, want %d", len(table), numPages)
		}
		out := make([]byte, PageTableSize(numPages))
		if err := EncodePageTable(table, out); err != nil {
			t.Fatalf("re-encode of accepted table failed: %v", err)
		}
		if !bytes.Equal(out, data[:PageTableSize(numPages)]) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", out, data[:PageTableSize(numPages)])
		}
	})
}
