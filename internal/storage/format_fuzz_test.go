package storage

import (
	"bytes"
	"testing"
)

// FuzzDecodeSuperblock throws arbitrary bytes at the superblock decoder: it
// must never panic, and anything it accepts must re-encode to the identical
// bytes (the format has no redundant encodings).
func FuzzDecodeSuperblock(f *testing.F) {
	valid := make([]byte, SuperblockSize)
	if err := EncodeSuperblock(Superblock{
		PageSize: DefaultPageSize,
		NumPages: 9,
		Root:     3,
		Height:   2,
		Count:    1000,
		MBR:      [4]float64{0, 0, 10000, 10000},
	}, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:SuperblockSize/2])
	corrupt := append([]byte(nil), valid...)
	corrupt[20] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		sb, err := DecodeSuperblock(data)
		if err != nil {
			return
		}
		if err := sb.Validate(); err != nil {
			t.Fatalf("decoder accepted a superblock Validate rejects: %v", err)
		}
		out := make([]byte, SuperblockSize)
		if err := EncodeSuperblock(sb, out); err != nil {
			t.Fatalf("re-encode of accepted superblock failed: %v", err)
		}
		if !bytes.Equal(out, data[:SuperblockSize]) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", out, data[:SuperblockSize])
		}
	})
}
