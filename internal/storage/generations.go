package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Generation naming for live (mutable) indexes: each compaction seals the
// current point set into a fresh immutable index file next to the original,
// named by inserting ".g<seq>" before the extension —
//
//	points.rcjx  →  points.g000007.rcjx   (generation sealed at epoch 7)
//
// so generations of one index sort lexically in epoch order, a directory
// listing shows the lineage at a glance, and pruning old generations is a
// prefix glob. The original path itself is generation zero and is never
// rewritten in place: readers holding the old generation keep a consistent
// file under their feet until the epoch's last reference drains.

// genWidth is the zero-padded width of the generation number in filenames;
// wide enough that lexical order equals numeric order for any realistic
// compaction count.
const genWidth = 6

// GenerationPath returns the filename of generation seq of the index at
// path: ".g<seq>" is inserted before the extension (appended when path has
// none).
func GenerationPath(path string, seq uint64) string {
	ext := filepath.Ext(path)
	stem := strings.TrimSuffix(path, ext)
	return fmt.Sprintf("%s.g%0*d%s", stem, genWidth, seq, ext)
}

// generationSeq reports the generation number a sibling filename encodes for
// the index at path, matching the GenerationPath layout.
func generationSeq(path, name string) (uint64, bool) {
	ext := filepath.Ext(path)
	base := filepath.Base(path)
	stem := strings.TrimSuffix(base, ext)
	rest, ok := strings.CutPrefix(name, stem+".g")
	if !ok {
		return 0, false
	}
	num, ok := strings.CutSuffix(rest, ext)
	if !ok || len(num) < genWidth {
		return 0, false
	}
	seq, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// ListGenerations returns the on-disk generation files of the index at path
// in ascending epoch order (the original path itself is not included).
func ListGenerations(path string) ([]string, error) {
	dir := filepath.Dir(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type gen struct {
		seq  uint64
		name string
	}
	var gens []gen
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if seq, ok := generationSeq(path, e.Name()); ok {
			gens = append(gens, gen{seq: seq, name: e.Name()})
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].seq < gens[j].seq })
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = filepath.Join(dir, g.name)
	}
	return out, nil
}

// PruneGenerations deletes all but the newest keep generation files of the
// index at path, returning the paths removed. keep <= 0 keeps only the
// newest. Files that vanish concurrently are not an error.
func PruneGenerations(path string, keep int) ([]string, error) {
	if keep <= 0 {
		keep = 1
	}
	gens, err := ListGenerations(path)
	if err != nil {
		return nil, err
	}
	if len(gens) <= keep {
		return nil, nil
	}
	doomed := gens[:len(gens)-keep]
	var removed []string
	for _, p := range doomed {
		if err := os.Remove(p); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return removed, err
		}
		removed = append(removed, p)
	}
	return removed, nil
}
