package storage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pagecodec"
)

// ErrRemote is the typed failure of the HTTP pager: the server answered, but
// not with the bytes asked for (unexpected status, missing range support,
// short body). Transport-level errors and retryable statuses are retried
// with capped backoff first; ErrRemote surfaces only once retries are
// exhausted or the failure is permanent.
var ErrRemote = errors.New("storage: remote index fetch failed")

// ErrOriginChanged means the origin served a different object than the one
// the pager validated at open: the ETag (or Last-Modified, when the origin
// sends no ETag) of a later response no longer matches the one captured on
// the first. Pages fetched across such a boundary would mix two index
// builds, so the fetch fails permanently (wrapped in ErrRemote, never
// retried) and the index must be reopened.
var ErrOriginChanged = errors.New("storage: remote index changed at origin")

// IsIndexURL reports whether src names a remote index (an http:// or
// https:// URL) rather than a local file path.
func IsIndexURL(src string) bool {
	return strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://")
}

// HTTPPagerConfig tunes the remote pager. The zero value selects sane
// serving defaults; tests shrink the backoff to keep fault-injection runs
// fast.
type HTTPPagerConfig struct {
	// Client issues the range requests; nil builds a private client with a
	// 30s per-request timeout.
	Client *http.Client
	// MaxRetries bounds how many times one fetch is re-attempted after a
	// transient failure (timeout, 5xx, short read, per-page checksum
	// mismatch). Total attempts = 1 + MaxRetries. Zero means the default
	// (3); negative disables retries.
	MaxRetries int
	// RetryBackoff is the sleep before the first retry; it doubles per
	// attempt. Zero means the default (50ms).
	RetryBackoff time.Duration
	// MaxBackoff caps the doubling. Zero means the default (1s).
	MaxBackoff time.Duration
}

func (c HTTPPagerConfig) withDefaults() HTTPPagerConfig {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	return c
}

// RemoteStats are cumulative transfer counters of an HTTPPager, the
// substrate-level story behind the buffer pool's fault counts: how many
// round trips the faults cost, how many had to be retried, and how many
// bytes crossed the wire.
type RemoteStats struct {
	// Fetches counts HTTP requests issued (including retries).
	Fetches int64
	// Retries counts re-attempts after a transient failure.
	Retries int64
	// BytesFetched counts body bytes read from successful responses.
	BytesFetched int64
	// ChecksumFailures counts fetched pages that failed per-page CRC
	// verification (each one is retried; a persistent mismatch surfaces as
	// ErrBadChecksum).
	ChecksumFailures int64
	// SharedFetches counts page reads that piggybacked on a fetch another
	// reader already had in flight for the same page instead of issuing
	// their own request (the single-flight dedupe).
	SharedFetches int64
	// CoalescedFetches counts multi-page range requests that merged reads of
	// adjacent pages (prefetch coalescing) into one round trip.
	CoalescedFetches int64
}

// Add accumulates o into s, field by field — the one place the counter
// arithmetic lives, so a future counter cannot be silently dropped from an
// aggregation site.
func (s *RemoteStats) Add(o RemoteStats) {
	s.Fetches += o.Fetches
	s.Retries += o.Retries
	s.BytesFetched += o.BytesFetched
	s.ChecksumFailures += o.ChecksumFailures
	s.SharedFetches += o.SharedFetches
	s.CoalescedFetches += o.CoalescedFetches
}

// Sub returns s - o, field by field (the delta of two snapshots).
func (s RemoteStats) Sub(o RemoteStats) RemoteStats {
	return RemoteStats{
		Fetches:          s.Fetches - o.Fetches,
		Retries:          s.Retries - o.Retries,
		BytesFetched:     s.BytesFetched - o.BytesFetched,
		ChecksumFailures: s.ChecksumFailures - o.ChecksumFailures,
		SharedFetches:    s.SharedFetches - o.SharedFetches,
		CoalescedFetches: s.CoalescedFetches - o.CoalescedFetches,
	}
}

// HTTPPager is a read-only Pager over an index file served by any HTTP
// server that supports range requests (GET with a Range header): page i is
// one ranged fetch — PageSize bytes at offset PageSize·(1+i), or for a
// packed (v3) index the compressed blob its page directory locates, decoded
// locally. Every fetched page of a format-v2/v3 index is verified against
// the per-page checksum table before it is returned, so a corrupting
// transport cannot hand the tree a bad node; transient failures (timeouts,
// 5xx, short reads, checksum mismatches, undecodable blobs) are retried with
// capped exponential backoff. Construct with OpenIndexURL. Safe for
// concurrent use.
type HTTPPager struct {
	url      string
	cfg      HTTPPagerConfig
	ownedCli bool // Close releases idle connections only for a private client
	pageSize int
	numPages int
	table    []uint32 // per-page CRCs; nil for v1 files (unverified pages)
	dir      []uint64 // packed (v3) blob offsets; nil for fixed-layout files

	// ctx cancels every in-flight and future fetch when the pager closes,
	// so Close (and the prefetcher drain above it) never waits out a retry
	// budget against a hung origin.
	ctx    context.Context
	cancel context.CancelFunc

	// inflight is the single-flight table: one entry per page currently
	// being fetched. A reader that finds its page here waits for the
	// leader's bytes instead of issuing a duplicate request.
	sfMu     sync.Mutex
	inflight map[PageID]*pageFlight

	// The origin validators captured from the first response. Later fetches
	// send If-Range with the strongest one and cross-check response headers,
	// turning a mid-session origin mutation into ErrOriginChanged instead of
	// silently mixed pages.
	valMu   sync.Mutex
	etag    string
	lastMod string

	reads        atomic.Int64
	fetches      atomic.Int64
	retries      atomic.Int64
	bytesFetched atomic.Int64
	checksumFail atomic.Int64
	sharedFetch  atomic.Int64
	coalesced    atomic.Int64
	closed       atomic.Bool
}

// pageFlight is one in-flight page fetch: the leader fills body/err and
// closes done; waiters block on done and share the outcome.
type pageFlight struct {
	done chan struct{}
	body []byte
	err  error
}

// OpenIndexURL validates the index file served at url and returns a
// read-only remote Pager over its pages plus the decoded superblock. The
// superblock, (format v2+) the page checksum table, and (packed v3) the page
// directory are fetched and verified up front; pages fetch lazily, one range
// request per buffer-pool miss — for packed indexes that request covers the
// compressed blob, typically under half the page size. Validation failures
// carry the same typed errors as OpenIndexFile.
//
// Format v1 files open too, but carry no page table, so individual page
// fetches cannot be verified — prefer re-saving as v2 before serving over a
// network.
func OpenIndexURL(url string, cfg HTTPPagerConfig) (*HTTPPager, Superblock, error) {
	ownedCli := cfg.Client == nil
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	p := &HTTPPager{url: url, cfg: cfg, ownedCli: ownedCli, ctx: ctx, cancel: cancel,
		inflight: make(map[PageID]*pageFlight)}
	// The superblock is self-checksummed, so decoding doubles as transit
	// verification: a corrupted fetch retries like any transient failure.
	sbBuf, total, err := p.fetchVerified(0, SuperblockSize, func(b []byte) error {
		_, err := DecodeSuperblock(b)
		return err
	})
	if err != nil {
		return nil, Superblock{}, fmt.Errorf("storage: open index url %s: %w", url, err)
	}
	sb, err := DecodeSuperblock(sbBuf)
	if err != nil {
		return nil, Superblock{}, fmt.Errorf("storage: open index url %s: %w", url, err)
	}
	if need := sb.fileSize(); total >= 0 && total < need {
		return nil, Superblock{}, fmt.Errorf("storage: open index url %s: %w: %d bytes, superblock promises %d", url, ErrTruncated, total, need)
	}
	p.pageSize = sb.PageSize
	p.numPages = sb.NumPages
	if sb.Packed() {
		// Packed layout: fetch and validate the page directory, then the
		// checksum table it locates. Each page read below becomes one ranged
		// fetch of the blob, decoded and verified locally.
		dbuf, _, err := p.fetchVerified(int64(sb.PageSize), PageDirSize(sb.NumPages),
			func(b []byte) error {
				_, err := DecodePageDir(b, sb)
				return err
			})
		if err != nil {
			return nil, Superblock{}, fmt.Errorf("storage: open index url %s: %w", url, err)
		}
		if p.dir, err = DecodePageDir(dbuf, sb); err != nil {
			return nil, Superblock{}, fmt.Errorf("storage: open index url %s: %w", url, err)
		}
		if end := int64(p.dir[sb.NumPages]) + int64(PageTableSize(sb.NumPages)); total >= 0 && total < end {
			return nil, Superblock{}, fmt.Errorf("storage: open index url %s: %w: %d bytes, page directory promises %d", url, ErrTruncated, total, end)
		}
		tbuf, _, err := p.fetchVerified(int64(p.dir[sb.NumPages]), PageTableSize(sb.NumPages),
			func(b []byte) error {
				_, err := DecodePageTable(b, sb.NumPages)
				return err
			})
		if err != nil {
			return nil, Superblock{}, fmt.Errorf("storage: open index url %s: %w", url, err)
		}
		if p.table, err = DecodePageTable(tbuf, sb.NumPages); err != nil {
			return nil, Superblock{}, fmt.Errorf("storage: open index url %s: %w", url, err)
		}
		return p, sb, nil
	}
	if sb.hasPageTable() {
		tbuf, _, err := p.fetchVerified(int64(sb.PageSize)*int64(1+sb.NumPages), PageTableSize(sb.NumPages),
			func(b []byte) error {
				_, err := DecodePageTable(b, sb.NumPages)
				return err
			})
		if err != nil {
			return nil, Superblock{}, fmt.Errorf("storage: open index url %s: %w", url, err)
		}
		if p.table, err = DecodePageTable(tbuf, sb.NumPages); err != nil {
			return nil, Superblock{}, fmt.Errorf("storage: open index url %s: %w", url, err)
		}
	}
	return p, sb, nil
}

// URL returns the index URL the pager serves from.
func (p *HTTPPager) URL() string { return p.url }

// PageSize returns the page size in bytes.
func (p *HTTPPager) PageSize() int { return p.pageSize }

// NumPages returns the number of pages the index file carries.
func (p *HTTPPager) NumPages() int { return p.numPages }

// Verified reports whether fetched pages are checked against a per-page
// checksum table (true for format v2 indexes).
func (p *HTTPPager) Verified() bool { return p.table != nil }

// Allocate fails: the remote index is read-only.
func (p *HTTPPager) Allocate() (PageID, error) {
	return InvalidPageID, fmt.Errorf("%w: allocate", ErrReadOnly)
}

// WritePage fails: the remote index is read-only.
func (p *HTTPPager) WritePage(id PageID, buf []byte) error {
	return fmt.Errorf("%w: write page %d", ErrReadOnly, id)
}

// ReadPage fetches page id with one HTTP range request (plus bounded
// retries), verifies it against the checksum table when present, and copies
// it into buf. Concurrent reads of the same page — demand faults racing each
// other or the prefetcher — collapse into one request: the first reader
// fetches, the rest wait for its bytes (counted as SharedFetches).
func (p *HTTPPager) ReadPage(id PageID, buf []byte) error {
	if p.closed.Load() {
		return fmt.Errorf("storage: read page %d: pager is closed", id)
	}
	if int(id) >= p.numPages {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, p.numPages)
	}
	if len(buf) < p.pageSize {
		return fmt.Errorf("storage: read buffer %d smaller than page size %d", len(buf), p.pageSize)
	}
	p.sfMu.Lock()
	if f, ok := p.inflight[id]; ok {
		p.sfMu.Unlock()
		p.sharedFetch.Add(1)
		<-f.done
		if f.err != nil {
			return fmt.Errorf("storage: read page %d from %s: %w", id, p.url, f.err)
		}
		copy(buf, f.body)
		p.reads.Add(1)
		return nil
	}
	f := &pageFlight{done: make(chan struct{})}
	p.inflight[id] = f
	p.sfMu.Unlock()

	page, err := p.fetchPage(id)
	f.body, f.err = page, err
	p.sfMu.Lock()
	delete(p.inflight, id)
	p.sfMu.Unlock()
	close(f.done)
	if err != nil {
		return fmt.Errorf("storage: read page %d from %s: %w", id, p.url, err)
	}
	copy(buf, page)
	p.reads.Add(1)
	return nil
}

// ReadPageRange fetches n consecutive pages starting at first with ONE range
// request (plus bounded retries), verifies each page against the checksum
// table when present, and returns one slice per page. It is the coalescing
// entry point of the prefetcher: adjacent sibling leaves queued together
// cost one round trip instead of n. The pages in the run are registered in
// the single-flight table, so a demand fault racing the coalesced fetch
// waits for its page's bytes instead of duplicating the request. Pages
// already in flight elsewhere are fetched again as part of the run (a single
// ranged GET cannot skip holes); their flights are left to their owners.
func (p *HTTPPager) ReadPageRange(first PageID, n int) ([][]byte, error) {
	if p.closed.Load() {
		return nil, fmt.Errorf("storage: read pages [%d,%d): pager is closed", first, int(first)+n)
	}
	if n <= 0 {
		return nil, fmt.Errorf("storage: read pages: non-positive run length %d", n)
	}
	if int(first)+n > p.numPages {
		return nil, fmt.Errorf("%w: read [%d,%d) of %d", ErrPageOutOfRange, first, int(first)+n, p.numPages)
	}
	// Register a flight for every page of the run we are first to want.
	flights := make([]*pageFlight, n)
	p.sfMu.Lock()
	for i := range flights {
		id := first + PageID(i)
		if _, busy := p.inflight[id]; busy {
			continue
		}
		flights[i] = &pageFlight{done: make(chan struct{})}
		p.inflight[id] = flights[i]
	}
	p.sfMu.Unlock()
	if n > 1 {
		p.coalesced.Add(1)
	}

	pages := make([][]byte, n)
	var off int64
	var length int
	var verify func([]byte) error
	if p.dir != nil {
		// Packed: one ranged fetch of the blob run [dir[first], dir[first+n]);
		// each blob decodes into its own page buffer and verifies during the
		// fetch's verification pass, so a corrupt blob retries like any
		// transit failure.
		base := p.dir[first]
		off, length = int64(base), int(p.dir[int(first)+n]-base)
		verify = func(b []byte) error {
			for i := 0; i < n; i++ {
				if pages[i] == nil {
					pages[i] = make([]byte, p.pageSize)
				}
				blob := b[p.dir[int(first)+i]-base : p.dir[int(first)+i+1]-base]
				if err := p.decodePacked(first+PageID(i), pages[i], blob); err != nil {
					return err
				}
			}
			return nil
		}
	} else {
		off, length = p.pageOffset(first), n*p.pageSize
		verify = func(b []byte) error {
			if p.table == nil {
				return nil
			}
			for i := 0; i < n; i++ {
				if err := VerifyPage(p.table, first+PageID(i), b[i*p.pageSize:(i+1)*p.pageSize]); err != nil {
					p.checksumFail.Add(1)
					return err
				}
			}
			return nil
		}
	}
	body, _, err := p.fetchVerified(off, length, verify)

	if err == nil {
		if p.dir == nil {
			for i := range pages {
				pages[i] = body[i*p.pageSize : (i+1)*p.pageSize : (i+1)*p.pageSize]
			}
		}
		p.reads.Add(int64(n))
	}
	p.sfMu.Lock()
	for i, f := range flights {
		if f == nil {
			continue
		}
		delete(p.inflight, first+PageID(i))
	}
	p.sfMu.Unlock()
	for i, f := range flights {
		if f == nil {
			continue
		}
		if err != nil {
			f.err = err
		} else {
			f.body = pages[i]
		}
		close(f.done)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: read pages [%d,%d) from %s: %w", first, int(first)+n, p.url, err)
	}
	return pages, nil
}

// fetchPage fetches one page with a single ranged request (plus retries):
// the fixed-offset page image directly, or — packed layout — the blob at
// [dir[id], dir[id+1]), decoded and verified before it counts as fetched.
func (p *HTTPPager) fetchPage(id PageID) ([]byte, error) {
	if p.dir == nil {
		body, _, err := p.fetchVerified(p.pageOffset(id), p.pageSize, p.verifyFor(id))
		return body, err
	}
	page := make([]byte, p.pageSize)
	_, _, err := p.fetchVerified(int64(p.dir[id]), int(p.dir[id+1]-p.dir[id]), func(b []byte) error {
		return p.decodePacked(id, page, b)
	})
	if err != nil {
		return nil, err
	}
	return page, nil
}

// decodePacked decodes one fetched blob into page and verifies the result
// against the checksum table. Both failure modes are reported as
// ErrBadChecksum: over a ranged fetch a malformed blob is indistinguishable
// from transit corruption, so it must stay retryable.
func (p *HTTPPager) decodePacked(id PageID, page, blob []byte) error {
	if err := pagecodec.DecodePage(page, blob); err != nil {
		p.checksumFail.Add(1)
		return fmt.Errorf("%w: page %d: %v", ErrBadChecksum, id, err)
	}
	if err := VerifyPage(p.table, id, page); err != nil {
		p.checksumFail.Add(1)
		return err
	}
	return nil
}

// pageOffset returns the file offset of page id (pages start after the
// superblock's leading page).
func (p *HTTPPager) pageOffset(id PageID) int64 {
	return int64(p.pageSize) * int64(1+int64(id))
}

// verifyFor returns the per-page CRC verification hook for page id (a no-op
// for v1 files, which carry no table).
func (p *HTTPPager) verifyFor(id PageID) func([]byte) error {
	if p.table == nil {
		return func([]byte) error { return nil }
	}
	return func(b []byte) error {
		if err := VerifyPage(p.table, id, b); err != nil {
			p.checksumFail.Add(1)
			return err
		}
		return nil
	}
}

// Stats returns cumulative physical I/O counters (reads only; the remote
// index never writes).
func (p *HTTPPager) Stats() Stats { return Stats{Reads: p.reads.Load()} }

// Remote returns the pager's transfer counters.
func (p *HTTPPager) Remote() RemoteStats {
	return RemoteStats{
		Fetches:          p.fetches.Load(),
		Retries:          p.retries.Load(),
		BytesFetched:     p.bytesFetched.Load(),
		ChecksumFailures: p.checksumFail.Load(),
		SharedFetches:    p.sharedFetch.Load(),
		CoalescedFetches: p.coalesced.Load(),
	}
}

// Close marks the pager closed, aborts in-flight fetches (and their retry
// loops) via context cancellation, and releases idle connections of a
// private client. Reads racing Close fail promptly instead of waiting out
// the retry budget — which is what keeps index unload and daemon drain fast
// even when the origin has hung.
func (p *HTTPPager) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	p.cancel()
	if p.ownedCli {
		p.cfg.Client.CloseIdleConnections()
	}
	return nil
}

// fetchVerified is the retry loop shared by page and table fetches: fetch
// the range, run the caller's verification over the body, and re-attempt
// transient failures — including verification failures, which on a ranged
// fetch mean transit or server corruption — with capped exponential backoff.
// The last error (typed: ErrBadChecksum, ErrRemote, or the transport's) is
// returned once attempts are exhausted.
func (p *HTTPPager) fetchVerified(off int64, n int, verify func([]byte) error) ([]byte, int64, error) {
	var lastErr error
	total := int64(-1)
	for attempt := 0; attempt <= p.cfg.MaxRetries; attempt++ {
		if err := p.ctx.Err(); err != nil {
			// The pager closed mid-retry: stop immediately.
			if lastErr == nil {
				lastErr = fmt.Errorf("%w: %v", errPermanent, err)
			}
			break
		}
		if attempt > 0 {
			p.retries.Add(1)
			backoff := p.cfg.RetryBackoff << (attempt - 1)
			if backoff > p.cfg.MaxBackoff {
				backoff = p.cfg.MaxBackoff
			}
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-p.ctx.Done(): // Close aborts the backoff too
				t.Stop()
			}
		}
		body, tot, err := p.fetchOnce(off, n)
		if err != nil {
			lastErr = err
			if isPermanent(err) {
				break
			}
			continue
		}
		total = tot
		if verr := verify(body); verr != nil {
			lastErr = verr
			// Only a checksum mismatch plausibly means transit corruption a
			// re-fetch can heal. Structural decode failures (bad magic or
			// version, internal inconsistency) are properties of the object
			// at rest — pointing the pager at a non-index URL must fail
			// fast, not burn the retry budget.
			if errors.Is(verr, ErrBadChecksum) {
				continue
			}
			break
		}
		return body, total, nil
	}
	return nil, total, lastErr
}

// fetchOnce issues one ranged GET for [off, off+n) and returns the body and
// the total object size from Content-Range (-1 when unknown). Failures are
// classified for the retry loop by isPermanent.
func (p *HTTPPager) fetchOnce(off int64, n int) ([]byte, int64, error) {
	p.fetches.Add(1)
	req, err := http.NewRequestWithContext(p.ctx, http.MethodGet, p.url, nil)
	if err != nil {
		return nil, -1, fmt.Errorf("%w: %v", errPermanent, err)
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+int64(n)-1))
	// After the first response pinned the object's validators, make the
	// range conditional: an origin honoring If-Range answers 200 (full body)
	// when the object changed, which the status switch below converts into
	// ErrOriginChanged instead of serving pages of a different build.
	ifRange := p.validator()
	if ifRange != "" {
		req.Header.Set("If-Range", ifRange)
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		if p.ctx.Err() != nil {
			// Aborted by Close: permanent, do not burn the retry budget.
			return nil, -1, fmt.Errorf("%w: %v", errPermanent, err)
		}
		// Transport error (refused, reset, client timeout): retryable, and
		// wrapped so an exhausted retry loop still surfaces the typed
		// ErrRemote alongside the transport chain.
		return nil, -1, fmt.Errorf("%w: %w", ErrRemote, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	total := int64(-1)
	switch resp.StatusCode {
	case http.StatusPartialContent:
		total = parseContentRangeTotal(resp.Header.Get("Content-Range"))
	case http.StatusOK:
		// The server ignored the Range header — or, on a conditional range,
		// is telling us the object changed. A whole-file body still serves a
		// prefix read; anything else would mean downloading the file per
		// page, which is a misconfiguration, not a pager mode.
		if off != 0 {
			if ifRange != "" {
				return nil, -1, fmt.Errorf("%w: %w: %s answered a full body to If-Range %q",
					errPermanent, ErrOriginChanged, p.url, ifRange)
			}
			return nil, -1, fmt.Errorf("%w: %s does not support range requests (status 200 for offset %d)", errPermanent, p.url, off)
		}
		total = resp.ContentLength
	case http.StatusRequestTimeout, http.StatusTooManyRequests,
		http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return nil, -1, fmt.Errorf("%w: status %s", ErrRemote, resp.Status)
	default:
		return nil, -1, fmt.Errorf("%w: status %s", errPermanent, resp.Status)
	}
	if err := p.checkValidators(resp.Header.Get("ETag"), resp.Header.Get("Last-Modified")); err != nil {
		return nil, total, err
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(resp.Body, body); err != nil {
		return nil, total, fmt.Errorf("%w: short body: %v", ErrRemote, err) // retryable
	}
	p.bytesFetched.Add(int64(n))
	return body, total, nil
}

// validator returns the If-Range value to send: the captured ETag, else the
// captured Last-Modified, else "" (first fetch, or an origin that sends
// neither).
func (p *HTTPPager) validator() string {
	p.valMu.Lock()
	defer p.valMu.Unlock()
	if p.etag != "" {
		return p.etag
	}
	return p.lastMod
}

// checkValidators captures the origin's ETag/Last-Modified on the first
// response that carries them and compares every later response against the
// captured pair, failing with ErrOriginChanged on a mismatch. This catches
// origins that ignore If-Range but do version their responses.
func (p *HTTPPager) checkValidators(etag, lastMod string) error {
	p.valMu.Lock()
	defer p.valMu.Unlock()
	if p.etag == "" && p.lastMod == "" {
		p.etag, p.lastMod = etag, lastMod
		return nil
	}
	if p.etag != "" && etag != "" && etag != p.etag {
		return fmt.Errorf("%w: %w: ETag %q, index opened with %q", errPermanent, ErrOriginChanged, etag, p.etag)
	}
	if p.etag == "" && lastMod != "" && lastMod != p.lastMod {
		return fmt.Errorf("%w: %w: Last-Modified %q, index opened with %q", errPermanent, ErrOriginChanged, lastMod, p.lastMod)
	}
	return nil
}

// errPermanent marks fetch failures retrying cannot fix (bad request, 404,
// no range support). It always travels wrapped alongside ErrRemote semantics
// and is unwrapped into ErrRemote before callers see it.
var errPermanent = fmt.Errorf("%w (permanent)", ErrRemote)

// isPermanent reports whether a fetch failure should stop the retry loop.
func isPermanent(err error) bool { return errors.Is(err, errPermanent) }

// parseContentRangeTotal extracts the total size from a Content-Range header
// ("bytes start-end/total"), returning -1 when absent or unparseable.
func parseContentRangeTotal(h string) int64 {
	i := strings.LastIndexByte(h, '/')
	if i < 0 {
		return -1
	}
	total, err := strconv.ParseInt(h[i+1:], 10, 64)
	if err != nil {
		return -1
	}
	return total
}
