package storage

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fault is one scripted misbehavior of the flaky index server, consumed one
// per request in FIFO order; an empty script serves correctly.
type fault int

const (
	faultNone    fault = iota
	fault503           // reply 503 Service Unavailable
	faultHang          // stall past the client timeout before replying
	faultShort         // declare the full range but send only half the bytes
	faultCorrupt       // flip a bit in the served range (corrupting proxy)
	fault404           // reply 404 Not Found (permanent: not retried)
)

// flakyIndexServer serves an index file image over HTTP ranges with
// scripted faults: the test harness the remote pager is hardened against.
type flakyIndexServer struct {
	mu     sync.Mutex
	data   []byte
	script []fault
	// corruptAt, when >= 0, persistently corrupts any range starting at
	// that byte offset (a proxy that always mangles one page).
	corruptAt int64
	requests  atomic.Int64
	hang      time.Duration
}

func newFlakyIndexServer(data []byte) *flakyIndexServer {
	return &flakyIndexServer{data: data, corruptAt: -1, hang: 300 * time.Millisecond}
}

// push appends faults to the script.
func (s *flakyIndexServer) push(fs ...fault) {
	s.mu.Lock()
	s.script = append(s.script, fs...)
	s.mu.Unlock()
}

func (s *flakyIndexServer) pop() fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.script) == 0 {
		return faultNone
	}
	f := s.script[0]
	s.script = s.script[1:]
	return f
}

func (s *flakyIndexServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	switch s.pop() {
	case fault503:
		http.Error(w, "temporarily unavailable", http.StatusServiceUnavailable)
		return
	case fault404:
		http.Error(w, "gone", http.StatusNotFound)
		return
	case faultHang:
		time.Sleep(s.hang)
	case faultShort:
		off, n, ok := parseRange(r.Header.Get("Range"), int64(len(s.data)))
		if !ok {
			http.Error(w, "bad range", http.StatusRequestedRangeNotSatisfiable)
			return
		}
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+n-1, len(s.data)))
		w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
		w.WriteHeader(http.StatusPartialContent)
		w.Write(s.data[off : off+n/2]) // half the promised bytes, then EOF
		return
	case faultCorrupt:
		s.serveRange(w, r, true)
		return
	}
	s.serveRange(w, r, false)
}

func (s *flakyIndexServer) serveRange(w http.ResponseWriter, r *http.Request, corrupt bool) {
	rangeHdr := r.Header.Get("Range")
	if rangeHdr == "" {
		w.Header().Set("Content-Length", strconv.Itoa(len(s.data)))
		w.WriteHeader(http.StatusOK)
		w.Write(s.data)
		return
	}
	off, n, ok := parseRange(rangeHdr, int64(len(s.data)))
	if !ok {
		http.Error(w, "bad range", http.StatusRequestedRangeNotSatisfiable)
		return
	}
	body := append([]byte(nil), s.data[off:off+n]...)
	s.mu.Lock()
	if s.corruptAt >= 0 && off == s.corruptAt {
		corrupt = true
	}
	s.mu.Unlock()
	if corrupt {
		// Flip a mid-body bit: for the superblock that lands in the
		// CRC-covered region (ErrBadChecksum, retried), matching how the
		// pager classifies transit corruption; a flipped magic byte would
		// instead read as "not an index", which is a permanent failure.
		body[len(body)/2] ^= 0xFF
	}
	w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, off+n-1, len(s.data)))
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	w.WriteHeader(http.StatusPartialContent)
	w.Write(body)
}

// parseRange parses "bytes=a-b" into offset and length, clamped to size.
func parseRange(h string, size int64) (off, n int64, ok bool) {
	h, found := strings.CutPrefix(h, "bytes=")
	if !found {
		return 0, 0, false
	}
	a, b, found := strings.Cut(h, "-")
	if !found {
		return 0, 0, false
	}
	start, err1 := strconv.ParseInt(a, 10, 64)
	end, err2 := strconv.ParseInt(b, 10, 64)
	if err1 != nil || err2 != nil || start < 0 || end < start || start >= size {
		return 0, 0, false
	}
	if end >= size {
		end = size - 1
	}
	return start, end - start + 1, true
}

// testIndexImage writes a small v2 index file and returns its bytes and
// superblock.
func testIndexImage(t *testing.T, numPages int) ([]byte, Superblock) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ix.rcjx")
	sb := writeTestIndexFile(t, path, numPages)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, sb
}

// fastCfg keeps fault-injection runs quick: millisecond backoff, short
// client timeout (so faultHang trips it), 3 retries.
func fastCfg() HTTPPagerConfig {
	return HTTPPagerConfig{
		Client:       &http.Client{Timeout: 150 * time.Millisecond},
		MaxRetries:   3,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   4 * time.Millisecond,
	}
}

func TestHTTPPagerHappyPath(t *testing.T) {
	data, want := testIndexImage(t, 6)
	flaky := newFlakyIndexServer(data)
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	p, sb, err := OpenIndexURL(srv.URL, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if sb != want {
		t.Fatalf("superblock %+v, want %+v", sb, want)
	}
	if !p.Verified() {
		t.Fatal("v2 remote pager not verifying pages")
	}
	buf := make([]byte, want.PageSize)
	for i := 0; i < want.NumPages; i++ {
		if err := p.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, bytes.Repeat([]byte{byte(i + 1)}, want.PageSize)) {
			t.Fatalf("page %d contents differ", i)
		}
	}
	if err := p.ReadPage(PageID(want.NumPages), buf); !errors.Is(err, ErrPageOutOfRange) {
		t.Fatalf("out-of-range read = %v", err)
	}
	if _, err := p.Allocate(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Allocate = %v, want ErrReadOnly", err)
	}
	if err := p.WritePage(0, buf); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("WritePage = %v, want ErrReadOnly", err)
	}
	rs := p.Remote()
	if rs.Retries != 0 || rs.Fetches == 0 || rs.BytesFetched == 0 {
		t.Fatalf("remote stats %+v", rs)
	}
	if st := p.Stats(); st.Reads != int64(want.NumPages) {
		t.Fatalf("Stats.Reads = %d, want %d", st.Reads, want.NumPages)
	}
}

// TestHTTPPagerRetriesTransient scripts every transient fault class in
// front of each fetch and checks the pager recovers, counting each retry.
func TestHTTPPagerRetriesTransient(t *testing.T) {
	data, want := testIndexImage(t, 4)
	for _, tc := range []struct {
		name  string
		fault fault
	}{{"503", fault503}, {"timeout", faultHang}, {"short read", faultShort}, {"corrupting proxy", faultCorrupt}} {
		t.Run(tc.name, func(t *testing.T) {
			flaky := newFlakyIndexServer(data)
			srv := httptest.NewServer(flaky)
			defer srv.Close()
			flaky.push(tc.fault) // first fetch (the superblock) fails once
			p, _, err := OpenIndexURL(srv.URL, fastCfg())
			if err != nil {
				t.Fatalf("open with scripted %s: %v", tc.name, err)
			}
			defer p.Close()
			flaky.push(tc.fault) // next page fetch fails once too
			buf := make([]byte, want.PageSize)
			if err := p.ReadPage(2, buf); err != nil {
				t.Fatalf("read with scripted %s: %v", tc.name, err)
			}
			if !bytes.Equal(buf, bytes.Repeat([]byte{3}, want.PageSize)) {
				t.Fatal("recovered page corrupted")
			}
			rs := p.Remote()
			if rs.Retries < 2 {
				t.Fatalf("retries = %d, want >= 2 (%+v)", rs.Retries, rs)
			}
			if tc.fault == faultCorrupt && rs.ChecksumFailures == 0 {
				t.Fatalf("corrupting proxy not detected: %+v", rs)
			}
		})
	}
}

// TestHTTPPagerBoundedRetries pins the retry bound: a page the proxy always
// corrupts fails with ErrBadChecksum naming the page after exactly
// 1+MaxRetries fetch attempts — no partial page, no unbounded loop.
func TestHTTPPagerBoundedRetries(t *testing.T) {
	data, want := testIndexImage(t, 5)
	flaky := newFlakyIndexServer(data)
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	cfg := fastCfg()
	p, _, err := OpenIndexURL(srv.URL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const victim = 3
	flaky.mu.Lock()
	flaky.corruptAt = int64(want.PageSize) * int64(1+victim)
	flaky.mu.Unlock()

	before := flaky.requests.Load()
	buf := make([]byte, want.PageSize)
	err = p.ReadPage(victim, buf)
	if !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("ReadPage(corrupted) = %v, want ErrBadChecksum", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("page %d", victim)) {
		t.Fatalf("error does not name the offending page: %v", err)
	}
	attempts := flaky.requests.Load() - before
	if wantAttempts := int64(1 + cfg.MaxRetries); attempts != wantAttempts {
		t.Fatalf("%d fetch attempts, want exactly %d", attempts, wantAttempts)
	}
	// The neighbors are untouched.
	if err := p.ReadPage(victim+1, buf); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPPagerAlways503 checks a hard-down origin fails with the typed
// remote error after the bounded retries.
func TestHTTPPagerAlways503(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	_, _, err := OpenIndexURL(srv.URL, fastCfg())
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("OpenIndexURL(503) = %v, want ErrRemote", err)
	}
}

// TestHTTPPagerPermanentFailures checks non-retryable failures fail fast:
// one fetch, no backoff loop.
func TestHTTPPagerPermanentFailures(t *testing.T) {
	data, want := testIndexImage(t, 3)
	flaky := newFlakyIndexServer(data)
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	t.Run("404", func(t *testing.T) {
		var hits atomic.Int64
		notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits.Add(1)
			http.NotFound(w, r)
		}))
		defer notFound.Close()
		if _, _, err := OpenIndexURL(notFound.URL+"/nope.rcjx", fastCfg()); !errors.Is(err, ErrRemote) {
			t.Fatalf("OpenIndexURL(404) = %v, want ErrRemote", err)
		}
		if hits.Load() != 1 {
			t.Fatalf("404 fetched %d times, want 1 (no retries on permanent failures)", hits.Load())
		}
	})
	t.Run("not an index", func(t *testing.T) {
		// A range-capable origin serving something that is not an index
		// (an HTML page, a CSV): deterministic decode failure, so the open
		// must fail fast with the typed error, not burn the retry budget.
		html := newFlakyIndexServer([]byte(strings.Repeat("<html>not an index</html>", 20)))
		srv3 := httptest.NewServer(html)
		defer srv3.Close()
		if _, _, err := OpenIndexURL(srv3.URL, fastCfg()); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("OpenIndexURL(html) = %v, want ErrBadMagic", err)
		}
		if got := html.requests.Load(); got != 1 {
			t.Fatalf("non-index fetched %d times, want 1 (no retries on deterministic decode failures)", got)
		}
	})
	t.Run("no range support", func(t *testing.T) {
		plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK) // ignores Range
			w.Write(data)
		}))
		defer plain.Close()
		// The superblock (offset 0) still reads from a 200-prefix, so the
		// open gets far enough to need the page table at a nonzero offset —
		// where the missing range support surfaces as a permanent error.
		if _, _, err := OpenIndexURL(plain.URL, fastCfg()); !errors.Is(err, ErrRemote) {
			t.Fatalf("OpenIndexURL(no ranges) = %v, want ErrRemote", err)
		}
	})
	t.Run("truncated origin", func(t *testing.T) {
		cut := newFlakyIndexServer(data[:int64(want.PageSize)*2])
		srv2 := httptest.NewServer(cut)
		defer srv2.Close()
		if _, _, err := OpenIndexURL(srv2.URL, fastCfg()); !errors.Is(err, ErrTruncated) {
			t.Fatalf("OpenIndexURL(truncated) = %v, want ErrTruncated", err)
		}
	})
}

// TestHTTPPagerCloseAbortsHungFetch pins the drain guarantee: Close must
// cancel an in-flight fetch against a hung origin and return promptly,
// instead of letting the read wait out its client timeout and retry budget.
func TestHTTPPagerCloseAbortsHungFetch(t *testing.T) {
	data, want := testIndexImage(t, 3)
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	healthy := newFlakyIndexServer(data)
	var hung atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hung.Load() {
			entered <- struct{}{}
			<-release // hang until the test ends
			return
		}
		healthy.ServeHTTP(w, r)
	}))
	defer srv.Close()
	defer close(release)

	cfg := fastCfg()
	cfg.Client = &http.Client{} // no client timeout: only cancellation can end the fetch
	p, _, err := OpenIndexURL(srv.URL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hung.Store(true)
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, want.PageSize)
		readErr <- p.ReadPage(0, buf)
	}()
	<-entered // the fetch is in flight and hanging
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return while a fetch was hung")
	}
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("hung read returned data after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight read did not abort after Close")
	}
}

// TestHTTPPagerV1Unverified: a v1 file (no page table) serves over HTTP
// with Verified() false — reads work, but pages cannot be checked.
func TestHTTPPagerV1Unverified(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.rcjx")
	src := NewMemPager(DefaultPageSize)
	for i := 0; i < 3; i++ {
		id, _ := src.Allocate()
		src.WritePage(id, bytes.Repeat([]byte{byte(i + 1)}, DefaultPageSize))
	}
	sb := Superblock{Version: FormatVersion1, PageSize: DefaultPageSize, NumPages: 3, Root: 2, Height: 1, Count: 9, MBR: [4]float64{0, 0, 1, 1}}
	if err := WriteIndexFile(path, sb, src); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newFlakyIndexServer(data))
	defer srv.Close()
	p, got, err := OpenIndexURL(srv.URL, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got.Version != FormatVersion1 || p.Verified() {
		t.Fatalf("v1 remote: version %d, verified %v", got.Version, p.Verified())
	}
	buf := make([]byte, DefaultPageSize)
	if err := p.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{2}, DefaultPageSize)) {
		t.Fatal("v1 remote page differs")
	}
}

// TestHTTPPagerConcurrent hammers one remote pager from many goroutines
// while the server injects occasional faults. Run with -race.
func TestHTTPPagerConcurrent(t *testing.T) {
	data, want := testIndexImage(t, 8)
	flaky := newFlakyIndexServer(data)
	srv := httptest.NewServer(flaky)
	defer srv.Close()
	p, _, err := OpenIndexURL(srv.URL, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	flaky.push(fault503, faultCorrupt, faultShort, fault503, faultCorrupt)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, want.PageSize)
			for i := 0; i < 40; i++ {
				id := PageID((g*5 + i) % want.NumPages)
				if err := p.ReadPage(id, buf); err != nil {
					t.Errorf("read %d: %v", id, err)
					return
				}
				if buf[0] != byte(id+1) {
					t.Errorf("page %d: got byte %d", id, buf[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
