// Package storage provides the disk-page substrate the R-trees are built on:
// fixed-size pages addressed by PageID, with an in-memory pager (the default
// for experiments, where I/O cost is charged analytically per the paper's
// 10 ms/page-fault model), a file-backed pager for durable indexes, and a
// read-only mmap pager for zero-syscall serving. All pagers account every
// physical read and write so the experiment harness can report I/O exactly.
//
// The package also defines the durable index file format (see format.go): a
// versioned, checksummed superblock describing the tree (root page, entry
// count, MBR) followed by the raw page image. WriteIndexFile persists a
// pager; OpenIndexFile validates a file and reopens it behind any Backend
// (mem, file, mmap) without rebuilding the tree.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the page size used throughout the paper's evaluation
// (Section 5: "disk page size of 1K bytes").
const DefaultPageSize = 1024

// PageID identifies a page within a pager. InvalidPageID is never allocated.
type PageID uint32

// InvalidPageID is the zero sentinel for "no page" (e.g. child pointers in
// leaf entries).
const InvalidPageID PageID = 0xFFFFFFFF

// ErrPageOutOfRange is returned when a page id has not been allocated.
var ErrPageOutOfRange = errors.New("storage: page id out of range")

// ErrReadOnly is returned by mutating operations on read-only pagers (index
// files opened for serving, mmap mappings).
var ErrReadOnly = errors.New("storage: pager is read-only")

// Pager is a flat array of fixed-size pages. Implementations must be safe for
// concurrent use by multiple goroutines.
type Pager interface {
	// PageSize returns the fixed size in bytes of every page.
	PageSize() int
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Allocate reserves a new zeroed page and returns its id.
	Allocate() (PageID, error)
	// ReadPage copies the contents of page id into buf, which must be at
	// least PageSize bytes.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (at most PageSize bytes) as the contents of page
	// id, which must already be allocated.
	WritePage(id PageID, buf []byte) error
	// Stats returns cumulative physical I/O counters.
	Stats() Stats
	// Close releases underlying resources.
	Close() error
}

// PageRangeReader is the optional coalescing interface of a Pager: reading n
// consecutive pages in one substrate operation. Callers type-assert for it
// and fall back to per-page ReadPage; only substrates where a round trip
// dominates a page (HTTPPager) implement it.
type PageRangeReader interface {
	// ReadPageRange reads pages [first, first+n) and returns one slice per
	// page, each PageSize bytes, valid until the caller releases them.
	ReadPageRange(first PageID, n int) ([][]byte, error)
}

// Stats are cumulative physical I/O counters for a pager.
type Stats struct {
	Reads  int64 // physical page reads
	Writes int64 // physical page writes
}

// MemPager is an in-memory Pager. It is the substrate for all experiments:
// the page-fault count (tracked above it by the buffer manager) is converted
// to time analytically, exactly as the paper charges 10 ms per fault rather
// than timing a physical disk.
type MemPager struct {
	mu       sync.RWMutex
	pageSize int
	pages    [][]byte
	// I/O counters are atomics: ReadPage holds only the read lock, so any
	// number of concurrent readers may bump Reads at once.
	reads  atomic.Int64
	writes atomic.Int64
}

// NewMemPager returns an empty in-memory pager with the given page size
// (DefaultPageSize if pageSize <= 0).
func NewMemPager(pageSize int) *MemPager {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &MemPager{pageSize: pageSize}
}

// PageSize returns the page size in bytes.
func (m *MemPager) PageSize() int { return m.pageSize }

// NumPages returns the number of allocated pages.
func (m *MemPager) NumPages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// Allocate reserves a new zeroed page.
func (m *MemPager) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pages) >= int(InvalidPageID) {
		return InvalidPageID, errors.New("storage: pager full")
	}
	m.pages = append(m.pages, make([]byte, m.pageSize))
	return PageID(len(m.pages) - 1), nil
}

// ReadPage copies page id into buf.
func (m *MemPager) ReadPage(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	if len(buf) < m.pageSize {
		return fmt.Errorf("storage: read buffer %d smaller than page size %d", len(buf), m.pageSize)
	}
	copy(buf, m.pages[id])
	m.reads.Add(1)
	return nil
}

// WritePage stores buf as page id.
func (m *MemPager) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	if len(buf) > m.pageSize {
		return fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(buf), m.pageSize)
	}
	copy(m.pages[id], buf)
	for i := len(buf); i < m.pageSize; i++ {
		m.pages[id][i] = 0
	}
	m.writes.Add(1)
	return nil
}

// Stats returns cumulative physical I/O counters.
func (m *MemPager) Stats() Stats {
	return Stats{Reads: m.reads.Load(), Writes: m.writes.Load()}
}

// Close releases the page storage.
func (m *MemPager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = nil
	return nil
}
