package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// packedBackends are the local backends a packed (v3) index must open on.
func packedBackends() []Backend {
	b := []Backend{BackendMem, BackendFile}
	if MmapSupported {
		b = append(b, BackendMmap)
	}
	return b
}

// newPackedTestPager builds a MemPager shaped like a real index: mostly leaf
// pages (sorted nearby coordinates, sequential ids — the compressible case)
// plus an internal-looking page that must fall back to raw.
func newPackedTestPager(t *testing.T, numPages int) *MemPager {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	src := NewMemPager(DefaultPageSize)
	page := make([]byte, DefaultPageSize)
	for i := 0; i < numPages; i++ {
		for j := range page {
			page[j] = 0
		}
		if i == numPages-1 { // one "internal" page: random payload, raw blob
			page[0] = 0
			binary.LittleEndian.PutUint16(page[2:], 9)
			rng.Read(page[4 : 4+9*36])
		} else {
			const count = 40
			page[0] = 1
			binary.LittleEndian.PutUint16(page[2:], count)
			x := float64(i) * 100
			for k := 0; k < count; k++ {
				x += rng.Float64()
				off := 4 + k*24
				binary.LittleEndian.PutUint64(page[off:], math.Float64bits(x))
				binary.LittleEndian.PutUint64(page[off+8:], math.Float64bits(50+rng.Float64()))
				binary.LittleEndian.PutUint64(page[off+16:], uint64(i*count+k))
			}
		}
		id, err := src.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := src.WritePage(id, page); err != nil {
			t.Fatal(err)
		}
	}
	return src
}

func packedTestSuperblock(numPages int) Superblock {
	return Superblock{
		Version:  FormatVersion3,
		PageSize: DefaultPageSize,
		NumPages: numPages,
		Root:     PageID(numPages - 1),
		Height:   2,
		Count:    40 * int64(numPages-1),
		MBR:      [4]float64{0, 50, 1000, 51},
	}
}

// TestPackedIndexFileBackends writes the same pager as v2 and packed v3 and
// checks: the v3 file is materially smaller, opens on every local backend,
// and every page reads back byte-identical to the v2 image.
func TestPackedIndexFileBackends(t *testing.T) {
	const numPages = 6
	src := newPackedTestPager(t, numPages)
	want := packedTestSuperblock(numPages)
	dir := t.TempDir()
	v2Path, v3Path := filepath.Join(dir, "v2.rcjx"), filepath.Join(dir, "v3.rcjx")

	sbV2 := want
	sbV2.Version = FormatVersion2
	sbV2.Flags = 0
	if err := WriteIndexFile(v2Path, sbV2, src); err != nil {
		t.Fatal(err)
	}
	if err := WriteIndexFile(v3Path, want, src); err != nil {
		t.Fatal(err)
	}
	v2Info, _ := os.Stat(v2Path)
	v3Info, _ := os.Stat(v3Path)
	if v3Info.Size() >= v2Info.Size()*3/4 {
		t.Fatalf("packed file %d bytes vs v2 %d: expected < 75%%", v3Info.Size(), v2Info.Size())
	}

	want.Flags = FlagPackedPages // the writer sets the packed flag itself
	buf, ref := make([]byte, want.PageSize), make([]byte, want.PageSize)
	for _, be := range packedBackends() {
		t.Run(be.String(), func(t *testing.T) {
			pager, sb, err := OpenIndexFile(v3Path, be)
			if err != nil {
				t.Fatal(err)
			}
			defer pager.Close()
			if sb != want {
				t.Fatalf("superblock %+v, want %+v", sb, want)
			}
			if pager.NumPages() != numPages || pager.PageSize() != want.PageSize {
				t.Fatalf("pager shape %d×%d", pager.NumPages(), pager.PageSize())
			}
			for i := 0; i < numPages; i++ {
				if err := pager.ReadPage(PageID(i), buf); err != nil {
					t.Fatal(err)
				}
				if err := src.ReadPage(PageID(i), ref); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, ref) {
					t.Fatalf("page %d decoded differently from the raw image", i)
				}
			}
			if err := pager.ReadPage(PageID(numPages), buf); !errors.Is(err, ErrPageOutOfRange) {
				t.Fatalf("out-of-range read = %v", err)
			}
			if be != BackendMem {
				if _, err := pager.Allocate(); !errors.Is(err, ErrReadOnly) {
					t.Fatalf("Allocate = %v, want ErrReadOnly", err)
				}
				if err := pager.WritePage(0, buf); !errors.Is(err, ErrReadOnly) {
					t.Fatalf("WritePage = %v, want ErrReadOnly", err)
				}
			}
		})
	}
}

// TestPackedBitFlips corrupts single bytes of a packed file — in a blob, the
// page directory, and the checksum table — and checks every backend refuses
// the damaged page with a typed error (eagerly at open for mem, lazily at
// read for file/mmap).
func TestPackedBitFlips(t *testing.T) {
	const numPages = 4
	src := newPackedTestPager(t, numPages)
	sb := packedTestSuperblock(numPages)
	path := filepath.Join(t.TempDir(), "v3.rcjx")
	if err := WriteIndexFile(path, sb, src); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dirOff := int64(sb.PageSize)
	dbuf := pristine[dirOff : dirOff+int64(PageDirSize(numPages))]
	dir, err := DecodePageDir(dbuf, sb)
	if err != nil {
		t.Fatal(err)
	}

	damage := func(t *testing.T, off int64) string {
		t.Helper()
		b := append([]byte(nil), pristine...)
		b[off] ^= 0x10
		damaged := filepath.Join(t.TempDir(), "damaged.rcjx")
		if err := os.WriteFile(damaged, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return damaged
	}
	typedErr := func(err error) bool {
		return errors.Is(err, ErrBadChecksum) || errors.Is(err, ErrCorrupt)
	}

	const page = 1
	for _, be := range packedBackends() {
		t.Run(fmt.Sprintf("blob_%s", be), func(t *testing.T) {
			damaged := damage(t, int64(dir[page])+3)
			pager, _, err := OpenIndexFile(damaged, be)
			if be == BackendMem {
				if !typedErr(err) {
					t.Fatalf("mem open = %v, want checksum/corrupt error", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("lazy open = %v", err)
			}
			defer pager.Close()
			buf := make([]byte, sb.PageSize)
			for i := 0; i < numPages; i++ {
				err := pager.ReadPage(PageID(i), buf)
				if i == page {
					if !typedErr(err) {
						t.Fatalf("read damaged page = %v, want checksum/corrupt error", err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("read clean page %d: %v", i, err)
				}
			}
		})
	}
	t.Run("directory", func(t *testing.T) {
		damaged := damage(t, dirOff+4)
		for _, be := range packedBackends() {
			if _, _, err := OpenIndexFile(damaged, be); !typedErr(err) {
				t.Fatalf("%s open with corrupt directory = %v", be, err)
			}
		}
	})
	t.Run("table", func(t *testing.T) {
		damaged := damage(t, int64(dir[numPages])+1)
		for _, be := range packedBackends() {
			if _, _, err := OpenIndexFile(damaged, be); !errors.Is(err, ErrBadChecksum) {
				t.Fatalf("%s open with corrupt table = %v", be, err)
			}
		}
	})
	t.Run("truncated", func(t *testing.T) {
		short := filepath.Join(t.TempDir(), "short.rcjx")
		if err := os.WriteFile(short, pristine[:len(pristine)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenIndexFile(short, BackendMem); !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncated open = %v, want ErrTruncated", err)
		}
	})
}

// TestPackedSuperblockFlags pins the flags rules: nonzero flags before v3 and
// wrong flag combinations on v3 are both corrupt.
func TestPackedSuperblockFlags(t *testing.T) {
	sb := testSuperblock()
	sb.Flags = FlagPackedPages
	if err := sb.Validate(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v2 with packed flag = %v, want ErrCorrupt", err)
	}
	sb = testSuperblock()
	sb.Version = FormatVersion3
	if err := sb.Validate(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v3 without packed flag = %v, want ErrCorrupt", err)
	}
	sb.Flags = FlagPackedPages
	if err := sb.Validate(); err != nil {
		t.Fatalf("v3 with packed flag = %v", err)
	}
	sb.Flags |= 1 << 5
	if err := sb.Validate(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("v3 with unknown flag = %v, want ErrCorrupt", err)
	}
}

// TestPageDirRoundTrip covers the directory codec and its validation.
func TestPageDirRoundTrip(t *testing.T) {
	sb := Superblock{Version: FormatVersion3, Flags: FlagPackedPages, PageSize: 512, NumPages: 3}
	base := uint64(sb.PageSize) + uint64(PageDirSize(sb.NumPages))
	dir := []uint64{base, base + 100, base + 101, base + 101 + uint64(sb.PageSize)}
	buf := make([]byte, PageDirSize(sb.NumPages))
	if err := EncodePageDir(dir, buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePageDir(buf, sb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dir {
		if got[i] != dir[i] {
			t.Fatalf("offset %d: %d != %d", i, got[i], dir[i])
		}
	}

	if _, err := DecodePageDir(buf[:len(buf)-1], sb); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short buffer = %v, want ErrTruncated", err)
	}
	flip := append([]byte(nil), buf...)
	flip[3] ^= 0x80
	if _, err := DecodePageDir(flip, sb); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("flipped offset = %v, want ErrBadChecksum", err)
	}
	for _, bad := range [][]uint64{
		{base + 1, base + 101, base + 102, base + 200}, // first blob not after directory
		{base, base, base + 1, base + 2},               // empty blob
		{base, base + uint64(sb.PageSize) + 2, base + uint64(sb.PageSize) + 3, base + uint64(sb.PageSize) + 4}, // oversized blob
	} {
		b := make([]byte, PageDirSize(sb.NumPages))
		if err := EncodePageDir(bad, b); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodePageDir(b, sb); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("dir %v decoded, want ErrCorrupt", bad)
		}
	}
}
