package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testSuperblock() Superblock {
	return Superblock{
		Version:  FormatVersion,
		PageSize: DefaultPageSize,
		NumPages: 7,
		Root:     6,
		Height:   2,
		Count:    123,
		MBR:      [4]float64{-1.5, 0, 10000.25, 9999},
	}
}

func TestSuperblockRoundTrip(t *testing.T) {
	sb := testSuperblock()
	buf := make([]byte, SuperblockSize)
	if err := EncodeSuperblock(sb, buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSuperblock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != sb {
		t.Fatalf("round trip: got %+v, want %+v", got, sb)
	}
}

func TestSuperblockCorruption(t *testing.T) {
	valid := make([]byte, SuperblockSize)
	if err := EncodeSuperblock(testSuperblock(), valid); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	reseal := func(b []byte) { // recompute the CRC so deeper validation runs
		binary.LittleEndian.PutUint32(b[68:], crc32.ChecksumIEEE(b[:68]))
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"truncated", valid[:SuperblockSize-1], ErrTruncated},
		{"empty", nil, ErrTruncated},
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' }), ErrBadMagic},
		{"bad version", mutate(func(b []byte) {
			binary.LittleEndian.PutUint16(b[8:], 99)
		}), ErrBadVersion},
		{"bad checksum", mutate(func(b []byte) { b[30] ^= 0xFF }), ErrBadChecksum},
		{"insane page size", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[12:], 8)
			reseal(b)
		}), ErrCorrupt},
		{"root out of range", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[20:], 7) // == NumPages
			reseal(b)
		}), ErrCorrupt},
		{"zero height with entries", mutate(func(b []byte) {
			binary.LittleEndian.PutUint32(b[24:], 0)
			reseal(b)
		}), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSuperblock(tc.buf)
			if !errors.Is(err, tc.want) {
				t.Fatalf("DecodeSuperblock = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestPageTableRoundTrip(t *testing.T) {
	table := []uint32{0, 0xDEADBEEF, 42, 0xFFFFFFFF}
	buf := make([]byte, PageTableSize(len(table)))
	if err := EncodePageTable(table, buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePageTable(buf, len(table))
	if err != nil {
		t.Fatal(err)
	}
	for i := range table {
		if got[i] != table[i] {
			t.Fatalf("entry %d = %08x, want %08x", i, got[i], table[i])
		}
	}
	// Empty tables round-trip too (an empty index still carries a sealed
	// trailer).
	empty := make([]byte, PageTableSize(0))
	if err := EncodePageTable(nil, empty); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePageTable(empty, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPageTableCorruption(t *testing.T) {
	table := []uint32{1, 2, 3}
	buf := make([]byte, PageTableSize(len(table)))
	if err := EncodePageTable(table, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePageTable(buf[:len(buf)-1], len(table)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated table = %v, want ErrTruncated", err)
	}
	bad := append([]byte(nil), buf...)
	bad[5] ^= 0x10
	if _, err := DecodePageTable(bad, len(table)); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupt table = %v, want ErrBadChecksum", err)
	}
	if _, err := DecodePageTable(buf, -1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative page count = %v, want ErrCorrupt", err)
	}
}

// TestV2PageBitFlips is the per-page corruption table: flip one bit inside
// each page of a v2 file and check every backend reports ErrBadChecksum
// naming exactly the offending page — at open for the eagerly-loading mem
// backend, at first read for the lazy file/mmap backends.
func TestV2PageBitFlips(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.rcjx")
	want := writeTestIndexFile(t, path, 4)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	backends := []Backend{BackendMem, BackendFile}
	if MmapSupported {
		backends = append(backends, BackendMmap)
	}
	for page := 0; page < want.NumPages; page++ {
		for _, be := range backends {
			t.Run(fmt.Sprintf("page%d_%s", page, be), func(t *testing.T) {
				b := append([]byte(nil), pristine...)
				b[want.PageSize*(1+page)+123] ^= 0x04 // one flipped bit mid-page
				damaged := filepath.Join(t.TempDir(), "damaged.rcjx")
				if err := os.WriteFile(damaged, b, 0o644); err != nil {
					t.Fatal(err)
				}
				pager, _, err := OpenIndexFile(damaged, be)
				if be == BackendMem {
					if !errors.Is(err, ErrBadChecksum) {
						t.Fatalf("mem open = %v, want ErrBadChecksum", err)
					}
					if !strings.Contains(err.Error(), fmt.Sprintf("page %d", page)) {
						t.Fatalf("error does not name page %d: %v", page, err)
					}
					return
				}
				if err != nil {
					t.Fatalf("lazy open = %v", err)
				}
				defer pager.Close()
				buf := make([]byte, want.PageSize)
				// Undamaged pages still read clean.
				for i := 0; i < want.NumPages; i++ {
					err := pager.ReadPage(PageID(i), buf)
					if i == page {
						if !errors.Is(err, ErrBadChecksum) {
							t.Fatalf("read damaged page = %v, want ErrBadChecksum", err)
						}
						if !strings.Contains(err.Error(), fmt.Sprintf("page %d", page)) {
							t.Fatalf("error does not name page %d: %v", page, err)
						}
						continue
					}
					if err != nil {
						t.Fatalf("read clean page %d: %v", i, err)
					}
				}
			})
		}
	}
	// A flipped bit in the table trailer itself fails the open everywhere.
	t.Run("table trailer", func(t *testing.T) {
		b := append([]byte(nil), pristine...)
		b[want.PageSize*(1+want.NumPages)+2] ^= 0x40
		damaged := filepath.Join(t.TempDir(), "damaged.rcjx")
		if err := os.WriteFile(damaged, b, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, be := range backends {
			if _, _, err := OpenIndexFile(damaged, be); !errors.Is(err, ErrBadChecksum) {
				t.Fatalf("%s open with corrupt table = %v, want ErrBadChecksum", be, err)
			}
		}
	})
}

// TestV1StillOpens writes the legacy table-less format and checks it opens
// read-only on every backend — backward compatibility with pre-v2 indexes.
func TestV1StillOpens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v1.rcjx")
	src := NewMemPager(DefaultPageSize)
	const numPages = 5
	for i := 0; i < numPages; i++ {
		id, err := src.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if err := src.WritePage(id, bytes.Repeat([]byte{byte(i + 1)}, DefaultPageSize)); err != nil {
			t.Fatal(err)
		}
	}
	sb := Superblock{
		Version:  FormatVersion1,
		PageSize: DefaultPageSize,
		NumPages: numPages,
		Root:     numPages - 1,
		Height:   1,
		Count:    numPages * 3,
		MBR:      [4]float64{0, 0, 1, 1},
	}
	if err := WriteIndexFile(path, sb, src); err != nil {
		t.Fatal(err)
	}
	// The v1 layout has no trailer: the file ends with the last page.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(DefaultPageSize) * (1 + numPages); info.Size() != want {
		t.Fatalf("v1 file is %d bytes, want exactly %d (no trailer)", info.Size(), want)
	}
	if !SniffIndexFile(path) {
		t.Fatal("SniffIndexFile(v1) = false")
	}
	backends := []Backend{BackendMem, BackendFile}
	if MmapSupported {
		backends = append(backends, BackendMmap)
	}
	for _, be := range backends {
		t.Run(be.String(), func(t *testing.T) {
			pager, got, err := OpenIndexFile(path, be)
			if err != nil {
				t.Fatal(err)
			}
			defer pager.Close()
			if got != sb {
				t.Fatalf("superblock %+v, want %+v", got, sb)
			}
			buf := make([]byte, DefaultPageSize)
			for i := 0; i < numPages; i++ {
				if err := pager.ReadPage(PageID(i), buf); err != nil {
					t.Fatal(err)
				}
				if buf[0] != byte(i+1) {
					t.Fatalf("page %d contents differ", i)
				}
			}
		})
	}
}

func TestParseBackend(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
	}{{"mem", BackendMem}, {"memory", BackendMem}, {"file", BackendFile}, {"mmap", BackendMmap}, {"http", BackendHTTP}, {"https", BackendHTTP}} {
		got, err := ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "memory" && tc.in != "https" && got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseBackend("s3"); err == nil {
		t.Fatal("ParseBackend(s3) succeeded")
	}
}

// writeTestIndexFile builds a small page image with recognizable contents
// and writes it in the index format.
func writeTestIndexFile(t *testing.T, path string, numPages int) Superblock {
	t.Helper()
	src := NewMemPager(DefaultPageSize)
	for i := 0; i < numPages; i++ {
		id, err := src.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		page := bytes.Repeat([]byte{byte(i + 1)}, DefaultPageSize)
		if err := src.WritePage(id, page); err != nil {
			t.Fatal(err)
		}
	}
	sb := Superblock{
		PageSize: DefaultPageSize,
		NumPages: numPages,
		Root:     PageID(numPages - 1),
		Height:   1,
		Count:    int64(numPages * 3),
		MBR:      [4]float64{0, 0, 1, 1},
	}
	if err := WriteIndexFile(path, sb, src); err != nil {
		t.Fatal(err)
	}
	sb.Version = FormatVersion // the writer emits the current version
	return sb
}

func TestIndexFileBackends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.rcjx")
	want := writeTestIndexFile(t, path, 5)

	backends := []Backend{BackendMem, BackendFile}
	if MmapSupported {
		backends = append(backends, BackendMmap)
	}
	for _, be := range backends {
		t.Run(be.String(), func(t *testing.T) {
			pager, sb, err := OpenIndexFile(path, be)
			if err != nil {
				t.Fatal(err)
			}
			defer pager.Close()
			if sb != want {
				t.Fatalf("superblock %+v, want %+v", sb, want)
			}
			if pager.NumPages() != want.NumPages || pager.PageSize() != want.PageSize {
				t.Fatalf("pager shape %d×%d", pager.NumPages(), pager.PageSize())
			}
			buf := make([]byte, want.PageSize)
			for i := 0; i < want.NumPages; i++ {
				if err := pager.ReadPage(PageID(i), buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, bytes.Repeat([]byte{byte(i + 1)}, want.PageSize)) {
					t.Fatalf("page %d contents differ", i)
				}
			}
			if err := pager.ReadPage(PageID(want.NumPages), buf); !errors.Is(err, ErrPageOutOfRange) {
				t.Fatalf("out-of-range read = %v", err)
			}
			if be != BackendMem { // the mem backend copies; copies stay writable
				if _, err := pager.Allocate(); !errors.Is(err, ErrReadOnly) {
					t.Fatalf("Allocate on %s = %v, want ErrReadOnly", be, err)
				}
				if err := pager.WritePage(0, buf); !errors.Is(err, ErrReadOnly) {
					t.Fatalf("WritePage on %s = %v, want ErrReadOnly", be, err)
				}
			}
			if st := pager.Stats(); st.Reads < int64(want.NumPages) {
				t.Fatalf("Stats.Reads = %d, want >= %d", st.Reads, want.NumPages)
			}
		})
	}
}

func TestOpenIndexFileTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.rcjx")
	writeTestIndexFile(t, path, 5)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(data) - 1, DefaultPageSize + 10, SuperblockSize - 4, 0} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenIndexFile(path, BackendFile); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: OpenIndexFile = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestReadSuperblockFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.rcjx")
	want := writeTestIndexFile(t, path, 3)
	got, err := ReadSuperblockFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("superblock %+v, want %+v", got, want)
	}
	if !SniffIndexFile(path) {
		t.Fatal("SniffIndexFile(index) = false")
	}
	csv := filepath.Join(t.TempDir(), "points.csv")
	if err := os.WriteFile(csv, []byte("1,2.0,3.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if SniffIndexFile(csv) {
		t.Fatal("SniffIndexFile(csv) = true")
	}
}
