//go:build unix

package storage

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
)

// MmapSupported reports whether the mmap backend is available on this
// platform.
const MmapSupported = true

// MmapPager is a read-only Pager over a memory-mapped index file. Reads copy
// the page out of the mapping — no read syscalls, no userspace page cache
// beyond the kernel's — which makes it the cheapest cold-start backend:
// opening is O(1) regardless of index size, and untouched pages never cost
// RAM. Allocate and WritePage fail with ErrReadOnly.
type MmapPager struct {
	data     []byte
	pageSize int
	base     int64
	numPages int
	reads    atomic.Int64

	mu     sync.Mutex
	closed bool
}

// newMmapPager maps the already-open file read-only. The caller may close f
// once this returns: the mapping keeps the pages alive.
func newMmapPager(f *os.File, pageSize int, base int64, numPages int) (Pager, error) {
	size := base + int64(numPages)*int64(pageSize)
	if size == 0 {
		return &MmapPager{pageSize: pageSize, base: base}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("storage: mmap index file: %w", err)
	}
	return &MmapPager{data: data, pageSize: pageSize, base: base, numPages: numPages}, nil
}

// PageSize returns the page size in bytes.
func (m *MmapPager) PageSize() int { return m.pageSize }

// NumPages returns the number of mapped pages.
func (m *MmapPager) NumPages() int { return m.numPages }

// Allocate fails: the mapping is read-only.
func (m *MmapPager) Allocate() (PageID, error) {
	return InvalidPageID, fmt.Errorf("%w: allocate", ErrReadOnly)
}

// ReadPage copies page id out of the mapping into buf. Lock-free.
func (m *MmapPager) ReadPage(id PageID, buf []byte) error {
	// Snapshot the mapping so a racing Close degrades to an error (like the
	// file pager's os.ErrClosed) instead of a fault on unmapped memory in
	// the common case. Closing while reads are in flight remains a caller
	// bug: a read that already passed this check can still hit the munmap.
	data := m.data
	if data == nil {
		return fmt.Errorf("storage: read page %d: %w", id, os.ErrClosed)
	}
	if int(id) >= m.numPages {
		return fmt.Errorf("%w: read %d of %d", ErrPageOutOfRange, id, m.numPages)
	}
	if len(buf) < m.pageSize {
		return fmt.Errorf("storage: read buffer %d smaller than page size %d", len(buf), m.pageSize)
	}
	off := m.base + int64(id)*int64(m.pageSize)
	copy(buf[:m.pageSize], data[off:off+int64(m.pageSize)])
	m.reads.Add(1)
	return nil
}

// WritePage fails: the mapping is read-only.
func (m *MmapPager) WritePage(id PageID, buf []byte) error {
	return fmt.Errorf("%w: write page %d", ErrReadOnly, id)
}

// Stats returns cumulative physical I/O counters (reads only; the mapping
// never writes).
func (m *MmapPager) Stats() Stats {
	return Stats{Reads: m.reads.Load()}
}

// mmapReaderAt serves ReadAt from a read-only mapping of a file's leading
// bytes. It is the packed (v3) mmap backend's substrate: blobs are
// variable-length, so the page-granular MmapPager does not fit, but the
// no-syscall read property carries over. The caller may close the file once
// this returns; the mapping keeps the bytes alive.
type mmapReaderAt struct {
	data []byte

	mu     sync.Mutex
	closed bool
}

// newMmapReaderAt maps the first length bytes of f read-only.
func newMmapReaderAt(f *os.File, length int64) (*mmapReaderAt, error) {
	if length == 0 {
		return &mmapReaderAt{}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(length), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("storage: mmap index file: %w", err)
	}
	return &mmapReaderAt{data: data}, nil
}

// ReadAt copies bytes out of the mapping. Lock-free; a racing Close degrades
// to os.ErrClosed in the common case (see MmapPager.ReadPage).
func (m *mmapReaderAt) ReadAt(p []byte, off int64) (int, error) {
	data := m.data
	if data == nil {
		return 0, os.ErrClosed
	}
	if off < 0 || off > int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Close unmaps the bytes. Idempotent.
func (m *mmapReaderAt) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}

// Close unmaps the file. Reads racing Close are the caller's bug (as with
// any pager whose index is still serving joins); Close is idempotent.
func (m *MmapPager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	m.numPages = 0
	return syscall.Munmap(data)
}
