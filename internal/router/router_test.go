package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/rcj"
)

const (
	testSpan = 1000.0
	testMaxD = 250.0
)

// testPoints builds a dataset over [0,1000]² with pinned corners (so the
// manifest bounds — and with them the interior grid cuts — are exact) and a
// crafted straddler at (499, 977)/(501, 977): its pair's center lands
// bit-exactly on the x=500 cut of a 2x2 grid, so two shards own and emit
// it. Random points stay below y=940, guaranteeing the straddler pair is
// witness-free and survives into every unconstrained result.
func testPoints(rng *rand.Rand, n int, idBase int64, straddleX float64) []rcj.Point {
	pts := []rcj.Point{
		{X: 0, Y: 0, ID: idBase},
		{X: testSpan, Y: testSpan, ID: idBase + 1},
		{X: straddleX, Y: 977, ID: idBase + 2},
	}
	for i := len(pts); i < n; i++ {
		pts = append(pts, rcj.Point{
			X:  rng.Float64() * testSpan,
			Y:  rng.Float64() * (testSpan - 60),
			ID: idBase + int64(i),
		})
	}
	return pts
}

// deployment is a full sharded serving stack plus its unsharded reference:
// the same data behind both, so responses must agree byte for byte.
type deployment struct {
	man       *shard.Manifest
	rt        *Router
	router    *httptest.Server
	workers   []*httptest.Server
	reference *httptest.Server
	self      bool
}

func newWorker(t *testing.T, manifestPath string, ids []int) *httptest.Server {
	t.Helper()
	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 1024})
	srv := server.New(sched.New(eng, sched.Config{MaxConcurrent: 4, MaxQueue: 64}),
		server.Config{Backend: rcj.BackendFile})
	if _, err := srv.LoadManifestShards(manifestPath, ids, ""); err != nil {
		t.Fatalf("worker load: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// newDeployment shards the dataset, stands up one worker per entry of
// split (nil entry = all shards), the router over them, and the unsharded
// reference server.
func newDeployment(t *testing.T, self bool, shards int, split [][]int, tweak func(*Config)) *deployment {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	p := testPoints(rng, 300, 0, 499)
	var q []rcj.Point
	if !self {
		q = testPoints(rng, 300, 10000, 501)
	} else {
		p = append(p, rcj.Point{X: 501, Y: 977, ID: 9999})
	}
	dir := t.TempDir()
	manPath := filepath.Join(dir, "deploy.rcjm")
	man, err := shard.Build(manPath, p, q, shard.BuildConfig{
		Shards: shards, MaxDiameter: testMaxD, Name: "deploy", Self: self,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	d := &deployment{man: man, self: self}
	var workers []Worker
	for _, ids := range split {
		ts := newWorker(t, manPath, ids)
		d.workers = append(d.workers, ts)
		workers = append(workers, Worker{URL: ts.URL, Shards: ids})
	}

	cfg := Config{Manifest: man, Workers: workers, Fanout: 3, Retries: 1}
	if tweak != nil {
		tweak(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d.rt = rt
	d.router = httptest.NewServer(rt.Handler())
	t.Cleanup(d.router.Close)

	// Unsharded reference: one server over the full sets.
	save := func(name string, pts []rcj.Point) string {
		ix, err := rcj.BuildIndex(pts, rcj.IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		path := filepath.Join(dir, name)
		if err := ix.Save(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 1024})
	ref := server.New(sched.New(eng, sched.Config{MaxConcurrent: 4, MaxQueue: 64}),
		server.Config{Backend: rcj.BackendFile})
	if err := ref.LoadIndex("p", save("full_p.rcjx", p)); err != nil {
		t.Fatal(err)
	}
	if !self {
		if err := ref.LoadIndex("q", save("full_q.rcjx", q)); err != nil {
			t.Fatal(err)
		}
	}
	d.reference = httptest.NewServer(ref.Handler())
	t.Cleanup(func() {
		d.reference.Close()
		ref.Close()
	})
	return d
}

func postJoin(t *testing.T, base, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/join", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /join: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

// splitStream separates result rows from the trailing summary/error object
// of a join response; CSV responses are all rows.
func splitStream(t *testing.T, data []byte, csv bool) (rows []string, extra map[string]json.RawMessage) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if csv || strings.HasPrefix(line, `{"p_id":`) {
			rows = append(rows, line)
			continue
		}
		if extra != nil {
			t.Fatalf("two non-row lines in stream; second: %q", line)
		}
		extra = map[string]json.RawMessage{}
		if err := json.Unmarshal([]byte(line), &extra); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
	}
	return rows, extra
}

func routerSummaryOf(t *testing.T, extra map[string]json.RawMessage) routerSummary {
	t.Helper()
	raw, ok := extra["summary"]
	if !ok {
		t.Fatalf("stream ended without a summary: %v", extra)
	}
	var sum routerSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatal(err)
	}
	return sum
}

// queryCase is one predicate combination of the equivalence property.
// ordered cases (top-k) must match the reference byte for byte in order;
// unordered ones after sorting; subset cases (limit without top-k) get
// subset-of-full semantics instead of equality.
type queryCase struct {
	name    string
	fields  map[string]any
	ordered bool
	subset  bool
}

func equivalenceCases() []queryCase {
	return []queryCase{
		{name: "plain", fields: map[string]any{}},
		{name: "tight-diameter", fields: map[string]any{"max_diameter": 120.0}},
		{name: "min-distance", fields: map[string]any{"min_distance": 30.0}},
		{name: "region", fields: map[string]any{"region": []float64{200, 150, 800, 700}}},
		{name: "region-one-cell", fields: map[string]any{"region": []float64{50, 50, 300, 300}}},
		{name: "region-cross", fields: map[string]any{"region": []float64{400, 400, 600, 600}, "max_diameter": 90.0}},
		{name: "combo", fields: map[string]any{"max_diameter": 80.0, "min_distance": 10.0, "region": []float64{100, 0, 900, 800}}},
		{name: "alg-inj", fields: map[string]any{"alg": "inj"}},
		{name: "alg-bij-par", fields: map[string]any{"alg": "bij", "parallelism": 2}},
		{name: "topk", fields: map[string]any{"top_k": 15}, ordered: true},
		{name: "topk-region", fields: map[string]any{"top_k": 10, "region": []float64{0, 0, 600, 1000}}, ordered: true},
		{name: "topk-diameter", fields: map[string]any{"top_k": 5, "max_diameter": 80.0}, ordered: true},
		{name: "topk-limit", fields: map[string]any{"top_k": 8, "limit": 3}, ordered: true},
		{name: "limit", fields: map[string]any{"limit": 20}, subset: true},
	}
}

// bodies renders the router request and the reference request for a case.
// The reference always carries the effective diameter bound the router
// would inject, so both sides answer the same logical query.
func (d *deployment) bodies(t *testing.T, qc queryCase, format string) (routerBody, refBody string) {
	t.Helper()
	mk := func(fields map[string]any) string {
		m := map[string]any{"p": "p", "format": format}
		if d.self {
			m["self"] = true
		} else {
			m["q"] = "q"
		}
		for k, v := range fields {
			m[k] = v
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	ref := map[string]any{}
	for k, v := range qc.fields {
		ref[k] = v
	}
	if _, ok := ref["max_diameter"]; !ok {
		ref["max_diameter"] = d.man.MaxDiameter
	}
	return mk(qc.fields), mk(ref)
}

func assertNoDuplicates(t *testing.T, rows []string) {
	t.Helper()
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r] {
			t.Errorf("duplicate row in router output: %s", r)
		}
		seen[r] = true
	}
}

// TestRouterEquivalence is the core property: for every predicate
// combination, in both formats, over pair and self datasets and an uneven
// worker split with a replica, the router's merged answer equals the
// unsharded server's answer.
func TestRouterEquivalence(t *testing.T) {
	for _, mode := range []struct {
		name   string
		self   bool
		shards int
		split  [][]int
	}{
		{"pair-4shards-2workers", false, 4, [][]int{{0, 1, 2}, {3, 1}}},
		{"self-6shards-3workers", true, 6, [][]int{{0, 1}, {2, 3, 4}, {5, 0}}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			d := newDeployment(t, mode.self, mode.shards, mode.split, nil)
			for _, qc := range equivalenceCases() {
				for _, format := range []string{"ndjson", "csv"} {
					t.Run(qc.name+"/"+format, func(t *testing.T) {
						routerBody, refBody := d.bodies(t, qc, format)
						gotStatus, gotData := postJoin(t, d.router.URL, routerBody)
						wantStatus, wantData := postJoin(t, d.reference.URL, refBody)
						if gotStatus != 200 || wantStatus != 200 {
							t.Fatalf("status router=%d reference=%d", gotStatus, wantStatus)
						}
						csv := format == "csv"
						got, extra := splitStream(t, gotData, csv)
						want, _ := splitStream(t, wantData, csv)
						assertNoDuplicates(t, got)
						if !csv {
							sum := routerSummaryOf(t, extra)
							if sum.Results != int64(len(got)) {
								t.Errorf("summary results %d, streamed %d rows", sum.Results, len(got))
							}
						}
						if qc.subset {
							d.assertLimitSubset(t, qc, format, got)
							return
						}
						if !qc.ordered {
							sort.Strings(got)
							sort.Strings(want)
						}
						if len(got) != len(want) {
							t.Fatalf("router %d rows, reference %d", len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("row %d differs:\nrouter:    %s\nreference: %s", i, got[i], want[i])
							}
						}
					})
				}
			}
		})
	}
}

// assertLimitSubset checks limit semantics: the rows are distinct members
// of the full (unlimited) result, and there are exactly min(limit, total).
func (d *deployment) assertLimitSubset(t *testing.T, qc queryCase, format string, got []string) {
	t.Helper()
	full := map[string]any{}
	for k, v := range qc.fields {
		full[k] = v
	}
	delete(full, "limit")
	_, refBody := d.bodies(t, queryCase{fields: full}, format)
	status, data := postJoin(t, d.reference.URL, refBody)
	if status != 200 {
		t.Fatalf("reference status %d", status)
	}
	fullRows, _ := splitStream(t, data, format == "csv")
	universe := map[string]bool{}
	for _, r := range fullRows {
		universe[r] = true
	}
	limit := int(qc.fields["limit"].(int))
	want := limit
	if len(fullRows) < want {
		want = len(fullRows)
	}
	if len(got) != want {
		t.Fatalf("limit %d: router returned %d rows, want %d (full result %d)", limit, len(got), want, len(fullRows))
	}
	for _, r := range got {
		if !universe[r] {
			t.Errorf("limited row not in the full result: %s", r)
		}
	}
}

// TestRouterBoundaryDedup proves the crafted cut-straddling pair is
// emitted by two shards and collapsed to one row.
func TestRouterBoundaryDedup(t *testing.T) {
	d := newDeployment(t, false, 4, [][]int{nil}, nil)
	before := d.rt.m.dedupDropped.Load()
	status, data := postJoin(t, d.router.URL, `{"p":"p","q":"q","format":"ndjson"}`)
	if status != 200 {
		t.Fatalf("status %d: %s", status, data)
	}
	rows, extra := splitStream(t, data, false)
	assertNoDuplicates(t, rows)
	straddler := false
	for _, r := range rows {
		if strings.Contains(r, `"cx":500,`) {
			straddler = true
		}
	}
	if !straddler {
		t.Error("crafted straddler pair (center on the x=500 cut) missing from the result")
	}
	if d.rt.m.dedupDropped.Load() == before {
		t.Error("no boundary duplicates dropped; the overlap dedup path was not exercised")
	}
	sum := routerSummaryOf(t, extra)
	if sum.DedupDropped == 0 {
		t.Error("summary dedup_dropped is 0")
	}
}

// TestRouterRegionPruning: a window inside one cell must fan out to that
// shard only and report the others as pruned.
func TestRouterRegionPruning(t *testing.T) {
	d := newDeployment(t, false, 4, [][]int{nil, nil}, nil)
	body := `{"p":"p","q":"q","region":[50,50,300,300]}`
	status, data := postJoin(t, d.router.URL, body)
	if status != 200 {
		t.Fatalf("status %d: %s", status, data)
	}
	_, extra := splitStream(t, data, false)
	sum := routerSummaryOf(t, extra)
	if sum.ShardsPruned == 0 {
		t.Errorf("shards_pruned = 0, want > 0 (summary %+v)", sum)
	}
	if sum.ShardsContacted != 1 {
		t.Errorf("shards_contacted = %d, want 1 for a one-cell window", sum.ShardsContacted)
	}
}

// TestRouterDiameterContract: a query bound looser than the manifest's is
// unanswerable (the overlap margin only covers the manifest bound) and
// must be refused with the typed error, not silently mis-answered.
func TestRouterDiameterContract(t *testing.T) {
	d := newDeployment(t, false, 4, [][]int{nil}, nil)
	status, data := postJoin(t, d.router.URL,
		fmt.Sprintf(`{"p":"p","q":"q","max_diameter":%g}`, testMaxD*2))
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	var e struct {
		Code        string  `json:"code"`
		MaxDiameter float64 `json:"max_diameter"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "max_diameter_exceeds_manifest" || e.MaxDiameter != testMaxD {
		t.Errorf("error %+v, want code=max_diameter_exceeds_manifest max_diameter=%g", e, testMaxD)
	}
}

// TestRouterPartialFailure: with a dead worker and no replica, the failure
// must surface as a typed error — 502 before any rows, the in-band
// {"code":"shard_failure"} record on an already-started stream — never a
// clean-looking truncated 200.
func TestRouterPartialFailure(t *testing.T) {
	d := newDeployment(t, false, 4, [][]int{{0, 1}, {2, 3}}, func(c *Config) { c.Retries = 0 })
	d.workers[1].Close()

	status, data := postJoin(t, d.router.URL, `{"p":"p","q":"q"}`)
	switch status {
	case http.StatusBadGateway:
		var e struct {
			Code  string `json:"code"`
			Shard *int   `json:"shard"`
		}
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatal(err)
		}
		if e.Code != "shard_failure" || e.Shard == nil {
			t.Errorf("502 body %s, want code=shard_failure with a shard id", data)
		}
	case http.StatusOK:
		_, extra := splitStream(t, data, false)
		raw, ok := extra["code"]
		if !ok || string(raw) != `"shard_failure"` {
			t.Errorf("started stream ended without the in-band shard_failure record: %v", extra)
		}
	default:
		t.Fatalf("status %d: %s", status, data)
	}

	// Top-k gathers before writing, so the failure is always a clean 502.
	status, data = postJoin(t, d.router.URL, `{"p":"p","q":"q","top_k":5}`)
	if status != http.StatusBadGateway {
		t.Fatalf("top-k with dead worker: status %d (%s), want 502", status, data)
	}
}

// TestRouterFailover: the same dead worker is survivable when a replica
// owns its shards and retries are on — and the answer is still exact.
func TestRouterFailover(t *testing.T) {
	d := newDeployment(t, false, 4, [][]int{nil, nil}, func(c *Config) { c.Retries = 1 })
	d.workers[0].Close()

	status, data := postJoin(t, d.router.URL, `{"p":"p","q":"q"}`)
	if status != 200 {
		t.Fatalf("status %d: %s", status, data)
	}
	got, _ := splitStream(t, data, false)
	refStatus, refData := postJoin(t, d.reference.URL,
		fmt.Sprintf(`{"p":"p","q":"q","max_diameter":%g}`, testMaxD))
	if refStatus != 200 {
		t.Fatalf("reference status %d", refStatus)
	}
	want, _ := splitStream(t, refData, false)
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("failover run returned %d rows, reference %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d differs after failover:\n%s\n%s", i, got[i], want[i])
		}
	}
	if d.rt.m.retries.Load() == 0 {
		t.Error("no retries recorded although half the first picks hit a dead worker")
	}
}

// TestRouterBoundTightening: with serial fan-out and a small k, the first
// shard's answer must tighten the bound later sub-queries carry.
func TestRouterBoundTightening(t *testing.T) {
	d := newDeployment(t, true, 6, [][]int{nil}, func(c *Config) { c.Fanout = 1 })
	status, data := postJoin(t, d.router.URL, `{"p":"p","self":true,"top_k":5}`)
	if status != 200 {
		t.Fatalf("status %d: %s", status, data)
	}
	rows, extra := splitStream(t, data, false)
	if len(rows) != 5 {
		t.Fatalf("top_k=5 returned %d rows", len(rows))
	}
	sum := routerSummaryOf(t, extra)
	if sum.BoundTightenings == 0 {
		t.Error("bound_tightenings = 0 with fanout 1 over 6 shards; republication never happened")
	}
}

// TestRouterHealthAndShards covers the operational surface: /shards lists
// every populated shard with owners, /healthz aggregates worker health.
func TestRouterHealthAndShards(t *testing.T) {
	d := newDeployment(t, false, 4, [][]int{nil, nil}, nil)
	resp, err := http.Get(d.router.URL + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	var plan struct {
		Shards []struct {
			Workers []string `json:"workers"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&plan); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(plan.Shards) == 0 {
		t.Fatal("no shards in /shards")
	}
	for i, sh := range plan.Shards {
		if len(sh.Workers) != 2 {
			t.Errorf("shard %d has %d owners, want 2", i, len(sh.Workers))
		}
	}

	resp, err = http.Get(d.router.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz %d with all workers up", resp.StatusCode)
	}
	d.workers[0].Close()
	d.workers[1].Close()
	resp, err = http.Get(d.router.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d with workers down, want 503 (%s)", resp.StatusCode, body)
	}
}
