// Package router is the scatter-gather tier of a sharded RCJ deployment:
// one stateless HTTP process in front of a fleet of rcjd workers, each
// serving a subset of a shard manifest (internal/shard).
//
// A POST /join against the router looks exactly like a POST /join against
// one rcjd holding the whole dataset — same request fields, same NDJSON/CSV
// result rows, byte for byte — but executes as per-shard sub-queries fanned
// out to the workers owning each shard:
//
//   - Planning. A shard is contacted only if its cell intersects the
//     query's Region window (no Region: every populated shard). Skipped
//     shards count into the shards_pruned metric, so Region selectivity is
//     observable end to end.
//   - Ownership. Each sub-query carries region = cell ∩ Region, so a worker
//     only emits pairs whose circle center lies in its own cell; together
//     with the manifest's overlap margin (≥ MaxDiameter/2) every shard's
//     answer is locally complete — both pair endpoints and every potential
//     witness point are present in the shard file.
//   - Dedup. A pair whose center lies exactly on an interior grid cut is
//     owned by every cell touching the cut (the workers' Region test is
//     closed) and arrives from each of them as a byte-identical row; the
//     router keeps the first and drops the rest. Only rows whose center
//     coordinate bit-equals an interior cut are ever dedup candidates, so
//     the check costs nothing on interior pairs.
//   - Bounds. Sharded datasets always carry a diameter bound: the manifest's
//     MaxDiameter is the margin contract. A query bound above it is a typed
//     400; an absent one is tightened to the manifest's. Global top-k
//     gathers each shard's local top-k, merges by the engine's ranking
//     (ascending radius, ties by P then Q id), and republishes a tightened
//     bound — twice the current k-th radius — to every sub-query dispatched
//     after the tightening (fan-out is bounded, so late shards benefit).
//   - Failure. Sub-queries retry on other owners of the same shard, but only
//     while nothing of that shard's stream has been forwarded. A shard that
//     fails all attempts poisons the response with a typed error — in-band
//     {"error":...,"code":"shard_failure",...} if rows already streamed, a
//     502 JSON body otherwise — never a silently truncated 200.
//
// Workers always speak NDJSON to the router regardless of the client's
// format: NDJSON floats round-trip bit-exactly (shortest-form encoding), so
// re-encoded CSV rows and cut comparisons are exact, while CSV's fixed six
// decimals would not be.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/shard"
)

// Worker is one rcjd process and the manifest shards it owns.
type Worker struct {
	// URL is the worker's base URL (e.g. "http://10.0.0.3:8080").
	URL string
	// Shards lists the shard ids this worker serves; nil means every
	// populated shard of the manifest.
	Shards []int
}

// Config assembles a Router.
type Config struct {
	// Manifest describes the sharded dataset (required, must Validate).
	Manifest *shard.Manifest
	// Workers is the fleet; every populated shard must be owned by at least
	// one worker.
	Workers []Worker
	// Fanout bounds concurrent in-flight sub-queries per request (default 4).
	Fanout int
	// Retries is how many *additional* attempts a failed sub-query gets,
	// each on the next owner of the shard (default 1; 0 disables failover).
	Retries int
	// SubTimeout caps each sub-query attempt (0 = request deadline only).
	SubTimeout time.Duration
	// FixedPlan pins sub-queries whose request named no algorithm to the
	// paper's dominant OBJ instead of letting each worker's cost-based
	// planner decide per shard ("-plan=fixed" in cmd/rcjrouter). An explicit
	// algorithm in the request always forwards verbatim either way.
	FixedPlan bool
	// Client issues worker requests (default: a plain http.Client).
	Client *http.Client
	// Logf, when non-nil, receives router lifecycle messages.
	Logf func(format string, args ...any)
}

// Router plans, scatters, and merges sub-queries. Create with New.
type Router struct {
	cfg    Config
	man    *shard.Manifest
	client *http.Client
	logf   func(string, ...any)

	// owners[id] lists the base URLs serving shard id, in Config order.
	owners map[int][]string
	// workerURLs is the deduplicated fleet, in Config order (metrics, health).
	workerURLs []string
	// xCuts/yCuts are the interior grid cuts: a result row is a dedup
	// candidate iff its center bit-equals one of these in that axis.
	xCuts, yCuts map[float64]struct{}

	rr atomic.Uint64 // round-robin cursor for spreading retries/first picks

	m metrics
}

type metrics struct {
	requests         atomic.Int64
	joinErrors       atomic.Int64
	subqueries       atomic.Int64
	retries          atomic.Int64
	failures         atomic.Int64
	shardsContacted  atomic.Int64
	shardsPruned     atomic.Int64
	boundTightenings atomic.Int64
	dedupDropped     atomic.Int64
	pairsEmitted     atomic.Int64
	perWorker        map[string]*atomic.Int64 // sub-queries per worker URL
}

// New validates the configuration and builds the shard-ownership plan.
func New(cfg Config) (*Router, error) {
	if cfg.Manifest == nil {
		return nil, errors.New("router: manifest is required")
	}
	if err := cfg.Manifest.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("router: at least one worker is required")
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	rt := &Router{
		cfg:    cfg,
		man:    cfg.Manifest,
		client: cfg.Client,
		logf:   cfg.Logf,
		owners: map[int][]string{},
		xCuts:  map[float64]struct{}{},
		yCuts:  map[float64]struct{}{},
		m:      metrics{perWorker: map[string]*atomic.Int64{}},
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	if rt.logf == nil {
		rt.logf = func(string, ...any) {}
	}
	for _, w := range cfg.Workers {
		if w.URL == "" {
			return nil, errors.New("router: worker URL must not be empty")
		}
		if _, dup := rt.m.perWorker[w.URL]; dup {
			return nil, fmt.Errorf("router: duplicate worker %s", w.URL)
		}
		rt.m.perWorker[w.URL] = &atomic.Int64{}
		rt.workerURLs = append(rt.workerURLs, w.URL)
		ids := w.Shards
		if ids == nil {
			for _, sh := range rt.man.Shards {
				if !sh.Empty() {
					ids = append(ids, sh.ID)
				}
			}
		}
		for _, id := range ids {
			if id < 0 || id >= len(rt.man.Shards) {
				return nil, fmt.Errorf("router: worker %s claims shard %d, manifest has 0..%d",
					w.URL, id, len(rt.man.Shards)-1)
			}
			if rt.man.Shards[id].Empty() {
				return nil, fmt.Errorf("router: worker %s claims empty shard %d", w.URL, id)
			}
			rt.owners[id] = append(rt.owners[id], w.URL)
		}
	}
	for _, sh := range rt.man.Shards {
		if !sh.Empty() && len(rt.owners[sh.ID]) == 0 {
			return nil, fmt.Errorf("router: shard %d is owned by no worker", sh.ID)
		}
	}
	xs, ys := rt.man.InteriorCuts()
	for _, x := range xs {
		rt.xCuts[x] = struct{}{}
	}
	for _, y := range ys {
		rt.yCuts[y] = struct{}{}
	}
	return rt, nil
}

// Handler returns the router's HTTP surface: POST /join (the scatter-gather
// query), GET /shards (the plan), GET /healthz (fleet health), GET /metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", rt.handleJoin)
	mux.HandleFunc("GET /shards", rt.handleShards)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// subQuery is one planned shard contact: the shard and the region its
// worker must answer for (the cell, clipped by the query window).
type subQuery struct {
	shardID int
	region  shard.Rect
}

// plan selects the shards a query touches. region is the query window (nil
// = none); the second result is how many populated shards the window proved
// irrelevant.
func (rt *Router) plan(region *shard.Rect) (subs []subQuery, pruned int) {
	for _, sh := range rt.man.Shards {
		if sh.Empty() {
			continue
		}
		cell := sh.Cell
		if region != nil {
			clipped, ok := cell.Intersect(*region)
			if !ok {
				pruned++
				continue
			}
			cell = clipped
		}
		subs = append(subs, subQuery{shardID: sh.ID, region: cell})
	}
	return subs, pruned
}

// errorBody writes a typed JSON error. code is machine-readable; extras are
// merged into the object.
func errorBody(w http.ResponseWriter, status int, code, msg string, extras map[string]any) {
	body := map[string]any{"error": msg, "code": code}
	for k, v := range extras {
		body[k] = v
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	type shardView struct {
		ID      int        `json:"id"`
		Cell    shard.Rect `json:"cell"`
		PCount  int        `json:"p_count"`
		QCount  int        `json:"q_count,omitempty"`
		Workers []string   `json:"workers"`
	}
	var views []shardView
	for _, sh := range rt.man.Shards {
		if sh.Empty() {
			continue
		}
		views = append(views, shardView{
			ID: sh.ID, Cell: sh.Cell, PCount: sh.PCount, QCount: sh.QCount,
			Workers: rt.owners[sh.ID],
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"manifest":     rt.man.Name,
		"self":         rt.man.Self,
		"grid":         fmt.Sprintf("%dx%d", rt.man.GridNX, rt.man.GridNY),
		"max_diameter": rt.man.MaxDiameter,
		"margin":       rt.man.Margin,
		"shards":       views,
	})
}

// handleHealthz probes every worker's /healthz concurrently: 200 with
// per-worker "ok" when the whole fleet serves, 503 naming the down workers
// otherwise.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	type probe struct {
		url string
		err error
	}
	ch := make(chan probe, len(rt.workerURLs))
	for _, url := range rt.workerURLs {
		go func(url string) {
			ch <- probe{url, rt.probeWorker(ctx, url)}
		}(url)
	}
	workers := map[string]string{}
	healthy := true
	for range rt.workerURLs {
		p := <-ch
		if p.err != nil {
			workers[p.url] = p.err.Error()
			healthy = false
		} else {
			workers[p.url] = "ok"
		}
	}
	status := http.StatusOK
	state := "ok"
	if !healthy {
		status = http.StatusServiceUnavailable
		state = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"status": state, "workers": workers})
}

func (rt *Router) probeWorker(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		rt.writePromMetrics(w)
		return
	}
	perWorker := map[string]int64{}
	for url, c := range rt.m.perWorker {
		perWorker[url] = c.Load()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"requests":              rt.m.requests.Load(),
		"join_errors":           rt.m.joinErrors.Load(),
		"subqueries":            rt.m.subqueries.Load(),
		"subqueries_per_worker": perWorker,
		"subquery_retries":      rt.m.retries.Load(),
		"subquery_failures":     rt.m.failures.Load(),
		"shards_contacted":      rt.m.shardsContacted.Load(),
		"shards_pruned":         rt.m.shardsPruned.Load(),
		"bound_tightenings":     rt.m.boundTightenings.Load(),
		"dedup_dropped":         rt.m.dedupDropped.Load(),
		"pairs_emitted":         rt.m.pairsEmitted.Load(),
	})
}

// writePromMetrics renders the counters in Prometheus text exposition
// format, mirroring rcjd's /metrics?format=prom.
func (rt *Router) writePromMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("rcjrouter_requests_total", "Join requests accepted by the router.", rt.m.requests.Load())
	counter("rcjrouter_join_errors_total", "Join requests that ended in an error.", rt.m.joinErrors.Load())
	counter("rcjrouter_subqueries_total", "Sub-queries dispatched to workers.", rt.m.subqueries.Load())
	name := "rcjrouter_worker_subqueries_total"
	fmt.Fprintf(w, "# HELP %s Sub-queries dispatched, by worker.\n# TYPE %s counter\n", name, name)
	for _, url := range rt.workerURLs {
		fmt.Fprintf(w, "%s{worker=%q} %d\n", name, url, rt.m.perWorker[url].Load())
	}
	counter("rcjrouter_subquery_retries_total", "Sub-query attempts retried on another owner.", rt.m.retries.Load())
	counter("rcjrouter_subquery_failures_total", "Sub-queries failed after all attempts.", rt.m.failures.Load())
	counter("rcjrouter_shards_contacted_total", "Shards contacted across all joins.", rt.m.shardsContacted.Load())
	counter("rcjrouter_shards_pruned_total", "Shards skipped because the query region missed their cell.", rt.m.shardsPruned.Load())
	counter("rcjrouter_bound_tightenings_total", "Top-k bound tightenings republished to later sub-queries.", rt.m.boundTightenings.Load())
	counter("rcjrouter_dedup_dropped_total", "Boundary-duplicate rows dropped during merge.", rt.m.dedupDropped.Load())
	counter("rcjrouter_pairs_emitted_total", "Result rows streamed to clients.", rt.m.pairsEmitted.Load())
}

// sortRows orders rows by the engine's deterministic pair ranking:
// ascending radius, ties broken by P id then Q id (core's pairBefore).
func sortRows(rows []row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i].line, rows[j].line
		if a.Radius != b.Radius {
			return a.Radius < b.Radius
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		return a.QID < b.QID
	})
}
