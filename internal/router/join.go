// Scatter-gather POST /join: planning, sub-query dispatch with retries and
// bounded fan-out, streaming merge with boundary dedup, global top-k with
// bound republication, typed partial-failure reporting.
package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
	"repro/rcj"
)

// joinRequest mirrors the worker's POST /join payload (internal/server);
// the router accepts the same body a single rcjd would and forwards the
// per-shard derivative of it.
type joinRequest struct {
	P           string `json:"p"`
	Q           string `json:"q,omitempty"`
	Self        bool   `json:"self,omitempty"`
	Alg         string `json:"alg,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`
	TimeoutMS   int64  `json:"timeout_ms,omitempty"`
	Format      string `json:"format,omitempty"`

	MaxDiameter float64   `json:"max_diameter,omitempty"`
	MinDistance float64   `json:"min_distance,omitempty"`
	TopK        int       `json:"top_k,omitempty"`
	Limit       int       `json:"limit,omitempty"`
	Region      []float64 `json:"region,omitempty"`
}

// pairLine is one parsed worker result row (field layout fixed by the
// worker's NDJSON encoder).
type pairLine struct {
	PID    int64   `json:"p_id"`
	QID    int64   `json:"q_id"`
	CX     float64 `json:"cx"`
	CY     float64 `json:"cy"`
	Radius float64 `json:"r"`
}

// pair rebuilds the rcj.Pair shape the shared CSV encoder expects. Worker
// NDJSON floats are shortest-form, so the round trip is bit-exact and the
// re-encoded CSV row matches a single-server response byte for byte.
func (l pairLine) pair() rcj.Pair {
	return rcj.Pair{
		P:      rcj.Point{ID: l.PID},
		Q:      rcj.Point{ID: l.QID},
		Center: rcj.Point{X: l.CX, Y: l.CY},
		Radius: l.Radius,
	}
}

// row is one worker result: the parsed fields plus the original NDJSON
// line, forwarded verbatim to NDJSON clients.
type row struct {
	line pairLine
	raw  []byte // includes the trailing '\n'
}

// workerSummary is the subset of the worker's summary line the router
// aggregates.
type workerSummary struct {
	Results      int64 `json:"results"`
	Candidates   int64 `json:"candidates"`
	NodeAccesses int64 `json:"node_accesses"`
	PageFaults   int64 `json:"page_faults"`
	NodesPruned  int64 `json:"nodes_pruned"`
	BoundKilled  int64 `json:"bound_killed_candidates"`
}

// routerSummary terminates a successful NDJSON stream: worker statistics
// summed across sub-queries, plus the router's own planning and merge
// counters for this request.
type routerSummary struct {
	Results          int64 `json:"results"`
	Candidates       int64 `json:"candidates"`
	NodeAccesses     int64 `json:"node_accesses"`
	PageFaults       int64 `json:"page_faults"`
	NodesPruned      int64 `json:"nodes_pruned"`
	BoundKilled      int64 `json:"bound_killed_candidates"`
	ShardsContacted  int   `json:"shards_contacted"`
	ShardsPruned     int   `json:"shards_pruned"`
	SubqueryRetries  int64 `json:"subquery_retries"`
	DedupDropped     int64 `json:"dedup_dropped"`
	BoundTightenings int64 `json:"bound_tightenings"`
	ElapsedMS        int64 `json:"elapsed_ms"`
}

// streamError is the typed in-band failure record appended to an NDJSON
// stream whose status line is already gone.
type streamError struct {
	Error  string `json:"error"`
	Code   string `json:"code"`
	Shard  int    `json:"shard"`
	Worker string `json:"worker,omitempty"`
}

// subError identifies which shard's sub-query failed, and where.
type subError struct {
	shard  int
	worker string
	err    error
}

func (e *subError) Error() string {
	return fmt.Sprintf("shard %d (worker %s): %v", e.shard, e.worker, e.err)
}

// errStopStream aborts a worker stream on purpose (limit satisfied or
// client gone); it is a clean end, not a sub-query failure.
var errStopStream = errors.New("router: stream stopped")

func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	rt.m.requests.Add(1)
	fail := func(status int, code, msg string, extras map[string]any) {
		rt.m.joinErrors.Add(1)
		errorBody(w, status, code, msg, extras)
	}
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad_request", fmt.Sprintf("bad request body: %v", err), nil)
		return
	}
	// The router fronts exactly one sharded dataset; the client addresses
	// it by the conventional names a single server would use ("p"/"q"), or
	// leaves them empty.
	if rt.man.Self {
		if !req.Self || req.Q != "" {
			fail(http.StatusBadRequest, "bad_request",
				fmt.Sprintf("manifest %q is a self-join dataset: set self=true and no q", rt.man.Name), nil)
			return
		}
	} else {
		if req.Self {
			fail(http.StatusBadRequest, "bad_request",
				fmt.Sprintf("manifest %q is a two-set dataset: self must be false", rt.man.Name), nil)
			return
		}
		if req.Q != "" && req.Q != "q" {
			fail(http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown index %q", req.Q), nil)
			return
		}
	}
	if req.P != "" && req.P != "p" {
		fail(http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown index %q", req.P), nil)
		return
	}
	csvFormat := false
	switch req.Format {
	case "", "ndjson":
	case "csv":
		csvFormat = true
	default:
		fail(http.StatusBadRequest, "bad_request",
			fmt.Sprintf("unknown format %q (want ndjson or csv)", req.Format), nil)
		return
	}
	if _, ok := map[string]bool{"": true, "auto": true, "obj": true, "bij": true, "inj": true, "brute": true}[req.Alg]; !ok {
		fail(http.StatusBadRequest, "bad_request",
			fmt.Sprintf("unknown algorithm %q (want auto, inj, bij, obj, or brute)", req.Alg), nil)
		return
	}
	// "" / "auto" lets each worker's planner pick per shard — shards differ
	// in size, so one request can legitimately run OBJ on a dense shard and
	// brute on a near-empty one — unless the router is pinned to the classic
	// fixed default.
	if req.Alg == "" && rt.cfg.FixedPlan {
		req.Alg = "obj"
	}
	if req.Parallelism < 0 || req.MinDistance < 0 || req.TopK < 0 || req.Limit < 0 {
		fail(http.StatusBadRequest, "bad_request", "parallelism, min_distance, top_k, and limit must be >= 0", nil)
		return
	}
	// The diameter bound is the sharding contract: the overlap margin only
	// guarantees shard-local completeness for pairs at most MaxDiameter
	// wide. An unbounded query inherits the manifest's bound; a looser one
	// cannot be answered correctly and is refused with a typed error.
	switch {
	case req.MaxDiameter < 0:
		fail(http.StatusBadRequest, "bad_request", "max_diameter must be >= 0", nil)
		return
	case req.MaxDiameter == 0:
		req.MaxDiameter = rt.man.MaxDiameter
	case req.MaxDiameter > rt.man.MaxDiameter:
		fail(http.StatusBadRequest, "max_diameter_exceeds_manifest",
			fmt.Sprintf("max_diameter %g exceeds the manifest's shard bound %g", req.MaxDiameter, rt.man.MaxDiameter),
			map[string]any{"max_diameter": rt.man.MaxDiameter})
		return
	}
	var region *shard.Rect
	if len(req.Region) > 0 {
		if len(req.Region) != 4 {
			fail(http.StatusBadRequest, "bad_request",
				fmt.Sprintf("region must be [min_x, min_y, max_x, max_y], got %d values", len(req.Region)), nil)
			return
		}
		rg := shard.Rect{req.Region[0], req.Region[1], req.Region[2], req.Region[3]}
		// The negated comparison also rejects NaN (mirrors rcj.Query.Validate).
		if !(rg[0] <= rg[2] && rg[1] <= rg[3]) {
			fail(http.StatusBadRequest, "bad_request", fmt.Sprintf("empty region window %v", rg), nil)
			return
		}
		region = &rg
	}

	subs, pruned := rt.plan(region)
	rt.m.shardsPruned.Add(int64(pruned))
	rt.m.shardsContacted.Add(int64(len(subs)))

	if req.TopK > 0 {
		rt.gatherJoin(r.Context(), w, &req, subs, pruned, csvFormat)
	} else {
		rt.streamJoin(r.Context(), w, &req, subs, pruned, csvFormat)
	}
}

// subRequest derives the per-shard worker request: conventional shard index
// names, the clipped cell as the region (ownership), always NDJSON, and the
// current diameter bound.
func (rt *Router) subRequest(req *joinRequest, sub subQuery, bound float64) *joinRequest {
	sr := &joinRequest{
		Alg:         req.Alg,
		Parallelism: req.Parallelism,
		TimeoutMS:   req.TimeoutMS,
		Format:      "ndjson",
		MaxDiameter: bound,
		MinDistance: req.MinDistance,
		TopK:        req.TopK,
		Limit:       req.Limit,
		Region:      []float64{sub.region[0], sub.region[1], sub.region[2], sub.region[3]},
	}
	if rt.man.Self {
		sr.P, sr.Self = shard.IndexName(sub.shardID, "p"), true
	} else {
		sr.P, sr.Q = shard.IndexName(sub.shardID, "p"), shard.IndexName(sub.shardID, "q")
	}
	return sr
}

// suspect reports whether a row could have been emitted by more than one
// shard: its center bit-equals an interior grid cut in some axis. Workers
// evaluate the closed region test on the exact same float64s (NDJSON
// round-trips them bit-exactly), so this is a precise test, not a tolerance.
func (rt *Router) suspect(l pairLine) bool {
	if _, ok := rt.xCuts[l.CX]; ok {
		return true
	}
	_, ok := rt.yCuts[l.CY]
	return ok
}

// fetchSub performs one sub-query attempt and decodes the worker stream:
// rows go to onRow, the summary is returned. A non-nil error means the
// shard's answer is incomplete (unless it is errStopStream, a deliberate
// local abort).
func (rt *Router) fetchSub(ctx context.Context, url string, body *joinRequest, onRow func(row) error) (*workerSummary, error) {
	rt.m.subqueries.Add(1)
	rt.m.perWorker[url].Add(1)
	if rt.cfg.SubTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.SubTimeout)
		defer cancel()
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/join", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("worker status %d: %s", resp.StatusCode, e.Error)
		}
		return nil, fmt.Errorf("worker status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var summary *workerSummary
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		switch {
		case bytes.HasPrefix(line, []byte(`{"p_id":`)):
			if summary != nil {
				return nil, errors.New("row after summary in worker stream")
			}
			var pl pairLine
			if err := json.Unmarshal(line, &pl); err != nil {
				return nil, fmt.Errorf("bad result row %.120q: %v", line, err)
			}
			raw := make([]byte, 0, len(line)+1)
			raw = append(append(raw, line...), '\n')
			if err := onRow(row{line: pl, raw: raw}); err != nil {
				return nil, err
			}
		case bytes.HasPrefix(line, []byte(`{"summary":`)):
			var s struct {
				Summary workerSummary `json:"summary"`
			}
			if err := json.Unmarshal(line, &s); err != nil {
				return nil, fmt.Errorf("bad summary line: %v", err)
			}
			summary = &s.Summary
		case bytes.HasPrefix(line, []byte(`{"error":`)):
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(line, &e); err != nil {
				return nil, fmt.Errorf("bad error line: %v", err)
			}
			return nil, fmt.Errorf("worker join failed: %s", e.Error)
		default:
			return nil, fmt.Errorf("unrecognized stream line %.120q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if summary == nil {
		// A clean NDJSON stream always ends with a summary; its absence
		// means the connection was cut mid-answer.
		return nil, errors.New("truncated worker stream (no summary)")
	}
	return summary, nil
}

// aggStats sums worker summaries under the caller's lock.
type aggStats struct {
	candidates, nodeAccesses, pageFaults, nodesPruned, boundKilled int64
}

func (a *aggStats) add(s *workerSummary) {
	if s == nil {
		return
	}
	a.candidates += s.Candidates
	a.nodeAccesses += s.NodeAccesses
	a.pageFaults += s.PageFaults
	a.nodesPruned += s.NodesPruned
	a.boundKilled += s.BoundKilled
}

// ---------------------------------------------------------------------------
// Streaming path (no top-k): rows forward to the client as workers produce
// them, interleaved across shards, with boundary dedup and a global limit.

type streamSink struct {
	rt      *Router
	w       http.ResponseWriter
	flusher http.Flusher
	csv     bool
	cancel  context.CancelFunc

	mu       sync.Mutex
	started  bool // response header written
	dead     bool // client write failed; stop producing
	hitLimit bool
	limit    int64
	emitted  int64
	dropped  int64                 // boundary duplicates dropped (this request)
	retries  int64                 // sub-query retries (this request)
	seen     map[[2]int64]struct{} // boundary-suspect pairs already forwarded
	stats    aggStats
	buf      []byte // CSV re-encode scratch, reused under mu
}

func (sk *streamSink) writeHeaderLocked() {
	if sk.started {
		return
	}
	if sk.csv {
		sk.w.Header().Set("Content-Type", "text/csv")
	} else {
		sk.w.Header().Set("Content-Type", "application/x-ndjson")
	}
	sk.w.WriteHeader(http.StatusOK)
	sk.started = true
}

func (sk *streamSink) flushLocked() {
	if sk.flusher != nil {
		sk.flusher.Flush()
	}
}

// emit forwards one worker row. wrote reports whether bytes reached the
// client (a forwarded shard stream can no longer fail over); stop asks the
// producing stream to end (limit satisfied or client gone).
func (sk *streamSink) emit(rw row) (wrote, stop bool) {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	if sk.hitLimit || sk.dead {
		return false, true
	}
	if sk.rt.suspect(rw.line) {
		key := [2]int64{rw.line.PID, rw.line.QID}
		if _, dup := sk.seen[key]; dup {
			sk.dropped++
			sk.rt.m.dedupDropped.Add(1)
			return false, false
		}
		sk.seen[key] = struct{}{}
	}
	sk.writeHeaderLocked()
	out := rw.raw
	if sk.csv {
		sk.buf = server.AppendPairCSV(sk.buf[:0], rw.line.pair())
		out = sk.buf
	}
	if _, err := sk.w.Write(out); err != nil {
		sk.dead = true
		sk.cancel()
		return false, true
	}
	sk.rt.m.pairsEmitted.Add(1)
	sk.emitted++
	sk.flushLocked()
	if sk.limit > 0 && sk.emitted >= sk.limit {
		sk.hitLimit = true
		sk.cancel()
		return true, true
	}
	return true, false
}

func (sk *streamSink) ended() bool {
	sk.mu.Lock()
	defer sk.mu.Unlock()
	return sk.hitLimit || sk.dead
}

func (rt *Router) streamJoin(ctx context.Context, w http.ResponseWriter, req *joinRequest, subs []subQuery, pruned int, csvFormat bool) {
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	flusher, _ := w.(http.Flusher)
	sink := &streamSink{
		rt: rt, w: w, flusher: flusher, csv: csvFormat, cancel: cancel,
		limit: int64(req.Limit), seen: map[[2]int64]struct{}{},
	}

	var firstFail *subError
	var failMu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, rt.cfg.Fanout)
	for _, sub := range subs {
		wg.Add(1)
		go func(sub subQuery) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return
			}
			if serr := rt.streamSub(ctx, sub, req, sink); serr != nil {
				failMu.Lock()
				// A deliberate local end (limit, client gone) or a failure
				// after one is already recorded is not a new incident.
				if firstFail == nil && !sink.ended() {
					firstFail = serr
					rt.m.failures.Add(1)
					cancel()
				}
				failMu.Unlock()
			}
		}(sub)
	}
	wg.Wait()

	sink.mu.Lock()
	defer sink.mu.Unlock()
	rt.m.retries.Add(sink.retries)
	if firstFail != nil {
		rt.m.joinErrors.Add(1)
		rt.logf("router: join failed: %v", firstFail)
		if !sink.started {
			sink.mu.Unlock()
			errorBody(w, http.StatusBadGateway, "shard_failure", firstFail.err.Error(),
				map[string]any{"shard": firstFail.shard, "worker": firstFail.worker})
			sink.mu.Lock()
			return
		}
		// The status line is gone; NDJSON clients get a typed in-band error,
		// CSV streams simply truncate (same contract as a single rcjd).
		if !csvFormat {
			line, _ := json.Marshal(streamError{
				Error: firstFail.err.Error(), Code: "shard_failure",
				Shard: firstFail.shard, Worker: firstFail.worker,
			})
			sink.w.Write(append(line, '\n'))
		}
		sink.flushLocked()
		return
	}
	sink.writeHeaderLocked()
	if !csvFormat {
		sum := routerSummary{
			Results:      sink.emitted,
			Candidates:   sink.stats.candidates,
			NodeAccesses: sink.stats.nodeAccesses,
			PageFaults:   sink.stats.pageFaults,
			NodesPruned:  sink.stats.nodesPruned,
			BoundKilled:  sink.stats.boundKilled,

			ShardsContacted: len(subs),
			ShardsPruned:    pruned,
			SubqueryRetries: sink.retries,
			DedupDropped:    sink.dropped,
			ElapsedMS:       time.Since(start).Milliseconds(),
		}
		line, _ := json.Marshal(map[string]routerSummary{"summary": sum})
		sink.w.Write(append(line, '\n'))
	}
	sink.flushLocked()
}

// streamSub answers one shard with failover: attempts rotate through the
// shard's owners, but only while nothing of this shard's stream has been
// forwarded to the client (a half-forwarded stream cannot restart without
// duplicating rows).
func (rt *Router) streamSub(ctx context.Context, sub subQuery, req *joinRequest, sink *streamSink) *subError {
	owners := rt.owners[sub.shardID]
	start := int(rt.rr.Add(1)-1) % len(owners)
	attempts := rt.cfg.Retries + 1
	var lastErr error
	lastURL := owners[start]
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		url := owners[(start+a)%len(owners)]
		forwarded := false
		sum, err := rt.fetchSub(ctx, url, rt.subRequest(req, sub, req.MaxDiameter), func(rw row) error {
			wrote, stop := sink.emit(rw)
			if wrote {
				forwarded = true
			}
			if stop {
				return errStopStream
			}
			return nil
		})
		if err == nil || errors.Is(err, errStopStream) {
			sink.mu.Lock()
			sink.stats.add(sum)
			sink.mu.Unlock()
			return nil
		}
		lastErr, lastURL = err, url
		if forwarded {
			break // rows already with the client: no transparent failover
		}
		if a+1 < attempts && ctx.Err() == nil {
			sink.mu.Lock()
			sink.retries++
			sink.mu.Unlock()
			rt.logf("router: shard %d attempt on %s failed (%v), retrying", sub.shardID, url, err)
		}
	}
	return &subError{shard: sub.shardID, worker: lastURL, err: lastErr}
}

// ---------------------------------------------------------------------------
// Gather path (top-k): per-shard local top-k sets merge under the engine's
// deterministic ranking; each completed shard tightens the global diameter
// bound, which later-dispatched sub-queries inherit (fan-out is bounded, so
// with more shards than slots the tightening reaches real work).

type gatherState struct {
	mu    sync.Mutex
	rows  []row // deduped, kept sorted+trimmed to k once it first fills
	seen  map[[2]int64]struct{}
	stats aggStats

	retries int64
	dropped int64
	tight   int64

	bound atomic.Uint64 // float64 bits of the current diameter bound
}

func (rt *Router) gatherJoin(ctx context.Context, w http.ResponseWriter, req *joinRequest, subs []subQuery, pruned int, csvFormat bool) {
	start := time.Now()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := &gatherState{seen: map[[2]int64]struct{}{}}
	st.bound.Store(math.Float64bits(req.MaxDiameter))

	var firstFail *subError
	var failMu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, rt.cfg.Fanout)
	for _, sub := range subs {
		wg.Add(1)
		go func(sub subQuery) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				return
			}
			if serr := rt.gatherSub(ctx, sub, req, st); serr != nil {
				failMu.Lock()
				if firstFail == nil {
					firstFail = serr
					rt.m.failures.Add(1)
					cancel()
				}
				failMu.Unlock()
			}
		}(sub)
	}
	wg.Wait()

	rt.m.retries.Add(st.retries)
	if firstFail != nil {
		// Nothing has been written (the gather buffers), so the failure is
		// always a clean typed status, never a truncated 200.
		rt.m.joinErrors.Add(1)
		rt.logf("router: top-k join failed: %v", firstFail)
		errorBody(w, http.StatusBadGateway, "shard_failure", firstFail.err.Error(),
			map[string]any{"shard": firstFail.shard, "worker": firstFail.worker})
		return
	}

	sortRows(st.rows)
	n := req.TopK
	if req.Limit > 0 && req.Limit < n {
		n = req.Limit
	}
	if len(st.rows) > n {
		st.rows = st.rows[:n]
	}
	if csvFormat {
		w.Header().Set("Content-Type", "text/csv")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	var buf []byte
	for _, rw := range st.rows {
		if csvFormat {
			buf = server.AppendPairCSV(buf[:0], rw.line.pair())
			w.Write(buf)
		} else {
			w.Write(rw.raw)
		}
	}
	rt.m.pairsEmitted.Add(int64(len(st.rows)))
	if !csvFormat {
		sum := routerSummary{
			Results:      int64(len(st.rows)),
			Candidates:   st.stats.candidates,
			NodeAccesses: st.stats.nodeAccesses,
			PageFaults:   st.stats.pageFaults,
			NodesPruned:  st.stats.nodesPruned,
			BoundKilled:  st.stats.boundKilled,

			ShardsContacted:  len(subs),
			ShardsPruned:     pruned,
			SubqueryRetries:  st.retries,
			DedupDropped:     st.dropped,
			BoundTightenings: st.tight,
			ElapsedMS:        time.Since(start).Milliseconds(),
		}
		line, _ := json.Marshal(map[string]routerSummary{"summary": sum})
		w.Write(append(line, '\n'))
	}
	if flusher, ok := w.(http.Flusher); ok {
		flusher.Flush()
	}
}

// gatherSub collects one shard's local top-k. Nothing is forwarded until
// every shard answers, so failover is always transparent here; each attempt
// restarts with an empty local buffer.
func (rt *Router) gatherSub(ctx context.Context, sub subQuery, req *joinRequest, st *gatherState) *subError {
	owners := rt.owners[sub.shardID]
	start := int(rt.rr.Add(1)-1) % len(owners)
	attempts := rt.cfg.Retries + 1
	var lastErr error
	lastURL := owners[start]
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		url := owners[(start+a)%len(owners)]
		body := rt.subRequest(req, sub, math.Float64frombits(st.bound.Load()))
		var local []row
		sum, err := rt.fetchSub(ctx, url, body, func(rw row) error {
			local = append(local, rw)
			return nil
		})
		if err == nil {
			st.merge(rt, req.TopK, local, sum)
			return nil
		}
		lastErr, lastURL = err, url
		if a+1 < attempts && ctx.Err() == nil {
			st.mu.Lock()
			st.retries++
			st.mu.Unlock()
			rt.logf("router: shard %d attempt on %s failed (%v), retrying", sub.shardID, url, err)
		}
	}
	return &subError{shard: sub.shardID, worker: lastURL, err: lastErr}
}

// merge folds one shard's answer into the running top-k and republishes a
// tightened diameter bound when the k-th best so far improved on it. Dedup
// must precede the k-th lookup: a boundary pair counted twice would fake a
// tighter k-th radius and over-prune later shards.
func (st *gatherState) merge(rt *Router, k int, local []row, sum *workerSummary) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.stats.add(sum)
	for _, rw := range local {
		if rt.suspect(rw.line) {
			key := [2]int64{rw.line.PID, rw.line.QID}
			if _, dup := st.seen[key]; dup {
				st.dropped++
				rt.m.dedupDropped.Add(1)
				continue
			}
			st.seen[key] = struct{}{}
		}
		st.rows = append(st.rows, rw)
	}
	if len(st.rows) < k {
		return
	}
	sortRows(st.rows)
	st.rows = st.rows[:k] // beyond-k rows can never re-enter under the same total order
	// Every pair still missing is at most as tight as the current k-th, so
	// its diameter is bounded by twice that radius (exact: *2 only shifts
	// the exponent). A zero k-th radius cannot be republished — the wire
	// format reads max_diameter 0 as "unbounded".
	newBound := 2 * st.rows[k-1].line.Radius
	if newBound > 0 && newBound < math.Float64frombits(st.bound.Load()) {
		st.bound.Store(math.Float64bits(newBound))
		st.tight++
		rt.m.boundTightenings.Add(1)
	}
}
