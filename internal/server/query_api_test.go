package server

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/rcj"
)

// newOverlapServer stands up a Server over two saved indexes whose
// pointsets overlap in space — unlike the disjoint grids of newTestServer,
// the join has many pairs, which the predicate tests need.
func newOverlapServer(t *testing.T, n int, cfg sched.Config) (*httptest.Server, *Server) {
	t.Helper()
	dir := t.TempDir()
	mk := func(name string, seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]rcj.Point, n)
		for i := range pts {
			pts[i] = rcj.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: int64(i)}
		}
		ix, err := rcj.BuildIndex(pts, rcj.IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		path := filepath.Join(dir, name)
		if err := ix.Save(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 1024})
	srv := New(sched.New(eng, cfg), Config{Backend: rcj.BackendFile})
	if err := srv.LoadIndex("p", mk("p.rcjx", 1)); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadIndex("q", mk("q.rcjx", 2)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv
}

// TestJoinPredicates exercises the pushdown fields of POST /join: a top_k
// request returns exactly the k tightest pairs of the full join in ranking
// order, region/max_diameter return the post-filtered subset, and the
// summary line reports the pruning.
func TestJoinPredicates(t *testing.T) {
	ts, _ := newOverlapServer(t, 1500, sched.Config{MaxConcurrent: 2})

	resp := postJoin(t, ts, `{"p":"p","q":"q"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full join status %d", resp.StatusCode)
	}
	full, _ := decodeStream(t, resp.Body)
	resp.Body.Close()

	t.Run("top_k", func(t *testing.T) {
		resp := postJoin(t, ts, `{"p":"p","q":"q","top_k":5}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		pairs, summary := decodeStream(t, resp.Body)
		resp.Body.Close()
		if len(pairs) != 5 {
			t.Fatalf("top_k=5 returned %d pairs", len(pairs))
		}
		want := append([]rcj.Pair(nil), full...)
		rcj.SortPairsByDiameter(want)
		for i, pr := range pairs {
			if pr.P.ID != want[i].P.ID || pr.Q.ID != want[i].Q.ID {
				t.Errorf("rank %d: got (%d,%d), want (%d,%d)", i, pr.P.ID, pr.Q.ID, want[i].P.ID, want[i].Q.ID)
			}
		}
		if summary == nil || summary.NodesPruned == 0 {
			t.Errorf("summary = %+v, want NodesPruned > 0", summary)
		}
		if summary.Results != 5 {
			t.Errorf("summary.Results = %d, want 5", summary.Results)
		}
	})

	t.Run("max_diameter_region", func(t *testing.T) {
		q := rcj.Query{MaxDiameter: 80, Region: &rcj.Rect{MinX: 100, MinY: 100, MaxX: 600, MaxY: 600}}
		resp := postJoin(t, ts, `{"p":"p","q":"q","max_diameter":80,"region":[100,100,600,600]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		pairs, _ := decodeStream(t, resp.Body)
		resp.Body.Close()
		var want []rcj.Pair
		for _, pr := range full {
			if q.Matches(pr) {
				want = append(want, pr)
			}
		}
		if len(pairs) != len(want) {
			t.Fatalf("constrained join returned %d pairs, post-filter says %d", len(pairs), len(want))
		}
		key := func(p rcj.Pair) [2]int64 { return [2]int64{p.P.ID, p.Q.ID} }
		got := make(map[[2]int64]bool, len(pairs))
		for _, pr := range pairs {
			got[key(pr)] = true
		}
		for _, pr := range want {
			if !got[key(pr)] {
				t.Errorf("missing pair (%d,%d)", pr.P.ID, pr.Q.ID)
			}
		}
	})

	t.Run("validation", func(t *testing.T) {
		for _, body := range []string{
			`{"p":"p","q":"q","top_k":-1}`,
			`{"p":"p","q":"q","limit":-1}`,
			`{"p":"p","q":"q","max_diameter":-2}`,
			`{"p":"p","q":"q","region":[1,2,3]}`,
			`{"p":"p","q":"q","region":[5,5,1,1]}`,
		} {
			resp := postJoin(t, ts, body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s: status %d, want 400", body, resp.StatusCode)
			}
		}
	})
}

// TestUnloadIndex covers the DELETE /indexes/{name} lifecycle: unknown
// names 404, a loaded index unloads cleanly, joins against it then 404, and
// a reload under the same name works.
func TestUnloadIndex(t *testing.T) {
	ts, srv := newOverlapServer(t, 300, sched.Config{MaxConcurrent: 2})

	del := func(name string) *http.Response {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/indexes/"+name, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := del("nope")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown unload status %d, want 404", resp.StatusCode)
	}

	e, _ := srv.lookup("q")
	qPath := e.path
	resp = del("q")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unload status %d, want 200", resp.StatusCode)
	}
	if _, ok := srv.lookup("q"); ok {
		t.Fatal("q still registered after unload")
	}

	resp = postJoin(t, ts, `{"p":"p","q":"q"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("join against unloaded index: status %d, want 404", resp.StatusCode)
	}

	if err := srv.LoadIndex("q", qPath); err != nil {
		t.Fatalf("reload after unload: %v", err)
	}
	resp = postJoin(t, ts, `{"p":"p","q":"q","top_k":3}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join after reload: status %d", resp.StatusCode)
	}
	pairs, _ := decodeStream(t, resp.Body)
	if len(pairs) != 3 {
		t.Fatalf("join after reload returned %d pairs, want 3", len(pairs))
	}
}

// TestUnloadBusyIndex checks the in-flight protection: while a join
// references an index, DELETE returns 409 and the index survives; once the
// reference is released the unload succeeds. The pin is taken directly
// (deterministic — HTTP streams can drain at any speed); the handler's own
// acquire/release is covered by the post-drain unload of
// TestJoinPredicates-style streams in TestUnloadIndex.
func TestUnloadBusyIndex(t *testing.T) {
	ts, srv := newOverlapServer(t, 300, sched.Config{MaxConcurrent: 2})

	e, ok := srv.acquire("q")
	if !ok {
		t.Fatal("acquire q")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/indexes/q", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Fatalf("unload of busy index: status %d, want 409", dresp.StatusCode)
	}
	if dresp.Header.Get("Retry-After") == "" {
		t.Error("409 response missing Retry-After")
	}
	if _, ok := srv.lookup("q"); !ok {
		t.Fatal("busy index was unloaded anyway")
	}

	// A join through the handler still works while another request pins the
	// index (shared read access).
	jresp := postJoin(t, ts, `{"p":"p","q":"q","top_k":1}`)
	io.Copy(io.Discard, jresp.Body)
	jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("join while pinned: status %d", jresp.StatusCode)
	}

	srv.release(e)
	dresp2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusOK {
		t.Fatalf("unload after release: status %d, want 200", dresp2.StatusCode)
	}
}

// TestMetricsProm checks the Prometheus exposition: selected via query
// param or Accept header, well-formed families, JSON stays the default.
func TestMetricsProm(t *testing.T) {
	ts, _ := newOverlapServer(t, 300, sched.Config{MaxConcurrent: 2})
	resp := postJoin(t, ts, `{"p":"p","q":"q","top_k":2}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	get := func(url string, accept string) (int, string, string) {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		body, _ := io.ReadAll(r.Body)
		return r.StatusCode, r.Header.Get("Content-Type"), string(body)
	}

	code, ctype, body := get(ts.URL+"/metrics?format=prom", "")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("prom metrics: status %d content-type %q", code, ctype)
	}
	for _, want := range []string{
		"# TYPE rcjd_sched_in_flight gauge",
		"# TYPE rcjd_sched_completed_total counter",
		"rcjd_sched_pairs_emitted_total 2",
		`rcjd_requests_total{endpoint="join"} 1`,
		"rcjd_pool_shards",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %q\n%s", want, body)
		}
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	code, ctype, body2 := get(ts.URL+"/metrics", "text/plain")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(body2, "rcjd_sched_in_flight") {
		t.Fatalf("Accept: text/plain did not select prom exposition (status %d, content-type %q)", code, ctype)
	}

	code, ctype, body3 := get(ts.URL+"/metrics", "")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("default metrics: status %d content-type %q", code, ctype)
	}
	if !strings.Contains(body3, `"sched"`) {
		t.Errorf("default JSON metrics missing sched block: %s", body3)
	}
}
