package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/rcj"
)

// buildSavedIndexes writes two .rcjx files for the tests and returns their
// paths plus the pointsets they index.
func buildSavedIndexes(t *testing.T, n int) (pPath, qPath string, pPts, qPts []rcj.Point) {
	t.Helper()
	dir := t.TempDir()
	mk := func(name string, offset float64) (string, []rcj.Point) {
		pts := make([]rcj.Point, n)
		for i := range pts {
			pts[i] = rcj.Point{
				X:  float64(i%71)*13.3 + offset,
				Y:  float64(i%89)*9.1 + offset/3,
				ID: int64(i),
			}
		}
		ix, err := rcj.BuildIndex(pts, rcj.IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		path := filepath.Join(dir, name)
		if err := ix.Save(path); err != nil {
			t.Fatal(err)
		}
		return path, pts
	}
	pPath, pPts = mk("p.rcjx", 0)
	qPath, qPts = mk("q.rcjx", 4000)
	return pPath, qPath, pPts, qPts
}

// newTestServer stands up a Server over saved indexes "p" and "q" with the
// given scheduler config, mounted on an httptest.Server.
func newTestServer(t *testing.T, n int, cfg sched.Config) (*httptest.Server, *Server) {
	t.Helper()
	pPath, qPath, _, _ := buildSavedIndexes(t, n)
	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 1024})
	srv := New(sched.New(eng, cfg), Config{Backend: rcj.BackendFile})
	if err := srv.LoadIndex("p", pPath); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadIndex("q", qPath); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv
}

// postJoin posts a /join request and returns the response.
func postJoin(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/join", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeStream splits an NDJSON join response into pairs and the summary.
func decodeStream(t *testing.T, r io.Reader) ([]rcj.Pair, *summaryLine) {
	t.Helper()
	var pairs []rcj.Pair
	var summary *summaryLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case probe["summary"] != nil:
			summary = new(summaryLine)
			if err := json.Unmarshal(probe["summary"], summary); err != nil {
				t.Fatal(err)
			}
		case probe["error"] != nil:
			t.Fatalf("stream error: %s", line)
		default:
			var pl pairLine
			if err := json.Unmarshal(line, &pl); err != nil {
				t.Fatal(err)
			}
			pairs = append(pairs, rcj.Pair{
				P:      rcj.Point{ID: pl.PID},
				Q:      rcj.Point{ID: pl.QID},
				Center: rcj.Point{X: pl.CX, Y: pl.CY},
				Radius: pl.Radius,
			})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return pairs, summary
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// pairKey canonicalizes one result for set comparison; float bits are
// compared exactly — both sides run the same computation.
func pairKey(id1, id2 int64, cx, cy, r float64) string {
	return fmt.Sprintf("%d/%d/%x/%x/%x", id1, id2, cx, cy, r)
}

func pairSet(t *testing.T, pairs []rcj.Pair) map[string]int {
	t.Helper()
	set := make(map[string]int, len(pairs))
	for _, pr := range pairs {
		set[pairKey(pr.P.ID, pr.Q.ID, pr.Center.X, pr.Center.Y, pr.Radius)]++
	}
	return set
}

func assertSameSet(t *testing.T, got, want map[string]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d distinct pairs, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("pair %s: got %d, want %d", k, got[k], n)
		}
	}
}

func TestJoinStreamMatchesCollect(t *testing.T) {
	ts, srv := newTestServer(t, 600, sched.Config{MaxConcurrent: 2, MaxQueue: 4})

	resp := postJoin(t, ts, `{"p":"p","q":"q"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	got, summary, _ := pairsOf(t, resp)

	pIx, _ := srv.lookup("p")
	qIx, _ := srv.lookup("q")
	want, wantStats, err := srv.Scheduler().Engine().JoinCollect(context.Background(), qIx.ix, pIx.ix, rcj.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameSet(t, got, pairSet(t, want))

	if summary == nil {
		t.Fatal("no summary line")
	}
	if summary.Results != wantStats.Results || summary.Candidates != wantStats.Candidates {
		t.Fatalf("summary %+v, want results=%d candidates=%d", summary, wantStats.Results, wantStats.Candidates)
	}
	if summary.NodeAccesses == 0 {
		t.Fatal("summary has zero node accesses — tagged stats not wired through")
	}
}

// pairsOf drains a 200 response into a pair set plus summary.
func pairsOf(t *testing.T, resp *http.Response) (map[string]int, *summaryLine, int) {
	t.Helper()
	pairs, summary := decodeStream(t, resp.Body)
	set := make(map[string]int, len(pairs))
	for _, pr := range pairs {
		set[pairKey(pr.P.ID, pr.Q.ID, pr.Center.X, pr.Center.Y, pr.Radius)]++
	}
	return set, summary, len(pairs)
}

func TestSelfJoinAndCSVFormat(t *testing.T) {
	ts, srv := newTestServer(t, 400, sched.Config{MaxConcurrent: 2, MaxQueue: 4})

	resp := postJoin(t, ts, `{"p":"p","self":true,"format":"csv"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	pIx, _ := srv.lookup("p")
	want, _, err := srv.Scheduler().Engine().SelfJoinCollect(context.Background(), pIx.ix, rcj.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantLines := make(map[string]int, len(want))
	for _, pr := range want {
		wantLines[fmt.Sprintf("%d,%d,%.6f,%.6f,%.6f", pr.P.ID, pr.Q.ID, pr.Center.X, pr.Center.Y, pr.Radius)]++
	}
	gotLines := make(map[string]int)
	n := 0
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		gotLines[line]++
		n++
	}
	if n != len(want) {
		t.Fatalf("%d CSV rows, want %d", n, len(want))
	}
	for line, c := range wantLines {
		if gotLines[line] != c {
			t.Fatalf("row %q: got %d, want %d", line, gotLines[line], c)
		}
	}
}

func TestJoinRequestValidation(t *testing.T) {
	ts, _ := newTestServer(t, 100, sched.Config{MaxConcurrent: 1})
	cases := []struct {
		body   string
		status int
	}{
		{`{"q":"q"}`, http.StatusBadRequest},                     // missing p
		{`{"p":"p"}`, http.StatusBadRequest},                     // neither q nor self
		{`{"p":"p","q":"q","self":true}`, http.StatusBadRequest}, // both
		{`{"p":"p","q":"q","alg":"warp"}`, http.StatusBadRequest},
		{`{"p":"p","q":"q","format":"xml"}`, http.StatusBadRequest},
		{`{"p":"nope","q":"q"}`, http.StatusNotFound},
		{`{"p":"p","q":"nope"}`, http.StatusNotFound},
		{`not json`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := postJoin(t, ts, tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("body %q: status %d, want %d", tc.body, resp.StatusCode, tc.status)
		}
	}
}

func TestIndexEndpoints(t *testing.T) {
	pPath, _, _, _ := buildSavedIndexes(t, 100)
	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 256})
	srv := New(sched.New(eng, sched.Config{MaxConcurrent: 1}), Config{Backend: rcj.BackendMem})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	// Admin load endpoint.
	body, _ := json.Marshal(loadRequest{Name: "fresh", Path: pPath})
	resp, err := http.Post(ts.URL+"/indexes", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load status = %d", resp.StatusCode)
	}
	// Duplicate name conflicts.
	resp, err = http.Post(ts.URL+"/indexes", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate load status = %d, want 409", resp.StatusCode)
	}
	// Bogus path is a client error.
	bad, _ := json.Marshal(loadRequest{Name: "bad", Path: filepath.Join(t.TempDir(), "missing.rcjx")})
	resp, err = http.Post(ts.URL+"/indexes", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad path status = %d, want 400", resp.StatusCode)
	}

	// Listing reflects the registry.
	lresp, err := http.Get(ts.URL + "/indexes")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var infos []indexInfo
	if err := json.NewDecoder(lresp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "fresh" || infos[0].Points != 100 {
		t.Fatalf("indexes = %+v", infos)
	}
}

// TestOverloadReturns429 checks the typed admission rejection surfaces as a
// 429 before any result bytes, and that the slot frees afterwards.
func TestOverloadReturns429(t *testing.T) {
	ts, srv := newTestServer(t, 200, sched.Config{MaxConcurrent: 1, MaxQueue: 0})

	// Hold the only slot directly through the scheduler.
	release, err := srv.Scheduler().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp := postJoin(t, ts, `{"p":"p","q":"q"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	release()
	resp = postJoin(t, ts, `{"p":"p","q":"q"}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after release = %d, want 200", resp.StatusCode)
	}
	io.Copy(io.Discard, resp.Body)

	var m struct {
		Sched sched.Snapshot `json:"sched"`
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Sched.RejectedOverload != 1 || m.Sched.Completed != 1 {
		t.Fatalf("metrics = %+v, want 1 rejected_overload / 1 completed", m.Sched)
	}
}

// TestClientDisconnectCancelsJoin checks that a client dropping mid-stream
// cancels the join and releases its slot for the next request.
func TestClientDisconnectCancelsJoin(t *testing.T) {
	// A big enough self-join that the stream cannot finish within the
	// disconnect window, on one slot with no queue.
	ts, srv := newTestServer(t, 8000, sched.Config{MaxConcurrent: 1, MaxQueue: 0})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/join",
		strings.NewReader(`{"p":"p","self":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line to prove the stream started, then vanish.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil {
		t.Fatalf("no first pair: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The join's slot must come free: the executor saw the cancellation.
	deadline := time.Now().Add(10 * time.Second)
	for {
		release, err := srv.Scheduler().Acquire(context.Background())
		if err == nil {
			release()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after client disconnect: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthzFlipsOnDrain(t *testing.T) {
	ts, srv := newTestServer(t, 100, sched.Config{MaxConcurrent: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	srv.Scheduler().BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	// Joins are rejected with 503 too.
	jresp := postJoin(t, ts, `{"p":"p","q":"q"}`)
	jresp.Body.Close()
	if jresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("join while draining = %d, want 503", jresp.StatusCode)
	}
}

// TestConcurrentClientsOverloadAndDrain is the acceptance integration test:
// ≥8 concurrent HTTP clients against maxConcurrent=2, a bounded queue
// producing typed 429 rejections for the excess, every admitted stream
// byte-identical to Engine.JoinCollect, and a graceful drain completing
// while clients are still streaming.
func TestConcurrentClientsOverloadAndDrain(t *testing.T) {
	const (
		clients       = 10
		maxConcurrent = 2
		maxQueue      = 4
	)
	ts, srv := newTestServer(t, 700, sched.Config{MaxConcurrent: maxConcurrent, MaxQueue: maxQueue})

	pIx, _ := srv.lookup("p")
	qIx, _ := srv.lookup("q")
	want, _, err := srv.Scheduler().Engine().JoinCollect(context.Background(), qIx.ix, pIx.ix, rcj.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantSet := pairSet(t, want)

	// Phase 1: occupy both join slots so the HTTP clients genuinely overlap
	// (the joins themselves are too fast to pile up on their own).
	releaseA, err := srv.Scheduler().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	releaseB, err := srv.Scheduler().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: maxQueue clients enqueue and block in admission.
	type clientResult struct {
		status int
		set    map[string]int
		pairs  int
	}
	queuedResults := make(chan clientResult, maxQueue)
	var wg sync.WaitGroup
	for i := 0; i < maxQueue; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJoin(t, ts, `{"p":"p","q":"q"}`)
			defer resp.Body.Close()
			res := clientResult{status: resp.StatusCode}
			if resp.StatusCode == http.StatusOK {
				got, summary, n := pairsOf(t, resp)
				if summary != nil {
					res.set, res.pairs = got, n
				}
			}
			queuedResults <- res
		}()
	}
	waitFor(t, func() bool { return srv.Scheduler().Snapshot().Queued == maxQueue })

	// Phase 3: with slots and queue full, the remaining clients must be
	// rejected immediately with the typed 429 — no waiting, no stream.
	overflow := clients - maxConcurrent - maxQueue
	for i := 0; i < overflow; i++ {
		resp := postJoin(t, ts, `{"p":"p","q":"q"}`)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overflow client %d: status %d, want 429", i, resp.StatusCode)
		}
	}

	// Phase 4: begin draining while the admitted clients are still waiting
	// on slots. Draining must reject brand-new work with 503 immediately…
	srv.Scheduler().BeginDrain()
	resp := postJoin(t, ts, `{"p":"p","q":"q"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("join during drain: status %d, want 503", resp.StatusCode)
	}
	drained := make(chan error, 1)
	go func() { drained <- srv.Scheduler().Drain(context.Background()) }()
	select {
	case <-drained:
		t.Fatal("drain completed with slots held and clients queued")
	case <-time.After(20 * time.Millisecond):
	}

	// Phase 5: free the slots; every queued client must stream to
	// completion with results identical to Engine.JoinCollect, and only
	// then may the drain finish.
	releaseA()
	releaseB()
	wg.Wait()
	close(queuedResults)
	served := 0
	for res := range queuedResults {
		if res.status != http.StatusOK {
			t.Fatalf("queued client: status %d, want 200", res.status)
		}
		if res.pairs != len(want) {
			t.Fatalf("queued client: %d pairs, want %d", res.pairs, len(want))
		}
		assertSameSet(t, res.set, wantSet)
		served++
	}
	if served != maxQueue {
		t.Fatalf("served %d queued clients, want %d", served, maxQueue)
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}

	snap := srv.Scheduler().Snapshot()
	if snap.RejectedOverload != int64(overflow) {
		t.Fatalf("metrics rejected_overload = %d, want %d", snap.RejectedOverload, overflow)
	}
	if snap.Completed != int64(served) {
		t.Fatalf("metrics completed = %d, want %d", snap.Completed, served)
	}
	if snap.InFlight != 0 || snap.Queued != 0 {
		t.Fatalf("slots leaked: %+v", snap)
	}
}
