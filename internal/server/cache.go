package server

import (
	"container/list"
	"strings"
	"sync"

	"repro/rcj"
)

// resultCache is the server's bounded-result LRU: it memoizes the full
// result sets of joins whose queries bound their own size (TopK or Limit),
// keyed by index generations plus the query's canonical form, so a repeat
// of a popular dashboard query is served from memory without admission
// control, a slot, or a single page access.
//
// Correctness leans on two invariants. Results are stored only by a handler
// that held the indexes' reference counts for the whole stream, so the
// generations in the key were current for every page the traversal read —
// an unload cannot have snuck in. And unloading an index both purges every
// entry naming it AND retires its generation (LoadIndex hands out fresh
// ones), so even a racing store keyed before the unload can never be looked
// up again.
//
// A nil *resultCache is valid and disabled: every method is a cheap no-op,
// so call sites need no guards.
type resultCache struct {
	mu       sync.Mutex
	maxEnt   int        // max entries
	maxPairs int        // max pairs one entry may hold (admission bound, not a sum)
	ll       *list.List // of *cachedResult, front = most recent
	byKey    map[string]*list.Element

	hits          int64
	misses        int64
	stores        int64
	evictions     int64
	invalidations int64
	pairs         int64 // gauge: pairs held across all entries
}

// cachedResult is one memoized result set: the exact pair stream a solo run
// produced, plus the stats its summary line reported and the plan the
// original run resolved to (replayed in the cached summary so plan
// observability survives a cache hit).
type cachedResult struct {
	key   string
	names []string // index names the entry depends on (1 for self-joins, 2 otherwise)
	pairs []rcj.Pair
	stats rcj.Stats
	plan  rcj.PlanDecision
}

// newResultCache returns a cache holding up to maxEntries results of up to
// maxPairs pairs each; maxEntries <= 0 disables caching (nil return).
func newResultCache(maxEntries, maxPairs int) *resultCache {
	if maxEntries <= 0 {
		return nil
	}
	if maxPairs <= 0 {
		maxPairs = DefaultResultCachePairs
	}
	return &resultCache{
		maxEnt:   maxEntries,
		maxPairs: maxPairs,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// cacheKey builds the lookup key: each index name pinned to the generation
// key of its current registration (registration generation, with the live
// epoch sequence folded in for mutable indexes — see indexEntry.genKey), the
// join shape, and the query's canonical result-shaping form. For self-joins
// q repeats p.
func cacheKey(pName, pGen, qName, qGen string, self bool, qry rcj.Query) string {
	var b strings.Builder
	b.WriteString(pName)
	b.WriteByte('#')
	b.WriteString(pGen)
	b.WriteByte('|')
	b.WriteString(qName)
	b.WriteByte('#')
	b.WriteString(qGen)
	if self {
		b.WriteString("|self|")
	} else {
		b.WriteString("|join|")
	}
	b.WriteString(qry.Canonical())
	return b.String()
}

// cacheable reports whether a query's result set is bounded tightly enough
// to memoize: TopK and Limit both cap the pair count, but only sequential
// runs are deterministic enough to replay byte-identically (a parallel
// traversal may emit a different order, and a parallel TopK may break
// radius ties differently), so parallel queries are never cached.
func (c *resultCache) cacheable(qry rcj.Query) bool {
	if c == nil || qry.Parallelism > 1 {
		return false
	}
	// Weight functions are opaque: Canonical cannot tell two of them apart,
	// so weighted rankings must never be memoized.
	if qry.Weight != nil {
		return false
	}
	if qry.TopK > 0 {
		return qry.TopK <= c.maxPairs
	}
	return qry.Limit > 0 && qry.Limit <= c.maxPairs
}

// get returns the cached result for key, bumping its recency.
func (c *resultCache) get(key string) (*cachedResult, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cachedResult), true
}

// put stores res, evicting from the LRU tail to stay within capacity.
// Oversized results are the caller's problem: cacheable() bounds them.
func (c *resultCache) put(res *cachedResult) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[res.key]; ok {
		// A concurrent identical miss stored first; keep the incumbent.
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[res.key] = c.ll.PushFront(res)
	c.stores++
	c.pairs += int64(len(res.pairs))
	for c.ll.Len() > c.maxEnt {
		c.dropLocked(c.ll.Back())
		c.evictions++
	}
}

// invalidate purges every entry depending on the named index, returning how
// many were dropped. Called under the registry's unload path.
func (c *resultCache) invalidate(name string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		res := el.Value.(*cachedResult)
		for _, n := range res.names {
			if n == name {
				c.dropLocked(el)
				dropped++
				break
			}
		}
	}
	c.invalidations += int64(dropped)
	return dropped
}

// countFor returns how many entries depend on the named index (a gauge for
// GET /indexes).
func (c *resultCache) countFor(name string) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		for _, nm := range el.Value.(*cachedResult).names {
			if nm == name {
				n++
				break
			}
		}
	}
	return n
}

// dropLocked removes one element. Caller holds c.mu.
func (c *resultCache) dropLocked(el *list.Element) {
	res := el.Value.(*cachedResult)
	c.ll.Remove(el)
	delete(c.byKey, res.key)
	c.pairs -= int64(len(res.pairs))
}

// cacheStats is the /metrics view of the cache.
type cacheStats struct {
	Entries       int   `json:"entries"`
	Pairs         int64 `json:"pairs"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Stores        int64 `json:"stores"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
}

func (c *resultCache) snapshot() cacheStats {
	if c == nil {
		return cacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries:       c.ll.Len(),
		Pairs:         c.pairs,
		Hits:          c.hits,
		Misses:        c.misses,
		Stores:        c.stores,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
