// Package server is the HTTP serving layer of the ring-constrained join
// system: a stdlib-only net/http front end over the sched.Scheduler and a
// registry of saved `.rcjx` indexes opened through rcj.Engine.OpenIndex.
// It is what cmd/rcjd runs.
//
// Endpoints:
//
//	POST /join     stream a join as NDJSON (or CSV), one line per confirmed
//	               pair, flushed as the executor emits them; a final summary
//	               line carries the request's exact statistics. Admission-
//	               control rejections surface as 429 (overloaded, queue
//	               timeout) or 503 (draining) before any result bytes.
//	GET  /indexes  list the loaded indexes.
//	POST /indexes  load a saved index file: {"name": ..., "path": ...}.
//	GET  /healthz  200 while serving, 503 once draining.
//	GET  /metrics  expvar-style JSON counters: scheduler snapshot (in-flight,
//	               queued, rejected, pairs emitted, per-request-exact buffer
//	               attribution) plus the engine's pool-wide stats.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/sched"
	"repro/rcj"
)

// ErrIndexExists is returned by LoadIndex when the name is already taken.
var ErrIndexExists = errors.New("server: index name already loaded")

// Config assembles a Server.
type Config struct {
	// Backend is the pager substrate indexes are opened with (default
	// BackendMem; see rcj.IndexConfig.Backend).
	Backend rcj.Backend
}

// Server routes HTTP requests into a join scheduler and an index registry.
// Create with New, mount via Handler.
type Server struct {
	sched   *sched.Scheduler
	backend rcj.Backend

	mu      sync.RWMutex
	indexes map[string]*indexEntry

	requests atomic64map
}

// indexEntry is one registered index and how it was loaded.
type indexEntry struct {
	ix      *rcj.Index
	path    string
	backend rcj.Backend
}

// atomic64map is a tiny fixed-key counter set for per-endpoint request
// totals; expvar-style without expvar's process-global registry (tests run
// many Servers in one process).
type atomic64map struct {
	mu sync.Mutex
	m  map[string]int64
}

func (a *atomic64map) inc(k string) {
	a.mu.Lock()
	if a.m == nil {
		a.m = make(map[string]int64)
	}
	a.m[k]++
	a.mu.Unlock()
}

func (a *atomic64map) snapshot() map[string]int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int64, len(a.m))
	for k, v := range a.m {
		out[k] = v
	}
	return out
}

// New returns a server admitting joins through sch, opening indexes with
// cfg.Backend.
func New(sch *sched.Scheduler, cfg Config) *Server {
	return &Server{
		sched:   sch,
		backend: cfg.Backend,
		indexes: make(map[string]*indexEntry),
	}
}

// Scheduler returns the server's join scheduler.
func (s *Server) Scheduler() *sched.Scheduler { return s.sched }

// LoadIndex opens the saved index at path through the engine (shared buffer
// pool, O(1) reattach) and registers it under name. Loading a name twice is
// an error; indexes are immutable while registered.
func (s *Server) LoadIndex(name, path string) error {
	if name == "" {
		return errors.New("server: index name must not be empty")
	}
	s.mu.RLock()
	_, dup := s.indexes[name]
	s.mu.RUnlock()
	if dup {
		return fmt.Errorf("%w: %q", ErrIndexExists, name)
	}
	// Open outside the lock: a mem-backend load reads the whole page image,
	// and in-flight /join lookups must not stall behind an admin load.
	ix, err := s.sched.Engine().OpenIndex(path, rcj.IndexConfig{Backend: s.backend})
	if err != nil {
		return err
	}
	s.mu.Lock()
	if _, ok := s.indexes[name]; ok {
		s.mu.Unlock()
		ix.Close()
		return fmt.Errorf("%w: %q", ErrIndexExists, name)
	}
	s.indexes[name] = &indexEntry{ix: ix, path: path, backend: s.backend}
	s.mu.Unlock()
	return nil
}

// lookup returns the registered index for name.
func (s *Server) lookup(name string) (*indexEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.indexes[name]
	return e, ok
}

// Close closes every registered index.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for name, e := range s.indexes {
		if err := e.ix.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.indexes, name)
	}
	return first
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", s.handleJoin)
	mux.HandleFunc("GET /indexes", s.handleListIndexes)
	mux.HandleFunc("POST /indexes", s.handleLoadIndex)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorJSON is the uniform error payload.
func errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("healthz")
	if s.sched.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// indexInfo is one row of GET /indexes.
type indexInfo struct {
	Name    string `json:"name"`
	Points  int    `json:"points"`
	Path    string `json:"path"`
	Backend string `json:"backend"`
}

func (s *Server) handleListIndexes(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("indexes")
	s.mu.RLock()
	out := make([]indexInfo, 0, len(s.indexes))
	for name, e := range s.indexes {
		out = append(out, indexInfo{Name: name, Points: e.ix.Len(), Path: e.path, Backend: e.backend.String()})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// loadRequest is the POST /indexes payload.
type loadRequest struct {
	Name string `json:"name"`
	Path string `json:"path"`
}

func (s *Server) handleLoadIndex(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("indexes_load")
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" || req.Path == "" {
		errorJSON(w, http.StatusBadRequest, "name and path are required")
		return
	}
	if err := s.LoadIndex(req.Name, req.Path); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrIndexExists) {
			status = http.StatusConflict
		}
		errorJSON(w, status, "%v", err)
		return
	}
	e, _ := s.lookup(req.Name)
	writeJSON(w, http.StatusCreated, indexInfo{Name: req.Name, Points: e.ix.Len(), Path: req.Path, Backend: e.backend.String()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("metrics")
	snap := s.sched.Snapshot()
	pool := s.sched.Engine().BufferStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"sched":                  snap,
		"sched_buffer_hit_ratio": snap.BufferHitRatio(),
		"pool": map[string]any{
			"accesses":  pool.Accesses,
			"hits":      pool.Hits,
			"misses":    pool.Misses,
			"evictions": pool.Evictions,
			"hit_ratio": pool.HitRatio(),
			"shards":    s.sched.Engine().BufferShards(),
		},
		"requests": s.requests.snapshot(),
	})
}

// joinRequest is the POST /join payload. Exactly one of {"q"} or
// {"self": true} selects a two-set or self join; "p" is always required.
type joinRequest struct {
	P           string `json:"p"`
	Q           string `json:"q"`
	Self        bool   `json:"self"`
	Alg         string `json:"alg"`         // "inj", "bij", "obj" (default)
	Parallelism int    `json:"parallelism"` // worker goroutines, default 1
	TimeoutMS   int64  `json:"timeout_ms"`  // per-request cap under the server's JoinTimeout
	Format      string `json:"format"`      // "ndjson" (default) or "csv"
}

// pairLine is one NDJSON result row.
type pairLine struct {
	PID    int64   `json:"p_id"`
	QID    int64   `json:"q_id"`
	CX     float64 `json:"cx"`
	CY     float64 `json:"cy"`
	Radius float64 `json:"r"`
}

// summaryLine terminates a successful NDJSON stream: the request's exact
// statistics, attributed to it alone even under concurrent joins.
type summaryLine struct {
	Results      int64   `json:"results"`
	Candidates   int64   `json:"candidates"`
	NodeAccesses int64   `json:"node_accesses"`
	PageFaults   int64   `json:"page_faults"`
	BufferHit    float64 `json:"buffer_hit_ratio"`
	ElapsedMS    int64   `json:"elapsed_ms"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("join")
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.P == "" {
		errorJSON(w, http.StatusBadRequest, "p is required")
		return
	}
	if req.Self == (req.Q != "") {
		errorJSON(w, http.StatusBadRequest, `exactly one of "q" or "self" is required`)
		return
	}
	alg, ok := map[string]rcj.Algorithm{"": rcj.OBJ, "obj": rcj.OBJ, "bij": rcj.BIJ, "inj": rcj.INJ}[req.Alg]
	if !ok {
		errorJSON(w, http.StatusBadRequest, "unknown algorithm %q (want inj, bij, or obj)", req.Alg)
		return
	}
	csvFormat := false
	switch req.Format {
	case "", "ndjson":
	case "csv":
		csvFormat = true
	default:
		errorJSON(w, http.StatusBadRequest, "unknown format %q (want ndjson or csv)", req.Format)
		return
	}
	if req.Parallelism < 0 {
		errorJSON(w, http.StatusBadRequest, "parallelism must be >= 0")
		return
	}
	// Clamp worker fan-out server-side: admission control bounds *joins*, so
	// one request must not multiply itself past the hardware underneath.
	if maxPar := runtime.GOMAXPROCS(0); req.Parallelism > maxPar {
		req.Parallelism = maxPar
	}
	ixP, ok := s.lookup(req.P)
	if !ok {
		errorJSON(w, http.StatusNotFound, "unknown index %q", req.P)
		return
	}
	var ixQ *indexEntry
	if !req.Self {
		if ixQ, ok = s.lookup(req.Q); !ok {
			errorJSON(w, http.StatusNotFound, "unknown index %q", req.Q)
			return
		}
	}

	// The request context cancels when the client disconnects; that
	// propagates through the scheduler into the executor, aborting the join
	// and freeing its slot. An additional per-request cap stacks under the
	// scheduler's JoinTimeout.
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	opts := rcj.JoinOptions{Algorithm: alg, ForceAlgorithm: true, Parallelism: req.Parallelism}
	var st rcj.Stats
	var seq iter.Seq2[rcj.Pair, error]
	var err error
	if req.Self {
		seq, err = s.sched.SelfJoin(ctx, ixP.ix, opts, &st)
	} else {
		seq, err = s.sched.Join(ctx, ixQ.ix, ixP.ix, opts, &st)
	}
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}

	start := time.Now()
	if csvFormat {
		w.Header().Set("Content-Type", "text/csv")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	enc := json.NewEncoder(w)
	for pr, err := range seq {
		if err != nil {
			// The status line is gone; report the failure in-band and stop.
			// (CSV streams simply truncate — the client sees the closed body.)
			if !csvFormat {
				enc.Encode(map[string]string{"error": err.Error()})
			}
			flush()
			return
		}
		if csvFormat {
			fmt.Fprintf(w, "%d,%d,%s,%s,%s\n", pr.P.ID, pr.Q.ID,
				strconv.FormatFloat(pr.Center.X, 'f', 6, 64),
				strconv.FormatFloat(pr.Center.Y, 'f', 6, 64),
				strconv.FormatFloat(pr.Radius, 'f', 6, 64))
		} else {
			enc.Encode(pairLine{PID: pr.P.ID, QID: pr.Q.ID, CX: pr.Center.X, CY: pr.Center.Y, Radius: pr.Radius})
		}
		flush()
	}
	if !csvFormat {
		enc.Encode(map[string]summaryLine{"summary": {
			Results:      st.Results,
			Candidates:   st.Candidates,
			NodeAccesses: st.NodeAccesses,
			PageFaults:   st.PageFaults,
			BufferHit:    st.BufferHitRatio(),
			ElapsedMS:    time.Since(start).Milliseconds(),
		}})
	}
	flush()
}

// writeAdmissionError maps scheduler rejections to backpressure statuses:
// 429 for overload and queue timeout (retryable), 503 while draining.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, sched.ErrOverloaded), errors.Is(err, sched.ErrQueueTimeout):
		w.Header().Set("Retry-After", "1")
		errorJSON(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, sched.ErrDraining):
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
	default:
		errorJSON(w, http.StatusInternalServerError, "%v", err)
	}
}
