// Package server is the HTTP serving layer of the ring-constrained join
// system: a stdlib-only net/http front end over the sched.Scheduler and a
// registry of saved `.rcjx` indexes opened through rcj.Engine.OpenIndex.
// It is what cmd/rcjd runs.
//
// Endpoints:
//
//	POST /join     stream a join as NDJSON (or CSV), one line per confirmed
//	               pair, flushed as the executor emits them; a final summary
//	               line carries the request's exact statistics (including
//	               nodes_pruned for constrained queries). The predicate
//	               fields max_diameter, min_distance, top_k, limit and
//	               region push down into the index traversal. Admission-
//	               control rejections surface as 429 (overloaded, queue
//	               timeout) or 503 (draining) before any result bytes.
//	GET  /indexes  list the loaded indexes (with in-flight reference counts).
//	POST /indexes  load a saved index file: {"name": ..., "path": ...}.
//	DELETE /indexes/{name}  unload an index, dropping its pages from the
//	               shared pool; 409 while in-flight joins reference it.
//	GET  /healthz  200 while serving, 503 once draining.
//	GET  /metrics  expvar-style JSON counters: scheduler snapshot (in-flight,
//	               queued, rejected, pairs emitted, per-request-exact buffer
//	               attribution) plus the engine's pool-wide stats. With
//	               ?format=prom (or Accept: text/plain) the same counters in
//	               the Prometheus text exposition format.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/sched"
	"repro/rcj"
)

// ErrIndexExists is returned by LoadIndex when the name is already taken.
var ErrIndexExists = errors.New("server: index name already loaded")

// ErrIndexUnknown is returned by UnloadIndex for a name that is not loaded.
var ErrIndexUnknown = errors.New("server: unknown index")

// ErrIndexBusy is returned by UnloadIndex while in-flight joins still
// reference the index; the unload is rejected cleanly and can be retried.
var ErrIndexBusy = errors.New("server: index in use by in-flight joins")

// DefaultResultCachePairs caps how many pairs one cached result may hold
// when Config.ResultCachePairs is zero.
const DefaultResultCachePairs = 4096

// Config assembles a Server.
type Config struct {
	// Backend is the pager substrate indexes are opened with (default
	// BackendMem; see rcj.IndexConfig.Backend).
	Backend rcj.Backend
	// ResultCacheEntries bounds the result cache (see cache.go); 0 disables
	// caching entirely.
	ResultCacheEntries int
	// ResultCachePairs caps the pairs of one cacheable result (default
	// DefaultResultCachePairs); queries bounded looser than this bypass the
	// cache.
	ResultCachePairs int
}

// Server routes HTTP requests into a join scheduler and an index registry.
// Create with New, mount via Handler.
type Server struct {
	sched   *sched.Scheduler
	backend rcj.Backend

	cache *resultCache // nil when disabled; all methods nil-safe

	mu      sync.RWMutex
	indexes map[string]*indexEntry
	nextGen uint64 // generation source for loaded indexes (guarded by mu)
	// Retired remote/prefetch/live totals of unloaded indexes: /metrics
	// counters must stay monotone across unload/reload cycles, so a closed
	// index's final counts fold in here rather than vanishing from the sums.
	retiredRemote   rcj.RemoteStats
	retiredPrefetch rcj.PrefetchStats
	retiredLive     liveCounters

	requests atomic64map

	// Planner observability: how many joins let the planner decide vs.
	// forced a plan, and which algorithms/rules the decisions landed on.
	planAuto  atomic.Int64
	planFixed atomic.Int64
	planAlg   atomic64map // by resolved algorithm ("obj", "inj", ...)
	planRule  atomic64map // by decision rule ("default-obj", "tiny-brute", ...)
}

// indexEntry is one registered index and how it was loaded. refs counts the
// in-flight joins reading the index (guarded by Server.mu), so an unload
// can refuse to pull pages out from under a running traversal. gen is the
// registration's unique generation: result-cache keys embed it, so a
// same-name reload can never serve a stale cached result.
type indexEntry struct {
	ix      *rcj.Index
	path    string
	backend rcj.Backend
	refs    int
	gen     uint64
	subs    int        // open subscriptions depending on this index (guarded by Server.mu)
	shard   *shardMeta // non-nil for manifest-loaded shard indexes
}

// genKey is the entry's result-cache generation: the registration generation
// alone for immutable indexes, with the live epoch sequence folded in for
// mutable ones — every applied mutation batch and every compaction bumps the
// epoch, so no cached result survives a change to the underlying point set.
func (e *indexEntry) genKey() string {
	g := strconv.FormatUint(e.gen, 10)
	if e.ix.Mutable() {
		g += "." + strconv.FormatUint(e.ix.Epoch(), 10)
	}
	return g
}

// atomic64map is a tiny fixed-key counter set for per-endpoint request
// totals; expvar-style without expvar's process-global registry (tests run
// many Servers in one process).
type atomic64map struct {
	mu sync.Mutex
	m  map[string]int64
}

func (a *atomic64map) inc(k string) {
	a.mu.Lock()
	if a.m == nil {
		a.m = make(map[string]int64)
	}
	a.m[k]++
	a.mu.Unlock()
}

func (a *atomic64map) snapshot() map[string]int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int64, len(a.m))
	for k, v := range a.m {
		out[k] = v
	}
	return out
}

// New returns a server admitting joins through sch, opening indexes with
// cfg.Backend.
func New(sch *sched.Scheduler, cfg Config) *Server {
	return &Server{
		sched:   sch,
		backend: cfg.Backend,
		cache:   newResultCache(cfg.ResultCacheEntries, cfg.ResultCachePairs),
		indexes: make(map[string]*indexEntry),
	}
}

// Scheduler returns the server's join scheduler.
func (s *Server) Scheduler() *sched.Scheduler { return s.sched }

// recordPlan folds one resolved plan into the rcjd_plan_* counters.
func (s *Server) recordPlan(dec rcj.PlanDecision) {
	if dec.Rule == "fixed" {
		s.planFixed.Add(1)
	} else {
		s.planAuto.Add(1)
	}
	s.planAlg.inc(strings.ToLower(dec.Algorithm.String()))
	s.planRule.inc(dec.Rule)
}

// LoadIndex opens the saved index at path through the engine (shared buffer
// pool, O(1) reattach) and registers it under name. Loading a name twice is
// an error; indexes are immutable while registered.
//
// The open happens outside the registry lock (a mem-backend load reads the
// whole page image, and in-flight /join lookups must not stall behind an
// admin load), and the registration records the backend the index actually
// opened with: a URL path upgrades to the http backend regardless of the
// server's default.
func (s *Server) LoadIndex(name, path string) error {
	return s.loadIndex(name, path, nil)
}

// rcjIndexConfig is the open configuration LoadIndex uses.
func rcjIndexConfig(b rcj.Backend) rcj.IndexConfig {
	return rcj.IndexConfig{Backend: b}
}

// lookup returns the registered index for name.
func (s *Server) lookup(name string) (*indexEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.indexes[name]
	return e, ok
}

// acquire pins the registered index for one in-flight join; the caller must
// release it when the join's stream terminates. A pinned index cannot be
// unloaded.
func (s *Server) acquire(name string) (*indexEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.indexes[name]
	if !ok {
		return nil, false
	}
	e.refs++
	return e, true
}

// release unpins an index acquired for a join.
func (s *Server) release(e *indexEntry) {
	s.mu.Lock()
	e.refs--
	s.mu.Unlock()
}

// UnloadIndex removes the named index from the registry and drops its pages
// from the engine's shared buffer pool. An index still referenced by
// in-flight joins is not unloaded (ErrIndexBusy): the traversal owns its
// pages — and, for mmap backends, its mapping — until the stream ends.
func (s *Server) UnloadIndex(name string) error {
	s.mu.Lock()
	e, ok := s.indexes[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrIndexUnknown, name)
	}
	if e.refs > 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q (%d in flight)", ErrIndexBusy, name, e.refs)
	}
	// Retire the counters in the same critical section that removes the
	// entry: a /metrics scrape between removal and close must see the
	// retired totals already folded in, or the counters would dip and read
	// as a Prometheus counter reset.
	rs0, ps0 := indexStats(e.ix)
	s.addRetired(rs0, ps0)
	// Live counters fold here too (monotone across unload/reload); a final
	// background compaction racing the close may go uncounted, which keeps
	// the totals monotone, just not perfectly exhaustive.
	if lst, ok := e.ix.LiveStats(); ok {
		s.retiredLive.add(lst)
	}
	delete(s.indexes, name)
	s.mu.Unlock()
	// Purge memoized results depending on the unloaded index. Stores only
	// happen while the storing join holds refs, and refs were zero above, so
	// no store for this registration can land after the purge; a reload of
	// the same name additionally gets a fresh generation.
	s.cache.invalidate(name)
	// Close outside the lock: it invalidates the index's owner pages across
	// every pool shard, and lookups must not stall behind that sweep.
	err := e.ix.Close()
	// The prefetcher may have completed a few loads between the snapshot
	// and the drain; fold the delta in so the totals end exact.
	rs1, ps1 := indexStats(e.ix)
	s.mu.Lock()
	s.addRetired(rs1.Sub(rs0), ps1.Sub(ps0))
	s.mu.Unlock()
	return err
}

// indexStats reads an index's remote/prefetch counters (zero when absent).
func indexStats(ix *rcj.Index) (rcj.RemoteStats, rcj.PrefetchStats) {
	rs, _ := ix.RemoteStats()
	ps, _ := ix.PrefetchStats()
	return rs, ps
}

// addRetired folds counters into the retired totals. Caller holds s.mu.
func (s *Server) addRetired(rs rcj.RemoteStats, ps rcj.PrefetchStats) {
	s.retiredRemote.Add(rs)
	s.retiredPrefetch.Add(ps)
}

// Close closes every registered index, retiring its counters so a final
// scrape still sums correctly.
func (s *Server) Close() error {
	s.mu.Lock()
	entries := make([]*indexEntry, 0, len(s.indexes))
	for name, e := range s.indexes {
		rs, ps := indexStats(e.ix)
		s.addRetired(rs, ps)
		if lst, ok := e.ix.LiveStats(); ok {
			s.retiredLive.add(lst)
		}
		entries = append(entries, e)
		delete(s.indexes, name)
	}
	s.mu.Unlock()
	var first error
	for _, e := range entries {
		if err := e.ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /join", s.handleJoin)
	mux.HandleFunc("POST /subscribe", s.handleSubscribe)
	mux.HandleFunc("GET /indexes", s.handleListIndexes)
	mux.HandleFunc("POST /indexes", s.handleLoadIndex)
	mux.HandleFunc("POST /indexes/{name}/points", s.handleMutate)
	mux.HandleFunc("DELETE /indexes/{name}", s.handleUnloadIndex)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errorJSON is the uniform error payload.
func errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("healthz")
	if s.sched.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// indexInfo is one row of GET /indexes. Generation is the registration's
// cache generation; CachedResults counts memoized result sets depending on
// this index (dropped atomically when it unloads).
type indexInfo struct {
	Name          string `json:"name"`
	Points        int    `json:"points"`
	Path          string `json:"path"`
	Backend       string `json:"backend"`
	InFlight      int    `json:"in_flight"`
	Generation    uint64 `json:"generation"`
	CachedResults int    `json:"cached_results"`
	// Mutable marks a live index; Live carries its epoch state (delta size,
	// tombstones, compactions, open subscriptions).
	Mutable bool      `json:"mutable,omitempty"`
	Live    *liveInfo `json:"live,omitempty"`
	// Shard identity for manifest-loaded indexes: the owned cell rectangle
	// ([minX, minY, maxX, maxY]) this worker advertises to the router.
	Manifest string    `json:"manifest,omitempty"`
	Shard    *int      `json:"shard,omitempty"`
	Cell     []float64 `json:"cell,omitempty"`
}

// withShard fills the shard columns from a registration's metadata.
func (info indexInfo) withShard(meta *shardMeta) indexInfo {
	if meta != nil {
		id := meta.id
		info.Manifest = meta.manifest
		info.Shard = &id
		info.Cell = meta.cell[:]
	}
	return info
}

func (s *Server) handleListIndexes(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("indexes")
	s.mu.RLock()
	out := make([]indexInfo, 0, len(s.indexes))
	for name, e := range s.indexes {
		info := indexInfo{Name: name, Points: e.ix.Len(), Path: e.path, Backend: e.backend.String(),
			InFlight: e.refs, Generation: e.gen, CachedResults: s.cache.countFor(name)}.withShard(e.shard)
		if st, ok := e.ix.LiveStats(); ok {
			info.Mutable = true
			info.Live = &liveInfo{
				Epoch:            st.Seq,
				BasePoints:       st.BasePoints,
				DeltaPoints:      st.DeltaPoints,
				Tombstones:       st.Tombstones,
				Generation:       st.Generation,
				GenerationPoints: st.GenerationPoints,
				Inserts:          st.Inserts,
				Deletes:          st.Deletes,
				Compactions:      st.Compactions,
				CompactSeconds:   st.CompactSeconds,
				Subscribers:      e.subs,
			}
		}
		out = append(out, info)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// handleUnloadIndex serves DELETE /indexes/{name}: the operational unload
// path. The index's cached pages leave the shared pool; joins referencing
// it keep it alive (409, retry after they drain).
func (s *Server) handleUnloadIndex(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("indexes_unload")
	name := r.PathValue("name")
	if err := s.UnloadIndex(name); err != nil {
		switch {
		case errors.Is(err, ErrIndexUnknown):
			errorJSON(w, http.StatusNotFound, "%v", err)
		case errors.Is(err, ErrIndexBusy):
			w.Header().Set("Retry-After", "1")
			errorJSON(w, http.StatusConflict, "%v", err)
		default:
			errorJSON(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"unloaded": name})
}

// loadRequest is the POST /indexes payload: either one named index
// ({"name", "path"}) or a shard-manifest subset ({"manifest", optional
// "shards" ids and "base" URL prefix}), which registers the conventional
// "s<id>.p"/"s<id>.q" names the router addresses. With "mutable": true the
// index loads live — path is the sealed base (or empty for an index born
// empty) and POST /indexes/{name}/points applies updates.
type loadRequest struct {
	Name     string `json:"name"`
	Path     string `json:"path"`
	Manifest string `json:"manifest"`
	Shards   []int  `json:"shards"`
	Base     string `json:"base"`

	Mutable         bool `json:"mutable"`
	CompactEvery    int  `json:"compact_every"`
	KeepGenerations int  `json:"keep_generations"`
}

func (s *Server) handleLoadIndex(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("indexes_load")
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Manifest != "" {
		if req.Name != "" || req.Path != "" {
			errorJSON(w, http.StatusBadRequest, "manifest loads take no name/path")
			return
		}
		loaded, err := s.LoadManifestShards(req.Manifest, req.Shards, req.Base)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrIndexExists) {
				status = http.StatusConflict
			}
			errorJSON(w, status, "%v", err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]any{"loaded": loaded})
		return
	}
	if req.Name == "" || (req.Path == "" && !req.Mutable) {
		errorJSON(w, http.StatusBadRequest, "name and path are required")
		return
	}
	var err error
	if req.Mutable {
		err = s.LoadMutableIndex(req.Name, req.Path, req.CompactEvery, req.KeepGenerations)
	} else {
		err = s.LoadIndex(req.Name, req.Path)
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrIndexExists) {
			status = http.StatusConflict
		}
		errorJSON(w, status, "%v", err)
		return
	}
	e, _ := s.lookup(req.Name)
	writeJSON(w, http.StatusCreated, indexInfo{Name: req.Name, Points: e.ix.Len(), Path: req.Path,
		Backend: e.backend.String(), Generation: e.gen, Mutable: e.ix.Mutable()})
}

// remoteTotals sums the remote-transfer and readahead counters over every
// registered index plus the retired totals of unloaded ones (so the
// counters stay monotone), telling the remote-serving story: round trips,
// retries, bytes, and how much of it the prefetcher hid. remoteIndexes is a
// gauge: currently-registered remote indexes only.
func (s *Server) remoteTotals() (remote rcj.RemoteStats, prefetch rcj.PrefetchStats, remoteIndexes int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	remote = s.retiredRemote
	prefetch = s.retiredPrefetch
	for _, e := range s.indexes {
		if rs, ok := e.ix.RemoteStats(); ok {
			remoteIndexes++
			remote.Add(rs)
		}
		if ps, ok := e.ix.PrefetchStats(); ok {
			prefetch.Add(ps)
		}
	}
	return remote, prefetch, remoteIndexes
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("metrics")
	snap := s.sched.Snapshot()
	pool := s.sched.Engine().BufferStats()
	remote, prefetch, remoteIndexes := s.remoteTotals()
	lc := s.liveTotals()
	// Prometheus text exposition on request (?format=prom or an Accept
	// header asking for text/plain); the JSON form stays the default.
	if r.URL.Query().Get("format") == "prom" ||
		(r.URL.Query().Get("format") == "" && strings.Contains(r.Header.Get("Accept"), "text/plain")) {
		s.writePromMetrics(w, snap, pool, remote, prefetch, remoteIndexes, s.cache.snapshot(), lc)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sched":                  snap,
		"sched_buffer_hit_ratio": snap.BufferHitRatio(),
		"pool": map[string]any{
			"accesses":      pool.Accesses,
			"hits":          pool.Hits,
			"misses":        pool.Misses,
			"evictions":     pool.Evictions,
			"prefetch_hits": pool.PrefetchHits,
			"shared_loads":  pool.SharedLoads,
			"hit_ratio":     pool.HitRatio(),
			"shards":        s.sched.Engine().BufferShards(),
		},
		"node_cache": func() map[string]any {
			hits, misses := s.sched.Engine().NodeCacheStats()
			return map[string]any{"hits": hits, "misses": misses}
		}(),
		"remote": map[string]any{
			"indexes":                 remoteIndexes,
			"fetches":                 remote.Fetches,
			"shared_fetches":          remote.SharedFetches,
			"coalesced_fetches":       remote.CoalescedFetches,
			"retries":                 remote.Retries,
			"bytes_fetched":           remote.BytesFetched,
			"checksum_failures":       remote.ChecksumFailures,
			"prefetch_offered":        prefetch.Offered,
			"prefetch_loaded":         prefetch.Loaded,
			"prefetch_dropped":        prefetch.Dropped,
			"prefetch_already_cached": prefetch.AlreadyCached,
			"prefetch_failed":         prefetch.Failed,
		},
		"live":         liveMetricsJSON(lc, snap),
		"result_cache": s.cache.snapshot(),
		"requests":     s.requests.snapshot(),
		"plan": map[string]any{
			"auto":       s.planAuto.Load(),
			"fixed":      s.planFixed.Load(),
			"algorithms": s.planAlg.snapshot(),
			"rules":      s.planRule.snapshot(),
		},
	})
}

// writePromMetrics renders the counters in the Prometheus text exposition
// format (version 0.0.4): gauges for the instantaneous scheduler state,
// counters for everything cumulative, per-endpoint request totals as one
// labeled family.
func (s *Server) writePromMetrics(w http.ResponseWriter, snap sched.Snapshot, pool buffer.Stats,
	remote rcj.RemoteStats, prefetch rcj.PrefetchStats, remoteIndexes int, cache cacheStats, lc liveCounters) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	nodeCacheHits, nodeCacheMisses := s.sched.Engine().NodeCacheStats()
	b2i := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	type metric struct {
		name, help, typ string
		value           int64
	}
	for _, m := range []metric{
		{"rcjd_sched_in_flight", "Joins currently running.", "gauge", int64(snap.InFlight)},
		{"rcjd_sched_queued", "Requests waiting in the admission queue.", "gauge", int64(snap.Queued)},
		{"rcjd_sched_draining", "1 once shutdown drain has begun.", "gauge", int64(b2i(snap.Draining))},
		{"rcjd_sched_admitted_total", "Joins admitted past admission control.", "counter", snap.Admitted},
		{"rcjd_sched_completed_total", "Joins that streamed to completion.", "counter", snap.Completed},
		{"rcjd_sched_failed_total", "Joins that terminated with an error.", "counter", snap.Failed},
		{"rcjd_sched_rejected_overload_total", "Requests rejected with a full queue.", "counter", snap.RejectedOverload},
		{"rcjd_sched_rejected_queue_timeout_total", "Requests that timed out queued.", "counter", snap.RejectedQueueTimeout},
		{"rcjd_sched_rejected_draining_total", "Requests rejected during drain.", "counter", snap.RejectedDraining},
		{"rcjd_sched_pairs_emitted_total", "Result pairs streamed to clients.", "counter", snap.PairsEmitted},
		{"rcjd_sched_bound_killed_total", "Candidates killed pre-verification by a tightened TopK bound.", "counter", snap.BoundKilledCandidates},
		{"rcjd_sched_batches_total", "Envelope traversals that served more than one request.", "counter", snap.SharedBatches},
		{"rcjd_sched_batched_requests_total", "Requests served by shared envelope traversals.", "counter", snap.BatchedRequests},
		{"rcjd_sched_buffer_accesses_total", "Tagged buffer accesses of served joins.", "counter", snap.BufferAccesses},
		{"rcjd_sched_buffer_hits_total", "Tagged buffer hits of served joins.", "counter", snap.BufferHits},
		{"rcjd_sched_buffer_misses_total", "Tagged buffer misses of served joins.", "counter", snap.BufferMisses},
		{"rcjd_pool_accesses_total", "Shared pool accesses (all owners).", "counter", pool.Accesses},
		{"rcjd_pool_hits_total", "Shared pool hits.", "counter", pool.Hits},
		{"rcjd_pool_misses_total", "Shared pool misses.", "counter", pool.Misses},
		{"rcjd_pool_evictions_total", "Shared pool evictions.", "counter", pool.Evictions},
		{"rcjd_pool_prefetch_hits_total", "Pool hits served by async readahead.", "counter", pool.PrefetchHits},
		{"rcjd_pool_shared_loads_total", "Demand misses that piggybacked on an in-flight load of the same page.", "counter", pool.SharedLoads},
		{"rcjd_pool_shards", "LRU shards in the shared pool.", "gauge", int64(s.sched.Engine().BufferShards())},
		{"rcjd_nodecache_hits_total", "Pool misses served from the decoded-node cache without a pager read.", "counter", nodeCacheHits},
		{"rcjd_nodecache_misses_total", "Decoded-node cache misses (page read + decode).", "counter", nodeCacheMisses},
		{"rcjd_remote_indexes", "Registered indexes served over HTTP ranges.", "gauge", int64(remoteIndexes)},
		{"rcjd_remote_fetches_total", "HTTP range requests issued by remote indexes.", "counter", remote.Fetches},
		{"rcjd_remote_shared_total", "Remote page reads collapsed into another reader's in-flight fetch.", "counter", remote.SharedFetches},
		{"rcjd_remote_coalesced_total", "Multi-page range requests replacing per-page fetches.", "counter", remote.CoalescedFetches},
		{"rcjd_remote_retries_total", "Remote fetches re-attempted after transient failures.", "counter", remote.Retries},
		{"rcjd_remote_bytes_fetched_total", "Body bytes fetched by remote indexes.", "counter", remote.BytesFetched},
		{"rcjd_remote_checksum_failures_total", "Fetched pages failing per-page CRC verification.", "counter", remote.ChecksumFailures},
		{"rcjd_prefetch_offered_total", "Pages offered to async readahead.", "counter", prefetch.Offered},
		{"rcjd_prefetch_loaded_total", "Pages loaded ahead of demand.", "counter", prefetch.Loaded},
		{"rcjd_prefetch_dropped_total", "Readahead offers shed under queue pressure.", "counter", prefetch.Dropped},
		{"rcjd_result_cache_entries", "Memoized result sets currently held.", "gauge", int64(cache.Entries)},
		{"rcjd_result_cache_pairs", "Pairs held across memoized result sets.", "gauge", cache.Pairs},
		{"rcjd_result_cache_hits_total", "Joins served from the result cache.", "counter", cache.Hits},
		{"rcjd_result_cache_misses_total", "Cacheable joins that had to run.", "counter", cache.Misses},
		{"rcjd_result_cache_stores_total", "Result sets memoized after clean completion.", "counter", cache.Stores},
		{"rcjd_result_cache_evictions_total", "Memoized results evicted by the LRU bound.", "counter", cache.Evictions},
		{"rcjd_result_cache_invalidations_total", "Memoized results purged by index unloads.", "counter", cache.Invalidations},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", m.name, m.help, m.name, m.typ, m.name, m.value)
	}
	s.writeLivePromMetrics(w, lc, snap)
	writePromHistogram(w, "rcjd_sched_queue_wait_seconds", "Admission wait of admitted requests.", snap.QueueWait)
	writePromHistogram(w, "rcjd_sched_join_latency_seconds", "Execution time of terminated joins (queue wait excluded).", snap.JoinLatency)
	reqs := s.requests.snapshot()
	endpoints := make([]string, 0, len(reqs))
	for k := range reqs {
		endpoints = append(endpoints, k)
	}
	sort.Strings(endpoints)
	fmt.Fprintf(w, "# HELP rcjd_requests_total HTTP requests served, by endpoint.\n# TYPE rcjd_requests_total counter\n")
	for _, ep := range endpoints {
		fmt.Fprintf(w, "rcjd_requests_total{endpoint=%q} %d\n", ep, reqs[ep])
	}
	fmt.Fprintf(w, "# HELP rcjd_plan_auto_total Joins whose plan the cost-based planner chose.\n# TYPE rcjd_plan_auto_total counter\nrcjd_plan_auto_total %d\n", s.planAuto.Load())
	fmt.Fprintf(w, "# HELP rcjd_plan_fixed_total Joins that forced their plan verbatim.\n# TYPE rcjd_plan_fixed_total counter\nrcjd_plan_fixed_total %d\n", s.planFixed.Load())
	writePromLabeled(w, "rcjd_plan_algorithm_total", "Resolved joins by effective algorithm.", "alg", s.planAlg.snapshot())
	writePromLabeled(w, "rcjd_plan_rule_total", "Resolved joins by planner decision rule.", "rule", s.planRule.snapshot())
}

// writePromLabeled renders one counter family with a single label, keys
// sorted for a stable exposition.
func writePromLabeled(w http.ResponseWriter, name, help, label string, vals map[string]int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, vals[k])
	}
}

// writePromHistogram renders one sched.HistogramSnapshot in the Prometheus
// histogram convention: cumulative le-bucket counts ending at +Inf, then the
// _sum and _count pair.
func writePromHistogram(w http.ResponseWriter, name, help string, h sched.HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, bound := range h.BoundsSeconds {
		cum += h.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	// +Inf and _count derive from the same bucket series as the finite
	// buckets, so the exposition is monotone by construction even if a
	// recording raced the snapshot.
	cum += h.Counts[len(h.BoundsSeconds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.SumSeconds, name, cum)
}

// joinRequest is the POST /join payload. Exactly one of {"q"} or
// {"self": true} selects a two-set or self join; "p" is always required.
// The predicate fields are pushed down into the index traversal — a top-k
// request prunes the join instead of computing it fully and truncating.
type joinRequest struct {
	P           string `json:"p"`
	Q           string `json:"q"`
	Self        bool   `json:"self"`
	Alg         string `json:"alg"`         // "inj", "bij", "obj" (default)
	Parallelism int    `json:"parallelism"` // worker goroutines, default 1
	TimeoutMS   int64  `json:"timeout_ms"`  // per-request cap under the server's JoinTimeout
	Format      string `json:"format"`      // "ndjson" (default) or "csv"

	MaxDiameter float64   `json:"max_diameter"` // > 0: only pairs at most this wide
	MinDistance float64   `json:"min_distance"` // > 0: drop pairs tighter than this
	TopK        int       `json:"top_k"`        // > 0: the k tightest pairs, ascending
	Limit       int       `json:"limit"`        // > 0: stop after this many pairs
	Region      []float64 `json:"region"`       // [min_x, min_y, max_x, max_y] window on the circle center
}

// pairLine is one NDJSON result row.
type pairLine struct {
	PID    int64   `json:"p_id"`
	QID    int64   `json:"q_id"`
	CX     float64 `json:"cx"`
	CY     float64 `json:"cy"`
	Radius float64 `json:"r"`
}

// summaryLine terminates a successful NDJSON stream: the request's exact
// statistics, attributed to it alone even under concurrent joins.
// NodesPruned shows how much traversal the request's predicates saved —
// pushdown effectiveness, observable per query.
type summaryLine struct {
	Results      int64 `json:"results"`
	Candidates   int64 `json:"candidates"`
	NodeAccesses int64 `json:"node_accesses"`
	PageFaults   int64 `json:"page_faults"`
	NodesPruned  int64 `json:"nodes_pruned"`
	// BoundKilled is Stats.BoundKilledCandidates: candidates a TopK run's
	// tightened diameter bound killed before verification.
	BoundKilled int64   `json:"bound_killed_candidates"`
	BufferHit   float64 `json:"buffer_hit_ratio"`
	ElapsedMS   int64   `json:"elapsed_ms"`
	// Alg and Parallelism are the EFFECTIVE values the join ran with — the
	// resolved plan's algorithm, and the worker fan-out after the planner's
	// choice and the server-side GOMAXPROCS clamp (which used to apply
	// silently; now every response reports what actually ran).
	Alg         string `json:"alg"`
	Parallelism int    `json:"parallelism"`
	// Plan is the resolved plan decision, human-readable: rule, predicate
	// order, prefetch depth, cost estimate ("rule=fixed" for forced runs).
	Plan string `json:"plan"`
	// Cached marks a stream replayed from the result cache; the statistics
	// above are the original run's.
	Cached bool `json:"cached,omitempty"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("join")
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.P == "" {
		errorJSON(w, http.StatusBadRequest, "p is required")
		return
	}
	if req.Self == (req.Q != "") {
		errorJSON(w, http.StatusBadRequest, `exactly one of "q" or "self" is required`)
		return
	}
	// "" and "auto" leave the algorithm to the cost-based planner; a named
	// algorithm is forced verbatim (the old hard-coded-OBJ default is now
	// spelled "obj").
	alg, ok := map[string]rcj.Algorithm{"": 0, "auto": 0, "obj": rcj.OBJ, "bij": rcj.BIJ, "inj": rcj.INJ, "brute": rcj.Brute}[req.Alg]
	if !ok {
		errorJSON(w, http.StatusBadRequest, "unknown algorithm %q (want auto, inj, bij, obj, or brute)", req.Alg)
		return
	}
	forced := req.Alg != "" && req.Alg != "auto"
	csvFormat := false
	switch req.Format {
	case "", "ndjson":
	case "csv":
		csvFormat = true
	default:
		errorJSON(w, http.StatusBadRequest, "unknown format %q (want ndjson or csv)", req.Format)
		return
	}
	if req.Parallelism < 0 {
		errorJSON(w, http.StatusBadRequest, "parallelism must be >= 0")
		return
	}
	// Clamp worker fan-out server-side: admission control bounds *joins*, so
	// one request must not multiply itself past the hardware underneath.
	if maxPar := runtime.GOMAXPROCS(0); req.Parallelism > maxPar {
		req.Parallelism = maxPar
	}
	qry := rcj.Query{
		Algorithm:      alg,
		ForceAlgorithm: forced,
		Parallelism:    req.Parallelism,
		MaxDiameter:    req.MaxDiameter,
		MinDistance:    req.MinDistance,
		TopK:           req.TopK,
		Limit:          req.Limit,
	}
	if len(req.Region) > 0 {
		if len(req.Region) != 4 {
			errorJSON(w, http.StatusBadRequest, "region must be [min_x, min_y, max_x, max_y], got %d values", len(req.Region))
			return
		}
		qry.Region = &rcj.Rect{MinX: req.Region[0], MinY: req.Region[1], MaxX: req.Region[2], MaxY: req.Region[3]}
	}
	if err := qry.Validate(); err != nil {
		errorJSON(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Pin the indexes for the lifetime of the stream so a concurrent
	// DELETE /indexes/{name} cannot unmap pages a running traversal reads.
	ixP, ok := s.acquire(req.P)
	if !ok {
		errorJSON(w, http.StatusNotFound, "unknown index %q", req.P)
		return
	}
	defer s.release(ixP)
	var ixQ *indexEntry
	if !req.Self {
		if ixQ, ok = s.acquire(req.Q); !ok {
			errorJSON(w, http.StatusNotFound, "unknown index %q", req.Q)
			return
		}
		defer s.release(ixQ)
	}

	// Resolve the plan BEFORE the result cache is consulted: the cache key
	// embeds Canonical(), so cached entries are always keyed by the concrete
	// resolved plan, never by the ambiguous "planner decides" zero value.
	// The scheduler's later resolve call is a no-op on the forced result.
	var dec rcj.PlanDecision
	if req.Self {
		qry, dec = qry.ResolveObserved(ixP.ix, ixP.ix, true, s.sched.Observe(ixP.ix, ixP.ix))
	} else {
		qry, dec = qry.ResolveObserved(ixQ.ix, ixP.ix, false, s.sched.Observe(ixQ.ix, ixP.ix))
	}
	s.recordPlan(dec)

	// Result cache: a bounded sequential query whose exact result set is
	// already memoized streams from memory — no slot, no traversal, no page
	// access. The key pins each index's registration generation, so a
	// same-name reload can never hit. Skipped while draining (hits bypass
	// admission control, and a draining server must say 503).
	var ckey string
	cacheOK := s.cache.cacheable(qry) && !s.sched.Draining()
	if cacheOK {
		if req.Self {
			g := ixP.genKey()
			ckey = cacheKey(req.P, g, req.P, g, true, qry)
		} else {
			ckey = cacheKey(req.P, ixP.genKey(), req.Q, ixQ.genKey(), false, qry)
		}
		if res, ok := s.cache.get(ckey); ok {
			s.writeCachedJoin(w, res, csvFormat)
			return
		}
	}

	// The request context cancels when the client disconnects; that
	// propagates through the scheduler into the executor, aborting the join
	// and freeing its slot. An additional per-request cap stacks under the
	// scheduler's JoinTimeout.
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	var st rcj.Stats
	var seq iter.Seq2[rcj.Pair, error]
	var err error
	if req.Self {
		seq, err = s.sched.RunSelf(ctx, ixP.ix, qry, &st)
	} else {
		seq, err = s.sched.Run(ctx, ixQ.ix, ixP.ix, qry, &st)
	}
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}

	start := time.Now()
	if csvFormat {
		w.Header().Set("Content-Type", "text/csv")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	enc := json.NewEncoder(w)
	var collect []rcj.Pair // tee for the result cache on a miss
	buf := getLineBuf()
	defer putLineBuf(buf)
	for pr, err := range seq {
		if err != nil {
			// The status line is gone; report the failure in-band and stop.
			// (CSV streams simply truncate — the client sees the closed body.)
			if !csvFormat {
				enc.Encode(map[string]string{"error": err.Error()})
			}
			flush()
			return
		}
		*buf = (*buf)[:0]
		if csvFormat {
			*buf = appendPairCSV(*buf, pr)
		} else {
			*buf = appendPairNDJSON(*buf, pr)
		}
		w.Write(*buf)
		if cacheOK {
			collect = append(collect, pr)
		}
		flush()
	}
	if cacheOK {
		// The stream completed cleanly while this handler held the indexes'
		// reference counts, so the generations in the key are still current:
		// safe to memoize.
		names := []string{req.P}
		if !req.Self {
			names = append(names, req.Q)
		}
		s.cache.put(&cachedResult{key: ckey, names: names, pairs: collect, stats: st, plan: dec})
	}
	if !csvFormat {
		enc.Encode(map[string]summaryLine{"summary": {
			Results:      st.Results,
			Candidates:   st.Candidates,
			NodeAccesses: st.NodeAccesses,
			PageFaults:   st.PageFaults,
			NodesPruned:  st.NodesPruned,
			BoundKilled:  st.BoundKilledCandidates,
			BufferHit:    st.BufferHitRatio(),
			ElapsedMS:    time.Since(start).Milliseconds(),
			Alg:          strings.ToLower(dec.Algorithm.String()),
			Parallelism:  dec.Parallelism,
			Plan:         dec.String(),
		}})
	}
	flush()
}

// writeCachedJoin replays a memoized result set: the identical pair lines a
// solo run of the query would stream (same bytes, same order), with the
// original run's statistics in the summary marked "cached".
func (s *Server) writeCachedJoin(w http.ResponseWriter, res *cachedResult, csvFormat bool) {
	if csvFormat {
		w.Header().Set("Content-Type", "text/csv")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	buf := getLineBuf()
	defer putLineBuf(buf)
	for _, pr := range res.pairs {
		*buf = (*buf)[:0]
		if csvFormat {
			*buf = appendPairCSV(*buf, pr)
		} else {
			*buf = appendPairNDJSON(*buf, pr)
		}
		w.Write(*buf)
	}
	if !csvFormat {
		st := res.stats
		json.NewEncoder(w).Encode(map[string]summaryLine{"summary": {
			Results:      st.Results,
			Candidates:   st.Candidates,
			NodeAccesses: st.NodeAccesses,
			PageFaults:   st.PageFaults,
			NodesPruned:  st.NodesPruned,
			BoundKilled:  st.BoundKilledCandidates,
			BufferHit:    st.BufferHitRatio(),
			Alg:          strings.ToLower(res.plan.Algorithm.String()),
			Parallelism:  res.plan.Parallelism,
			Plan:         res.plan.String(),
			Cached:       true,
		}})
	}
	if flusher, ok := w.(http.Flusher); ok {
		flusher.Flush()
	}
}

// writeAdmissionError maps scheduler rejections to backpressure statuses:
// 429 for overload and queue timeout (retryable), 503 while draining.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, sched.ErrOverloaded), errors.Is(err, sched.ErrQueueTimeout):
		w.Header().Set("Retry-After", "1")
		errorJSON(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, sched.ErrDraining):
		errorJSON(w, http.StatusServiceUnavailable, "%v", err)
	default:
		errorJSON(w, http.StatusInternalServerError, "%v", err)
	}
}
