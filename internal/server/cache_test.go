package server

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/rcj"
)

// newCachingServer stands up a caching Server over two overlapping random
// pointsets (so p⋈q joins actually produce pairs).
func newCachingServer(t *testing.T, n, entries int) (*httptest.Server, *Server) {
	t.Helper()
	dir := t.TempDir()
	mk := func(name string, seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		pts := make([]rcj.Point, n)
		for i := range pts {
			pts[i] = rcj.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, ID: int64(i)}
		}
		ix, err := rcj.BuildIndex(pts, rcj.IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		path := filepath.Join(dir, name)
		if err := ix.Save(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 1024})
	srv := New(sched.New(eng, sched.Config{MaxConcurrent: 2}),
		Config{Backend: rcj.BackendFile, ResultCacheEntries: entries})
	if err := srv.LoadIndex("p", mk("p.rcjx", 11)); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadIndex("q", mk("q.rcjx", 12)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv
}

// joinBody posts a /join and returns the raw response body.
func joinBody(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp := postJoin(t, ts, body)
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	return string(raw)
}

// splitSummary separates an NDJSON body into pair lines and the summary line.
func splitSummary(t *testing.T, body string) (pairLines string, summary summaryLine) {
	t.Helper()
	lines := strings.SplitAfter(strings.TrimRight(body, "\n"), "\n")
	last := strings.TrimSpace(lines[len(lines)-1])
	var wrapped map[string]summaryLine
	if err := json.Unmarshal([]byte(last), &wrapped); err != nil {
		t.Fatalf("last line is not a summary: %q: %v", last, err)
	}
	return strings.Join(lines[:len(lines)-1], ""), wrapped["summary"]
}

// TestResultCacheHit pins the serving contract of the cache: the second run
// of a bounded query streams byte-identical pair lines without touching the
// scheduler, and its summary carries the original statistics plus the
// cached marker.
func TestResultCacheHit(t *testing.T) {
	ts, srv := newCachingServer(t, 600, 16)
	const q = `{"p":"p","q":"q","top_k":5}`

	first := joinBody(t, ts, q)
	firstPairs, firstSum := splitSummary(t, first)
	if firstSum.Cached {
		t.Fatal("first run claims to be cached")
	}
	admitted := srv.sched.Snapshot().Admitted

	second := joinBody(t, ts, q)
	secondPairs, secondSum := splitSummary(t, second)
	if secondPairs != firstPairs {
		t.Fatalf("cached pair lines differ from the original stream:\n%q\nvs\n%q", secondPairs, firstPairs)
	}
	if !secondSum.Cached {
		t.Fatal("cache hit not marked cached in the summary")
	}
	if secondSum.Results != firstSum.Results || secondSum.NodeAccesses != firstSum.NodeAccesses {
		t.Fatalf("cached summary stats %+v differ from original %+v", secondSum, firstSum)
	}
	if got := srv.sched.Snapshot().Admitted; got != admitted {
		t.Fatalf("cache hit went through admission control (admitted %d -> %d)", admitted, got)
	}
	cs := srv.cache.snapshot()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Stores != 1 || cs.Entries != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss / 1 store / 1 entry", cs)
	}

	// CSV replays from the same entry, byte-identical too (the cache stores
	// pairs, not bytes, so both formats are served).
	csvQ := `{"p":"p","q":"q","top_k":5,"format":"csv"}`
	csv1 := joinBody(t, ts, csvQ)
	csv2 := joinBody(t, ts, csvQ)
	if csv1 != csv2 {
		t.Fatalf("cached CSV differs:\n%q\nvs\n%q", csv2, csv1)
	}
}

// TestResultCacheKeyDiscrimination: different predicates, different shapes,
// and self-vs-pair joins never collide.
func TestResultCacheKeyDiscrimination(t *testing.T) {
	ts, srv := newCachingServer(t, 400, 16)
	bodies := []string{
		`{"p":"p","q":"q","top_k":3}`,
		`{"p":"p","q":"q","top_k":4}`,
		`{"p":"p","q":"q","limit":3}`,
		`{"p":"p","self":true,"top_k":3}`,
		`{"p":"q","self":true,"top_k":3}`,
	}
	for _, b := range bodies {
		joinBody(t, ts, b)
	}
	cs := srv.cache.snapshot()
	if cs.Stores != int64(len(bodies)) || cs.Hits != 0 {
		t.Fatalf("cache stats = %+v, want %d distinct stores and no hits", cs, len(bodies))
	}
}

// TestResultCacheUncacheable: unbounded or parallel queries never enter the
// cache.
func TestResultCacheUncacheable(t *testing.T) {
	ts, srv := newCachingServer(t, 400, 16)
	bodies := []string{
		`{"p":"p","q":"q"}`,                    // unbounded
		`{"p":"p","q":"q","max_diameter":100}`, // still unbounded in count
		`{"p":"p","q":"q","limit":5000000}`,    // bounded, but looser than maxPairs
	}
	if runtime.GOMAXPROCS(0) > 1 {
		// Parallel runs are not order-deterministic, so they bypass the
		// cache — but the handler clamps parallelism to GOMAXPROCS, so on a
		// one-CPU box these degrade to cacheable sequential runs.
		bodies = append(bodies,
			`{"p":"p","q":"q","limit":5,"parallelism":2}`,
			`{"p":"p","q":"q","top_k":5,"parallelism":2}`)
	}
	for _, b := range bodies {
		joinBody(t, ts, b)
		joinBody(t, ts, b)
	}
	cs := srv.cache.snapshot()
	if cs.Stores != 0 || cs.Hits != 0 || cs.Entries != 0 {
		t.Fatalf("uncacheable queries touched the cache: %+v", cs)
	}
}

// TestResultCacheUnloadInvalidation pins the invalidation story end to end:
// entries survive a refused unload (index pinned by an in-flight join),
// are purged the moment the unload succeeds, and a same-name reload gets a
// fresh generation so the old results can never be served again.
func TestResultCacheUnloadInvalidation(t *testing.T) {
	ts, srv := newCachingServer(t, 400, 16)
	joinBody(t, ts, `{"p":"p","q":"q","top_k":5}`)
	joinBody(t, ts, `{"p":"p","self":true,"top_k":5}`)
	if cs := srv.cache.snapshot(); cs.Entries != 2 {
		t.Fatalf("entries = %d, want 2", cs.Entries)
	}
	if got := srv.cache.countFor("q"); got != 1 {
		t.Fatalf("countFor(q) = %d, want 1", got)
	}

	// Pin q as an in-flight join would; the unload must refuse and leave the
	// cache intact.
	e, ok := srv.acquire("q")
	if !ok {
		t.Fatal("acquire q")
	}
	qPath := e.path
	qGen := e.gen
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/indexes/q", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("busy unload status %d, want 409", resp.StatusCode)
	}
	if cs := srv.cache.snapshot(); cs.Entries != 2 || cs.Invalidations != 0 {
		t.Fatalf("refused unload touched the cache: %+v", cs)
	}
	// A hit still works while the unload is being refused.
	_, sum := splitSummary(t, joinBody(t, ts, `{"p":"p","q":"q","top_k":5}`))
	if !sum.Cached {
		t.Fatal("expected a cache hit while the index is pinned")
	}

	srv.release(e)
	resp2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("unload status %d, want 200", resp2.StatusCode)
	}
	cs := srv.cache.snapshot()
	if cs.Entries != 1 || cs.Invalidations != 1 {
		t.Fatalf("unload purge: %+v, want 1 surviving entry (the self-join on p) and 1 invalidation", cs)
	}
	if got := srv.cache.countFor("p"); got != 1 {
		t.Fatalf("countFor(p) = %d, want 1 (self-join survives)", got)
	}

	// Reload under the same name: fresh generation, so the old key cannot
	// hit even in principle; the identical query misses and re-stores.
	if err := srv.LoadIndex("q", qPath); err != nil {
		t.Fatal(err)
	}
	e2, _ := srv.lookup("q")
	if e2.gen == qGen {
		t.Fatalf("reload reused generation %d", qGen)
	}
	_, sum2 := splitSummary(t, joinBody(t, ts, `{"p":"p","q":"q","top_k":5}`))
	if sum2.Cached {
		t.Fatal("stale cache hit after unload+reload")
	}
	if cs := srv.cache.snapshot(); cs.Stores != 3 {
		t.Fatalf("stores = %d, want 3 (re-stored after reload)", cs.Stores)
	}
}

// TestResultCacheLRUEviction: the oldest entry leaves when capacity is hit.
func TestResultCacheLRUEviction(t *testing.T) {
	ts, srv := newCachingServer(t, 400, 2)
	joinBody(t, ts, `{"p":"p","q":"q","top_k":1}`)
	joinBody(t, ts, `{"p":"p","q":"q","top_k":2}`)
	joinBody(t, ts, `{"p":"p","q":"q","top_k":1}`) // hit: bumps top_k=1 to front
	joinBody(t, ts, `{"p":"p","q":"q","top_k":3}`) // evicts top_k=2
	_, sum := splitSummary(t, joinBody(t, ts, `{"p":"p","q":"q","top_k":2}`))
	if sum.Cached {
		t.Fatal("evicted entry served a hit")
	}
	cs := srv.cache.snapshot()
	if cs.Evictions != 2 || cs.Entries != 2 {
		t.Fatalf("cache stats = %+v, want 2 evictions and 2 entries", cs)
	}
}

// TestResultCacheMetricsExposed: the cache shows up in both metric formats
// and in GET /indexes.
func TestResultCacheMetricsExposed(t *testing.T) {
	ts, _ := newCachingServer(t, 400, 16)
	joinBody(t, ts, `{"p":"p","q":"q","top_k":2}`)
	joinBody(t, ts, `{"p":"p","q":"q","top_k":2}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		ResultCache cacheStats `json:"result_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.ResultCache.Hits != 1 || m.ResultCache.Stores != 1 {
		t.Fatalf("JSON metrics result_cache = %+v", m.ResultCache)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"rcjd_result_cache_hits_total 1",
		"rcjd_result_cache_stores_total 1",
		"rcjd_result_cache_entries 1",
		"rcjd_remote_shared_total",
		"rcjd_remote_coalesced_total",
		"rcjd_pool_shared_loads_total",
		"rcjd_sched_batches_total",
		"rcjd_sched_batched_requests_total",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/indexes")
	if err != nil {
		t.Fatal(err)
	}
	var infos []indexInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, info := range infos {
		if info.Generation == 0 {
			t.Errorf("index %s has zero generation", info.Name)
		}
		if info.CachedResults != 1 {
			t.Errorf("index %s cached_results = %d, want 1", info.Name, info.CachedResults)
		}
	}
}

// TestServerBatchedJoins drives the scheduler's cross-request batching
// through the HTTP layer: with one join slot occupied, concurrent identical
// streaming joins share one traversal and every response is byte-identical.
func TestServerBatchedJoins(t *testing.T) {
	pPath, qPath, _, _ := buildSavedIndexes(t, 600)
	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 1024})
	sch := sched.New(eng, sched.Config{MaxConcurrent: 1, MaxQueue: 8, Batch: sched.BatchConfig{Enabled: true}})
	srv := New(sch, Config{Backend: rcj.BackendFile})
	if err := srv.LoadIndex("p", pPath); err != nil {
		t.Fatal(err)
	}
	if err := srv.LoadIndex("q", qPath); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	const q = `{"p":"p","self":true,"max_diameter":200}`
	want := joinBody(t, ts, q) // solo reference (free slot, no batching)

	// Occupy the slot so the concurrent requests queue and batch.
	release, err := sch.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	bodies := make([]string, n)
	errs := make([]error, n)
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			resp, err := http.Post(ts.URL+"/join", "application/json", strings.NewReader(q))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i] = string(raw)
		}(i)
	}
	waitFor(t, func() bool {
		s := sch.Snapshot()
		return s.OpenBatches == 1 && s.OpenBatchMembers == n
	})
	release()
	for i := 0; i < n; i++ {
		<-done
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		gotPairs, gotSum := splitSummary(t, bodies[i])
		wantPairs, wantSum := splitSummary(t, want)
		if gotPairs != wantPairs {
			t.Fatalf("request %d: batched pair stream differs from solo run", i)
		}
		if gotSum.Results != wantSum.Results {
			t.Fatalf("request %d: results %d, want %d", i, gotSum.Results, wantSum.Results)
		}
	}
	snap := sch.Snapshot()
	if snap.SharedBatches < 1 || snap.BatchedRequests < n {
		t.Fatalf("batching counters = %d/%d, want >=1 shared batch covering %d requests",
			snap.SharedBatches, snap.BatchedRequests, n)
	}
}
