package server

import (
	"bufio"
	"context"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/rcj"
)

// TestDaemonSIGTERMDrain boots the full rcjd stack (RunDaemon is everything
// cmd/rcjd does minus flag parsing), drives 8 concurrent HTTP clients over
// a real listener with maxConcurrent=2, delivers a real SIGTERM to the
// process while two streams are mid-flight and six requests are queued in
// admission, and checks the daemon drains: every admitted join streams to
// completion with the full result set before RunDaemon returns.
func TestDaemonSIGTERMDrain(t *testing.T) {
	// Large enough that one response cannot fit in socket buffers, so the
	// two running handlers genuinely block mid-stream while their clients
	// hold at the gate.
	pPath, qPath, _, _ := buildSavedIndexes(t, 2500)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	const (
		clients       = 8
		maxConcurrent = 2
	)
	addrCh := make(chan string, 1)
	daemonErr := make(chan error, 1)
	go func() {
		daemonErr <- RunDaemon(ctx, DaemonConfig{
			Addr:        "127.0.0.1:0",
			Indexes:     map[string]string{"p": pPath, "q": qPath},
			Backend:     rcj.BackendMem,
			BufferPages: 2048,
			Sched:       sched.Config{MaxConcurrent: maxConcurrent, MaxQueue: clients},
			Logf:        t.Logf,
		}, func(addr string) { addrCh <- addr })
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-daemonErr:
		t.Fatalf("daemon died before ready: %v", err)
	}

	// Reference result computed out-of-band.
	pIx, err := rcj.OpenIndex(pPath, rcj.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer pIx.Close()
	qIx, err := rcj.OpenIndex(qPath, rcj.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer qIx.Close()
	want, _, err := rcj.Join(qIx, pIx, rcj.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantSet := pairSet(t, want)

	// All 8 clients connect up front: 2 are admitted and stream, 6 wait in
	// the admission queue. Each admitted client reads its first pair, then
	// pauses on the gate — so exactly the running streams are provably
	// in flight when the signal lands.
	gate := make(chan struct{})
	firstLine := make(chan struct{}, clients)
	var completed sync.Map
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/join", "application/json",
				strings.NewReader(`{"p":"p","q":"q"}`))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			br := bufio.NewReader(resp.Body)
			if _, err := br.ReadBytes('\n'); err != nil {
				t.Errorf("client %d: first pair: %v", i, err)
				return
			}
			firstLine <- struct{}{}
			<-gate // hold the stream open across the SIGTERM
			pairs, summary := decodeStream(t, br)
			if summary == nil {
				t.Errorf("client %d: stream ended without summary", i)
				return
			}
			if len(pairs)+1 != len(want) { // +1: the line consumed above
				t.Errorf("client %d: %d pairs (+1 consumed), want %d", i, len(pairs), len(want))
				return
			}
			for k := range pairSet(t, pairs) {
				if wantSet[k] == 0 {
					t.Errorf("client %d: pair not in JoinCollect result: %s", i, k)
					return
				}
			}
			completed.Store(i, true)
		}(i)
	}
	// Wait until the two admitted streams are provably mid-flight.
	for i := 0; i < maxConcurrent; i++ {
		select {
		case <-firstLine:
		case <-time.After(10 * time.Second):
			t.Fatal("admitted clients never started streaming")
		}
	}

	// Real signal, real handler: the daemon must begin draining. New
	// connections are then refused (listener closed) or answered 503.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			break // listener closed: shutdown in progress
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break // draining
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never started draining after SIGTERM")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Release the in-flight clients; the queued six get admitted as slots
	// free (they were accepted before the signal) and stream through the
	// drain as well.
	close(gate)
	wg.Wait()

	n := 0
	completed.Range(func(_, _ any) bool { n++; return true })
	if n != clients {
		t.Fatalf("%d/%d clients completed their stream across the drain", n, clients)
	}
	if err := <-daemonErr; err != nil {
		t.Fatalf("RunDaemon: %v", err)
	}
}
