package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/rcj"
)

// TestAppendJSONFloatMatchesEncodingJSON pins byte-exact parity with
// encoding/json's float64 encoder across the notation boundary cases and a
// fuzz sweep: the pooled NDJSON path must be indistinguishable from the
// json.Encoder it replaced.
func TestAppendJSONFloatMatchesEncodingJSON(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, -0.5, 1.0 / 3.0, 123.456, -987.654321,
		1e-6, 9.999e-7, 1e-7, -1e-7, 5e-324, -5e-324, // 'e' side of the small cutoff
		1e21, 9.999e20, 1e22, -1e22, math.MaxFloat64, // 'e' side of the large cutoff
		1e-9, 2.5e-15, -3.25e-300, 7e+250,
		math.Pi, math.Sqrt2, math.SmallestNonzeroFloat64,
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		f := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
		cases = append(cases, f)
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("%g: %v", f, err)
		}
		got := appendJSONFloat(nil, f)
		if string(got) != string(want) {
			t.Fatalf("appendJSONFloat(%g) = %q, encoding/json says %q", f, got, want)
		}
	}
}

// TestAppendPairNDJSONMatchesEncoder: a full line from the pooled appender
// equals the json.Encoder line it replaced, byte for byte.
func TestAppendPairNDJSONMatchesEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		pr := rcj.Pair{
			P:      rcj.Point{ID: rng.Int63() - rng.Int63()},
			Q:      rcj.Point{ID: rng.Int63n(1 << 40)},
			Center: rcj.Point{X: rng.NormFloat64() * 1e4, Y: rng.NormFloat64() * 1e-8},
			Radius: math.Abs(rng.NormFloat64()) * math.Pow(10, float64(rng.Intn(40)-20)),
		}
		want, err := json.Marshal(pairLine{PID: pr.P.ID, QID: pr.Q.ID, CX: pr.Center.X, CY: pr.Center.Y, Radius: pr.Radius})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n') // json.Encoder terminates each value with \n
		if got := appendPairNDJSON(nil, pr); string(got) != string(want) {
			t.Fatalf("pair %d:\n got %q\nwant %q", i, got, want)
		}
	}
}

// TestAppendPairCSVMatchesFprintf: the pooled CSV row equals the
// fmt.Fprintf row it replaced.
func TestAppendPairCSVMatchesFprintf(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		pr := rcj.Pair{
			P:      rcj.Point{ID: rng.Int63n(1 << 32)},
			Q:      rcj.Point{ID: -rng.Int63n(1 << 32)},
			Center: rcj.Point{X: rng.NormFloat64() * 1e3, Y: rng.NormFloat64() * 1e3},
			Radius: math.Abs(rng.NormFloat64()) * 100,
		}
		want := fmt.Sprintf("%d,%d,%s,%s,%s\n", pr.P.ID, pr.Q.ID,
			strconv.FormatFloat(pr.Center.X, 'f', 6, 64),
			strconv.FormatFloat(pr.Center.Y, 'f', 6, 64),
			strconv.FormatFloat(pr.Radius, 'f', 6, 64))
		if got := appendPairCSV(nil, pr); string(got) != want {
			t.Fatalf("pair %d:\n got %q\nwant %q", i, got, want)
		}
	}
}

var benchPairs = func() []rcj.Pair {
	rng := rand.New(rand.NewSource(3))
	prs := make([]rcj.Pair, 256)
	for i := range prs {
		prs[i] = rcj.Pair{
			P:      rcj.Point{ID: rng.Int63n(1 << 32)},
			Q:      rcj.Point{ID: rng.Int63n(1 << 32)},
			Center: rcj.Point{X: rng.Float64() * 1e4, Y: rng.Float64() * 1e4},
			Radius: rng.Float64() * 500,
		}
	}
	return prs
}()

// BenchmarkEncodePairJSONEncoder is the before: one reflection-driven
// json.Encoder.Encode per line, as /join shipped prior to the pooled path.
func BenchmarkEncodePairJSONEncoder(b *testing.B) {
	enc := json.NewEncoder(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr := benchPairs[i%len(benchPairs)]
		enc.Encode(pairLine{PID: pr.P.ID, QID: pr.Q.ID, CX: pr.Center.X, CY: pr.Center.Y, Radius: pr.Radius})
	}
}

// BenchmarkEncodePairPooled is the after: strconv into a pooled buffer.
func BenchmarkEncodePairPooled(b *testing.B) {
	b.ReportAllocs()
	buf := getLineBuf()
	defer putLineBuf(buf)
	for i := 0; i < b.N; i++ {
		*buf = (*buf)[:0]
		*buf = appendPairNDJSON(*buf, benchPairs[i%len(benchPairs)])
		io.Discard.Write(*buf)
	}
}

// BenchmarkEncodePairCSVFprintf / Pooled: the CSV before/after.
func BenchmarkEncodePairCSVFprintf(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pr := benchPairs[i%len(benchPairs)]
		fmt.Fprintf(io.Discard, "%d,%d,%s,%s,%s\n", pr.P.ID, pr.Q.ID,
			strconv.FormatFloat(pr.Center.X, 'f', 6, 64),
			strconv.FormatFloat(pr.Center.Y, 'f', 6, 64),
			strconv.FormatFloat(pr.Radius, 'f', 6, 64))
	}
}

func BenchmarkEncodePairCSVPooled(b *testing.B) {
	b.ReportAllocs()
	buf := getLineBuf()
	defer putLineBuf(buf)
	for i := 0; i < b.N; i++ {
		*buf = (*buf)[:0]
		*buf = appendPairCSV(*buf, benchPairs[i%len(benchPairs)])
		io.Discard.Write(*buf)
	}
}
