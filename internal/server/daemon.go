// Daemon assembly: everything cmd/rcjd does apart from flag parsing lives
// here so the SIGTERM drain path is exercisable by in-process tests.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers for the flag-gated profiling listener
	"sort"
	"time"

	"repro/internal/sched"
	"repro/rcj"
)

// DaemonConfig is the full configuration of one rcjd process.
type DaemonConfig struct {
	// Addr is the listen address (e.g. ":8080", "127.0.0.1:0").
	Addr string
	// Indexes maps registry names to saved .rcjx paths, all loaded before
	// the listener accepts traffic.
	Indexes map[string]string
	// LiveIndexes maps registry names to saved .rcjx paths loaded as live
	// (mutable) indexes — the path is the sealed base, or empty to start the
	// index with no points. POST /indexes/{name}/points applies updates and
	// POST /subscribe streams continuous-query results over them.
	LiveIndexes map[string]string
	// LiveCompactEvery triggers background compaction of live indexes once a
	// delta reaches it (0 = live.DefaultCompactEvery, negative disables);
	// LiveKeepGenerations > 0 prunes all but that many sealed generation
	// files after each compaction.
	LiveCompactEvery    int
	LiveKeepGenerations int
	// Manifest, when non-empty, is a shard-manifest path (.rcjm); the
	// worker loads ManifestShards of it (nil = every populated shard) as
	// "s<id>.p"/"s<id>.q" before the listener accepts traffic.
	// ManifestBase optionally rebases the manifest's relative shard paths
	// (e.g. onto an http(s) object-storage origin).
	Manifest       string
	ManifestShards []int
	ManifestBase   string
	// Backend is the pager substrate for the loaded indexes.
	Backend rcj.Backend
	// BufferPages / BufferShards size the engine's shared pool
	// (rcj.EngineConfig semantics).
	BufferPages  int
	BufferShards int
	// NodeCachePages sizes the engine's second-level decoded-node cache for
	// opened indexes (rcj.EngineConfig semantics; 0 disables it).
	NodeCachePages int
	// PprofAddr, when non-empty, serves net/http/pprof on its own listener
	// at this address (separate from the query port, so profiling is never
	// exposed on the service address by accident).
	PprofAddr string
	// Sched bounds admission: concurrent joins, queue depth, queue wait,
	// per-join deadline, cross-request batching (sched.Config semantics).
	Sched sched.Config
	// ResultCacheEntries / ResultCachePairs size the memoized-result cache
	// (Config semantics; 0 entries disables it).
	ResultCacheEntries int
	ResultCachePairs   int
	// DrainTimeout caps how long shutdown waits for in-flight joins after
	// the stop signal; 0 means 30s.
	DrainTimeout time.Duration
	// Logf, when non-nil, receives daemon lifecycle messages.
	Logf func(format string, args ...any)
}

// RunDaemon builds the engine/scheduler/server stack from cfg, loads every
// configured index, serves HTTP on cfg.Addr, and blocks until ctx is
// cancelled (the signal path), then drains: new joins are rejected with 503
// while in-flight and queued joins stream to completion, bounded by
// DrainTimeout. ready, when non-nil, is called with the bound address once
// the listener accepts traffic.
func RunDaemon(ctx context.Context, cfg DaemonConfig, ready func(addr string)) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	drainTimeout := cfg.DrainTimeout
	if drainTimeout <= 0 {
		drainTimeout = 30 * time.Second
	}

	if cfg.PprofAddr != "" {
		pprofLn, err := net.Listen("tcp", cfg.PprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		// DefaultServeMux carries the net/http/pprof handlers registered by
		// the blank import; nothing else is ever registered on it here.
		pprofSrv := &http.Server{Handler: http.DefaultServeMux}
		defer pprofSrv.Close()
		logf("rcjd: pprof on http://%s/debug/pprof/", pprofLn.Addr())
		go func() { _ = pprofSrv.Serve(pprofLn) }()
	}

	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: cfg.BufferPages, BufferShards: cfg.BufferShards,
		NodeCachePages: cfg.NodeCachePages})
	sch := sched.New(eng, cfg.Sched)
	srv := New(sch, Config{Backend: cfg.Backend,
		ResultCacheEntries: cfg.ResultCacheEntries, ResultCachePairs: cfg.ResultCachePairs})
	// Indexes are closed on exit unless a join may still be running:
	// closing an mmap-backed index unmaps pages a still-wedged join could
	// be reading, so an incomplete drain leaks them instead (the process
	// is exiting anyway).
	leakIndexes := false
	defer func() {
		if !leakIndexes {
			srv.Close()
		}
	}()

	// Deterministic load order so startup logs are reproducible.
	names := make([]string, 0, len(cfg.Indexes))
	for name := range cfg.Indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		path := cfg.Indexes[name]
		if err := srv.LoadIndex(name, path); err != nil {
			return fmt.Errorf("load index %s=%s: %w", name, path, err)
		}
		e, _ := srv.lookup(name)
		logf("rcjd: loaded index %s (%d points, %s backend) from %s", name, e.ix.Len(), cfg.Backend, path)
	}
	liveNames := make([]string, 0, len(cfg.LiveIndexes))
	for name := range cfg.LiveIndexes {
		liveNames = append(liveNames, name)
	}
	sort.Strings(liveNames)
	for _, name := range liveNames {
		path := cfg.LiveIndexes[name]
		if err := srv.LoadMutableIndex(name, path, cfg.LiveCompactEvery, cfg.LiveKeepGenerations); err != nil {
			return fmt.Errorf("load live index %s=%s: %w", name, path, err)
		}
		e, _ := srv.lookup(name)
		src := path
		if src == "" {
			src = "(empty)"
		}
		logf("rcjd: loaded live index %s (%d points, mutable) from %s", name, e.ix.Len(), src)
	}
	if cfg.Manifest != "" {
		loaded, err := srv.LoadManifestShards(cfg.Manifest, cfg.ManifestShards, cfg.ManifestBase)
		if err != nil {
			return fmt.Errorf("load manifest %s: %w", cfg.Manifest, err)
		}
		for _, name := range loaded {
			e, _ := srv.lookup(name)
			logf("rcjd: loaded shard index %s (%d points) from %s", name, e.ix.Len(), e.path)
		}
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logf("rcjd: serving on %s (maxConcurrent=%d maxQueue=%d)",
		ln.Addr(), sch.Config().MaxConcurrent, sch.Config().MaxQueue)
	if ready != nil {
		ready(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died under us; handlers (and their joins) may still
		// be running, so the indexes must outlive this return.
		leakIndexes = true
		return err
	case <-ctx.Done():
	}

	// Graceful drain. Order matters: first stop admitting joins (so queued
	// handlers fail fast with 503 and /healthz flips), then let the HTTP
	// server wait for in-flight handlers — each of which holds a streaming
	// join — to finish, bounded by the drain timeout.
	logf("rcjd: shutdown signal received, draining (timeout %s)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	sch.BeginDrain()
	shutdownErr := httpSrv.Shutdown(drainCtx)
	waitCtx := drainCtx
	if shutdownErr != nil {
		// Timed out: cut the remaining streams, whose cancelled contexts
		// abort their joins; give the slots a short grace to unwind.
		httpSrv.Close()
		var cancelWait context.CancelFunc
		waitCtx, cancelWait = context.WithTimeout(context.Background(), 2*time.Second)
		defer cancelWait()
	}
	if err := sch.Drain(waitCtx); err != nil {
		leakIndexes = true
		return fmt.Errorf("rcjd: drain incomplete: %w", errors.Join(shutdownErr, err))
	}
	if shutdownErr != nil {
		return fmt.Errorf("rcjd: shutdown: %w", shutdownErr)
	}
	logf("rcjd: drained, exiting")
	return nil
}
