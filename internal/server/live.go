package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/sched"
	"repro/rcj"
)

// liveInfo is the live-index block of one GET /indexes row: epoch state,
// delta/tombstone load, and how many continuous-query streams currently
// depend on the index.
type liveInfo struct {
	Epoch            uint64  `json:"epoch"`
	BasePoints       int     `json:"base_points"`
	DeltaPoints      int     `json:"delta_points"`
	Tombstones       int     `json:"tombstones"`
	Generation       string  `json:"generation,omitempty"`
	GenerationPoints int     `json:"generation_points,omitempty"`
	Inserts          int64   `json:"inserts"`
	Deletes          int64   `json:"deletes"`
	Compactions      int64   `json:"compactions"`
	CompactSeconds   float64 `json:"compact_seconds"`
	Subscribers      int     `json:"subscribers"`
}

// liveCounters aggregates the cumulative counters of live indexes for
// /metrics; retired totals of unloaded indexes fold in so the counters stay
// monotone across unload/reload cycles (same contract as the remote ones).
type liveCounters struct {
	inserts, deletes, batches int64
	compactions, compactFails int64
	compactSeconds            float64
	shedFeeds                 int64
	deltaPoints, tombstones   int // gauges, not folded into retired
	liveIndexes, subscribers  int // gauges
}

func (c *liveCounters) add(st rcj.LiveStats) {
	c.inserts += st.Inserts
	c.deletes += st.Deletes
	c.batches += st.Batches
	c.compactions += st.Compactions
	c.compactFails += st.CompactFailures
	c.compactSeconds += st.CompactSeconds
	c.shedFeeds += st.ShedFeeds
}

// liveTotals sums live counters over every registered mutable index plus the
// retired totals of unloaded ones.
func (s *Server) liveTotals() liveCounters {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := s.retiredLive
	for _, e := range s.indexes {
		st, ok := e.ix.LiveStats()
		if !ok {
			continue
		}
		out.add(st)
		out.liveIndexes++
		out.deltaPoints += st.DeltaPoints
		out.tombstones += st.Tombstones
		out.subscribers += e.subs
	}
	return out
}

// LoadMutableIndex registers a live (mutable) index under name. A non-empty
// path opens the saved index there as the sealed base (compacted generations
// are persisted next to it as ".g<seq>" siblings); an empty path starts the
// index empty, with memory-only generations. compactEvery and keepGens map
// to rcj.MutableConfig.
func (s *Server) LoadMutableIndex(name, path string, compactEvery, keepGens int) error {
	cfg := rcj.MutableConfig{
		Index:           rcjIndexConfig(s.backend),
		CompactEvery:    compactEvery,
		KeepGenerations: keepGens,
	}
	var (
		ix  *rcj.Index
		err error
	)
	if path == "" {
		ix, err = s.sched.Engine().NewMutableIndex(nil, cfg)
	} else {
		ix, err = s.sched.Engine().OpenMutableIndex(path, cfg)
	}
	if err != nil {
		return err
	}
	s.mu.Lock()
	if _, taken := s.indexes[name]; taken {
		s.mu.Unlock()
		ix.Close()
		return fmt.Errorf("%w: %q", ErrIndexExists, name)
	}
	s.nextGen++
	s.indexes[name] = &indexEntry{ix: ix, path: path, backend: ix.Backend(), gen: s.nextGen}
	s.mu.Unlock()
	return nil
}

// mutateRequest is the POST /indexes/{name}/points payload: one atomic batch
// of inserts and deletes.
type mutateRequest struct {
	Insert []mutatePoint `json:"insert"`
	Delete []int64       `json:"delete"`
}

type mutatePoint struct {
	ID int64   `json:"id"`
	X  float64 `json:"x"`
	Y  float64 `json:"y"`
}

// handleMutate serves POST /indexes/{name}/points: apply one batch of point
// insertions/deletions to a mutable index. The batch is atomic — any invalid
// member (duplicate insert ID, unknown delete ID) rejects the whole batch
// with 400 and no state change; mutating an immutable index is 409.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("indexes_mutate")
	name := r.PathValue("name")
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Pin the entry so a concurrent unload cannot close the index mid-batch.
	e, ok := s.acquire(name)
	if !ok {
		errorJSON(w, http.StatusNotFound, "unknown index %q", name)
		return
	}
	defer s.release(e)
	ins := make([]rcj.Point, len(req.Insert))
	for i, p := range req.Insert {
		ins[i] = rcj.Point{X: p.X, Y: p.Y, ID: p.ID}
	}
	seq, err := e.ix.ApplyBatch(ins, req.Delete)
	if err != nil {
		switch {
		case errors.Is(err, rcj.ErrImmutableIndex):
			errorJSON(w, http.StatusConflict, "index %q is immutable: load it with \"mutable\": true to accept updates", name)
		case errors.Is(err, rcj.ErrDuplicateID), errors.Is(err, rcj.ErrUnknownID):
			errorJSON(w, http.StatusBadRequest, "%v", err)
		default:
			errorJSON(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":    seq,
		"inserted": len(req.Insert),
		"deleted":  len(req.Delete),
	})
}

// subscribeRequest is the POST /subscribe payload. Exactly one of {"q"} or
// {"self": true} selects the join shape, mirroring POST /join; at least one
// side must be a mutable index.
type subscribeRequest struct {
	P    string `json:"p"`
	Q    string `json:"q"`
	Self bool   `json:"self"`
	// Buffer bounds both the event channel and the per-subscription update
	// feed (default 256). A consumer that falls behind it is shed.
	Buffer int `json:"buffer"`
	// MaxEvents, when > 0, ends the stream cleanly after that many event
	// lines — deterministic consumption for scripts and smoke tests.
	MaxEvents int `json:"max_events"`
}

// subscribeEvent is one NDJSON line of a /subscribe stream.
type subscribeEvent struct {
	Event string `json:"event"`
	Seq   uint64 `json:"seq,omitempty"`
	// Pair payload (add/remove events).
	PID    *int64  `json:"p_id,omitempty"`
	QID    *int64  `json:"q_id,omitempty"`
	CX     float64 `json:"cx,omitempty"`
	CY     float64 `json:"cy,omitempty"`
	Radius float64 `json:"r,omitempty"`
	// Result-set size (sync events).
	Pairs *int `json:"pairs,omitempty"`
	// Why the stream ended (end events): "closed", "slow_consumer",
	// "cancelled", "max_events", or an error string.
	Reason string `json:"reason,omitempty"`
}

// handleSubscribe serves POST /subscribe: a long-lived NDJSON stream of
// exact result-set changes for one continuous query. The stream opens with a
// full replay of the current result set (add… sync), then delivers
// incremental add/remove events as mutation batches apply; a deletion forces
// a "resync" (discard replayed state, full state follows). The subscription
// registers with the scheduler as long-lived admitted work: a draining
// server rejects new subscriptions with 503 and cancels running ones so
// SIGTERM terminates.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	s.requests.inc("subscribe")
	var req subscribeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.P == "" {
		errorJSON(w, http.StatusBadRequest, "p is required")
		return
	}
	if req.Self == (req.Q != "") {
		errorJSON(w, http.StatusBadRequest, `exactly one of "q" or "self" is required`)
		return
	}
	buf := req.Buffer
	if buf <= 0 {
		buf = 256
	}

	// Pin the indexes for the stream's lifetime (an unload would close the
	// live index under the monitor) and count the subscriber for /indexes.
	eP, ok := s.acquire(req.P)
	if !ok {
		errorJSON(w, http.StatusNotFound, "unknown index %q", req.P)
		return
	}
	defer s.release(eP)
	eQ := eP
	if !req.Self {
		if eQ, ok = s.acquire(req.Q); !ok {
			errorJSON(w, http.StatusNotFound, "unknown index %q", req.Q)
			return
		}
		defer s.release(eQ)
	}
	if !eP.ix.Mutable() && !eQ.ix.Mutable() {
		errorJSON(w, http.StatusConflict, "subscription requires at least one mutable index")
		return
	}

	// Register as long-lived work: the scheduler cancels sctx on drain and
	// waits for unregister, so a daemon with open subscriptions still drains.
	sctx, unregister, err := s.sched.Subscribe(r.Context())
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer unregister()

	sub, err := rcj.SubscribeLive(sctx, eQ.ix, eP.ix, buf)
	if err != nil {
		if errors.Is(err, rcj.ErrImmutableIndex) {
			errorJSON(w, http.StatusConflict, "%v", err)
		} else {
			errorJSON(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	defer sub.Close()
	s.addSubscriber(eP, eQ, 1)
	defer s.addSubscriber(eP, eQ, -1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev subscribeEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	sent := 0
	for ev := range sub.C {
		line := subscribeEvent{Event: string(ev.Type), Seq: ev.Seq}
		switch ev.Type {
		case rcj.EventAdd, rcj.EventRemove:
			pid, qid := ev.Pair.P.ID, ev.Pair.Q.ID
			line.PID, line.QID = &pid, &qid
			line.CX, line.CY = ev.Pair.Center.X, ev.Pair.Center.Y
			line.Radius = ev.Pair.Radius
		case rcj.EventSync:
			pairs := ev.Pairs
			line.Pairs = &pairs
		}
		if !emit(line) {
			return
		}
		sent++
		if req.MaxEvents > 0 && sent >= req.MaxEvents {
			emit(subscribeEvent{Event: "end", Reason: "max_events"})
			return
		}
	}
	reason := "closed"
	switch {
	case errors.Is(sub.Err(), rcj.ErrSlowSubscriber):
		reason = "slow_consumer"
	case sub.Err() != nil:
		reason = sub.Err().Error()
	case sctx.Err() != nil:
		reason = "cancelled"
	}
	emit(subscribeEvent{Event: "end", Reason: reason})
}

// addSubscriber adjusts the per-index subscriber gauges (both sides of a
// two-index subscription; once for self-joins).
func (s *Server) addSubscriber(eP, eQ *indexEntry, d int) {
	s.mu.Lock()
	eP.subs += d
	if eQ != eP {
		eQ.subs += d
	}
	s.mu.Unlock()
}

// writePromMetric renders one integer metric in the Prometheus text
// exposition format; writePromFloat is its float form (compaction seconds).
func writePromMetric(w http.ResponseWriter, name, help, typ string, value int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, value)
}

func writePromFloat(w http.ResponseWriter, name, help, typ string, value float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, value)
}

// writeLivePromMetrics appends the rcjd_live_* family to a Prometheus
// exposition: mutation/compaction counters (monotone across unloads via the
// retired fold), delta-load gauges, and the subscription counters from the
// scheduler.
func (s *Server) writeLivePromMetrics(w http.ResponseWriter, lc liveCounters, snap sched.Snapshot) {
	writeProm := func(name, help, typ string, value int64) {
		writePromMetric(w, name, help, typ, value)
	}
	writeProm("rcjd_live_indexes", "Registered mutable (live) indexes.", "gauge", int64(lc.liveIndexes))
	writeProm("rcjd_live_inserts_total", "Points inserted into live indexes.", "counter", lc.inserts)
	writeProm("rcjd_live_deletes_total", "Points deleted from live indexes.", "counter", lc.deletes)
	writeProm("rcjd_live_batches_total", "Mutation batches applied to live indexes.", "counter", lc.batches)
	writeProm("rcjd_live_compactions_total", "Completed live-index compactions.", "counter", lc.compactions)
	writeProm("rcjd_live_compact_failures_total", "Failed live-index compactions (index kept serving).", "counter", lc.compactFails)
	writePromFloat(w, "rcjd_live_compact_seconds_total", "Wall time spent sealing live-index generations.", "counter", lc.compactSeconds)
	writeProm("rcjd_live_delta_points", "Points currently in in-memory deltas.", "gauge", int64(lc.deltaPoints))
	writeProm("rcjd_live_tombstones", "Base points currently masked by tombstones.", "gauge", int64(lc.tombstones))
	writeProm("rcjd_live_subscribers", "Open continuous-query subscriptions.", "gauge", int64(snap.Subscriptions))
	writeProm("rcjd_live_subscriptions_total", "Continuous-query subscriptions ever started.", "counter", snap.SubscriptionsStarted)
	writeProm("rcjd_live_shed_total", "Subscription feeds shed for falling behind.", "counter", lc.shedFeeds)
}

// liveMetricsJSON is the "live" block of the JSON /metrics payload.
func liveMetricsJSON(lc liveCounters, snap sched.Snapshot) map[string]any {
	return map[string]any{
		"indexes":               lc.liveIndexes,
		"inserts":               lc.inserts,
		"deletes":               lc.deletes,
		"batches":               lc.batches,
		"compactions":           lc.compactions,
		"compact_failures":      lc.compactFails,
		"compact_seconds":       lc.compactSeconds,
		"delta_points":          lc.deltaPoints,
		"tombstones":            lc.tombstones,
		"subscribers":           snap.Subscriptions,
		"subscriptions_started": snap.SubscriptionsStarted,
		"subscriptions_ended":   snap.SubscriptionsEnded,
		"shed_feeds":            lc.shedFeeds,
	}
}
