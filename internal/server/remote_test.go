package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/sched"
	"repro/internal/storage"
	"repro/rcj"
)

// faultyOrigin serves one index image over HTTP ranges with scripted and
// persistent faults — the unreliable origin the daemon must survive.
type faultyOrigin struct {
	mu   sync.Mutex
	data []byte
	// next503 / nextShort fail the next N requests with a 503 / a short body.
	next503, nextShort int
	// corruptAt persistently flips a bit in any range starting at this
	// offset (-1 = off): the checksum-corrupting proxy.
	corruptAt int64
}

func (o *faultyOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	o.mu.Lock()
	fail503 := o.next503 > 0
	if fail503 {
		o.next503--
	}
	short := !fail503 && o.nextShort > 0
	if short {
		o.nextShort--
	}
	corruptAt := o.corruptAt
	data := o.data
	o.mu.Unlock()

	if fail503 {
		http.Error(w, "origin flapping", http.StatusServiceUnavailable)
		return
	}
	h := r.Header.Get("Range")
	var off, end int64
	if _, err := fmt.Sscanf(h, "bytes=%d-%d", &off, &end); err != nil || off < 0 || off >= int64(len(data)) {
		http.Error(w, "bad range", http.StatusRequestedRangeNotSatisfiable)
		return
	}
	if end >= int64(len(data)) {
		end = int64(len(data)) - 1
	}
	body := append([]byte(nil), data[off:end+1]...)
	if corruptAt >= 0 && off == corruptAt {
		body[7] ^= 0x20
	}
	w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", off, end, len(data)))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusPartialContent)
	if short {
		w.Write(body[:len(body)/2])
		return
	}
	w.Write(body)
}

// loadIndexJSON loads an index into the server via the admin endpoint.
func loadIndexJSON(t *testing.T, ts *httptest.Server, name, path string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/indexes", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name":%q,"path":%q}`, name, path)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServeRemoteIndex is the serving-layer acceptance path: rcjd loads an
// index by URL (startup-style via LoadIndex and admin-style via POST
// /indexes), streams a join byte-identical to the same index loaded from
// the local file, and exposes remote-fetch/prefetch counters in /metrics.
func TestServeRemoteIndex(t *testing.T) {
	pPath, qPath, _, _ := buildSavedIndexes(t, 900)
	pData, err := os.ReadFile(pPath)
	if err != nil {
		t.Fatal(err)
	}
	qData, err := os.ReadFile(qPath)
	if err != nil {
		t.Fatal(err)
	}
	// A healthy origin with a little scripted flap: two 503s and a short
	// read land somewhere in the load/join fetch stream and must be
	// absorbed by bounded retries without changing a byte of output.
	originP := &faultyOrigin{data: pData, corruptAt: -1, next503: 2, nextShort: 1}
	originQ := &faultyOrigin{data: qData, corruptAt: -1}
	srvP := httptest.NewServer(originP)
	defer srvP.Close()
	srvQ := httptest.NewServer(originQ)
	defer srvQ.Close()

	// Reference answer: the same indexes over the file backend.
	tsFile, _ := newTestServer(t, 900, sched.Config{MaxConcurrent: 2})
	respWant := postJoin(t, tsFile, `{"p":"p","q":"q","format":"csv"}`)
	wantCSV, err := io.ReadAll(respWant.Body)
	respWant.Body.Close()
	if err != nil || respWant.StatusCode != http.StatusOK {
		t.Fatalf("file-backend join: status %d, err %v", respWant.StatusCode, err)
	}

	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 1024})
	srv := New(sched.New(eng, sched.Config{MaxConcurrent: 2}), Config{Backend: rcj.BackendFile})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	// Startup-style load by URL.
	if err := srv.LoadIndex("p", srvP.URL); err != nil {
		t.Fatal(err)
	}
	// Admin-style load by URL.
	if resp := loadIndexJSON(t, ts, "q", srvQ.URL); resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST /indexes (url) = %d: %s", resp.StatusCode, body)
	}

	resp := postJoin(t, ts, `{"p":"p","q":"q","format":"csv"}`)
	gotCSV, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("remote join: status %d, err %v", resp.StatusCode, err)
	}
	if string(gotCSV) != string(wantCSV) {
		t.Fatalf("remote CSV differs from file CSV: %d vs %d bytes", len(gotCSV), len(wantCSV))
	}

	// The counters must tell the remote story, JSON and prom alike.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Remote map[string]float64 `json:"remote"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if metrics.Remote["indexes"] != 2 || metrics.Remote["fetches"] == 0 {
		t.Fatalf("remote metrics %+v", metrics.Remote)
	}
	if metrics.Remote["retries"] == 0 {
		t.Fatalf("scripted faults produced no retries: %+v", metrics.Remote)
	}
	if metrics.Remote["prefetch_offered"] == 0 {
		t.Fatalf("no readahead offered: %+v", metrics.Remote)
	}
	promResp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	for _, want := range []string{
		"rcjd_remote_fetches_total ",
		"rcjd_prefetch_offered_total ",
		"rcjd_pool_prefetch_hits_total ",
		`rcjd_sched_queue_wait_seconds_bucket{le="+Inf"}`,
		"rcjd_sched_join_latency_seconds_count 1",
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, prom)
		}
	}
}

// TestRemoteJoinChecksumFailure drives a join over an origin whose proxy
// persistently corrupts one page: the stream must terminate with a clean
// in-band typed error (no partial NDJSON rows), the retry budget must be
// respected, and the scheduler must free the slot so the daemon keeps
// serving. Run with -race.
func TestRemoteJoinChecksumFailure(t *testing.T) {
	pPath, _, _, _ := buildSavedIndexes(t, 700)
	data, err := os.ReadFile(pPath)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := storage.DecodeSuperblock(data[:storage.SuperblockSize])
	if err != nil {
		t.Fatal(err)
	}
	if sb.NumPages < 3 {
		t.Fatalf("test wants a multi-page index, got %d pages", sb.NumPages)
	}
	// Corrupt a page that is not the root, so the open (which reads only
	// the root) succeeds and the failure surfaces mid-join.
	victim := storage.PageID(0)
	if victim == sb.Root {
		victim = 1
	}
	origin := &faultyOrigin{data: data, corruptAt: int64(sb.PageSize) * int64(1+int64(victim))}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 1024})
	srv := New(sched.New(eng, sched.Config{MaxConcurrent: 1, MaxQueue: 4}), Config{Backend: rcj.BackendFile})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	if err := srv.LoadIndex("p", originSrv.URL); err != nil {
		t.Fatalf("open should succeed (root is clean): %v", err)
	}

	resp := postJoin(t, ts, `{"p":"p","self":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join admitted with status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	resp.Body.Close()
	if len(lines) == 0 {
		t.Fatal("empty stream: want at least the in-band error line")
	}
	// Every line — including the last — must be complete, parseable JSON:
	// a failing stream never emits a partial row.
	var sawError string
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not complete JSON (%v): %q", i, err, line)
		}
		if e, ok := m["error"].(string); ok {
			if i != len(lines)-1 {
				t.Fatalf("error line %d is not last of %d", i, len(lines))
			}
			sawError = e
		}
	}
	if sawError == "" {
		t.Fatalf("stream ended without an in-band error: %d lines", len(lines))
	}
	if !strings.Contains(sawError, "checksum") || !strings.Contains(sawError, fmt.Sprintf("page %d", victim)) {
		t.Fatalf("error is not the typed checksum failure naming page %d: %q", victim, sawError)
	}

	// The slot must be free and the failure accounted.
	snap := srv.Scheduler().Snapshot()
	if snap.InFlight != 0 {
		t.Fatalf("slot leaked: %+v", snap)
	}
	if snap.Failed == 0 {
		t.Fatalf("failure not counted: %+v", snap)
	}

	// Heal the origin and prove the daemon still serves: the corrupted
	// page was never cached, so a fresh join re-fetches it cleanly.
	origin.mu.Lock()
	origin.corruptAt = -1
	origin.mu.Unlock()
	resp2 := postJoin(t, ts, `{"p":"p","self":true}`)
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-failure join: status %d", resp2.StatusCode)
	}
	if !strings.Contains(string(body), `"summary"`) {
		t.Fatalf("post-failure join did not complete:\n%s", body)
	}

	// Retry budget: the victim page was fetched at most (1+MaxRetries) per
	// demand attempt plus at most (1+MaxRetries) per prefetch worker try —
	// bounded, not a loop. With the default config that is a handful of
	// requests, nowhere near the hundreds an unbounded retry would show.
	if rs, ok := indexRemoteStats(srv, "p"); ok {
		if rs.ChecksumFailures == 0 {
			t.Fatalf("checksum failures not counted: %+v", rs)
		}
		if rs.Retries > 64 {
			t.Fatalf("retries unbounded: %+v", rs)
		}
	} else {
		t.Fatal("index p is not remote")
	}
}

// TestRemoteCountersSurviveUnload pins counter monotonicity: unloading a
// remote index must fold its final fetch/prefetch counts into the server
// totals instead of dropping them — a Prometheus counter that regresses
// reads as a reset and corrupts rate() over every unload/reload cycle.
func TestRemoteCountersSurviveUnload(t *testing.T) {
	pPath, _, _, _ := buildSavedIndexes(t, 500)
	data, err := os.ReadFile(pPath)
	if err != nil {
		t.Fatal(err)
	}
	origin := httptest.NewServer(&faultyOrigin{data: data, corruptAt: -1})
	defer origin.Close()

	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 1024})
	srv := New(sched.New(eng, sched.Config{MaxConcurrent: 1}), Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	if err := srv.LoadIndex("p", origin.URL); err != nil {
		t.Fatal(err)
	}
	resp := postJoin(t, ts, `{"p":"p","self":true}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	before, _, n := srv.remoteTotals()
	if n != 1 || before.Fetches == 0 {
		t.Fatalf("pre-unload totals %+v over %d remote indexes", before, n)
	}
	if err := srv.UnloadIndex("p"); err != nil {
		t.Fatal(err)
	}
	after, _, n := srv.remoteTotals()
	if n != 0 {
		t.Fatalf("remote index gauge = %d after unload, want 0", n)
	}
	if after.Fetches < before.Fetches || after.BytesFetched < before.BytesFetched {
		t.Fatalf("counters regressed across unload: before %+v, after %+v", before, after)
	}
}

// indexRemoteStats reads one registered index's remote counters.
func indexRemoteStats(s *Server, name string) (rcj.RemoteStats, bool) {
	e, ok := s.lookup(name)
	if !ok {
		return rcj.RemoteStats{}, false
	}
	return e.ix.RemoteStats()
}
