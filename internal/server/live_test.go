package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/rcj"
)

// postJSON posts body to path and returns the response.
func postJSON(t *testing.T, base, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func wantStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != want {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, want, body)
	}
	io.Copy(io.Discard, resp.Body)
}

func TestMutateEndpoint(t *testing.T) {
	ts, srv := newTestServer(t, 200, sched.Config{MaxConcurrent: 2, MaxQueue: 4})
	if err := srv.LoadMutableIndex("m", "", -1, 0); err != nil {
		t.Fatal(err)
	}

	// A valid batch lands atomically and reports the new epoch.
	resp := postJSON(t, ts.URL, "/indexes/m/points",
		`{"insert":[{"id":1,"x":10,"y":10},{"id":2,"x":11,"y":10}]}`)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("mutate: status %d (body %s)", resp.StatusCode, body)
	}
	var ok struct {
		Epoch    uint64 `json:"epoch"`
		Inserted int    `json:"inserted"`
		Deleted  int    `json:"deleted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ok); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ok.Epoch != 1 || ok.Inserted != 2 || ok.Deleted != 0 {
		t.Fatalf("mutate response %+v", ok)
	}

	// Duplicate insert and unknown delete are 400s with no state change;
	// mutating an immutable index is 409; an unknown index is 404.
	wantStatus(t, postJSON(t, ts.URL, "/indexes/m/points", `{"insert":[{"id":1,"x":0,"y":0}]}`), http.StatusBadRequest)
	wantStatus(t, postJSON(t, ts.URL, "/indexes/m/points", `{"delete":[99]}`), http.StatusBadRequest)
	wantStatus(t, postJSON(t, ts.URL, "/indexes/p/points", `{"insert":[{"id":1,"x":0,"y":0}]}`), http.StatusConflict)
	wantStatus(t, postJSON(t, ts.URL, "/indexes/nope/points", `{"insert":[{"id":1,"x":0,"y":0}]}`), http.StatusNotFound)
	wantStatus(t, postJSON(t, ts.URL, "/indexes/m/points", `{"delete":[1]}`), http.StatusOK)

	// GET /indexes advertises mutability and epoch state.
	resp, err := http.Get(ts.URL + "/indexes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing []struct {
		Name    string `json:"name"`
		Mutable bool   `json:"mutable"`
		Points  int    `json:"points"`
		Live    *struct {
			Epoch       uint64 `json:"epoch"`
			DeltaPoints int    `json:"delta_points"`
			Inserts     int64  `json:"inserts"`
			Deletes     int64  `json:"deletes"`
			Subscribers int    `json:"subscribers"`
		} `json:"live"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range listing {
		if e.Name == "p" && (e.Mutable || e.Live != nil) {
			t.Fatalf("immutable index advertises live state: %+v", e)
		}
		if e.Name != "m" {
			continue
		}
		found = true
		if !e.Mutable || e.Live == nil {
			t.Fatalf("mutable index row %+v lacks live info", e)
		}
		if e.Points != 1 || e.Live.Epoch != 2 || e.Live.Inserts != 2 || e.Live.Deletes != 1 {
			t.Fatalf("live info %+v (points %d), want 1 point at epoch 2 after 2 inserts / 1 delete",
				e.Live, e.Points)
		}
	}
	if !found {
		t.Fatal("mutable index missing from GET /indexes")
	}

	// /metrics exposes the rcjd_live_* family.
	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"rcjd_live_indexes 1",
		"rcjd_live_inserts_total 2",
		"rcjd_live_deletes_total 1",
		"rcjd_live_batches_total 2",
		"rcjd_live_subscribers 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

func TestMutableLoadUnloadEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, 100, sched.Config{MaxConcurrent: 2, MaxQueue: 4})
	// Load an empty mutable index over the API, mutate it, unload it.
	wantStatus(t, postJSON(t, ts.URL, "/indexes", `{"name":"live1","mutable":true}`), http.StatusCreated)
	wantStatus(t, postJSON(t, ts.URL, "/indexes", `{"name":"live1","mutable":true}`), http.StatusConflict)
	// A pathless load without mutable stays invalid.
	wantStatus(t, postJSON(t, ts.URL, "/indexes", `{"name":"live2"}`), http.StatusBadRequest)
	wantStatus(t, postJSON(t, ts.URL, "/indexes/live1/points", `{"insert":[{"id":5,"x":1,"y":2}]}`), http.StatusOK)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/indexes/live1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus(t, resp, http.StatusOK)

	// The retired counters keep the totals monotone after the unload.
	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"rcjd_live_indexes 0", "rcjd_live_inserts_total 1"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q after unload", want)
		}
	}
}

// subscribeLines opens a /subscribe stream and returns its decoded lines
// (the stream must terminate on its own, e.g. via max_events).
func subscribeLines(t *testing.T, base, body string) []subscribeEvent {
	t.Helper()
	resp := postJSON(t, base, "/subscribe", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("subscribe: status %d (body %s)", resp.StatusCode, b)
	}
	var events []subscribeEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev subscribeEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestSubscribeEndpoint(t *testing.T) {
	ts, srv := newTestServer(t, 100, sched.Config{MaxConcurrent: 2, MaxQueue: 4})
	if err := srv.LoadMutableIndex("m", "", -1, 0); err != nil {
		t.Fatal(err)
	}
	// Four points on a line, two tight clusters: the self-join (smallest
	// enclosing circle empty of other points) yields exactly 3 pairs —
	// the two tight ones plus the cross pair of the facing cluster edges,
	// whose circle just excludes the outer points.
	wantStatus(t, postJSON(t, ts.URL, "/indexes/m/points",
		`{"insert":[{"id":1,"x":0,"y":0},{"id":2,"x":1,"y":0},{"id":3,"x":5000,"y":5000},{"id":4,"x":5001,"y":5000}]}`),
		http.StatusOK)

	events := subscribeLines(t, ts.URL, `{"p":"m","self":true,"max_events":4}`)
	if len(events) != 5 {
		t.Fatalf("stream delivered %d events, want 5 (add x3, sync, end): %+v", len(events), events)
	}
	for i := 0; i < 3; i++ {
		if events[i].Event != "add" {
			t.Fatalf("replay event %d is %+v, want add", i, events[i])
		}
	}
	if events[3].Event != "sync" || events[3].Pairs == nil || *events[3].Pairs != 3 {
		t.Fatalf("sync event %+v, want pairs=3", events[3])
	}
	if events[4].Event != "end" || events[4].Reason != "max_events" {
		t.Fatalf("end event %+v, want reason max_events", events[4])
	}

	// Shape and mutability validation.
	wantStatus(t, postJSON(t, ts.URL, "/subscribe", `{"p":"m"}`), http.StatusBadRequest)
	wantStatus(t, postJSON(t, ts.URL, "/subscribe", `{"p":"m","q":"q","self":true}`), http.StatusBadRequest)
	wantStatus(t, postJSON(t, ts.URL, "/subscribe", `{"p":"p","q":"q"}`), http.StatusConflict)
	wantStatus(t, postJSON(t, ts.URL, "/subscribe", `{"p":"nope","self":true}`), http.StatusNotFound)
}

// TestSubscribeStreamsMutations subscribes first, then applies a batch and
// watches the adds arrive live on the open stream.
func TestSubscribeStreamsMutations(t *testing.T) {
	ts, srv := newTestServer(t, 100, sched.Config{MaxConcurrent: 2, MaxQueue: 4})
	if err := srv.LoadMutableIndex("m", "", -1, 0); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, ts.URL, "/subscribe", `{"p":"m","self":true,"max_events":4}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	readEvent := func() subscribeEvent {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var ev subscribeEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		return ev
	}
	if ev := readEvent(); ev.Event != "sync" || *ev.Pairs != 0 {
		t.Fatalf("initial event %+v, want empty sync", ev)
	}
	wantStatus(t, postJSON(t, ts.URL, "/indexes/m/points",
		`{"insert":[{"id":1,"x":0,"y":0},{"id":2,"x":1,"y":0}]}`), http.StatusOK)
	if ev := readEvent(); ev.Event != "add" || ev.PID == nil || ev.QID == nil ||
		*ev.PID+*ev.QID != 3 || *ev.PID == *ev.QID {
		t.Fatalf("live event %+v, want add of pair {1,2}", ev)
	}
	// The deletion path announces itself as a resync followed by the state.
	wantStatus(t, postJSON(t, ts.URL, "/indexes/m/points", `{"delete":[2]}`), http.StatusOK)
	if ev := readEvent(); ev.Event != "resync" {
		t.Fatalf("post-delete event %+v, want resync", ev)
	}
	if ev := readEvent(); ev.Event != "sync" || *ev.Pairs != 0 {
		t.Fatalf("post-resync sync %+v, want 0 pairs", ev)
	}
	if ev := readEvent(); ev.Event != "end" || ev.Reason != "max_events" {
		t.Fatalf("end event %+v", ev)
	}
}

// TestDaemonDrainsSubscriptions boots the full daemon with a live index,
// opens a subscription with no event bound, then cancels the run context:
// the drain must cancel the subscription and RunDaemon must return.
func TestDaemonDrainsSubscriptions(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrCh := make(chan string, 1)
	daemonErr := make(chan error, 1)
	go func() {
		daemonErr <- RunDaemon(ctx, DaemonConfig{
			Addr:        "127.0.0.1:0",
			LiveIndexes: map[string]string{"m": ""},
			Backend:     rcj.BackendMem,
			Sched:       sched.Config{MaxConcurrent: 2, MaxQueue: 4},
			Logf:        t.Logf,
		}, func(addr string) { addrCh <- addr })
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case err := <-daemonErr:
		t.Fatalf("daemon died before ready: %v", err)
	}

	resp := postJSON(t, base, "/subscribe", `{"p":"m","self":true}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no initial sync: %v", sc.Err())
	}

	cancel() // the SIGTERM path
	select {
	case err := <-daemonErr:
		if err != nil {
			t.Fatalf("drain with open subscription: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not drain while a subscription was open")
	}
	// The stream ended with a cancellation marker (best-effort: the socket
	// may already be closed, in which case the scan just stops).
	var last subscribeEvent
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			break
		}
	}
	if last.Event == "end" && last.Reason != "cancelled" && last.Reason != "closed" {
		t.Fatalf("end reason %q, want cancelled/closed", last.Reason)
	}

	// New subscriptions after drain start are rejected (the daemon exited,
	// so just confirm the connection fails rather than hangs).
	if _, err := http.Post(base+"/subscribe", "application/json", strings.NewReader(`{"p":"m","self":true}`)); err == nil {
		t.Log("post-drain subscribe unexpectedly connected (listener race); acceptable")
	}
}

// TestMutationInvalidatesResultCache pins the cache-key contract: a cached
// bounded query result must not survive a mutation of its index.
func TestMutationInvalidatesResultCache(t *testing.T) {
	pPath, qPath, _, _ := buildSavedIndexes(t, 200)
	_ = qPath
	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 1024})
	srv := New(sched.New(eng, sched.Config{MaxConcurrent: 2, MaxQueue: 4}),
		Config{Backend: rcj.BackendFile, ResultCacheEntries: 16, ResultCachePairs: 64})
	defer srv.Close()
	if err := srv.LoadMutableIndex("m", pPath, -1, 0); err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	run := func() string {
		resp := postJSON(t, ts, "/join", `{"p":"m","self":true,"top_k":5}`)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("join: status %d", resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	first := run()
	second := run() // cache hit: byte-identical replay
	if !strings.Contains(first, `"summary"`) {
		t.Fatalf("join response lacks summary: %s", first)
	}

	// Mutate: the epoch folds into the cache key, so the stale entry is
	// unreachable and the query re-executes against the new point set.
	wantStatus(t, postJSON(t, ts, "/indexes/m/points", `{"insert":[{"id":9001,"x":0.5,"y":0.5},{"id":9002,"x":0.6,"y":0.5}]}`), http.StatusOK)
	third := run()
	if third == second {
		t.Fatal("top-k result unchanged after inserting an adjacent pair: stale cache hit")
	}

	stats := srv.cache.snapshot()
	if stats.Hits == 0 {
		t.Fatalf("no cache hit across identical queries (stats %+v)", stats)
	}
}

// newHTTPServer mounts srv on a listener and returns its base URL.
func newHTTPServer(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
