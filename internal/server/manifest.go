// Manifest-aware index loading: a worker in a sharded deployment loads a
// subset of a shard manifest (internal/shard) instead of naming individual
// .rcjx files. Each loaded shard registers its side indexes under the
// conventional names the router addresses ("s<id>.p", "s<id>.q") and
// advertises its owned cell on GET /indexes.
package server

import (
	"errors"
	"fmt"

	"repro/internal/shard"
)

// shardMeta records the partition identity of a manifest-loaded index, the
// extra columns GET /indexes advertises for it.
type shardMeta struct {
	manifest string // manifest name, not path: the deployment label
	id       int
	cell     shard.Rect
}

// LoadManifestShards loads the listed shards (nil = every populated shard)
// of the manifest at path, registering each shard's indexes as
// "s<id>.p"/"s<id>.q". base, when non-empty, rebases the manifest's
// relative shard paths (typically onto an http(s) origin, so the worker
// serves shards straight from object storage via the range pager).
// Returns the registered index names; on any failure every index this call
// had already registered is unloaded again.
func (s *Server) LoadManifestShards(path string, ids []int, base string) ([]string, error) {
	m, err := shard.Load(path)
	if err != nil {
		return nil, err
	}
	if ids == nil {
		for _, sh := range m.Shards {
			if !sh.Empty() {
				ids = append(ids, sh.ID)
			}
		}
	}
	var loaded []string
	rollback := func() {
		for _, name := range loaded {
			s.UnloadIndex(name)
		}
	}
	for _, id := range ids {
		if id < 0 || id >= len(m.Shards) {
			rollback()
			return nil, fmt.Errorf("server: manifest %s has no shard %d (0..%d)", path, id, len(m.Shards)-1)
		}
		sh := m.Shards[id]
		if sh.Empty() {
			rollback()
			return nil, fmt.Errorf("server: shard %d of %s owns no points", id, path)
		}
		sides := []struct{ side, src string }{{"p", sh.P}}
		if !m.Self {
			sides = append(sides, struct{ side, src string }{"q", sh.Q})
		}
		for _, sd := range sides {
			name := shard.IndexName(id, sd.side)
			src := shard.ResolveSource(path, sd.src, base)
			meta := &shardMeta{manifest: m.Name, id: id, cell: sh.Cell}
			if err := s.loadIndex(name, src, meta); err != nil {
				rollback()
				return nil, fmt.Errorf("shard %d (%s): %w", id, src, err)
			}
			loaded = append(loaded, name)
		}
	}
	return loaded, nil
}

// loadIndex is LoadIndex with optional shard metadata attached to the
// registration.
func (s *Server) loadIndex(name, path string, meta *shardMeta) error {
	if name == "" {
		return errors.New("server: index name must not be empty")
	}
	s.mu.RLock()
	_, dup := s.indexes[name]
	s.mu.RUnlock()
	if dup {
		return fmt.Errorf("%w: %q", ErrIndexExists, name)
	}
	ix, err := s.sched.Engine().OpenIndex(path, rcjIndexConfig(s.backend))
	if err != nil {
		return err
	}
	s.mu.Lock()
	if _, ok := s.indexes[name]; ok {
		s.mu.Unlock()
		ix.Close()
		return fmt.Errorf("%w: %q", ErrIndexExists, name)
	}
	s.nextGen++
	s.indexes[name] = &indexEntry{ix: ix, path: path, backend: ix.Backend(), gen: s.nextGen, shard: meta}
	s.mu.Unlock()
	return nil
}
