package server

import (
	"math"
	"strconv"
	"sync"

	"repro/rcj"
)

// Pooled result-line encoding. The /join hot loop used to push every pair
// through a fresh reflection pass in encoding/json (and an fmt.Fprintf for
// CSV), allocating per line; a streamed join emits millions of lines, so
// the encoder is serving-path CPU. These appenders build each line into a
// sync.Pool'd buffer with strconv only — zero allocations per line in
// steady state — while producing byte-identical output: appendJSONFloat
// replicates encoding/json's float encoding exactly (verified against
// json.Marshal in the tests), so clients, goldens, and the CI byte-diff
// gates cannot tell the difference.

// lineBufPool recycles per-line scratch buffers across requests. One line
// is at most ~140 bytes (five numbers plus punctuation); the initial 256
// covers it without regrowth.
var lineBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

func getLineBuf() *[]byte {
	b := lineBufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

func putLineBuf(b *[]byte) {
	// Don't pool a buffer that grew pathologically (it cannot, today, but a
	// wider line format later should not pin big allocations forever).
	if cap(*b) > 4096 {
		return
	}
	lineBufPool.Put(b)
}

// appendJSONFloat appends f exactly as encoding/json encodes a float64:
// shortest round-trip form, 'f' notation except for magnitudes below 1e-6
// or at least 1e21 (which use 'e'), and a negative exponent's padding zero
// trimmed ("1e-09" becomes "1e-9"; positive exponents keep theirs). Kept in
// lockstep with encoding/json's floatEncoder.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// encoding/json cleans "e-09" up to "e-9" (one-digit exponents keep
		// no padding zero).
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendPairNDJSON appends one pairLine exactly as json.Encoder would
// (field order fixed by the struct, trailing newline included).
func appendPairNDJSON(b []byte, pr rcj.Pair) []byte {
	b = append(b, `{"p_id":`...)
	b = strconv.AppendInt(b, pr.P.ID, 10)
	b = append(b, `,"q_id":`...)
	b = strconv.AppendInt(b, pr.Q.ID, 10)
	b = append(b, `,"cx":`...)
	b = appendJSONFloat(b, pr.Center.X)
	b = append(b, `,"cy":`...)
	b = appendJSONFloat(b, pr.Center.Y)
	b = append(b, `,"r":`...)
	b = appendJSONFloat(b, pr.Radius)
	b = append(b, '}', '\n')
	return b
}

// appendPairCSV appends one CSV row in the /join CSV format: ids, then the
// center and radius with six fixed decimals.
func appendPairCSV(b []byte, pr rcj.Pair) []byte {
	b = strconv.AppendInt(b, pr.P.ID, 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, pr.Q.ID, 10)
	b = append(b, ',')
	b = strconv.AppendFloat(b, pr.Center.X, 'f', 6, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, pr.Center.Y, 'f', 6, 64)
	b = append(b, ',')
	b = strconv.AppendFloat(b, pr.Radius, 'f', 6, 64)
	b = append(b, '\n')
	return b
}

// AppendPairCSV and AppendPairNDJSON are the exported forms of the pooled
// line encoders: the scatter-gather router re-emits worker rows to its own
// clients and must produce byte-identical lines (the CI gates diff router
// output against rcjjoin directly).
func AppendPairCSV(b []byte, pr rcj.Pair) []byte { return appendPairCSV(b, pr) }

// AppendPairNDJSON appends one NDJSON result row; see AppendPairCSV.
func AppendPairNDJSON(b []byte, pr rcj.Pair) []byte { return appendPairNDJSON(b, pr) }
