// Package cost implements the paper's execution-time model (Section 5): the
// total cost of an algorithm decomposes into I/O time — page faults charged
// at 10 ms each, "a typical value" — and CPU time, which "roughly models the
// total number (including repeated) of R-tree node accesses". The harness
// derives I/O time from the buffer pool's fault counter and measures CPU
// time as wall time minus the pool's measured miss-load wait, so backends
// whose faults take real time (file, mmap, HTTP) are charged once — at the
// modeled rate — rather than both modeled and measured.
package cost

import (
	"fmt"
	"time"

	"repro/internal/buffer"
)

// PageFaultCost is the charge per page fault, following the paper.
const PageFaultCost = 10 * time.Millisecond

// ExpectedUniformResultSize is the closed-form RCJ result-size model for
// independent uniform (Poisson) inputs, addressing the paper's open
// question on the theoretical result cardinality (Section 6).
//
// Model: for intensities λP = nP/A and λQ = nQ/A, a pair at distance s
// qualifies iff the disk of diameter s (area πs²/4) is empty of the other
// nP+nQ−2 points, which for a Poisson process has probability
// exp(−(λP+λQ)πs²/4). Integrating over the distance distribution of all
// nP·nQ pairs:
//
//	E|RCJ| = λP·λQ·A ∫₀^∞ 2πs·exp(−(λP+λQ)πs²/4) ds = 4·nP·nQ/(nP+nQ).
//
// The area cancels: the expectation depends only on the cardinalities. The
// formula reproduces the paper's empirical findings exactly — linear growth
// in n for |P| = |Q| = n (E = 2n, Figure 16) and maximization at the
// balanced cardinality split for fixed nP+nQ (Figure 17). Boundary effects
// make finite-domain measurements run a few percent below it.
func ExpectedUniformResultSize(nP, nQ int) float64 {
	if nP <= 0 || nQ <= 0 {
		return 0
	}
	return 4 * float64(nP) * float64(nQ) / float64(nP+nQ)
}

// Breakdown is the measured cost of one algorithm run.
type Breakdown struct {
	// IOTime is Faults × PageFaultCost, the paper's modeled I/O charge.
	IOTime time.Duration
	// CPUTime is the measured computation time of the run: wall time minus
	// MeasuredIO. On backends where faults take real time (file, mmap,
	// HTTP) this keeps fetch latency out of the CPU column, so Total does
	// not charge it twice — once as wall time and once as the modeled
	// 10 ms/fault. Clamped at zero when concurrent loads overlap enough
	// that their summed waits exceed wall time.
	CPUTime time.Duration
	// MeasuredIO is the real time the run spent blocked in pager loads
	// (buffer misses), summed across workers. Zero for purely in-memory
	// pagers, where the modeled IOTime is the only I/O estimate.
	MeasuredIO time.Duration
	// Faults is the number of page faults (buffer misses).
	Faults int64
	// NodeAccesses is the number of logical R-tree node accesses,
	// including buffer hits.
	NodeAccesses int64
}

// Total returns modeled I/O plus CPU time.
func (b Breakdown) Total() time.Duration { return b.IOTime + b.CPUTime }

// FaultLatency returns the measured mean wait per page fault, or zero when
// the run had no faults. It is the planner's calibration signal: when
// nonzero it replaces the paper's fixed PageFaultCost with what this
// backend actually charges.
func (b Breakdown) FaultLatency() time.Duration {
	if b.Faults == 0 {
		return 0
	}
	return b.MeasuredIO / time.Duration(b.Faults)
}

// String formats the breakdown the way the paper's bar charts decompose it.
func (b Breakdown) String() string {
	return fmt.Sprintf("total=%v (io=%v cpu=%v measured_io=%v faults=%d accesses=%d)",
		b.Total().Round(time.Millisecond), b.IOTime.Round(time.Millisecond),
		b.CPUTime.Round(time.Millisecond), b.MeasuredIO.Round(time.Millisecond),
		b.Faults, b.NodeAccesses)
}

// Meter snapshots a buffer pool's counters so a run's deltas can be
// converted into a Breakdown.
type Meter struct {
	pool  *buffer.Pool
	base  buffer.Stats
	start time.Time
}

// NewMeter starts measuring against the pool's current counters.
func NewMeter(pool *buffer.Pool) *Meter {
	return &Meter{pool: pool, base: pool.Stats(), start: time.Now()}
}

// Stop returns the cost accumulated since NewMeter. The run's real I/O
// wait (the pool's accumulated miss-load time) is subtracted from wall
// time before it is reported as CPUTime, so backends with synchronous
// fault latency are not double-counted against the modeled per-fault
// charge.
func (m *Meter) Stop() Breakdown {
	elapsed := time.Since(m.start)
	now := m.pool.Stats()
	faults := now.Misses - m.base.Misses
	measured := time.Duration(now.LoadNanos - m.base.LoadNanos)
	cpu := elapsed - measured
	if cpu < 0 {
		cpu = 0
	}
	return Breakdown{
		IOTime:       time.Duration(faults) * PageFaultCost,
		CPUTime:      cpu,
		MeasuredIO:   measured,
		Faults:       faults,
		NodeAccesses: now.Accesses - m.base.Accesses,
	}
}
