package cost

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/storage"
)

func TestBreakdownTotalsAndString(t *testing.T) {
	b := Breakdown{IOTime: 30 * time.Millisecond, CPUTime: 20 * time.Millisecond, Faults: 3, NodeAccesses: 10}
	if b.Total() != 50*time.Millisecond {
		t.Fatalf("total %v", b.Total())
	}
	s := b.String()
	for _, want := range []string{"total=50ms", "io=30ms", "cpu=20ms", "faults=3", "accesses=10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestMeterConvertsFaults(t *testing.T) {
	pool := buffer.NewPool(1)
	k1 := buffer.Key{Owner: 1, Page: storage.PageID(1)}
	k2 := buffer.Key{Owner: 1, Page: storage.PageID(2)}
	load := func() (any, error) { return 0, nil }

	// Warm one page, then meter a trace with a known fault pattern.
	pool.Get(k1, load)
	m := NewMeter(pool)
	pool.Get(k1, load) // hit
	pool.Get(k2, load) // miss (evicts k1)
	pool.Get(k1, load) // miss again
	b := m.Stop()
	if b.Faults != 2 {
		t.Fatalf("faults %d, want 2", b.Faults)
	}
	if b.NodeAccesses != 3 {
		t.Fatalf("accesses %d, want 3", b.NodeAccesses)
	}
	if b.IOTime != 2*PageFaultCost {
		t.Fatalf("io time %v, want %v", b.IOTime, 2*PageFaultCost)
	}
	if b.CPUTime <= 0 {
		t.Fatalf("cpu time %v", b.CPUTime)
	}
}

// TestMeterSeparatesMeasuredIO pins the I/O double-count regression: on a
// backend whose faults take real time, fetch latency used to land in
// CPUTime (Stop reported raw wall time) while each fault was *also*
// charged the modeled 10 ms, so Total() billed every slow fetch twice.
// The harness below plays a slow, flaky origin — every load sleeps, and
// some attempts fail before a retry succeeds — and requires the wait to
// land in MeasuredIO with CPUTime reduced to the residual compute.
func TestMeterSeparatesMeasuredIO(t *testing.T) {
	const (
		pages = 4
		delay = 4 * time.Millisecond
	)
	errTransient := errors.New("origin hiccup")
	pool := buffer.NewPool(-1)
	attempts := 0
	load := func() (any, error) {
		attempts++
		time.Sleep(delay) // origin RTT, paid on failures too
		if attempts%2 == 1 {
			return nil, errTransient
		}
		return 0, nil
	}

	m := NewMeter(pool)
	faults := int64(0)
	for i := 0; i < pages; i++ {
		k := buffer.Key{Owner: 1, Page: storage.PageID(i)}
		for { // caller-side retry loop, as a remote pager's caller would run
			_, err := pool.Get(k, load)
			faults++
			if err == nil {
				break
			}
			if !errors.Is(err, errTransient) {
				t.Fatal(err)
			}
		}
	}
	b := m.Stop()

	if b.Faults != faults {
		t.Fatalf("faults %d, want %d", b.Faults, faults)
	}
	// Every attempt slept, so the measured wait must cover all of them.
	if want := time.Duration(attempts) * delay; b.MeasuredIO < want {
		t.Fatalf("measured io %v, want >= %v (attempts=%d)", b.MeasuredIO, want, attempts)
	}
	// The regression: CPUTime used to be wall time, i.e. >= all the sleeps.
	// Now it is the residual compute, which must be well under the I/O wait.
	if b.CPUTime >= b.MeasuredIO {
		t.Fatalf("cpu %v >= measured io %v: fetch latency still billed as CPU", b.CPUTime, b.MeasuredIO)
	}
	// Modeled I/O stays the paper's per-fault charge, independent of the
	// measured wait — Total() is modeled I/O + compute, not + wall I/O.
	if b.IOTime != time.Duration(faults)*PageFaultCost {
		t.Fatalf("io time %v, want %v", b.IOTime, time.Duration(faults)*PageFaultCost)
	}
	if b.Total() != b.IOTime+b.CPUTime {
		t.Fatalf("total %v != io %v + cpu %v", b.Total(), b.IOTime, b.CPUTime)
	}
	if got := b.FaultLatency(); got < delay {
		t.Fatalf("fault latency %v, want >= %v", got, delay)
	}
}

func TestMeterIsolation(t *testing.T) {
	pool := buffer.NewPool(-1)
	load := func() (any, error) { return 0, nil }
	// Prior activity must not leak into a fresh meter.
	for i := 0; i < 10; i++ {
		pool.Get(buffer.Key{Owner: 1, Page: storage.PageID(i)}, load)
	}
	m := NewMeter(pool)
	b := m.Stop()
	if b.Faults != 0 || b.NodeAccesses != 0 {
		t.Fatalf("fresh meter saw prior activity: %+v", b)
	}
}

func TestExpectedUniformResultSize(t *testing.T) {
	// Equal sizes: E = 2n (the paper's linear growth, Figure 16).
	if got := ExpectedUniformResultSize(1000, 1000); got != 2000 {
		t.Fatalf("E(1000,1000)=%g, want 2000", got)
	}
	// Fixed total: maximized at the balanced split (Figure 17).
	balanced := ExpectedUniformResultSize(200, 200)
	for _, split := range [][2]int{{80, 320}, {133, 267}, {320, 80}} {
		if e := ExpectedUniformResultSize(split[0], split[1]); e >= balanced {
			t.Fatalf("E(%d,%d)=%g >= balanced %g", split[0], split[1], e, balanced)
		}
	}
	// Symmetry and edge cases.
	if ExpectedUniformResultSize(3, 7) != ExpectedUniformResultSize(7, 3) {
		t.Fatal("asymmetric")
	}
	if ExpectedUniformResultSize(0, 10) != 0 || ExpectedUniformResultSize(-1, 10) != 0 {
		t.Fatal("degenerate inputs")
	}
}
