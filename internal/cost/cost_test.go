package cost

import (
	"strings"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/storage"
)

func TestBreakdownTotalsAndString(t *testing.T) {
	b := Breakdown{IOTime: 30 * time.Millisecond, CPUTime: 20 * time.Millisecond, Faults: 3, NodeAccesses: 10}
	if b.Total() != 50*time.Millisecond {
		t.Fatalf("total %v", b.Total())
	}
	s := b.String()
	for _, want := range []string{"total=50ms", "io=30ms", "cpu=20ms", "faults=3", "accesses=10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestMeterConvertsFaults(t *testing.T) {
	pool := buffer.NewPool(1)
	k1 := buffer.Key{Owner: 1, Page: storage.PageID(1)}
	k2 := buffer.Key{Owner: 1, Page: storage.PageID(2)}
	load := func() (any, error) { return 0, nil }

	// Warm one page, then meter a trace with a known fault pattern.
	pool.Get(k1, load)
	m := NewMeter(pool)
	pool.Get(k1, load) // hit
	pool.Get(k2, load) // miss (evicts k1)
	pool.Get(k1, load) // miss again
	b := m.Stop()
	if b.Faults != 2 {
		t.Fatalf("faults %d, want 2", b.Faults)
	}
	if b.NodeAccesses != 3 {
		t.Fatalf("accesses %d, want 3", b.NodeAccesses)
	}
	if b.IOTime != 2*PageFaultCost {
		t.Fatalf("io time %v, want %v", b.IOTime, 2*PageFaultCost)
	}
	if b.CPUTime <= 0 {
		t.Fatalf("cpu time %v", b.CPUTime)
	}
}

func TestMeterIsolation(t *testing.T) {
	pool := buffer.NewPool(-1)
	load := func() (any, error) { return 0, nil }
	// Prior activity must not leak into a fresh meter.
	for i := 0; i < 10; i++ {
		pool.Get(buffer.Key{Owner: 1, Page: storage.PageID(i)}, load)
	}
	m := NewMeter(pool)
	b := m.Stop()
	if b.Faults != 0 || b.NodeAccesses != 0 {
		t.Fatalf("fresh meter saw prior activity: %+v", b)
	}
}

func TestExpectedUniformResultSize(t *testing.T) {
	// Equal sizes: E = 2n (the paper's linear growth, Figure 16).
	if got := ExpectedUniformResultSize(1000, 1000); got != 2000 {
		t.Fatalf("E(1000,1000)=%g, want 2000", got)
	}
	// Fixed total: maximized at the balanced split (Figure 17).
	balanced := ExpectedUniformResultSize(200, 200)
	for _, split := range [][2]int{{80, 320}, {133, 267}, {320, 80}} {
		if e := ExpectedUniformResultSize(split[0], split[1]); e >= balanced {
			t.Fatalf("E(%d,%d)=%g >= balanced %g", split[0], split[1], e, balanced)
		}
	}
	// Symmetry and edge cases.
	if ExpectedUniformResultSize(3, 7) != ExpectedUniformResultSize(7, 3) {
		t.Fatal("asymmetric")
	}
	if ExpectedUniformResultSize(0, 10) != 0 || ExpectedUniformResultSize(-1, 10) != 0 {
		t.Fatal("degenerate inputs")
	}
}
