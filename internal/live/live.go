// Package live implements the updatable-index epoch model: an in-memory
// delta R-tree over a sealed immutable base, merged transparently at query
// time, with a compactor that seals delta+base into a new base generation.
//
// The paper's serving scenario is a living one — restaurants and residences
// appear (and close) over time — but every index the daemon serves is
// immutable-by-contract. This package bridges the two without giving up the
// immutable read path:
//
//   - The authoritative state is a point set mutated in batches. Each batch
//     produces a fresh immutable epoch: the sealed base (unchanged), a
//     rebuilt delta R-tree over the points not yet in the base, and a
//     tombstone set masking base points that have been deleted. Epochs are
//     RCU-style: readers pin the epoch current at query start and are never
//     affected by later mutations; writers swap the current-epoch pointer
//     under a mutex.
//
//   - Queries see one merged R-tree (see merged.go): base pages are served
//     verbatim (minus tombstoned points), delta pages are mapped into a
//     disjoint virtual page-id range, and a synthetic root joins the two.
//     All of the executor's pruning is conservative under the possibly
//     inflated base MBRs except the verification face rule, which callers
//     must disable while tombstones exist (Snapshot.DisableFaceRule).
//
//   - When the delta+tombstone load crosses Config.CompactEvery, a
//     background compaction seals the full current point set (sorted by ID,
//     so the STR build is reproducible byte-for-byte) into a new base via
//     Config.Seal, then reconciles: mutations that raced the seal stay in
//     the next epoch's delta/tombstones. The old base retires and is closed
//     once the last in-flight query releases it.
//
// Subscriptions observe mutations through bounded feeds (NewFeed): each
// Apply publishes one Update to every feed, non-blocking; a feed whose
// buffer is full is shed (closed) rather than allowed to stall writers.
package live

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// Typed mutation errors. Batches are atomic: any invalid member rejects the
// whole batch with no state change.
var (
	// ErrClosed is returned by operations on a closed index.
	ErrClosed = errors.New("live: index closed")
	// ErrDuplicateID rejects an insert whose ID is already present.
	ErrDuplicateID = errors.New("live: duplicate point ID")
	// ErrUnknownID rejects a delete whose ID is not present.
	ErrUnknownID = errors.New("live: unknown point ID")
)

// DefaultCompactEvery is the delta+tombstone load that triggers a background
// compaction when Config.CompactEvery is zero.
const DefaultCompactEvery = 4096

// Base is one sealed, immutable generation of a live index: the tree the
// merged view reads base pages from, and how to release it once the last
// epoch referencing it has drained. A zero Tree means an empty base (an
// index born from nothing but inserts).
type Base struct {
	Tree  *rtree.Tree
	Count int
	// Path is where this generation is persisted ("" = memory-only).
	Path string
	// Close releases the generation's pager/pool/cache resources; nil is
	// treated as a no-op.
	Close func() error
}

// sealed wraps a Base with reference counting: queries acquire the base of
// their pinned epoch and release it when the traversal completes; a
// compaction retires the old base, which is closed once refs drain.
type sealed struct {
	mu      sync.Mutex
	refs    int
	retired bool
	closed  bool
	b       Base
}

func (s *sealed) acquire() {
	s.mu.Lock()
	s.refs++
	s.mu.Unlock()
}

func (s *sealed) release() {
	s.mu.Lock()
	s.refs--
	drop := s.retired && s.refs == 0 && !s.closed
	if drop {
		s.closed = true
	}
	s.mu.Unlock()
	if drop && s.b.Close != nil {
		s.b.Close()
	}
}

func (s *sealed) retire() {
	s.mu.Lock()
	s.retired = true
	drop := s.refs == 0 && !s.closed
	if drop {
		s.closed = true
	}
	s.mu.Unlock()
	if drop && s.b.Close != nil {
		s.b.Close()
	}
}

// epoch is one immutable snapshot of the index: sealed base + delta tree +
// tombstones. Readers pin an epoch and never see later mutations.
type epoch struct {
	seq    uint64
	base   *sealed
	delta  *rtree.Tree // nil when the delta set is empty
	deltaN int
	tombs  map[int64]struct{} // base point IDs masked out of reads
}

// Config parameterizes a live index.
type Config struct {
	// PageSize is the page size of delta trees and sealed generations
	// (default storage.DefaultPageSize).
	PageSize int
	// CompactEvery triggers a background compaction once the delta point
	// count plus tombstone count reaches it; 0 selects DefaultCompactEvery,
	// negative disables auto-compaction (Compact can still be called).
	CompactEvery int
	// Seal builds one new sealed generation from the full current point set
	// (pre-sorted by ascending ID, so the STR bulk load is reproducible) at
	// epoch seq. Supplied by the rcj layer, which owns index construction
	// and persistence. Required.
	Seal func(points []rtree.PointEntry, seq uint64) (Base, error)
	// OnCompactError, when non-nil, observes background compaction failures
	// (which otherwise only surface as a counter: the index keeps serving
	// from the un-compacted epoch).
	OnCompactError func(error)
}

// Index is the mutable live index: an authoritative point set served
// through immutable epochs. All methods are safe for concurrent use.
type Index struct {
	cfg Config

	mu      sync.Mutex
	cur     *epoch
	points  map[int64]geom.Point // authoritative current set
	baseIDs map[int64]geom.Point // id → coords as stored in the sealed base
	delta   map[int64]geom.Point // current \ base (plus moved points)
	tombs   map[int64]struct{}   // base ids not current (or superseded)
	feeds   map[*Feed]struct{}
	closed  bool

	compacting bool // an auto-compaction goroutine is scheduled/running
	compactMu  sync.Mutex
	wg         sync.WaitGroup

	inserts, deletes     int64
	compactions          int64
	compactFailures      int64
	compactNanos         int64
	lastCompactNanos     int64
	shedFeeds            int64
	appliedBatches       int64
	lastGenerationPath   string
	lastGenerationPoints int
}

// New wraps a sealed base into a live index. The base's points become the
// initial epoch; an empty Base{} starts the index from nothing.
func New(base Base, cfg Config) (*Index, error) {
	if cfg.Seal == nil {
		return nil, errors.New("live: Config.Seal is required")
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = storage.DefaultPageSize
	}
	baseIDs := make(map[int64]geom.Point)
	if base.Tree != nil {
		if base.Tree.Root() >= deltaPageBase && base.Tree.Root() != storage.InvalidPageID {
			return nil, fmt.Errorf("live: base tree page ids exceed the virtual page space (root %d)", base.Tree.Root())
		}
		entries, err := base.Tree.ScanAll()
		if err != nil {
			return nil, fmt.Errorf("live: scan base: %w", err)
		}
		for _, e := range entries {
			if _, dup := baseIDs[e.ID]; dup {
				return nil, fmt.Errorf("live: base holds duplicate point ID %d", e.ID)
			}
			baseIDs[e.ID] = e.P
		}
	}
	points := make(map[int64]geom.Point, len(baseIDs))
	for id, p := range baseIDs {
		points[id] = p
	}
	ix := &Index{
		cfg:                  cfg,
		points:               points,
		baseIDs:              baseIDs,
		delta:                map[int64]geom.Point{},
		tombs:                map[int64]struct{}{},
		feeds:                map[*Feed]struct{}{},
		lastGenerationPath:   base.Path,
		lastGenerationPoints: len(baseIDs),
	}
	ix.cur = &epoch{seq: 0, base: &sealed{b: base}}
	return ix, nil
}

// Update is one applied mutation batch as published to subscription feeds.
// Slices are private copies; receivers may retain them.
type Update struct {
	Seq uint64
	Ins []rtree.PointEntry
	Del []rtree.PointEntry // deleted points with their last coordinates
}

// Apply atomically applies one batch of inserts and deletes, returning the
// new epoch sequence. The batch is validated first — duplicate insert IDs
// (against the current set or within the batch), unknown delete IDs, or an
// ID both inserted and deleted reject the whole batch unchanged.
func (ix *Index) Apply(ins []rtree.PointEntry, del []int64) (uint64, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return 0, ErrClosed
	}
	if len(ins) == 0 && len(del) == 0 {
		return ix.cur.seq, nil
	}

	// Validate the whole batch before touching state.
	delSet := make(map[int64]struct{}, len(del))
	for _, id := range del {
		if _, ok := ix.points[id]; !ok {
			return 0, fmt.Errorf("%w: delete %d", ErrUnknownID, id)
		}
		if _, dup := delSet[id]; dup {
			return 0, fmt.Errorf("%w: delete %d twice in one batch", ErrUnknownID, id)
		}
		delSet[id] = struct{}{}
	}
	insSet := make(map[int64]struct{}, len(ins))
	for _, e := range ins {
		if _, dup := insSet[e.ID]; dup {
			return 0, fmt.Errorf("%w: insert %d twice in one batch", ErrDuplicateID, e.ID)
		}
		if _, conflict := delSet[e.ID]; conflict {
			return 0, fmt.Errorf("%w: point %d both inserted and deleted in one batch", ErrDuplicateID, e.ID)
		}
		if _, ok := ix.points[e.ID]; ok {
			return 0, fmt.Errorf("%w: insert %d", ErrDuplicateID, e.ID)
		}
		insSet[e.ID] = struct{}{}
	}

	// Stage the batch on copies of the (small) delta/tombstone mirrors, so a
	// failed delta build leaves the index byte-for-byte unchanged. The
	// authoritative points map is only touched at commit, which cannot fail.
	newDelta := clonePointMap(ix.delta)
	newTombs := copyIDSet(ix.tombs)
	delPts := make([]rtree.PointEntry, 0, len(del))
	for _, id := range del {
		delPts = append(delPts, rtree.PointEntry{P: ix.points[id], ID: id})
		delete(newDelta, id)
		if _, inBase := ix.baseIDs[id]; inBase {
			newTombs[id] = struct{}{}
		}
	}
	for _, e := range ins {
		// A base ID deleted and re-inserted stays tombstoned: the base holds
		// the stale copy, the delta the live one.
		newDelta[e.ID] = e.P
	}
	deltaTree, err := ix.buildDeltaTree(newDelta)
	if err != nil {
		return 0, err
	}

	// Commit.
	for _, e := range delPts {
		delete(ix.points, e.ID)
	}
	insPts := make([]rtree.PointEntry, 0, len(ins))
	for _, e := range ins {
		ix.points[e.ID] = e.P
		insPts = append(insPts, e)
	}
	ix.delta = newDelta
	ix.tombs = newTombs
	ix.inserts += int64(len(ins))
	ix.deletes += int64(len(del))
	ix.appliedBatches++
	ix.cur = &epoch{
		seq:    ix.cur.seq + 1,
		base:   ix.cur.base,
		delta:  deltaTree,
		deltaN: len(newDelta),
		tombs:  copyIDSet(newTombs),
	}
	ix.publishLocked(Update{Seq: ix.cur.seq, Ins: insPts, Del: delPts})
	ix.maybeCompactLocked()
	return ix.cur.seq, nil
}

// buildDeltaTree bulk-loads a private in-memory tree over one delta set,
// sorted by ID for a deterministic STR build. The tree is immutable once
// built (epochs never mutate their delta in place: the tree's node writes
// go through its pool, so in-place mutation would race concurrent snapshot
// readers), and is garbage-collected with its epoch.
func (ix *Index) buildDeltaTree(delta map[int64]geom.Point) (*rtree.Tree, error) {
	if len(delta) == 0 {
		return nil, nil
	}
	entries := sortedEntries(delta)
	tree, err := rtree.New(storage.NewMemPager(ix.cfg.PageSize), buffer.NewPool(-1), rtree.Config{PageSize: ix.cfg.PageSize})
	if err != nil {
		return nil, err
	}
	if err := tree.BulkLoad(entries, 0); err != nil {
		return nil, err
	}
	if tree.Root() >= deltaPageBase {
		return nil, fmt.Errorf("live: delta tree overflows the virtual page space")
	}
	return tree, nil
}

// maybeCompactLocked schedules a background compaction when the combined
// delta+tombstone load crosses the threshold. Caller holds ix.mu.
func (ix *Index) maybeCompactLocked() {
	every := ix.cfg.CompactEvery
	if every == 0 {
		every = DefaultCompactEvery
	}
	if every < 0 || ix.compacting || len(ix.delta)+len(ix.tombs) < every {
		return
	}
	ix.compacting = true
	ix.wg.Add(1)
	go func() {
		defer ix.wg.Done()
		err := ix.Compact()
		ix.mu.Lock()
		ix.compacting = false
		// Mutations kept arriving while we sealed; re-check the threshold so
		// a sustained write load cannot outrun a one-shot trigger.
		if err == nil && !ix.closed {
			ix.maybeCompactLocked()
		}
		ix.mu.Unlock()
		if err != nil && !errors.Is(err, ErrClosed) && ix.cfg.OnCompactError != nil {
			ix.cfg.OnCompactError(err)
		}
	}()
}

// Compact synchronously seals the current point set into a new base
// generation and installs an epoch whose delta holds only the mutations
// that raced the seal. Concurrent Compact calls serialize; compacting an
// index with an empty delta and no tombstones is a no-op.
func (ix *Index) Compact() error {
	ix.compactMu.Lock()
	defer ix.compactMu.Unlock()

	// Snapshot the point set. Mutations after this line land in the
	// reconciled delta below.
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return ErrClosed
	}
	if len(ix.delta) == 0 && len(ix.tombs) == 0 {
		ix.mu.Unlock()
		return nil
	}
	snap := sortedEntries(ix.points)
	genSeq := ix.cur.seq
	ix.mu.Unlock()

	// Seal outside the lock: bulk build + file write are the expensive part
	// and must not pause writers or readers.
	start := time.Now()
	nb, err := ix.cfg.Seal(snap, genSeq)
	elapsed := time.Since(start)
	if err != nil {
		ix.mu.Lock()
		ix.compactFailures++
		ix.mu.Unlock()
		return fmt.Errorf("live: seal generation %d: %w", genSeq, err)
	}
	newBase := &sealed{b: nb}

	// Reconcile under the lock: whatever changed since the snapshot becomes
	// the new delta/tombstones over the new base.
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		newBase.retire()
		return ErrClosed
	}
	newBaseIDs := make(map[int64]geom.Point, len(snap))
	for _, e := range snap {
		newBaseIDs[e.ID] = e.P
	}
	newDelta := map[int64]geom.Point{}
	newTombs := map[int64]struct{}{}
	for id, p := range ix.points {
		if bp, ok := newBaseIDs[id]; !ok || bp != p {
			newDelta[id] = p
			if ok {
				// Deleted and re-inserted elsewhere while sealing: the new
				// base holds the stale copy.
				newTombs[id] = struct{}{}
			}
		}
	}
	for id := range newBaseIDs {
		if _, ok := ix.points[id]; !ok {
			newTombs[id] = struct{}{}
		}
	}
	deltaTree, err := ix.buildDeltaTree(newDelta)
	if err != nil {
		// The epoch could not be built over the new base; keep serving the
		// old one, untouched.
		ix.compactFailures++
		ix.mu.Unlock()
		newBase.retire()
		return err
	}
	oldBase := ix.cur.base
	ix.baseIDs = newBaseIDs
	ix.delta = newDelta
	ix.tombs = newTombs
	ix.cur = &epoch{
		seq:    ix.cur.seq + 1,
		base:   newBase,
		delta:  deltaTree,
		deltaN: len(newDelta),
		tombs:  copyIDSet(newTombs),
	}
	ix.compactions++
	ix.compactNanos += elapsed.Nanoseconds()
	ix.lastCompactNanos = elapsed.Nanoseconds()
	ix.lastGenerationPath = nb.Path
	ix.lastGenerationPoints = len(snap)
	ix.mu.Unlock()

	// Old readers drain on their own epoch; the old base closes with its
	// last reference.
	oldBase.retire()
	return nil
}

// Close marks the index closed, waits for any background compaction, closes
// every subscription feed, and retires the current base. In-flight query
// snapshots stay valid until released.
func (ix *Index) Close() error {
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return nil
	}
	ix.closed = true
	for f := range ix.feeds {
		delete(ix.feeds, f)
		close(f.C)
	}
	cur := ix.cur
	ix.mu.Unlock()
	ix.wg.Wait()
	cur.base.retire()
	return nil
}

// Stats is a point-in-time summary of the live index.
type Stats struct {
	Seq              uint64  // current epoch sequence
	Points           int     // live point count (base − tombstones + delta)
	BasePoints       int     // points in the sealed base generation
	DeltaPoints      int     // points only in the in-memory delta
	Tombstones       int     // base points masked out
	Generation       string  // path of the newest sealed generation ("" = memory-only)
	GenerationPoints int     // points sealed into that generation
	Inserts          int64   // cumulative applied inserts
	Deletes          int64   // cumulative applied deletes
	Batches          int64   // cumulative applied batches
	Compactions      int64   // completed compactions
	CompactFailures  int64   // failed compactions (index kept serving)
	CompactSeconds   float64 // cumulative wall time sealing generations
	LastCompactSecs  float64 // wall time of the most recent seal
	ShedFeeds        int64   // subscription feeds dropped for falling behind
}

// Stats returns current counters.
func (ix *Index) Stats() Stats {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return Stats{
		Seq:              ix.cur.seq,
		Points:           len(ix.points),
		BasePoints:       len(ix.baseIDs),
		DeltaPoints:      len(ix.delta),
		Tombstones:       len(ix.tombs),
		Generation:       ix.lastGenerationPath,
		GenerationPoints: ix.lastGenerationPoints,
		Inserts:          ix.inserts,
		Deletes:          ix.deletes,
		Batches:          ix.appliedBatches,
		Compactions:      ix.compactions,
		CompactFailures:  ix.compactFailures,
		CompactSeconds:   float64(ix.compactNanos) / 1e9,
		LastCompactSecs:  float64(ix.lastCompactNanos) / 1e9,
		ShedFeeds:        ix.shedFeeds,
	}
}

// Len returns the current live point count.
func (ix *Index) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.points)
}

// PointsSorted returns a copy of the current point set in ascending ID
// order — the canonical order every seal and rebuild uses.
func (ix *Index) PointsSorted() []rtree.PointEntry {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return sortedEntries(ix.points)
}

// Snapshot is a pinned epoch: an immutable view queries traverse while
// mutations and compactions proceed underneath. Release must be called
// exactly when the traversal completes (idempotent).
type Snapshot struct {
	Seq uint64
	e   *epoch
	rel sync.Once
}

// Acquire pins the current epoch.
func (ix *Index) Acquire() (*Snapshot, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return nil, ErrClosed
	}
	e := ix.cur
	e.base.acquire()
	return &Snapshot{Seq: e.seq, e: e}, nil
}

// Release unpins the snapshot's base generation; safe to call more than
// once.
func (s *Snapshot) Release() { s.rel.Do(s.e.base.release) }

// DisableFaceRule reports whether queries over this snapshot must disable
// the verification face rule: with tombstones, a base MBR may cover no live
// point, breaking the rule's nonempty-subtree assumption (every other
// pruning rule is conservative under inflated MBRs).
func (s *Snapshot) DisableFaceRule() bool { return len(s.e.tombs) > 0 }

// Feed is one subscription's bounded update channel. The publisher closes C
// when the feed is shed (buffer overflow) or the index closes; Shed
// distinguishes the two after C is drained.
type Feed struct {
	C    chan Update
	shed bool
}

// Shed reports whether the feed was dropped for falling behind. Valid after
// C closes (the publisher's write happens-before the close).
func (f *Feed) Shed() bool { return f.shed }

// NewFeed registers a bounded subscription feed and returns it with a
// consistent snapshot: the current epoch seq and point set. Every Update
// with Seq greater than the returned seq arrives on the feed, none is lost
// in between (registration and snapshot are atomic).
func (ix *Index) NewFeed(buf int) (*Feed, uint64, []rtree.PointEntry, error) {
	if buf <= 0 {
		buf = 64
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return nil, 0, nil, ErrClosed
	}
	f := &Feed{C: make(chan Update, buf)}
	ix.feeds[f] = struct{}{}
	return f, ix.cur.seq, sortedEntries(ix.points), nil
}

// CloseFeed unregisters a feed; its channel is closed if still registered.
func (ix *Index) CloseFeed(f *Feed) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.feeds[f]; ok {
		delete(ix.feeds, f)
		close(f.C)
	}
}

// Resnapshot returns a fresh consistent (seq, point set) pair for an
// already-registered feed — the resync path after a deletion forces a
// monitor rebuild. Updates already buffered on the feed with Seq at or
// below the returned seq are stale and must be skipped by the caller.
func (ix *Index) Resnapshot() (uint64, []rtree.PointEntry, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return 0, nil, ErrClosed
	}
	return ix.cur.seq, sortedEntries(ix.points), nil
}

// publishLocked fans one update out to every feed, shedding feeds whose
// buffers are full: a stalled subscriber must not block writers, so it is
// disconnected (channel closed, Shed marked) and counted instead. Caller
// holds ix.mu.
func (ix *Index) publishLocked(u Update) {
	for f := range ix.feeds {
		select {
		case f.C <- u:
		default:
			delete(ix.feeds, f)
			f.shed = true
			close(f.C)
			ix.shedFeeds++
		}
	}
}

func sortedEntries(m map[int64]geom.Point) []rtree.PointEntry {
	out := make([]rtree.PointEntry, 0, len(m))
	for id, p := range m {
		out = append(out, rtree.PointEntry{P: p, ID: id})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func copyIDSet(m map[int64]struct{}) map[int64]struct{} {
	out := make(map[int64]struct{}, len(m))
	for id := range m {
		out[id] = struct{}{}
	}
	return out
}

func clonePointMap(m map[int64]geom.Point) map[int64]geom.Point {
	out := make(map[int64]geom.Point, len(m))
	for id, p := range m {
		out[id] = p
	}
	return out
}
