package live

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// The merged view presents base+delta−tombstones as ONE R-tree to the core
// executor, through a virtual page-id space:
//
//	[0, deltaPageBase)            base pages, ids unchanged
//	[deltaPageBase, 2^32-16)      delta pages, offset by deltaPageBase
//	syntheticRootPage             the synthetic root joining the two
//
// Base pages pass through untouched unless the leaf holds a tombstoned
// point, in which case a filtered copy is returned (the columnar arrays
// minus masked entries). Delta internal nodes are returned as copies with
// child ids offset into the virtual range; delta leaves pass through
// verbatim (leaf pages hold no page references). The synthetic root is an
// internal node over the two real roots — the executor never assumes
// uniform subtree height, so the (possibly different) base and delta
// heights are fine.
//
// Correctness under masked points: every traversal rule the executor
// applies to MBRs (mindist ordering, Ψ-pruner rect checks, diameter and
// region bounds, TopK branch-and-bound) is conservative when an MBR is
// inflated relative to the live points beneath it — a stale bound can only
// fail to prune. The single exception is the verification face rule, which
// infers a nonempty subtree from an MBR's position; Snapshot.DisableFaceRule
// tells callers to turn it off while tombstones exist.
const (
	deltaPageBase     = storage.PageID(1) << 31
	syntheticRootPage = storage.PageID(0xFFFFFFF0)
)

// merged is the virtual SpatialIndex over one epoch. It is stateless after
// construction and safe for the executor's concurrent workers.
type merged struct {
	base  *rtree.Tree // tagged view; nil when the base is empty
	delta *rtree.Tree // tagged view; nil when the delta is empty
	tombs map[int64]struct{}
	root  storage.PageID
	rootN *rtree.Node // synthetic root; non-nil iff both sides are nonempty
}

// View builds the snapshot's merged read view. Buffer accesses of both the
// base and delta trees are attributed to rec, so per-request statistics
// stay exact.
func (s *Snapshot) View(rec *buffer.TagStats) (core.SpatialIndex, error) {
	e := s.e
	v := &merged{tombs: e.tombs}
	if t := e.base.b.Tree; t != nil && t.Root() != storage.InvalidPageID {
		v.base = t.Tagged(rec)
	}
	if t := e.delta; t != nil && t.Root() != storage.InvalidPageID {
		v.delta = t.Tagged(rec)
	}
	switch {
	case v.base == nil && v.delta == nil:
		v.root = storage.InvalidPageID
	case v.delta == nil:
		v.root = v.base.Root()
	case v.base == nil:
		v.root = v.delta.Root() + deltaPageBase
	default:
		baseMBR, err := v.base.RootMBR()
		if err != nil {
			return nil, err
		}
		deltaMBR, err := v.delta.RootMBR()
		if err != nil {
			return nil, err
		}
		v.root = syntheticRootPage
		v.rootN = &rtree.Node{Children: []rtree.ChildEntry{
			{MBR: baseMBR, Child: v.base.Root()},
			{MBR: deltaMBR, Child: v.delta.Root() + deltaPageBase},
		}}
	}
	return v, nil
}

func (v *merged) Root() storage.PageID { return v.root }

func (v *merged) ReadNode(id storage.PageID) (*rtree.Node, error) {
	switch {
	case id == syntheticRootPage:
		if v.rootN == nil {
			return nil, fmt.Errorf("live: synthetic root read on single-sided view")
		}
		return v.rootN, nil
	case id >= deltaPageBase:
		if v.delta == nil {
			return nil, fmt.Errorf("live: delta page %d read on view without delta", id)
		}
		n, err := v.delta.ReadNode(id - deltaPageBase)
		if err != nil || n.Leaf {
			return n, err
		}
		kids := make([]rtree.ChildEntry, len(n.Children))
		for i, c := range n.Children {
			kids[i] = rtree.ChildEntry{MBR: c.MBR, Child: c.Child + deltaPageBase}
		}
		return &rtree.Node{Children: kids}, nil
	default:
		if v.base == nil {
			return nil, fmt.Errorf("live: base page %d read on view without base", id)
		}
		n, err := v.base.ReadNode(id)
		if err != nil || !n.Leaf {
			return n, err
		}
		return v.filterLeaf(n), nil
	}
}

// filterLeaf masks tombstoned points out of a base leaf. Untouched leaves
// are returned as-is (no copy); a leaf with masked entries is rebuilt as a
// fresh columnar node, never mutating the (possibly cached and shared)
// original.
func (v *merged) filterLeaf(n *rtree.Node) *rtree.Node {
	if len(v.tombs) == 0 {
		return n
	}
	masked := 0
	for _, id := range n.IDs {
		if _, dead := v.tombs[id]; dead {
			masked++
		}
	}
	if masked == 0 {
		return n
	}
	keep := len(n.IDs) - masked
	out := &rtree.Node{
		Leaf: true,
		Xs:   make([]float64, 0, keep),
		Ys:   make([]float64, 0, keep),
		IDs:  make([]int64, 0, keep),
	}
	for i, id := range n.IDs {
		if _, dead := v.tombs[id]; dead {
			continue
		}
		out.Xs = append(out.Xs, n.Xs[i])
		out.Ys = append(out.Ys, n.Ys[i])
		out.IDs = append(out.IDs, id)
	}
	return out
}

func (v *merged) VisitLeaves(fn func(*rtree.Node) error) error {
	if v.base != nil {
		if err := v.base.VisitLeaves(func(n *rtree.Node) error {
			return fn(v.filterLeaf(n))
		}); err != nil {
			return err
		}
	}
	if v.delta != nil {
		return v.delta.VisitLeaves(fn)
	}
	return nil
}

func (v *merged) LeafPages() ([]storage.PageID, error) {
	var out []storage.PageID
	if v.base != nil {
		pages, err := v.base.LeafPages()
		if err != nil {
			return nil, err
		}
		out = pages
	}
	if v.delta != nil {
		pages, err := v.delta.LeafPages()
		if err != nil {
			return nil, err
		}
		for _, p := range pages {
			out = append(out, p+deltaPageBase)
		}
	}
	return out, nil
}

func (v *merged) ScanAll() ([]rtree.PointEntry, error) {
	var out []rtree.PointEntry
	err := v.VisitLeaves(func(n *rtree.Node) error {
		out = n.AppendPointsTo(out)
		return nil
	})
	return out, err
}
