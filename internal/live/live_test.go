package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// memSeal is the test Seal: a plain in-memory STR build, plus a counter of
// how often the closed-base hook ran so retirement can be asserted.
func memSeal(closes *atomic.Int64) func([]rtree.PointEntry, uint64) (Base, error) {
	return func(pts []rtree.PointEntry, seq uint64) (Base, error) {
		tr, err := rtree.New(storage.NewMemPager(storage.DefaultPageSize), buffer.NewPool(-1), rtree.Config{})
		if err != nil {
			return Base{}, err
		}
		if len(pts) > 0 {
			if err := tr.BulkLoad(pts, 0); err != nil {
				return Base{}, err
			}
		}
		return Base{Tree: tr, Count: len(pts), Close: func() error {
			if closes != nil {
				closes.Add(1)
			}
			return nil
		}}, nil
	}
}

func newTestIndex(t *testing.T, compactEvery int, closes *atomic.Int64) *Index {
	t.Helper()
	ix, err := New(Base{}, Config{CompactEvery: compactEvery, Seal: memSeal(closes)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func entry(id int64, x, y float64) rtree.PointEntry {
	return rtree.PointEntry{P: geom.Point{X: x, Y: y}, ID: id}
}

func randEntries(rng *rand.Rand, n int, idBase int64) []rtree.PointEntry {
	out := make([]rtree.PointEntry, n)
	for i := range out {
		out[i] = entry(idBase+int64(i), rng.Float64()*1000, rng.Float64()*1000)
	}
	return out
}

func idsOf(pts []rtree.PointEntry) []int64 {
	ids := make([]int64, len(pts))
	for i, p := range pts {
		ids[i] = p.ID
	}
	return ids
}

func TestApplyAtomicity(t *testing.T) {
	ix := newTestIndex(t, -1, nil)
	if _, err := ix.Apply([]rtree.PointEntry{entry(1, 0, 0), entry(2, 1, 1)}, nil); err != nil {
		t.Fatal(err)
	}

	// Duplicate insert ID rejects the whole batch: point 3 must not land.
	if _, err := ix.Apply([]rtree.PointEntry{entry(3, 2, 2), entry(1, 9, 9)}, nil); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate insert: %v, want ErrDuplicateID", err)
	}
	// Unknown delete ID rejects the batch: point 2 must survive.
	if _, err := ix.Apply(nil, []int64{2, 77}); !errors.Is(err, ErrUnknownID) {
		t.Fatalf("unknown delete: %v, want ErrUnknownID", err)
	}
	// Same ID inserted and deleted in one batch is ambiguous.
	if _, err := ix.Apply([]rtree.PointEntry{entry(4, 3, 3)}, []int64{4}); err == nil {
		t.Fatal("insert+delete of one ID in a batch accepted")
	}

	got := idsOf(ix.PointsSorted())
	want := []int64{1, 2}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("points after rejected batches: %v, want %v", got, want)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ix.Len())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	ix := newTestIndex(t, -1, nil)
	if _, err := ix.Apply(randEntries(rand.New(rand.NewSource(1)), 50, 0), nil); err != nil {
		t.Fatal(err)
	}
	snap, err := ix.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	seqBefore := snap.Seq

	if _, err := ix.Apply([]rtree.PointEntry{entry(100, 5, 5)}, []int64{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}

	// The pinned snapshot still reflects the pre-mutation epoch.
	if snap.Seq != seqBefore {
		t.Fatalf("snapshot seq moved: %d -> %d", seqBefore, snap.Seq)
	}
	view, err := snap.View(nil)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := view.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("pinned snapshot sees %d points, want the original 50", len(pts))
	}
}

// TestLiveEquivalencePointSet is the package-level slice of the equivalence
// gate: after arbitrary interleavings of batches and compactions, the point
// set (and its canonical ID order) matches a straight replay of the ledger.
func TestLiveEquivalencePointSet(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ix := newTestIndex(t, -1, nil)

	model := map[int64]rtree.PointEntry{}
	nextID := int64(0)
	for step := 0; step < 200; step++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(model) == 0: // insert a small batch
			ins := randEntries(rng, 1+rng.Intn(8), nextID)
			nextID += int64(len(ins))
			if _, err := ix.Apply(ins, nil); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			for _, e := range ins {
				model[e.ID] = e
			}
		case op < 9: // delete a few existing points
			var del []int64
			for id := range model {
				del = append(del, id)
				if len(del) == 3 {
					break
				}
			}
			if _, err := ix.Apply(nil, del); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			for _, id := range del {
				delete(model, id)
			}
		default:
			if err := ix.Compact(); err != nil {
				t.Fatalf("step %d compact: %v", step, err)
			}
		}
		if ix.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model %d", step, ix.Len(), len(model))
		}
	}

	want := make([]rtree.PointEntry, 0, len(model))
	for _, e := range model {
		want = append(want, e)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].ID < want[j].ID })
	got := ix.PointsSorted()
	if len(got) != len(want) {
		t.Fatalf("%d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestCompactRetiresOldBase(t *testing.T) {
	var closes atomic.Int64
	ix := newTestIndex(t, -1, &closes)
	if _, err := ix.Apply(randEntries(rand.New(rand.NewSource(2)), 20, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.Compact(); err != nil { // builds generation 1 (initial base is empty, nothing to close)
		t.Fatal(err)
	}
	snap, err := ix.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Apply(randEntries(rand.New(rand.NewSource(3)), 5, 100), nil); err != nil {
		t.Fatal(err)
	}
	if err := ix.Compact(); err != nil { // generation 2; generation 1 still pinned by snap
		t.Fatal(err)
	}
	if n := closes.Load(); n != 0 {
		t.Fatalf("base closed %d times while a snapshot pins it", n)
	}
	snap.Release()
	if n := closes.Load(); n != 1 {
		t.Fatalf("base closes after release = %d, want 1", n)
	}
	if ix.Len() != 25 {
		t.Fatalf("Len = %d, want 25", ix.Len())
	}
}

func TestFeedDeliveryAndShedding(t *testing.T) {
	ix := newTestIndex(t, -1, nil)
	if _, err := ix.Apply(randEntries(rand.New(rand.NewSource(4)), 10, 0), nil); err != nil {
		t.Fatal(err)
	}

	feed, seq, snap, err := ix.NewFeed(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 10 {
		t.Fatalf("feed snapshot %d points, want 10", len(snap))
	}
	if _, err := ix.Apply([]rtree.PointEntry{entry(100, 1, 1)}, []int64{0}); err != nil {
		t.Fatal(err)
	}
	u := <-feed.C
	if u.Seq != seq+1 || len(u.Ins) != 1 || len(u.Del) != 1 {
		t.Fatalf("update = %+v, want seq %d with 1 ins / 1 del", u, seq+1)
	}
	if u.Ins[0].ID != 100 || u.Del[0].ID != 0 {
		t.Fatalf("update ids = ins %d del %d", u.Ins[0].ID, u.Del[0].ID)
	}
	ix.CloseFeed(feed)
	if _, open := <-feed.C; open {
		t.Fatal("feed channel open after CloseFeed")
	}
	if feed.Shed() {
		t.Fatal("explicitly closed feed reports shed")
	}

	// A feed whose buffer fills is shed, and the writer never blocks.
	slow, _, _, err := ix.NewFeed(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := ix.Apply([]rtree.PointEntry{entry(int64(200+i), 2, 2)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	drained := 0
	for range slow.C {
		drained++
	}
	if !slow.Shed() {
		t.Fatal("overflowed feed not shed")
	}
	if drained < 1 || drained > 2 {
		t.Fatalf("shed feed delivered %d updates, want 1 or 2 (buffered before overflow)", drained)
	}
	st := ix.Stats()
	if st.ShedFeeds != 1 {
		t.Fatalf("ShedFeeds = %d, want 1", st.ShedFeeds)
	}
}

// TestFeedNoLostUpdates hammers NewFeed registration against concurrent
// Apply batches: every update after the snapshot seq must arrive, none
// duplicated — the atomic register+snapshot contract. Run with -race.
func TestFeedNoLostUpdates(t *testing.T) {
	ix := newTestIndex(t, -1, nil)
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	var idGen atomic.Int64
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				id := idGen.Add(1)
				if _, err := ix.Apply([]rtree.PointEntry{entry(id, float64(id), 0)}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	feed, seq, snap, err := ix.NewFeed(writers*perWriter + 8)
	if err != nil {
		t.Fatal(err)
	}
	close(start)
	wg.Wait()

	seen := map[int64]bool{}
	for _, e := range snap {
		seen[e.ID] = true
	}
	// Drain exactly the updates covering seq+1 .. final epoch.
	final := ix.Stats().Seq
	for at := seq; at < final; {
		u := <-feed.C
		if u.Seq != at+1 {
			t.Fatalf("update seq %d, want %d (gap or duplicate)", u.Seq, at+1)
		}
		at = u.Seq
		for _, e := range u.Ins {
			if seen[e.ID] {
				t.Fatalf("point %d delivered twice (snapshot+update overlap)", e.ID)
			}
			seen[e.ID] = true
		}
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("snapshot+updates cover %d points, want %d", len(seen), writers*perWriter)
	}
}

func TestResnapshotSkipsStaleUpdates(t *testing.T) {
	ix := newTestIndex(t, -1, nil)
	feed, _, _, err := ix.NewFeed(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ix.Apply([]rtree.PointEntry{entry(int64(i), float64(i), 0)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	seq, snap, err := ix.Resnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 5 {
		t.Fatalf("resnapshot %d points, want 5", len(snap))
	}
	// Everything buffered before the resnapshot is stale by contract.
	for {
		select {
		case u := <-feed.C:
			if u.Seq > seq {
				t.Fatalf("buffered update seq %d above resnapshot seq %d", u.Seq, seq)
			}
			continue
		default:
		}
		break
	}
	if _, err := ix.Apply([]rtree.PointEntry{entry(99, 9, 9)}, nil); err != nil {
		t.Fatal(err)
	}
	u := <-feed.C
	if u.Seq != seq+1 {
		t.Fatalf("post-resync update seq %d, want %d", u.Seq, seq+1)
	}
}

func TestConcurrentMutateCompactQuery(t *testing.T) {
	var closes atomic.Int64
	ix := newTestIndex(t, 32, &closes) // tight auto-compaction to force swaps mid-run
	rng := rand.New(rand.NewSource(5))
	if _, err := ix.Apply(randEntries(rng, 64, 0), nil); err != nil {
		t.Fatal(err)
	}
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := ix.Acquire()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := snap.View(nil); err != nil {
					t.Error(err)
				}
				snap.Release()
			}
		}()
	}
	var idGen atomic.Int64
	idGen.Store(1000)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := idGen.Add(1)
				if _, err := ix.Apply([]rtree.PointEntry{entry(id, float64(id%97), float64(id%89))}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait() // writers done; background compactions may still be in flight
	close(stop)
	readers.Wait()
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 64+400 {
		t.Fatalf("Len = %d, want %d", ix.Len(), 64+400)
	}
	st := ix.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction ran despite CompactEvery=32")
	}
	if st.DeltaPoints != 0 || st.Tombstones != 0 {
		t.Fatalf("delta %d / tombstones %d after final compact, want 0/0", st.DeltaPoints, st.Tombstones)
	}
}

func TestClosedIndexRejects(t *testing.T) {
	ix, err := New(Base{}, Config{Seal: memSeal(nil)})
	if err != nil {
		t.Fatal(err)
	}
	feed, _, _, err := ix.NewFeed(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, open := <-feed.C; open {
		t.Fatal("feed survived index close")
	}
	if feed.Shed() {
		t.Fatal("close-terminated feed reports shed")
	}
	if _, err := ix.Apply([]rtree.PointEntry{entry(1, 0, 0)}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply on closed: %v, want ErrClosed", err)
	}
	if _, err := ix.Acquire(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Acquire on closed: %v, want ErrClosed", err)
	}
}
