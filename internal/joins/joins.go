// Package joins implements the conventional distance-based spatial join
// operators the paper contrasts RCJ against in Section 5.1: the ε-distance
// join [Brinkhoff et al., SIGMOD 93], the k-closest-pairs join [Corral et
// al., SIGMOD 00] and the k-nearest-neighbor join [Xia et al., VLDB 04].
// Their result sets feed the precision/recall resemblance study of Figures
// 10–12.
package joins

import (
	"repro/internal/rtree"
)

// Pair is one result of a distance-based join: two points and their
// distance.
type Pair struct {
	P    rtree.PointEntry
	Q    rtree.PointEntry
	Dist float64
}

// Key identifies a pair by the ids of its endpoints (P and Q namespaces are
// independent). It is the unit of the precision/recall comparison.
type Key struct {
	PID, QID int64
}

// KeyOf returns the identity key of a pair.
func KeyOf(p Pair) Key { return Key{PID: p.P.ID, QID: p.Q.ID} }

// KeySet builds the identity set of a result list.
func KeySet(pairs []Pair) map[Key]struct{} {
	s := make(map[Key]struct{}, len(pairs))
	for _, p := range pairs {
		s[KeyOf(p)] = struct{}{}
	}
	return s
}
