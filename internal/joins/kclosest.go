package joins

import (
	"container/heap"
	"math"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// KClosestPairs returns the k closest pairs of the pointsets indexed by tp
// and tq in nondecreasing distance order, via the incremental distance join
// of Hjaltason & Samet (SIGMOD 98): a min-heap over element pairs keyed by
// the minimum distance between them, expanding whichever element of a popped
// pair is a node. Popped point–point pairs arrive in exact global distance
// order, so the first k pops are the answer.
func KClosestPairs(tp, tq *rtree.Tree, k int) ([]Pair, error) {
	out := make([]Pair, 0, k)
	err := KClosestPairsStream(tp, tq, k, func(p Pair) { out = append(out, p) })
	return out, err
}

// KClosestPairsStream streams the k closest pairs into fn in nondecreasing
// distance order.
func KClosestPairsStream(tp, tq *rtree.Tree, k int, fn func(Pair)) error {
	if k <= 0 || tp.Root() == storage.InvalidPageID || tq.Root() == storage.InvalidPageID {
		return nil
	}
	h := &cpHeap{&cpItem{dist2: 0, pPage: tp.Root(), qPage: tq.Root()}}
	heap.Init(h)
	emitted := 0
	for h.Len() > 0 && emitted < k {
		it := heap.Pop(h).(*cpItem)
		switch {
		case it.pIsPoint && it.qIsPoint:
			fn(Pair{P: it.pPoint, Q: it.qPoint, Dist: math.Sqrt(it.dist2)})
			emitted++
		case !it.pIsPoint:
			// Expand the P side first (arbitrary but fixed: it keeps pairs
			// balanced because the next pop re-evaluates the Q side).
			np, err := tp.ReadNode(it.pPage)
			if err != nil {
				return err
			}
			qRect := it.qRect(tq)
			if np.Leaf {
				for i := 0; i < np.NumPoints(); i++ {
					child := it.withP(np.EntryAt(i))
					child.dist2 = child.minDist2(qRect)
					heap.Push(h, child)
				}
			} else {
				for _, c := range np.Children {
					child := it.withPNode(c.Child, c.MBR)
					child.dist2 = child.minDist2(qRect)
					heap.Push(h, child)
				}
			}
		default:
			nq, err := tq.ReadNode(it.qPage)
			if err != nil {
				return err
			}
			pRect := geom.RectFromPoint(it.pPoint.P)
			if nq.Leaf {
				for i := 0; i < nq.NumPoints(); i++ {
					child := it.withQ(nq.EntryAt(i))
					child.dist2 = child.minDist2FromQ(pRect)
					heap.Push(h, child)
				}
			} else {
				for _, c := range nq.Children {
					child := it.withQNode(c.Child, c.MBR)
					child.dist2 = child.minDist2FromQ(pRect)
					heap.Push(h, child)
				}
			}
		}
	}
	return nil
}

// cpItem is a heap element of the incremental distance join: a pair whose
// sides are each either an unexpanded subtree (with MBR) or a point.
type cpItem struct {
	dist2            float64
	pIsPoint         bool
	qIsPoint         bool
	pPage, qPage     storage.PageID
	pMBR, qMBR       geom.Rect
	pPoint, qPoint   rtree.PointEntry
	pHasMBR, qHasMBR bool
}

// qRect returns the rectangle standing for the Q side (point, known MBR, or
// the whole tree for the root seed).
func (it *cpItem) qRect(tq *rtree.Tree) geom.Rect {
	if it.qIsPoint {
		return geom.RectFromPoint(it.qPoint.P)
	}
	if it.qHasMBR {
		return it.qMBR
	}
	r, err := tq.RootMBR()
	if err != nil {
		return geom.EmptyRect()
	}
	return r
}

func (it *cpItem) withP(p rtree.PointEntry) *cpItem {
	c := *it
	c.pIsPoint, c.pPoint, c.pHasMBR = true, p, false
	return &c
}

func (it *cpItem) withPNode(page storage.PageID, mbr geom.Rect) *cpItem {
	c := *it
	c.pIsPoint, c.pPage, c.pMBR, c.pHasMBR = false, page, mbr, true
	return &c
}

func (it *cpItem) withQ(q rtree.PointEntry) *cpItem {
	c := *it
	c.qIsPoint, c.qPoint, c.qHasMBR = true, q, false
	return &c
}

func (it *cpItem) withQNode(page storage.PageID, mbr geom.Rect) *cpItem {
	c := *it
	c.qIsPoint, c.qPage, c.qMBR, c.qHasMBR = false, page, mbr, true
	return &c
}

// minDist2 computes the pair key given the Q side's standing rectangle.
func (it *cpItem) minDist2(qRect geom.Rect) float64 {
	if it.pIsPoint {
		if it.qIsPoint {
			return it.pPoint.P.Dist2(it.qPoint.P)
		}
		return qRect.MinDist2(it.pPoint.P)
	}
	return geom.RectMinDist2(it.pMBR, qRect)
}

// minDist2FromQ mirrors minDist2 when the P side's rectangle is known.
func (it *cpItem) minDist2FromQ(pRect geom.Rect) float64 {
	if it.qIsPoint {
		if it.pIsPoint {
			return it.pPoint.P.Dist2(it.qPoint.P)
		}
		return pRect.MinDist2(it.qPoint.P)
	}
	return geom.RectMinDist2(it.qMBR, pRect)
}

type cpHeap []*cpItem

func (h cpHeap) Len() int { return len(h) }
func (h cpHeap) Less(i, j int) bool {
	if h[i].dist2 != h[j].dist2 {
		return h[i].dist2 < h[j].dist2
	}
	// Resolved point pairs first, so results are never starved by
	// equal-keyed subtrees.
	ri := h[i].pIsPoint && h[i].qIsPoint
	rj := h[j].pIsPoint && h[j].qIsPoint
	return ri && !rj
}
func (h cpHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cpHeap) Push(x any)   { *h = append(*h, x.(*cpItem)) }
func (h *cpHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
