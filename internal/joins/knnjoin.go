package joins

import (
	"math"

	"repro/internal/rtree"
)

// KNNJoin computes the k-nearest-neighbor join of the pointsets indexed by
// tp and tq: for every p ∈ P, the pairs <p, q> where q is one of the k
// nearest neighbors of p in Q. The result has exactly k·|P| pairs (fewer if
// |Q| < k) and is asymmetric — swapping the inputs changes the answer, as
// Table 1 of the paper notes.
//
// Each outer point runs an incremental-NN scan on tq; outer points are
// visited in depth-first leaf order so consecutive scans share tree paths.
func KNNJoin(tp, tq *rtree.Tree, k int) ([]Pair, error) {
	var out []Pair
	err := KNNJoinStream(tp, tq, k, func(p Pair) { out = append(out, p) })
	return out, err
}

// KNNJoinStream streams the kNN-join pairs into fn, grouped by outer point
// with each group in nondecreasing distance order.
func KNNJoinStream(tp, tq *rtree.Tree, k int, fn func(Pair)) error {
	if k <= 0 {
		return nil
	}
	return tp.VisitLeaves(func(n *rtree.Node) error {
		for i := 0; i < n.NumPoints(); i++ {
			p := n.EntryAt(i)
			it := tq.NewINNIterator(p.P)
			for i := 0; i < k; i++ {
				q, d2, ok := it.Next()
				if !ok {
					if err := it.Err(); err != nil {
						return err
					}
					break
				}
				fn(Pair{P: p, Q: q, Dist: math.Sqrt(d2)})
			}
		}
		return nil
	})
}
