package joins

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func benchTrees(b *testing.B, n int) (*rtree.Tree, *rtree.Tree) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	mk := func(owner uint32) *rtree.Tree {
		pager := storage.NewMemPager(storage.DefaultPageSize)
		tr, err := rtree.New(pager, buffer.NewPool(-1), rtree.Config{Owner: owner})
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.BulkLoad(randomPoints(rng, n), 0); err != nil {
			b.Fatal(err)
		}
		return tr
	}
	return mk(1), mk(2)
}

func BenchmarkEpsilonJoin(b *testing.B) {
	tp, tq := benchTrees(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EpsilonJoinStream(tp, tq, 15, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKClosestPairs1000(b *testing.B) {
	tp, tq := benchTrees(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := KClosestPairsStream(tp, tq, 1000, func(Pair) {}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNJoin5(b *testing.B) {
	tp, tq := benchTrees(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := KNNJoinStream(tp, tq, 5, func(Pair) {}); err != nil {
			b.Fatal(err)
		}
	}
}
