package joins

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

func buildTree(t *testing.T, pts []rtree.PointEntry, owner uint32) *rtree.Tree {
	t.Helper()
	pager := storage.NewMemPager(storage.DefaultPageSize)
	tr, err := rtree.New(pager, buffer.NewPool(-1), rtree.Config{Owner: owner})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.BulkLoad(pts, 0); err != nil {
		t.Fatal(err)
	}
	return tr
}

func randomPoints(rng *rand.Rand, n int) []rtree.PointEntry {
	pts := make([]rtree.PointEntry, n)
	for i := range pts {
		pts[i] = rtree.PointEntry{
			P:  geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			ID: int64(i),
		}
	}
	return pts
}

func TestEpsilonJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := randomPoints(rng, 200)
	qs := randomPoints(rng, 150)
	tp := buildTree(t, ps, 1)
	tq := buildTree(t, qs, 2)
	for _, eps := range []float64{0, 5, 25, 100, 2000} {
		got, err := EpsilonJoin(tp, tq, eps)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[Key]float64)
		for _, p := range ps {
			for _, q := range qs {
				if d := p.P.Dist(q.P); d <= eps {
					want[Key{p.ID, q.ID}] = d
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("eps=%g: got %d pairs, want %d", eps, len(got), len(want))
		}
		for _, g := range got {
			d, ok := want[KeyOf(g)]
			if !ok {
				t.Fatalf("eps=%g: unexpected pair %+v", eps, KeyOf(g))
			}
			if math.Abs(d-g.Dist) > 1e-9 {
				t.Fatalf("eps=%g: distance mismatch for %+v: %g vs %g", eps, KeyOf(g), g.Dist, d)
			}
		}
	}
}

func TestKClosestPairsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := randomPoints(rng, 120)
	qs := randomPoints(rng, 90)
	tp := buildTree(t, ps, 1)
	tq := buildTree(t, qs, 2)

	type dp struct {
		d float64
		k Key
	}
	var all []dp
	for _, p := range ps {
		for _, q := range qs {
			all = append(all, dp{d: p.P.Dist(q.P), k: Key{p.ID, q.ID}})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })

	for _, k := range []int{1, 7, 50, 500} {
		got, err := KClosestPairs(tp, tq, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("k=%d: got %d pairs", k, len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist-1e-12 {
				t.Fatalf("k=%d: output not in distance order at %d", k, i)
			}
		}
		// Compare the distance multiset (ties make identity comparison
		// ambiguous at the boundary).
		for i := range got {
			if math.Abs(got[i].Dist-all[i].d) > 1e-9 {
				t.Fatalf("k=%d: rank %d distance %g, want %g", k, i, got[i].Dist, all[i].d)
			}
		}
	}
}

func TestKClosestPairsExhaustsInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := randomPoints(rng, 10)
	qs := randomPoints(rng, 10)
	tp := buildTree(t, ps, 1)
	tq := buildTree(t, qs, 2)
	got, err := KClosestPairs(tp, tq, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("asking beyond the cross product: got %d pairs, want 100", len(got))
	}
}

func TestKNNJoinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := randomPoints(rng, 80)
	qs := randomPoints(rng, 60)
	tp := buildTree(t, ps, 1)
	tq := buildTree(t, qs, 2)
	for _, k := range []int{1, 3, 10} {
		got, err := KNNJoin(tp, tq, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k*len(ps) {
			t.Fatalf("k=%d: got %d pairs, want %d", k, len(got), k*len(ps))
		}
		// Per outer point, the k-th smallest distance bound must hold.
		byP := map[int64][]float64{}
		for _, g := range got {
			byP[g.P.ID] = append(byP[g.P.ID], g.Dist)
		}
		for _, p := range ps {
			var dists []float64
			for _, q := range qs {
				dists = append(dists, p.P.Dist(q.P))
			}
			sort.Float64s(dists)
			gds := byP[p.ID]
			sort.Float64s(gds)
			if len(gds) != k {
				t.Fatalf("k=%d: point %d has %d neighbors", k, p.ID, len(gds))
			}
			for i := range gds {
				if math.Abs(gds[i]-dists[i]) > 1e-9 {
					t.Fatalf("k=%d: point %d rank %d distance %g, want %g", k, p.ID, i, gds[i], dists[i])
				}
			}
		}
	}
}

func TestKNNJoinAsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := randomPoints(rng, 50)
	qs := randomPoints(rng, 30)
	tp := buildTree(t, ps, 1)
	tq := buildTree(t, qs, 2)
	a, err := KNNJoin(tp, tq, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KNNJoin(tq, tp, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == len(b) {
		t.Logf("note: equal sizes %d; asymmetry shows in membership", len(a))
	}
	if len(a) != 2*len(ps) || len(b) != 2*len(qs) {
		t.Fatalf("result sizes %d/%d, want %d/%d (k·|outer|)", len(a), len(b), 2*len(ps), 2*len(qs))
	}
}

func TestJoinsOnEmptyTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	full := buildTree(t, randomPoints(rng, 20), 1)
	empty := buildTree(t, nil, 2)
	if got, err := EpsilonJoin(full, empty, 100); err != nil || len(got) != 0 {
		t.Errorf("eps join with empty input: %v, %d pairs", err, len(got))
	}
	if got, err := KClosestPairs(empty, full, 5); err != nil || len(got) != 0 {
		t.Errorf("kcp join with empty input: %v, %d pairs", err, len(got))
	}
	if got, err := KNNJoin(full, empty, 5); err != nil || len(got) != 0 {
		t.Errorf("knn join with empty inner: %v, %d pairs", err, len(got))
	}
}

func TestKeySet(t *testing.T) {
	pairs := []Pair{
		{P: rtree.PointEntry{ID: 1}, Q: rtree.PointEntry{ID: 2}},
		{P: rtree.PointEntry{ID: 1}, Q: rtree.PointEntry{ID: 2}}, // duplicate
		{P: rtree.PointEntry{ID: 3}, Q: rtree.PointEntry{ID: 4}},
	}
	s := KeySet(pairs)
	if len(s) != 2 {
		t.Fatalf("KeySet size %d, want 2", len(s))
	}
	if _, ok := s[Key{PID: 1, QID: 2}]; !ok {
		t.Fatal("missing key")
	}
}
