package joins

import (
	"math"

	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/storage"
)

// EpsilonJoin computes the ε-distance join of the pointsets indexed by tp
// and tq: all pairs <p, q> with dist(p, q) ≤ ε.
func EpsilonJoin(tp, tq *rtree.Tree, eps float64) ([]Pair, error) {
	var out []Pair
	_, err := EpsilonJoinStream(tp, tq, eps, func(p Pair) { out = append(out, p) })
	return out, err
}

// EpsilonJoinStream computes the ε-distance join via the synchronized R-tree
// traversal of Brinkhoff et al. — node pairs are expanded only when the
// minimum distance between their MBRs is within ε — streaming each result
// pair into fn (which may be nil) and returning the pair count. Streaming
// matters for the resemblance sweeps, where large ε values produce result
// sets far bigger than either input.
func EpsilonJoinStream(tp, tq *rtree.Tree, eps float64, fn func(Pair)) (int64, error) {
	if tp.Root() == storage.InvalidPageID || tq.Root() == storage.InvalidPageID {
		return 0, nil
	}
	e := &epsJoiner{tp: tp, tq: tq, eps2: eps * eps, fn: fn}
	err := e.joinNodes(tp.Root(), tq.Root())
	return e.count, err
}

type epsJoiner struct {
	tp, tq *rtree.Tree
	eps2   float64
	fn     func(Pair)
	count  int64
}

func (e *epsJoiner) joinNodes(pPage, qPage storage.PageID) error {
	np, err := e.tp.ReadNode(pPage)
	if err != nil {
		return err
	}
	nq, err := e.tq.ReadNode(qPage)
	if err != nil {
		return err
	}
	switch {
	case np.Leaf && nq.Leaf:
		// Columnar leaf-leaf kernel: the distance test touches only the
		// coordinate slices; point entries are materialized for matches alone.
		pxs, pys, pids := np.Xs, np.Ys, np.IDs
		qxs, qys, qids := nq.Xs, nq.Ys, nq.IDs
		for i, pid := range pids {
			px, py := pxs[i], pys[i]
			for k, qid := range qids {
				dx, dy := px-qxs[k], py-qys[k]
				if d2 := dx*dx + dy*dy; d2 <= e.eps2 {
					e.count++
					if e.fn != nil {
						e.fn(Pair{
							P:    rtree.PointEntry{P: geom.Point{X: px, Y: py}, ID: pid},
							Q:    rtree.PointEntry{P: geom.Point{X: qxs[k], Y: qys[k]}, ID: qid},
							Dist: math.Sqrt(d2),
						})
					}
				}
			}
		}
		return nil
	case np.Leaf:
		// Unbalanced heights: descend only the non-leaf side.
		mp := np.MBR()
		for _, cq := range nq.Children {
			if geom.RectMinDist2(mp, cq.MBR) <= e.eps2 {
				if err := e.joinNodes(pPage, cq.Child); err != nil {
					return err
				}
			}
		}
		return nil
	case nq.Leaf:
		mq := nq.MBR()
		for _, cp := range np.Children {
			if geom.RectMinDist2(cp.MBR, mq) <= e.eps2 {
				if err := e.joinNodes(cp.Child, qPage); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		for _, cp := range np.Children {
			for _, cq := range nq.Children {
				if geom.RectMinDist2(cp.MBR, cq.MBR) <= e.eps2 {
					if err := e.joinNodes(cp.Child, cq.Child); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
}
