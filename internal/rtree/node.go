// Package rtree implements a disk-page R*-tree [Beckmann, Kriegel, Schneider,
// Seeger, SIGMOD 1990] over 2D points: the access method both join inputs are
// indexed by in the paper (Section 5: "Each dataset is indexed by an R*-tree
// with disk page size of 1K bytes").
//
// Nodes are serialized to fixed-size pages obtained from a storage.Pager and
// cached through a shared buffer.Pool, so every algorithm above the tree pays
// page faults exactly where a disk-resident index would. The package provides
// R* insertion (choose-subtree, margin-driven split, forced reinsertion), STR
// bulk loading, range and circle-range search, depth-first leaf traversal,
// and the incremental nearest-neighbor iterator of Hjaltason & Samet that the
// join's filter step is built on.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/storage"
)

// PointEntry is a leaf entry: an indexed point and its caller-assigned id.
type PointEntry struct {
	P  geom.Point
	ID int64
}

// ChildEntry is a non-leaf entry: the MBR of a subtree and the page holding
// its root.
type ChildEntry struct {
	MBR   geom.Rect
	Child storage.PageID
}

// Node is the in-memory form of one R-tree page. Exactly one of Points
// (leaf) or Children (internal) is populated.
type Node struct {
	Leaf     bool
	Points   []PointEntry
	Children []ChildEntry
}

// Len returns the number of entries in the node.
func (n *Node) Len() int {
	if n.Leaf {
		return len(n.Points)
	}
	return len(n.Children)
}

// MBR returns the minimum bounding rectangle of all entries in the node.
func (n *Node) MBR() geom.Rect {
	r := geom.EmptyRect()
	if n.Leaf {
		for _, e := range n.Points {
			r = r.ExtendPoint(e.P)
		}
	} else {
		for _, e := range n.Children {
			r = r.Union(e.MBR)
		}
	}
	return r
}

// On-disk node layout (little endian):
//
//	offset 0: uint8  flags (bit 0: leaf)
//	offset 1: uint8  reserved
//	offset 2: uint16 entry count
//	offset 4: entries
//
// Leaf entry (24 bytes):   x float64, y float64, id int64.
// Internal entry (36 bytes): minX, minY, maxX, maxY float64, child uint32.
const (
	nodeHeaderSize    = 4
	leafEntrySize     = 24
	internalEntrySize = 36
)

// LeafCapacity returns the maximum number of point entries that fit in a
// page of the given size.
func LeafCapacity(pageSize int) int {
	return (pageSize - nodeHeaderSize) / leafEntrySize
}

// InternalCapacity returns the maximum number of child entries that fit in a
// page of the given size.
func InternalCapacity(pageSize int) int {
	return (pageSize - nodeHeaderSize) / internalEntrySize
}

// Encode serializes n into buf (which must be a full page) and returns an
// error if the node does not fit.
func (n *Node) Encode(buf []byte) error {
	need := nodeHeaderSize
	var count int
	if n.Leaf {
		count = len(n.Points)
		need += count * leafEntrySize
	} else {
		count = len(n.Children)
		need += count * internalEntrySize
	}
	if need > len(buf) {
		return fmt.Errorf("rtree: node with %d entries needs %d bytes, page is %d", count, need, len(buf))
	}
	if count > math.MaxUint16 {
		return fmt.Errorf("rtree: node entry count %d exceeds format limit", count)
	}
	var flags byte
	if n.Leaf {
		flags |= 1
	}
	buf[0] = flags
	buf[1] = 0
	binary.LittleEndian.PutUint16(buf[2:], uint16(count))
	off := nodeHeaderSize
	if n.Leaf {
		for _, e := range n.Points {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.P.X))
			binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(e.P.Y))
			binary.LittleEndian.PutUint64(buf[off+16:], uint64(e.ID))
			off += leafEntrySize
		}
	} else {
		for _, e := range n.Children {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.MBR.MinX))
			binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(e.MBR.MinY))
			binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(e.MBR.MaxX))
			binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(e.MBR.MaxY))
			binary.LittleEndian.PutUint32(buf[off+32:], uint32(e.Child))
			off += internalEntrySize
		}
	}
	return nil
}

// DecodeNode deserializes a page previously written by Encode.
func DecodeNode(buf []byte) (*Node, error) {
	if len(buf) < nodeHeaderSize {
		return nil, fmt.Errorf("rtree: page of %d bytes too small for node header", len(buf))
	}
	n := &Node{Leaf: buf[0]&1 != 0}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	off := nodeHeaderSize
	if n.Leaf {
		if off+count*leafEntrySize > len(buf) {
			return nil, fmt.Errorf("rtree: corrupt leaf node: %d entries exceed page", count)
		}
		n.Points = make([]PointEntry, count)
		for i := range n.Points {
			n.Points[i] = PointEntry{
				P: geom.Point{
					X: math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
					Y: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
				},
				ID: int64(binary.LittleEndian.Uint64(buf[off+16:])),
			}
			off += leafEntrySize
		}
	} else {
		if off+count*internalEntrySize > len(buf) {
			return nil, fmt.Errorf("rtree: corrupt internal node: %d entries exceed page", count)
		}
		n.Children = make([]ChildEntry, count)
		for i := range n.Children {
			n.Children[i] = ChildEntry{
				MBR: geom.Rect{
					MinX: math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
					MinY: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
					MaxX: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:])),
					MaxY: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+24:])),
				},
				Child: storage.PageID(binary.LittleEndian.Uint32(buf[off+32:])),
			}
			off += internalEntrySize
		}
	}
	return n, nil
}
