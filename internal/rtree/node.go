// Package rtree implements a disk-page R*-tree [Beckmann, Kriegel, Schneider,
// Seeger, SIGMOD 1990] over 2D points: the access method both join inputs are
// indexed by in the paper (Section 5: "Each dataset is indexed by an R*-tree
// with disk page size of 1K bytes").
//
// Nodes are serialized to fixed-size pages obtained from a storage.Pager and
// cached through a shared buffer.Pool, so every algorithm above the tree pays
// page faults exactly where a disk-resident index would. The package provides
// R* insertion (choose-subtree, margin-driven split, forced reinsertion), STR
// bulk loading, range and circle-range search, depth-first leaf traversal,
// and the incremental nearest-neighbor iterator of Hjaltason & Samet that the
// join's filter step is built on.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/storage"
)

// PointEntry is a leaf entry: an indexed point and its caller-assigned id.
type PointEntry struct {
	P  geom.Point
	ID int64
}

// ChildEntry is a non-leaf entry: the MBR of a subtree and the page holding
// its root.
type ChildEntry struct {
	MBR   geom.Rect
	Child storage.PageID
}

// Node is the in-memory form of one R-tree page. Leaf nodes store their
// points columnar — parallel Xs/Ys/IDs slices decoded once per page — so the
// join's filter and verification inner loops scan contiguous float64 memory
// instead of materializing per-entry structs. Internal nodes carry Children.
// Exactly one of the two representations is populated.
type Node struct {
	Leaf bool
	// Xs, Ys, IDs are the columnar leaf payload: Xs[i], Ys[i] are the
	// coordinates of the i-th point and IDs[i] its caller-assigned id. The
	// three slices always share one length. Xs and Ys share one backing
	// array when decoded from a page.
	Xs, Ys []float64
	IDs    []int64
	// Children is the internal-node payload.
	Children []ChildEntry
}

// NewLeaf builds a leaf node from row-form entries.
func NewLeaf(pts []PointEntry) *Node {
	n := &Node{Leaf: true}
	n.SetPoints(pts)
	return n
}

// NumPoints returns the number of points in a leaf node (0 for internal
// nodes).
func (n *Node) NumPoints() int { return len(n.IDs) }

// PointAt returns the coordinates of the i-th leaf point.
func (n *Node) PointAt(i int) geom.Point { return geom.Point{X: n.Xs[i], Y: n.Ys[i]} }

// EntryAt returns the i-th leaf point in row form.
func (n *Node) EntryAt(i int) PointEntry {
	return PointEntry{P: geom.Point{X: n.Xs[i], Y: n.Ys[i]}, ID: n.IDs[i]}
}

// Points materializes the leaf payload as a fresh row-form slice. It is meant
// for the build/maintenance paths and tests; hot read paths iterate the
// columns directly.
func (n *Node) Points() []PointEntry {
	return n.AppendPointsTo(make([]PointEntry, 0, len(n.IDs)))
}

// AppendPointsTo appends the leaf's points in row form to dst and returns the
// extended slice — the allocation-free sibling of Points for callers
// accumulating across leaves.
func (n *Node) AppendPointsTo(dst []PointEntry) []PointEntry {
	for i, id := range n.IDs {
		dst = append(dst, PointEntry{P: geom.Point{X: n.Xs[i], Y: n.Ys[i]}, ID: id})
	}
	return dst
}

// SetPoints replaces the leaf payload with the given row-form entries.
func (n *Node) SetPoints(pts []PointEntry) {
	if cap(n.Xs) < len(pts) {
		cols := make([]float64, 2*len(pts))
		n.Xs, n.Ys = cols[:len(pts):len(pts)], cols[len(pts):]
		n.IDs = make([]int64, len(pts))
	} else {
		n.Xs, n.Ys, n.IDs = n.Xs[:len(pts)], n.Ys[:len(pts)], n.IDs[:len(pts)]
	}
	for i, e := range pts {
		n.Xs[i], n.Ys[i], n.IDs[i] = e.P.X, e.P.Y, e.ID
	}
}

// AppendPoint adds one point to a leaf node.
func (n *Node) AppendPoint(e PointEntry) {
	n.Xs = append(n.Xs, e.P.X)
	n.Ys = append(n.Ys, e.P.Y)
	n.IDs = append(n.IDs, e.ID)
}

// RemovePointAt deletes the i-th leaf point, preserving the order of the
// rest.
func (n *Node) RemovePointAt(i int) {
	n.Xs = append(n.Xs[:i], n.Xs[i+1:]...)
	n.Ys = append(n.Ys[:i], n.Ys[i+1:]...)
	n.IDs = append(n.IDs[:i], n.IDs[i+1:]...)
}

// Len returns the number of entries in the node.
func (n *Node) Len() int {
	if n.Leaf {
		return len(n.IDs)
	}
	return len(n.Children)
}

// MBR returns the minimum bounding rectangle of all entries in the node.
func (n *Node) MBR() geom.Rect {
	r := geom.EmptyRect()
	if n.Leaf {
		for i := range n.IDs {
			r = r.ExtendPoint(geom.Point{X: n.Xs[i], Y: n.Ys[i]})
		}
	} else {
		for _, e := range n.Children {
			r = r.Union(e.MBR)
		}
	}
	return r
}

// On-disk node layout (little endian):
//
//	offset 0: uint8  flags (bit 0: leaf)
//	offset 1: uint8  reserved
//	offset 2: uint16 entry count
//	offset 4: entries
//
// Leaf entry (24 bytes):   x float64, y float64, id int64.
// Internal entry (36 bytes): minX, minY, maxX, maxY float64, child uint32.
const (
	nodeHeaderSize    = 4
	leafEntrySize     = 24
	internalEntrySize = 36
)

// LeafCapacity returns the maximum number of point entries that fit in a
// page of the given size.
func LeafCapacity(pageSize int) int {
	return (pageSize - nodeHeaderSize) / leafEntrySize
}

// InternalCapacity returns the maximum number of child entries that fit in a
// page of the given size.
func InternalCapacity(pageSize int) int {
	return (pageSize - nodeHeaderSize) / internalEntrySize
}

// Encode serializes n into buf (which must be a full page) and returns an
// error if the node does not fit.
func (n *Node) Encode(buf []byte) error {
	need := nodeHeaderSize
	var count int
	if n.Leaf {
		count = len(n.IDs)
		need += count * leafEntrySize
	} else {
		count = len(n.Children)
		need += count * internalEntrySize
	}
	if need > len(buf) {
		return fmt.Errorf("rtree: node with %d entries needs %d bytes, page is %d", count, need, len(buf))
	}
	if count > math.MaxUint16 {
		return fmt.Errorf("rtree: node entry count %d exceeds format limit", count)
	}
	var flags byte
	if n.Leaf {
		flags |= 1
	}
	buf[0] = flags
	buf[1] = 0
	binary.LittleEndian.PutUint16(buf[2:], uint16(count))
	off := nodeHeaderSize
	if n.Leaf {
		for i := range n.IDs {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(n.Xs[i]))
			binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(n.Ys[i]))
			binary.LittleEndian.PutUint64(buf[off+16:], uint64(n.IDs[i]))
			off += leafEntrySize
		}
	} else {
		for _, e := range n.Children {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.MBR.MinX))
			binary.LittleEndian.PutUint64(buf[off+8:], math.Float64bits(e.MBR.MinY))
			binary.LittleEndian.PutUint64(buf[off+16:], math.Float64bits(e.MBR.MaxX))
			binary.LittleEndian.PutUint64(buf[off+24:], math.Float64bits(e.MBR.MaxY))
			binary.LittleEndian.PutUint32(buf[off+32:], uint32(e.Child))
			off += internalEntrySize
		}
	}
	return nil
}

// DecodeLeafColumnar decodes the entries of a leaf page previously written by
// Encode straight into columnar slices: one pass over the page, one shared
// float64 backing array for both coordinate columns, no per-entry structs.
// The page header (including the leaf flag) is the caller's to validate; this
// decodes only the entry payload.
func DecodeLeafColumnar(buf []byte) (xs, ys []float64, ids []int64, err error) {
	if len(buf) < nodeHeaderSize {
		return nil, nil, nil, fmt.Errorf("rtree: page of %d bytes too small for node header", len(buf))
	}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	if nodeHeaderSize+count*leafEntrySize > len(buf) {
		return nil, nil, nil, fmt.Errorf("rtree: corrupt leaf node: %d entries exceed page", count)
	}
	cols := make([]float64, 2*count)
	xs, ys = cols[:count:count], cols[count:]
	ids = make([]int64, count)
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		ys[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
		ids[i] = int64(binary.LittleEndian.Uint64(buf[off+16:]))
		off += leafEntrySize
	}
	return xs, ys, ids, nil
}

// DecodeNode deserializes a page previously written by Encode.
func DecodeNode(buf []byte) (*Node, error) {
	if len(buf) < nodeHeaderSize {
		return nil, fmt.Errorf("rtree: page of %d bytes too small for node header", len(buf))
	}
	n := &Node{Leaf: buf[0]&1 != 0}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	off := nodeHeaderSize
	if n.Leaf {
		var err error
		n.Xs, n.Ys, n.IDs, err = DecodeLeafColumnar(buf)
		if err != nil {
			return nil, err
		}
		return n, nil
	}
	if off+count*internalEntrySize > len(buf) {
		return nil, fmt.Errorf("rtree: corrupt internal node: %d entries exceed page", count)
	}
	n.Children = make([]ChildEntry, count)
	for i := range n.Children {
		n.Children[i] = ChildEntry{
			MBR: geom.Rect{
				MinX: math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])),
				MinY: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:])),
				MaxX: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+16:])),
				MaxY: math.Float64frombits(binary.LittleEndian.Uint64(buf[off+24:])),
			},
			Child: storage.PageID(binary.LittleEndian.Uint32(buf[off+32:])),
		}
		off += internalEntrySize
	}
	return n, nil
}
