package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/storage"
)

func TestNodeCacheLRUAndInvalidate(t *testing.T) {
	nc := NewNodeCache(2)
	o1, o2 := nc.NewOwner(), nc.NewOwner()
	if o1 == 0 || o2 == 0 || o1 == o2 {
		t.Fatalf("owners: %d %d", o1, o2)
	}
	a, b, c := NewLeaf([]PointEntry{{ID: 1}}), NewLeaf([]PointEntry{{ID: 2}}), NewLeaf([]PointEntry{{ID: 3}})
	nc.Put(o1, 1, a)
	nc.Put(o2, 1, b) // same page, different owner: distinct entries
	if n, ok := nc.Get(o1, 1); !ok || n != a {
		t.Fatal("owner 1 entry lost or crossed owners")
	}
	nc.Put(o1, 2, c) // capacity 2: evicts LRU, which is (o2,1) after the Get above
	if _, ok := nc.Get(o2, 1); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := nc.Get(o1, 1); !ok {
		t.Fatal("recently used entry evicted")
	}
	nc.InvalidateOwner(o1)
	if nc.Len() != 0 {
		t.Fatalf("after invalidate: %d entries", nc.Len())
	}
	if _, ok := nc.Get(o1, 1); ok {
		t.Fatal("entry visible after owner invalidation")
	}
	hits, misses := nc.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats not counting: hits=%d misses=%d", hits, misses)
	}
}

func TestNewNodeCacheDisabled(t *testing.T) {
	if NewNodeCache(0) != nil || NewNodeCache(-5) != nil {
		t.Fatal("non-positive capacity should disable the cache")
	}
}

// TestTreeNodeCacheServesPoolMisses forces buffer-pool evictions with a tiny
// pool and checks that a second full scan is served from the node cache —
// identical results, zero additional pager reads.
func TestTreeNodeCacheServesPoolMisses(t *testing.T) {
	pager := storage.NewMemPager(storage.DefaultPageSize)
	tr, err := New(pager, buffer.NewPool(2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	pts := randomEntries(rng, 2000)
	if err := tr.BulkLoad(pts, 0); err != nil {
		t.Fatal(err)
	}
	want, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}

	nc := NewNodeCache(1 << 16)
	tr.SetNodeCache(nc, nc.NewOwner())
	if _, err := tr.ScanAll(); err != nil { // populate the cache
		t.Fatal(err)
	}
	_, missesBefore := nc.Stats()
	got, err := tr.ScanAll() // pool capacity 2 -> almost every read re-misses
	if err != nil {
		t.Fatal(err)
	}
	hits, missesAfter := nc.Stats()
	if hits == 0 {
		t.Fatal("second scan never hit the node cache")
	}
	if missesAfter != missesBefore {
		t.Fatalf("second scan missed the node cache %d times", missesAfter-missesBefore)
	}
	if len(got) != len(want) {
		t.Fatalf("scan sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}
