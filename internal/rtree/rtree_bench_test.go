package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/storage"
)

func benchTree(b *testing.B, n int, bulk bool) *Tree {
	b.Helper()
	pager := storage.NewMemPager(storage.DefaultPageSize)
	tr, err := New(pager, buffer.NewPool(-1), Config{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := randomEntries(rng, n)
	if bulk {
		if err := tr.BulkLoad(pts, 0); err != nil {
			b.Fatal(err)
		}
	} else {
		for _, p := range pts {
			if err := tr.Insert(p.P, p.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
	return tr
}

func BenchmarkInsert(b *testing.B) {
	pager := storage.NewMemPager(storage.DefaultPageSize)
	tr, err := New(pager, buffer.NewPool(-1), Config{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		if err := tr.Insert(p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad20K(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomEntries(rng, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pager := storage.NewMemPager(storage.DefaultPageSize)
		tr, err := New(pager, buffer.NewPool(-1), Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.BulkLoad(pts, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeSearch(b *testing.B) {
	tr := benchTree(b, 50000, true)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*9500, rng.Float64()*9500
		if _, err := tr.RangeSearch(geom.Rect{MinX: x, MinY: y, MaxX: x + 500, MaxY: y + 500}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNN10(b *testing.B) {
	tr := benchTree(b, 50000, true)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		if _, err := tr.KNN(q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkINNFullDrain(b *testing.B) {
	tr := benchTree(b, 10000, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tr.NewINNIterator(geom.Point{X: 5000, Y: 5000})
		for {
			if _, _, ok := it.Next(); !ok {
				break
			}
		}
		if err := it.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelete(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	pts := randomEntries(rng, 20000)
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		tr := benchTree(b, 0, true)
		for _, p := range pts[:5000] {
			if err := tr.Insert(p.P, p.ID); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for _, p := range pts[:2500] {
			if _, err := tr.Delete(p.P, p.ID); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	}
}

func BenchmarkNodeEncodeDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := NewLeaf(randomEntries(rng, 42))
	buf := make([]byte, storage.DefaultPageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Encode(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeNode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
