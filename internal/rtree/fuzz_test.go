package rtree

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

// FuzzDecodeNode asserts the page decoder never panics on arbitrary bytes:
// it must either return an error or a structurally consistent node. A
// corrupt page read from disk must surface as an error, not a crash.
func FuzzDecodeNode(f *testing.F) {
	// Seed with valid pages of both kinds and some corruptions.
	buf := make([]byte, storage.DefaultPageSize)
	leaf := NewLeaf([]PointEntry{{ID: 1}, {ID: 2}})
	if err := leaf.Encode(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf...))
	internal := &Node{Children: []ChildEntry{{Child: 3}}}
	if err := internal.Encode(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf...))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeNode(data)
		if err != nil {
			return
		}
		if n.Leaf && n.Children != nil {
			t.Fatal("leaf with children")
		}
		if !n.Leaf && n.NumPoints() != 0 {
			t.Fatal("internal node with points")
		}
		if len(n.Xs) != len(n.Ys) || len(n.Xs) != len(n.IDs) {
			t.Fatalf("ragged columns: %d/%d/%d", len(n.Xs), len(n.Ys), len(n.IDs))
		}
		// A decoded node must re-encode into a page-sized buffer when its
		// entry count fits.
		if n.Len() <= LeafCapacity(storage.DefaultPageSize) && n.Leaf ||
			n.Len() <= InternalCapacity(storage.DefaultPageSize) && !n.Leaf {
			out := make([]byte, storage.DefaultPageSize)
			if err := n.Encode(out); err != nil {
				t.Fatalf("re-encode of decoded node failed: %v", err)
			}
		}
	})
}

// FuzzDecodeLeafColumnar asserts the columnar leaf decoder never panics on
// arbitrary bytes and, whenever DecodeNode accepts the same page as a leaf,
// produces bit-identical columns to the row decoder — the warm join path and
// the generic path must read the same points from the same bytes.
func FuzzDecodeLeafColumnar(f *testing.F) {
	buf := make([]byte, storage.DefaultPageSize)
	leaf := NewLeaf([]PointEntry{{P: geom.Point{X: 1.5, Y: -2.5}, ID: 1}, {P: geom.Point{X: 3, Y: 4}, ID: 2}})
	if err := leaf.Encode(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf...))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 255, 255})
	f.Add([]byte{1, 0, 1, 0}) // count 1, no payload

	f.Fuzz(func(t *testing.T, data []byte) {
		xs, ys, ids, err := DecodeLeafColumnar(data)
		if err != nil {
			return
		}
		if len(xs) != len(ys) || len(xs) != len(ids) {
			t.Fatalf("ragged columns: %d/%d/%d", len(xs), len(ys), len(ids))
		}
		n, err := DecodeNode(data)
		if err != nil || !n.Leaf {
			return
		}
		if len(xs) != n.Len() {
			t.Fatalf("columnar count %d != row count %d", len(xs), n.Len())
		}
		for i := range xs {
			if math.Float64bits(xs[i]) != math.Float64bits(n.Xs[i]) ||
				math.Float64bits(ys[i]) != math.Float64bits(n.Ys[i]) ||
				ids[i] != n.IDs[i] {
				t.Fatalf("entry %d: columnar (%v,%v,%d) != row (%v,%v,%d)",
					i, xs[i], ys[i], ids[i], n.Xs[i], n.Ys[i], n.IDs[i])
			}
		}
	})
}
