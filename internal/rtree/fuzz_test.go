package rtree

import (
	"testing"

	"repro/internal/storage"
)

// FuzzDecodeNode asserts the page decoder never panics on arbitrary bytes:
// it must either return an error or a structurally consistent node. A
// corrupt page read from disk must surface as an error, not a crash.
func FuzzDecodeNode(f *testing.F) {
	// Seed with valid pages of both kinds and some corruptions.
	buf := make([]byte, storage.DefaultPageSize)
	leaf := &Node{Leaf: true, Points: []PointEntry{{ID: 1}, {ID: 2}}}
	if err := leaf.Encode(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf...))
	internal := &Node{Children: []ChildEntry{{Child: 3}}}
	if err := internal.Encode(buf); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), buf...))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := DecodeNode(data)
		if err != nil {
			return
		}
		if n.Leaf && n.Children != nil {
			t.Fatal("leaf with children")
		}
		if !n.Leaf && n.Points != nil {
			t.Fatal("internal node with points")
		}
		// A decoded node must re-encode into a page-sized buffer when its
		// entry count fits.
		if n.Len() <= LeafCapacity(storage.DefaultPageSize) && n.Leaf ||
			n.Len() <= InternalCapacity(storage.DefaultPageSize) && !n.Leaf {
			out := make([]byte, storage.DefaultPageSize)
			if err := n.Encode(out); err != nil {
				t.Fatalf("re-encode of decoded node failed: %v", err)
			}
		}
	})
}
