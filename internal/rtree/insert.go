package rtree

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/storage"
)

// treeEntry is the union of the two entry kinds so that forced reinsertion
// can requeue entries from any level.
type treeEntry struct {
	isPoint bool
	pt      PointEntry
	child   ChildEntry
}

func (e treeEntry) rect() geom.Rect {
	if e.isPoint {
		return geom.RectFromPoint(e.pt.P)
	}
	return e.child.MBR
}

// pendingReinsert is an entry removed by forced reinsertion, waiting to be
// inserted again at its original level (levels are counted from the leaves:
// leaf entries live at level 1, entries pointing at leaves at level 2, and
// so on — stable even when the root splits mid-operation).
type pendingReinsert struct {
	entry treeEntry
	level int
}

// insertState carries the per-top-level-insertion bookkeeping of the R*
// overflow treatment: which levels have already used their one forced
// reinsertion, and the queue of removed entries.
type insertState struct {
	reinsertedAt map[int]bool
	pending      []pendingReinsert
}

// Insert adds one point to the tree using the R*-tree insertion algorithm
// (choose-subtree, forced reinsertion on first overflow per level, R* split
// otherwise).
func (t *Tree) Insert(p geom.Point, id int64) error {
	entry := treeEntry{isPoint: true, pt: PointEntry{P: p, ID: id}}
	if t.root == storage.InvalidPageID {
		rootID, err := t.allocNode(NewLeaf([]PointEntry{entry.pt}))
		if err != nil {
			return err
		}
		t.root = rootID
		t.height = 1
		t.size = 1
		return nil
	}
	st := &insertState{reinsertedAt: make(map[int]bool)}
	if err := t.insertAtLevel(entry, 1, st); err != nil {
		return err
	}
	// Drain forced-reinsertion queue. Reinsertions may enqueue more work for
	// levels that have not yet used their pass; levels that have split
	// instead.
	for len(st.pending) > 0 {
		next := st.pending[0]
		st.pending = st.pending[1:]
		if err := t.insertAtLevel(next.entry, next.level, st); err != nil {
			return err
		}
	}
	t.size++
	return nil
}

// insertAtLevel inserts entry at the given level, growing the root if the
// root itself splits.
func (t *Tree) insertAtLevel(entry treeEntry, level int, st *insertState) error {
	split, err := t.insertRec(t.root, t.height, entry, level, st)
	if err != nil {
		return err
	}
	if split == nil {
		return nil
	}
	// Root split: the old root keeps its page; a sibling was created; a new
	// root points at both.
	oldRoot, err := t.ReadNode(t.root)
	if err != nil {
		return err
	}
	newRoot := &Node{Children: []ChildEntry{
		{MBR: oldRoot.MBR(), Child: t.root},
		*split,
	}}
	rootID, err := t.allocNode(newRoot)
	if err != nil {
		return err
	}
	t.root = rootID
	t.height++
	return nil
}

// insertRec descends from the node at page id (which sits at the given level)
// to the target level, inserts the entry, and propagates splits upward. It
// returns the entry for a newly created sibling when this node split.
func (t *Tree) insertRec(id storage.PageID, level int, entry treeEntry, targetLevel int, st *insertState) (*ChildEntry, error) {
	n, err := t.ReadNode(id)
	if err != nil {
		return nil, err
	}
	if level < targetLevel {
		return nil, fmt.Errorf("rtree: descended past target level %d (at %d)", targetLevel, level)
	}

	if level == targetLevel {
		if entry.isPoint != n.Leaf {
			return nil, fmt.Errorf("rtree: entry kind (point=%v) does not match node at level %d", entry.isPoint, level)
		}
		if n.Leaf {
			n.AppendPoint(entry.pt)
		} else {
			n.Children = append(n.Children, entry.child)
		}
		return t.handleOverflow(id, n, level, st)
	}

	// Descend: choose the child whose enlargement is cheapest.
	idx := t.chooseSubtree(n, entry.rect(), level)
	split, err := t.insertRec(n.Children[idx].Child, level-1, entry, targetLevel, st)
	if err != nil {
		return nil, err
	}
	// Refresh the child MBR: it may have grown (insert) or shrunk (forced
	// reinsertion removed entries).
	child, err := t.ReadNode(n.Children[idx].Child)
	if err != nil {
		return nil, err
	}
	n.Children[idx].MBR = child.MBR()
	if split != nil {
		n.Children = append(n.Children, *split)
	}
	return t.handleOverflow(id, n, level, st)
}

// handleOverflow writes n back and, if overfull, applies the R* overflow
// treatment: forced reinsertion the first time a level overflows during one
// top-level insertion (never for the root), a split otherwise.
func (t *Tree) handleOverflow(id storage.PageID, n *Node, level int, st *insertState) (*ChildEntry, error) {
	maxEntries := t.maxChild
	if n.Leaf {
		maxEntries = t.maxLeaf
	}
	if n.Len() <= maxEntries {
		return nil, t.writeNode(id, n)
	}
	isRoot := id == t.root
	if !isRoot && !st.reinsertedAt[level] {
		st.reinsertedAt[level] = true
		t.forceReinsert(n, level, st)
		return nil, t.writeNode(id, n)
	}
	return t.splitNode(id, n)
}

// forceReinsert removes the ReinsertRatio fraction of entries whose centers
// lie farthest from the node's MBR center and queues them for reinsertion at
// the same level ("far reinsert" variant of the R*-tree paper).
func (t *Tree) forceReinsert(n *Node, level int, st *insertState) {
	center := n.MBR().Center()
	p := int(float64(n.Len()) * t.cfg.ReinsertRatio)
	if p < 1 {
		p = 1
	}
	if n.Leaf {
		pts := n.Points()
		sort.Slice(pts, func(i, j int) bool {
			return pts[i].P.Dist2(center) < pts[j].P.Dist2(center)
		})
		keep := len(pts) - p
		for _, e := range pts[keep:] {
			st.pending = append(st.pending, pendingReinsert{
				entry: treeEntry{isPoint: true, pt: e},
				level: level,
			})
		}
		n.SetPoints(pts[:keep])
		return
	}
	sort.Slice(n.Children, func(i, j int) bool {
		return n.Children[i].MBR.Center().Dist2(center) < n.Children[j].MBR.Center().Dist2(center)
	})
	keep := len(n.Children) - p
	for _, e := range n.Children[keep:] {
		st.pending = append(st.pending, pendingReinsert{
			entry: treeEntry{child: e},
			level: level,
		})
	}
	n.Children = n.Children[:keep]
}

// chooseSubtree picks the child of n to descend into for an entry with
// rectangle r, following the R*-tree policy: minimum overlap enlargement when
// the children are leaves, minimum area enlargement otherwise, with area
// enlargement and then area as tie-breakers.
func (t *Tree) chooseSubtree(n *Node, r geom.Rect, level int) int {
	childrenAreLeaves := level == 2
	best := 0
	if childrenAreLeaves {
		bestOverlap, bestEnl, bestArea := 0.0, 0.0, 0.0
		for i, e := range n.Children {
			enlarged := e.MBR.Union(r)
			var overlapDelta float64
			for j, o := range n.Children {
				if j == i {
					continue
				}
				overlapDelta += enlarged.OverlapArea(o.MBR) - e.MBR.OverlapArea(o.MBR)
			}
			enl := enlarged.Area() - e.MBR.Area()
			area := e.MBR.Area()
			if i == 0 || less3(overlapDelta, enl, area, bestOverlap, bestEnl, bestArea) {
				best, bestOverlap, bestEnl, bestArea = i, overlapDelta, enl, area
			}
		}
		return best
	}
	bestEnl, bestArea := 0.0, 0.0
	for i, e := range n.Children {
		enl := e.MBR.Enlargement(r)
		area := e.MBR.Area()
		if i == 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// less3 compares (a1,a2,a3) < (b1,b2,b3) lexicographically.
func less3(a1, a2, a3, b1, b2, b3 float64) bool {
	if a1 != b1 {
		return a1 < b1
	}
	if a2 != b2 {
		return a2 < b2
	}
	return a3 < b3
}

// splitNode splits the overfull node n (stored at page id) with the R* split
// and returns the entry for the new sibling page.
func (t *Tree) splitNode(id storage.PageID, n *Node) (*ChildEntry, error) {
	split := chooseSplit
	if t.cfg.SplitPolicy == SplitLinear {
		split = chooseSplitLinear
	}
	var sibling *Node
	if n.Leaf {
		minFill := t.minLeaf
		rects := make([]geom.Rect, n.NumPoints())
		for i := range rects {
			rects[i] = geom.RectFromPoint(n.PointAt(i))
		}
		leftIdx, rightIdx := split(rects, minFill)
		left := make([]PointEntry, 0, len(leftIdx))
		right := make([]PointEntry, 0, len(rightIdx))
		for _, i := range leftIdx {
			left = append(left, n.EntryAt(i))
		}
		for _, i := range rightIdx {
			right = append(right, n.EntryAt(i))
		}
		n.SetPoints(left)
		sibling = NewLeaf(right)
	} else {
		minFill := t.minChild
		rects := make([]geom.Rect, len(n.Children))
		for i, e := range n.Children {
			rects[i] = e.MBR
		}
		leftIdx, rightIdx := split(rects, minFill)
		left := make([]ChildEntry, 0, len(leftIdx))
		right := make([]ChildEntry, 0, len(rightIdx))
		for _, i := range leftIdx {
			left = append(left, n.Children[i])
		}
		for _, i := range rightIdx {
			right = append(right, n.Children[i])
		}
		n.Children = left
		sibling = &Node{Children: right}
	}
	if err := t.writeNode(id, n); err != nil {
		return nil, err
	}
	sibID, err := t.allocNode(sibling)
	if err != nil {
		return nil, err
	}
	return &ChildEntry{MBR: sibling.MBR(), Child: sibID}, nil
}
