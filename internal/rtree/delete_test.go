package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestDeleteBasic(t *testing.T) {
	tr := newTestTree(t, 0)
	rng := rand.New(rand.NewSource(1))
	pts := randomEntries(rng, 500)
	for _, p := range pts {
		if err := tr.Insert(p.P, p.ID); err != nil {
			t.Fatal(err)
		}
	}
	// Delete half, verify the rest.
	for i := 0; i < 250; i++ {
		ok, err := tr.Delete(pts[i].P, pts[i].ID)
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("point %d not found", i)
		}
	}
	if tr.Size() != 250 {
		t.Fatalf("size %d", tr.Size())
	}
	got, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 250 {
		t.Fatalf("scan %d", len(got))
	}
	seen := map[int64]bool{}
	for _, g := range got {
		seen[g.ID] = true
	}
	for i := 0; i < 250; i++ {
		if seen[pts[i].ID] {
			t.Fatalf("deleted point %d still present", i)
		}
	}
	for i := 250; i < 500; i++ {
		if !seen[pts[i].ID] {
			t.Fatalf("surviving point %d lost", i)
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := newTestTree(t, 0)
	if ok, err := tr.Delete(geom.Point{X: 1, Y: 1}, 5); err != nil || ok {
		t.Fatalf("delete from empty: %v %v", ok, err)
	}
	if err := tr.Insert(geom.Point{X: 1, Y: 1}, 5); err != nil {
		t.Fatal(err)
	}
	// Wrong id at the right location.
	if ok, err := tr.Delete(geom.Point{X: 1, Y: 1}, 6); err != nil || ok {
		t.Fatalf("wrong id deleted: %v %v", ok, err)
	}
	// Right id at the wrong location.
	if ok, err := tr.Delete(geom.Point{X: 2, Y: 2}, 5); err != nil || ok {
		t.Fatalf("wrong location deleted: %v %v", ok, err)
	}
	if tr.Size() != 1 {
		t.Fatalf("size %d", tr.Size())
	}
}

func TestDeleteAllEmptiesTree(t *testing.T) {
	tr := newTestTree(t, 0)
	rng := rand.New(rand.NewSource(2))
	pts := randomEntries(rng, 300)
	for _, p := range pts {
		if err := tr.Insert(p.P, p.ID); err != nil {
			t.Fatal(err)
		}
	}
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	for i, p := range pts {
		ok, err := tr.Delete(p.P, p.ID)
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("point %d vanished early", i)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("size %d after deleting all", tr.Size())
	}
	got, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("scan found %d in empty tree", len(got))
	}
	// The tree remains usable.
	if err := tr.Insert(geom.Point{X: 9, Y: 9}, 999); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 1 {
		t.Fatalf("reinsert size %d", tr.Size())
	}
}

func TestDeleteInterleavedWithQueries(t *testing.T) {
	tr := newTestTree(t, 256) // small pages stress condensing
	rng := rand.New(rand.NewSource(3))
	pts := randomEntries(rng, 800)
	alive := map[int64]PointEntry{}
	for _, p := range pts {
		if err := tr.Insert(p.P, p.ID); err != nil {
			t.Fatal(err)
		}
		alive[p.ID] = p
	}
	for round := 0; round < 20; round++ {
		// Delete a random batch.
		for i := 0; i < 25 && len(alive) > 0; i++ {
			var victim PointEntry
			for _, v := range alive {
				victim = v
				break
			}
			ok, err := tr.Delete(victim.P, victim.ID)
			if err != nil || !ok {
				t.Fatalf("round %d: delete: %v %v", round, ok, err)
			}
			delete(alive, victim.ID)
		}
		// Verify with a range query over everything.
		got, err := tr.RangeSearch(geom.Rect{MinX: 0, MinY: 0, MaxX: 10000, MaxY: 10000})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(alive) {
			t.Fatalf("round %d: %d alive in tree, want %d", round, len(got), len(alive))
		}
		// And structural invariants: after condensing, non-root nodes may
		// temporarily... no — Check enforces min fill, which reinsertion
		// restores. It must hold.
		if err := tr.Check(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestDeleteDuplicateLocations(t *testing.T) {
	tr := newTestTree(t, 0)
	for i := int64(0); i < 50; i++ {
		if err := tr.Insert(geom.Point{X: 7, Y: 7}, i); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a specific id among identical coordinates.
	ok, err := tr.Delete(geom.Point{X: 7, Y: 7}, 31)
	if err != nil || !ok {
		t.Fatalf("delete dup: %v %v", ok, err)
	}
	got, err := tr.RangeSearch(geom.Rect{MinX: 7, MinY: 7, MaxX: 7, MaxY: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 49 {
		t.Fatalf("%d remain", len(got))
	}
	for _, g := range got {
		if g.ID == 31 {
			t.Fatal("deleted id still present")
		}
	}
}
