package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/storage"
)

// BulkLoad builds the tree from scratch using Sort-Tile-Recursive packing
// [Leutenegger et al.]: points are sorted by x into vertical slabs, each slab
// sorted by y and chopped into leaves, and upper levels are packed the same
// way over child-MBR centers. The result is a compact tree with near-full
// nodes, the standard way to index a static join input. fill is the target
// node occupancy in (0,1]; the paper-style experiments use 1.0 minus nothing
// (fully packed); pass 0 for the default 1.0.
//
// BulkLoad may only be called on an empty tree.
func (t *Tree) BulkLoad(points []PointEntry, fill float64) error {
	if t.root != storage.InvalidPageID {
		return fmt.Errorf("rtree: BulkLoad on non-empty tree")
	}
	if len(points) == 0 {
		return nil
	}
	if fill <= 0 || fill > 1 {
		fill = 1.0
	}
	leafCap := int(float64(t.maxLeaf) * fill)
	if leafCap < 2 {
		leafCap = 2
	}
	childCap := int(float64(t.maxChild) * fill)
	if childCap < 2 {
		childCap = 2
	}

	pts := make([]PointEntry, len(points))
	copy(pts, points)

	// Pack the leaf level.
	entries, err := t.packLeaves(pts, leafCap)
	if err != nil {
		return err
	}
	t.height = 1
	// Pack internal levels until a single entry remains.
	for len(entries) > 1 {
		entries, err = t.packInternal(entries, childCap)
		if err != nil {
			return err
		}
		t.height++
	}
	t.root = entries[0].Child
	t.size = len(points)
	return nil
}

// packLeaves tiles points into leaf nodes of at most capacity entries and
// returns the child entries describing them.
func (t *Tree) packLeaves(pts []PointEntry, capacity int) ([]ChildEntry, error) {
	n := len(pts)
	numLeaves := (n + capacity - 1) / capacity
	slabs := int(math.Ceil(math.Sqrt(float64(numLeaves))))
	slabSize := slabs * capacity

	sort.Slice(pts, func(i, j int) bool {
		if pts[i].P.X != pts[j].P.X {
			return pts[i].P.X < pts[j].P.X
		}
		return pts[i].P.Y < pts[j].P.Y
	})

	var out []ChildEntry
	for start := 0; start < n; start += slabSize {
		end := start + slabSize
		if end > n {
			end = n
		}
		slab := pts[start:end]
		sort.Slice(slab, func(i, j int) bool {
			if slab[i].P.Y != slab[j].P.Y {
				return slab[i].P.Y < slab[j].P.Y
			}
			return slab[i].P.X < slab[j].P.X
		})
		for ls := 0; ls < len(slab); ls += capacity {
			le := ls + capacity
			if le > len(slab) {
				le = len(slab)
			}
			node := NewLeaf(slab[ls:le])
			id, err := t.allocNode(node)
			if err != nil {
				return nil, err
			}
			out = append(out, ChildEntry{MBR: node.MBR(), Child: id})
		}
	}
	return out, nil
}

// packInternal tiles child entries into internal nodes of at most capacity
// entries and returns the next level's entries.
func (t *Tree) packInternal(entries []ChildEntry, capacity int) ([]ChildEntry, error) {
	n := len(entries)
	numNodes := (n + capacity - 1) / capacity
	slabs := int(math.Ceil(math.Sqrt(float64(numNodes))))
	slabSize := slabs * capacity

	centers := func(e ChildEntry) geom.Point { return e.MBR.Center() }
	sort.Slice(entries, func(i, j int) bool {
		ci, cj := centers(entries[i]), centers(entries[j])
		if ci.X != cj.X {
			return ci.X < cj.X
		}
		return ci.Y < cj.Y
	})

	var out []ChildEntry
	for start := 0; start < n; start += slabSize {
		end := start + slabSize
		if end > n {
			end = n
		}
		slab := entries[start:end]
		sort.Slice(slab, func(i, j int) bool {
			ci, cj := centers(slab[i]), centers(slab[j])
			if ci.Y != cj.Y {
				return ci.Y < cj.Y
			}
			return ci.X < cj.X
		})
		for ls := 0; ls < len(slab); ls += capacity {
			le := ls + capacity
			if le > len(slab) {
				le = len(slab)
			}
			node := &Node{Children: append([]ChildEntry(nil), slab[ls:le]...)}
			id, err := t.allocNode(node)
			if err != nil {
				return nil, err
			}
			out = append(out, ChildEntry{MBR: node.MBR(), Child: id})
		}
	}
	return out, nil
}
