package rtree

import (
	"repro/internal/geom"
	"repro/internal/storage"
)

// RangeSearch returns all indexed points inside or on the boundary of w.
func (t *Tree) RangeSearch(w geom.Rect) ([]PointEntry, error) {
	var out []PointEntry
	err := t.rangeRec(t.root, w, &out)
	return out, err
}

func (t *Tree) rangeRec(id storage.PageID, w geom.Rect, out *[]PointEntry) error {
	if id == storage.InvalidPageID {
		return nil
	}
	n, err := t.ReadNode(id)
	if err != nil {
		return err
	}
	if n.Leaf {
		xs, ys := n.Xs, n.Ys
		for i, id := range n.IDs {
			x, y := xs[i], ys[i]
			if x >= w.MinX && x <= w.MaxX && y >= w.MinY && y <= w.MaxY {
				*out = append(*out, PointEntry{P: geom.Point{X: x, Y: y}, ID: id})
			}
		}
		return nil
	}
	for _, e := range n.Children {
		if e.MBR.Intersects(w) {
			if err := t.rangeRec(e.Child, w, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// CircleSearch returns all indexed points covered by the closed disk c — the
// range search the brute-force RCJ verification performs per candidate pair.
func (t *Tree) CircleSearch(c geom.Circle) ([]PointEntry, error) {
	var out []PointEntry
	err := t.circleRec(t.root, c, &out)
	return out, err
}

func (t *Tree) circleRec(id storage.PageID, c geom.Circle, out *[]PointEntry) error {
	if id == storage.InvalidPageID {
		return nil
	}
	n, err := t.ReadNode(id)
	if err != nil {
		return err
	}
	if n.Leaf {
		// Hoisted form of c.Covers over the coordinate columns: squared
		// distance against r²·(1+CoverTol), bit-identical to the method.
		cx, cy := c.Center.X, c.Center.Y
		r2 := c.Radius * c.Radius * (1 + geom.CoverTol)
		xs, ys := n.Xs, n.Ys
		for i, id := range n.IDs {
			dx, dy := cx-xs[i], cy-ys[i]
			if dx*dx+dy*dy <= r2 {
				*out = append(*out, PointEntry{P: geom.Point{X: xs[i], Y: ys[i]}, ID: id})
			}
		}
		return nil
	}
	for _, e := range n.Children {
		if c.IntersectsRect(e.MBR) {
			if err := t.circleRec(e.Child, c, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// AnyInCircle reports whether some indexed point other than the excluded ids
// is covered by the closed disk c. It short-circuits on the first hit, using
// the face-inside-circle test only as a descend filter would (exclusions make
// the guarantee of the face rule unusable here, so subtrees are verified by
// descent).
func (t *Tree) AnyInCircle(c geom.Circle, exclude1, exclude2 int64) (bool, error) {
	return t.anyRec(t.root, c, exclude1, exclude2)
}

func (t *Tree) anyRec(id storage.PageID, c geom.Circle, ex1, ex2 int64) (bool, error) {
	if id == storage.InvalidPageID {
		return false, nil
	}
	n, err := t.ReadNode(id)
	if err != nil {
		return false, err
	}
	if n.Leaf {
		cx, cy := c.Center.X, c.Center.Y
		r2 := c.Radius * c.Radius * (1 + geom.CoverTol)
		xs, ys := n.Xs, n.Ys
		for i, id := range n.IDs {
			dx, dy := cx-xs[i], cy-ys[i]
			if dx*dx+dy*dy <= r2 && id != ex1 && id != ex2 {
				return true, nil
			}
		}
		return false, nil
	}
	for _, e := range n.Children {
		if c.IntersectsRect(e.MBR) {
			hit, err := t.anyRec(e.Child, c, ex1, ex2)
			if err != nil || hit {
				return hit, err
			}
		}
	}
	return false, nil
}

// ScanAll returns every indexed point by a full depth-first traversal, in
// leaf order. Useful for tests and for exporting datasets.
func (t *Tree) ScanAll() ([]PointEntry, error) {
	out := make([]PointEntry, 0, t.size)
	err := t.VisitLeaves(func(n *Node) error {
		out = n.AppendPointsTo(out)
		return nil
	})
	return out, err
}

// VisitLeaves applies fn to every leaf node in depth-first order — the
// traversal order Algorithm 5 of the paper prescribes for the outer join
// input, chosen so consecutive filter/verification invocations touch nearby
// tree paths and the buffer absorbs them.
func (t *Tree) VisitLeaves(fn func(*Node) error) error {
	return t.visitLeavesRec(t.root, fn)
}

func (t *Tree) visitLeavesRec(id storage.PageID, fn func(*Node) error) error {
	if id == storage.InvalidPageID {
		return nil
	}
	n, err := t.ReadNode(id)
	if err != nil {
		return err
	}
	if n.Leaf {
		return fn(n)
	}
	for _, e := range n.Children {
		if err := t.visitLeavesRec(e.Child, fn); err != nil {
			return err
		}
	}
	return nil
}

// VisitLeavesPruned is VisitLeaves with a subtree filter: a subtree whose
// entry MBR satisfies skip is neither read nor descended, and a root leaf is
// tested against its own MBR. It returns the number of subtrees skipped.
// The query executor uses it to push the Region window into the *outer*
// traversal: a leaf of TQ whose midpoint rect with TP's MBR misses the
// window cannot produce a qualifying circle center, so it is never read.
func (t *Tree) VisitLeavesPruned(skip func(geom.Rect) bool, fn func(*Node) error) (int64, error) {
	if t.root == storage.InvalidPageID {
		return 0, nil
	}
	n, err := t.ReadNode(t.root)
	if err != nil {
		return 0, err
	}
	if n.Leaf {
		if skip(n.MBR()) {
			return 1, nil
		}
		return 0, fn(n)
	}
	var skipped int64
	for _, e := range n.Children {
		if skip(e.MBR) {
			skipped++
			continue
		}
		if err := t.visitLeavesPrunedRec(e.Child, skip, fn, &skipped); err != nil {
			return skipped, err
		}
	}
	return skipped, nil
}

func (t *Tree) visitLeavesPrunedRec(id storage.PageID, skip func(geom.Rect) bool, fn func(*Node) error, skipped *int64) error {
	n, err := t.ReadNode(id)
	if err != nil {
		return err
	}
	if n.Leaf {
		return fn(n)
	}
	for _, e := range n.Children {
		if skip(e.MBR) {
			*skipped++
			continue
		}
		if err := t.visitLeavesPrunedRec(e.Child, skip, fn, skipped); err != nil {
			return err
		}
	}
	return nil
}

// LeafPagesPruned is LeafPages with the same subtree filter as
// VisitLeavesPruned — the parallel outer loop schedules from a page list, so
// the Region pushdown has to happen while the list is built. Returns the
// surviving leaf pages and the number of subtrees skipped.
func (t *Tree) LeafPagesPruned(skip func(geom.Rect) bool) ([]storage.PageID, int64, error) {
	if t.root == storage.InvalidPageID {
		return nil, 0, nil
	}
	var (
		out     []storage.PageID
		skipped int64
	)
	n, err := t.ReadNode(t.root)
	if err != nil {
		return nil, 0, err
	}
	if n.Leaf {
		if skip(n.MBR()) {
			return nil, 1, nil
		}
		return []storage.PageID{t.root}, 0, nil
	}
	for _, e := range n.Children {
		if skip(e.MBR) {
			skipped++
			continue
		}
		if err := t.leafPagesPrunedRec(e.Child, skip, &out, &skipped); err != nil {
			return out, skipped, err
		}
	}
	return out, skipped, nil
}

func (t *Tree) leafPagesPrunedRec(id storage.PageID, skip func(geom.Rect) bool, out *[]storage.PageID, skipped *int64) error {
	n, err := t.ReadNode(id)
	if err != nil {
		return err
	}
	if n.Leaf {
		*out = append(*out, id)
		return nil
	}
	for _, e := range n.Children {
		if skip(e.MBR) {
			*skipped++
			continue
		}
		if err := t.leafPagesPrunedRec(e.Child, skip, out, skipped); err != nil {
			return err
		}
	}
	return nil
}

// LeafPages returns the page ids of all leaves in depth-first order. The
// search-order ablation shuffles this list to quantify the cost of losing
// access locality.
func (t *Tree) LeafPages() ([]storage.PageID, error) {
	var out []storage.PageID
	err := t.leafPagesRec(t.root, &out)
	return out, err
}

func (t *Tree) leafPagesRec(id storage.PageID, out *[]storage.PageID) error {
	if id == storage.InvalidPageID {
		return nil
	}
	n, err := t.ReadNode(id)
	if err != nil {
		return err
	}
	if n.Leaf {
		*out = append(*out, id)
		return nil
	}
	for _, e := range n.Children {
		if err := t.leafPagesRec(e.Child, out); err != nil {
			return err
		}
	}
	return nil
}
