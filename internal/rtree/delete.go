package rtree

import (
	"repro/internal/geom"
	"repro/internal/storage"
)

// Delete removes the point with the given coordinates and id, returning
// whether it was found. Deletion follows Guttman's condense-tree scheme:
// the leaf entry is removed, underfull nodes along the path are dissolved
// and their remaining points reinserted, ancestors' MBRs tighten, and a
// single-child internal root is collapsed. Dissolved pages are not recycled
// (no free list); rebuild via BulkLoad to compact a heavily shrunken tree.
func (t *Tree) Delete(p geom.Point, id int64) (bool, error) {
	if t.root == storage.InvalidPageID {
		return false, nil
	}
	var orphans []PointEntry
	found, err := t.deleteRec(t.root, t.height, p, id, &orphans)
	if err != nil || !found {
		return found, err
	}
	t.size--

	// Collapse the root: empty tree, or an internal root with one child.
	for {
		n, err := t.ReadNode(t.root)
		if err != nil {
			return true, err
		}
		if n.Leaf {
			if n.NumPoints() == 0 && t.size == 0 && len(orphans) == 0 {
				t.root = storage.InvalidPageID
				t.height = 0
			}
			break
		}
		if len(n.Children) == 1 {
			t.root = n.Children[0].Child
			t.height--
			continue
		}
		if len(n.Children) == 0 {
			// All subtrees dissolved into orphans; restart from empty and
			// reinsert below.
			t.root = storage.InvalidPageID
			t.height = 0
			break
		}
		break
	}

	// Reinsert points of dissolved nodes.
	for _, o := range orphans {
		t.size-- // Insert will re-count it
		if err := t.Insert(o.P, o.ID); err != nil {
			return true, err
		}
	}
	return true, nil
}

// deleteRec removes the entry from the subtree rooted at page id (at the
// given level), condensing underfull children into the orphan list.
func (t *Tree) deleteRec(id storage.PageID, level int, p geom.Point, pid int64, orphans *[]PointEntry) (bool, error) {
	n, err := t.ReadNode(id)
	if err != nil {
		return false, err
	}
	if n.Leaf {
		for i, eid := range n.IDs {
			if eid == pid && n.PointAt(i).Equal(p) {
				n.RemovePointAt(i)
				return true, t.writeNode(id, n)
			}
		}
		return false, nil
	}
	for i, e := range n.Children {
		if !e.MBR.ContainsPoint(p) {
			continue
		}
		found, err := t.deleteRec(e.Child, level-1, p, pid, orphans)
		if err != nil {
			return false, err
		}
		if !found {
			continue
		}
		child, err := t.ReadNode(e.Child)
		if err != nil {
			return false, err
		}
		minEntries := t.minChild
		if child.Leaf {
			minEntries = t.minLeaf
		}
		if child.Len() < minEntries {
			// Dissolve the underfull child: all its points become orphans.
			if err := t.collectPoints(e.Child, orphans); err != nil {
				return false, err
			}
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
		} else {
			n.Children[i].MBR = child.MBR()
		}
		return true, t.writeNode(id, n)
	}
	return false, nil
}

// collectPoints gathers every point under the subtree at page id.
func (t *Tree) collectPoints(id storage.PageID, out *[]PointEntry) error {
	n, err := t.ReadNode(id)
	if err != nil {
		return err
	}
	if n.Leaf {
		*out = n.AppendPointsTo(*out)
		return nil
	}
	for _, e := range n.Children {
		if err := t.collectPoints(e.Child, out); err != nil {
			return err
		}
	}
	return nil
}
