package rtree

import (
	"repro/internal/geom"
	"repro/internal/storage"
)

// This file implements the incremental nearest-neighbor (INN) algorithm of
// Hjaltason & Samet (TODS 1999), the spatial ranking operator the paper's
// filter step builds on: it emits indexed points in nondecreasing distance
// from a query point, expanding R-tree nodes lazily from a min-heap ordered
// by MINDIST.

// innItem is one heap element: either an unexpanded subtree or a point.
type innItem struct {
	dist2   float64
	isPoint bool
	page    storage.PageID // subtree root when !isPoint
	point   PointEntry     // the point when isPoint
}

// innHeap is a min-heap of innItem by squared distance. Points sort before
// subtrees at equal distance so a point is never emitted after a subtree
// that could contain a closer one (MINDIST is a lower bound, so a subtree at
// the same key cannot beat the point).
//
// The heap is hand-rolled rather than built on container/heap: the interface
// indirection boxes every pushed item into an allocation, and the filter
// traversal pushes one item per leaf point. The sift procedures below mirror
// container/heap's exactly, so the pop order — including tie handling — is
// identical to the previous implementation.
type innHeap []innItem

func (h innHeap) less(i, j int) bool {
	if h[i].dist2 != h[j].dist2 {
		return h[i].dist2 < h[j].dist2
	}
	return h[i].isPoint && !h[j].isPoint
}

func (h *innHeap) push(it innItem) {
	*h = append(*h, it)
	j := len(*h) - 1
	s := *h
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *innHeap) pop() innItem {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	// Sift the swapped-in element down over the n remaining items.
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s.less(j2, j1) {
			j = j2
		}
		if !s.less(j, i) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	it := s[n]
	*h = s[:n]
	return it
}

// INNIterator emits the tree's points in nondecreasing distance from a query
// point. Create one with NewINNIterator; call Next until ok is false.
type INNIterator struct {
	t    *Tree
	q    geom.Point
	heap innHeap
	err  error
}

// NewINNIterator starts an incremental nearest-neighbor scan from q.
func (t *Tree) NewINNIterator(q geom.Point) *INNIterator {
	it := &INNIterator{t: t, q: q}
	if t.root != storage.InvalidPageID {
		it.heap = innHeap{{dist2: 0, page: t.root}}
		// Seeding with the root at distance 0 is correct (root MINDIST from
		// any interior query is 0 anyway and the first Pop expands it).
	}
	return it
}

// Next returns the next nearest point and its exact distance squared.
// ok is false when the tree is exhausted or an I/O error occurred (check
// Err).
func (it *INNIterator) Next() (pe PointEntry, dist2 float64, ok bool) {
	for len(it.heap) > 0 {
		item := it.heap.pop()
		if item.isPoint {
			return item.point, item.dist2, true
		}
		n, err := it.t.ReadNode(item.page)
		if err != nil {
			it.err = err
			return PointEntry{}, 0, false
		}
		if n.Leaf {
			qx, qy := it.q.X, it.q.Y
			xs, ys := n.Xs, n.Ys
			for i, id := range n.IDs {
				dx, dy := qx-xs[i], qy-ys[i]
				it.heap.push(innItem{
					dist2:   dx*dx + dy*dy,
					isPoint: true,
					point:   PointEntry{P: geom.Point{X: xs[i], Y: ys[i]}, ID: id},
				})
			}
		} else {
			for _, e := range n.Children {
				it.heap.push(innItem{dist2: e.MBR.MinDist2(it.q), page: e.Child})
			}
		}
	}
	return PointEntry{}, 0, false
}

// Err returns the first I/O error encountered, if any.
func (it *INNIterator) Err() error { return it.err }

// KNN returns the k nearest indexed points to q in nondecreasing distance
// order (fewer if the tree holds fewer points).
func (t *Tree) KNN(q geom.Point, k int) ([]PointEntry, error) {
	it := t.NewINNIterator(q)
	out := make([]PointEntry, 0, k)
	for len(out) < k {
		pe, _, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, pe)
	}
	return out, it.Err()
}

// NearestNeighbor returns the closest indexed point to q.
func (t *Tree) NearestNeighbor(q geom.Point) (PointEntry, error) {
	pts, err := t.KNN(q, 1)
	if err != nil {
		return PointEntry{}, err
	}
	if len(pts) == 0 {
		return PointEntry{}, ErrEmptyTree
	}
	return pts[0], nil
}
