package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/storage"
)

func newTestTree(t *testing.T, pageSize int) *Tree {
	t.Helper()
	if pageSize == 0 {
		pageSize = storage.DefaultPageSize
	}
	pager := storage.NewMemPager(pageSize)
	tr, err := New(pager, buffer.NewPool(-1), Config{PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randomEntries(rng *rand.Rand, n int) []PointEntry {
	pts := make([]PointEntry, n)
	for i := range pts {
		pts[i] = PointEntry{
			P:  geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000},
			ID: int64(i),
		}
	}
	return pts
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	leaf := NewLeaf(randomEntries(rng, 42))
	buf := make([]byte, storage.DefaultPageSize)
	if err := leaf.Encode(buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Leaf || got.NumPoints() != leaf.NumPoints() {
		t.Fatalf("leaf round trip: got leaf=%v count=%d", got.Leaf, got.NumPoints())
	}
	for i := 0; i < leaf.NumPoints(); i++ {
		if got.EntryAt(i) != leaf.EntryAt(i) {
			t.Fatalf("leaf entry %d mismatch: %+v vs %+v", i, got.EntryAt(i), leaf.EntryAt(i))
		}
	}

	internal := &Node{Children: []ChildEntry{
		{MBR: geom.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}, Child: 7},
		{MBR: geom.Rect{MinX: -5, MinY: 0, MaxX: 5, MaxY: 9.25}, Child: 0},
	}}
	if err := internal.Encode(buf); err != nil {
		t.Fatal(err)
	}
	got, err = DecodeNode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Leaf || len(got.Children) != 2 {
		t.Fatalf("internal round trip: leaf=%v count=%d", got.Leaf, len(got.Children))
	}
	for i := range internal.Children {
		if got.Children[i] != internal.Children[i] {
			t.Fatalf("internal entry %d mismatch", i)
		}
	}
}

func TestNodeEncodeOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewLeaf(randomEntries(rng, LeafCapacity(storage.DefaultPageSize)+1))
	buf := make([]byte, storage.DefaultPageSize)
	if err := n.Encode(buf); err == nil {
		t.Fatal("encoding an overfull node succeeded")
	}
}

func TestDecodeCorruptPage(t *testing.T) {
	buf := make([]byte, storage.DefaultPageSize)
	buf[0] = 1 // leaf
	buf[2] = 0xFF
	buf[3] = 0xFF // count 65535, way past the page
	if _, err := DecodeNode(buf); err == nil {
		t.Fatal("decoding a corrupt page succeeded")
	}
	if _, err := DecodeNode(buf[:2]); err == nil {
		t.Fatal("decoding a truncated page succeeded")
	}
}

func TestInsertInvariantsAndScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := newTestTree(t, 0)
	pts := randomEntries(rng, 3000)
	for i, p := range pts {
		if err := tr.Insert(p.P, p.ID); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if i%977 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("invariants broken after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != len(pts) {
		t.Fatalf("size %d, want %d", tr.Size(), len(pts))
	}
	if tr.Height() < 2 {
		t.Fatalf("3000 points should not fit a single node (height %d)", tr.Height())
	}
	got, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("scan returned %d points, want %d", len(got), len(pts))
	}
	seen := map[int64]bool{}
	for _, g := range got {
		if seen[g.ID] {
			t.Fatalf("duplicate id %d in scan", g.ID)
		}
		seen[g.ID] = true
	}
}

func TestBulkLoadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 2, 41, 42, 43, 1000, 5000} {
		tr := newTestTree(t, 0)
		pts := randomEntries(rng, n)
		if err := tr.BulkLoad(pts, 0); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Size() != n {
			t.Fatalf("n=%d: size %d", n, tr.Size())
		}
		// STR packs fully, so underfull-node invariants don't apply; check
		// reachability and MBR containment by scan + manual walk.
		got, err := tr.ScanAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: scan %d", n, len(got))
		}
		if n > 0 {
			mbr, err := tr.RootMBR()
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range got {
				if !mbr.ContainsPoint(p.P) {
					t.Fatalf("n=%d: point outside root MBR", n)
				}
			}
		}
	}
}

func TestRangeSearchMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randomEntries(rng, 2000)
	for _, build := range []string{"insert", "bulk"} {
		tr := newTestTree(t, 0)
		if build == "bulk" {
			if err := tr.BulkLoad(pts, 0); err != nil {
				t.Fatal(err)
			}
		} else {
			for _, p := range pts {
				if err := tr.Insert(p.P, p.ID); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 25; i++ {
			w := geom.Rect{
				MinX: rng.Float64() * 9000,
				MinY: rng.Float64() * 9000,
			}
			w.MaxX = w.MinX + rng.Float64()*2000
			w.MaxY = w.MinY + rng.Float64()*2000
			got, err := tr.RangeSearch(w)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for _, p := range pts {
				if w.ContainsPoint(p.P) {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("%s build: range %d returned %d, want %d", build, i, len(got), want)
			}
		}
	}
}

func TestCircleSearchMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randomEntries(rng, 1500)
	tr := newTestTree(t, 0)
	if err := tr.BulkLoad(pts, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		c := geom.Circle{
			Center: geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000},
			Radius: rng.Float64() * 1500,
		}
		got, err := tr.CircleSearch(c)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, p := range pts {
			if c.Covers(p.P) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("circle %d returned %d, want %d", i, len(got), want)
		}
	}
}

func TestAnyInCircleRespectsExclusions(t *testing.T) {
	tr := newTestTree(t, 0)
	pts := []PointEntry{
		{P: geom.Point{X: 0, Y: 0}, ID: 1},
		{P: geom.Point{X: 10, Y: 0}, ID: 2},
		{P: geom.Point{X: 5, Y: 1}, ID: 3},
	}
	if err := tr.BulkLoad(pts, 0); err != nil {
		t.Fatal(err)
	}
	c := geom.EnclosingCircle(pts[0].P, pts[1].P)
	hit, err := tr.AnyInCircle(c, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("interior point 3 not found")
	}
	hit, err = tr.AnyInCircle(geom.EnclosingCircle(pts[0].P, pts[2].P), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("false positive: only excluded points are in the circle")
	}
}

func TestINNEmitsInDistanceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomEntries(rng, 1200)
	tr := newTestTree(t, 0)
	if err := tr.BulkLoad(pts, 0); err != nil {
		t.Fatal(err)
	}
	q := geom.Point{X: 5000, Y: 5000}
	it := tr.NewINNIterator(q)
	var dists []float64
	count := 0
	for {
		_, d2, ok := it.Next()
		if !ok {
			break
		}
		dists = append(dists, d2)
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if count != len(pts) {
		t.Fatalf("INN emitted %d points, want %d", count, len(pts))
	}
	if !sort.Float64sAreSorted(dists) {
		t.Fatal("INN emitted points out of distance order")
	}
}

func TestKNNMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randomEntries(rng, 500)
	tr := newTestTree(t, 0)
	if err := tr.BulkLoad(pts, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		q := geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		k := 1 + rng.Intn(20)
		got, err := tr.KNN(q, k)
		if err != nil {
			t.Fatal(err)
		}
		d := make([]float64, len(pts))
		for j, p := range pts {
			d[j] = q.Dist2(p.P)
		}
		sort.Float64s(d)
		if len(got) != k {
			t.Fatalf("KNN returned %d, want %d", len(got), k)
		}
		for j := range got {
			if diff := q.Dist2(got[j].P) - d[j]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("KNN rank %d dist2 %g, want %g", j, q.Dist2(got[j].P), d[j])
			}
		}
	}
}

func TestVisitLeavesCoversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomEntries(rng, 800)
	tr := newTestTree(t, 0)
	if err := tr.BulkLoad(pts, 0); err != nil {
		t.Fatal(err)
	}
	var visited int
	if err := tr.VisitLeaves(func(n *Node) error {
		if !n.Leaf {
			t.Fatal("VisitLeaves yielded a non-leaf")
		}
		visited += n.NumPoints()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if visited != len(pts) {
		t.Fatalf("leaves hold %d points, want %d", visited, len(pts))
	}
	pages, err := tr.LeafPages()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, id := range pages {
		n, err := tr.ReadNode(id)
		if err != nil {
			t.Fatal(err)
		}
		total += n.NumPoints()
	}
	if total != len(pts) {
		t.Fatalf("LeafPages holds %d points, want %d", total, len(pts))
	}
}

func TestSmallPageSize(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// 256-byte pages force deep trees and many splits/reinserts.
	tr := newTestTree(t, 256)
	pts := randomEntries(rng, 600)
	for _, p := range pts {
		if err := tr.Insert(p.P, p.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Fatalf("600 points on 256B pages should be at least 3 levels, got %d", tr.Height())
	}
}

func TestDuplicatePointsSurvive(t *testing.T) {
	tr := newTestTree(t, 0)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(geom.Point{X: 42, Y: 42}, int64(i)); err != nil {
			t.Fatalf("insert duplicate %d: %v", i, err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.RangeSearch(geom.Rect{MinX: 42, MinY: 42, MaxX: 42, MaxY: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("found %d duplicates, want 200", len(got))
	}
}

// TestQuickRangeEqualsLinear is a property test: for random point sets and
// random windows, indexed range search equals the linear scan.
func TestQuickRangeEqualsLinear(t *testing.T) {
	f := func(seed int64, nRaw uint8, window [4]float64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%300 + 1
		pts := randomEntries(rng, n)
		tr := newTestTree(t, 0)
		if err := tr.BulkLoad(pts, 0); err != nil {
			return false
		}
		w := geom.Rect{
			MinX: mod(window[0], 10000), MinY: mod(window[1], 10000),
		}
		w.MaxX = w.MinX + mod(window[2], 5000)
		w.MaxY = w.MinY + mod(window[3], 5000)
		got, err := tr.RangeSearch(w)
		if err != nil {
			return false
		}
		want := 0
		for _, p := range pts {
			if w.ContainsPoint(p.P) {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// mod maps an arbitrary quick-generated float (possibly NaN/Inf) into
// [0, m).
func mod(v, m float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	v = math.Mod(math.Abs(v), m)
	return v
}
