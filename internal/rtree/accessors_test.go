package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

func TestAccessors(t *testing.T) {
	tr := newTestTree(t, 0)
	if tr.Root() != storage.InvalidPageID {
		t.Fatal("empty tree has a root")
	}
	if tr.LeafCap() != LeafCapacity(storage.DefaultPageSize) {
		t.Fatalf("LeafCap %d", tr.LeafCap())
	}
	if tr.InternalCap() != InternalCapacity(storage.DefaultPageSize) {
		t.Fatalf("InternalCap %d", tr.InternalCap())
	}
	if tr.Pool() == nil {
		t.Fatal("nil pool")
	}
	if _, err := tr.RootMBR(); err == nil {
		t.Fatal("RootMBR on empty tree must error")
	}
	rng := rand.New(rand.NewSource(1))
	pts := randomEntries(rng, 100)
	if err := tr.BulkLoad(pts, 0); err != nil {
		t.Fatal(err)
	}
	if tr.Root() == storage.InvalidPageID {
		t.Fatal("loaded tree has no root")
	}
	if tr.NumPages() == 0 {
		t.Fatal("no pages after load")
	}
}

func TestNearestNeighbor(t *testing.T) {
	tr := newTestTree(t, 0)
	if _, err := tr.NearestNeighbor(geom.Point{}); err == nil {
		t.Fatal("NN on empty tree must error")
	}
	rng := rand.New(rand.NewSource(2))
	pts := randomEntries(rng, 300)
	if err := tr.BulkLoad(pts, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q := geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		got, err := tr.NearestNeighbor(q)
		if err != nil {
			t.Fatal(err)
		}
		best := pts[0]
		for _, p := range pts {
			if q.Dist2(p.P) < q.Dist2(best.P) {
				best = p
			}
		}
		if q.Dist2(got.P) != q.Dist2(best.P) {
			t.Fatalf("NN of %+v: got dist2 %g, want %g", q, q.Dist2(got.P), q.Dist2(best.P))
		}
	}
}
