package rtree

import (
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// NodeCache is a second-level cache of decoded nodes that sits beside the
// buffer pool. The pool models the paper's page buffer: its capacity is the
// experiment's knob and its miss count is the page-fault metric, so it must
// stay small and honest. The node cache changes neither — it serves a pool
// MISS (still counted as a fault) from an already-decoded node instead of
// re-reading the page from the pager and re-decoding it. Over a remote pager
// that skips an HTTP round trip; locally it skips the copy and decode.
//
// Entries are keyed by (owner, page). The owner id acts as a generation: each
// opened index registers a fresh owner, and closing the index invalidates the
// whole generation, so a reopened (possibly rewritten) file can never observe
// stale nodes. Cached trees must be read-only; the engine only attaches the
// cache to indexes opened from immutable files.
//
// NodeCache is safe for concurrent use.
type NodeCache struct {
	mu      sync.Mutex
	cap     int
	entries map[nodeCacheKey]*nodeCacheEntry
	head    *nodeCacheEntry // most recently used
	tail    *nodeCacheEntry // least recently used

	hits      atomic.Int64
	misses    atomic.Int64
	nextOwner atomic.Uint64
}

type nodeCacheKey struct {
	owner uint64
	page  storage.PageID
}

type nodeCacheEntry struct {
	key        nodeCacheKey
	node       *Node
	prev, next *nodeCacheEntry
}

// NewNodeCache creates a cache holding at most capacity decoded nodes.
// capacity <= 0 returns nil, the disabled cache (all methods are nil-safe at
// the Tree call sites, which check for nil before use).
func NewNodeCache(capacity int) *NodeCache {
	if capacity <= 0 {
		return nil
	}
	return &NodeCache{
		cap:     capacity,
		entries: make(map[nodeCacheKey]*nodeCacheEntry, capacity),
	}
}

// NewOwner allocates a fresh owner id (generation). Never zero, so the
// zero-valued Tree field means "no cache attached".
func (c *NodeCache) NewOwner() uint64 {
	return c.nextOwner.Add(1)
}

// Get returns the cached node for (owner, page), refreshing its recency.
func (c *NodeCache) Get(owner uint64, page storage.PageID) (*Node, bool) {
	c.mu.Lock()
	e, ok := c.entries[nodeCacheKey{owner: owner, page: page}]
	if ok {
		c.moveToFront(e)
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e.node, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put inserts or refreshes the node for (owner, page), evicting the least
// recently used entry when over capacity.
func (c *NodeCache) Put(owner uint64, page storage.PageID, n *Node) {
	key := nodeCacheKey{owner: owner, page: page}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.node = n
		c.moveToFront(e)
		return
	}
	e := &nodeCacheEntry{key: key, node: n}
	c.entries[key] = e
	c.pushFront(e)
	for len(c.entries) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
	}
}

// InvalidateOwner drops every entry of one generation. Called when an index
// is closed or unloaded, so its owner id can never serve stale pages.
func (c *NodeCache) InvalidateOwner(owner uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for e := c.head; e != nil; {
		next := e.next
		if e.key.owner == owner {
			c.unlink(e)
			delete(c.entries, e.key)
		}
		e = next
	}
}

// Len returns the number of cached nodes.
func (c *NodeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative hit/miss counts.
func (c *NodeCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

func (c *NodeCache) pushFront(e *nodeCacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *NodeCache) unlink(e *nodeCacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *NodeCache) moveToFront(e *nodeCacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
