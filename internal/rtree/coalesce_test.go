package rtree

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/storage"
)

// rangePager wraps a MemPager with a PageRangeReader implementation that
// records every run it serves, standing in for the HTTP backend in tests.
type rangePager struct {
	storage.Pager
	mu   sync.Mutex
	runs [][2]int // {first, n} per ReadPageRange call
}

func (p *rangePager) ReadPageRange(first storage.PageID, n int) ([][]byte, error) {
	p.mu.Lock()
	p.runs = append(p.runs, [2]int{int(first), n})
	p.mu.Unlock()
	pages := make([][]byte, n)
	for i := range pages {
		pages[i] = make([]byte, p.PageSize())
		if err := p.ReadPage(first+storage.PageID(i), pages[i]); err != nil {
			return nil, err
		}
	}
	return pages, nil
}

// TestOfferChildrenCoalesces pins the readahead coalescing: over a
// range-capable pager, the prefetch cascade fetches runs of adjacent
// sibling pages together instead of one request per child, and the
// prefetched tree answers searches identically.
func TestOfferChildrenCoalesces(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mem := storage.NewMemPager(storage.DefaultPageSize)
	built, err := New(mem, buffer.NewPool(-1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	entries := randomEntries(rng, 3000)
	if err := built.BulkLoad(entries, 0); err != nil {
		t.Fatal(err)
	}

	rp := &rangePager{Pager: mem}
	pool := buffer.NewPool(-1)
	reopened, err := Open(rp, pool, Config{}, built.Meta())
	if err != nil {
		t.Fatal(err)
	}
	pf := buffer.NewPrefetcher(pool, 2, 256)
	defer pf.Close()
	reopened.SetPrefetcher(pf) // offers the root's children immediately

	// Wait for the cascade to quiesce: bulk load writes siblings
	// contiguously, so at 3000 points the root fan-out alone must contain
	// at least one multi-page run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rp.mu.Lock()
		n := len(rp.runs)
		rp.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no coalesced runs observed")
		}
		time.Sleep(time.Millisecond)
	}
	ps := pf.Stats()
	if ps.Failed != 0 {
		t.Fatalf("prefetch failures: %+v", ps)
	}
	rp.mu.Lock()
	runs := append([][2]int(nil), rp.runs...)
	rp.mu.Unlock()
	for _, r := range runs {
		if r[1] < 2 {
			t.Fatalf("single-page run %v went through ReadPageRange", r)
		}
		if r[1] > maxCoalescedRun {
			t.Fatalf("run %v exceeds maxCoalescedRun %d", r, maxCoalescedRun)
		}
	}

	// Prefetched pages decode to nodes the traversal can use: a search over
	// the reopened tree matches the built tree.
	w := geom.Rect{MinX: 2000, MinY: 2000, MaxX: 7000, MaxY: 7000}
	a, err := built.RangeSearch(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := reopened.RangeSearch(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("range search over prefetched tree: %d vs %d results", len(b), len(a))
	}
}
