package rtree

import (
	"sort"

	"repro/internal/geom"
)

// chooseSplit implements the R*-tree split of a set of rectangles into two
// groups, returning the element indices of each group.
//
// Axis selection: for each axis, entries are sorted by lower and by upper
// coordinate; for every legal distribution (first k entries vs the rest,
// minFill ≤ k ≤ len−minFill) the sum of the two group margins is accumulated;
// the axis with the smaller total margin wins. Index selection: among the
// distributions of the winning axis, pick minimal overlap area between the
// two group MBRs, breaking ties by minimal total area.
func chooseSplit(rects []geom.Rect, minFill int) (left, right []int) {
	n := len(rects)
	if minFill < 1 {
		minFill = 1
	}
	if minFill > n/2 {
		minFill = n / 2
	}

	type distribution struct {
		order []int
		k     int // first k indices form the left group
	}

	evalAxis := func(lower, upper func(geom.Rect) float64) (float64, []distribution) {
		orders := make([][]int, 2)
		for oi, key := range []func(geom.Rect) float64{lower, upper} {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool {
				ra, rb := rects[idx[a]], rects[idx[b]]
				if key(ra) != key(rb) {
					return key(ra) < key(rb)
				}
				// Secondary sort by the other bound keeps ordering total.
				return upper(ra) < upper(rb)
			})
			orders[oi] = idx
		}
		marginSum := 0.0
		var dists []distribution
		for _, order := range orders {
			for k := minFill; k <= n-minFill; k++ {
				lm := groupMBR(rects, order[:k])
				rm := groupMBR(rects, order[k:])
				marginSum += lm.Margin() + rm.Margin()
				dists = append(dists, distribution{order: order, k: k})
			}
		}
		return marginSum, dists
	}

	xMargin, xDists := evalAxis(
		func(r geom.Rect) float64 { return r.MinX },
		func(r geom.Rect) float64 { return r.MaxX },
	)
	yMargin, yDists := evalAxis(
		func(r geom.Rect) float64 { return r.MinY },
		func(r geom.Rect) float64 { return r.MaxY },
	)

	dists := xDists
	if yMargin < xMargin {
		dists = yDists
	}

	bestOverlap, bestArea := 0.0, 0.0
	var best distribution
	for i, d := range dists {
		lm := groupMBR(rects, d.order[:d.k])
		rm := groupMBR(rects, d.order[d.k:])
		overlap := lm.OverlapArea(rm)
		area := lm.Area() + rm.Area()
		if i == 0 || overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			best, bestOverlap, bestArea = d, overlap, area
		}
	}

	left = append([]int(nil), best.order[:best.k]...)
	right = append([]int(nil), best.order[best.k:]...)
	return left, right
}

// chooseSplitLinear implements Guttman's linear split (the original R-tree
// policy): pick as seeds the pair with the greatest normalized separation
// along either axis, then assign each remaining entry to the group whose MBR
// it enlarges least, forcing assignment when a group must absorb the rest to
// reach minFill. It is cheaper than the R* split but yields more overlapping
// nodes; the ablation benchmarks quantify what that costs the join.
func chooseSplitLinear(rects []geom.Rect, minFill int) (left, right []int) {
	n := len(rects)
	if minFill < 1 {
		minFill = 1
	}
	if minFill > n/2 {
		minFill = n / 2
	}

	// Seed selection: highest (separation / width) over the two axes.
	lowIdx := func(key func(geom.Rect) float64) int {
		best := 0
		for i := 1; i < n; i++ {
			if key(rects[i]) > key(rects[best]) {
				best = i
			}
		}
		return best
	}
	highIdx := func(key func(geom.Rect) float64) int {
		best := 0
		for i := 1; i < n; i++ {
			if key(rects[i]) < key(rects[best]) {
				best = i
			}
		}
		return best
	}
	world := groupMBR(rects, seq(n))
	type axis struct {
		lo, hi int
		norm   float64
	}
	ax := axis{
		lo: lowIdx(func(r geom.Rect) float64 { return r.MinX }),
		hi: highIdx(func(r geom.Rect) float64 { return r.MaxX }),
	}
	if w := world.MaxX - world.MinX; w > 0 {
		ax.norm = (rects[ax.lo].MinX - rects[ax.hi].MaxX) / w
	}
	ay := axis{
		lo: lowIdx(func(r geom.Rect) float64 { return r.MinY }),
		hi: highIdx(func(r geom.Rect) float64 { return r.MaxY }),
	}
	if h := world.MaxY - world.MinY; h > 0 {
		ay.norm = (rects[ay.lo].MinY - rects[ay.hi].MaxY) / h
	}
	seedA, seedB := ax.lo, ax.hi
	if ay.norm > ax.norm {
		seedA, seedB = ay.lo, ay.hi
	}
	if seedA == seedB {
		// Degenerate (all rects equal): split arbitrarily in half.
		return seq(n)[:n/2], seq(n)[n/2:]
	}

	left = []int{seedA}
	right = []int{seedB}
	lm, rm := rects[seedA], rects[seedB]
	for i := 0; i < n; i++ {
		if i == seedA || i == seedB {
			continue
		}
		// remaining counts unassigned entries beyond the current one; a
		// group is force-fed when it needs every one of them (current
		// included) to reach minFill.
		remaining := n - len(left) - len(right) - 1
		switch {
		case minFill-len(left) > remaining:
			left = append(left, i)
			lm = lm.Union(rects[i])
		case minFill-len(right) > remaining:
			right = append(right, i)
			rm = rm.Union(rects[i])
		default:
			if lm.Enlargement(rects[i]) <= rm.Enlargement(rects[i]) {
				left = append(left, i)
				lm = lm.Union(rects[i])
			} else {
				right = append(right, i)
				rm = rm.Union(rects[i])
			}
		}
	}
	return left, right
}

// seq returns [0, 1, ..., n-1].
func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// groupMBR returns the MBR of the rectangles selected by idx.
func groupMBR(rects []geom.Rect, idx []int) geom.Rect {
	r := geom.EmptyRect()
	for _, i := range idx {
		r = r.Union(rects[i])
	}
	return r
}
