package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/storage"
)

// TestOpenReattachesWithoutRebuild builds a tree, then Opens a second Tree
// over the same page image from Meta alone: the reopened tree must pass the
// full structural Check and answer searches identically — without a single
// page write.
func TestOpenReattachesWithoutRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pager := storage.NewMemPager(storage.DefaultPageSize)
	built, err := New(pager, buffer.NewPool(-1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := built.BulkLoad(randomEntries(rng, 2000), 0); err != nil {
		t.Fatal(err)
	}
	writesBefore := pager.Stats().Writes

	reopened, err := Open(pager, buffer.NewPool(-1), Config{Owner: 9}, built.Meta())
	if err != nil {
		t.Fatal(err)
	}
	if pager.Stats().Writes != writesBefore {
		t.Fatalf("Open wrote %d pages", pager.Stats().Writes-writesBefore)
	}
	if reopened.Size() != built.Size() || reopened.Height() != built.Height() || reopened.Root() != built.Root() {
		t.Fatalf("reopened meta %+v != built %+v", reopened.Meta(), built.Meta())
	}
	if err := reopened.Check(); err != nil {
		t.Fatal(err)
	}
	w := geom.Rect{MinX: 2000, MinY: 2000, MaxX: 7000, MaxY: 7000}
	a, err := built.RangeSearch(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := reopened.RangeSearch(w)
	if err != nil {
		t.Fatal(err)
	}
	byID := func(s []PointEntry) { sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID }) }
	byID(a)
	byID(b)
	if len(a) != len(b) {
		t.Fatalf("range search: %d vs %d results", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestOpenRejectsBadMeta(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pager := storage.NewMemPager(storage.DefaultPageSize)
	built, err := New(pager, buffer.NewPool(-1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := built.BulkLoad(randomEntries(rng, 500), 0); err != nil {
		t.Fatal(err)
	}
	meta := built.Meta()
	cases := map[string]Meta{
		"root out of range": {Root: storage.PageID(pager.NumPages()), Height: meta.Height, Size: meta.Size},
		"invalid root":      {Root: storage.InvalidPageID, Height: meta.Height, Size: meta.Size},
		"zero height":       {Root: meta.Root, Height: 0, Size: meta.Size},
		"leafness mismatch": {Root: meta.Root, Height: 1, Size: meta.Size},
		"empty but rooted":  {Root: meta.Root, Height: meta.Height, Size: 0},
	}
	if meta.Height < 2 {
		t.Fatal("test needs a multi-level tree")
	}
	for name, m := range cases {
		if _, err := Open(pager, buffer.NewPool(-1), Config{}, m); err == nil {
			t.Errorf("Open(%s) succeeded", name)
		}
	}
}
