package rtree

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/storage"
)

// SplitPolicy selects the algorithm used to split overfull nodes.
type SplitPolicy int

const (
	// SplitRStar is the R*-tree topological split (margin-driven axis
	// choice, overlap-minimizing distribution) — the paper's index.
	SplitRStar SplitPolicy = iota
	// SplitLinear is Guttman's original linear split: cheaper, but yields
	// more node overlap. Provided for the index-quality ablation.
	SplitLinear
)

// Config controls tree construction.
type Config struct {
	// PageSize is the on-disk page size in bytes; the paper's evaluation
	// uses 1024. Defaults to storage.DefaultPageSize when zero.
	PageSize int
	// MinFillRatio is the minimum node fill as a fraction of capacity
	// (the R*-tree paper recommends 0.4). Defaults to 0.4.
	MinFillRatio float64
	// ReinsertRatio is the fraction of entries removed for forced
	// reinsertion on the first overflow per level (R* recommends 0.3).
	// Defaults to 0.3.
	ReinsertRatio float64
	// SplitPolicy selects the node-split algorithm; the default is the R*
	// split the paper's indexes use.
	SplitPolicy SplitPolicy
	// Owner tags this tree's pages in a shared buffer pool.
	Owner uint32
}

func (c Config) withDefaults() Config {
	if c.PageSize <= 0 {
		c.PageSize = storage.DefaultPageSize
	}
	if c.MinFillRatio <= 0 || c.MinFillRatio > 0.5 {
		c.MinFillRatio = 0.4
	}
	if c.ReinsertRatio <= 0 || c.ReinsertRatio >= 1 {
		c.ReinsertRatio = 0.3
	}
	return c
}

// Tree is a disk-page R*-tree over 2D points. All node reads go through the
// buffer pool, so the pool's miss counter is exactly the tree's page-fault
// count. Tree is not safe for concurrent mutation; concurrent reads are safe
// once building is complete.
type Tree struct {
	pager storage.Pager
	pool  *buffer.Pool
	cfg   Config

	maxLeaf, minLeaf   int
	maxChild, minChild int

	root   storage.PageID
	height int // 1 when the root is a leaf; 0 for an empty tree
	size   int // number of indexed points

	pageBuf []byte // scratch page for encoding

	tag *buffer.TagStats // per-request attribution for reads; nil on the base tree

	prefetch *buffer.Prefetcher // async readahead of child pages; nil = off

	nodeCache  *NodeCache // second-level decoded-node cache; nil = off
	cacheOwner uint64     // this tree's generation in nodeCache
}

// ErrEmptyTree is returned by operations that need at least one point.
var ErrEmptyTree = errors.New("rtree: tree is empty")

// New creates an empty tree whose pages are allocated from pager and cached
// in pool. The pool may be shared with other trees (distinct Config.Owner).
func New(pager storage.Pager, pool *buffer.Pool, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	if pager.PageSize() != cfg.PageSize {
		return nil, fmt.Errorf("rtree: pager page size %d != config page size %d", pager.PageSize(), cfg.PageSize)
	}
	t := &Tree{
		pager:   pager,
		pool:    pool,
		cfg:     cfg,
		pageBuf: make([]byte, cfg.PageSize),
	}
	t.maxLeaf = LeafCapacity(cfg.PageSize)
	t.maxChild = InternalCapacity(cfg.PageSize)
	if t.maxLeaf < 4 || t.maxChild < 4 {
		return nil, fmt.Errorf("rtree: page size %d too small (leaf capacity %d, internal capacity %d)", cfg.PageSize, t.maxLeaf, t.maxChild)
	}
	t.minLeaf = max(2, int(float64(t.maxLeaf)*cfg.MinFillRatio))
	t.minChild = max(2, int(float64(t.maxChild)*cfg.MinFillRatio))
	t.root = storage.InvalidPageID
	return t, nil
}

// Meta is the durable identity of a built tree: everything Open needs to
// reattach to an existing page image without touching a single point. It is
// what the storage superblock persists.
type Meta struct {
	// Root is the page id of the root node (storage.InvalidPageID when the
	// tree is empty).
	Root storage.PageID
	// Height is the number of levels (1 when the root is a leaf, 0 empty).
	Height int
	// Size is the number of indexed points.
	Size int
}

// Meta returns the tree's persistence metadata.
func (t *Tree) Meta() Meta {
	return Meta{Root: t.root, Height: t.height, Size: t.size}
}

// Open reattaches a tree to an existing page image: pager already holds the
// node pages (typically an index file reopened through storage.OpenIndexFile)
// and meta identifies the root. No points are read and no pages are written —
// the one page Open touches is the root, to verify it decodes and its
// leafness matches meta.Height, so gross superblock/page mismatches fail here
// rather than mid-query. cfg must carry the page size the pages were encoded
// with (and the Owner namespacing this tree in a shared pool).
func Open(pager storage.Pager, pool *buffer.Pool, cfg Config, meta Meta) (*Tree, error) {
	t, err := New(pager, pool, cfg)
	if err != nil {
		return nil, err
	}
	if meta.Size == 0 {
		if meta.Root != storage.InvalidPageID || meta.Height != 0 {
			return nil, fmt.Errorf("rtree: open empty tree with root %d height %d", meta.Root, meta.Height)
		}
		return t, nil
	}
	if meta.Height < 1 || meta.Root == storage.InvalidPageID || int(meta.Root) >= pager.NumPages() {
		return nil, fmt.Errorf("rtree: open with root %d height %d over %d pages", meta.Root, meta.Height, pager.NumPages())
	}
	t.root, t.height, t.size = meta.Root, meta.Height, meta.Size
	root, err := t.ReadNode(t.root)
	if err != nil {
		return nil, fmt.Errorf("rtree: open: read root: %w", err)
	}
	if root.Leaf != (meta.Height == 1) {
		return nil, fmt.Errorf("rtree: open: root leaf=%v inconsistent with height %d", root.Leaf, meta.Height)
	}
	return t, nil
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels (1 when the root is a leaf, 0 when the
// tree is empty).
func (t *Tree) Height() int { return t.height }

// Root returns the page id of the root node, or storage.InvalidPageID for an
// empty tree.
func (t *Tree) Root() storage.PageID { return t.root }

// NumPages returns the number of pages this tree has allocated. With one
// tree per pager this equals the tree size in pages, the quantity buffer
// capacity is expressed against in the paper (buffer = x% of total tree
// sizes).
func (t *Tree) NumPages() int { return t.pager.NumPages() }

// Pool returns the buffer pool the tree reads through.
func (t *Tree) Pool() *buffer.Pool { return t.pool }

// PageSize returns the page size the tree's nodes are encoded for.
func (t *Tree) PageSize() int { return t.cfg.PageSize }

// LeafCap returns the leaf-node entry capacity.
func (t *Tree) LeafCap() int { return t.maxLeaf }

// InternalCap returns the internal-node entry capacity.
func (t *Tree) InternalCap() int { return t.maxChild }

// Tagged returns a read-only view of the tree whose node reads are
// additionally attributed to tag (see buffer.TagStats): same pages, same
// pool, exact per-request hit/miss accounting under concurrency. The view
// shares all immutable state with t and is safe for concurrent reads
// alongside t and any other views; it must not be used to mutate the tree.
func (t *Tree) Tagged(tag *buffer.TagStats) *Tree {
	view := *t
	view.tag = tag
	view.pageBuf = nil // views are read-only; don't alias the write scratch page
	return &view
}

// SetPrefetcher attaches an async readahead executor: whenever a traversal
// faults an internal node in, the pages of all its children are offered to
// pf, so a high-latency pager (HTTP ranges) overlaps their round trips with
// the CPU work on the current node. The root's children are offered
// immediately (Open already cached the root, so its fault will never
// re-occur to trigger them). Call after Open and before the tree serves
// concurrent reads; tagged views created afterwards inherit it. The caller
// owns pf's lifecycle (Close it before the pager).
func (t *Tree) SetPrefetcher(pf *buffer.Prefetcher) {
	t.prefetch = pf
	if pf == nil || t.root == storage.InvalidPageID || t.height < 2 {
		return
	}
	if root, err := t.ReadNode(t.root); err == nil && !root.Leaf {
		t.offerChildren(root, readaheadDepth)
	}
}

// readaheadDepth bounds how many levels below a demand-faulted node the
// prefetch cascade may reach. Depth 2 covers a faulted node's children and
// grandchildren — enough for the cascade to stay ahead of a full-join
// traversal (each deeper demand fault renews the budget) while capping how
// much of a subtree a *pruned* traversal pays for: a selective query
// (top-k, region window) never drags in whole subtrees it will never visit.
const readaheadDepth = 2

// maxCoalescedRun caps how many adjacent sibling pages one coalesced
// readahead fetches in a single substrate operation: long enough to collapse
// a whole sibling fan-out (bulk load writes siblings contiguously) into one
// round trip, short enough that one request never pins a huge body.
const maxCoalescedRun = 16

// offerChildren enqueues readahead for every child page of an internal
// node. A prefetch load that turns out to be internal offers its own
// children from inside the worker while depth remains, so the readahead
// cascades ahead of the traversal without the demand path ever re-offering
// on warm reads; the prefetcher's bounded queue (shed on full) and the
// depth budget keep the cascade from flooding a selective query with the
// whole tree.
//
// Over a pager that can read page runs (storage.PageRangeReader — the HTTP
// backend), runs of adjacent sibling pages are offered as one coalesced
// batch job: bulk load allocates siblings contiguously, so a node's whole
// fan-out typically costs one ranged request instead of one per child.
func (t *Tree) offerChildren(n *Node, depth int) {
	if depth <= 0 {
		return
	}
	rr, _ := t.pager.(storage.PageRangeReader)
	if rr == nil || len(n.Children) < 2 {
		for _, e := range n.Children {
			t.offerChild(e.Child, depth)
		}
		return
	}
	ids := make([]storage.PageID, len(n.Children))
	for i, e := range n.Children {
		ids[i] = e.Child
	}
	slices.Sort(ids)
	for start := 0; start < len(ids); {
		end := start + 1
		for end < len(ids) && end-start < maxCoalescedRun && ids[end] == ids[end-1]+1 {
			end++
		}
		if end-start == 1 {
			t.offerChild(ids[start], depth)
		} else {
			t.offerChildRun(rr, ids[start], end-start, depth)
		}
		start = end
	}
}

// offerChild enqueues readahead for one child page.
func (t *Tree) offerChild(child storage.PageID, depth int) {
	t.prefetch.Offer(buffer.Key{Owner: t.cfg.Owner, Page: child}, func() (any, error) {
		v, err := t.loadNode(child)
		if err == nil {
			if cn, ok := v.(*Node); ok && !cn.Leaf {
				t.offerChildren(cn, depth-1)
			}
		}
		return v, err
	})
}

// offerChildRun enqueues one coalesced readahead for n adjacent sibling
// pages starting at first: one ranged fetch, decoded per page, with the
// cascade continuing under each child that turns out internal.
func (t *Tree) offerChildRun(rr storage.PageRangeReader, first storage.PageID, n, depth int) {
	keys := make([]buffer.Key, n)
	for i := range keys {
		keys[i] = buffer.Key{Owner: t.cfg.Owner, Page: first + storage.PageID(i)}
	}
	t.prefetch.OfferBatch(keys, func() ([]any, error) {
		pages, err := rr.ReadPageRange(first, n)
		if err != nil {
			return nil, err
		}
		vals := make([]any, n)
		for i, pg := range pages {
			nd, err := DecodeNode(pg)
			if err != nil {
				return nil, err
			}
			vals[i] = nd
			if !nd.Leaf {
				t.offerChildren(nd, depth-1)
			}
		}
		return vals, nil
	})
}

// loadNode reads and decodes page id straight from the pager, bypassing the
// buffer pool: the shared load path of demand reads and prefetches. With a
// node cache attached, a pool miss is served from the cached decoded node
// when possible — the pool's fault accounting is unchanged (this path only
// runs on a miss), but the pager read and the decode are skipped.
func (t *Tree) loadNode(id storage.PageID) (any, error) {
	nc := t.nodeCache
	if nc != nil {
		if n, ok := nc.Get(t.cacheOwner, id); ok {
			return n, nil
		}
	}
	buf := make([]byte, t.cfg.PageSize)
	if err := t.pager.ReadPage(id, buf); err != nil {
		return nil, err
	}
	n, err := DecodeNode(buf)
	if err != nil {
		return nil, err
	}
	if nc != nil {
		nc.Put(t.cacheOwner, id, n)
	}
	return n, nil
}

// SetNodeCache attaches a second-level decoded-node cache under the given
// owner id (from NodeCache.NewOwner). The tree must be read-only from then
// on: the cache is never updated by writes, so a mutated tree would serve
// stale nodes. Call InvalidateOwner when the tree is closed. Tagged views
// created afterwards inherit the cache.
func (t *Tree) SetNodeCache(nc *NodeCache, owner uint64) {
	t.nodeCache = nc
	t.cacheOwner = owner
}

// ReadNode fetches the node stored at page id, consulting the buffer pool
// first. Misses are page faults. With a prefetcher attached, the first
// demand read of an internal node — a fault, or the first hit on a page
// readahead brought in — offers all its children for readahead, so the
// cascade's frontier advances with the traversal while warm re-reads of a
// cached node pay nothing for the hook.
func (t *Tree) ReadNode(id storage.PageID) (*Node, error) {
	v, first, err := t.pool.GetTaggedFirst(buffer.Key{Owner: t.cfg.Owner, Page: id}, t.tag, func() (any, error) {
		return t.loadNode(id)
	})
	if err != nil {
		return nil, err
	}
	n := v.(*Node)
	if t.prefetch != nil && first && !n.Leaf {
		t.offerChildren(n, readaheadDepth)
	}
	return n, nil
}

// writeNode serializes n to page id and refreshes the buffer pool.
func (t *Tree) writeNode(id storage.PageID, n *Node) error {
	if err := n.Encode(t.pageBuf); err != nil {
		return err
	}
	if err := t.pager.WritePage(id, t.pageBuf); err != nil {
		return err
	}
	t.pool.Put(buffer.Key{Owner: t.cfg.Owner, Page: id}, n)
	return nil
}

// allocNode allocates a fresh page for n and writes it.
func (t *Tree) allocNode(n *Node) (storage.PageID, error) {
	id, err := t.pager.Allocate()
	if err != nil {
		return storage.InvalidPageID, err
	}
	if err := t.writeNode(id, n); err != nil {
		return storage.InvalidPageID, err
	}
	return id, nil
}

// RootMBR returns the bounding rectangle of the whole tree.
func (t *Tree) RootMBR() (geom.Rect, error) {
	if t.root == storage.InvalidPageID {
		return geom.EmptyRect(), ErrEmptyTree
	}
	n, err := t.ReadNode(t.root)
	if err != nil {
		return geom.EmptyRect(), err
	}
	return n.MBR(), nil
}

// Check walks the whole tree verifying structural invariants: child MBRs
// contain their subtrees, entry counts respect capacity (root excepted for
// the minimum), leaves share one depth, and the point count matches Size.
// It is intended for tests.
func (t *Tree) Check() error {
	if t.root == storage.InvalidPageID {
		if t.size != 0 || t.height != 0 {
			return fmt.Errorf("rtree: empty root but size=%d height=%d", t.size, t.height)
		}
		return nil
	}
	count, err := t.checkNode(t.root, t.height, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: reachable points %d != size %d", count, t.size)
	}
	return nil
}

func (t *Tree) checkNode(id storage.PageID, level int, isRoot bool) (int, error) {
	n, err := t.ReadNode(id)
	if err != nil {
		return 0, err
	}
	if n.Leaf != (level == 1) {
		return 0, fmt.Errorf("rtree: node %d leaf=%v at level %d of height %d", id, n.Leaf, level, t.height)
	}
	if n.Leaf {
		if n.NumPoints() > t.maxLeaf {
			return 0, fmt.Errorf("rtree: leaf %d overfull: %d > %d", id, n.NumPoints(), t.maxLeaf)
		}
		if !isRoot && n.NumPoints() < t.minLeaf {
			return 0, fmt.Errorf("rtree: leaf %d underfull: %d < %d", id, n.NumPoints(), t.minLeaf)
		}
		return n.NumPoints(), nil
	}
	if len(n.Children) > t.maxChild {
		return 0, fmt.Errorf("rtree: node %d overfull: %d > %d", id, len(n.Children), t.maxChild)
	}
	if !isRoot && len(n.Children) < t.minChild {
		return 0, fmt.Errorf("rtree: node %d underfull: %d < %d", id, len(n.Children), t.minChild)
	}
	if isRoot && len(n.Children) < 2 {
		return 0, fmt.Errorf("rtree: internal root %d has %d children", id, len(n.Children))
	}
	total := 0
	for _, e := range n.Children {
		child, err := t.ReadNode(e.Child)
		if err != nil {
			return 0, err
		}
		if got := child.MBR(); !e.MBR.ContainsRect(got) {
			return 0, fmt.Errorf("rtree: node %d entry MBR %+v does not contain child %d MBR %+v", id, e.MBR, e.Child, got)
		}
		c, err := t.checkNode(e.Child, level-1, false)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
