package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/buffer"
	"repro/internal/geom"
	"repro/internal/storage"
)

func splitRects(rng *rand.Rand, n int) []geom.Rect {
	rects := make([]geom.Rect, n)
	for i := range rects {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*50, MaxY: y + rng.Float64()*50}
	}
	return rects
}

// checkSplit verifies the structural contract of any split: a partition of
// all indices with both sides within [minFill, n-minFill].
func checkSplit(t *testing.T, name string, n, minFill int, left, right []int) {
	t.Helper()
	if len(left)+len(right) != n {
		t.Fatalf("%s: split lost entries: %d + %d != %d", name, len(left), len(right), n)
	}
	if len(left) < minFill || len(right) < minFill {
		t.Fatalf("%s: underfull side: %d / %d (min %d)", name, len(left), len(right), minFill)
	}
	seen := make([]bool, n)
	for _, i := range append(append([]int(nil), left...), right...) {
		if i < 0 || i >= n || seen[i] {
			t.Fatalf("%s: invalid or duplicate index %d", name, i)
		}
		seen[i] = true
	}
}

func TestSplitContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(40)
		minFill := 2 + rng.Intn(n/3)
		rects := splitRects(rng, n)
		l, r := chooseSplit(rects, minFill)
		checkSplit(t, "rstar", n, min(minFill, n/2), l, r)
		l, r = chooseSplitLinear(rects, minFill)
		checkSplit(t, "linear", n, min(minFill, n/2), l, r)
	}
}

func TestSplitDegenerateIdenticalRects(t *testing.T) {
	rects := make([]geom.Rect, 20)
	for i := range rects {
		rects[i] = geom.Rect{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}
	}
	l, r := chooseSplit(rects, 8)
	checkSplit(t, "rstar-degenerate", 20, 8, l, r)
	l, r = chooseSplitLinear(rects, 8)
	checkSplit(t, "linear-degenerate", 20, 8, l, r)
}

// TestRStarSplitLowerOverlap verifies the quality property that justifies
// the paper's index choice: on clustered data the R* split produces less
// sibling overlap than the linear split, on average.
func TestRStarSplitLowerOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var rstarOverlap, linearOverlap float64
	for trial := 0; trial < 200; trial++ {
		// Two latent clusters the split should rediscover.
		rects := make([]geom.Rect, 30)
		for i := range rects {
			cx, cy := 100.0, 100.0
			if i%2 == 0 {
				cx, cy = 500.0, 480.0
			}
			x, y := cx+rng.NormFloat64()*60, cy+rng.NormFloat64()*60
			rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + 10, MaxY: y + 10}
		}
		l, r := chooseSplit(rects, 12)
		rstarOverlap += groupMBR(rects, l).OverlapArea(groupMBR(rects, r))
		l, r = chooseSplitLinear(rects, 12)
		linearOverlap += groupMBR(rects, l).OverlapArea(groupMBR(rects, r))
	}
	if rstarOverlap > linearOverlap {
		t.Errorf("R* split produced more overlap than linear: %.0f vs %.0f", rstarOverlap, linearOverlap)
	}
}

func TestLinearSplitTreeInvariants(t *testing.T) {
	pager := storage.NewMemPager(storage.DefaultPageSize)
	tr, err := New(pager, buffer.NewPool(-1), Config{SplitPolicy: SplitLinear})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pts := randomEntries(rng, 2000)
	for _, p := range pts {
		if err := tr.Insert(p.P, p.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("linear-split tree lost points: %d/%d", len(got), len(pts))
	}
	// Query correctness is split-policy independent.
	w := geom.Rect{MinX: 2000, MinY: 2000, MaxX: 4000, MaxY: 4000}
	res, err := tr.RangeSearch(w)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range pts {
		if w.ContainsPoint(p.P) {
			want++
		}
	}
	if len(res) != want {
		t.Fatalf("range on linear-split tree: %d, want %d", len(res), want)
	}
}
