package sched

import (
	"context"
	"errors"
	"testing"

	"repro/rcj"
)

// blockSlot occupies the scheduler's only slot so subsequent requests are
// forced to queue (and, when batching is on, to batch). Returns the release.
func blockSlot(t *testing.T, s *Scheduler) func() {
	t.Helper()
	release, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return release
}

// openBatchMembers counts the members across the scheduler's open batches.
func openBatchMembers(s *Scheduler) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.batches {
		n += len(b.members)
	}
	return n
}

func openBatches(s *Scheduler) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.batches)
}

// soloPairs runs qry directly on the engine, bypassing the scheduler: the
// reference result every batched member must reproduce byte-identically.
func soloPairs(t *testing.T, eng *rcj.Engine, ix *rcj.Index, qry rcj.Query) ([]rcj.Pair, rcj.Stats) {
	t.Helper()
	var st rcj.Stats
	q := qry
	q.Stats = &st
	var out []rcj.Pair
	for pr, err := range eng.RunSelf(context.Background(), ix, q) {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, pr)
	}
	return out, st
}

// assertExactPairs is the byte-identical check: same pairs, same order, same
// float bits (Pair is comparable, so == is bit equality on the floats).
func assertExactPairs(t *testing.T, label string, got, want []rcj.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d: %+v != %+v", label, i, got[i], want[i])
		}
	}
}

// memberResult is one batched request's outcome, collected in its goroutine
// and asserted on the main one.
type memberResult struct {
	pairs []rcj.Pair
	stats rcj.Stats
	err   error
}

// runMember issues one RunSelf through the scheduler and drains it.
func runMember(ctx context.Context, s *Scheduler, ix *rcj.Index, qry rcj.Query, out *memberResult, done chan<- struct{}) {
	defer close(done)
	seq, err := s.RunSelf(ctx, ix, qry, &out.stats)
	if err != nil {
		out.err = err
		return
	}
	for pr, err := range seq {
		if err != nil {
			out.err = err
			return
		}
		out.pairs = append(out.pairs, pr)
	}
}

// TestBatchSharesTraversal pins the core batching property: N identical
// queued requests are served by ONE envelope traversal — each member's
// stream byte-identical to a solo run, per-member stats exact, and the
// traversal's buffer counters aggregated exactly once.
func TestBatchSharesTraversal(t *testing.T) {
	eng, _, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 8, Batch: BatchConfig{Enabled: true}})
	qry := rcj.Query{MaxDiameter: 400}
	want, wantSt := soloPairs(t, eng, p, qry)
	if len(want) == 0 {
		t.Fatal("reference query produced no pairs")
	}

	release := blockSlot(t, s)
	base := s.Snapshot()
	const n = 4
	results := make([]memberResult, n)
	dones := make([]chan struct{}, n)
	for i := range results {
		dones[i] = make(chan struct{})
		go runMember(context.Background(), s, p, qry, &results[i], dones[i])
	}
	waitFor(t, func() bool { return openBatchMembers(s) == n })
	if got := openBatches(s); got != 1 {
		t.Fatalf("%d open batches, want 1", got)
	}
	if got := s.Snapshot().Queued; got != 1 {
		t.Fatalf("batch occupies %d queue slots, want 1", got)
	}
	release()
	for _, done := range dones {
		<-done
	}

	for i := range results {
		if results[i].err != nil {
			t.Fatalf("member %d: %v", i, results[i].err)
		}
		assertExactPairs(t, "member", results[i].pairs, want)
		if results[i].stats.Results != int64(len(want)) {
			t.Fatalf("member %d: stats results %d, want %d", i, results[i].stats.Results, len(want))
		}
		// The shared traversal's logical accesses are deterministic: each
		// member reports exactly the solo run's NodeAccesses.
		if results[i].stats.NodeAccesses != wantSt.NodeAccesses {
			t.Fatalf("member %d: node accesses %d, want %d", i, results[i].stats.NodeAccesses, wantSt.NodeAccesses)
		}
	}

	snap := s.Snapshot()
	if snap.SharedBatches != base.SharedBatches+1 {
		t.Fatalf("shared batches %d, want %d", snap.SharedBatches, base.SharedBatches+1)
	}
	if snap.BatchedRequests != base.BatchedRequests+n {
		t.Fatalf("batched requests %d, want %d", snap.BatchedRequests, base.BatchedRequests+n)
	}
	if snap.Admitted != base.Admitted+n || snap.Completed != base.Completed+n {
		t.Fatalf("admitted/completed %d/%d, want +%d each over %d/%d",
			snap.Admitted, snap.Completed, n, base.Admitted, base.Completed)
	}
	if snap.PairsEmitted != base.PairsEmitted+int64(n*len(want)) {
		t.Fatalf("pairs emitted %d, want %d", snap.PairsEmitted, base.PairsEmitted+int64(n*len(want)))
	}
	// ONE traversal, ONE aggregation: the scheduler's buffer counters grew
	// by the traversal's accesses, not N× them.
	if got := snap.BufferAccesses - base.BufferAccesses; got != wantSt.NodeAccesses {
		t.Fatalf("buffer accesses grew %d, want exactly one traversal's %d", got, wantSt.NodeAccesses)
	}
	if snap.InFlight != 0 || snap.Queued != 0 || openBatches(s) != 0 {
		t.Fatalf("leftover state: %+v, %d open batches", snap, openBatches(s))
	}
}

// TestBatchMixedPredicatesEquivalence is the equivalence gate: members with
// DIFFERENT predicates (diameter caps, distance floors, region windows,
// limits) share one envelope traversal, and every member's demuxed stream is
// byte-identical to its own solo pushdown run.
func TestBatchMixedPredicatesEquivalence(t *testing.T) {
	eng, _, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 8, Batch: BatchConfig{Enabled: true}})
	queries := []rcj.Query{
		{MaxDiameter: 300},
		{MaxDiameter: 500, Region: &rcj.Rect{MinX: 100, MinY: 100, MaxX: 700, MaxY: 700}},
		{MaxDiameter: 400, MinDistance: 50},
		{MaxDiameter: 600, Limit: 7},
		{}, // unbounded member: the envelope degenerates to a full join
	}
	want := make([][]rcj.Pair, len(queries))
	for i, q := range queries {
		want[i], _ = soloPairs(t, eng, p, q)
	}

	release := blockSlot(t, s)
	results := make([]memberResult, len(queries))
	dones := make([]chan struct{}, len(queries))
	for i, q := range queries {
		dones[i] = make(chan struct{})
		go runMember(context.Background(), s, p, q, &results[i], dones[i])
	}
	waitFor(t, func() bool { return openBatchMembers(s) == len(queries) })
	if got := openBatches(s); got != 1 {
		t.Fatalf("%d open batches, want 1 (all shapes share a key)", got)
	}
	release()
	for _, done := range dones {
		<-done
	}

	for i := range results {
		if results[i].err != nil {
			t.Fatalf("member %d: %v", i, results[i].err)
		}
		assertExactPairs(t, "member", results[i].pairs, want[i])
		if results[i].stats.Results != int64(len(want[i])) {
			t.Fatalf("member %d: stats results %d, want %d", i, results[i].stats.Results, len(want[i]))
		}
	}
	if lim := len(results[3].pairs); lim != 7 {
		t.Fatalf("limit member got %d pairs, want 7", lim)
	}
}

// TestBatchAllLimits pins Limit semantics inside a batch: every member gets
// exactly its solo run's prefix, and the traversal never does more work
// than a full join. (The demux breaks as soon as every member is done; how
// far the producer ran ahead by then depends on the stream buffer, so this
// asserts a bound rather than a strict saving.)
func TestBatchAllLimits(t *testing.T) {
	eng, _, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 8, Batch: BatchConfig{Enabled: true}})
	full, fullSt := soloPairs(t, eng, p, rcj.Query{})
	if len(full) < 20 {
		t.Skipf("dataset too small: %d pairs", len(full))
	}
	qry := rcj.Query{Limit: 5}
	want, _ := soloPairs(t, eng, p, qry)

	release := blockSlot(t, s)
	results := make([]memberResult, 2)
	dones := []chan struct{}{make(chan struct{}), make(chan struct{})}
	for i := range results {
		go runMember(context.Background(), s, p, qry, &results[i], dones[i])
	}
	waitFor(t, func() bool { return openBatchMembers(s) == 2 })
	release()
	for _, done := range dones {
		<-done
	}
	for i := range results {
		if results[i].err != nil {
			t.Fatal(results[i].err)
		}
		assertExactPairs(t, "limit member", results[i].pairs, want)
		if results[i].stats.NodeAccesses > fullSt.NodeAccesses {
			t.Fatalf("limited batch did %d accesses, full join does %d",
				results[i].stats.NodeAccesses, fullSt.NodeAccesses)
		}
	}
}

// TestBatchMemberCancel pins detachment: a member whose context ends while
// the batch is queued gets its context error; the remaining member still
// runs (as a degenerate batch of one) and gets exact solo results.
func TestBatchMemberCancel(t *testing.T) {
	eng, _, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 8, Batch: BatchConfig{Enabled: true}})
	qry := rcj.Query{MaxDiameter: 400}
	want, _ := soloPairs(t, eng, p, qry)

	release := blockSlot(t, s)
	base := s.Snapshot()
	ctxB, cancelB := context.WithCancel(context.Background())
	var a, b memberResult
	doneA, doneB := make(chan struct{}), make(chan struct{})
	go runMember(context.Background(), s, p, qry, &a, doneA)
	go runMember(ctxB, s, p, qry, &b, doneB)
	waitFor(t, func() bool { return openBatchMembers(s) == 2 })
	cancelB()
	<-doneB
	if !errors.Is(b.err, context.Canceled) {
		t.Fatalf("cancelled member returned %v, want context.Canceled", b.err)
	}
	release()
	<-doneA
	if a.err != nil {
		t.Fatal(a.err)
	}
	assertExactPairs(t, "surviving member", a.pairs, want)

	snap := s.Snapshot()
	if snap.SharedBatches != base.SharedBatches {
		t.Fatalf("a batch of one counted as shared: %d -> %d", base.SharedBatches, snap.SharedBatches)
	}
	if snap.Admitted != base.Admitted+1 || snap.Completed != base.Completed+1 {
		t.Fatalf("admitted/completed %d/%d, want exactly one more than %d/%d",
			snap.Admitted, snap.Completed, base.Admitted, base.Completed)
	}
}

// TestBatchAllMembersCancel pins full abandonment: when every member
// detaches before the grant, the batch leaves the queue and the freed slot
// goes unclaimed — nothing executes.
func TestBatchAllMembersCancel(t *testing.T) {
	eng, _, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 8, Batch: BatchConfig{Enabled: true}})
	release := blockSlot(t, s)
	base := s.Snapshot()
	ctx, cancel := context.WithCancel(context.Background())
	results := make([]memberResult, 2)
	dones := []chan struct{}{make(chan struct{}), make(chan struct{})}
	for i := range results {
		go runMember(ctx, s, p, rcj.Query{}, &results[i], dones[i])
	}
	waitFor(t, func() bool { return openBatchMembers(s) == 2 })
	cancel()
	for _, done := range dones {
		<-done
	}
	for i := range results {
		if !errors.Is(results[i].err, context.Canceled) {
			t.Fatalf("member %d returned %v, want context.Canceled", i, results[i].err)
		}
	}
	waitFor(t, func() bool { return openBatches(s) == 0 && s.Snapshot().Queued == 0 })
	release()
	snap := s.Snapshot()
	if snap.InFlight != 0 {
		t.Fatalf("in flight %d after abandoned batch, want 0", snap.InFlight)
	}
	if snap.Admitted != base.Admitted || snap.Completed != base.Completed {
		t.Fatalf("abandoned batch executed: %+v vs base %+v", snap, base)
	}
}

// TestBatchPiggybackBeatsQueueBound pins the capacity property: batch
// members ride ONE queue slot, so a full queue still admits requests that
// can join an open batch — and still rejects ones that cannot.
func TestBatchPiggybackBeatsQueueBound(t *testing.T) {
	eng, _, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 1, Batch: BatchConfig{Enabled: true}})
	qry := rcj.Query{MaxDiameter: 400}
	want, _ := soloPairs(t, eng, p, qry)

	release := blockSlot(t, s)
	results := make([]memberResult, 3)
	dones := []chan struct{}{make(chan struct{}), make(chan struct{}), make(chan struct{})}
	go runMember(context.Background(), s, p, qry, &results[0], dones[0])
	waitFor(t, func() bool { return openBatchMembers(s) == 1 })
	// The queue is now full (the batch's waiter). Two more compatible
	// requests must still get in by joining the batch...
	go runMember(context.Background(), s, p, qry, &results[1], dones[1])
	go runMember(context.Background(), s, p, qry, &results[2], dones[2])
	waitFor(t, func() bool { return openBatchMembers(s) == 3 })
	// ...while an incompatible one (TopK is never batched) is rejected.
	if _, err := s.RunSelf(context.Background(), p, rcj.Query{TopK: 5}, nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("incompatible request on a full queue returned %v, want ErrOverloaded", err)
	}
	release()
	for _, done := range dones {
		<-done
	}
	for i := range results {
		if results[i].err != nil {
			t.Fatalf("member %d: %v", i, results[i].err)
		}
		assertExactPairs(t, "member", results[i].pairs, want)
	}
}

// TestBatchKeySeparation pins the compatibility rule: different parallelism
// (or algorithm) shapes form distinct batches.
func TestBatchKeySeparation(t *testing.T) {
	eng, _, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 8, Batch: BatchConfig{Enabled: true}})
	release := blockSlot(t, s)
	results := make([]memberResult, 2)
	dones := []chan struct{}{make(chan struct{}), make(chan struct{})}
	go runMember(context.Background(), s, p, rcj.Query{MaxDiameter: 400}, &results[0], dones[0])
	go runMember(context.Background(), s, p, rcj.Query{MaxDiameter: 400, Parallelism: 2}, &results[1], dones[1])
	waitFor(t, func() bool { return openBatchMembers(s) == 2 })
	if got := openBatches(s); got != 2 {
		t.Fatalf("%d open batches, want 2 (parallelism is part of the key)", got)
	}
	release()
	for _, done := range dones {
		<-done
	}
	for i := range results {
		if results[i].err != nil {
			t.Fatalf("member %d: %v", i, results[i].err)
		}
	}
}

// TestBatchDrain pins the drain contract for batches: a queued batch was
// admitted, so it runs to completion; new requests are rejected.
func TestBatchDrain(t *testing.T) {
	eng, _, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 8, Batch: BatchConfig{Enabled: true}})
	qry := rcj.Query{MaxDiameter: 400}
	want, _ := soloPairs(t, eng, p, qry)

	release := blockSlot(t, s)
	results := make([]memberResult, 2)
	dones := []chan struct{}{make(chan struct{}), make(chan struct{})}
	for i := range results {
		go runMember(context.Background(), s, p, qry, &results[i], dones[i])
	}
	waitFor(t, func() bool { return openBatchMembers(s) == 2 })
	s.BeginDrain()
	if _, err := s.RunSelf(context.Background(), p, qry, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("request during drain returned %v, want ErrDraining", err)
	}
	release()
	for _, done := range dones {
		<-done
	}
	for i := range results {
		if results[i].err != nil {
			t.Fatalf("member %d: %v", i, results[i].err)
		}
		assertExactPairs(t, "drained member", results[i].pairs, want)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBatchConsumerBreak pins mid-stream abandonment: a member that stops
// consuming is skipped by the demultiplexer without stalling batch-mates.
func TestBatchConsumerBreak(t *testing.T) {
	eng, _, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 8, Batch: BatchConfig{Enabled: true}})
	want, _ := soloPairs(t, eng, p, rcj.Query{})
	if len(want) < 10 {
		t.Skipf("dataset too small: %d pairs", len(want))
	}

	release := blockSlot(t, s)
	var full memberResult
	doneFull, doneBrk := make(chan struct{}), make(chan struct{})
	var brk []rcj.Pair
	var brkErr error
	go runMember(context.Background(), s, p, rcj.Query{}, &full, doneFull)
	go func() {
		defer close(doneBrk)
		seq, err := s.RunSelf(context.Background(), p, rcj.Query{}, nil)
		if err != nil {
			brkErr = err
			return
		}
		for pr, err := range seq {
			if err != nil {
				brkErr = err
				return
			}
			brk = append(brk, pr)
			if len(brk) == 3 {
				break
			}
		}
	}()
	waitFor(t, func() bool { return openBatchMembers(s) == 2 })
	release()
	<-doneFull
	<-doneBrk
	if full.err != nil || brkErr != nil {
		t.Fatalf("errs: full=%v break=%v", full.err, brkErr)
	}
	assertExactPairs(t, "full member", full.pairs, want)
	assertExactPairs(t, "broken member prefix", brk, want[:3])
}

// TestBatchDisabledFallsThrough pins the default: without Batch.Enabled the
// batching front never handles a request and no batch state is touched.
func TestBatchDisabledFallsThrough(t *testing.T) {
	eng, _, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 2})
	want, _ := soloPairs(t, eng, p, rcj.Query{MaxDiameter: 400})
	var st rcj.Stats
	seq, err := s.RunSelf(context.Background(), p, rcj.Query{MaxDiameter: 400}, &st)
	if err != nil {
		t.Fatal(err)
	}
	var got []rcj.Pair
	for pr, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pr)
	}
	assertExactPairs(t, "solo", got, want)
	if snap := s.Snapshot(); snap.SharedBatches != 0 || snap.BatchedRequests != 0 {
		t.Fatalf("batch counters moved while disabled: %+v", snap)
	}
}
