package sched

import (
	"context"
	"testing"
	"time"

	"repro/rcj"
)

// TestHistogramBucketPinning pins the bucket layout and the le-semantics of
// observe: each known duration must land in exactly one known bucket, so a
// dashboard built against these bounds never silently shifts.
func TestHistogramBucketPinning(t *testing.T) {
	var h histogram
	obs := []struct {
		d      time.Duration
		bucket int
	}{
		{500 * time.Microsecond, 0},
		{time.Millisecond, 0}, // bounds are inclusive (le), like Prometheus
		{3 * time.Millisecond, 2},
		{40 * time.Millisecond, 5},
		{300 * time.Millisecond, 8},
		{20 * time.Second, 13},
		{2 * time.Minute, numBuckets - 1}, // +Inf overflow bucket
	}
	for _, o := range obs {
		h.observe(o.d)
	}
	snap := h.snapshot()
	want := make([]int64, numBuckets)
	for _, o := range obs {
		want[o.bucket]++
	}
	for i := range want {
		if snap.Counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (snapshot %+v)", i, snap.Counts[i], want[i], snap.Counts)
		}
	}
	if snap.Count != int64(len(obs)) {
		t.Fatalf("Count = %d, want %d", snap.Count, len(obs))
	}
	var sum time.Duration
	for _, o := range obs {
		sum += o.d
	}
	if got := snap.SumSeconds; got < sum.Seconds()-1e-9 || got > sum.Seconds()+1e-9 {
		t.Fatalf("SumSeconds = %v, want %v", got, sum.Seconds())
	}
	if len(snap.BoundsSeconds) != numBuckets-1 {
		t.Fatalf("%d bounds for %d buckets", len(snap.BoundsSeconds), numBuckets)
	}
}

// TestSchedulerHistograms checks the scheduler feeds both histograms: every
// admitted request contributes one queue-wait observation, every terminated
// join one latency observation, and the per-bucket counts always sum to the
// totals.
func TestSchedulerHistograms(t *testing.T) {
	eng, q, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 2, MaxQueue: 8})
	ctx := context.Background()
	const joins = 4
	for i := 0; i < joins; i++ {
		if _, _, err := s.JoinCollect(ctx, q, p, rcj.JoinOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if snap.QueueWait.Count != joins {
		t.Fatalf("QueueWait.Count = %d, want %d (one per admitted request)", snap.QueueWait.Count, joins)
	}
	if snap.JoinLatency.Count != joins {
		t.Fatalf("JoinLatency.Count = %d, want %d (one per terminated join)", snap.JoinLatency.Count, joins)
	}
	for _, h := range []HistogramSnapshot{snap.QueueWait, snap.JoinLatency} {
		var sum int64
		for _, c := range h.Counts {
			sum += c
		}
		if sum != h.Count {
			t.Fatalf("bucket counts sum to %d, Count = %d (%+v)", sum, h.Count, h)
		}
	}
	// Uncontended admissions pass through in far under a millisecond: the
	// waits must pile up in the lowest bucket.
	if snap.QueueWait.Counts[0] != joins {
		t.Fatalf("immediate grants not in the lowest bucket: %+v", snap.QueueWait.Counts)
	}
}
