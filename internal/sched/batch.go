package sched

import (
	"context"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"repro/rcj"
)

// This file is the cross-request traversal batcher: when every join slot is
// busy, queued Run/RunSelf requests over the same indexes with compatible
// query shapes merge into ONE batch job that owns ONE queue slot and runs
// ONE leaf traversal — the envelope of the members' predicates — demuxing
// each verification batch to per-request streams filtered with each
// member's own Query.Matches. Under a hot-index query storm this multiplies
// served requests per traversal the same way the single-flight pager
// multiplies them per byte fetched.
//
// Soundness rests on the pushdown equivalence pinned since the query API
// landed: every pair-level predicate is set-identical to post-filtering, so
// filtering the loosest member (the envelope) with a member's Matches
// reproduces that member's own pushdown run — byte-identically for
// sequential traversals, whose batch order equals solo emission order.
//
// What batches: streaming Run/RunSelf queries without TopK (rankings need
// their own branch-and-bound bound; they are served by the server's result
// cache instead). Members may differ in MaxDiameter, MinDistance, Region,
// and Limit; they must agree on index pair, self-ness, resolved algorithm,
// and parallelism (the batch key). Limit members stop receiving at their
// cap; the traversal early-stops only once every member is done, so one
// Limit member's summary may wait for batch-mates — its pairs do not.
//
// Statistics: the shared traversal runs under one buffer tag, aggregated
// once into the scheduler's counters, so the pool-sum invariant stays
// exact. Each member's Stats reports the shared traversal's buffer/pruning
// work (the work its request participated in) with its own Results count.

// DefaultBatchMaxRequests bounds how many requests one batch job may serve
// when BatchConfig.MaxRequests is zero.
const DefaultBatchMaxRequests = 16

// BatchConfig enables cross-request traversal batching. The zero value
// disables it: batching changes queue semantics (members piggyback on one
// queue slot instead of occupying their own), so serving binaries opt in
// explicitly.
type BatchConfig struct {
	// Enabled turns the batcher on for streaming Run/RunSelf requests.
	Enabled bool
	// MaxRequests caps the members of one batch (default
	// DefaultBatchMaxRequests).
	MaxRequests int
}

// batchKey groups compatible queued requests: same indexes, same join
// shape, same resolved algorithm and fan-out. Pair-level predicates and
// Limit may differ — the envelope covers them.
type batchKey struct {
	q, p *rcj.Index
	self bool
	alg  rcj.Algorithm
	par  int
}

// batchable reports whether a query may join a batch: valid, streaming
// (TopK rankings cannot share a traversal without giving up their dynamic
// bound — the result cache serves those).
func batchable(qry rcj.Query) bool {
	return qry.TopK == 0 && qry.Validate() == nil
}

// member is one request riding a batch: the demultiplexer sends filtered
// pair slices into ch; the member's iterator drains them.
type member struct {
	qry      rcj.Query
	statsOut *rcj.Stats
	ch       chan []rcj.Pair
	err      error // terminal error; written before ch closes
	emitted  int64
	enqueued time.Time
	dead     atomic.Bool
	deadCh   chan struct{} // closed when the consumer abandons the stream
	killOnce sync.Once
}

func newMember(qry rcj.Query, stats *rcj.Stats) *member {
	return &member{
		qry:      qry,
		statsOut: stats,
		ch:       make(chan []rcj.Pair, 16),
		deadCh:   make(chan struct{}),
		enqueued: time.Now(),
	}
}

// kill marks the member abandoned, unblocking any demux send aimed at it.
func (m *member) kill() {
	m.killOnce.Do(func() {
		m.dead.Store(true)
		close(m.deadCh)
	})
}

// send delivers one filtered slice unless the consumer has abandoned the
// stream, reporting whether the member took it.
func (m *member) send(b []rcj.Pair) bool {
	select {
	case m.ch <- b:
		return true
	case <-m.deadCh:
		return false
	}
}

// seq is the member's single-use result iterator: drain demuxed slices,
// surface the batch's terminal error (written before the channel closed),
// and mark the member dead on any exit so the demux never blocks on it.
func (m *member) seq(ctx context.Context) iter.Seq2[rcj.Pair, error] {
	return func(yield func(rcj.Pair, error) bool) {
		defer m.kill()
		for {
			select {
			case b, ok := <-m.ch:
				if !ok {
					if m.err != nil {
						yield(rcj.Pair{}, m.err)
					}
					return
				}
				for _, pr := range b {
					if !yield(pr, nil) {
						return
					}
				}
			case <-ctx.Done():
				yield(rcj.Pair{}, ctx.Err())
				return
			}
		}
	}
}

// batch is one shared traversal job. It owns exactly one queue waiter; the
// leader goroutine (leadBatch) waits for the waiter's grant, seals the
// member list, and runs the envelope traversal.
type batch struct {
	key       batchKey
	w         *waiter
	granted   chan struct{} // closed once the batch owns a slot and is sealed
	abandoned chan struct{} // closed if every member detached before the grant
	members   []*member
	live      int  // members not yet detached pre-grant
	sealed    bool // no further joins; set at grant or full abandonment
}

// runBatched is the batching front of Run/RunSelf. handled=false means the
// caller should fall through to the solo admit path (batching disabled,
// query not batchable, or a free slot makes solo execution strictly
// better); otherwise seq/err are the request's outcome.
func (s *Scheduler) runBatched(ctx context.Context, q, p *rcj.Index, qry rcj.Query, self bool, stats *rcj.Stats) (seq iter.Seq2[rcj.Pair, error], err error, handled bool) {
	if !s.cfg.Batch.Enabled || !batchable(qry) {
		return nil, nil, false
	}
	key := batchKey{q: q, p: p, self: self, alg: qry.EffectiveAlgorithm(), par: qry.Parallelism}
	maxReq := s.cfg.Batch.MaxRequests
	if maxReq <= 0 {
		maxReq = DefaultBatchMaxRequests
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejectedDraining.Add(1)
		return nil, ErrDraining, true
	}
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return nil, err, true
	}
	if b, ok := s.batches[key]; ok && !b.sealed && len(b.members) < maxReq {
		// An open batch for this shape is already queued: ride it. The
		// member consumes no queue capacity of its own.
		m := newMember(qry, stats)
		b.members = append(b.members, m)
		b.live++
		s.mu.Unlock()
		seq, err := s.waitBatch(ctx, b, m)
		return seq, err, true
	}
	if s.running < s.cfg.MaxConcurrent {
		// A slot is free: solo execution serves this request with its own
		// exact pushdown, no envelope overhead, zero added latency.
		s.mu.Unlock()
		return nil, nil, false
	}
	if s.cfg.MaxQueue >= 0 && s.queue.Len() >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.rejectedOverload.Add(1)
		return nil, ErrOverloaded, true
	}
	m := newMember(qry, stats)
	b := &batch{
		key:       key,
		w:         &waiter{ready: make(chan struct{})},
		granted:   make(chan struct{}),
		abandoned: make(chan struct{}),
		members:   []*member{m},
		live:      1,
	}
	b.w.el = s.queue.PushBack(b.w)
	s.batches[key] = b
	s.mu.Unlock()
	go s.leadBatch(b)
	sq, err := s.waitBatch(ctx, b, m)
	return sq, err, true
}

// waitBatch blocks one member until its batch is granted a slot, its
// context ends, or QueueTimeout elapses — the same admission contract as
// Acquire, surfaced before any result bytes.
func (s *Scheduler) waitBatch(ctx context.Context, b *batch, m *member) (iter.Seq2[rcj.Pair, error], error) {
	var timeout <-chan time.Time
	if s.cfg.QueueTimeout > 0 {
		t := time.NewTimer(s.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-b.granted:
		return m.seq(ctx), nil
	case <-ctx.Done():
		s.detachMember(b, m)
		return nil, ctx.Err()
	case <-timeout:
		s.detachMember(b, m)
		s.rejectedQueueTimeout.Add(1)
		return nil, ErrQueueTimeout
	}
}

// detachMember removes a member that gave up before the grant. The last
// live member to detach abandons the whole batch: its queue waiter is
// removed (or, if the grant raced ahead, the leader finds no live members
// and releases the slot immediately).
func (s *Scheduler) detachMember(b *batch, m *member) {
	m.kill()
	s.mu.Lock()
	if b.sealed {
		s.mu.Unlock()
		return
	}
	b.live--
	if b.live > 0 {
		s.mu.Unlock()
		return
	}
	b.sealed = true
	delete(s.batches, b.key)
	if b.w.el != nil {
		s.queue.Remove(b.w.el)
		b.w.el = nil
		s.mu.Unlock()
		close(b.abandoned)
		return
	}
	// Granted concurrently: leadBatch owns the slot and will release it.
	s.mu.Unlock()
}

// leadBatch is the batch's leader goroutine: wait for the queue grant, seal
// the member list so no request joins a running traversal, then execute.
func (s *Scheduler) leadBatch(b *batch) {
	select {
	case <-b.w.ready:
	case <-b.abandoned:
		return
	}
	s.mu.Lock()
	b.sealed = true
	delete(s.batches, b.key)
	s.mu.Unlock()
	close(b.granted)
	s.executeBatch(b)
}

// executeBatch runs one envelope traversal for the batch's live members and
// demultiplexes each verification batch to their streams, then finalizes
// every member (stats, terminal error, channel close) and releases the
// batch's single slot.
func (s *Scheduler) executeBatch(b *batch) {
	defer s.release()
	live := b.members[:0:0]
	for _, m := range b.members {
		if !m.dead.Load() {
			live = append(live, m)
		}
	}
	if len(live) == 0 {
		return
	}
	now := time.Now()
	for _, m := range live {
		s.admitted.Add(1)
		s.queueWait.observe(now.Sub(m.enqueued))
	}
	if len(live) > 1 {
		s.batchesRun.Add(1)
		s.batchedReqs.Add(int64(len(live)))
	}

	qs := make([]rcj.Query, len(live))
	for i, m := range live {
		qs[i] = m.qry
	}
	env := rcj.BatchEnvelope(qs)
	var st rcj.Stats
	env.Stats = &st

	// The traversal serves several requests, so no single request context
	// governs it: it runs under the scheduler's JoinTimeout and stops early
	// when every member is done or gone.
	jctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if s.cfg.JoinTimeout > 0 {
		jctx, cancel = context.WithTimeout(jctx, s.cfg.JoinTimeout)
	}
	defer cancel()

	// remaining[i] counts member i's Limit budget down; -1 = unlimited,
	// 0 = done.
	remaining := make([]int, len(live))
	for i, m := range live {
		remaining[i] = -1
		if m.qry.Limit > 0 {
			remaining[i] = m.qry.Limit
		}
	}

	var seq iter.Seq2[[]rcj.Pair, error]
	if b.key.self {
		seq = s.eng.RunSelfBatches(jctx, b.key.q, env)
	} else {
		seq = s.eng.RunBatches(jctx, b.key.q, b.key.p, env)
	}
	start := time.Now()
	var batchErr error
	for pairs, err := range seq {
		if err != nil {
			batchErr = err
			break
		}
		anyWaiting := false
		for i, m := range live {
			if m.dead.Load() || remaining[i] == 0 {
				continue
			}
			out := filterPairs(m.qry, pairs, remaining[i])
			if len(out) > 0 {
				if !m.send(out) {
					continue // abandoned mid-stream; skip from now on
				}
				m.emitted += int64(len(out))
				if remaining[i] > 0 {
					remaining[i] -= len(out)
				}
			}
			if remaining[i] != 0 {
				anyWaiting = true
			}
		}
		if !anyWaiting {
			break // every member done or gone: stop the traversal early
		}
	}
	elapsed := time.Since(start)

	// One traversal, one aggregation: the tagged buffer counters enter the
	// scheduler sums exactly once, keeping the pool-sum invariant exact.
	s.bufAccesses.Add(st.NodeAccesses)
	s.bufHits.Add(st.NodeAccesses - st.PageFaults)
	s.bufMisses.Add(st.PageFaults)
	s.boundKilled.Add(st.BoundKilledCandidates)
	for _, m := range live {
		s.joinLatency.observe(elapsed)
		mst := st
		mst.Results = m.emitted
		if m.statsOut != nil {
			*m.statsOut = mst
		}
		m.err = batchErr
		s.pairsEmitted.Add(m.emitted)
		if batchErr != nil {
			s.failed.Add(1)
		} else {
			s.completed.Add(1)
		}
		close(m.ch)
	}
}

// filterPairs selects the pairs of one demuxed slice a member should see:
// its own predicates, capped at its remaining Limit budget (cap < 0 means
// unlimited).
func filterPairs(qry rcj.Query, pairs []rcj.Pair, cap int) []rcj.Pair {
	out := make([]rcj.Pair, 0, len(pairs))
	for _, pr := range pairs {
		if cap == 0 {
			break
		}
		if !qry.Matches(pr) {
			continue
		}
		out = append(out, pr)
		if cap > 0 {
			cap--
		}
	}
	return out
}
