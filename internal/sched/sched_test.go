package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/rcj"
)

// grid builds a deterministic pointset for join tests.
func grid(n int, offset float64) []rcj.Point {
	pts := make([]rcj.Point, n)
	for i := range pts {
		pts[i] = rcj.Point{
			X:  float64(i%37)*27.1 + offset,
			Y:  float64(i%53)*19.7 + offset/2,
			ID: int64(i),
		}
	}
	return pts
}

func newTestEngine(t *testing.T) (*rcj.Engine, *rcj.Index, *rcj.Index) {
	t.Helper()
	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 256})
	p, err := eng.BuildIndex(grid(400, 0), rcj.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := eng.BuildIndex(grid(400, 5000), rcj.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close(); q.Close() })
	return eng, q, p
}

func TestAcquireImmediate(t *testing.T) {
	eng, _, _ := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 2})
	r1, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot(); got.InFlight != 2 || got.Admitted != 2 {
		t.Fatalf("snapshot = %+v, want 2 in flight / 2 admitted", got)
	}
	r1()
	r1() // idempotent
	r2()
	if got := s.Snapshot(); got.InFlight != 0 {
		t.Fatalf("in flight = %d after release, want 0", got.InFlight)
	}
}

func TestOverloadRejection(t *testing.T) {
	eng, _, _ := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 1})

	release, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue.
	type res struct {
		release func()
		err     error
	}
	queued := make(chan res, 1)
	go func() {
		r, err := s.Acquire(context.Background())
		queued <- res{r, err}
	}()
	waitFor(t, func() bool { return s.Snapshot().Queued == 1 })

	// Queue full: immediate typed rejection.
	if _, err := s.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := s.Snapshot().RejectedOverload; got != 1 {
		t.Fatalf("rejected_overload = %d, want 1", got)
	}

	// Releasing the slot admits the queued waiter (slot freed, not leaked).
	release()
	r := <-queued
	if r.err != nil {
		t.Fatalf("queued acquire failed: %v", r.err)
	}
	r.release()
	if got := s.Snapshot().InFlight; got != 0 {
		t.Fatalf("in flight = %d, want 0", got)
	}
}

func TestQueueTimeout(t *testing.T) {
	eng, _, _ := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	release, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := s.Acquire(context.Background()); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if got := s.Snapshot(); got.Queued != 0 || got.RejectedQueueTimeout != 1 {
		t.Fatalf("snapshot = %+v, want 0 queued / 1 rejected_queue_timeout", got)
	}
}

func TestAcquireContextCancel(t *testing.T) {
	eng, _, _ := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 4})
	release, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx)
		done <- err
	}()
	waitFor(t, func() bool { return s.Snapshot().Queued == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := s.Snapshot().Queued; got != 0 {
		t.Fatalf("queued = %d after cancel, want 0", got)
	}
}

// TestFIFOOrder checks strict FIFO admission: waiters are granted slots in
// arrival order.
func TestFIFOOrder(t *testing.T) {
	eng, _, _ := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 8})
	release, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 5
	order := make(chan int, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			r()
		}(i)
		// Serialize enqueue order so arrival order is well-defined.
		waitFor(t, func() bool { return s.Snapshot().Queued == i+1 })
	}
	release()
	wg.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("FIFO violated: got waiter %d at position %d", got, want)
		}
		want++
	}
}

func TestDrain(t *testing.T) {
	eng, _, _ := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 2})

	release, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One queued request, admitted before the drain begins.
	queuedDone := make(chan error, 1)
	go func() {
		r, err := s.Acquire(context.Background())
		if err == nil {
			r()
		}
		queuedDone <- err
	}()
	waitFor(t, func() bool { return s.Snapshot().Queued == 1 })

	s.BeginDrain()
	// New work is rejected with the typed error.
	if _, err := s.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}

	// Drain must not complete while admitted work is still in flight.
	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(context.Background()) }()
	select {
	case <-drainDone:
		t.Fatal("drain completed with a slot still held")
	case <-time.After(30 * time.Millisecond):
	}

	release()
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued (pre-drain) request should have run: %v", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Draining an already-drained scheduler returns immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDrainContextExpiry(t *testing.T) {
	eng, _, _ := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1})
	release, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestJoinMatchesEngine checks a scheduled streaming join returns exactly
// Engine.JoinCollect's result set and reports exact per-request stats.
func TestJoinMatchesEngine(t *testing.T) {
	eng, q, p := newTestEngine(t)
	want, wantStats, err := eng.JoinCollect(context.Background(), q, p, rcj.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}

	s := New(eng, Config{MaxConcurrent: 2, MaxQueue: 2})
	var st rcj.Stats
	seq, err := s.Join(context.Background(), q, p, rcj.JoinOptions{}, &st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rcj.Collect(seq)
	if err != nil {
		t.Fatal(err)
	}
	assertSamePairs(t, got, want)
	if st.Results != wantStats.Results || st.Candidates != wantStats.Candidates {
		t.Fatalf("stats = %+v, want results/candidates of %+v", st, wantStats)
	}
	if st.NodeAccesses == 0 || st.PageFaults < 0 {
		t.Fatalf("tagged stats not populated: %+v", st)
	}
	snap := s.Snapshot()
	if snap.PairsEmitted != int64(len(got)) || snap.Completed != 1 {
		t.Fatalf("snapshot = %+v, want %d pairs / 1 completed", snap, len(got))
	}
	if snap.BufferAccesses != st.NodeAccesses {
		t.Fatalf("aggregated buffer accesses %d != join's %d", snap.BufferAccesses, st.NodeAccesses)
	}
}

// TestJoinBreakReleasesSlot checks that a consumer breaking out of the
// stream mid-join frees the slot for the next request.
func TestJoinBreakReleasesSlot(t *testing.T) {
	eng, q, p := newTestEngine(t)
	s := New(eng, Config{MaxConcurrent: 1, MaxQueue: 0})

	seq, err := s.Join(context.Background(), q, p, rcj.JoinOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for range seq {
		break // abandon after the first pair
	}
	// The slot must be free again: an immediate no-queue acquire succeeds.
	release, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatalf("slot not released after break: %v", err)
	}
	release()
}

// TestJoinTimeout checks the per-request deadline reaches the executor as a
// context error on the stream.
func TestJoinTimeout(t *testing.T) {
	eng := rcj.NewEngine(rcj.EngineConfig{BufferPages: 256})
	ix, err := eng.BuildIndex(grid(5000, 0), rcj.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	s := New(eng, Config{MaxConcurrent: 1, JoinTimeout: time.Nanosecond})
	seq, err := s.SelfJoin(context.Background(), ix, rcj.JoinOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var last error
	for _, err := range seq {
		if err != nil {
			last = err
		}
	}
	if !errors.Is(last, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", last)
	}
	if got := s.Snapshot(); got.Failed != 1 || got.InFlight != 0 {
		t.Fatalf("snapshot = %+v, want 1 failed / 0 in flight", got)
	}
}

// TestConcurrentJoinsExactStats floods a maxConcurrent=2 scheduler with
// joins and checks every one of them reports the correct result set and
// per-request tagged buffer stats that sum to the scheduler's aggregate.
func TestConcurrentJoinsExactStats(t *testing.T) {
	eng, q, p := newTestEngine(t)
	want, _, err := eng.JoinCollect(context.Background(), q, p, rcj.JoinOptions{})
	if err != nil {
		t.Fatal(err)
	}

	s := New(eng, Config{MaxConcurrent: 2, MaxQueue: 16})
	const clients = 8
	stats := make([]rcj.Stats, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq, err := s.Join(context.Background(), q, p, rcj.JoinOptions{}, &stats[i])
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			got, err := rcj.Collect(seq)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if len(got) != len(want) {
				t.Errorf("client %d: %d pairs, want %d", i, len(got), len(want))
			}
		}(i)
	}
	wg.Wait()

	var accesses, faults int64
	for i, st := range stats {
		if st.NodeAccesses == 0 {
			t.Errorf("client %d: zero node accesses", i)
		}
		accesses += st.NodeAccesses
		faults += st.PageFaults
	}
	snap := s.Snapshot()
	if snap.BufferAccesses != accesses || snap.BufferMisses != faults {
		t.Fatalf("aggregate %d/%d != per-request sums %d/%d",
			snap.BufferAccesses, snap.BufferMisses, accesses, faults)
	}
	if snap.Completed != clients || snap.InFlight != 0 || snap.Queued != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func assertSamePairs(t *testing.T, got, want []rcj.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d pairs, want %d", len(got), len(want))
	}
	key := func(pr rcj.Pair) string {
		return fmt.Sprintf("%d/%d/%x/%x/%x", pr.P.ID, pr.Q.ID, pr.Center.X, pr.Center.Y, pr.Radius)
	}
	seen := make(map[string]int, len(want))
	for _, pr := range want {
		seen[key(pr)]++
	}
	for _, pr := range got {
		if seen[key(pr)] == 0 {
			t.Fatalf("unexpected pair %+v", pr)
		}
		seen[key(pr)]--
	}
}

// waitFor polls cond until it holds or the test deadline approaches.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
