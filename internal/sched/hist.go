package sched

import (
	"sync/atomic"
	"time"
)

// latencyBounds are the bucket upper bounds, in seconds, of the scheduler's
// duration histograms — a decade-spanning ladder (1ms to 30s) so both a
// sub-millisecond queue pass-through and a pathological 20s join land in an
// informative bucket. Fixed at compile time: every Snapshot and every
// Prometheus scrape sees the same bucket layout, which is what makes the
// 429/queue tuning comparisons valid across restarts.
var latencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// numBuckets is len(latencyBounds)+1: the last bucket catches everything
// beyond the largest bound (+Inf).
const numBuckets = 15

// histogram is a fixed-bucket duration histogram with lock-free recording:
// one atomic add per observation, so the admission path pays nanoseconds for
// its observability.
type histogram struct {
	counts   [numBuckets]atomic.Int64
	sumNanos atomic.Int64
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(latencyBounds) && s > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
}

// HistogramSnapshot is the wire form of a histogram: per-bucket counts (not
// cumulative; the Prometheus writer cumulates), the bucket upper bounds in
// seconds (the last bucket is +Inf and has no bound entry), and the
// count/sum pair every histogram convention wants.
type HistogramSnapshot struct {
	BoundsSeconds []float64 `json:"bounds_seconds"`
	Counts        []int64   `json:"counts"`
	Count         int64     `json:"count"`
	SumSeconds    float64   `json:"sum_seconds"`
}

// snapshot returns a point-in-time copy of the histogram. Count is derived
// from the bucket counts rather than the count field, so a snapshot racing
// an observe (bucket incremented, count not yet) is still internally
// consistent — the bucket series and the total always agree.
func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		BoundsSeconds: latencyBounds,
		Counts:        make([]int64, numBuckets),
		SumSeconds:    time.Duration(h.sumNanos.Load()).Seconds(),
	}
	for i := range s.Counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}
